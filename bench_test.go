// Package repro's top-level benchmarks regenerate the experiment suite of
// EXPERIMENTS.md: one benchmark per Fig. 2 process (E1–E6), one per
// Section V property (E7–E10), and the DESIGN.md ablations. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/podmanager"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/simclock"
	"repro/internal/solid"
	"repro/internal/store"
)

func mustB(b *testing.B, err error) {
	if err != nil {
		b.Fatal(err)
	}
}

func newDeploymentB(b *testing.B, cfg core.Config) *core.Deployment {
	b.Helper()
	d, err := core.NewDeployment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

// ownerWithResourceB publishes one resource of the given size.
func ownerWithResourceB(b *testing.B, d *core.Deployment, size int) (*core.Owner, string) {
	b.Helper()
	ctx := context.Background()
	o, err := d.NewOwner(fmt.Sprintf("owner%d", time.Now().UnixNano()))
	mustB(b, err)
	mustB(b, o.InitializePod(ctx, nil))
	mustB(b, o.AddResource("/data/r.bin", "application/octet-stream", bytes.Repeat([]byte("x"), size)))
	iri, err := o.Publish(ctx, "/data/r.bin", "bench", nil)
	mustB(b, err)
	return o, iri
}

// BenchmarkE1PodInitiation measures the Fig. 2(1) pod initiation process
// (pod manager → push-in oracle → DE App, one consensus round). The pod
// manager identity is reused across iterations so the timed op is exactly
// the on-chain registration round trip.
func BenchmarkE1PodInitiation(b *testing.B) {
	d := newDeploymentB(b, core.Config{})
	ctx := context.Background()
	o, err := d.NewOwner("owner")
	mustB(b, err)
	client := o.Manager.DE()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		_, err := client.RegisterPod(ctx, distexchangeRegisterPodArgs(i, o.URL()))
		mustB(b, err)
	}
	reportGas(b, d, "registerPod")
}

// BenchmarkE2ResourceInitiation measures the Fig. 2(2) resource
// initiation process.
func BenchmarkE2ResourceInitiation(b *testing.B) {
	d := newDeploymentB(b, core.Config{})
	ctx := context.Background()
	o, err := d.NewOwner("owner")
	mustB(b, err)
	mustB(b, o.InitializePod(ctx, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := fmt.Sprintf("/data/r%08d.bin", i)
		mustB(b, o.AddResource(path, "application/octet-stream", []byte("payload")))
		b.StartTimer()
		_, err := o.Publish(ctx, path, "bench", nil)
		mustB(b, err)
	}
	reportGas(b, d, "registerResource")
}

// BenchmarkE3ResourceIndexing measures the Fig. 2(3) pull-out oracle read
// against index sizes.
func BenchmarkE3ResourceIndexing(b *testing.B) {
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("index=%d", size), func(b *testing.B) {
			d := newDeploymentB(b, core.Config{})
			ctx := context.Background()
			o, err := d.NewOwner("owner")
			mustB(b, err)
			mustB(b, o.InitializePod(ctx, nil))
			var iri string
			for i := range size {
				path := fmt.Sprintf("/data/r%05d.bin", i)
				mustB(b, o.AddResource(path, "application/octet-stream", []byte("p")))
				iri, err = o.Publish(ctx, path, "bench", nil)
				mustB(b, err)
			}
			c, err := d.NewConsumer("reader", policy.PurposeAny)
			mustB(b, err)
			b.ResetTimer()
			for b.Loop() {
				if _, err := c.Index(iri); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4ResourceAccess measures the Fig. 2(4) end-to-end resource
// access process (index, fee, certificate, HTTP fetch, TEE store,
// on-chain confirmation) by resource size.
func BenchmarkE4ResourceAccess(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			d := newDeploymentB(b, core.Config{})
			ctx := context.Background()
			o, err := d.NewOwner("owner")
			mustB(b, err)
			mustB(b, o.InitializePod(ctx, nil))
			// One consumer accesses a fresh resource per iteration, so no
			// per-iteration device provisioning pollutes the setup.
			c, err := d.NewConsumer("reader", policy.PurposeAny)
			mustB(b, err)
			data := bytes.Repeat([]byte("x"), size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				path := fmt.Sprintf("/data/r%08d.bin", i)
				mustB(b, o.AddResource(path, "application/octet-stream", data))
				iri, err := o.Publish(ctx, path, "bench", nil)
				mustB(b, err)
				mustB(b, o.Grant(ctx, c, path, policy.PurposeAny))
				b.StartTimer()
				mustB(b, c.Access(ctx, iri))
			}
		})
	}
}

// BenchmarkE5PolicyModification measures the Fig. 2(5) policy
// modification process: on-chain update plus push-out propagation to all
// copy holders.
func BenchmarkE5PolicyModification(b *testing.B) {
	for _, holders := range []int{1, 16} {
		b.Run(fmt.Sprintf("holders=%d", holders), func(b *testing.B) {
			d := newDeploymentB(b, core.Config{})
			ctx := context.Background()
			o, iri := ownerWithResourceB(b, d, 1024)
			consumers := make([]*core.Consumer, holders)
			for i := range holders {
				c, err := d.NewConsumer(fmt.Sprintf("c%d", i), policy.PurposeAny)
				mustB(b, err)
				mustB(b, o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
				mustB(b, c.Access(ctx, iri))
				consumers[i] = c
			}
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				v := o.NewPolicy("/data/r.bin")
				v.Version = uint64(i) + 2
				v.MaxRetention = time.Duration(30+i) * 24 * time.Hour
				mustB(b, o.ModifyPolicy(ctx, "/data/r.bin", v))
				for _, c := range consumers {
					mustB(b, c.WaitPolicyVersion(iri, v.Version, 10*time.Second))
				}
			}
		})
	}
}

// BenchmarkE6PolicyMonitoring measures the Fig. 2(6) policy monitoring
// process: request → pull-in collection → evidence on-chain → collection.
func BenchmarkE6PolicyMonitoring(b *testing.B) {
	for _, devices := range []int{1, 16} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			d := newDeploymentB(b, core.Config{})
			ctx := context.Background()
			o, iri := ownerWithResourceB(b, d, 1024)
			for i := range devices {
				c, err := d.NewConsumer(fmt.Sprintf("c%d", i), policy.PurposeAny)
				mustB(b, err)
				mustB(b, o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
				mustB(b, c.Access(ctx, iri))
			}
			b.ResetTimer()
			for b.Loop() {
				evidence, violations, err := o.Monitor(ctx, "/data/r.bin")
				mustB(b, err)
				if len(evidence) != devices || len(violations) != 0 {
					b.Fatalf("evidence=%d violations=%d", len(evidence), len(violations))
				}
			}
			reportGas(b, d, "submitEvidence")
		})
	}
}

// BenchmarkE7LocalVsRemote quantifies the §V-1 latency claim: TEE-local
// use versus re-fetching from the pod.
func BenchmarkE7LocalVsRemote(b *testing.B) {
	const size = 64 << 10
	b.Run("tee-local-use", func(b *testing.B) {
		d := newDeploymentB(b, core.Config{})
		ctx := context.Background()
		o, iri := ownerWithResourceB(b, d, size)
		c, err := d.NewConsumer("reader", policy.PurposeAny)
		mustB(b, err)
		mustB(b, o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
		mustB(b, c.Access(ctx, iri))
		b.SetBytes(size)
		b.ResetTimer()
		for b.Loop() {
			if _, err := c.Use(iri, policy.ActionUse); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-pod-fetch", func(b *testing.B) {
		d := newDeploymentB(b, core.Config{})
		ctx := context.Background()
		o, iri := ownerWithResourceB(b, d, size)
		c, err := d.NewConsumer("reader", policy.PurposeAny)
		mustB(b, err)
		mustB(b, o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
		cert, err := d.Market.PayFee(string(c.WebID), iri)
		mustB(b, err)
		decorate, err := podmanager.AttachCertificate(cert)
		mustB(b, err)
		client := solid.NewClient(c.WebID, c.Key, d.Clock)
		client.Decorate = decorate
		b.SetBytes(size)
		b.ResetTimer()
		for b.Loop() {
			if _, _, err := client.Get(iri); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8Verification measures the §V-2 verification primitives on
// the hot path: evidence signatures and payment certificates.
func BenchmarkE8Verification(b *testing.B) {
	b.Run("evidence-signature", func(b *testing.B) {
		key := cryptoutil.MustGenerateKey()
		msg := bytes.Repeat([]byte("evidence"), 64)
		sig, err := key.Sign(msg)
		mustB(b, err)
		b.ResetTimer()
		for b.Loop() {
			if !cryptoutil.Verify(key.Public(), msg, sig) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("payment-certificate", func(b *testing.B) {
		ca, err := cryptoutil.NewAuthority("market")
		mustB(b, err)
		subject := cryptoutil.MustGenerateKey()
		epoch := time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)
		cert, err := ca.Issue(subject, map[string]string{"feePaid": "https://r"}, epoch, epoch.Add(time.Hour))
		mustB(b, err)
		b.ResetTimer()
		for b.Loop() {
			if err := cert.Verify(ca.PublicBytes(), ca.Address(), epoch.Add(time.Minute)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9Gas runs DE App operations and reports their gas cost (the
// §V-4 affordability table's generator).
func BenchmarkE9Gas(b *testing.B) {
	d := newDeploymentB(b, core.Config{})
	ctx := context.Background()
	o, err := d.NewOwner("owner")
	mustB(b, err)
	mustB(b, o.InitializePod(ctx, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := fmt.Sprintf("/data/r%08d.bin", i)
		mustB(b, o.AddResource(path, "application/octet-stream", []byte("p")))
		b.StartTimer()
		_, err := o.Publish(ctx, path, "bench", nil)
		mustB(b, err)
	}
	b.StopTimer()
	reportGas(b, d, "registerResource")
	reportGas(b, d, "registerPod")
}

// BenchmarkE10Overhead compares an authorized read under plain Solid
// (baseline) and under the usage-control architecture (§V-3).
func BenchmarkE10Overhead(b *testing.B) {
	const size = 4096
	b.Run("baseline-solid", func(b *testing.B) {
		bl := core.NewBaseline(time.Time{})
		b.Cleanup(bl.Close)
		o := bl.NewOwner("owner")
		mustB(b, o.Add("/data/r.bin", "application/octet-stream", bytes.Repeat([]byte("x"), size), bl.Clock.Now()))
		client, webID := bl.NewClient("reader")
		mustB(b, o.GrantRead(webID, "/data/r.bin"))
		b.SetBytes(size)
		b.ResetTimer()
		for b.Loop() {
			if _, _, err := client.Get(o.URL() + "/data/r.bin"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("usage-control", func(b *testing.B) {
		d := newDeploymentB(b, core.Config{})
		ctx := context.Background()
		o, iri := ownerWithResourceB(b, d, size)
		c, err := d.NewConsumer("reader", policy.PurposeAny)
		mustB(b, err)
		mustB(b, o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
		cert, err := d.Market.PayFee(string(c.WebID), iri)
		mustB(b, err)
		decorate, err := podmanager.AttachCertificate(cert)
		mustB(b, err)
		client := solid.NewClient(c.WebID, c.Key, d.Clock)
		client.Decorate = decorate
		b.SetBytes(size)
		b.ResetTimer()
		for b.Loop() {
			if _, _, err := client.Get(iri); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOracleFanout compares sequential vs concurrent pull-in
// evidence collection (DESIGN.md ablation 2).
func BenchmarkAblationOracleFanout(b *testing.B) {
	const devices = 16
	for _, fanout := range []bool{false, true} {
		name := "sequential"
		if fanout {
			name = "fanout"
		}
		b.Run(name, func(b *testing.B) {
			d := newDeploymentB(b, core.Config{OracleFanout: fanout})
			ctx := context.Background()
			o, iri := ownerWithResourceB(b, d, 512)
			for i := range devices {
				c, err := d.NewConsumer(fmt.Sprintf("c%d", i), policy.PurposeAny)
				mustB(b, err)
				mustB(b, o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
				mustB(b, c.Access(ctx, iri))
			}
			b.ResetTimer()
			for b.Loop() {
				_, _, err := o.Monitor(ctx, "/data/r.bin")
				mustB(b, err)
			}
		})
	}
}

// BenchmarkAblationPolicyCache compares evaluating the policy on every
// use against reusing a cached decision (DESIGN.md ablation 3; the
// TEE evaluates per use, which this shows is cheap enough to keep).
func BenchmarkAblationPolicyCache(b *testing.B) {
	epoch := time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)
	pol := policy.New("https://r", "https://o", epoch)
	pol.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch, policy.PurposeAcademic}
	pol.MaxRetention = 30 * 24 * time.Hour
	pol.MaxUses = 1 << 30
	ctx := policy.UsageContext{
		Now: epoch.Add(time.Hour), Purpose: policy.PurposeAcademic,
		Action: policy.ActionUse, RetrievedAt: epoch,
	}
	b.Run("evaluate-per-use", func(b *testing.B) {
		for i := 0; b.Loop(); i++ {
			ctx.PriorUses = uint64(i)
			if d := pol.Evaluate(ctx); !d.Allowed {
				b.Fatal("denied")
			}
		}
	})
	b.Run("cached-decision", func(b *testing.B) {
		cached := pol.Evaluate(ctx)
		version := pol.Version
		for b.Loop() {
			// Cache hit: only the invalidation checks run.
			if pol.Version != version || !cached.Allowed {
				b.Fatal("cache miss")
			}
		}
	})
}

// BenchmarkAblationEncryptedMetadata measures the §V-1 privacy remedy:
// publishing policy metadata as plaintext JSON vs AES-GCM envelopes
// (DESIGN.md ablation 4).
func BenchmarkAblationEncryptedMetadata(b *testing.B) {
	epoch := time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)
	pol := policy.New("https://alice.pod/web/browsing.csv", "https://alice.pod/profile#me", epoch)
	pol.MaxRetention = 30 * 24 * time.Hour
	pol.AllowedPurposes = []policy.Purpose{policy.PurposeWebAnalytics}
	key := cryptoutil.DeriveEnvelopeKey([]byte("data-space-shared-secret"), "policy")

	b.Run("plaintext", func(b *testing.B) {
		for b.Loop() {
			if _, err := pol.Encode(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encrypted", func(b *testing.B) {
		for b.Loop() {
			raw, err := pol.Encode()
			if err != nil {
				b.Fatal(err)
			}
			blob, err := cryptoutil.EncryptEnvelope(key, raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cryptoutil.DecryptEnvelope(key, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBlockInterval reports policy propagation latency in
// simulated time under interval sealing (DESIGN.md ablation 1). Wall
// time is meaningless here; read the sim_ms/op metric.
func BenchmarkAblationBlockInterval(b *testing.B) {
	for _, interval := range []time.Duration{0, 50 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("interval=%s", interval), func(b *testing.B) {
			d := newDeploymentB(b, core.Config{Sealing: core.SealManually})
			ctx := context.Background()

			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
						if d.Nodes[0].PendingTxs() > 0 {
							if interval > 0 {
								d.Clock.Advance(interval)
							}
							_, _ = d.SealBlock()
						}
						time.Sleep(100 * time.Microsecond)
					}
				}
			}()
			b.Cleanup(func() { close(stop); <-done })

			o, iri := ownerWithResourceB(b, d, 512)
			c, err := d.NewConsumer("c", policy.PurposeAny)
			mustB(b, err)
			mustB(b, o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny))
			mustB(b, c.Access(ctx, iri))

			var simTotal time.Duration
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				simStart := d.Clock.Now()
				v := o.NewPolicy("/data/r.bin")
				v.Version = uint64(i) + 2
				mustB(b, o.ModifyPolicy(ctx, "/data/r.bin", v))
				mustB(b, c.WaitPolicyVersion(iri, v.Version, 10*time.Second))
				simTotal += d.Clock.Now().Sub(simStart)
			}
			b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim_ms/op")
		})
	}
}

// BenchmarkAblationBatchSubmit compares three ingestion paths at 100+ tx
// block sizes on a 3-validator cluster, each timed as ingest-all +
// seal-to-empty:
//
//   - per-tx-per-node: one SubmitTx per validator per transaction — the
//     seed's SubmitEverywhere semantics (one signature verification per
//     node per tx, one mempool lock acquisition each).
//   - per-tx: today's SubmitEverywhere (verified once per cluster, still
//     one broadcast per transaction).
//   - batch: Deployment.SubmitBatch — the whole batch verified once
//     through the concurrent pool and enqueued under a single mempool
//     lock acquisition per node.
func BenchmarkAblationBatchSubmit(b *testing.B) {
	for _, txs := range []int{100, 400} {
		for _, mode := range []string{"per-tx-per-node", "per-tx", "batch"} {
			b.Run(fmt.Sprintf("txs=%d/%s", txs, mode), func(b *testing.B) {
				d := newDeploymentB(b, core.Config{Validators: 3, Sealing: core.SealManually})
				sender := cryptoutil.MustGenerateKey()
				nonce := uint64(0)
				b.ResetTimer()
				for i := 0; b.Loop(); i++ {
					b.StopTimer()
					batch := make([]*chain.Tx, txs)
					for j := range txs {
						args := distexchangeRegisterPodArgs(int(nonce), "https://bench.example")
						tx, err := chain.NewTx(sender, nonce, d.DEAddr, "registerPod", args, distexchange.DefaultGasLimit)
						mustB(b, err)
						batch[j] = tx
						nonce++
					}
					b.StartTimer()
					switch mode {
					case "batch":
						_, err := d.SubmitBatch(batch)
						mustB(b, err)
					case "per-tx":
						for _, tx := range batch {
							_, err := d.Network.SubmitEverywhere(tx)
							mustB(b, err)
						}
					case "per-tx-per-node":
						for _, tx := range batch {
							for _, n := range d.Nodes {
								_, err := n.SubmitTx(tx)
								mustB(b, err)
							}
						}
					}
					for d.Nodes[0].PendingTxs() > 0 {
						_, err := d.SealBlock()
						mustB(b, err)
					}
				}
				b.ReportMetric(float64(txs), "txs/block")
			})
		}
	}
}

// BenchmarkAblationParallelVerify measures the bounded worker pool that
// batch submission and block validation run signatures through,
// sequential (workers=1, the seed behaviour) vs parallel (GOMAXPROCS).
func BenchmarkAblationParallelVerify(b *testing.B) {
	key := cryptoutil.MustGenerateKey()
	var contractAddr cryptoutil.Address
	copy(contractAddr[:], "benchmark-contract")
	const batch = 256
	txs := make([]*chain.Tx, batch)
	for i := range txs {
		tx, err := chain.NewTx(key, uint64(i), contractAddr, "set", map[string]string{"key": "k"}, 100_000)
		mustB(b, err)
		txs[i] = tx
	}
	b.Run("sequential", func(b *testing.B) {
		for b.Loop() {
			mustB(b, chain.VerifyTxSignatures(txs, 1))
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for b.Loop() {
			mustB(b, chain.VerifyTxSignatures(txs, 0))
		}
	})
}

// distexchangeRegisterPodArgs builds unique pod registration args per
// iteration.
func distexchangeRegisterPodArgs(i int, baseURL string) distexchange.RegisterPodArgs {
	return distexchange.RegisterPodArgs{
		OwnerWebID: fmt.Sprintf("%s/profile#pod%d", baseURL, i),
		Location:   baseURL + "/",
	}
}

// reportGas attaches the average gas of a DE App method as a benchmark
// metric.
func reportGas(b *testing.B, d *core.Deployment, method string) {
	for _, op := range d.Nodes[0].Costs().ByOperation() {
		if op.Method == method {
			b.ReportMetric(float64(op.AvgGas()), "gas/"+method)
		}
	}
}

// --- pod-serving layer (host + authorization cache) ---

// hostFixture builds a multi-pod host with one resource per pod and an
// authenticated client per owner.
func hostFixture(b *testing.B, pods int) (srv *httptest.Server, clients []*solid.Client, urls []string) {
	b.Helper()
	clk := simclock.NewSim(time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC))
	dir := solid.NewMapDirectory()
	host := solid.NewHost(dir, clk)
	srv = httptest.NewServer(host)
	b.Cleanup(srv.Close)

	clients = make([]*solid.Client, pods)
	urls = make([]string, pods)
	for i := range pods {
		name := fmt.Sprintf("owner%04d", i)
		key := cryptoutil.MustGenerateKey()
		owner := solid.WebID("https://" + name + ".example/profile#me")
		dir.Register(owner, key.PublicBytes())
		pod, err := host.CreatePod(name, owner, srv.URL, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := pod.Put(owner, "/data/r.bin", "application/octet-stream",
			bytes.Repeat([]byte("x"), 1024), clk.Now()); err != nil {
			b.Fatal(err)
		}
		clients[i] = solid.NewClient(owner, key, clk)
		urls[i] = srv.URL + "/pods/" + name + "/data/r.bin"
	}
	return srv, clients, urls
}

// BenchmarkSolidHostScaleOut measures authenticated GET latency through
// the pod-serving layer: a single pod served directly vs many pods
// multiplexed through one Host handler. The per-request cost should stay
// flat as the pod count grows (routing is a sharded map lookup).
func BenchmarkSolidHostScaleOut(b *testing.B) {
	b.Run("direct-single-pod", func(b *testing.B) {
		clk := simclock.NewSim(time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC))
		dir := solid.NewMapDirectory()
		key := cryptoutil.MustGenerateKey()
		owner := solid.WebID("https://owner.example/profile#me")
		dir.Register(owner, key.PublicBytes())
		pod := solid.NewPod(owner, "https://owner.pod")
		srv := httptest.NewServer(solid.NewServer(pod, dir, clk, nil))
		b.Cleanup(srv.Close)
		if err := pod.Put(owner, "/data/r.bin", "application/octet-stream",
			bytes.Repeat([]byte("x"), 1024), clk.Now()); err != nil {
			b.Fatal(err)
		}
		client := solid.NewClient(owner, key, clk)
		url := srv.URL + "/data/r.bin"
		b.ResetTimer()
		for b.Loop() {
			if _, _, err := client.Get(url); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, pods := range []int{16, 128} {
		b.Run(fmt.Sprintf("hosted-pods=%d", pods), func(b *testing.B) {
			_, clients, urls := hostFixture(b, pods)
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				k := i % pods
				if _, _, err := clients[k].Get(urls[k]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolidAuthorizeCache measures Pod.Authorize on a deep path
// (three ancestor levels between the resource and its governing ACL)
// with the generation-stamped decision cache on and off.
func BenchmarkSolidAuthorizeCache(b *testing.B) {
	setup := func(b *testing.B, cached bool) *solid.Pod {
		b.Helper()
		owner := solid.WebID("https://owner.example/profile#me")
		reader := solid.WebID("https://reader.example/profile#me")
		pod := solid.NewPod(owner, "https://owner.pod")
		pod.SetAuthCacheEnabled(cached)
		root := solid.NewACL(owner, "/")
		root.Grant("reader", []solid.WebID{reader}, "/", true, solid.ModeRead)
		if err := pod.SetACL(owner, "/", root); err != nil {
			b.Fatal(err)
		}
		if err := pod.Put(owner, "/a/b/c/r.bin", "application/octet-stream",
			[]byte("payload"), time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)); err != nil {
			b.Fatal(err)
		}
		return pod
	}
	reader := solid.WebID("https://reader.example/profile#me")
	b.Run("uncached", func(b *testing.B) {
		pod := setup(b, false)
		b.ResetTimer()
		for b.Loop() {
			if err := pod.Authorize(reader, "/a/b/c/r.bin", solid.ModeRead); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		pod := setup(b, true)
		b.ResetTimer()
		for b.Loop() {
			if err := pod.Authorize(reader, "/a/b/c/r.bin", solid.ModeRead); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSolidConditionalGet compares full re-fetches against
// ETag-revalidated 304 answers for a caching client.
func BenchmarkSolidConditionalGet(b *testing.B) {
	const size = 256 << 10
	run := func(b *testing.B, caching bool) {
		clk := simclock.NewSim(time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC))
		dir := solid.NewMapDirectory()
		key := cryptoutil.MustGenerateKey()
		owner := solid.WebID("https://owner.example/profile#me")
		dir.Register(owner, key.PublicBytes())
		pod := solid.NewPod(owner, "https://owner.pod")
		srv := httptest.NewServer(solid.NewServer(pod, dir, clk, nil))
		b.Cleanup(srv.Close)
		if err := pod.Put(owner, "/data/r.bin", "application/octet-stream",
			bytes.Repeat([]byte("x"), size), clk.Now()); err != nil {
			b.Fatal(err)
		}
		client := solid.NewClient(owner, key, clk)
		if caching {
			client.EnableCaching()
		}
		url := srv.URL + "/data/r.bin"
		b.SetBytes(size)
		b.ResetTimer()
		for b.Loop() {
			if _, _, err := client.Get(url); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("full-fetch", func(b *testing.B) { run(b, false) })
	b.Run("revalidated-304", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationScenarioThroughput measures the end-to-end scenario
// engine (internal/scenario): one iteration runs a full seeded 25-step
// multi-agent workload with fault injection, at both invariant-check
// cadences. This tracks the cost of system-wide invariant checking as a
// first-class perf number.
func BenchmarkAblationScenarioThroughput(b *testing.B) {
	run := func(b *testing.B, checkEvery int) {
		const steps = 25
		seed := int64(7)
		b.ResetTimer()
		for b.Loop() {
			res := scenario.New(scenario.Config{Seed: seed, Steps: steps, CheckEvery: checkEvery}).Run()
			if res.Failure != nil {
				b.Fatalf("scenario failed: %s", res.Failure)
			}
			seed++ // vary the workload across iterations
		}
		b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("check-every-step", func(b *testing.B) { run(b, 1) })
	b.Run("check-every-8", func(b *testing.B) { run(b, 8) })
}

// BenchmarkWALAppend measures the durable store's append hot path at
// 1 KiB records under each fsync policy — the per-block disk cost a
// durable validator pays on top of sealing.
func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("w"), 1024)
	for _, policy := range []store.SyncPolicy{store.SyncNever, store.SyncInterval, store.SyncAlways} {
		b.Run("fsync-"+policy.String(), func(b *testing.B) {
			w, _, err := store.OpenWAL(filepath.Join(b.TempDir(), "wal.log"), store.Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for b.Loop() {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotRecovery measures chain.OpenNode recovery time
// against the snapshot interval over a fixed 96-block ledger: a tighter
// interval means a fresher snapshot and a shorter diff-replay tail, at
// the cost of more snapshot writes during ingestion.
func BenchmarkSnapshotRecovery(b *testing.B) {
	const blocks = 96
	for _, interval := range []int{8, 32, 96} {
		b.Run(fmt.Sprintf("snapshot-every-%d", interval), func(b *testing.B) {
			dir := b.TempDir()
			key := cryptoutil.MustGenerateKey()
			clk := simclock.NewSim(time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC))
			runtime := contract.NewRuntime()
			deAddr := runtime.Deploy(distexchange.ContractName, distexchange.New(distexchange.Config{}))
			cfg := chain.Config{
				Key:              key,
				Authorities:      []cryptoutil.Address{key.Address()},
				Executor:         runtime,
				Clock:            clk,
				GenesisTime:      clk.Now(),
				DataDir:          dir,
				SnapshotInterval: interval,
				Persist:          store.Options{Sync: store.SyncNever},
			}
			node, err := chain.OpenNode(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := range blocks {
				args := distexchange.RegisterPodArgs{
					OwnerWebID: fmt.Sprintf("https://owner%d.example/profile#me", i),
					Location:   fmt.Sprintf("https://owner%d.example/", i),
				}
				tx, err := chain.NewTx(key, uint64(i), deAddr, "registerPod", args, distexchange.DefaultGasLimit)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := node.SubmitTx(tx); err != nil {
					b.Fatal(err)
				}
				clk.Advance(time.Second)
				if _, err := node.Seal(); err != nil {
					b.Fatal(err)
				}
			}
			wantRoot := node.State().Root()
			if err := node.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for b.Loop() {
				reopened, err := chain.OpenNode(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if reopened.Height() != blocks || reopened.State().Root() != wantRoot {
					b.Fatalf("bad recovery: height %d root mismatch", reopened.Height())
				}
				if err := reopened.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDurability runs the harness durability table once per
// iteration (quick mode), keeping the WAL-vs-memory ingestion comparison
// a tracked perf number in CI's bench smoke.
func BenchmarkAblationDurability(b *testing.B) {
	h := &core.Harness{Quick: true}
	b.ResetTimer()
	for b.Loop() {
		if table := h.AblationDurability(); len(table.Rows) != 4 {
			b.Fatalf("durability table has %d rows", len(table.Rows))
		}
	}
}
