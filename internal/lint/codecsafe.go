package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// tagConstRe matches the repo's record-tag constant naming convention
// (tagChainMeta, tagPodOp, ...).
var tagConstRe = regexp.MustCompile(`^tag[A-Z]`)

// encodeFuncRe / decodeFuncRe classify which side of the codec a
// function implements, by the repo's naming convention.
var (
	encodeFuncRe = regexp.MustCompile(`(?i)^(encode|append)`)
	decodeFuncRe = regexp.MustCompile(`(?i)^(decode)`)
)

// Codecsafe enforces the binary record codec's structural contracts:
//
//   - Every record tag constant (const tagXxx byte = 0xNN) must be used
//     on both sides of the codec: written by an encode/append function
//     AND matched by a decode function. A tag that is encoded but never
//     decoded is an unreadable record; decoded but never encoded is
//     dead protocol surface; two tags with the same value are a framing
//     ambiguity.
//   - Decoders must read element counts through the bounds-checked
//     store.Dec.Count, never a raw Uvarint that then drives a loop or
//     an allocation — a corrupt record's claimed count would otherwise
//     size a make() or spin a loop unboundedly.
//   - A make() sized from a decoded count must clamp its capacity with
//     min(count, store.DecodeCapHint): even a count that passes its
//     bound is still a corrupt record's claim.
func Codecsafe() *Analyzer {
	a := &Analyzer{
		Name: "codecsafe",
		Doc:  "record tags are encoded AND decoded; decoded counts are bounds-checked and capacity-clamped",
	}
	a.Run = func(pass *Pass) {
		checkTagPairing(pass)
		checkDecoderCounts(pass)
	}
	return a
}

// checkTagPairing verifies every tag constant appears on both codec
// sides and that no two tags share a value.
func checkTagPairing(pass *Pass) {
	info := pass.Pkg.Info

	type tagConst struct {
		obj     *types.Const
		pos     ast.Node
		encoded bool
		decoded bool
	}
	var tags []*tagConst
	byObj := make(map[types.Object]*tagConst)
	byValue := make(map[string]*tagConst)

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !tagConstRe.MatchString(name.Name) {
						continue
					}
					c, ok := info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					tc := &tagConst{obj: c, pos: name}
					tags = append(tags, tc)
					byObj[c] = tc
					val := c.Val().ExactString()
					if prev, dup := byValue[val]; dup {
						pass.Reportf(name.Pos(), "record tag %s duplicates the value of %s (%s): framing ambiguity",
							name.Name, prev.obj.Name(), constant.Val(c.Val()))
					} else {
						byValue[val] = tc
					}
				}
			}
		}
	}
	if len(tags) == 0 {
		return
	}

	// Classify every use by the codec side of its enclosing function.
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			tc, ok := byObj[info.Uses[id]]
			if !ok {
				return true
			}
			fn := enclosingFunc(stack)
			fd, ok := fn.(*ast.FuncDecl)
			if !ok {
				return true
			}
			switch {
			case encodeFuncRe.MatchString(fd.Name.Name):
				tc.encoded = true
			case decodeFuncRe.MatchString(fd.Name.Name):
				tc.decoded = true
			}
			return true
		})
	}

	for _, tc := range tags {
		switch {
		case !tc.encoded && !tc.decoded:
			pass.Reportf(tc.pos.Pos(), "record tag %s is neither encoded nor decoded: dead protocol surface", tc.obj.Name())
		case !tc.decoded:
			pass.Reportf(tc.pos.Pos(), "record tag %s is encoded but has no decode case: records written with it are unreadable", tc.obj.Name())
		case !tc.encoded:
			pass.Reportf(tc.pos.Pos(), "record tag %s is decoded but never encoded: dead decode surface", tc.obj.Name())
		}
	}
}

// checkDecoderCounts flags raw Uvarint results driving loops or
// allocations, and unclamped make() capacities fed by decoded counts.
func checkDecoderCounts(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncDecoderCounts(pass, fd)
		}
	}
	_ = info
}

func checkFuncDecoderCounts(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Objects holding the result of a Dec method call, by method name.
	uvarintVars := make(map[types.Object]bool)
	countVars := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(assign.Rhs) != 1 {
			return true
		}
		method := decMethodCall(info, assign.Rhs[0])
		if method == "" {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			switch method {
			case "Uvarint":
				uvarintVars[obj] = true
			case "Count":
				countVars[obj] = true
			}
		}
		return true
	})

	usesObj := func(e ast.Expr, set map[types.Object]bool) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && set[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// for range d.Uvarint() — direct or via a variable.
			if decMethodCall(info, n.X) == "Uvarint" || usesObj(n.X, uvarintVars) {
				pass.Reportf(n.Pos(), "loop bounded by a raw Uvarint count; use Dec.Count with an element bound")
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "make" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			for _, arg := range n.Args[1:] {
				if decMethodCall(info, arg) == "Uvarint" || usesObj(arg, uvarintVars) {
					pass.Reportf(arg.Pos(), "allocation sized by a raw Uvarint count; use Dec.Count and clamp with min(count, store.DecodeCapHint)")
					continue
				}
				if !usesObj(arg, countVars) {
					continue
				}
				// A Count-derived size must be clamped by min(...,
				// DecodeCapHint).
				if !isClampedByCapHint(info, arg) {
					pass.Reportf(arg.Pos(), "allocation sized by a decoded count without min(count, store.DecodeCapHint): a corrupt record's claim sizes this make")
				}
			}
		}
		return true
	})
}

// decMethodCall returns the method name when e is a call to a method on
// store.Dec (or *store.Dec), else "".
func decMethodCall(info *types.Info, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	name := types.TypeString(recv, nil)
	if !strings.HasSuffix(name, "/store.Dec") && name != "store.Dec" {
		return ""
	}
	return fn.Name()
}

// isClampedByCapHint reports whether the expression is (or contains) a
// min(..., DecodeCapHint) clamp.
func isClampedByCapHint(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "min" {
		return false
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "DecodeCapHint" {
				found = true
			}
			if id, ok := n.(*ast.Ident); ok && id.Name == "DecodeCapHint" {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
