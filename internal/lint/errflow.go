package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"slices"
)

// ErrflowPackages are the durability-critical packages: a discarded
// error from a WAL append, an fsync, a snapshot write, or a store close
// in any of them silently breaks the "memory never ahead of
// disk-acknowledged state" invariant.
var ErrflowPackages = []string{
	"repro/internal/store",
	"repro/internal/chain",
	"repro/internal/solid",
}

// storePkgPath is the package whose error returns must always be
// consumed by callers in the scoped packages.
const storePkgPath = "repro/internal/store"

// criticalLocalRe matches durability-relevant methods defined inside
// the scoped packages themselves (podStore.appendOp, Node.Close, ...).
var criticalLocalRe = regexp.MustCompile(`(?i)^(append|sync|flush|close|crash|writesnapshot|snapshot)`)

// criticalOSFile matches the os.File methods the store package's own
// durability rests on.
var criticalOSFile = map[string]bool{
	"Write": true, "Sync": true, "Close": true, "Truncate": true, "Seek": true,
}

// Errflow forbids discarding errors from durability-critical calls in
// the scoped packages. A call is durability-critical when its callee is
//
//   - any error-returning function or method of internal/store,
//   - an error-returning method defined in the scoped package whose
//     name matches append/sync/flush/close/crash/snapshot, or
//   - (inside internal/store itself) an os.File Write/Sync/Close/
//     Truncate/Seek.
//
// "Discarded" means: used as a bare expression statement, assigned to
// the blank identifier, or deferred/spawned with `defer`/`go` (which
// throws the result away). Errors in already-failing paths must still
// be joined or logged — or carry a reasoned //repolint:ignore waiver.
func Errflow(pkgs ...string) *Analyzer {
	a := &Analyzer{
		Name: "errflow",
		Doc:  "errors from WAL appends, fsync, snapshot writes, and store closes must not be discarded",
	}
	a.Run = func(pass *Pass) {
		if !slices.Contains(pkgs, pass.Pkg.Path) {
			return
		}
		for _, f := range pass.Pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				label := criticalCall(pass, call)
				if label == "" {
					return true
				}
				if how := discardedError(pass, call, stack); how != "" {
					pass.Reportf(call.Pos(), "error from %s discarded (%s); handle, join, or waive it", label, how)
				}
				return true
			})
		}
	}
	return a
}

// criticalCall reports whether the call is durability-critical,
// returning a human-readable callee label ("" when not).
func criticalCall(pass *Pass, call *ast.CallExpr) string {
	info := pass.Pkg.Info
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return ""
	}
	recvType := receiverTypeString(sig)
	label := fn.Name()
	if recvType != "" {
		label = recvType + "." + fn.Name()
	}
	switch fn.Pkg().Path() {
	case storePkgPath:
		return label
	case pass.Pkg.Path:
		if sig.Recv() != nil && criticalLocalRe.MatchString(fn.Name()) {
			return label
		}
	case "os":
		if pass.Pkg.Path == storePkgPath && recvType == "File" && criticalOSFile[fn.Name()] {
			return "os.File." + fn.Name()
		}
	}
	return ""
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.TypeString(res.At(res.Len()-1).Type(), nil) == "error"
}

// receiverTypeString renders the receiver's base type name ("" for
// package-level functions).
func receiverTypeString(sig *types.Signature) string {
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// discardedError classifies how the call's error result is thrown away;
// "" means it is consumed.
func discardedError(pass *Pass, call *ast.CallExpr, stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	parent := stack[len(stack)-1]
	switch parent := parent.(type) {
	case *ast.ExprStmt:
		return "bare call"
	case *ast.DeferStmt:
		if parent.Call == call {
			return "defer discards the result"
		}
	case *ast.GoStmt:
		if parent.Call == call {
			return "go discards the result"
		}
	case *ast.AssignStmt:
		// Find which result index is the error (the last one) and check
		// the identifier it lands in.
		if !slices.Contains(parent.Rhs, ast.Expr(call)) {
			return ""
		}
		if len(parent.Rhs) == 1 && len(parent.Lhs) > 1 {
			// x, err := f() — error is the last LHS.
			if isBlank(parent.Lhs[len(parent.Lhs)-1]) {
				return "assigned to _"
			}
			return ""
		}
		// err := f() (single value) or aligned multi-assign.
		for i, rhs := range parent.Rhs {
			if rhs == ast.Expr(call) && i < len(parent.Lhs) && isBlank(parent.Lhs[i]) {
				return "assigned to _"
			}
		}
	}
	return ""
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
