// Package lint is the repo-specific static analysis suite: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis (which the
// build environment does not vendor) plus four analyzers that turn this
// repository's hand-enforced correctness contracts into mechanical
// checks:
//
//   - lockcheck: struct fields annotated "// guarded by <mu>" may only
//     be touched while the named mutex on the same receiver is held, and
//     sync.Mutex / sync.RWMutex values must never be copied.
//   - determinism: packages on the deterministic replay path (chain
//     execution and codecs, the contract runtime, the store codec, the
//     scenario engine) must not read the wall clock or the global
//     math/rand source, and must not let Go's randomized map iteration
//     order leak into encoders, hashes, or accumulated slices without an
//     intervening sort.
//   - codecsafe: every record tag constant that is encoded must have a
//     matching decode case and vice versa, and decoders must read
//     element counts through the bounds-checked Dec.Count (never a raw
//     Uvarint feeding a loop or allocation).
//   - errflow: errors from WAL appends, fsync, snapshot writes, and
//     store closes must not be discarded in the durability-critical
//     packages.
//
// Findings a human has reviewed can be waived in place with
//
//	//repolint:ignore <analyzer> <reason>
//
// either on the offending line or on the line directly above it. A
// waiver without a reason, naming an unknown analyzer, or matching no
// finding is itself a finding, so stale waivers cannot accumulate.
//
// The cmd/repolint command is the driver ("repolint ./..." must exit
// zero on this repository; CI enforces it). Analyzers are tested with
// fixture packages under testdata/src in the analysistest style: every
// line expecting a diagnostic carries a "// want `regexp`" comment.
package lint
