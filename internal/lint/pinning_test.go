package lint

// Pinning tests for the acceptance contracts: the guard annotations on
// the repo's concurrency-critical structs must stay present (deleting
// one fails TestGuardAnnotationsPinned), and a wall-clock call slipped
// into the replay path must be detected (TestWallClockInjectionDetected
// proves it by injecting one into a copy of chain/state.go).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// requiredGuards pins the documented lock contracts: package path →
// "Struct.field" → guarding mutex. Removing a "guarded by" annotation
// from any of these fields fails this list before it silently stops
// being checked.
var requiredGuards = map[string]map[string]string{
	"repro/internal/chain": {
		"Node.state":             "mu",
		"Node.blocks":            "mu",
		"Node.waiters":           "mu",
		"Node.mempool":           "mpMu",
		"Node.nonces":            "mpMu",
		"Node.stopSealing":       "sealMu",
		"Node.evidence":          "evMu",
		"State.data":             "mu",
		"State.journal":          "mu",
		"State.root":             "mu",
		"snapshotWriter.pending": "mu",
		"snapshotWriter.closed":  "mu",
	},
	"repro/internal/solid": {
		"Pod.resources":  "mu",
		"Pod.acls":       "mu",
		"Pod.postSeq":    "mu",
		"Pod.persist":    "mu",
		"Pod.authCache":  "authMu",
		"hostShard.pods": "mu",
	},
	"repro/internal/store": {
		"WAL.f":       "mu",
		"WAL.size":    "mu",
		"WAL.pending": "mu",
		"WAL.closed":  "mu",
	},
}

func TestGuardAnnotationsPinned(t *testing.T) {
	pkgs, err := Load("../..", "./internal/chain", "./internal/solid", "./internal/store")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for path, want := range requiredGuards {
		pkg, ok := byPath[path]
		if !ok {
			t.Fatalf("package %s not loaded", path)
		}
		got := LockGuards(pkg)
		for field, mu := range want {
			if got[field] != mu {
				t.Errorf("%s: field %s must carry a \"// guarded by %s\" annotation (got %q); "+
					"the lock contract is load-bearing — restore the comment rather than relaxing this test",
					path, field, mu, got[field])
			}
		}
	}
}

// TestWallClockInjectionDetected re-type-checks internal/chain with a
// time.Now() call appended to state.go and requires the determinism
// analyzer to flag it: the acceptance criterion that adding wall-clock
// reads to the replay path fails repolint.
func TestWallClockInjectionDetected(t *testing.T) {
	const chainDir = "../../internal/chain"
	names, err := filepath.Glob(filepath.Join(chainDir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	fixtureExports.once.Do(func() {
		fixtureExports.m, fixtureExports.err = ExportsFor("../..", "./...", "std")
	})
	if fixtureExports.err != nil {
		t.Fatalf("loading export data: %v", fixtureExports.err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	mutated := false
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		text := string(src)
		if filepath.Base(name) == "state.go" {
			// state.go imports no wall-clock today; splice "time" into its
			// import block and append a probe that reads the clock.
			if !strings.Contains(text, "import (") {
				t.Fatalf("state.go has no import block to splice %q into", "time")
			}
			text = strings.Replace(text, "import (", "import (\n\t\"time\"", 1)
			text += "\n\nfunc lintMutationProbe() int64 { return time.Now().UnixNano() }\n"
			mutated = true
		}
		f, err := parser.ParseFile(fset, name, text, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	if !mutated {
		t.Fatal("state.go not found under internal/chain")
	}
	pkg, err := TypeCheck(fset, "repro/internal/chain", files, NewExportImporter(fset, fixtureExports.m))
	if err != nil {
		t.Fatalf("type-checking mutated chain package: %v", err)
	}
	for _, f := range Run([]*Package{pkg}, []*Analyzer{Determinism(DeterministicPackages...)}) {
		if filepath.Base(f.Pos.Filename) == "state.go" && strings.Contains(f.Message, "time.Now") {
			return // detected, as required
		}
	}
	t.Fatal("determinism analyzer did not flag the injected time.Now() in state.go")
}

// TestObsWallClockConfinement pins the observability boundary: internal/obs
// is the one package allowed to read the wall clock (latency histograms and
// span timestamps are measurements, not replayed state), and it stays OUT of
// the determinism analyzer's replay-path set. The second half proves the
// exclusion is load-bearing rather than vacuous: re-running the analyzer
// with obs added to the deterministic set must flag its time.Now calls — so
// if obs ever migrates onto the replay path, flipping the list is enough to
// catch every wall-clock read it carries.
func TestObsWallClockConfinement(t *testing.T) {
	const obsPath = "repro/internal/obs"
	if slices.Contains(DeterministicPackages, obsPath) {
		t.Fatalf("%s is in DeterministicPackages; obs owns the wall clock by design — "+
			"instrumented replay-path packages call obs timers instead of time.Now directly", obsPath)
	}
	for _, replayPkg := range []string{"repro/internal/chain", "repro/internal/store", "repro/internal/scenario"} {
		if !slices.Contains(DeterministicPackages, replayPkg) {
			t.Fatalf("%s missing from DeterministicPackages; the instrumented replay path must stay audited", replayPkg)
		}
	}

	pkgs, err := Load("../..", "./internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, []*Analyzer{Determinism(append(slices.Clone(DeterministicPackages), obsPath)...)})
	for _, f := range findings {
		if strings.Contains(f.Message, "time.Now") {
			return // obs does read the clock, and the analyzer sees it
		}
	}
	t.Fatalf("determinism analyzer found no time.Now in internal/obs when auditing it; "+
		"the confinement test is vacuous (findings: %d)", len(findings))
}
