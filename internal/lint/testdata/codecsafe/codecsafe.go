// Package fixture exercises the codecsafe analyzer: tag constants must
// appear on both codec sides with distinct values, raw Uvarint results
// must not drive loops or allocations, and Count-derived sizes must be
// clamped with min(count, store.DecodeCapHint).
package fixture

import "repro/internal/store"

const (
	tagGood   byte = 0x01
	tagOrphan byte = 0x02 // want "record tag tagOrphan is encoded but has no decode case"
	tagGhost  byte = 0x03 // want "record tag tagGhost is decoded but never encoded"
	tagDead   byte = 0x04 // want "record tag tagDead is neither encoded nor decoded"
	tagDup    byte = 0x01 // want "record tag tagDup duplicates the value of tagGood" "record tag tagDup is encoded but has no decode case"
)

func appendRecord(buf []byte, body []byte) []byte {
	buf = append(buf, tagGood)
	buf = append(buf, tagOrphan)
	buf = append(buf, tagDup)
	return append(buf, body...)
}

func decodeRecord(d *store.Dec) bool {
	switch d.Byte() {
	case tagGood, tagGhost:
		return true
	}
	return false
}

// decodeSeq ranges over a raw Uvarint: a corrupt record's claimed count
// spins this loop unboundedly.
func decodeSeq(d *store.Dec) []uint64 {
	var out []uint64
	for range d.Uvarint() { // want "loop bounded by a raw Uvarint count"
		out = append(out, d.Uvarint())
	}
	return out
}

// decodeRaw sizes an allocation straight from a raw Uvarint.
func decodeRaw(d *store.Dec) []uint64 {
	n := d.Uvarint()
	out := make([]uint64, 0, n) // want "allocation sized by a raw Uvarint count"
	for i := uint64(0); i < n; i++ {
		out = append(out, d.Uvarint())
	}
	return out
}

// decodeUnclamped reads through Count but trusts the claim for sizing.
func decodeUnclamped(d *store.Dec) []uint64 {
	n := d.Count("items", 1<<20)
	out := make([]uint64, 0, n) // want "allocation sized by a decoded count without min"
	for i := uint64(0); i < n; i++ {
		out = append(out, d.Uvarint())
	}
	return out
}

// decodeGood is the sanctioned shape: bounds-checked Count, clamped cap.
func decodeGood(d *store.Dec) []uint64 {
	n := d.Count("items", 1<<20)
	out := make([]uint64, 0, min(n, store.DecodeCapHint))
	for i := uint64(0); i < n; i++ {
		out = append(out, d.Uvarint())
	}
	return out
}
