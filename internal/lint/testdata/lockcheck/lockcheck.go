// Package fixture exercises the lockcheck analyzer: guarded-field
// access with and without the named mutex held, the Locked-suffix
// caller-must-hold convention, unpublished (freshly constructed)
// values, annotation validation, and mutex copies.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// NewCounter is a same-package constructor: its result is unpublished.
func NewCounter() *counter { return &counter{} }

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want "read of counter.n .guarded by mu. without c.mu held"
}

func (c *counter) BadWrite() {
	c.n = 1 // want "write to counter.n .guarded by mu. without c.mu held"
}

// bumpLocked's suffix promises the caller holds mu: no finding.
func (c *counter) bumpLocked() { c.n++ }

// fresh builds the value it touches: unpublished, no lock needed.
func fresh() *counter {
	c := &counter{}
	c.n = 7
	return c
}

// constructed gets its value from a same-package New*: also unpublished.
func constructed() *counter {
	c := NewCounter()
	c.n = 9
	return c
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// BadPut holds only the read lock: RLock does not license a write.
func (t *table) BadPut(k string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = 1 // want "write to table.m .guarded by mu. without t.mu held"
}

func (t *table) GoodPut(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = 1
}

func (t *table) GoodDelete(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, k)
}

type wrong struct {
	x int // guarded by lock want "annotated 'guarded by lock', but lock is not a mutex field"
}

func useWrong(w *wrong) int { return w.x }

func copyMutex(mu sync.Mutex) {} // want "mutex passed by value"

func (c *counter) Expose() sync.Mutex { // want "mutex returned by value"
	return c.mu // want "mutex returned by value"
}
