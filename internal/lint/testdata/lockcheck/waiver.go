// Waiver-directive cases: a reasoned waiver suppresses its finding, a
// reasonless one is itself a finding and suppresses nothing, an unused
// waiver is a finding, and so is one naming an unknown analyzer.
package fixture

func (c *counter) waivedRead() int {
	//repolint:ignore lockcheck fixture exercises waiver suppression
	return c.n
}

func (c *counter) reasonlessWaiver() int {
	// want-below "waiver for lockcheck has no reason"
	//repolint:ignore lockcheck
	return c.n // want "read of counter.n .guarded by mu. without c.mu held"
}

func unusedWaiver() int {
	// want-below "unused waiver: no lockcheck finding"
	//repolint:ignore lockcheck nothing to suppress here
	return 0
}

func unknownAnalyzer() int {
	// want-below "waiver names unknown analyzer"
	//repolint:ignore nosuchanalyzer some reason text
	return 0
}
