// Package fixture exercises the determinism analyzer: wall-clock and
// timer calls, global vs seeded rand, crypto/rand, and map-iteration
// order leaking into appends and write-like sinks. The fixture test
// checks it twice — once as a replay-path package (everything fires)
// and once under a neutral import path (nothing fires).
package fixture

import (
	crand "crypto/rand"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now on the deterministic replay path"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep on the deterministic replay path"
}

func timer() {
	t := time.NewTimer(time.Second) // want "time.NewTimer on the deterministic replay path"
	t.Stop()
}

// seeded constructs an explicit source: allowed.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func globalRand() int {
	return rand.Intn(10) // want "math/rand.Intn samples the global rand source"
}

func cryptoRand(buf []byte) {
	crand.Read(buf) // want "crypto/rand.Read on the deterministic replay path"
}

func cryptoReader() any {
	return crand.Reader // want "crypto/rand.Reader on the deterministic replay path"
}

// leak appends map keys and never sorts them: iteration order escapes.
func leak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration without a later sort"
	}
	return keys
}

// sortedKeys is the sanctioned pattern: collect, then sort.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// digest feeds map iteration straight into a hash: order-sensitive.
func digest(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want "call to Write inside map iteration"
	}
	return h.Sum64()
}

type item struct{ id uint64 }

// Hash is a pure zero-argument getter: nothing is sunk.
func (it *item) Hash() uint64 { return it.id }

func anyZero(m map[string]*item) bool {
	for _, it := range m {
		if it.Hash() == 0 {
			return true
		}
	}
	return false
}
