package fixture

// The priced-mempool selection shape used by internal/chain's block
// builder, distilled: candidates live in a slice-backed container/heap
// with a strict total-order comparator (price, then an id tie-break),
// seeded by iterating another slice and drained with Init/Fix/Pop. The
// pop sequence is deterministic regardless of push order, and no map is
// ranged anywhere on the path — selectPriced must produce NO findings.
// This file pins that the determinism analyzer accepts the sanctioned
// slice-backed heap idiom rather than flagging heap use wholesale. The
// contrast case seeds the same heap by ranging a map without a sort,
// which leaks iteration order into the backing slice and must still be
// flagged.

import "container/heap"

type cand struct {
	price uint64
	id    string
}

// candHeap orders by price descending, id ascending: a strict total
// order, so heap.Pop is deterministic whatever order Push saw.
type candHeap []cand

func (h candHeap) Len() int { return len(h) }

func (h candHeap) Less(i, j int) bool {
	if h[i].price != h[j].price {
		return h[i].price > h[j].price
	}
	return h[i].id < h[j].id
}

func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() any     { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// selectPriced drains up to max candidates in price order. The heap is
// seeded from a slice snapshot — never from a map — so the whole
// selection is map-iteration-free and must lint clean.
func selectPriced(queued []cand, max int) []string {
	cands := make(candHeap, 0, len(queued))
	for _, c := range queued {
		if c.price > 0 {
			cands = append(cands, c)
		}
	}
	heap.Init(&cands)
	out := make([]string, 0, max)
	for len(out) < max && cands.Len() > 0 {
		c := cands[0]
		out = append(out, c.id)
		heap.Pop(&cands)
	}
	return out
}

// selectFromMap seeds the heap's backing slice straight out of a map
// range with no later sort: heap.Init imposes only heap order, not a
// total order, so iteration order leaks into ties and the append must
// be flagged.
func selectFromMap(queued map[string]uint64) []string {
	cands := make(candHeap, 0, len(queued))
	for id, price := range queued {
		cands = append(cands, cand{price: price, id: id}) // want "append to cands inside map iteration without a later sort"
	}
	heap.Init(&cands)
	out := make([]string, 0, len(cands))
	for cands.Len() > 0 {
		out = append(out, heap.Pop(&cands).(cand).id)
	}
	return out
}
