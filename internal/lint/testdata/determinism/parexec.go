package fixture

// The parallel-scheduler shape used by internal/chain's transaction
// executor, distilled: a worker pool claiming indices off an atomic
// counter, per-worker result slots addressed by index, and a merge that
// collects map keys and sorts before applying. All of it is
// order-insensitive by construction and must produce NO findings — this
// file pins that the determinism analyzer accepts the sanctioned
// worker-pool + sorted-merge idiom rather than flagging every goroutine
// on the replay path.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// executeIndexed fans work out over workers goroutines. Each result
// lands in its own index slot, so assembly order is scheduling-free.
func executeIndexed(inputs []string, workers int) []string {
	results := make([]string, len(inputs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(inputs) {
					return
				}
				results[i] = inputs[i] + "!"
			}
		}()
	}
	wg.Wait()
	return results
}

// mergeSorted folds one overlay layer into another in sorted key order:
// the collect-then-sort pattern the analyzer sanctions.
func mergeSorted(dst, src map[string]string) {
	keys := make([]string, 0, len(src))
	for k := range src {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst[k] = src[k]
	}
}
