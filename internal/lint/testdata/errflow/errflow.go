// Package fixture exercises the errflow analyzer checked as a scoped
// package (internal/solid): errors from internal/store callees and from
// critical-named local methods must not be discarded; plain local calls
// are out of scope.
package fixture

import "repro/internal/store"

type journal struct{ wal *store.WAL }

// appendOp matches the critical local-method naming convention.
func (j *journal) appendOp(b []byte) error { return j.wal.Append(b) }

func bareCall(w *store.WAL, b []byte) {
	w.Append(b) // want "error from WAL.Append discarded .bare call."
}

func deferred(w *store.WAL) {
	defer w.Close() // want "error from WAL.Close discarded .defer discards the result."
}

func spawned(w *store.WAL) {
	go w.Close() // want "error from WAL.Close discarded .go discards the result."
}

func blanked(w *store.WAL, b []byte) {
	_ = w.Append(b) // want "error from WAL.Append discarded .assigned to _."
}

func localCritical(j *journal, b []byte) {
	j.appendOp(b) // want "error from journal.appendOp discarded .bare call."
}

func handled(w *store.WAL, b []byte) error {
	if err := w.Append(b); err != nil {
		return err
	}
	return w.Close()
}

// localPlain is an error-returning local function with a non-critical
// name: discarding it is someone else's lint problem, not errflow's.
func localPlain() error { return nil }

func outOfScope() {
	localPlain()
}
