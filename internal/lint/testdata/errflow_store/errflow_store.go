// Package fixture exercises errflow checked as internal/store itself:
// the os.File durability methods (Write, Sync, Close, Truncate, Seek)
// are critical there, while non-durability methods like Read are not.
package fixture

import "os"

func closeDiscarded(f *os.File) {
	f.Close() // want "error from os.File.Close discarded .bare call."
}

func syncDeferred(f *os.File) {
	defer f.Sync() // want "error from os.File.Sync discarded .defer discards the result."
}

func readIsFine(f *os.File, b []byte) {
	f.Read(b)
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func waived(f *os.File) {
	//repolint:ignore errflow fixture exercises the errflow waiver path
	defer f.Close()
}
