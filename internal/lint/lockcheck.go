package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// guardedByRe extracts the mutex name from a "// guarded by <mu>" field
// comment.
var guardedByRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// Lockcheck enforces the repository's lock-discipline annotations:
//
//   - A struct field whose doc or line comment says "guarded by <mu>"
//     may only be read or written while <mu> (a sync.Mutex or RWMutex
//     field of the same struct) is held on the same receiver value.
//     "Held" is judged syntactically: a <base>.<mu>.Lock() — or, for
//     reads, RLock() — call textually precedes the access inside the
//     same function, or the enclosing function's name ends in "Locked"
//     (the repo's caller-must-hold convention), or the base variable was
//     just built in the same function — from a composite literal, new(),
//     or a same-package New* constructor — and is therefore unpublished
//     (no other goroutine can reach it, so no locking is needed; the
//     repo's constructors never memoize or return shared values).
//   - sync.Mutex and sync.RWMutex values must never be copied: not
//     passed, returned, or assigned by value.
//
// The positional judgment is an approximation (it cannot see an Unlock
// between the Lock and the access), but every violation it reports is a
// real one to a human reader too; the annotations plus this check turn
// the package doc's locking contracts into compile-time findings.
func Lockcheck() *Analyzer {
	a := &Analyzer{
		Name: "lockcheck",
		Doc:  "fields annotated 'guarded by <mu>' are only touched with the mutex held; mutexes are never copied",
	}
	a.Run = func(pass *Pass) {
		guards := collectGuards(pass)
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncGuards(pass, fd, guards)
			}
		}
		checkMutexCopies(pass)
	}
	return a
}

// guardInfo records one annotated field and the mutex that guards it.
type guardInfo struct {
	structName string
	fieldName  string
	mutexName  string
}

// LockGuards returns the package's guarded-field annotations as a
// "Struct.field" → mutex-name map. The pinning tests assert the
// documented guards of chain.Node, chain.State, solid.Pod, store.WAL
// (and friends) stay annotated: deleting an annotation fails them.
func LockGuards(pkg *Package) map[string]string {
	pass := &Pass{Analyzer: &Analyzer{Name: "lockcheck"}, Pkg: pkg, report: func(Diagnostic) {}}
	out := make(map[string]string)
	for _, g := range collectGuards(pass) {
		out[g.structName+"."+g.fieldName] = g.mutexName
	}
	return out
}

// collectGuards scans struct declarations for "guarded by <mu>" field
// annotations, validating that the named mutex is a sync.Mutex or
// sync.RWMutex field of the same struct.
func collectGuards(pass *Pass) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexFields := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj, ok := pass.Pkg.Info.Defs[name].(*types.Var); ok && isMutexType(obj.Type()) {
						mutexFields[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !mutexFields[mu] {
					pass.Reportf(field.Pos(),
						"field %s.%s is annotated 'guarded by %s', but %s is not a mutex field of %s",
						ts.Name.Name, fieldNames(field), mu, mu, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					obj, ok := pass.Pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					guards[obj] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, mutexName: mu}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation returns the mutex name a field's comments claim guards
// it, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func fieldNames(field *ast.Field) string {
	names := make([]string, 0, len(field.Names))
	for _, n := range field.Names {
		names = append(names, n.Name)
	}
	return strings.Join(names, ",")
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (by
// value; pointers are not lockable copies).
func isMutexType(t types.Type) bool {
	s := types.TypeString(t, nil)
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// lockEvent is one <base>.<mu>.Lock() / RLock() call inside a function
// body.
type lockEvent struct {
	base  string // rendered base expression, e.g. "n" or "h.shards[i]"
	mutex string
	read  bool // RLock (shared) rather than Lock (exclusive)
	pos   token.Pos
}

// checkFuncGuards enforces guarded-field access rules inside one
// function declaration.
func checkFuncGuards(pass *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardInfo) {
	if len(guards) == 0 {
		return
	}
	callerHolds := strings.HasSuffix(fd.Name.Name, "Locked")

	// Pass 1: lock acquisitions and locally constructed (unpublished)
	// values.
	var locks []lockEvent
	fresh := make(map[types.Object]bool) // vars initialized from composite literals
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if base, mu, read, ok := lockCall(n); ok {
				locks = append(locks, lockEvent{base: base, mutex: mu, read: read, pos: n.Pos()})
			}
		case *ast.AssignStmt:
			// n, err := NewNode(cfg): one constructor call, multiple LHS —
			// the constructed value is always the first.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 && isConstructorCall(pass, n.Rhs[0]) {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !isCompositeConstruction(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if i >= len(n.Names) || !isCompositeConstruction(rhs) {
					continue
				}
				if obj := pass.Pkg.Info.Defs[n.Names[i]]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})

	// Pass 2: guarded-field accesses.
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, guarded := guards[field]
		if !guarded {
			return true
		}
		if callerHolds {
			return true
		}
		if rootIsFresh(pass, sel.X, fresh) {
			return true
		}
		write := isWriteAccess(sel, stack)
		base := types.ExprString(sel.X)
		for _, le := range locks {
			if le.base != base || le.mutex != g.mutexName || le.pos >= sel.Pos() {
				continue
			}
			if write && le.read {
				continue // RLock does not license a write; keep looking
			}
			return true
		}
		verb := "read of"
		hint := g.mutexName + ".Lock() or " + g.mutexName + ".RLock()"
		if write {
			verb = "write to"
			hint = g.mutexName + ".Lock()"
		}
		pass.Reportf(sel.Pos(),
			"%s %s.%s (guarded by %s) without %s.%s held: no preceding %s in %s",
			verb, g.structName, g.fieldName, g.mutexName, base, g.mutexName, hint, fd.Name.Name)
		return true
	})
}

// lockCall decomposes a call of the form <base>.<mu>.Lock() or
// <base>.<mu>.RLock().
func lockCall(call *ast.CallExpr) (base, mutex string, read, ok bool) {
	fn, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	switch fn.Sel.Name {
	case "Lock":
	case "RLock":
		read = true
	default:
		return "", "", false, false
	}
	muSel, isSel := fn.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	return types.ExprString(muSel.X), muSel.Sel.Name, read, true
}

// isConstructorCall reports whether an expression calls a same-package
// New* constructor: the returned value is unpublished (the repo's
// constructors build and return fresh values, never shared ones).
func isConstructorCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || !strings.HasPrefix(id.Name, "New") {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pass.Pkg.Path
}

// isCompositeConstruction reports whether an expression builds a struct
// value directly: T{...}, &T{...}, or new(T).
func isCompositeConstruction(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// rootIsFresh reports whether the access base bottoms out in a variable
// the current function constructed from a composite literal (an
// unpublished value, safe to touch without its lock).
func rootIsFresh(pass *Pass, e ast.Expr, fresh map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return fresh[pass.Pkg.Info.Uses[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isWriteAccess classifies a guarded-field selector as a write: it (or
// an index/deref of it) is assigned, incremented, address-taken, or
// passed to the delete builtin.
func isWriteAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var child ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
			child = parent
			continue
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return parent.X == child
		case *ast.UnaryExpr:
			return parent.Op == token.AND && parent.X == child
		case *ast.CallExpr:
			if id, ok := parent.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return len(parent.Args) > 0 && parent.Args[0] == child
			}
			return false
		default:
			return false
		}
	}
	return false
}

// checkMutexCopies flags mutex values crossing a copy boundary:
// parameters, results, return values, assignments, and call arguments
// of type sync.Mutex / sync.RWMutex (by value).
func checkMutexCopies(pass *Pass) {
	info := pass.Pkg.Info
	exprIsMutexValue := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		if _, isLit := e.(*ast.CompositeLit); isLit {
			return false // sync.Mutex{} zero literal is a fresh value, not a copy
		}
		tv, ok := info.Types[e]
		return ok && isMutexType(tv.Type)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				for _, field := range fieldTypes(n.Params) {
					if isMutexFieldType(info, field) {
						pass.Reportf(field.Pos(), "mutex passed by value; use a pointer")
					}
				}
				for _, field := range fieldTypes(n.Results) {
					if isMutexFieldType(info, field) {
						pass.Reportf(field.Pos(), "mutex returned by value; use a pointer")
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if exprIsMutexValue(rhs) {
						pass.Reportf(rhs.Pos(), "mutex copied by assignment; use a pointer")
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if exprIsMutexValue(res) {
						pass.Reportf(res.Pos(), "mutex returned by value; use a pointer")
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if exprIsMutexValue(arg) {
						pass.Reportf(arg.Pos(), "mutex passed by value; use a pointer")
					}
				}
			}
			return true
		})
	}
}

func fieldTypes(fl *ast.FieldList) []*ast.Field {
	if fl == nil {
		return nil
	}
	return fl.List
}

// isMutexFieldType reports whether a parameter/result field's type is a
// bare (non-pointer) mutex.
func isMutexFieldType(info *types.Info, field *ast.Field) bool {
	tv, ok := info.Types[field.Type]
	if !ok {
		return false
	}
	return isMutexType(tv.Type)
}
