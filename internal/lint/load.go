package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching patterns,
// resolving imports through the compiler's export data (via
// `go list -export`), so no source outside the requested packages is
// re-parsed. dir is the directory the patterns are resolved in (the
// module root, typically). Test files are not loaded: the contracts the
// analyzers enforce are production-code contracts.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	universe, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(universe))
	for _, p := range universe {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, err := TypeCheck(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goList runs `go list -json` (optionally with -export -deps) and
// decodes the package stream.
func goList(dir string, patterns []string, deps bool) ([]listPackage, error) {
	args := []string{"list", "-json"}
	if deps {
		args = []string{"list", "-export", "-deps", "-json"}
	}
	cmd := exec.Command("go", append(args, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// TypeCheck type-checks parsed files as the package at path, resolving
// imports through imp. It is exposed separately from Load so tests can
// re-check a package with a deliberately mutated file (the pinning tests
// inject a wall-clock call into chain/state.go this way).
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewExportImporter returns a types.Importer that resolves import paths
// through compiler export data files (the paths `go list -export`
// reports), the same mechanism `go vet` hands its analyzers.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// ExportsFor returns the export-data map for patterns plus their
// dependencies, for callers (fixture tests) that type-check synthetic
// sources importing real packages.
func ExportsFor(dir string, patterns ...string) (map[string]string, error) {
	universe, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(universe))
	for _, p := range universe {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
