package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"slices"
)

// DeterministicPackages is the deterministic replay path: every
// validator re-executes blocks (chain execution, the contract runtime,
// the distexchange contract), recovery replays codec output byte for
// byte (store), and the scenario engine must reproduce a trace bit for
// bit from a seed. Wall-clock and randomness may only enter these
// packages through simclock or an explicitly seeded source.
var DeterministicPackages = []string{
	"repro/internal/chain",
	"repro/internal/contract",
	"repro/internal/distexchange",
	"repro/internal/store",
	"repro/internal/scenario",
}

// bannedTimeFuncs sample or schedule against the wall clock.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs construct explicitly seeded sources; everything else
// at math/rand package level samples the global (nondeterministically
// seeded) source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// orderSinkRe matches callee names that serialize, accumulate, or hash
// their inputs — order-sensitive sinks for map iteration. Only calls
// with arguments count: a zero-argument Hash() is a pure getter with
// nothing to sink.
var orderSinkRe = regexp.MustCompile(`^(Write|Encode|encode|Append|append[A-Z]|Marshal|Sum|Hash|Record|Fprint)`)

// sortFuncRe matches local helper functions that sort their arguments
// in place (sortOpCosts and friends), in addition to sort.*/slices.*.
var sortFuncRe = regexp.MustCompile(`(?i)^sort`)

// Determinism forbids nondeterminism sources in the replay-path
// packages:
//
//   - wall-clock reads and timers (time.Now, Since, Until, Sleep,
//     After, Tick, NewTimer, NewTicker, AfterFunc) — block timestamps
//     and scheduling must flow through simclock.Clock;
//   - the global math/rand source (any package-level call except the
//     seeded constructors New/NewSource/NewPCG/NewChaCha8) and
//     crypto/rand reads — randomness must be injected as a seed;
//   - map iteration whose per-element effects are order-sensitive: a
//     range over a map may not call an encoder/hash/write-like sink,
//     and a slice it appends to must be sorted (sort.* or slices.Sort*)
//     somewhere in the same function before it can be trusted.
func Determinism(pkgs ...string) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "replay-path packages must not read the wall clock, the global rand source, or leak map iteration order",
	}
	a.Run = func(pass *Pass) {
		if !slices.Contains(pkgs, pass.Pkg.Path) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncDeterminism(pass, fd)
			}
		}
	}
	return a
}

func checkFuncDeterminism(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// sortedObjs are objects that appear inside a sort.* / slices.Sort*
	// call anywhere in the function: a slice filled from a map range is
	// deterministic once sorted.
	sortedObjs := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := calleePkgFunc(info, call)
		if pkg == "sort" || pkg == "slices" || sortFuncRe.MatchString(name) {
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							sortedObjs[obj] = true
						}
					}
					return true
				})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondeterministicCall(pass, n)
		case *ast.SelectorExpr:
			// crypto/rand.Reader used directly (io.ReadFull(rand.Reader, ...)).
			if obj := info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "crypto/rand" && n.Sel.Name == "Reader" {
				pass.Reportf(n.Pos(), "crypto/rand.Reader on the deterministic replay path; inject a seeded source")
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, n, sortedObjs)
		}
		return true
	})
}

// checkNondeterministicCall flags wall-clock and global-rand calls.
func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	pkg, name := calleePkgFunc(pass.Pkg.Info, call)
	switch pkg {
	case "time":
		if bannedTimeFuncs[name] {
			pass.Reportf(call.Pos(), "time.%s on the deterministic replay path; use simclock.Clock", name)
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[name] {
			pass.Reportf(call.Pos(), "%s.%s samples the global rand source; use a seeded rand.New(rand.NewSource(seed))", pkg, name)
		}
	case "crypto/rand":
		pass.Reportf(call.Pos(), "crypto/rand.%s on the deterministic replay path; inject a seeded source", name)
	}
}

// calleePkgFunc resolves a call to (package path, function name) for
// package-level callees; methods and locals return ("", name).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", ""
	}
	obj, ok := info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", id.Name
	}
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		return "", id.Name // method: the receiver's seededness is its own business
	}
	return obj.Pkg().Path(), obj.Name()
}

// checkMapRangeBody flags order-sensitive effects inside a map range.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sortedObjs map[types.Object]bool) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtin append: the accumulated slice must be sorted later in
		// this function.
		_, isBuiltin := info.Uses[idOf(call.Fun)].(*types.Builtin)
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "append" && isBuiltin {
			// append's first argument names the accumulator.
			if len(call.Args) > 0 {
				if target, ok := call.Args[0].(*ast.Ident); ok {
					if obj := info.Uses[target]; obj != nil && !sortedObjs[obj] {
						pass.Reportf(call.Pos(),
							"append to %s inside map iteration without a later sort: element order is randomized",
							target.Name)
					}
				}
			}
			return true
		}
		// Named order-sensitive sinks (encoders, hashes, writers). A call
		// with no arguments has nothing to feed the sink — Hash() as a
		// pure getter is order-insensitive.
		name := calleeName(call)
		if name != "" && len(call.Args) > 0 && orderSinkRe.MatchString(name) {
			pass.Reportf(call.Pos(),
				"call to %s inside map iteration: encoding order is randomized; collect and sort keys first", name)
		}
		return true
	})
}

// idOf returns e as an identifier, or nil.
func idOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

// calleeName extracts the bare callee name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}
