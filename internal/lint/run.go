package lint

// knownAnalyzers is the registry of valid waiver targets; a waiver
// naming anything else is itself a finding, whichever subset runs.
var knownAnalyzers = map[string]bool{
	"lockcheck":   true,
	"determinism": true,
	"codecsafe":   true,
	"errflow":     true,
}

// Run executes the analyzers over the packages, applies waiver
// directives, and returns the surviving findings plus the waiver
// hygiene findings (missing reason, unknown analyzer, unused waiver),
// sorted by position. An empty result is the gate CI enforces.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		waivers := parseWaivers(pkg)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	diagnostics:
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			for _, w := range waivers {
				if w.reason != "" && w.matches(d.Analyzer, pos) {
					w.used = true
					continue diagnostics
				}
			}
			findings = append(findings, Finding{Analyzer: d.Analyzer, Pos: pos, Message: d.Message})
		}
		for _, w := range waivers {
			switch {
			case w.analyzer == "" || !knownAnalyzers[w.analyzer]:
				findings = append(findings, Finding{
					Analyzer: "repolint", Pos: w.pos,
					Message: "waiver names unknown analyzer " + quoteName(w.analyzer),
				})
			case w.reason == "":
				findings = append(findings, Finding{
					Analyzer: "repolint", Pos: w.pos,
					Message: "waiver for " + w.analyzer + " has no reason; write //repolint:ignore " + w.analyzer + " <reason>",
				})
			case !w.used && running[w.analyzer]:
				findings = append(findings, Finding{
					Analyzer: "repolint", Pos: w.pos,
					Message: "unused waiver: no " + w.analyzer + " finding on this or the next line",
				})
			}
		}
	}
	sortFindings(findings)
	return findings
}

func quoteName(s string) string {
	if s == "" {
		return "(none)"
	}
	return "\"" + s + "\""
}
