package lint

// Fixture harness: analysistest-style expectation checking over small
// synthetic packages in testdata/. Each fixture directory is one
// package; a `// want "regexp"` comment expects a finding on its own
// line, `// want-below "regexp"` on the line beneath it (used where the
// expected finding lands on a comment line, e.g. waiver hygiene).
//
// Fixtures are parsed and type-checked directly — not via `go list` —
// so they can carry deliberate contract violations without ever being
// part of a build. The import path each fixture is checked AS is chosen
// per test: scoped analyzers (determinism, errflow) only fire when the
// path is in their package scope, which the scope tests exploit by
// re-checking the same sources under a neutral path.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var fixtureExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

// loadFixture parses every .go file in dir and type-checks them as the
// package at asPath. Export data for the repo and the standard library
// is loaded once per test binary.
func loadFixture(t *testing.T, dir, asPath string) *Package {
	t.Helper()
	fixtureExports.once.Do(func() {
		fixtureExports.m, fixtureExports.err = ExportsFor("../..", "./...", "std")
	})
	if fixtureExports.err != nil {
		t.Fatalf("loading export data: %v", fixtureExports.err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s has no .go files", dir)
	}
	pkg, err := TypeCheck(fset, asPath, files, NewExportImporter(fset, fixtureExports.m))
	if err != nil {
		t.Fatalf("type-checking fixture %s as %s: %v", dir, asPath, err)
	}
	return pkg
}

// expectation is one want comment: a finding must appear at (file,
// line) whose message matches re.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`want(-below)?((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseExpectations extracts want comments from the fixture's files.
func parseExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				line := pos.Line
				if m[1] == "-below" {
					line++
				}
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, arg[1], err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return exps
}

// checkFixture runs the analyzers (through Run, so waivers apply) and
// matches findings against the fixture's want comments exactly: every
// finding needs a want, every want needs a finding.
func checkFixture(t *testing.T, pkg *Package, analyzers []*Analyzer) {
	t.Helper()
	findings := Run([]*Package{pkg}, analyzers)
	exps := parseExpectations(t, pkg)
findings:
	for _, f := range findings {
		for _, e := range exps {
			if !e.matched && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
				e.matched = true
				continue findings
			}
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// checkFixtureClean asserts the analyzers produce no findings at all —
// used to pin package-scope boundaries by re-checking a violating
// fixture under a path outside the analyzer's scope.
func checkFixtureClean(t *testing.T, pkg *Package, analyzers []*Analyzer) {
	t.Helper()
	for _, f := range Run(pkgs1(pkg), analyzers) {
		t.Errorf("finding outside analyzer scope: %s", f)
	}
}

func pkgs1(p *Package) []*Package { return []*Package{p} }

func TestLockcheckFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/lockcheck", "repro/internal/lintfixture/lockcheck")
	checkFixture(t, pkg, []*Analyzer{Lockcheck()})
}

func TestDeterminismFixture(t *testing.T) {
	// Checked as a replay-path package: every banned construct fires.
	pkg := loadFixture(t, "testdata/determinism", "repro/internal/chain")
	checkFixture(t, pkg, []*Analyzer{Determinism(DeterministicPackages...)})
}

func TestDeterminismScopeExcludesOtherPackages(t *testing.T) {
	// The same sources under a non-replay path produce nothing: the
	// analyzer is scoped, not global.
	pkg := loadFixture(t, "testdata/determinism", "repro/internal/lintfixture/neutral")
	checkFixtureClean(t, pkg, []*Analyzer{Determinism(DeterministicPackages...)})
}

func TestCodecsafeFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/codecsafe", "repro/internal/lintfixture/codec")
	checkFixture(t, pkg, []*Analyzer{Codecsafe()})
}

func TestErrflowFixture(t *testing.T) {
	// Checked as internal/solid: store callees and critical-named local
	// methods are in scope, plain local calls are not.
	pkg := loadFixture(t, "testdata/errflow", "repro/internal/solid")
	checkFixture(t, pkg, []*Analyzer{Errflow(ErrflowPackages...)})
}

func TestErrflowStoreFixture(t *testing.T) {
	// Checked as internal/store itself: the os.File rules apply.
	pkg := loadFixture(t, "testdata/errflow_store", "repro/internal/store")
	checkFixture(t, pkg, []*Analyzer{Errflow(ErrflowPackages...)})
}

func TestErrflowScopeExcludesOtherPackages(t *testing.T) {
	pkg := loadFixture(t, "testdata/errflow", "repro/internal/lintfixture/neutral")
	checkFixtureClean(t, pkg, []*Analyzer{Errflow(ErrflowPackages...)})
}
