package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check. The shape mirrors
// golang.org/x/tools/go/analysis so the analyzers would port to the real
// framework mechanically if it ever becomes available to the build.
type Analyzer struct {
	// Name identifies the analyzer in findings and waiver directives.
	Name string
	// Doc is a one-line description (shown by repolint -list).
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one raw finding, positioned by token.Pos (resolved
// against the package's FileSet when rendered).
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Finding is a resolved diagnostic: a diagnostic that survived waiver
// matching, with its position rendered.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Package is one loaded, parsed, type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Fset positions every file of this load.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's use/def/type maps.
	Info *types.Info
}

// sortFindings orders findings by file, line, column, analyzer for
// stable output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// walkStack traverses the AST depth-first, calling fn with every node
// and the stack of its ancestors (outermost first, not including the
// node itself). Returning false prunes the subtree. It is the parent
// tracking the x/tools inspector would otherwise provide.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFunc returns the innermost function declaration or literal in
// the stack, or nil when the node sits outside any function body.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// Default returns the full analyzer suite in the order repolint runs it.
func Default() []*Analyzer {
	return []*Analyzer{
		Lockcheck(),
		Determinism(DeterministicPackages...),
		Codecsafe(),
		Errflow(ErrflowPackages...),
	}
}
