package lint

import (
	"go/token"
	"strings"
)

// waiverPrefix opens a waiver directive comment.
const waiverPrefix = "repolint:ignore"

// waiver is one parsed //repolint:ignore directive. A waiver suppresses
// findings of the named analyzer on its own line and on the line
// directly below it (so it works both as a trailing comment and as a
// comment above the offending statement).
type waiver struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// parseWaivers extracts the waiver directives of a package.
func parseWaivers(pkg *Package) []*waiver {
	var out []*waiver
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				if !strings.HasPrefix(text, waiverPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, waiverPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, &waiver{
					pos:      pkg.Fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// matches reports whether the waiver covers a finding of analyzer at
// pos.
func (w *waiver) matches(analyzer string, pos token.Position) bool {
	return w.analyzer == analyzer &&
		w.pos.Filename == pos.Filename &&
		(w.pos.Line == pos.Line || w.pos.Line+1 == pos.Line)
}
