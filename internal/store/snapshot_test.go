package store

import (
	"bytes"
	"os"
	"testing"
)

// TestSnapshotRoundTrip: write, list, load.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 7, []byte("state at 7")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 12, []byte("state at 12")); err != nil {
		t.Fatal(err)
	}
	seqs, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 12 || seqs[1] != 7 {
		t.Fatalf("ListSnapshots = %v, want [12 7]", seqs)
	}
	payload, err := LoadSnapshot(dir, 7)
	if err != nil || string(payload) != "state at 7" {
		t.Fatalf("LoadSnapshot(7) = %q, %v", payload, err)
	}
}

// TestLatestSnapshotBounds: maxSeq excludes snapshots newer than the log
// head (the snapshot-ahead-of-torn-WAL case).
func TestLatestSnapshotBounds(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{4, 8, 16} {
		if err := WriteSnapshot(dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	seq, payload, ok := LatestSnapshot(dir, 10)
	if !ok || seq != 8 || payload[0] != 8 {
		t.Fatalf("LatestSnapshot(10) = %d %v %v, want 8", seq, payload, ok)
	}
	if _, _, ok := LatestSnapshot(dir, 3); ok {
		t.Fatal("LatestSnapshot(3) found a snapshot below every seq")
	}
	if seq, _, ok := LatestSnapshot(dir, 1<<40); !ok || seq != 16 {
		t.Fatalf("LatestSnapshot(max) = %d %v, want 16", seq, ok)
	}
}

// TestLatestSnapshotSkipsCorrupt: a flipped byte in the newest snapshot
// falls back to the older one.
func TestLatestSnapshotSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 1, []byte("old but intact")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 2, []byte("new but doomed")); err != nil {
		t.Fatal(err)
	}
	path := snapshotPath(dir, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok := LatestSnapshot(dir, 1<<40)
	if !ok || seq != 1 || !bytes.Equal(payload, []byte("old but intact")) {
		t.Fatalf("LatestSnapshot = %d %q %v, want the intact 1", seq, payload, ok)
	}
	// Trailing garbage after the framed payload is also corruption.
	if err := os.WriteFile(snapshotPath(dir, 3),
		append(AppendRecord(nil, []byte("x")), 0xaa), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(dir, 3); err == nil {
		t.Fatal("snapshot with trailing bytes loaded")
	}
}

// TestPruneSnapshots keeps the newest n.
func TestPruneSnapshots(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := WriteSnapshot(dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneSnapshots(dir, 2)
	if err != nil || removed != 3 {
		t.Fatalf("PruneSnapshots = %d, %v; want 3 removed", removed, err)
	}
	seqs, _ := ListSnapshots(dir)
	if len(seqs) != 2 || seqs[0] != 5 || seqs[1] != 4 {
		t.Fatalf("after prune: %v, want [5 4]", seqs)
	}
	// keep < 1 is clamped to 1, never deleting everything.
	if _, err := PruneSnapshots(dir, 0); err != nil {
		t.Fatal(err)
	}
	seqs, _ = ListSnapshots(dir)
	if len(seqs) != 1 || seqs[0] != 5 {
		t.Fatalf("after prune 0: %v, want [5]", seqs)
	}
}

// TestListSnapshotsIgnoresForeignFiles: temp files and unrelated names
// never surface as snapshots, and a missing dir lists empty.
func TestListSnapshotsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"snap-tmp-123", "wal.log", "snap-nothex.snap"} {
		if err := os.WriteFile(dir+"/"+name, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := ListSnapshots(dir)
	if err != nil || len(seqs) != 0 {
		t.Fatalf("ListSnapshots = %v, %v; want empty", seqs, err)
	}
	seqs, err = ListSnapshots(dir + "/does-not-exist")
	if err != nil || seqs != nil {
		t.Fatalf("missing dir: %v, %v", seqs, err)
	}
}
