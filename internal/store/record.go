package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// recordHeaderSize is the fixed per-record framing overhead: a 4-byte
// little-endian payload length followed by the payload's CRC-32 (IEEE).
const recordHeaderSize = 8

// MaxRecordSize bounds a single record's payload. A decoded length above
// it is treated as corruption (a torn or overwritten header), so a bad
// length prefix can never drive a multi-gigabyte allocation.
const MaxRecordSize = 64 << 20

// Record decoding errors.
var (
	// ErrPartialRecord reports a record cut short by a crash: the buffer
	// ends inside the length prefix or inside the payload. It marks the
	// torn tail of a log.
	ErrPartialRecord = errors.New("store: partial record")
	// ErrCorruptRecord reports a record whose framing is intact but whose
	// content is not trustworthy: CRC mismatch or an impossible length.
	ErrCorruptRecord = errors.New("store: corrupt record")
)

// AppendRecord appends the framed encoding of payload to dst and returns
// the extended slice.
func AppendRecord(dst, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRecord decodes the first record in b. It returns the payload (a
// copy), the number of bytes the record occupies, and an error:
// ErrPartialRecord when b ends mid-record (the torn-tail case) and
// ErrCorruptRecord when the length is impossible or the CRC does not
// match. consumed is 0 on any error.
func DecodeRecord(b []byte) (payload []byte, consumed int, err error) {
	if len(b) < recordHeaderSize {
		return nil, 0, fmt.Errorf("%w: %d header bytes of %d", ErrPartialRecord, len(b), recordHeaderSize)
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > MaxRecordSize {
		return nil, 0, fmt.Errorf("%w: length %d exceeds %d", ErrCorruptRecord, n, MaxRecordSize)
	}
	sum := binary.LittleEndian.Uint32(b[4:8])
	if len(b) < recordHeaderSize+int(n) {
		return nil, 0, fmt.Errorf("%w: %d payload bytes of %d", ErrPartialRecord, len(b)-recordHeaderSize, n)
	}
	body := b[recordHeaderSize : recordHeaderSize+int(n)]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	payload = make([]byte, n)
	copy(payload, body)
	return payload, recordHeaderSize + int(n), nil
}
