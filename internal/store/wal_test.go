package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openForTest(t *testing.T, path string, opts Options) (*WAL, []Record) {
	t.Helper()
	w, recs, err := OpenWAL(path, opts)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return w, recs
}

func appendAll(t *testing.T, w *WAL, payloads ...[]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func payloadsOf(recs []Record) [][]byte {
	out := make([][]byte, len(recs))
	for i, r := range recs {
		out[i] = r.Payload
	}
	return out
}

// TestWALRoundTrip covers the clean-close leg of the recovery matrix:
// everything appended before Close is decoded back in order.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs := openForTest(t, path, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh wal decoded %d records", len(recs))
	}
	want := [][]byte{[]byte("one"), {}, []byte("three has more bytes")}
	appendAll(t, w, want...)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, recs2 := openForTest(t, path, Options{})
	defer w2.Close()
	got := payloadsOf(recs2)
	if len(got) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Appending after recovery extends, not overwrites.
	appendAll(t, w2, []byte("four"))
	w2.Close()
	_, recs3 := openForTest(t, path, Options{})
	if len(recs3) != 4 || string(recs3[3].Payload) != "four" {
		t.Fatalf("after post-recovery append got %d records", len(recs3))
	}
}

// TestWALCrashWithoutClose covers the crash-after-write leg: Abandon
// skips the final fsync but unbuffered writes are still in the file.
func TestWALCrashWithoutClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openForTest(t, path, Options{Sync: SyncNever})
	appendAll(t, w, []byte("survives"), []byte("an abandon"))
	if err := w.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	_, recs := openForTest(t, path, Options{})
	if len(recs) != 2 || string(recs[1].Payload) != "an abandon" {
		t.Fatalf("recovered %d records", len(recs))
	}
}

// tornCase mutilates a healthy 3-record log and says how many records
// must survive reopening.
type tornCase struct {
	name    string
	mutate  func(t *testing.T, path string)
	survive int
}

// TestWALTornTail covers the three torn-tail legs of the recovery
// matrix: partial length prefix, partial payload, and bad CRC. Each must
// truncate back to the last complete record, and the log must accept
// appends afterwards.
func TestWALTornTail(t *testing.T) {
	chop := func(n int64) func(*testing.T, string) {
		return func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-n); err != nil {
				t.Fatal(err)
			}
		}
	}
	cases := []tornCase{
		// Last record payload is 24 bytes ("the third record payload"):
		// chopping 4 leaves a partial payload; chopping 26 cuts into the
		// 8-byte header (partial length prefix); flipping a payload byte
		// breaks the CRC.
		{"partial-payload", chop(4), 2},
		{"partial-length-prefix", chop(26), 2},
		{"bad-crc", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-3] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}, 2},
		{"whole-file-garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte{0xff, 0xfe, 0xfd}, 0o644); err != nil {
				t.Fatal(err)
			}
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, _ := openForTest(t, path, Options{})
			appendAll(t, w, []byte("first"), []byte("second rec"), []byte("the third record payload"))
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, path)

			w2, recs := openForTest(t, path, Options{})
			if len(recs) != tc.survive {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.survive)
			}
			if tc.survive > 0 && string(recs[tc.survive-1].Payload) != "second rec" {
				t.Fatalf("last surviving record = %q", recs[tc.survive-1].Payload)
			}
			// The truncated log must be appendable and re-decodable.
			appendAll(t, w2, []byte("after recovery"))
			w2.Close()
			_, recs2 := openForTest(t, path, Options{})
			if len(recs2) != tc.survive+1 {
				t.Fatalf("after append recovered %d records, want %d", len(recs2), tc.survive+1)
			}
			if got := string(recs2[len(recs2)-1].Payload); got != "after recovery" {
				t.Fatalf("tail record = %q", got)
			}
		})
	}
}

// TestWALCorruptionMidFile: a bad record in the middle ends the log
// there — later records (possibly overwritten garbage) are dropped too.
func TestWALCorruptionMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openForTest(t, path, Options{})
	appendAll(t, w, []byte("aaaa"), []byte("bbbb"), []byte("cccc"))
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[recordHeaderSize+4+recordHeaderSize] ^= 0xff // first payload byte of record 2
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, recs := openForTest(t, path, Options{})
	defer w2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "aaaa" {
		t.Fatalf("recovered %v, want just aaaa", payloadsOf(recs))
	}
}

// TestWALOversizedLength: a length prefix beyond MaxRecordSize is
// corruption, not an allocation request.
func TestWALOversizedLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordSize+1)
	if err := os.WriteFile(path, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs := openForTest(t, path, Options{})
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("decoded %d records from an oversized header", len(recs))
	}
	if w.Size() != 0 {
		t.Fatalf("oversized header not truncated: size %d", w.Size())
	}
}

// TestWALSyncPolicies smoke-tests each policy end to end and pins the
// interval policy's fsync cadence via the pending counter reset.
func TestWALSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, _ := openForTest(t, path, Options{Sync: policy, SyncEvery: 2})
			appendAll(t, w, []byte("a"), []byte("b"), []byte("c"))
			switch policy {
			case SyncAlways, SyncInterval:
				// a,b synced (always: each; interval: at the 2nd), c pending
				// under interval only.
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			_, recs := openForTest(t, path, Options{})
			if len(recs) != 3 {
				t.Fatalf("policy %s: recovered %d records", policy, len(recs))
			}
		})
	}
}

// TestWALClosedOperations: appends and syncs after Close fail with
// ErrClosed; Close is idempotent.
func TestWALClosedOperations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openForTest(t, path, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v", err)
	}
	if err := w.TruncateTo(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("TruncateTo after Close: %v", err)
	}
}

// TestWALTruncateTo drops records past a reported boundary.
func TestWALTruncateTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openForTest(t, path, Options{})
	appendAll(t, w, []byte("keep"), []byte("drop"))
	w.Close()
	w2, recs := openForTest(t, path, Options{})
	if err := w2.TruncateTo(recs[0].End); err != nil {
		t.Fatal(err)
	}
	if err := w2.TruncateTo(1 << 30); err == nil {
		t.Fatal("out-of-range TruncateTo accepted")
	}
	appendAll(t, w2, []byte("replacement"))
	w2.Close()
	_, recs2 := openForTest(t, path, Options{})
	if len(recs2) != 2 || string(recs2[1].Payload) != "replacement" {
		t.Fatalf("after TruncateTo got %v", payloadsOf(recs2))
	}
}

// TestDecodeRecordBounds pins the decoder's error contract directly.
func TestDecodeRecordBounds(t *testing.T) {
	if _, _, err := DecodeRecord(nil); !errors.Is(err, ErrPartialRecord) {
		t.Fatalf("empty: %v", err)
	}
	if _, _, err := DecodeRecord([]byte{1, 2, 3}); !errors.Is(err, ErrPartialRecord) {
		t.Fatalf("short header: %v", err)
	}
	framed := AppendRecord(nil, []byte("hello"))
	payload, consumed, err := DecodeRecord(framed)
	if err != nil || string(payload) != "hello" || consumed != len(framed) {
		t.Fatalf("roundtrip: %q %d %v", payload, consumed, err)
	}
	// Decoding from a buffer with a trailing record works and reports the
	// right consumed count.
	double := AppendRecord(framed, []byte("world"))
	p2, c2, err := DecodeRecord(double[consumed:])
	if err != nil || string(p2) != "world" || c2 != len(double)-consumed {
		t.Fatalf("second record: %q %d %v", p2, c2, err)
	}
}

// TestWALManyRecords exercises interval syncing over enough appends to
// cross several sync windows.
func TestWALManyRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openForTest(t, path, Options{Sync: SyncInterval, SyncEvery: 16})
	const n = 100
	for i := range n {
		if err := w.Append(fmt.Appendf(nil, "record-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	_, recs := openForTest(t, path, Options{})
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	if got := string(recs[n-1].Payload); got != "record-099" {
		t.Fatalf("last record = %q", got)
	}
}

// TestParseSyncPolicy pins the flag-string forms.
func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{
		"always": SyncAlways, "never": SyncNever, "interval": SyncInterval, "": SyncInterval,
	}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
		if got.String() == "" {
			t.Fatalf("policy %v has empty string form", got)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestWALPathAndSize: accessors reflect the open log.
func TestWALPathAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openForTest(t, path, Options{})
	defer w.Close()
	if w.Path() != path {
		t.Fatalf("Path = %q", w.Path())
	}
	if w.Size() != 0 {
		t.Fatalf("empty log Size = %d", w.Size())
	}
	appendAll(t, w, []byte("abc"))
	if w.Size() != int64(recordHeaderSize+3) {
		t.Fatalf("Size = %d, want %d", w.Size(), recordHeaderSize+3)
	}
}
