package store

import "repro/internal/obs"

// Metrics bundles the store layer's instruments. Fields are nil-safe
// obs instruments: a WAL opened without metrics (the default) records
// nothing, at the cost of a branch per call. The store package is
// replay-deterministic, so latencies use the obs Timer idiom — no wall
// clock is read here.
type Metrics struct {
	AppendLatency *obs.Histogram // WAL append incl. the policy-driven fsync
	AppendedBytes *obs.Counter   // bytes appended (record framing included)
	FsyncLatency  *obs.Histogram // fsync call latency
	Fsyncs        *obs.Counter   // fsync calls issued
}

// NewMetrics registers the store series on reg. A nil reg yields
// all-nil (no-op) instruments.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		AppendLatency: reg.Histogram("store_wal_append_ns", "WAL append latency including the policy-driven fsync"),
		AppendedBytes: reg.Counter("store_wal_appended_bytes_total", "bytes appended to the WAL, record framing included"),
		FsyncLatency:  reg.Histogram("store_wal_fsync_ns", "WAL fsync latency"),
		Fsyncs:        reg.Counter("store_wal_fsync_total", "WAL fsync calls issued"),
	}
}

// noopMetrics is the shared all-nil handle for WALs without a registry.
var noopMetrics = &Metrics{}

// orNoop normalizes a possibly-nil Options.Metrics.
func (m *Metrics) orNoop() *Metrics {
	if m == nil {
		return noopMetrics
	}
	return m
}
