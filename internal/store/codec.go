package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// This file holds the primitive layer of the binary record codec shared
// by the chain and pod persistence formats: length-prefixed byte strings
// with varint lengths and raw (never base64-inflated) payload bytes.
// Record schemas live with their owning packages; this file only knows
// how to frame primitives and how to tell a binary record from a
// legacy JSON one.
//
// Framing rules:
//
//   - unsigned integers are encoding/binary uvarints
//   - byte strings are a uvarint length followed by the raw bytes
//   - strings are byte strings of their UTF-8 bytes
//   - booleans are one byte (0 or 1)
//   - timestamps are the byte string of time.Time.MarshalBinary, which
//     round-trips the wall clock (zero value included) exactly
//   - fixed-width fields (hashes, addresses) are raw bytes with no
//     length prefix; the schema fixes their width
//
// Every durable record's first byte is a format tag. Legacy JSON records
// (the PR 4 on-disk format) always start with '{', so decoders route on
// IsLegacyJSON and old data dirs keep recovering.

// ErrCodec reports a malformed binary record payload (truncated field,
// impossible length, or trailing garbage).
var ErrCodec = errors.New("store: malformed binary record")

// IsLegacyJSON reports whether a record payload is a legacy JSON
// document rather than a tagged binary record. The binary format never
// assigns '{' as a tag byte.
func IsLegacyJSON(payload []byte) bool {
	return len(payload) > 0 && payload[0] == '{'
}

// AppendUvarint appends v as a uvarint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendBytes appends b as a uvarint length followed by the raw bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends s as a length-prefixed byte string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBool appends b as one byte.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendTime appends t's binary marshalling as a byte string.
func AppendTime(dst []byte, t time.Time) ([]byte, error) {
	b, err := t.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("store: encode time: %w", err)
	}
	return AppendBytes(dst, b), nil
}

// Dec decodes the primitives appended by the Append helpers with a
// sticky error: after the first malformed field every further read
// returns a zero value, so schema decoders can run straight-line and
// check Err once at the end.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b. The decoder never mutates b; Bytes
// and String results are copies, safe to retain.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Done reports whether the input is fully consumed without error.
func (d *Dec) Done() bool { return d.err == nil && d.off == len(d.b) }

// Finish returns ErrCodec-wrapped context if decoding failed or left
// trailing bytes.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(d.b)-d.off)
	}
	return nil
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCodec, what, d.off)
	}
}

// DecodeCapHint bounds the slice/map capacity record schemas
// pre-allocate from a decoded element count: even a count that passes
// its bound is a corrupt record's claim, so decoders grow past this
// hint instead of trusting it.
const DecodeCapHint = 4096

// Count reads a uvarint element count and fails the decode when it
// exceeds bound — the most elements any valid encoding of the record
// could hold (typically the payload length, since every element costs
// at least one byte). On over-claim it returns 0, so a following
// `for range` loop is a no-op and Finish reports the poisoned decode.
// Pre-allocate with min(count, DecodeCapHint).
func (d *Dec) Count(what string, bound uint64) uint64 {
	n := d.Uvarint()
	if d.err == nil && n > bound {
		d.fail(fmt.Sprintf("claimed %d %s, bound %d", n, what, bound))
		return 0
	}
	return n
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Bool reads one boolean byte.
func (d *Dec) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool")
		return false
	}
}

// Uvarint reads a uvarint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Bytes reads a length-prefixed byte string, returning a copy (nil for a
// zero length, matching the omitempty behaviour of the JSON era).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(fmt.Sprintf("byte string length %d exceeds remaining %d", n, len(d.b)-d.off))
		return nil
	}
	if n == 0 {
		return nil
	}
	//repolint:ignore codecsafe length is validated against the remaining input above; this is the primitive Count-style reads build on
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Raw reads exactly n raw bytes into dst (fixed-width fields: hashes,
// addresses).
func (d *Dec) Raw(dst []byte) {
	if d.err != nil {
		return
	}
	if len(dst) > len(d.b)-d.off {
		d.fail(fmt.Sprintf("truncated fixed field of %d bytes", len(dst)))
		return
	}
	copy(dst, d.b[d.off:])
	d.off += len(dst)
}

// Time reads a timestamp written by AppendTime.
func (d *Dec) Time() time.Time {
	b := d.Bytes()
	if d.err != nil {
		return time.Time{}
	}
	var t time.Time
	if err := t.UnmarshalBinary(b); err != nil {
		d.fail("bad timestamp")
		return time.Time{}
	}
	return t
}
