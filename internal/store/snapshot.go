package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapshot filename shape: snap-<seq, 16 hex digits>.snap
const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// snapshotPath returns the snapshot filename for a sequence number.
func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix))
}

// WriteSnapshot atomically writes a CRC-framed snapshot with the given
// sequence number: the payload goes to a temp file, is fsynced, and is
// renamed into place, so a crash mid-write never leaves a torn snapshot
// under the final name.
func WriteSnapshot(dir string, seq uint64, payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("store: snapshot %d exceeds MaxRecordSize (%d bytes)", seq, len(payload))
	}
	tmp, err := os.CreateTemp(dir, snapPrefix+"tmp-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	framed := AppendRecord(make([]byte, 0, recordHeaderSize+len(payload)), payload)
	if _, err := tmp.Write(framed); err != nil {
		return errors.Join(fmt.Errorf("store: snapshot write: %w", err), tmp.Close())
	}
	if err := tmp.Sync(); err != nil {
		return errors.Join(fmt.Errorf("store: snapshot sync: %w", err), tmp.Close())
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapshotPath(dir, seq)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot reads and validates the snapshot with the given sequence
// number, returning its payload.
func LoadSnapshot(dir string, seq uint64) ([]byte, error) {
	raw, err := os.ReadFile(snapshotPath(dir, seq))
	if err != nil {
		return nil, fmt.Errorf("store: load snapshot %d: %w", seq, err)
	}
	payload, consumed, err := DecodeRecord(raw)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot %d: %w", seq, err)
	}
	if consumed != len(raw) {
		return nil, fmt.Errorf("%w: snapshot %d has %d trailing bytes", ErrCorruptRecord, seq, len(raw)-consumed)
	}
	return payload, nil
}

// ListSnapshots returns the sequence numbers of the snapshots present in
// dir, newest first. Files that merely look like snapshots but do not
// parse are ignored (their content is validated only on load).
func ListSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list snapshots: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		hexSeq := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		seq, err := strconv.ParseUint(hexSeq, 16, 64)
		if err != nil {
			continue // a temp file or foreign name
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// LatestSnapshot returns the newest decodable snapshot whose sequence
// number does not exceed maxSeq. Corrupt or too-new snapshots are skipped
// in favour of older ones; ok is false when none qualifies (recovery then
// replays the whole log).
func LatestSnapshot(dir string, maxSeq uint64) (seq uint64, payload []byte, ok bool) {
	seqs, err := ListSnapshots(dir)
	if err != nil {
		return 0, nil, false
	}
	for _, s := range seqs {
		if s > maxSeq {
			continue
		}
		p, err := LoadSnapshot(dir, s)
		if err != nil {
			continue
		}
		return s, p, true
	}
	return 0, nil, false
}

// PruneSnapshots removes all but the newest keep snapshots. It never
// removes the file a concurrent LatestSnapshot would prefer (the newest),
// and returns the number deleted.
func PruneSnapshots(dir string, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	seqs, err := ListSnapshots(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range seqs[min(keep, len(seqs)):] {
		if err := os.Remove(snapshotPath(dir, s)); err != nil {
			return removed, fmt.Errorf("store: prune snapshot %d: %w", s, err)
		}
		removed++
	}
	return removed, nil
}
