// Package store is the durability substrate shared by the chain and pod
// layers: an append-only, CRC-checked, length-prefixed write-ahead log
// plus an atomic snapshot writer/loader.
//
// # Write-ahead log
//
// A WAL file is a sequence of records, each encoded as
//
//	[4-byte little-endian payload length][4-byte CRC-32 (IEEE) of payload][payload]
//
// Appends go straight to the file descriptor (no userspace buffering), so
// an in-process crash loses nothing that Append returned for; the fsync
// policy (SyncPolicy) decides what a machine crash may lose. On open the
// log is scanned front to back and the first undecodable record — a
// partial length prefix, a partial payload, or a CRC mismatch — marks the
// torn tail: everything from that offset on is truncated away and the log
// resumes after the last complete record. A record larger than
// MaxRecordSize is treated as corruption, never allocated.
//
// # Snapshots
//
// A snapshot is one CRC-framed payload written to "snap-<seq>.snap" via a
// temp file and an atomic rename, so a crash mid-write never leaves a
// half-visible snapshot. Snapshots bound recovery replay: a reader loads
// the newest decodable snapshot whose sequence number does not exceed the
// log's head and replays only the records past it. A corrupt snapshot is
// skipped in favour of an older one (or a full replay from the start of
// the log), so snapshots are strictly an optimization — recovery
// correctness never depends on them.
//
// The package has no opinion about payload contents; the chain layer
// stores sealed blocks with state diffs, the pod layer stores resource
// operations. Both decide their own snapshot cadence.
package store
