package store

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// FuzzWALDecode feeds the record decoder arbitrary bytes. The decoder
// must never panic or over-consume, must only return payloads that
// re-encode to the consumed prefix (CRC soundness), and torn/corrupt
// classifications must be stable under the documented error contract.
//
// CI smoke-runs this with -fuzz=FuzzWALDecode -fuzztime=30s.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("a healthy record")))
	f.Add(AppendRecord(AppendRecord(nil, []byte("one")), []byte("two")))
	torn := AppendRecord(nil, []byte("about to be torn"))
	f.Add(torn[:len(torn)-3])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // oversized length
	f.Add(make([]byte, recordHeaderSize))             // zero-length record

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, consumed, err := DecodeRecord(data)
		if err != nil {
			if consumed != 0 || payload != nil {
				t.Fatalf("error %v returned payload %v consumed %d", err, payload, consumed)
			}
			if !errors.Is(err, ErrPartialRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("undocumented error class: %v", err)
			}
			return
		}
		if consumed < recordHeaderSize || consumed > len(data) {
			t.Fatalf("consumed %d outside [%d,%d]", consumed, recordHeaderSize, len(data))
		}
		if len(payload) != consumed-recordHeaderSize {
			t.Fatalf("payload %d bytes, consumed %d", len(payload), consumed)
		}
		// Round trip: re-encoding the payload must reproduce the consumed
		// prefix bit for bit.
		if re := AppendRecord(nil, payload); !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encoding diverges from input prefix")
		}
	})
}

// FuzzCodecDecode drives the primitive binary codec (the layer the chain
// and pod record schemas are built on) with arbitrary bytes interpreted
// under an arbitrary read schedule. The decoder must never panic,
// over-consume, or return data after its first error, and whatever a
// round of reads produced must re-encode and decode back identically.
//
// CI smoke-runs FuzzWALDecode; this fuzzer shares its corpus style.
func FuzzCodecDecode(f *testing.F) {
	healthy := AppendUvarint(nil, 42)
	healthy = AppendBytes(healthy, []byte("raw \x00 bytes"))
	healthy = AppendString(healthy, "s")
	healthy = AppendBool(healthy, true)
	healthy, _ = AppendTime(healthy, time.Unix(1_687_000_000, 42).UTC())
	f.Add(healthy, []byte{0, 1, 2, 3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1}, []byte{1, 1})

	f.Fuzz(func(t *testing.T, data, schedule []byte) {
		d := NewDec(data)
		var replay []byte
		var reads []func(*Dec) bool // re-run the same reads against the re-encoding
		for _, op := range schedule {
			before := d.off
			switch op % 5 {
			case 0:
				v := d.Uvarint()
				if d.err == nil {
					replay = AppendUvarint(replay, v)
					reads = append(reads, func(r *Dec) bool { return r.Uvarint() == v })
				}
			case 1:
				v := d.Bytes()
				if d.err == nil {
					replay = AppendBytes(replay, v)
					reads = append(reads, func(r *Dec) bool { return bytes.Equal(r.Bytes(), v) })
				}
			case 2:
				v := d.String()
				if d.err == nil {
					replay = AppendString(replay, v)
					reads = append(reads, func(r *Dec) bool { return r.String() == v })
				}
			case 3:
				v := d.Bool()
				if d.err == nil {
					replay = AppendBool(replay, v)
					reads = append(reads, func(r *Dec) bool { return r.Bool() == v })
				}
			case 4:
				v := d.Time()
				if d.err == nil {
					var err error
					replay, err = AppendTime(replay, v)
					if err != nil {
						t.Fatalf("decoded time does not re-encode: %v", err)
					}
					reads = append(reads, func(r *Dec) bool { return r.Time().Equal(v) })
				}
			}
			// A failing read may have consumed bytes before detecting the
			// problem (e.g. an out-of-range bool value); the contract is
			// only that the offset never goes backwards or past the end,
			// and that the error is sticky.
			if d.off < before || d.off > len(data) {
				t.Fatalf("offset %d outside [%d,%d]", d.off, before, len(data))
			}
			if d.err != nil {
				break
			}
		}
		if d.err != nil && !errors.Is(d.err, ErrCodec) {
			t.Fatalf("undocumented error class: %v", d.err)
		}
		// Round trip: re-encoding what was read must decode to the same
		// values with nothing left over.
		r := NewDec(replay)
		for i, check := range reads {
			if !check(r) {
				t.Fatalf("read %d diverged after re-encoding", i)
			}
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("re-encoded reads did not consume exactly: %v", err)
		}
	})
}
