package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode feeds the record decoder arbitrary bytes. The decoder
// must never panic or over-consume, must only return payloads that
// re-encode to the consumed prefix (CRC soundness), and torn/corrupt
// classifications must be stable under the documented error contract.
//
// CI smoke-runs this with -fuzz=FuzzWALDecode -fuzztime=30s.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("a healthy record")))
	f.Add(AppendRecord(AppendRecord(nil, []byte("one")), []byte("two")))
	torn := AppendRecord(nil, []byte("about to be torn"))
	f.Add(torn[:len(torn)-3])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // oversized length
	f.Add(make([]byte, recordHeaderSize))             // zero-length record

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, consumed, err := DecodeRecord(data)
		if err != nil {
			if consumed != 0 || payload != nil {
				t.Fatalf("error %v returned payload %v consumed %d", err, payload, consumed)
			}
			if !errors.Is(err, ErrPartialRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("undocumented error class: %v", err)
			}
			return
		}
		if consumed < recordHeaderSize || consumed > len(data) {
			t.Fatalf("consumed %d outside [%d,%d]", consumed, recordHeaderSize, len(data))
		}
		if len(payload) != consumed-recordHeaderSize {
			t.Fatalf("payload %d bytes, consumed %d", len(payload), consumed)
		}
		// Round trip: re-encoding the payload must reproduce the consumed
		// prefix bit for bit.
		if re := AppendRecord(nil, payload); !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encoding diverges from input prefix")
		}
	})
}
