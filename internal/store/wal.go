package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs every Options.SyncEvery appends —
	// the middle ground: a machine crash loses at most one sync window.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: nothing acknowledged is ever
	// lost, at the cost of one fsync per record.
	SyncAlways
	// SyncNever leaves flushing to the OS: fastest, and an in-process
	// crash still loses nothing (writes are unbuffered), but a machine
	// crash may lose any unflushed tail.
	SyncNever
)

// String renders the policy (used by benchmarks and flag parsing).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses the string forms accepted by the -fsync flags.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	case "interval", "":
		return SyncInterval, nil
	}
	return SyncInterval, fmt.Errorf("store: unknown sync policy %q (have always, interval, never)", s)
}

// Options configures a WAL.
type Options struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the append count between fsyncs under SyncInterval
	// (default 64).
	SyncEvery int
	// Metrics receives append/fsync latency and byte counts; nil (the
	// default) records nothing.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	return o
}

// Record is one decoded WAL record plus the file offset just past it, so
// callers that layer their own validation on top (e.g. chain linkage) can
// truncate the log back to any record boundary.
type Record struct {
	// Payload is the record content.
	Payload []byte
	// End is the file offset immediately after the record.
	End int64
}

// ErrClosed reports an operation on a closed WAL.
var ErrClosed = errors.New("store: wal closed")

// WAL is an append-only, CRC-checked, length-prefixed log. It is safe for
// concurrent use.
type WAL struct {
	mu      sync.Mutex
	f       *os.File // guarded by mu
	path    string
	size    int64 // guarded by mu
	opts    Options
	m       *Metrics // never nil (normalized from opts.Metrics)
	pending int      // appends since the last fsync; guarded by mu
	closed  bool     // guarded by mu
}

// OpenWAL opens (creating if needed) the log at path, decodes every
// complete record, truncates any torn tail, and returns the WAL
// positioned for appending plus the decoded records.
func OpenWAL(path string, opts Options) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, errors.Join(fmt.Errorf("store: read wal: %w", err), f.Close())
	}

	var records []Record
	offset := int64(0)
	for int(offset) < len(raw) {
		payload, consumed, err := DecodeRecord(raw[offset:])
		if err != nil {
			// Torn or corrupt tail: everything before offset is intact,
			// everything from offset on is unrecoverable — drop it.
			break
		}
		offset += int64(consumed)
		records = append(records, Record{Payload: payload, End: offset})
	}
	if int(offset) < len(raw) {
		if err := f.Truncate(offset); err != nil {
			return nil, nil, errors.Join(fmt.Errorf("store: truncate torn tail: %w", err), f.Close())
		}
	}
	if _, err := f.Seek(offset, 0); err != nil {
		return nil, nil, errors.Join(fmt.Errorf("store: seek wal: %w", err), f.Close())
	}
	w := &WAL{f: f, path: path, size: offset, opts: opts.withDefaults()}
	w.m = opts.Metrics.orNoop()
	return w, records, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Size returns the current log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Append writes one record and applies the fsync policy. The payload is
// durable against an in-process crash when Append returns; durability
// against a machine crash depends on the policy.
func (w *WAL) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	tm := w.m.AppendLatency.Start()
	defer tm.Stop()
	buf := AppendRecord(make([]byte, 0, recordHeaderSize+len(payload)), payload)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	w.size += int64(len(buf))
	w.m.AppendedBytes.Add(uint64(len(buf)))
	w.pending++
	switch w.opts.Sync {
	case SyncAlways:
		return w.syncLocked()
	case SyncInterval:
		if w.pending >= w.opts.SyncEvery {
			return w.syncLocked()
		}
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	tm := w.m.FsyncLatency.Start()
	err := w.f.Sync()
	tm.Stop()
	if err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	w.m.Fsyncs.Inc()
	w.pending = 0
	return nil
}

// TruncateTo cuts the log back to a record boundary previously reported
// in a Record.End (callers use it to discard records that decode but fail
// higher-level validation).
func (w *WAL) TruncateTo(offset int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if offset < 0 || offset > w.size {
		return fmt.Errorf("store: truncate offset %d outside [0,%d]", offset, w.size)
	}
	if err := w.f.Truncate(offset); err != nil {
		return fmt.Errorf("store: truncate: %w", err)
	}
	if _, err := w.f.Seek(offset, 0); err != nil {
		return fmt.Errorf("store: seek: %w", err)
	}
	w.size = offset
	return nil
}

// Close flushes and closes the log. Close is idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return fmt.Errorf("store: close sync: %w", syncErr)
	}
	return closeErr
}

// Abandon closes the log WITHOUT flushing, modelling a crash: whatever
// the OS has not persisted is at the mercy of the page cache. Fault
// injection uses it; normal shutdown paths must use Close.
func (w *WAL) Abandon() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}
