package store

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestCodecRoundTrip: every primitive survives an append/decode cycle in
// schema order, and the decoder consumes the buffer exactly.
func TestCodecRoundTrip(t *testing.T) {
	when := time.Date(2023, 6, 21, 9, 30, 0, 123456789, time.UTC)
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<63)
	buf = AppendBytes(buf, nil)
	buf = AppendBytes(buf, []byte{0, 1, 2, 0xff})
	buf = AppendString(buf, "hello κόσμε")
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	var err error
	if buf, err = AppendTime(buf, when); err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendTime(buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xAA, 0xBB) // fixed-width field

	d := NewDec(buf)
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<63 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Bytes(); v != nil {
		t.Fatalf("empty bytes = %v", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte{0, 1, 2, 0xff}) {
		t.Fatalf("bytes = %v", v)
	}
	if v := d.String(); v != "hello κόσμε" {
		t.Fatalf("string = %q", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if v := d.Time(); !v.Equal(when) {
		t.Fatalf("time = %v", v)
	}
	if v := d.Time(); !v.IsZero() {
		t.Fatalf("zero time decoded as %v", v)
	}
	var fixed [2]byte
	d.Raw(fixed[:])
	if fixed != [2]byte{0xAA, 0xBB} {
		t.Fatalf("raw = %x", fixed)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestCodecDecodedBytesAreCopies: mutating the input buffer after decode
// must not reach through into returned values.
func TestCodecDecodedBytesAreCopies(t *testing.T) {
	buf := AppendBytes(nil, []byte("payload"))
	d := NewDec(buf)
	got := d.Bytes()
	buf[2] ^= 0xff
	if string(got) != "payload" {
		t.Fatalf("decoded bytes alias the input: %q", got)
	}
}

// TestCodecTruncationAndStickyError: a truncated field fails, every
// subsequent read returns zero values, and Finish reports the error.
func TestCodecTruncationAndStickyError(t *testing.T) {
	buf := AppendBytes(nil, bytes.Repeat([]byte("x"), 64))
	d := NewDec(buf[:10]) // length prefix promises 64, only 9 remain
	if v := d.Bytes(); v != nil {
		t.Fatalf("truncated read returned %d bytes", len(v))
	}
	if d.Err() == nil {
		t.Fatal("truncation not detected")
	}
	if v := d.Uvarint(); v != 0 {
		t.Fatal("read after error returned data")
	}
	if v := d.String(); v != "" {
		t.Fatal("read after error returned data")
	}
	if !errors.Is(d.Finish(), ErrCodec) {
		t.Fatalf("Finish = %v, want ErrCodec", d.Finish())
	}
}

// TestCodecTrailingBytes: Finish flags unconsumed input — a schema that
// under-reads is a bug, not a compatible extension.
func TestCodecTrailingBytes(t *testing.T) {
	buf := AppendUvarint(nil, 7)
	buf = append(buf, 0xEE)
	d := NewDec(buf)
	_ = d.Uvarint()
	if d.Done() {
		t.Fatal("Done with a trailing byte left")
	}
	if !errors.Is(d.Finish(), ErrCodec) {
		t.Fatalf("Finish = %v, want ErrCodec for trailing bytes", d.Finish())
	}
}

// TestCodecInvalidBool: bytes other than 0/1 are malformed, not coerced.
func TestCodecInvalidBool(t *testing.T) {
	d := NewDec([]byte{2})
	_ = d.Bool()
	if !errors.Is(d.Err(), ErrCodec) {
		t.Fatalf("err = %v", d.Err())
	}
}

// TestIsLegacyJSON: the legacy/binary router keys off the first byte.
func TestIsLegacyJSON(t *testing.T) {
	if !IsLegacyJSON([]byte(`{"meta":{}}`)) {
		t.Fatal("JSON object not detected")
	}
	if IsLegacyJSON([]byte{0x02, 0x01}) {
		t.Fatal("binary tag detected as JSON")
	}
	if IsLegacyJSON(nil) {
		t.Fatal("empty payload detected as JSON")
	}
}
