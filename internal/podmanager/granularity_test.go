package podmanager

import (
	"context"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestContainerPolicyGranularity exercises the future-work policy
// granularity: pod-wide defaults (DE App side), container-level templates
// (pod manager side), and resource-specific policies, with the most
// specific winning.
func TestContainerPolicyGranularity(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	if err := e.mgr.RegisterPod(ctx, nil); err != nil {
		t.Fatal(err)
	}

	// Container template: everything under /medical/ is medical-research
	// only with 90-day retention.
	template := policy.New("https://template", string(aliceWebID), t0)
	template.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch}
	template.MaxRetention = 90 * 24 * time.Hour
	if err := e.mgr.SetContainerPolicy(aliceWebID, "/medical/", template); err != nil {
		t.Fatal(err)
	}
	// Nested, more specific container: /medical/trials/ also caps uses.
	trials := template.Clone()
	trials.MaxUses = 10
	if err := e.mgr.SetContainerPolicy(aliceWebID, "/medical/trials/", trials); err != nil {
		t.Fatal(err)
	}

	upload := func(path string) {
		t.Helper()
		if err := e.mgr.Upload(path, "text/plain", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("resource inherits container template", func(t *testing.T) {
		upload("/medical/ds1.txt")
		if err := e.mgr.Publish(ctx, aliceWebID, "/medical/ds1.txt", "", nil); err != nil {
			t.Fatal(err)
		}
		rec, err := e.mgr.DE().GetResource(e.mgr.ResourceIRI("/medical/ds1.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Policy.MaxRetention != 90*24*time.Hour || rec.Policy.MaxUses != 0 {
			t.Fatalf("policy = %+v", rec.Policy)
		}
		if !rec.Policy.PermitsPurpose(policy.PurposeMedicalResearch) ||
			rec.Policy.PermitsPurpose(policy.PurposeMarketing) {
			t.Fatalf("purposes = %v", rec.Policy.AllowedPurposes)
		}
		if rec.Policy.ResourceIRI != e.mgr.ResourceIRI("/medical/ds1.txt") {
			t.Fatalf("template not re-bound: %s", rec.Policy.ResourceIRI)
		}
	})

	t.Run("nearest container wins", func(t *testing.T) {
		upload("/medical/trials/t1.txt")
		if err := e.mgr.Publish(ctx, aliceWebID, "/medical/trials/t1.txt", "", nil); err != nil {
			t.Fatal(err)
		}
		rec, err := e.mgr.DE().GetResource(e.mgr.ResourceIRI("/medical/trials/t1.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Policy.MaxUses != 10 {
			t.Fatalf("nested container template not applied: %+v", rec.Policy)
		}
	})

	t.Run("explicit policy beats container", func(t *testing.T) {
		upload("/medical/ds2.txt")
		explicit := policy.New(e.mgr.ResourceIRI("/medical/ds2.txt"), string(aliceWebID), t0)
		explicit.MaxRetention = time.Hour
		if err := e.mgr.Publish(ctx, aliceWebID, "/medical/ds2.txt", "", explicit); err != nil {
			t.Fatal(err)
		}
		rec, err := e.mgr.DE().GetResource(e.mgr.ResourceIRI("/medical/ds2.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Policy.MaxRetention != time.Hour {
			t.Fatalf("explicit policy not used: %+v", rec.Policy)
		}
	})

	t.Run("outside container gets unconstrained default", func(t *testing.T) {
		upload("/public/readme.txt")
		if err := e.mgr.Publish(ctx, aliceWebID, "/public/readme.txt", "", nil); err != nil {
			t.Fatal(err)
		}
		rec, err := e.mgr.DE().GetResource(e.mgr.ResourceIRI("/public/readme.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Policy.MaxRetention != 0 || len(rec.Policy.AllowedPurposes) != 0 {
			t.Fatalf("unexpected constraints: %+v", rec.Policy)
		}
	})
}

func TestSetContainerPolicyValidation(t *testing.T) {
	e := newEnv(t)
	template := policy.New("https://template", string(aliceWebID), t0)

	if err := e.mgr.SetContainerPolicy(aliceWebID, "/no-trailing-slash", template); err == nil {
		t.Fatal("non-container path accepted")
	}
	bad := template.Clone()
	bad.MaxRetention = -time.Hour
	if err := e.mgr.SetContainerPolicy(aliceWebID, "/c/", bad); err == nil {
		t.Fatal("invalid template accepted")
	}
	if err := e.mgr.SetContainerPolicy(bobWebID, "/c/", template); err == nil {
		t.Fatal("non-owner set a container policy")
	}
}
