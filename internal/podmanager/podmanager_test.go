package podmanager

import (
	"context"
	"encoding/hex"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/market"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/solid"
)

var t0 = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

// env is a full pod-manager test environment: chain + DE App + market +
// HTTP server + a consumer with keys and a registered device identity.
type env struct {
	t       *testing.T
	clk     *simclock.Sim
	node    *chain.Node
	deAddr  cryptoutil.Address
	mkt     *market.Service
	dir     *solid.MapDirectory
	mgr     *Manager
	srv     *httptest.Server
	devKey  *cryptoutil.KeyPair // consumer device blockchain identity
	devCert []byte
	bobKey  *cryptoutil.KeyPair // consumer WebID key
}

const (
	aliceWebID = solid.WebID("https://alice.pod/profile#me")
	bobWebID   = solid.WebID("https://bob.example/profile#me")
)

// autoSeal wraps the node to seal after every submission.
type autoSeal struct{ node *chain.Node }

func (b autoSeal) SubmitTx(tx *chain.Tx) (cryptoutil.Hash, error) {
	h, err := b.node.SubmitTx(tx)
	if err != nil {
		return h, err
	}
	_, err = b.node.Seal()
	return h, err
}
func (b autoSeal) WaitForReceipt(ctx context.Context, h cryptoutil.Hash) (*chain.Receipt, error) {
	return b.node.WaitForReceipt(ctx, h)
}
func (b autoSeal) Query(c cryptoutil.Address, method string, args []byte) ([]byte, error) {
	return b.node.Query(c, method, args)
}
func (b autoSeal) NonceFor(a cryptoutil.Address) uint64 { return b.node.NonceFor(a) }

func newEnv(t *testing.T) *env {
	t.Helper()
	clk := simclock.NewSim(t0)

	ca, err := cryptoutil.NewAuthority("tee-ca")
	if err != nil {
		t.Fatal(err)
	}
	rt := contract.NewRuntime()
	deAddr := rt.Deploy(distexchange.ContractName, distexchange.New(distexchange.Config{
		ManufacturerCAKey: ca.PublicBytes(),
		ManufacturerCA:    ca.Address(),
	}))
	authority := cryptoutil.MustGenerateKey()
	node, err := chain.NewNode(chain.Config{
		Key:         authority,
		Authorities: []cryptoutil.Address{authority.Address()},
		Executor:    rt,
		Clock:       clk,
		GenesisTime: t0,
	})
	if err != nil {
		t.Fatal(err)
	}

	mkt, err := market.NewService("datamarket", clk)
	if err != nil {
		t.Fatal(err)
	}

	dir := solid.NewMapDirectory()
	aliceKey := cryptoutil.MustGenerateKey()
	bobKey := cryptoutil.MustGenerateKey()
	dir.Register(aliceWebID, aliceKey.PublicBytes())
	dir.Register(bobWebID, bobKey.PublicBytes())

	pushIn := oracle.NewPushIn(autoSeal{node: node}, nil)
	mgr, err := New(Config{
		OwnerWebID: aliceWebID,
		BaseURL:    "https://alice.pod",
		Key:        aliceKey,
		Backend:    pushIn,
		DEAddr:     deAddr,
		Market:     market.VerifierFor(mkt),
		Directory:  dir,
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mgr.Handler())
	t.Cleanup(srv.Close)

	// Provision a consumer device certificate.
	devKey := cryptoutil.MustGenerateKey()
	var m cryptoutil.Hash
	copy(m[:], []byte("app-measurement-0123456789abcdef"))
	cert, err := ca.Issue(devKey, map[string]string{"measurement": hex.EncodeToString(m[:])}, t0, t0.Add(365*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	certRaw, err := cert.Encode()
	if err != nil {
		t.Fatal(err)
	}

	return &env{
		t: t, clk: clk, node: node, deAddr: deAddr, mkt: mkt, dir: dir,
		mgr: mgr, srv: srv, devKey: devKey, devCert: certRaw, bobKey: bobKey,
	}
}

// publish registers the pod and a resource with the given policy.
func (e *env) publish(pol *policy.Policy) string {
	e.t.Helper()
	ctx := context.Background()
	if err := e.mgr.RegisterPod(ctx, nil); err != nil {
		e.t.Fatal(err)
	}
	if err := e.mgr.Upload("/web/browsing.csv", "text/csv", []byte("r1,r2,r3")); err != nil {
		e.t.Fatal(err)
	}
	if err := e.mgr.Publish(ctx, aliceWebID, "/web/browsing.csv", "internet browsing dataset", pol); err != nil {
		e.t.Fatal(err)
	}
	return e.mgr.ResourceIRI("/web/browsing.csv")
}

// registerDevice registers the consumer device on-chain.
func (e *env) registerDevice() {
	e.t.Helper()
	devClient := distexchange.NewClient(autoSeal{node: e.node}, e.devKey, e.deAddr)
	if _, err := devClient.RegisterDevice(context.Background(), e.devCert); err != nil {
		e.t.Fatal(err)
	}
}

func browsingPolicy() *policy.Policy {
	p := policy.New("https://alice.pod/web/browsing.csv", string(aliceWebID), t0)
	p.MaxRetention = 30 * 24 * time.Hour
	return p
}

func TestRegisterPodAndPublish(t *testing.T) {
	e := newEnv(t)
	iri := e.publish(browsingPolicy())

	// On-chain record exists with the policy.
	rec, err := e.mgr.DE().GetResource(iri)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PodWebID != string(aliceWebID) || rec.Policy.MaxRetention != 30*24*time.Hour {
		t.Fatalf("record = %+v", rec)
	}
	// Policy document stored in the pod as Turtle.
	res, err := e.mgr.Pod().Get(aliceWebID, "/web/browsing.csv.policy")
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentType != "text/turtle" {
		t.Fatalf("policy doc content type = %s", res.ContentType)
	}
	// The manager's view matches.
	pol, err := e.mgr.PublishedPolicy("/web/browsing.csv")
	if err != nil || pol.Version != 1 {
		t.Fatalf("published policy = %+v, %v", pol, err)
	}
}

func TestPublishRequiresResourceAndOwner(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	if err := e.mgr.RegisterPod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	// Missing resource.
	if err := e.mgr.Publish(ctx, aliceWebID, "/nope.csv", "", nil); !errors.Is(err, ErrMissingInPod) {
		t.Fatalf("missing resource: %v", err)
	}
	// Non-owner without Control.
	if err := e.mgr.Upload("/web/browsing.csv", "text/csv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := e.mgr.Publish(ctx, bobWebID, "/web/browsing.csv", "", nil); !errors.Is(err, ErrOwnerOnly) {
		t.Fatalf("non-owner publish: %v", err)
	}
}

func TestResourceAccessWithCertificate(t *testing.T) {
	e := newEnv(t)
	iri := e.publish(browsingPolicy())
	e.registerDevice()
	ctx := context.Background()

	// Grant Bob access (ACL + on-chain grant).
	if err := e.mgr.GrantAccess(ctx, bobWebID, e.bobKey.Address(), e.devKey.Address(),
		"/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}

	bob := solid.NewClient(bobWebID, e.bobKey, e.clk)

	// Without a certificate: denied by the market hook.
	if _, _, err := bob.Get(e.srv.URL + "/web/browsing.csv"); err == nil {
		t.Fatal("access without certificate succeeded")
	}

	// Bob registers with the market, subscribes, pays the fee.
	if err := e.mkt.Register(string(bobWebID), "bob@example.org", e.bobKey.Address(), e.bobKey.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	if err := e.mkt.Subscribe(string(bobWebID), market.PlanBasic); err != nil {
		t.Fatal(err)
	}
	cert, err := e.mkt.PayFee(string(bobWebID), iri)
	if err != nil {
		t.Fatal(err)
	}
	decorate, err := AttachCertificate(cert)
	if err != nil {
		t.Fatal(err)
	}
	bob.Decorate = decorate

	data, _, err := bob.Get(e.srv.URL + "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "r1,r2,r3" {
		t.Fatalf("data = %q", data)
	}

	// A certificate for another resource is rejected.
	otherCert, err := e.mkt.PayFee(string(bobWebID), "https://elsewhere/r")
	if err != nil {
		t.Fatal(err)
	}
	bob.Decorate, err = AttachCertificate(otherCert)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.Get(e.srv.URL + "/web/browsing.csv"); err == nil {
		t.Fatal("certificate for another resource accepted")
	}

	// An expired certificate is rejected.
	bob.Decorate, _ = AttachCertificate(cert)
	e.clk.Advance(market.CertificateTTL + time.Hour)
	if _, _, err := bob.Get(e.srv.URL + "/web/browsing.csv"); err == nil {
		t.Fatal("expired certificate accepted")
	}
}

func TestOwnerAccessNeedsNoCertificate(t *testing.T) {
	e := newEnv(t)
	e.publish(browsingPolicy())
	aliceKey, _ := e.dir.KeyFor(aliceWebID)
	_ = aliceKey
	alice := solid.NewClient(aliceWebID, e.mgrKey(), e.clk)
	if _, _, err := alice.Get(e.srv.URL + "/web/browsing.csv"); err != nil {
		t.Fatalf("owner access: %v", err)
	}
}

// mgrKey digs the manager's key out for the owner HTTP client. The manager
// signs with the same key as Alice's WebID in this environment.
func (e *env) mgrKey() *cryptoutil.KeyPair { return e.mgr.DE().Key() }

func TestUnpublishedResourceSkipsCertificateCheck(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	if err := e.mgr.RegisterPod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.mgr.Upload("/notes.txt", "text/plain", []byte("private-ish")); err != nil {
		t.Fatal(err)
	}
	acl := solid.NewACL(aliceWebID, "/notes.txt")
	acl.Grant("bob", []solid.WebID{bobWebID}, "/notes.txt", false, solid.ModeRead)
	if err := e.mgr.Pod().SetACL(aliceWebID, "/notes.txt", acl); err != nil {
		t.Fatal(err)
	}
	bob := solid.NewClient(bobWebID, e.bobKey, e.clk)
	if _, _, err := bob.Get(e.srv.URL + "/notes.txt"); err != nil {
		t.Fatalf("plain WAC access to unpublished resource: %v", err)
	}
}

func TestModifyPolicy(t *testing.T) {
	e := newEnv(t)
	iri := e.publish(browsingPolicy())
	ctx := context.Background()

	v2 := browsingPolicy().NextVersion(e.clk.Now())
	v2.MaxRetention = 7 * 24 * time.Hour
	if err := e.mgr.ModifyPolicy(ctx, aliceWebID, "/web/browsing.csv", v2); err != nil {
		t.Fatal(err)
	}
	rec, err := e.mgr.DE().GetResource(iri)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy.Version != 2 || rec.Policy.MaxRetention != 7*24*time.Hour {
		t.Fatalf("on-chain policy = %+v", rec.Policy)
	}
	// PolicyUpdated event fired for push-out delivery.
	if n := len(e.node.Events(chain.EventFilter{Topic: distexchange.TopicPolicyUpdated, Key: iri})); n != 1 {
		t.Fatalf("PolicyUpdated events = %d", n)
	}

	// Version regressions and non-owners are rejected.
	if err := e.mgr.ModifyPolicy(ctx, aliceWebID, "/web/browsing.csv", browsingPolicy()); err == nil {
		t.Fatal("stale version accepted")
	}
	v3 := v2.NextVersion(e.clk.Now())
	if err := e.mgr.ModifyPolicy(ctx, bobWebID, "/web/browsing.csv", v3); !errors.Is(err, ErrOwnerOnly) {
		t.Fatalf("non-owner modify: %v", err)
	}
	// Unpublished path.
	if err := e.mgr.ModifyPolicy(ctx, aliceWebID, "/other.csv", v3); !errors.Is(err, ErrNotPublished) {
		t.Fatalf("unpublished modify: %v", err)
	}
}

func TestMonitoringViaManager(t *testing.T) {
	e := newEnv(t)
	iri := e.publish(browsingPolicy())
	e.registerDevice()
	ctx := context.Background()

	if err := e.mgr.GrantAccess(ctx, bobWebID, e.bobKey.Address(), e.devKey.Address(),
		"/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	// Device confirms retrieval so it becomes a monitoring target.
	devClient := distexchange.NewClient(autoSeal{node: e.node}, e.devKey, e.deAddr)
	if _, err := devClient.ConfirmRetrieval(ctx, iri); err != nil {
		t.Fatal(err)
	}

	round, err := e.mgr.StartMonitoring(ctx, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Targets) != 1 {
		t.Fatalf("targets = %v", round.Targets)
	}

	// Nobody responds; collection closes the round and flags the device.
	evidence, violations, err := e.mgr.CollectMonitoring(ctx, "/web/browsing.csv", round.Round)
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 0 {
		t.Fatalf("evidence = %+v", evidence)
	}
	if len(violations) != 1 || violations[0].Kind != distexchange.ViolationUnresponsive {
		t.Fatalf("violations = %+v", violations)
	}
	// Monitoring an unpublished resource fails fast.
	if _, err := e.mgr.StartMonitoring(ctx, "/other"); !errors.Is(err, ErrNotPublished) {
		t.Fatalf("unpublished monitoring: %v", err)
	}
}

func TestGrantAccessRequiresPublication(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	if err := e.mgr.RegisterPod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	err := e.mgr.GrantAccess(ctx, bobWebID, e.bobKey.Address(), e.devKey.Address(), "/x", policy.PurposeAny)
	if !errors.Is(err, ErrNotPublished) {
		t.Fatalf("err = %v", err)
	}
}
