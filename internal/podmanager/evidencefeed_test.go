package podmanager

import (
	"context"
	"testing"
	"time"

	"repro/internal/distexchange"
	"repro/internal/oracle"
	"repro/internal/policy"
)

// TestEvidenceFeedReceivesComplianceEvents: the push-out oracle delivers
// evidence and violation events for the manager's resources into its
// compliance journal (the closing arrow of Fig. 2(6)).
func TestEvidenceFeedReceivesComplianceEvents(t *testing.T) {
	e := newEnv(t)
	iri := e.publish(browsingPolicy())
	e.registerDevice()
	ctx := context.Background()

	pushOut := oracle.NewPushOut(e.node, nil)
	defer pushOut.Close()
	cancel := e.mgr.StartEvidenceFeed(pushOut, e.deAddr)
	defer cancel()

	// Grant + retrieval + a monitoring round answered with device-signed
	// evidence that is overdue (retention violation): both an
	// EvidenceRecorded and a ViolationDetected event flow back.
	if err := e.mgr.GrantAccess(ctx, bobWebID, e.bobKey.Address(), e.devKey.Address(),
		"/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	devClient := distexchange.NewClient(autoSeal{node: e.node}, e.devKey, e.deAddr)
	if _, err := devClient.ConfirmRetrieval(ctx, iri); err != nil {
		t.Fatal(err)
	}
	retrieved := e.clk.Now()
	e.clk.Advance(31 * 24 * time.Hour) // past the 30-day retention

	round, err := e.mgr.StartMonitoring(ctx, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	ev := distexchange.Evidence{
		ResourceIRI: iri, Device: e.devKey.Address(), Round: round.Round,
		PolicyVersion: 1, StillStored: true,
		RetrievedAt: retrieved, GeneratedAt: e.clk.Now(),
	}
	sig, err := e.devKey.Sign(ev.SigningBytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := devClient.SubmitEvidence(ctx, distexchange.SignedEvidence{Evidence: ev, Signature: sig}); err != nil {
		t.Fatal(err)
	}

	// The journal receives both events asynchronously.
	deadline := time.Now().Add(3 * time.Second)
	for {
		journal := e.mgr.ComplianceJournal()
		topics := map[string]int{}
		for _, entry := range journal {
			if entry.Resource != iri {
				t.Fatalf("journal entry for foreign resource: %+v", entry)
			}
			topics[entry.Topic]++
		}
		if topics[distexchange.TopicEvidenceRecorded] == 1 && topics[distexchange.TopicViolationDetected] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal incomplete: %v", topics)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEvidenceFeedIgnoresForeignResources: events about other pods'
// resources do not pollute the journal.
func TestEvidenceFeedIgnoresForeignResources(t *testing.T) {
	e := newEnv(t)
	e.publish(browsingPolicy())
	pushOut := oracle.NewPushOut(e.node, nil)
	defer pushOut.Close()
	cancel := e.mgr.StartEvidenceFeed(pushOut, e.deAddr)
	defer cancel()

	// A second pod owner publishes and triggers violations on their own
	// resource.
	otherKey := e.bobKey
	other := distexchange.NewClient(autoSeal{node: e.node}, otherKey, e.deAddr)
	ctx := context.Background()
	if _, err := other.RegisterPod(ctx, distexchange.RegisterPodArgs{
		OwnerWebID: string(bobWebID), Location: "https://bob.example/",
	}); err != nil {
		t.Fatal(err)
	}
	pol := policy.New("https://bob.example/r", string(bobWebID), t0)
	if _, err := other.RegisterResource(ctx, distexchange.RegisterResourceArgs{
		ResourceIRI: "https://bob.example/r", PodWebID: string(bobWebID),
		Location: "https://bob.example/r", Policy: pol,
	}); err != nil {
		t.Fatal(err)
	}
	e.registerDevice()
	if _, err := other.RecordGrant(ctx, distexchange.RecordGrantArgs{
		ResourceIRI: "https://bob.example/r", Consumer: e.devKey.Address(),
		Device: e.devKey.Address(), Purpose: policy.PurposeAny,
	}); err != nil {
		t.Fatal(err)
	}
	devClient := distexchange.NewClient(autoSeal{node: e.node}, e.devKey, e.deAddr)
	if _, err := devClient.ConfirmRetrieval(ctx, "https://bob.example/r"); err != nil {
		t.Fatal(err)
	}
	round, err := other.RequestMonitoring(ctx, "https://bob.example/r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ReportUnresponsive(ctx, "https://bob.example/r", round.Round); err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond) // let any (wrong) delivery land
	if journal := e.mgr.ComplianceJournal(); len(journal) != 0 {
		t.Fatalf("journal polluted by foreign events: %+v", journal)
	}
}
