package tee

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/simclock"
)

// TestPolicyUpdateCancelsStaleDeletionTimer: a policy update that drops
// the retention deadline used to leave the previous version's deletion
// timer armed, so the copy was erased at the *old* deadline even though
// the new policy allows keeping it. The scenario engine's
// retention-enforcement invariant caught the mismatch across a clock
// skip; applying an update must re-arm (and thereby cancel) the timer
// against the new policy.
func TestPolicyUpdateCancelsStaleDeletionTimer(t *testing.T) {
	start := time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)
	clk := simclock.NewSim(start)
	app, iri := newAppWithCopy(t, clk, func(p *policy.Policy) {
		p.MaxRetention = 7 * 24 * time.Hour
	})

	// v2 removes the retention bound entirely.
	v2 := policy.New(iri, "https://owner.example/profile#me", clk.Now())
	v2.Version = 2
	if _, err := app.ApplyPolicyUpdate(v2); err != nil {
		t.Fatal(err)
	}

	// Cross the old deadline: the copy must survive under v2.
	clk.Advance(8 * 24 * time.Hour)
	if !app.Holds(iri) {
		t.Fatal("copy deleted at the old deadline despite the new policy having none")
	}
	if _, err := app.Use(iri, policy.ActionUse); err != nil {
		t.Fatalf("use under the deadline-free policy: %v", err)
	}
}

// TestPolicyUpdateExtendsDeadline: lengthening retention must move the
// deletion to the new (later) deadline — not fire at the old one, not
// linger past the new one.
func TestPolicyUpdateExtendsDeadline(t *testing.T) {
	start := time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)
	clk := simclock.NewSim(start)
	app, iri := newAppWithCopy(t, clk, func(p *policy.Policy) {
		p.MaxRetention = 2 * 24 * time.Hour
	})

	v2 := policy.New(iri, "https://owner.example/profile#me", clk.Now())
	v2.Version = 2
	v2.MaxRetention = 9 * 24 * time.Hour
	if _, err := app.ApplyPolicyUpdate(v2); err != nil {
		t.Fatal(err)
	}

	clk.Advance(3 * 24 * time.Hour) // past old deadline, before new
	if !app.Holds(iri) {
		t.Fatal("copy deleted at the superseded (shorter) deadline")
	}
	clk.Advance(7 * 24 * time.Hour) // past the new deadline
	if app.Holds(iri) {
		t.Fatal("copy survived the extended deadline")
	}
}

// newAppWithCopy provisions an attested device + app holding one copy of
// a resource governed by the mutated policy.
func newAppWithCopy(t *testing.T, clk *simclock.Sim, mutate func(*policy.Policy)) (*App, string) {
	t.Helper()
	manufacturer, err := NewManufacturer("m")
	if err != nil {
		t.Fatal(err)
	}
	now := clk.Now()
	device, err := manufacturer.Provision(MeasurementOf("app"), now, now.Add(100*365*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(device, policy.PurposeAny, clk)
	const iri = "https://owner.pod/data/r.bin"
	pol := policy.New(iri, "https://owner.example/profile#me", now)
	if mutate != nil {
		mutate(pol)
	}
	if err := app.StoreResource(iri, []byte("payload"), pol); err != nil {
		t.Fatal(err)
	}
	return app, iri
}
