package tee

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/distexchange"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// Trusted application errors.
var (
	ErrNoCopy     = errors.New("tee: no copy of resource")
	ErrDeleted    = errors.New("tee: copy deleted")
	ErrUseRevoked = errors.New("tee: use revoked by policy update")
	ErrUseDenied  = errors.New("tee: use denied by policy")
)

// maxReportedEntries caps how many usage-log entries a single evidence
// report carries.
const maxReportedEntries = 256

// copyState is the enclave-resident bookkeeping for one resource copy.
// The resource bytes themselves live only in the sealed store.
type copyState struct {
	resourceIRI string
	pol         *policy.Policy
	retrievedAt time.Time
	useCount    uint64
	entries     []distexchange.UsageEntry
	deleted     bool
	deletedAt   time.Time
	useRevoked  bool
	cancelTimer func()
}

// App is the trusted application: it holds resource copies in trusted
// storage and enforces their usage policies locally — the enforcement
// point of the architecture. All uses flow through Use; obligations
// (expiry deletion, revocation) execute automatically.
type App struct {
	device  *Device
	purpose policy.Purpose
	clock   simclock.Clock

	mu     sync.Mutex
	copies map[string]*copyState

	// rogue disables deletion obligations (failure injection): the app
	// keeps data past its deadline, which policy monitoring must detect.
	rogue bool
}

// NewApp creates a trusted application on the device with a declared
// purpose of use.
func NewApp(device *Device, purpose policy.Purpose, clock simclock.Clock) *App {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &App{
		device:  device,
		purpose: purpose,
		clock:   clock,
		copies:  make(map[string]*copyState),
	}
}

// Device returns the hosting device.
func (a *App) Device() *Device { return a.device }

// Purpose returns the application's declared purpose.
func (a *App) Purpose() policy.Purpose { return a.purpose }

// SetRogue toggles deletion-obligation bypassing (failure injection for
// the monitoring experiments).
func (a *App) SetRogue(rogue bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rogue = rogue
}

func dataKey(iri string) string { return "data/" + iri }

// StoreResource places a retrieved resource copy under policy enforcement:
// the bytes are sealed into trusted storage and the deletion obligation
// (if any) is scheduled.
func (a *App) StoreResource(iri string, data []byte, pol *policy.Policy) error {
	if err := pol.Validate(); err != nil {
		return fmt.Errorf("tee: store %s: %w", iri, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if prior, ok := a.copies[iri]; ok && !prior.deleted {
		return fmt.Errorf("tee: copy of %s already stored", iri)
	}
	if err := a.device.store.Seal(dataKey(iri), data); err != nil {
		return err
	}
	st := &copyState{
		resourceIRI: iri,
		pol:         pol.Clone(),
		retrievedAt: a.clock.Now(),
	}
	a.copies[iri] = st
	a.scheduleDeletionLocked(st)
	return nil
}

// scheduleDeletionLocked (re)arms the expiry timer for a copy. Caller
// holds a.mu.
func (a *App) scheduleDeletionLocked(st *copyState) {
	if st.cancelTimer != nil {
		st.cancelTimer()
		st.cancelTimer = nil
	}
	deadline, has := st.pol.DeleteDeadline(st.retrievedAt)
	if !has || st.deleted {
		return
	}
	delay := deadline.Sub(a.clock.Now())
	if delay < 0 {
		delay = 0
	}
	iri := st.resourceIRI
	st.cancelTimer = a.clock.AfterFunc(delay, func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		cur, ok := a.copies[iri]
		if !ok || cur.deleted || a.rogue {
			return
		}
		a.deleteLocked(cur)
	})
}

// deleteLocked erases the sealed bytes and tombstones the copy. Caller
// holds a.mu.
func (a *App) deleteLocked(st *copyState) {
	a.device.store.Delete(dataKey(st.resourceIRI))
	st.deleted = true
	st.deletedAt = a.clock.Now()
	if st.cancelTimer != nil {
		st.cancelTimer()
		st.cancelTimer = nil
	}
}

// Delete erases a copy on demand.
func (a *App) Delete(iri string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.copies[iri]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoCopy, iri)
	}
	if st.deleted {
		return fmt.Errorf("%w: %s", ErrDeleted, iri)
	}
	a.deleteLocked(st)
	return nil
}

// Use performs an action on a stored copy under policy control. On permit
// it returns the resource bytes; every attempt (permitted or denied) is
// logged for evidence.
func (a *App) Use(iri string, action policy.Action) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.copies[iri]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoCopy, iri)
	}
	if st.deleted {
		return nil, fmt.Errorf("%w: %s", ErrDeleted, iri)
	}
	now := a.clock.Now()
	entry := distexchange.UsageEntry{At: now, Action: action, Purpose: a.purpose}

	if st.useRevoked {
		st.entries = append(st.entries, entry)
		return nil, fmt.Errorf("%w: %s", ErrUseRevoked, iri)
	}
	decision := st.pol.Evaluate(policy.UsageContext{
		Now:         now,
		Purpose:     a.purpose,
		Action:      action,
		RetrievedAt: st.retrievedAt,
		PriorUses:   st.useCount,
	})
	if !decision.Allowed {
		st.entries = append(st.entries, entry)
		// A denial on expiry grounds means the deadline passed; enforce the
		// obligation immediately (unless rogue).
		if decision.Deny(policy.DenyExpired) && !a.rogue {
			a.deleteLocked(st)
		}
		return nil, fmt.Errorf("%w: %s", ErrUseDenied, decision)
	}
	data, err := a.device.store.Unseal(dataKey(iri))
	if err != nil {
		return nil, err
	}
	entry.Allowed = true
	st.entries = append(st.entries, entry)
	st.useCount++
	return data, nil
}

// ApplyPolicyUpdate installs a new policy version for a held copy and
// executes the obligations the change triggers (the Fig. 2(5) device-side
// step). It returns the executed obligations. Updates for resources this
// app does not hold return ErrNoCopy.
func (a *App) ApplyPolicyUpdate(newPol *policy.Policy) ([]policy.Obligation, error) {
	if err := newPol.Validate(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.copies[newPol.ResourceIRI]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoCopy, newPol.ResourceIRI)
	}
	if newPol.Version <= st.pol.Version {
		// Stale or duplicate update: ignore but report no obligations.
		return []policy.Obligation{{Kind: policy.ObligationNone, Reason: "stale version"}}, nil
	}
	st.pol = newPol.Clone()

	obligations := policy.ObligationsFor(newPol, policy.HolderState{
		RetrievedAt: st.retrievedAt,
		Purpose:     a.purpose,
		Now:         a.clock.Now(),
	})
	for _, ob := range obligations {
		switch ob.Kind {
		case policy.ObligationDeleteNow:
			if !st.deleted && !a.rogue {
				a.deleteLocked(st)
			}
		case policy.ObligationRevokeUse:
			st.useRevoked = true
		case policy.ObligationNone, policy.ObligationReschedule:
			// Timer handling is unified below.
		}
	}
	// Re-arm the deletion timer against the new policy unconditionally:
	// scheduleDeletionLocked cancels the previous timer first, so a policy
	// that dropped its retention deadline also cancels the stale timer
	// (otherwise the old deadline would still delete a copy the new policy
	// allows keeping).
	if !st.deleted {
		a.scheduleDeletionLocked(st)
	}
	return obligations, nil
}

// PolicyVersion returns the policy version enforced for a copy (0 if the
// resource is unknown).
func (a *App) PolicyVersion(iri string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.copies[iri]; ok {
		return st.pol.Version
	}
	return 0
}

// Holds reports whether a live (non-deleted) copy of the resource exists.
func (a *App) Holds(iri string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.copies[iri]
	return ok && !st.deleted
}

// Holdings lists resources with live copies.
func (a *App) Holdings() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for iri, st := range a.copies {
		if !st.deleted {
			out = append(out, iri)
		}
	}
	return out
}

// UseCount returns the number of permitted uses of a copy.
func (a *App) UseCount(iri string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.copies[iri]; ok {
		return st.useCount
	}
	return 0
}

// Evidence builds and signs a compliance report for a resource, answering
// a monitoring round (Fig. 2(6)). The report is truthful even for rogue
// apps: the rogue failure mode modeled here is broken obligation
// execution, not a compromised enclave.
func (a *App) Evidence(iri string, round uint64) (distexchange.SignedEvidence, error) {
	a.mu.Lock()
	st, ok := a.copies[iri]
	if !ok {
		a.mu.Unlock()
		return distexchange.SignedEvidence{}, fmt.Errorf("%w: %s", ErrNoCopy, iri)
	}
	entries := st.entries
	if len(entries) > maxReportedEntries {
		entries = entries[len(entries)-maxReportedEntries:]
	}
	ev := distexchange.Evidence{
		ResourceIRI:   iri,
		Device:        a.device.Address(),
		Round:         round,
		PolicyVersion: st.pol.Version,
		StillStored:   !st.deleted,
		DeletedAt:     st.deletedAt,
		RetrievedAt:   st.retrievedAt,
		UseCount:      st.useCount,
		Entries:       append([]distexchange.UsageEntry(nil), entries...),
		GeneratedAt:   a.clock.Now(),
	}
	a.mu.Unlock()

	sig, err := a.device.key.Sign(ev.SigningBytes())
	if err != nil {
		return distexchange.SignedEvidence{}, err
	}
	return distexchange.SignedEvidence{Evidence: ev, Signature: sig}, nil
}
