package tee

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"repro/internal/cryptoutil"
)

// Measurement identifies the code of a trusted application, as a hash.
type Measurement = cryptoutil.Hash

// MeasurementOf computes the measurement of a trusted application
// identity string (standing in for hashing the enclave binary).
func MeasurementOf(appIdentity string) Measurement {
	return cryptoutil.HashOf([]byte("measurement|" + appIdentity))
}

// Manufacturer is the TEE vendor: it provisions devices with certified
// keys, acting as the attestation root of trust (the analogue of Intel's
// attestation service).
type Manufacturer struct {
	ca *cryptoutil.Authority
}

// NewManufacturer creates a manufacturer with a fresh CA key.
func NewManufacturer(name string) (*Manufacturer, error) {
	ca, err := cryptoutil.NewAuthority(name)
	if err != nil {
		return nil, err
	}
	return &Manufacturer{ca: ca}, nil
}

// CAPublicBytes returns the CA public key that verifiers pin.
func (m *Manufacturer) CAPublicBytes() []byte { return m.ca.PublicBytes() }

// CAAddress returns the CA address that verifiers pin.
func (m *Manufacturer) CAAddress() cryptoutil.Address { return m.ca.Address() }

// Provision creates a device running the trusted application with the
// given measurement, issuing its attestation certificate valid for the
// given window.
func (m *Manufacturer) Provision(measurement Measurement, notBefore, notAfter time.Time) (*Device, error) {
	key, err := cryptoutil.GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	secret := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, secret); err != nil {
		return nil, fmt.Errorf("tee: device secret: %w", err)
	}
	cert, err := m.ca.Issue(key, map[string]string{
		"measurement": hex.EncodeToString(measurement[:]),
	}, notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	store, err := NewSealedStore(secret, measurement)
	if err != nil {
		return nil, err
	}
	return &Device{
		key:         key,
		secret:      secret,
		measurement: measurement,
		cert:        cert,
		store:       store,
	}, nil
}

// Device is one consumer device with TEE support.
type Device struct {
	key         *cryptoutil.KeyPair
	secret      []byte
	measurement Measurement
	cert        *cryptoutil.Certificate
	store       *SealedStore
}

// Address returns the device's on-chain identity.
func (d *Device) Address() cryptoutil.Address { return d.key.Address() }

// Key returns the device key pair (inside the enclave; exposed here so
// higher layers can build blockchain clients bound to the device
// identity).
func (d *Device) Key() *cryptoutil.KeyPair { return d.key }

// Measurement returns the attested application measurement.
func (d *Device) Measurement() Measurement { return d.measurement }

// CertificateBytes returns the JSON-encoded manufacturer certificate used
// for on-chain device registration.
func (d *Device) CertificateBytes() ([]byte, error) { return d.cert.Encode() }

// Store returns the device's sealed storage.
func (d *Device) Store() *SealedStore { return d.store }

// Quote is a remote attestation statement: the device signs a verifier
// nonce together with its measurement.
type Quote struct {
	// Measurement is the attested application code hash.
	Measurement Measurement `json:"measurement"`
	// Nonce is the verifier-supplied freshness challenge.
	Nonce []byte `json:"nonce"`
	// DeviceKey is the quoting device's public key.
	DeviceKey []byte `json:"deviceKey"`
	// Signature is the device signature over the quote body.
	Signature []byte `json:"signature"`
	// Certificate is the JSON manufacturer certificate for DeviceKey.
	Certificate []byte `json:"certificate"`
}

func quoteSigningBytes(measurement Measurement, nonce, deviceKey []byte) []byte {
	h := sha256.New()
	h.Write([]byte("quote|"))
	h.Write(measurement[:])
	h.Write(nonce)
	h.Write(deviceKey)
	return h.Sum(nil)
}

// Attest produces a quote over the verifier's nonce.
func (d *Device) Attest(nonce []byte) (*Quote, error) {
	sig, err := d.key.Sign(quoteSigningBytes(d.measurement, nonce, d.key.PublicBytes()))
	if err != nil {
		return nil, err
	}
	certRaw, err := d.cert.Encode()
	if err != nil {
		return nil, err
	}
	return &Quote{
		Measurement: d.measurement,
		Nonce:       append([]byte(nil), nonce...),
		DeviceKey:   d.key.PublicBytes(),
		Signature:   sig,
		Certificate: certRaw,
	}, nil
}

// VerifyQuote checks a quote against the pinned manufacturer CA, the
// expected nonce, and (optionally) an expected measurement. It returns the
// quoting device's address on success.
func VerifyQuote(q *Quote, caPub []byte, caAddr cryptoutil.Address, nonce []byte, expectMeasurement *Measurement, now time.Time) (cryptoutil.Address, error) {
	if string(q.Nonce) != string(nonce) {
		return cryptoutil.Address{}, fmt.Errorf("tee: quote nonce mismatch")
	}
	if expectMeasurement != nil && q.Measurement != *expectMeasurement {
		return cryptoutil.Address{}, fmt.Errorf("tee: measurement %s, want %s", q.Measurement, *expectMeasurement)
	}
	cert, err := cryptoutil.DecodeCertificate(q.Certificate)
	if err != nil {
		return cryptoutil.Address{}, err
	}
	if err := cert.Verify(caPub, caAddr, now); err != nil {
		return cryptoutil.Address{}, fmt.Errorf("tee: quote certificate: %w", err)
	}
	if string(cert.SubjectKey) != string(q.DeviceKey) {
		return cryptoutil.Address{}, fmt.Errorf("tee: quote key does not match certificate")
	}
	certMeasurement, ok := cert.Claims["measurement"]
	if !ok || certMeasurement != hex.EncodeToString(q.Measurement[:]) {
		return cryptoutil.Address{}, fmt.Errorf("tee: certificate measurement does not match quote")
	}
	pub, err := cryptoutil.ParsePublicKey(q.DeviceKey)
	if err != nil {
		return cryptoutil.Address{}, err
	}
	if !cryptoutil.Verify(pub, quoteSigningBytes(q.Measurement, q.Nonce, q.DeviceKey), q.Signature) {
		return cryptoutil.Address{}, fmt.Errorf("tee: quote signature invalid")
	}
	return cryptoutil.AddressOf(pub), nil
}
