package tee

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *SealedStore {
	t.Helper()
	s, err := NewSealedStore([]byte("device-secret-0123456789abcdef"), MeasurementOf("app-v1"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealUnsealRoundTrip(t *testing.T) {
	s := newStore(t)
	plain := []byte("bob's medical dataset")
	if err := s.Seal("data/r1", plain); err != nil {
		t.Fatal(err)
	}
	got, err := s.Unseal("data/r1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("unsealed %q, want %q", got, plain)
	}
	if !s.Has("data/r1") || s.Len() != 1 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestUnsealMissing(t *testing.T) {
	s := newStore(t)
	if _, err := s.Unseal("nope"); !errors.Is(err, ErrSealedNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCiphertextDoesNotLeakPlaintext(t *testing.T) {
	s := newStore(t)
	plain := []byte("very secret browsing history rows")
	if err := s.Seal("data/r1", plain); err != nil {
		t.Fatal(err)
	}
	blob, ok := s.ExportBlob("data/r1")
	if !ok {
		t.Fatal("blob missing")
	}
	if bytes.Contains(blob, plain) || bytes.Contains(blob, plain[:8]) {
		t.Fatal("plaintext visible in sealed blob")
	}
}

func TestSealedBlobTamperDetected(t *testing.T) {
	s := newStore(t)
	if err := s.Seal("data/r1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	blob, _ := s.ExportBlob("data/r1")
	blob[len(blob)-1] ^= 0xFF
	s.InjectBlob("data/r1", blob)
	if _, err := s.Unseal("data/r1"); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("tampered blob unsealed: %v", err)
	}
}

func TestSealedBlobSwapDetected(t *testing.T) {
	s := newStore(t)
	if err := s.Seal("data/a", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal("data/b", []byte("B")); err != nil {
		t.Fatal(err)
	}
	// Host swaps the two ciphertexts; name binding must break decryption.
	blobA, _ := s.ExportBlob("data/a")
	blobB, _ := s.ExportBlob("data/b")
	s.InjectBlob("data/a", blobB)
	s.InjectBlob("data/b", blobA)
	if _, err := s.Unseal("data/a"); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("swapped blob unsealed: %v", err)
	}
}

func TestDifferentDeviceCannotUnseal(t *testing.T) {
	s1 := newStore(t)
	if err := s1.Seal("data/r1", []byte("sealed to s1")); err != nil {
		t.Fatal(err)
	}
	blob, _ := s1.ExportBlob("data/r1")

	s2, err := NewSealedStore([]byte("other-device-secret-fedcba9876543"), MeasurementOf("app-v1"))
	if err != nil {
		t.Fatal(err)
	}
	s2.InjectBlob("data/r1", blob)
	if _, err := s2.Unseal("data/r1"); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("cross-device unseal: %v", err)
	}
}

func TestDifferentMeasurementCannotUnseal(t *testing.T) {
	secret := []byte("same-device-secret-0123456789abc")
	s1, err := NewSealedStore(secret, MeasurementOf("app-v1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Seal("data/r1", []byte("sealed to app-v1")); err != nil {
		t.Fatal(err)
	}
	blob, _ := s1.ExportBlob("data/r1")

	s2, err := NewSealedStore(secret, MeasurementOf("app-v2-modified"))
	if err != nil {
		t.Fatal(err)
	}
	s2.InjectBlob("data/r1", blob)
	if _, err := s2.Unseal("data/r1"); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("cross-measurement unseal: %v", err)
	}
}

func TestDeleteErases(t *testing.T) {
	s := newStore(t)
	if err := s.Seal("data/r1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !s.Delete("data/r1") {
		t.Fatal("Delete reported missing")
	}
	if s.Delete("data/r1") {
		t.Fatal("double Delete reported success")
	}
	if s.Has("data/r1") || s.Len() != 0 {
		t.Fatal("entry survived delete")
	}
}

// TestSealUnsealProperty: arbitrary payloads round-trip.
func TestSealUnsealProperty(t *testing.T) {
	s := newStore(t)
	i := 0
	f := func(payload []byte) bool {
		i++
		name := string(rune('a'+i%26)) + "/entry"
		if err := s.Seal(name, payload); err != nil {
			return false
		}
		got, err := s.Unseal(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
