package tee

import (
	"testing"
	"time"
)

var teeEpoch = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

func newDevice(t *testing.T) (*Manufacturer, *Device) {
	t.Helper()
	m, err := NewManufacturer("acme-tee")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := m.Provision(MeasurementOf("trusted-app-v1"), teeEpoch, teeEpoch.Add(365*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return m, dev
}

func TestProvisionAndAttest(t *testing.T) {
	m, dev := newDevice(t)
	nonce := []byte("verifier-nonce-123")
	q, err := dev.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	want := MeasurementOf("trusted-app-v1")
	addr, err := VerifyQuote(q, m.CAPublicBytes(), m.CAAddress(), nonce, &want, teeEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if addr != dev.Address() {
		t.Fatalf("quote address = %s, want %s", addr, dev.Address())
	}
}

func TestVerifyQuoteRejections(t *testing.T) {
	m, dev := newDevice(t)
	nonce := []byte("nonce-A")
	q, err := dev.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	now := teeEpoch.Add(time.Hour)
	want := MeasurementOf("trusted-app-v1")

	t.Run("wrong nonce (replay)", func(t *testing.T) {
		if _, err := VerifyQuote(q, m.CAPublicBytes(), m.CAAddress(), []byte("nonce-B"), &want, now); err == nil {
			t.Fatal("replayed quote accepted")
		}
	})
	t.Run("wrong expected measurement", func(t *testing.T) {
		other := MeasurementOf("malware-v1")
		if _, err := VerifyQuote(q, m.CAPublicBytes(), m.CAAddress(), nonce, &other, now); err == nil {
			t.Fatal("wrong measurement accepted")
		}
	})
	t.Run("untrusted manufacturer", func(t *testing.T) {
		rogue, err := NewManufacturer("rogue")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyQuote(q, rogue.CAPublicBytes(), rogue.CAAddress(), nonce, &want, now); err == nil {
			t.Fatal("quote verified against wrong CA")
		}
	})
	t.Run("tampered measurement", func(t *testing.T) {
		bad := *q
		bad.Measurement = MeasurementOf("tampered")
		if _, err := VerifyQuote(&bad, m.CAPublicBytes(), m.CAAddress(), nonce, nil, now); err == nil {
			t.Fatal("tampered quote accepted")
		}
	})
	t.Run("expired certificate", func(t *testing.T) {
		if _, err := VerifyQuote(q, m.CAPublicBytes(), m.CAAddress(), nonce, &want, teeEpoch.Add(400*24*time.Hour)); err == nil {
			t.Fatal("expired certificate accepted")
		}
	})
	t.Run("no measurement expectation still verifies chain", func(t *testing.T) {
		if _, err := VerifyQuote(q, m.CAPublicBytes(), m.CAAddress(), nonce, nil, now); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeviceIdentities(t *testing.T) {
	_, d1 := newDevice(t)
	_, d2 := newDevice(t)
	if d1.Address() == d2.Address() {
		t.Fatal("two devices share an address")
	}
	if d1.Measurement() != MeasurementOf("trusted-app-v1") {
		t.Fatal("measurement mismatch")
	}
	if _, err := d1.CertificateBytes(); err != nil {
		t.Fatal(err)
	}
}
