package tee

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestAppConcurrentUseAndMonitoring hammers a trusted application with
// concurrent uses, evidence generation, and policy updates; the use count
// must be exact and no race may corrupt state (run with -race).
func TestAppConcurrentUseAndMonitoring(t *testing.T) {
	app, _ := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("payload"), webPolicy(0)); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const usesPerWorker = 50
	var wg sync.WaitGroup
	var evidenceErrs atomic.Int32
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range usesPerWorker {
				if _, err := app.Use(iri, policy.ActionUse); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 10 {
				if _, err := app.Evidence(iri, 1); err != nil {
					evidenceErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := app.UseCount(iri); got != workers*usesPerWorker {
		t.Fatalf("UseCount = %d, want %d", got, workers*usesPerWorker)
	}
	if evidenceErrs.Load() != 0 {
		t.Fatalf("evidence errors: %d", evidenceErrs.Load())
	}
}

// TestAppConcurrentPolicyUpdatesAndUses interleaves version bumps with
// uses; the final enforced version must be the highest applied.
func TestAppConcurrentPolicyUpdatesAndUses(t *testing.T) {
	app, _ := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("x"), webPolicy(0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const versions = 20
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(2); v <= versions; v++ {
			p := webPolicy(time.Duration(v) * time.Hour)
			p.Version = v
			if _, err := app.ApplyPolicyUpdate(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range 100 {
			_, err := app.Use(iri, policy.ActionUse)
			if err != nil && !errors.Is(err, ErrUseDenied) {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := app.PolicyVersion(iri); got != versions {
		t.Fatalf("final version = %d, want %d", got, versions)
	}
}

// TestAppDeletionDuringUseRace: deletion racing with uses never yields a
// partially usable copy — a use either succeeds fully or fails with
// ErrDeleted.
func TestAppDeletionDuringUseRace(t *testing.T) {
	for range 10 {
		app, _ := newApp(t, policy.PurposeWebAnalytics)
		iri := "https://alice.pod/web/browsing.csv"
		if err := app.StoreResource(iri, []byte("payload"), webPolicy(0)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for range 20 {
				data, err := app.Use(iri, policy.ActionUse)
				if err == nil && len(data) != len("payload") {
					t.Error("partial read")
					return
				}
				if err != nil && !errors.Is(err, ErrDeleted) {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			_ = app.Delete(iri)
		}()
		wg.Wait()
	}
}
