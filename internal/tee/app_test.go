package tee

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/policy"
	"repro/internal/simclock"
)

func newApp(t *testing.T, purpose policy.Purpose) (*App, *simclock.Sim) {
	t.Helper()
	_, dev := newDevice(t)
	clk := simclock.NewSim(teeEpoch)
	return NewApp(dev, purpose, clk), clk
}

func webPolicy(retention time.Duration) *policy.Policy {
	p := policy.New("https://alice.pod/web/browsing.csv", "https://alice.pod/profile#me", teeEpoch)
	p.MaxRetention = retention
	return p
}

func medicalPolicy() *policy.Policy {
	p := policy.New("https://bob.pod/medical/ds1.ttl", "https://bob.pod/profile#me", teeEpoch)
	p.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch}
	return p
}

func TestStoreAndUse(t *testing.T) {
	app, _ := newApp(t, policy.PurposeWebAnalytics)
	data := []byte("browsing,data,rows")
	if err := app.StoreResource("https://alice.pod/web/browsing.csv", data, webPolicy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	got, err := app.Use("https://alice.pod/web/browsing.csv", policy.ActionUse)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Use returned %q", got)
	}
	if app.UseCount("https://alice.pod/web/browsing.csv") != 1 {
		t.Fatal("use count not incremented")
	}
	if !app.Holds("https://alice.pod/web/browsing.csv") {
		t.Fatal("Holds = false")
	}
	if len(app.Holdings()) != 1 {
		t.Fatal("Holdings wrong")
	}
}

func TestStoreDuplicateRejected(t *testing.T) {
	app, _ := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("x"), webPolicy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := app.StoreResource(iri, []byte("y"), webPolicy(time.Hour)); err == nil {
		t.Fatal("duplicate store accepted")
	}
}

func TestUseDeniedByPurpose(t *testing.T) {
	app, _ := newApp(t, policy.PurposeMarketing) // wrong purpose
	iri := "https://bob.pod/medical/ds1.ttl"
	if err := app.StoreResource(iri, []byte("med"), medicalPolicy()); err != nil {
		t.Fatal(err)
	}
	_, err := app.Use(iri, policy.ActionUse)
	if !errors.Is(err, ErrUseDenied) {
		t.Fatalf("err = %v, want ErrUseDenied", err)
	}
	if app.UseCount(iri) != 0 {
		t.Fatal("denied use counted")
	}
	// The denied attempt is still logged for evidence.
	signed, err := app.Evidence(iri, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(signed.Evidence.Entries) != 1 || signed.Evidence.Entries[0].Allowed {
		t.Fatalf("entries = %+v", signed.Evidence.Entries)
	}
}

func TestAutomaticExpiryDeletion(t *testing.T) {
	app, clk := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("x"), webPolicy(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(23 * time.Hour)
	if !app.Holds(iri) {
		t.Fatal("copy deleted early")
	}
	clk.Advance(2 * time.Hour) // deadline passes; timer fires
	if app.Holds(iri) {
		t.Fatal("copy survived its deadline — the paper's core enforcement failed")
	}
	if _, err := app.Use(iri, policy.ActionUse); !errors.Is(err, ErrDeleted) {
		t.Fatalf("use after deletion: %v", err)
	}
	// Sealed bytes are gone too.
	if app.Device().Store().Has("data/" + iri) {
		t.Fatal("sealed data survived deletion")
	}
}

func TestUseAfterDeadlineWithoutTimerTriggersDeletion(t *testing.T) {
	// Even if the timer did not fire (e.g. clock jumped), a use attempt
	// after the deadline is denied and enforces deletion.
	app, clk := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	pol := webPolicy(time.Hour)
	if err := app.StoreResource(iri, []byte("x"), pol); err != nil {
		t.Fatal(err)
	}
	// Cancel the scheduled timer by replacing policy state directly is not
	// possible from outside; instead simulate a rogue toggle around the
	// advance so the timer no-ops, then re-enable enforcement.
	app.SetRogue(true)
	clk.Advance(2 * time.Hour)
	app.SetRogue(false)
	if !app.Holds(iri) {
		t.Fatal("setup failed")
	}
	_, err := app.Use(iri, policy.ActionUse)
	if !errors.Is(err, ErrUseDenied) {
		t.Fatalf("err = %v", err)
	}
	if app.Holds(iri) {
		t.Fatal("expired copy not deleted on access attempt")
	}
}

func TestManualDelete(t *testing.T) {
	app, _ := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("x"), webPolicy(0)); err != nil {
		t.Fatal(err)
	}
	if err := app.Delete(iri); err != nil {
		t.Fatal(err)
	}
	if err := app.Delete(iri); !errors.Is(err, ErrDeleted) {
		t.Fatalf("double delete: %v", err)
	}
	if err := app.Delete("https://unknown"); !errors.Is(err, ErrNoCopy) {
		t.Fatalf("unknown delete: %v", err)
	}
}

// TestPolicyUpdateAliceScenario reproduces the paper's running example:
// Alice shortens retention from one month to one week two days after
// Bob retrieved her data; Bob's copy is rescheduled and then erased when
// the new deadline lapses.
func TestPolicyUpdateAliceScenario(t *testing.T) {
	app, clk := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	month := 30 * 24 * time.Hour
	week := 7 * 24 * time.Hour

	if err := app.StoreResource(iri, []byte("x"), webPolicy(month)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * 24 * time.Hour)

	v2 := webPolicy(week).NextVersion(clk.Now())
	v2.MaxRetention = week
	obs, err := app.ApplyPolicyUpdate(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Kind != policy.ObligationReschedule {
		t.Fatalf("obligations = %+v", obs)
	}
	if app.PolicyVersion(iri) != 2 {
		t.Fatalf("policy version = %d", app.PolicyVersion(iri))
	}

	// Five more days: day 7 after retrieval, the new deadline lapses.
	clk.Advance(5*24*time.Hour + time.Minute)
	if app.Holds(iri) {
		t.Fatal("copy survived the shortened retention")
	}
}

// TestPolicyUpdateDeleteNow: the update arrives after the new deadline
// already lapsed, so the copy is erased immediately.
func TestPolicyUpdateDeleteNow(t *testing.T) {
	app, clk := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("x"), webPolicy(30*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * 24 * time.Hour)
	v2 := webPolicy(7 * 24 * time.Hour).NextVersion(clk.Now())
	v2.MaxRetention = 7 * 24 * time.Hour
	obs, err := app.ApplyPolicyUpdate(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Kind != policy.ObligationDeleteNow {
		t.Fatalf("obligations = %+v", obs)
	}
	if app.Holds(iri) {
		t.Fatal("copy survived delete-now obligation")
	}
}

// TestPolicyUpdateBobScenario: Bob narrows purposes to academic; an app
// with medical-research purpose has use revoked but an academic app
// continues unaffected.
func TestPolicyUpdateBobScenario(t *testing.T) {
	iri := "https://bob.pod/medical/ds1.ttl"

	t.Run("revoked purpose", func(t *testing.T) {
		app, clk := newApp(t, policy.PurposeMedicalResearch)
		if err := app.StoreResource(iri, []byte("med"), medicalPolicy()); err != nil {
			t.Fatal(err)
		}
		if _, err := app.Use(iri, policy.ActionUse); err != nil {
			t.Fatal(err)
		}
		v2 := medicalPolicy().NextVersion(clk.Now())
		v2.AllowedPurposes = []policy.Purpose{policy.PurposeAcademic}
		obs, err := app.ApplyPolicyUpdate(v2)
		if err != nil {
			t.Fatal(err)
		}
		if len(obs) != 1 || obs[0].Kind != policy.ObligationRevokeUse {
			t.Fatalf("obligations = %+v", obs)
		}
		if _, err := app.Use(iri, policy.ActionUse); !errors.Is(err, ErrUseRevoked) {
			t.Fatalf("use after revocation: %v", err)
		}
		// The copy itself may remain (no retention obligation).
		if !app.Holds(iri) {
			t.Fatal("revocation should not delete the copy")
		}
	})

	t.Run("still-allowed purpose", func(t *testing.T) {
		app, clk := newApp(t, policy.PurposeAcademic)
		pol := medicalPolicy()
		pol.AllowedPurposes = []policy.Purpose{policy.PurposeMedicalResearch, policy.PurposeAcademic}
		if err := app.StoreResource(iri, []byte("med"), pol); err != nil {
			t.Fatal(err)
		}
		v2 := pol.NextVersion(clk.Now())
		v2.AllowedPurposes = []policy.Purpose{policy.PurposeAcademic}
		obs, err := app.ApplyPolicyUpdate(v2)
		if err != nil {
			t.Fatal(err)
		}
		if len(obs) != 1 || obs[0].Kind != policy.ObligationNone {
			t.Fatalf("obligations = %+v", obs)
		}
		if _, err := app.Use(iri, policy.ActionUse); err != nil {
			t.Fatalf("allowed purpose blocked after update: %v", err)
		}
	})
}

func TestPolicyUpdateStaleVersionIgnored(t *testing.T) {
	app, clk := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	pol := webPolicy(time.Hour)
	pol.Version = 3
	if err := app.StoreResource(iri, []byte("x"), pol); err != nil {
		t.Fatal(err)
	}
	stale := webPolicy(time.Minute)
	stale.Version = 2
	obs, err := app.ApplyPolicyUpdate(stale)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Kind != policy.ObligationNone {
		t.Fatalf("obligations = %+v", obs)
	}
	if app.PolicyVersion(iri) != 3 {
		t.Fatal("stale update applied")
	}
	_ = clk
}

func TestPolicyUpdateForUnknownResource(t *testing.T) {
	app, _ := newApp(t, policy.PurposeWebAnalytics)
	if _, err := app.ApplyPolicyUpdate(webPolicy(time.Hour)); !errors.Is(err, ErrNoCopy) {
		t.Fatalf("err = %v", err)
	}
}

func TestRogueDeviceKeepsDataAndReportsTruthfully(t *testing.T) {
	app, clk := newApp(t, policy.PurposeWebAnalytics)
	app.SetRogue(true)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("x"), webPolicy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(3 * time.Hour)
	if !app.Holds(iri) {
		t.Fatal("rogue app deleted anyway")
	}
	signed, err := app.Evidence(iri, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !signed.Evidence.StillStored {
		t.Fatal("evidence should truthfully report the copy is still stored")
	}
}

func TestEvidenceSignedAndCapped(t *testing.T) {
	app, _ := newApp(t, policy.PurposeWebAnalytics)
	iri := "https://alice.pod/web/browsing.csv"
	if err := app.StoreResource(iri, []byte("x"), webPolicy(0)); err != nil {
		t.Fatal(err)
	}
	for range maxReportedEntries + 50 {
		if _, err := app.Use(iri, policy.ActionUse); err != nil {
			t.Fatal(err)
		}
	}
	signed, err := app.Evidence(iri, 7)
	if err != nil {
		t.Fatal(err)
	}
	ev := signed.Evidence
	if len(ev.Entries) != maxReportedEntries {
		t.Fatalf("entries = %d, want cap %d", len(ev.Entries), maxReportedEntries)
	}
	if ev.UseCount != uint64(maxReportedEntries+50) {
		t.Fatalf("UseCount = %d", ev.UseCount)
	}
	if ev.Round != 7 || ev.Device != app.Device().Address() {
		t.Fatalf("evidence = %+v", ev)
	}
	// Signature verifies under the device key.
	if !cryptoutil.Verify(app.Device().Key().Public(), ev.SigningBytes(), signed.Signature) {
		t.Fatal("evidence signature invalid")
	}
	if _, err := app.Evidence("https://unknown", 1); !errors.Is(err, ErrNoCopy) {
		t.Fatalf("unknown evidence: %v", err)
	}
}
