// Package tee simulates the Trusted Execution Environment of the
// architecture: a device with a measured trusted application, an
// attestation chain rooted in a manufacturer CA, sealed (AES-GCM
// encrypted) trusted data storage, local usage-policy enforcement with
// automatic obligation execution (expiry deletion, purpose gating, use
// revocation), per-use logging, and signed compliance evidence generation.
//
// What is simulated versus real: the isolation boundary (a hardware
// enclave) is replaced by Go encapsulation — the host can only reach the
// data through the policy-checked API — while the cryptography is real:
// data at rest is AES-GCM encrypted under a key derived from the device
// secret and the application measurement (mirroring SGX sealing), and
// evidence/attestation signatures are real ECDSA. The trust argument of
// the paper survives the substitution because every protocol-visible
// artifact (quotes, certificates, evidence signatures, sealed blobs) is
// produced and verified exactly as a hardware TEE deployment would.
package tee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
)

// SealedStore is the trusted data storage: a key-value store whose values
// are encrypted under a sealing key derived from (device secret,
// measurement). Reading back through a store with a different measurement
// or device secret fails, as with SGX sealing.
type SealedStore struct {
	aead cipher.AEAD

	mu      sync.Mutex
	entries map[string][]byte // ciphertext, nonce-prefixed
}

// Sealed-store errors.
var (
	ErrSealedNotFound = errors.New("tee: sealed entry not found")
	ErrUnsealFailed   = errors.New("tee: unseal failed (wrong device or measurement)")
)

// NewSealedStore derives the sealing key and returns an empty store.
func NewSealedStore(deviceSecret []byte, measurement [32]byte) (*SealedStore, error) {
	// KDF: sealingKey = SHA-256("seal" || deviceSecret || measurement).
	h := sha256.New()
	h.Write([]byte("seal|"))
	h.Write(deviceSecret)
	h.Write(measurement[:])
	key := h.Sum(nil)

	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("tee: sealing cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("tee: sealing AEAD: %w", err)
	}
	return &SealedStore{aead: aead, entries: make(map[string][]byte)}, nil
}

// Seal encrypts and stores value under name.
func (s *SealedStore) Seal(name string, value []byte) error {
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return fmt.Errorf("tee: nonce: %w", err)
	}
	// Bind the ciphertext to its name so sealed blobs cannot be swapped
	// between entries by the (untrusted) host.
	ct := s.aead.Seal(nil, nonce, value, []byte(name))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[name] = append(nonce, ct...)
	return nil
}

// Unseal decrypts the entry stored under name.
func (s *SealedStore) Unseal(name string) ([]byte, error) {
	s.mu.Lock()
	blob, ok := s.entries[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSealedNotFound, name)
	}
	return s.unsealBlob(name, blob)
}

func (s *SealedStore) unsealBlob(name string, blob []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	if len(blob) < ns {
		return nil, ErrUnsealFailed
	}
	pt, err := s.aead.Open(nil, blob[:ns], blob[ns:], []byte(name))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsealFailed, err)
	}
	return pt, nil
}

// Delete erases an entry, overwriting the ciphertext first.
func (s *SealedStore) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.entries[name]
	if !ok {
		return false
	}
	for i := range blob {
		blob[i] = 0
	}
	delete(s.entries, name)
	return true
}

// Has reports whether an entry exists.
func (s *SealedStore) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[name]
	return ok
}

// Len reports the number of sealed entries.
func (s *SealedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ExportBlob returns the raw ciphertext of an entry (what a host-level
// attacker can see). Used by tests to verify confidentiality at rest.
func (s *SealedStore) ExportBlob(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.entries[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), blob...), true
}

// InjectBlob overwrites an entry's raw ciphertext (what a host-level
// attacker can do). Used by tests to verify integrity protection.
func (s *SealedStore) InjectBlob(name string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[name] = append([]byte(nil), blob...)
}
