// Package oracle implements the four foundational blockchain oracle
// patterns the architecture uses to connect the on-chain DE App with the
// off-chain Pod Managers and TEEs: push-in, push-out, pull-in, and
// pull-out, each split into an on-chain and an off-chain component as in
// the paper (Section III-D).
//
// Mapping onto the substrate:
//
//   - The on-chain oracle components are the DE App's transaction methods
//     (inbox) and its event log (outbox), provided by packages contract
//     and chain.
//   - The off-chain components live here: PushIn relays signed
//     transactions into the chain; PushOut subscribes to events and
//     dispatches them to off-chain handlers; PullOut serves read-only
//     queries of on-chain state; PullIn watches on-chain data requests
//     (monitoring rounds), collects answers from off-chain sources (TEEs),
//     and pushes them back on-chain.
package oracle

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// TxBackend is the transaction/query access the push-in and pull-out
// oracles need; *chain.Node satisfies it, as does any relay that wraps
// one (e.g. an auto-sealing test backend).
type TxBackend interface {
	SubmitTx(tx *chain.Tx) (cryptoutil.Hash, error)
	WaitForReceipt(ctx context.Context, txHash cryptoutil.Hash) (*chain.Receipt, error)
	Query(contract cryptoutil.Address, method string, args []byte) ([]byte, error)
	NonceFor(addr cryptoutil.Address) uint64
}

// Node additionally exposes event subscriptions, needed by the push-out
// and pull-in oracles; *chain.Node satisfies it.
type Node interface {
	TxBackend
	SubscribeEvents(filter chain.EventFilter, buffer int) *chain.Subscription
}

var _ Node = (*chain.Node)(nil)

// Metrics counts oracle traffic, used by the experiment harness.
type Metrics struct {
	// In counts off-chain → on-chain messages (push-in + pull-in answers).
	In atomic.Uint64
	// Out counts on-chain → off-chain messages (push-out + pull-out reads).
	Out atomic.Uint64
}

// PushIn is the off-chain component of the push-in oracle: off-chain
// entities push data to the blockchain by relaying transactions. It
// implements distexchange.Backend, so a distexchange.Client can run on
// top of it transparently.
type PushIn struct {
	node    TxBackend
	metrics *Metrics
}

// NewPushIn builds a push-in oracle over a chain backend. metrics may be
// nil.
func NewPushIn(node TxBackend, metrics *Metrics) *PushIn {
	return &PushIn{node: node, metrics: metrics}
}

// SubmitTx relays a signed transaction on-chain.
func (o *PushIn) SubmitTx(tx *chain.Tx) (cryptoutil.Hash, error) {
	if o.metrics != nil {
		o.metrics.In.Add(1)
	}
	return o.node.SubmitTx(tx)
}

// WaitForReceipt waits for inclusion.
func (o *PushIn) WaitForReceipt(ctx context.Context, txHash cryptoutil.Hash) (*chain.Receipt, error) {
	return o.node.WaitForReceipt(ctx, txHash)
}

// Query delegates read-only queries (a push-in oracle is usually paired
// with pull-out reads by the same component).
func (o *PushIn) Query(contract cryptoutil.Address, method string, args []byte) ([]byte, error) {
	if o.metrics != nil {
		o.metrics.Out.Add(1)
	}
	return o.node.Query(contract, method, args)
}

// NonceFor returns the next nonce for an address.
func (o *PushIn) NonceFor(addr cryptoutil.Address) uint64 { return o.node.NonceFor(addr) }

// PullOut is the off-chain component of the pull-out oracle: off-chain
// entities pull data from the blockchain with read-only queries (used by
// TEEs for resource indexing, Fig. 2(3)).
type PullOut struct {
	node    TxBackend
	metrics *Metrics
}

// NewPullOut builds a pull-out oracle. metrics may be nil.
func NewPullOut(node TxBackend, metrics *Metrics) *PullOut {
	return &PullOut{node: node, metrics: metrics}
}

// Query reads on-chain state.
func (o *PullOut) Query(contract cryptoutil.Address, method string, args []byte) ([]byte, error) {
	if o.metrics != nil {
		o.metrics.Out.Add(1)
	}
	return o.node.Query(contract, method, args)
}

// Handler consumes a pushed-out event.
type Handler func(ev chain.Event)

// PushOut is the off-chain component of the push-out oracle: it subscribes
// to contract events and pushes them to off-chain handlers (used to notify
// TEEs of policy updates and pod managers of gathered evidence).
type PushOut struct {
	node    Node
	metrics *Metrics

	mu      sync.Mutex
	subs    []*chain.Subscription
	wg      sync.WaitGroup
	stopped bool
}

// NewPushOut builds a push-out oracle. metrics may be nil.
func NewPushOut(node Node, metrics *Metrics) *PushOut {
	return &PushOut{node: node, metrics: metrics}
}

// On registers a handler for events matching the filter. Handlers run on a
// dedicated goroutine per registration, in event order. Returns an
// unsubscribe function.
func (o *PushOut) On(filter chain.EventFilter, handler Handler) (cancel func()) {
	sub := o.node.SubscribeEvents(filter, 256)
	o.mu.Lock()
	if o.stopped {
		o.mu.Unlock()
		sub.Cancel()
		return func() {}
	}
	o.subs = append(o.subs, sub)
	o.wg.Add(1)
	o.mu.Unlock()

	go func() {
		defer o.wg.Done()
		for ev := range sub.C {
			if o.metrics != nil {
				o.metrics.Out.Add(1)
			}
			handler(ev)
		}
	}()
	return sub.Cancel
}

// Close cancels all subscriptions and waits for handlers to drain.
func (o *PushOut) Close() {
	o.mu.Lock()
	o.stopped = true
	subs := o.subs
	o.subs = nil
	o.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
	o.wg.Wait()
}
