package oracle

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

var t0 = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

// emitContract stores nothing; it just emits one event per call.
type emitContract struct{}

func (emitContract) Call(env *contract.Env, method string, args []byte) ([]byte, error) {
	if method != "emit" {
		return nil, contract.Revertf("unknown method")
	}
	var a struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(args, &a); err != nil {
		return nil, contract.Revertf("bad args")
	}
	if err := env.Emit("Ping", a.Key, []byte(`"pong"`)); err != nil {
		return nil, err
	}
	return nil, nil
}

func (emitContract) Read(env *contract.ReadEnv, method string, args []byte) ([]byte, error) {
	if method != "echo" {
		return nil, contract.Revertf("unknown query")
	}
	return args, nil
}

func newOracleNode(t *testing.T) (*chain.Node, *cryptoutil.KeyPair, cryptoutil.Address) {
	t.Helper()
	rt := contract.NewRuntime()
	addr := rt.Deploy("emitter", emitContract{})
	key := cryptoutil.MustGenerateKey()
	node, err := chain.NewNode(chain.Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    rt,
		Clock:       simclock.NewSim(t0),
		GenesisTime: t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return node, key, addr
}

func emitTx(t *testing.T, node *chain.Node, key *cryptoutil.KeyPair, addr cryptoutil.Address, k string) {
	t.Helper()
	tx, err := chain.NewTx(key, node.NonceFor(key.Address()), addr, "emit", map[string]string{"key": k}, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
}

func TestPushInRelaysAndCounts(t *testing.T) {
	node, key, addr := newOracleNode(t)
	var metrics Metrics
	pushIn := NewPushIn(node, &metrics)

	tx, err := chain.NewTx(key, pushIn.NonceFor(key.Address()), addr, "emit", map[string]string{"key": "a"}, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := pushIn.SubmitTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
	receipt, err := pushIn.WaitForReceipt(context.Background(), hash)
	if err != nil || !receipt.Succeeded() {
		t.Fatalf("receipt = %+v, %v", receipt, err)
	}
	if metrics.In.Load() != 1 {
		t.Fatalf("In = %d, want 1", metrics.In.Load())
	}
	// Paired query counts as out-bound.
	if _, err := pushIn.Query(addr, "echo", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if metrics.Out.Load() != 1 {
		t.Fatalf("Out = %d, want 1", metrics.Out.Load())
	}
}

func TestPullOutQuery(t *testing.T) {
	node, _, addr := newOracleNode(t)
	var metrics Metrics
	pullOut := NewPullOut(node, &metrics)
	out, err := pullOut.Query(addr, "echo", []byte(`{"v":"x"}`))
	if err != nil || string(out) != `{"v":"x"}` {
		t.Fatalf("query = %s, %v", out, err)
	}
	if metrics.Out.Load() != 1 {
		t.Fatalf("Out = %d", metrics.Out.Load())
	}
}

func TestPushOutDeliversFilteredEventsInOrder(t *testing.T) {
	node, key, addr := newOracleNode(t)
	var metrics Metrics
	pushOut := NewPushOut(node, &metrics)
	defer pushOut.Close()

	var mu sync.Mutex
	var got []string
	done := make(chan struct{}, 8)
	pushOut.On(chain.EventFilter{Contract: addr, Topic: "Ping"}, func(ev chain.Event) {
		mu.Lock()
		got = append(got, ev.Key)
		mu.Unlock()
		done <- struct{}{}
	})

	for _, k := range []string{"a", "b", "c"} {
		emitTx(t, node, key, addr, k)
	}
	for range 3 {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("handler not called")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("events = %v", got)
	}
	if metrics.Out.Load() != 3 {
		t.Fatalf("Out = %d, want 3", metrics.Out.Load())
	}
}

func TestPushOutUnsubscribe(t *testing.T) {
	node, key, addr := newOracleNode(t)
	pushOut := NewPushOut(node, nil)
	defer pushOut.Close()

	calls := make(chan string, 8)
	cancel := pushOut.On(chain.EventFilter{Topic: "Ping"}, func(ev chain.Event) {
		calls <- ev.Key
	})
	emitTx(t, node, key, addr, "first")
	select {
	case k := <-calls:
		if k != "first" {
			t.Fatalf("got %s", k)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before cancel")
	}
	cancel()
	emitTx(t, node, key, addr, "second")
	select {
	case k := <-calls:
		t.Fatalf("delivery after cancel: %s", k)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPushOutCloseThenOnIsNoop(t *testing.T) {
	node, key, addr := newOracleNode(t)
	pushOut := NewPushOut(node, nil)
	pushOut.Close()
	called := make(chan struct{}, 1)
	cancel := pushOut.On(chain.EventFilter{}, func(chain.Event) { called <- struct{}{} })
	cancel()
	emitTx(t, node, key, addr, "x")
	select {
	case <-called:
		t.Fatal("handler on closed oracle was called")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPushOutCloseWaitsForHandlers(t *testing.T) {
	node, key, addr := newOracleNode(t)
	pushOut := NewPushOut(node, nil)
	started := make(chan struct{})
	var finished sync.WaitGroup
	finished.Add(1)
	var once sync.Once
	pushOut.On(chain.EventFilter{Topic: "Ping"}, func(chain.Event) {
		once.Do(func() {
			close(started)
			time.Sleep(30 * time.Millisecond)
			finished.Done()
		})
	})
	emitTx(t, node, key, addr, "x")
	<-started
	closedAt := make(chan struct{})
	go func() {
		pushOut.Close()
		close(closedAt)
	}()
	select {
	case <-closedAt:
		// Close returned; the handler must have finished.
		finished.Wait()
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung")
	}
}
