package oracle

import (
	"context"
	"encoding/hex"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/contract"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// pullInEnv wires a chain with the DE App, one registered device, and a
// pull-in oracle with a scripted evidence source.
type pullInEnv struct {
	node   *chain.Node
	deAddr cryptoutil.Address
	owner  *distexchange.Client
	device *distexchange.Client
	devKey *cryptoutil.KeyPair
	pullIn *PullIn
	clk    *simclock.Sim
}

// scriptedSource returns pre-signed evidence for a device.
type scriptedSource struct {
	addr cryptoutil.Address
	fn   func(iri string, round uint64) (distexchange.SignedEvidence, error)
}

func (s scriptedSource) Address() cryptoutil.Address { return s.addr }
func (s scriptedSource) Evidence(iri string, round uint64) (distexchange.SignedEvidence, error) {
	return s.fn(iri, round)
}

// autoSealNode wraps a node to seal on submit (keeps the test linear).
type autoSealNode struct{ *chain.Node }

func (n autoSealNode) SubmitTx(tx *chain.Tx) (cryptoutil.Hash, error) {
	h, err := n.Node.SubmitTx(tx)
	if err != nil {
		return h, err
	}
	_, err = n.Node.Seal()
	return h, err
}

func newPullInEnv(t *testing.T) *pullInEnv {
	t.Helper()
	ca, err := cryptoutil.NewAuthority("tee-ca")
	if err != nil {
		t.Fatal(err)
	}
	rt := contract.NewRuntime()
	deAddr := rt.Deploy(distexchange.ContractName, distexchange.New(distexchange.Config{
		ManufacturerCAKey: ca.PublicBytes(),
		ManufacturerCA:    ca.Address(),
	}))
	authority := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(t0)
	node, err := chain.NewNode(chain.Config{
		Key:         authority,
		Authorities: []cryptoutil.Address{authority.Address()},
		Executor:    rt,
		Clock:       clk,
		GenesisTime: t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend := autoSealNode{node}
	ownerKey := cryptoutil.MustGenerateKey()
	devKey := cryptoutil.MustGenerateKey()
	owner := distexchange.NewClient(backend, ownerKey, deAddr)
	device := distexchange.NewClient(backend, devKey, deAddr)
	ctx := context.Background()

	// Register pod + resource + device + grant + retrieval.
	if _, err := owner.RegisterPod(ctx, distexchange.RegisterPodArgs{
		OwnerWebID: "https://o/profile#me", Location: "https://o/",
	}); err != nil {
		t.Fatal(err)
	}
	pol := policy.New("https://o/r1", "https://o/profile#me", t0)
	if _, err := owner.RegisterResource(ctx, distexchange.RegisterResourceArgs{
		ResourceIRI: "https://o/r1", PodWebID: "https://o/profile#me",
		Location: "https://o/r1", Policy: pol,
	}); err != nil {
		t.Fatal(err)
	}
	var m cryptoutil.Hash
	copy(m[:], []byte("measurement-abcdefgh-ijklmnop-qr"))
	cert, err := ca.Issue(devKey, map[string]string{"measurement": hex.EncodeToString(m[:])}, t0, t0.Add(time.Hour*24*365))
	if err != nil {
		t.Fatal(err)
	}
	certRaw, _ := cert.Encode()
	if _, err := device.RegisterDevice(ctx, certRaw); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.RecordGrant(ctx, distexchange.RecordGrantArgs{
		ResourceIRI: "https://o/r1", Consumer: devKey.Address(),
		Device: devKey.Address(), Purpose: policy.PurposeAny,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := device.ConfirmRetrieval(ctx, "https://o/r1"); err != nil {
		t.Fatal(err)
	}

	relay := distexchange.NewClient(backend, cryptoutil.MustGenerateKey(), deAddr)
	pullIn := NewPullIn(node, relay, nil)
	return &pullInEnv{
		node: node, deAddr: deAddr, owner: owner, device: device,
		devKey: devKey, pullIn: pullIn, clk: clk,
	}
}

func (e *pullInEnv) signedEvidence(t *testing.T, iri string, round uint64) distexchange.SignedEvidence {
	t.Helper()
	ev := distexchange.Evidence{
		ResourceIRI: iri, Device: e.devKey.Address(), Round: round,
		PolicyVersion: 1, StillStored: true,
		RetrievedAt: e.clk.Now(), GeneratedAt: e.clk.Now(),
	}
	sig, err := e.devKey.Sign(ev.SigningBytes())
	if err != nil {
		t.Fatal(err)
	}
	return distexchange.SignedEvidence{Evidence: ev, Signature: sig}
}

func TestPullInAnswersMonitoringRound(t *testing.T) {
	e := newPullInEnv(t)
	e.pullIn.RegisterSource(scriptedSource{
		addr: e.devKey.Address(),
		fn: func(iri string, round uint64) (distexchange.SignedEvidence, error) {
			return e.signedEvidence(t, iri, round), nil
		},
	})
	e.pullIn.Start(e.deAddr)
	defer e.pullIn.Close()

	round, err := e.owner.RequestMonitoring(context.Background(), "https://o/r1")
	if err != nil {
		t.Fatal(err)
	}
	// The oracle reacts asynchronously to the event; poll for closure.
	deadline := time.Now().Add(3 * time.Second)
	for {
		state, err := e.owner.GetMonitoringRound("https://o/r1", round.Round)
		if err != nil {
			t.Fatal(err)
		}
		if state.Closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("round never closed")
		}
		time.Sleep(time.Millisecond)
	}
	evidence, err := e.owner.GetEvidence("https://o/r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 1 || evidence[0].Round != round.Round {
		t.Fatalf("evidence = %+v", evidence)
	}
}

func TestPullInSkipsFailingSource(t *testing.T) {
	e := newPullInEnv(t)
	e.pullIn.RegisterSource(scriptedSource{
		addr: e.devKey.Address(),
		fn: func(string, uint64) (distexchange.SignedEvidence, error) {
			return distexchange.SignedEvidence{}, context.DeadlineExceeded
		},
	})
	e.pullIn.Start(e.deAddr)
	defer e.pullIn.Close()

	round, err := e.owner.RequestMonitoring(context.Background(), "https://o/r1")
	if err != nil {
		t.Fatal(err)
	}
	e.pullIn.Wait()
	// Source failed; the round stays open until the owner closes it.
	state, err := e.owner.GetMonitoringRound("https://o/r1", round.Round)
	if err != nil {
		t.Fatal(err)
	}
	if state.Closed {
		t.Fatal("round closed despite source failure")
	}
	if _, err := e.owner.ReportUnresponsive(context.Background(), "https://o/r1", round.Round); err != nil {
		t.Fatal(err)
	}
	viols, err := e.owner.GetViolations("https://o/r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 1 || viols[0].Kind != distexchange.ViolationUnresponsive {
		t.Fatalf("violations = %+v", viols)
	}
}

func TestPullInUnregisterSource(t *testing.T) {
	e := newPullInEnv(t)
	src := scriptedSource{
		addr: e.devKey.Address(),
		fn: func(iri string, round uint64) (distexchange.SignedEvidence, error) {
			return e.signedEvidence(t, iri, round), nil
		},
	}
	e.pullIn.RegisterSource(src)
	e.pullIn.UnregisterSource(src.Address())
	e.pullIn.Start(e.deAddr)
	defer e.pullIn.Close()

	round, err := e.owner.RequestMonitoring(context.Background(), "https://o/r1")
	if err != nil {
		t.Fatal(err)
	}
	e.pullIn.Wait()
	state, err := e.owner.GetMonitoringRound("https://o/r1", round.Round)
	if err != nil {
		t.Fatal(err)
	}
	if state.Closed {
		t.Fatal("unregistered source still answered")
	}
}
