package oracle

import (
	"context"
	"encoding/json"
	"log"
	"sync"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
)

// EvidenceSource is an off-chain data source the pull-in oracle can query:
// in this architecture, a TEE trusted application reporting compliance
// evidence. tee.App satisfies it via a small adapter in package core.
type EvidenceSource interface {
	// Address returns the device identity the DE App knows the source by.
	Address() cryptoutil.Address
	// Evidence produces signed evidence for a resource and round.
	Evidence(resourceIRI string, round uint64) (distexchange.SignedEvidence, error)
}

// PullIn is the off-chain component of the pull-in oracle: the blockchain
// requests data from the off-chain world (the DE App emits a
// MonitoringRequested event), the oracle collects the answers from its
// registered sources, and pushes them back on-chain as evidence
// submissions (Fig. 2(6)).
type PullIn struct {
	client  *distexchange.Client
	pushOut *PushOut
	metrics *Metrics

	// Fanout collects evidence from targets concurrently when true
	// (sequential otherwise) — the subject of the oracle-fanout ablation.
	Fanout bool

	mu      sync.Mutex
	sources map[cryptoutil.Address]EvidenceSource
	cancel  func()

	// inFlight lets tests and the harness wait for round completion.
	inFlight sync.WaitGroup
}

// NewPullIn builds a pull-in oracle that answers monitoring requests for
// the DE App behind client, watching events via node. metrics may be nil.
func NewPullIn(node Node, client *distexchange.Client, metrics *Metrics) *PullIn {
	return &PullIn{
		client:  client,
		pushOut: NewPushOut(node, nil),
		metrics: metrics,
		sources: make(map[cryptoutil.Address]EvidenceSource),
	}
}

// RegisterSource adds an off-chain source (consumer device).
func (o *PullIn) RegisterSource(src EvidenceSource) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sources[src.Address()] = src
}

// UnregisterSource removes a source (e.g. an offline device).
func (o *PullIn) UnregisterSource(addr cryptoutil.Address) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.sources, addr)
}

// Start begins watching MonitoringRequested events from the DE App at
// deAddr. Stop with Close.
func (o *PullIn) Start(deAddr cryptoutil.Address) {
	filter := chain.EventFilter{Contract: deAddr, Topic: distexchange.TopicMonitoringRequested}
	cancel := o.pushOut.On(filter, func(ev chain.Event) {
		var round distexchange.MonitoringRound
		if err := json.Unmarshal(ev.Data, &round); err != nil {
			log.Printf("oracle: pull-in: bad monitoring event: %v", err)
			return
		}
		o.handleRound(round)
	})
	o.mu.Lock()
	o.cancel = cancel
	o.mu.Unlock()
}

// handleRound collects evidence from each target and submits it.
func (o *PullIn) handleRound(round distexchange.MonitoringRound) {
	o.inFlight.Add(1)
	defer o.inFlight.Done()

	collect := func(target cryptoutil.Address) {
		o.mu.Lock()
		src, ok := o.sources[target]
		o.mu.Unlock()
		if !ok {
			// Unknown/offline device: it will be flagged unresponsive when
			// the owner closes the round.
			return
		}
		signed, err := src.Evidence(round.ResourceIRI, round.Round)
		if err != nil {
			log.Printf("oracle: pull-in: source %s: %v", target.Short(), err)
			return
		}
		if o.metrics != nil {
			o.metrics.In.Add(1)
		}
		if _, err := o.client.SubmitEvidence(context.Background(), signed); err != nil {
			log.Printf("oracle: pull-in: submit for %s: %v", target.Short(), err)
		}
	}

	if o.Fanout {
		var wg sync.WaitGroup
		for _, target := range round.Targets {
			wg.Add(1)
			go func() {
				defer wg.Done()
				collect(target)
			}()
		}
		wg.Wait()
		return
	}
	for _, target := range round.Targets {
		collect(target)
	}
}

// Wait blocks until all in-flight rounds have been answered.
func (o *PullIn) Wait() { o.inFlight.Wait() }

// Close stops watching and waits for in-flight work.
func (o *PullIn) Close() {
	o.mu.Lock()
	cancel := o.cancel
	o.cancel = nil
	o.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	o.pushOut.Close()
	o.inFlight.Wait()
}
