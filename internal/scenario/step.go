package scenario

import (
	"fmt"
	"math/rand"
)

// Op is one kind of scenario step.
type Op uint8

// The step vocabulary. Workload ops exercise the paper's six processes;
// fault ops inject the failure modes the architecture claims to survive.
const (
	// OpAddOwner provisions a data owner (pod + manager + market account).
	OpAddOwner Op = iota
	// OpAddConsumer provisions a consumer (WebID + TEE device + market
	// subscription + on-chain device registration).
	OpAddConsumer
	// OpPublish uploads a resource and publishes it with a usage policy.
	OpPublish
	// OpGrant authorizes a consumer for a resource (ACL + on-chain grant).
	OpGrant
	// OpAccess runs the Fig. 2(4) access end to end (fee, fetch, TEE
	// store, retrieval confirmation). Ungranted consumers attempt too —
	// the engine demands they fail.
	OpAccess
	// OpUse performs a policy-checked use of a held copy inside the TEE.
	OpUse
	// OpModifyPolicy publishes a new policy version (changed retention)
	// and waits for push-out propagation to every copy holder.
	OpModifyPolicy
	// OpUnpublish withdraws a resource from the market mid-flight.
	OpUnpublish
	// OpMonitor runs a monitoring round and collects evidence/violations.
	OpMonitor
	// OpSettle distributes accumulated market revenue to owners.
	OpSettle
	// OpReplayRequest captures a signed HTTP request and replays it
	// verbatim; the replay must be rejected.
	OpReplayRequest
	// OpDropRequest injects a network fault that loses an HTTP response
	// mid-flight; the retry must succeed.
	OpDropRequest
	// OpDuplicateTx resubmits an already-committed transaction; it must
	// not execute twice.
	OpDuplicateTx
	// OpReorderTxs submits a same-sender batch out of nonce order; the
	// batch must be rejected atomically, then succeed in order.
	OpReorderTxs
	// OpFailNode marks a validator as failed (validator 0 stays live: the
	// oracles observe it, mirroring the E12 experiment shape).
	OpFailNode
	// OpRecoverNode recovers a failed validator and syncs its ledger.
	OpRecoverNode
	// OpClockSkip advances simulated time by hours-to-days, crossing
	// policy-retention windows so deletion obligations come due.
	OpClockSkip
	// OpSealEmpty drives one consensus round with an empty mempool.
	OpSealEmpty
	// OpCrashRestart hard-kills a validator (its in-memory node is
	// dropped, its store left unflushed), optionally tears its WAL
	// mid-record (odd Arg), and restarts it from disk. The restarted
	// node must rejoin and converge — the recovery-equivalence invariant
	// checks it after every subsequent step.
	OpCrashRestart
	// OpEquivocate makes the next block's proposer seal twice: the honest
	// block commits cluster-wide, then a validly signed sibling at the
	// same height is gossiped to a subset of peers (selected by B as a
	// bitmask). Every target must reject it with equivocation evidence —
	// the no-equivocation-accepted invariant holds them to it.
	OpEquivocate
	// OpInvalidBlock forges a block invalid in one dimension — bad state
	// root, bad proposer signature, or an over-gas transaction (Arg%3) —
	// and injects it into live validators via the byzantine delivery
	// hook. Each must reject with the dimension's distinct error.
	OpInvalidBlock
	// OpPartition splits the validators into a quorum cell (always
	// holding validator 0 and the pod hosts) and an isolated minority;
	// cross-cell traffic is buffered then dropped. Only the quorum seals.
	OpPartition
	// OpHeal reconnects a partitioned cluster and re-syncs the minority;
	// the partition-convergence invariant demands full head agreement
	// with no committed-block rollback.
	OpHeal
	// OpCredentialReplay plays a malicious pod client splicing captured
	// credentials: a verbatim replay of a signed+paid request (must 401),
	// a stolen market certificate presented by another consumer (must
	// 403), and a certificate presented for a different resource (403).
	OpCredentialReplay
	// OpNonceFlood burns many fresh nonces from a hostile agent; per-agent
	// eviction means other agents' replay protection must be unaffected
	// and the flooder itself is never starved.
	OpNonceFlood
	// OpTxFlood sprays cheap transactions at 10x the mempool capacity
	// from a squad of hostile senders: the pool must stay within its
	// bound (quota and price-floor rejections, never unbounded growth)
	// and an adequately-priced settlement submitted mid-flood must still
	// commit within the starvation-freedom invariant's block bound.
	OpTxFlood

	// numOps counts the fuzz-decodable ops; everything below is excluded
	// from DecodePlan so fuzzing can only find genuine violations.
	numOps

	// OpSabotage is a test-only fault that corrupts a published resource
	// in place, violating published-immutability on purpose. It is only
	// generated when Config.Sabotage is set and exists to prove the
	// engine detects and shrinks genuine invariant violations.
	OpSabotage
)

func (o Op) String() string {
	switch o {
	case OpAddOwner:
		return "add-owner"
	case OpAddConsumer:
		return "add-consumer"
	case OpPublish:
		return "publish"
	case OpGrant:
		return "grant"
	case OpAccess:
		return "access"
	case OpUse:
		return "use"
	case OpModifyPolicy:
		return "modify-policy"
	case OpUnpublish:
		return "unpublish"
	case OpMonitor:
		return "monitor"
	case OpSettle:
		return "settle"
	case OpReplayRequest:
		return "replay-request"
	case OpDropRequest:
		return "drop-request"
	case OpDuplicateTx:
		return "duplicate-tx"
	case OpReorderTxs:
		return "reorder-txs"
	case OpFailNode:
		return "fail-node"
	case OpRecoverNode:
		return "recover-node"
	case OpClockSkip:
		return "clock-skip"
	case OpSealEmpty:
		return "seal-empty"
	case OpCrashRestart:
		return "crash-restart"
	case OpEquivocate:
		return "equivocate"
	case OpInvalidBlock:
		return "invalid-block"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpCredentialReplay:
		return "credential-replay"
	case OpNonceFlood:
		return "nonce-flood"
	case OpTxFlood:
		return "tx-flood"
	case OpSabotage:
		return "sabotage"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Step is one scenario action. Selectors are resolved modulo the live
// population at execution time, so any subsequence of a plan is itself a
// valid plan — the property step-level shrinking relies on.
type Step struct {
	// Op is the action kind.
	Op Op
	// A selects an owner, B a consumer, C a resource (each modulo the
	// respective population size when the step runs).
	A, B, C int
	// Arg is an op-specific magnitude (retention days, skip hours, ...).
	Arg int
}

func (s Step) String() string {
	return fmt.Sprintf("%-14s a=%d b=%d c=%d arg=%d", s.Op, s.A, s.B, s.C, s.Arg)
}

// opWeights is the sampling distribution for plan generation. The mix
// keeps populations growing early and leans on the access/use hot path
// while sprinkling faults throughout.
var opWeights = []struct {
	op Op
	w  int
}{
	{OpAddOwner, 4}, {OpAddConsumer, 6}, {OpPublish, 9}, {OpGrant, 12},
	{OpAccess, 14}, {OpUse, 14}, {OpModifyPolicy, 8}, {OpUnpublish, 2},
	{OpMonitor, 5}, {OpSettle, 2}, {OpReplayRequest, 3}, {OpDropRequest, 2},
	{OpDuplicateTx, 3}, {OpReorderTxs, 2}, {OpFailNode, 2}, {OpRecoverNode, 3},
	{OpClockSkip, 5}, {OpSealEmpty, 2}, {OpCrashRestart, 3},
	{OpEquivocate, 3}, {OpInvalidBlock, 3}, {OpPartition, 3}, {OpHeal, 4},
	{OpCredentialReplay, 3}, {OpNonceFlood, 2}, {OpTxFlood, 2},
}

// GeneratePlan derives a step plan deterministically from the seed. The
// first four steps always provision an owner, a consumer, a resource,
// and a grant so that short plans still exercise the full stack. With
// sabotage enabled, OpSabotage joins the distribution and the last step
// is forced to OpSabotage if none was drawn — a sabotaging plan is
// guaranteed to violate published-immutability.
func GeneratePlan(seed int64, steps int, sabotage bool) []Step {
	rng := rand.New(rand.NewSource(seed))
	weights := opWeights
	if sabotage {
		weights = append(append([]struct {
			op Op
			w  int
		}(nil), opWeights...), struct {
			op Op
			w  int
		}{OpSabotage, 4})
	}
	total := 0
	for _, ow := range weights {
		total += ow.w
	}

	plan := make([]Step, 0, steps)
	sabotaged := false
	for i := range steps {
		var op Op
		switch i {
		case 0:
			op = OpAddOwner
		case 1:
			op = OpAddConsumer
		case 2:
			op = OpPublish
		case 3:
			op = OpGrant
		default:
			pick := rng.Intn(total)
			for _, ow := range weights {
				if pick < ow.w {
					op = ow.op
					break
				}
				pick -= ow.w
			}
		}
		if op == OpSabotage {
			sabotaged = true
		}
		plan = append(plan, Step{
			Op:  op,
			A:   rng.Intn(1 << 15),
			B:   rng.Intn(1 << 15),
			C:   rng.Intn(1 << 15),
			Arg: rng.Intn(1 << 15),
		})
	}
	if sabotage && !sabotaged && len(plan) > 0 {
		plan[len(plan)-1].Op = OpSabotage
	}
	return plan
}

// DecodePlan turns raw bytes (fuzz input) into a step plan: each
// 5-byte group becomes one step. OpSabotage is never decoded — fuzzing
// must only be able to find genuine violations.
func DecodePlan(data []byte, maxSteps int) []Step {
	var plan []Step
	for i := 0; i+5 <= len(data) && len(plan) < maxSteps; i += 5 {
		plan = append(plan, Step{
			Op:  Op(data[i] % uint8(numOps)),
			A:   int(data[i+1]),
			B:   int(data[i+2]),
			C:   int(data[i+3]),
			Arg: int(data[i+4]),
		})
	}
	return plan
}
