package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestScenarioDifferentialExecWorkers runs the same honest plans under
// the serial legacy executor (ExecWorkers=1) and the parallel scheduler
// (ExecWorkers=4) and requires bit-identical traces: same per-step
// outcomes, same invariant-check count, no failure either way. This is
// the end-to-end half of the parallel scheduler's determinism proof —
// the chain-level differential tests compare receipts and roots, this
// one compares everything the scenario model can observe through the
// full deployment (contracts, oracles, monitoring, remuneration).
func TestScenarioDifferentialExecWorkers(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		serial := New(Config{Seed: seed, Steps: 25, ExecWorkers: 1}).Run()
		if serial.Failure != nil {
			t.Fatalf("seed %d serial run failed: %s\ntrace:\n%s", seed, serial.Failure, serial.Trace())
		}
		parallel := New(Config{Seed: seed, Steps: 25, ExecWorkers: 4}).Run()
		if parallel.Failure != nil {
			t.Fatalf("seed %d parallel run failed: %s\ntrace:\n%s", seed, parallel.Failure, parallel.Trace())
		}
		if st, pt := serial.Trace(), parallel.Trace(); st != pt {
			t.Fatalf("seed %d: ExecWorkers=1 and ExecWorkers=4 traces diverge\nserial:\n%s\nparallel:\n%s", seed, st, pt)
		}
	}
}

// TestScenarioDifferentialExecWorkersAdversarial replays every committed
// repro plan — the adversarial repertoire: equivocation, invalid blocks,
// credential replay, nonce floods, partitions — under both executor
// settings and requires identical traces. Fault handling must not
// depend on how blocks were executed.
func TestScenarioDifferentialExecWorkersAdversarial(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("repros", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed repro files under repros/")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cfg, plan, err := DecodeRepro(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			cfg.ExecWorkers = 1
			serial := New(cfg).RunPlan(plan)
			cfg.ExecWorkers = 4
			parallel := New(cfg).RunPlan(plan)
			if serial.Failure != nil || parallel.Failure != nil {
				t.Fatalf("repro regressed: serial=%v parallel=%v", serial.Failure, parallel.Failure)
			}
			if st, pt := serial.Trace(), parallel.Trace(); st != pt {
				t.Fatalf("ExecWorkers=1 and ExecWorkers=4 traces diverge\nserial:\n%s\nparallel:\n%s", st, pt)
			}
		})
	}
}
