package scenario

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the repro format: a failing soak run is written to disk
// as a small text file that a human can read, edit, and commit, and
// that TestScenarioRepros replays forever after. The format is
// line-oriented on purpose — repro files live in version control and
// get diffed.
//
//	# free-form comment lines
//	validators=3
//	equivocation-guard=off        (only when the guard was sabotaged)
//	step equivocate 0 5 0 0
//	step heal 0 0 0 0
//
// Step operands are the raw plan selectors (a b c arg); they resolve
// modulo the live populations at replay time exactly as in a generated
// plan.

// opByName resolves the step keyword of a repro line. Built from the
// fuzz-decodable op range, so OpSabotage can never enter via a repro
// file — same safety property as DecodePlan.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

// EncodeRepro renders a run's plan (and the config facets that shape
// replay behaviour) in the repro format. The failure, trace command,
// and seed ride along as comments: provenance for the human, inert for
// the decoder.
func EncodeRepro(cfg Config, res *RunResult) []byte {
	cfg = cfg.withDefaults()
	var b bytes.Buffer
	fmt.Fprintf(&b, "# scenario repro (seed=%d shrink-runs=%d)\n", res.Seed, res.ShrinkRuns)
	if res.Failure != nil {
		fmt.Fprintf(&b, "# failure: %s %q at step %d\n", res.Failure.Kind, res.Failure.Name, res.Failure.Step)
	} else {
		fmt.Fprintf(&b, "# regression plan: replay must PASS\n")
	}
	fmt.Fprintf(&b, "validators=%d\n", cfg.Validators)
	if cfg.DisableEquivocationGuard {
		fmt.Fprintf(&b, "equivocation-guard=off\n")
	}
	for _, st := range res.Plan {
		fmt.Fprintf(&b, "step %s %d %d %d %d\n", st.Op, st.A, st.B, st.C, st.Arg)
	}
	return b.Bytes()
}

// DecodeRepro parses a repro file back into a replayable (config, plan)
// pair. Unknown keys and malformed lines are errors, not warnings: a
// repro that silently replays something other than what it says is
// worse than none.
func DecodeRepro(data []byte) (Config, []Step, error) {
	var cfg Config
	var plan []Step
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if key, val, ok := strings.Cut(line, "="); ok && !strings.HasPrefix(line, "step ") {
			switch key {
			case "validators":
				n, err := strconv.Atoi(val)
				if err != nil || n < 2 {
					return cfg, nil, fmt.Errorf("repro line %d: bad validators %q", lineNo, val)
				}
				cfg.Validators = n
			case "equivocation-guard":
				if val != "off" {
					return cfg, nil, fmt.Errorf("repro line %d: equivocation-guard must be \"off\", got %q", lineNo, val)
				}
				cfg.DisableEquivocationGuard = true
			default:
				return cfg, nil, fmt.Errorf("repro line %d: unknown key %q", lineNo, key)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 6 || fields[0] != "step" {
			return cfg, nil, fmt.Errorf("repro line %d: want \"step <op> <a> <b> <c> <arg>\", got %q", lineNo, line)
		}
		op, ok := opByName[fields[1]]
		if !ok {
			return cfg, nil, fmt.Errorf("repro line %d: unknown op %q", lineNo, fields[1])
		}
		st := Step{Op: op}
		for i, dst := range []*int{&st.A, &st.B, &st.C, &st.Arg} {
			v, err := strconv.Atoi(fields[2+i])
			if err != nil || v < 0 {
				return cfg, nil, fmt.Errorf("repro line %d: bad operand %q", lineNo, fields[2+i])
			}
			*dst = v
		}
		plan = append(plan, st)
	}
	if err := sc.Err(); err != nil {
		return cfg, nil, err
	}
	if len(plan) == 0 {
		return cfg, nil, fmt.Errorf("repro contains no steps")
	}
	cfg.Steps = len(plan)
	return cfg, plan, nil
}

// WriteRepro persists a run as <dir>/<name>.repro (creating dir) and
// returns the path. The soak harness calls it for every shrunk failure
// so the artifact survives the test process. When the run carries a
// metrics snapshot, it lands beside the repro as <name>.metrics.txt —
// the system's instrument readings at the failure instant, for the
// human triaging the artifact (the repro file itself stays replayable
// and diffable, so diagnostics never go in it).
func WriteRepro(dir, name string, cfg Config, res *RunResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".repro")
	if err := os.WriteFile(path, EncodeRepro(cfg, res), 0o644); err != nil {
		return "", err
	}
	if res.MetricsDump != "" {
		metricsPath := filepath.Join(dir, name+".metrics.txt")
		if err := os.WriteFile(metricsPath, []byte(res.MetricsDump), 0o644); err != nil {
			return "", err
		}
	}
	return path, nil
}

// ReplayRepro decodes and runs a repro file, preserving any config
// facets the file pins (validator count, sabotaged guard).
func ReplayRepro(data []byte) (*RunResult, error) {
	cfg, plan, err := DecodeRepro(data)
	if err != nil {
		return nil, err
	}
	return New(cfg).RunPlan(plan), nil
}
