package scenario

import (
	"errors"
	"testing"
)

// TestPairPartners pins the shrinker's structural pairing: each heal
// closes the nearest open partition, each recover the nearest open node
// failure, and unmatched ops stay unpaired.
func TestPairPartners(t *testing.T) {
	cases := []struct {
		name string
		plan []Step
		want []int
	}{
		{
			name: "partition-heal",
			plan: []Step{{Op: OpPartition}, {Op: OpSealEmpty}, {Op: OpHeal}},
			want: []int{2, -1, 0},
		},
		{
			name: "fail-recover",
			plan: []Step{{Op: OpFailNode}, {Op: OpAccess}, {Op: OpRecoverNode}},
			want: []int{2, -1, 0},
		},
		{
			name: "nested-partitions-close-innermost-first",
			plan: []Step{{Op: OpPartition}, {Op: OpPartition}, {Op: OpHeal}, {Op: OpHeal}},
			want: []int{3, 2, 1, 0},
		},
		{
			name: "nested-failures-close-innermost-first",
			plan: []Step{{Op: OpFailNode}, {Op: OpFailNode}, {Op: OpRecoverNode}, {Op: OpRecoverNode}},
			want: []int{3, 2, 1, 0},
		},
		{
			name: "unmatched-ends-stay-unpaired",
			plan: []Step{{Op: OpHeal}, {Op: OpPartition}, {Op: OpRecoverNode}, {Op: OpFailNode}},
			want: []int{-1, -1, -1, -1},
		},
		{
			name: "kinds-do-not-cross-pair",
			plan: []Step{{Op: OpPartition}, {Op: OpFailNode}, {Op: OpRecoverNode}, {Op: OpHeal}},
			want: []int{3, 2, 1, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pairPartners(tc.plan)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("partner[%d] = %d, want %d (full: %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestRemoveChunkKeepsPairsTogether pins the candidate builder: dropping
// a chunk drags along the out-of-range partner of every dropped step, so
// a shrink candidate never contains a heal without its partition or a
// recover without its failure (and vice versa).
func TestRemoveChunkKeepsPairsTogether(t *testing.T) {
	balanced := func(t *testing.T, plan []Step) {
		t.Helper()
		openPartitions, openFails := 0, 0
		for _, st := range plan {
			switch st.Op {
			case OpPartition:
				openPartitions++
			case OpHeal:
				if openPartitions == 0 {
					t.Fatalf("candidate has a heal with no open partition: %v", plan)
				}
				openPartitions--
			case OpFailNode:
				openFails++
			case OpRecoverNode:
				if openFails == 0 {
					t.Fatalf("candidate has a recover with no open failure: %v", plan)
				}
				openFails--
			}
		}
	}

	t.Run("partition-heal", func(t *testing.T) {
		plan := []Step{
			{Op: OpAddOwner}, {Op: OpPartition}, {Op: OpSealEmpty},
			{Op: OpHeal}, {Op: OpAccess},
		}
		partners := pairPartners(plan)
		// Dropping the partition must drop its heal too.
		cand := removeChunk(plan, partners, 1, 1)
		balanced(t, cand)
		if len(cand) != 3 {
			t.Fatalf("dropping the partition kept %d steps, want 3 (heal must leave with it): %v", len(cand), cand)
		}
		// Dropping the heal must drop its partition.
		cand = removeChunk(plan, partners, 3, 1)
		balanced(t, cand)
		if len(cand) != 3 {
			t.Fatalf("dropping the heal kept %d steps, want 3 (partition must leave with it): %v", len(cand), cand)
		}
		// Dropping an unpaired step in between leaves the pair intact.
		cand = removeChunk(plan, partners, 2, 1)
		balanced(t, cand)
		if len(cand) != 4 {
			t.Fatalf("dropping a bystander removed %d steps: %v", len(plan)-len(cand), cand)
		}
		// Dropping a chunk that covers both endpoints removes exactly them.
		cand = removeChunk(plan, partners, 1, 3)
		balanced(t, cand)
		if len(cand) != 2 {
			t.Fatalf("dropping the whole pair span kept %d steps, want 2: %v", len(cand), cand)
		}
	})

	t.Run("fail-recover", func(t *testing.T) {
		plan := []Step{
			{Op: OpFailNode}, {Op: OpDuplicateTx}, {Op: OpRecoverNode}, {Op: OpMonitor},
		}
		partners := pairPartners(plan)
		cand := removeChunk(plan, partners, 0, 1)
		balanced(t, cand)
		if len(cand) != 2 {
			t.Fatalf("dropping the failure kept %d steps, want 2 (recover must leave with it): %v", len(cand), cand)
		}
		cand = removeChunk(plan, partners, 2, 1)
		balanced(t, cand)
		if len(cand) != 2 {
			t.Fatalf("dropping the recover kept %d steps, want 2 (failure must leave with it): %v", len(cand), cand)
		}
	})
}

// TestShrinkPreservesPairingEndToEnd drives RunShrunk over a plan whose
// failure (a custom invariant tripping on resource count) coexists with
// an open partition: the shrunk plan must stay structurally balanced —
// no heal surviving without its partition — while still reproducing the
// violation.
func TestShrinkPreservesPairingEndToEnd(t *testing.T) {
	broken := append(DefaultInvariants(), Invariant{
		Name: "no-resources-ever",
		Check: func(w *World) error {
			if _, _, res := w.Populations(); res > 0 {
				return errOneResource
			}
			return nil
		},
	})
	plan := []Step{
		{Op: OpAddOwner},
		{Op: OpPartition, Arg: 0},
		{Op: OpSealEmpty},
		{Op: OpHeal},
		{Op: OpAddConsumer},
		{Op: OpPublish, Arg: 2}, // trips no-resources-ever
	}
	eng := New(Config{Seed: 8, Validators: 5, Invariants: broken, MaxShrinkRuns: 60})
	res := eng.shrinkResult(eng.RunPlan(plan))
	if res.Failure == nil || res.Failure.Name != "no-resources-ever" {
		t.Fatalf("want no-resources-ever failure, got %v", res.Failure)
	}
	// The minimal repro is add-owner + publish; the partition pair must
	// have been removed together, never leaving a dangling heal.
	open := 0
	for _, st := range res.Plan {
		switch st.Op {
		case OpPartition:
			open++
		case OpHeal:
			if open == 0 {
				t.Fatalf("shrunk plan has a dangling heal:\n%s", res.Trace())
			}
			open--
		}
	}
	if len(res.Plan) > 2 {
		t.Fatalf("shrunk plan has %d steps, want <= 2:\n%s", len(res.Plan), res.Trace())
	}
}

var errOneResource = errors.New("a resource exists")
