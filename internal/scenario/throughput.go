package scenario

import (
	"fmt"
	"time"

	"repro/internal/core"
)

func init() {
	core.ScenarioThroughputFn = throughputTable
}

// throughputTable backs Harness.AblationScenarioThroughput: it runs the
// engine at growing plan sizes with two invariant-check cadences and
// reports steps/second, making both the workload drive rate and the
// cost of system-wide invariant checking tracked performance numbers.
func throughputTable(quick bool) *core.Table {
	t := &core.Table{
		Title:  "Ablation: scenario engine step throughput (seed 7, 3 validators)",
		Header: []string{"steps", "check_every", "wall_ms", "steps_per_sec", "invariant_checks"},
	}
	sizes := []int{25, 50, 100}
	if quick {
		sizes = sizes[:2]
	}
	for _, n := range sizes {
		for _, every := range []int{1, 8} {
			res, ms := timedRun(Config{Seed: 7, Steps: n, CheckEvery: every})
			if res.Failure != nil {
				t.Add(n, every, fmt.Sprintf("FAILED: %s", res.Failure), "-", res.InvariantChecks)
				continue
			}
			t.Add(n, every, ms, float64(n)/(ms/1000), res.InvariantChecks)
		}
	}
	return t
}

// timedRun executes one scenario run and returns it with the elapsed
// wall-clock milliseconds.
func timedRun(cfg Config) (*RunResult, float64) {
	eng := New(cfg)
	//repolint:ignore determinism wall-clock throughput measurement; elapsed ms is reported, never replayed
	start := time.Now()
	res := eng.Run()
	//repolint:ignore determinism wall-clock throughput measurement; elapsed ms is reported, never replayed
	return res, float64(time.Since(start).Microseconds()) / 1000
}
