// Package scenario implements a deterministic, seeded, end-to-end
// scenario engine for the whole usage-control architecture.
//
// An Engine boots a full core.Deployment (PoA validator cluster + DE App
// + multi-pod Solid host + pod managers + TEEs + oracles + market) on
// simulated time and executes a randomized multi-agent workload derived
// entirely from one int64 seed: pod owners publishing resources and
// modifying policies, consumers buying access through the market and
// using copies inside their TEEs, monitoring rounds, settlements — all
// interleaved with injected faults (replayed and dropped HTTP requests,
// duplicated and reordered transaction submissions, validator failures
// and recoveries, hard validator crashes restarted from the durable
// store — optionally with the write-ahead log torn mid-record — and
// clock skips across policy-retention windows).
//
// After every step, and again at quiescence, the engine evaluates
// system-wide invariants as plain predicates over live state:
//
//   - funds-conservation: fees paid == payouts earned + market revenue
//   - nonce-monotonicity: per-sender nonces on the ledger are gapless
//   - head-agreement: all live validators agree on the chain tip
//   - gas-ledger: the cost ledger equals the sum of receipt gas
//   - acl-isolation: an agent reads a resource iff some generation of
//     the ACL granted it (and grants, once given, stay effective)
//   - published-immutability: published bytes never change
//   - policy-consistency: chain, pod manager, and TEE copies agree on
//     the current policy version
//   - retention-enforcement: copies are held iff their deadline allows
//   - honest-compliance: no violations are recorded against holders
//     that always met their obligations
//   - recovery-equivalence: every live validator's state reproduces its
//     committed head root, and a validator restarted from disk stands at
//     the live cluster's head with an identical state root
//
// Every run with the same seed is bit-for-bit reproducible: the step
// trace and all invariant results are identical across runs. On a
// violation the engine replays the seed with step-level shrinking
// (ddmin-style) and reports a minimal reproducing trace.
//
// The engine is wired three ways: table-driven go test scenarios
// (race-enabled smoke runs over a seed matrix), a go test -fuzz target
// feeding the step decoder from fuzz input, and the
// Harness.AblationScenarioThroughput table (cmd/ucbench) tracking
// scenario step throughput as a perf number.
package scenario
