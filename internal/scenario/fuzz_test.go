package scenario

import (
	"testing"
)

// FuzzScenarioSteps feeds the step decoder from fuzz input: every 5-byte
// group becomes one step, and the resulting plan runs against a fresh
// deployment with the full invariant suite. Any failure the fuzzer can
// reach is a genuine cross-layer bug (the sabotage op is not decodable).
//
// CI smoke-runs this with -fuzz=FuzzScenarioSteps -fuzztime=30s.
func FuzzScenarioSteps(f *testing.F) {
	// Seed corpus: generated plans of a few seeds folded into the
	// decoder's byte domain (the generator draws 15-bit selectors, the
	// decoder reads one byte per field, so encodePlan reduces each field
	// mod 256 — still a diverse, valid starting population), plus
	// hand-picked fault-heavy sequences.
	for _, seed := range []int64{1, 2} {
		f.Add(encodePlan(GeneratePlan(seed, 12, false)))
	}
	f.Add([]byte{
		byte(OpAddOwner), 0, 0, 0, 0,
		byte(OpAddConsumer), 0, 0, 0, 0,
		byte(OpPublish), 0, 0, 0, 3,
		byte(OpGrant), 0, 0, 0, 0,
		byte(OpAccess), 0, 0, 0, 0,
		byte(OpClockSkip), 0, 0, 0, 200,
		byte(OpUse), 0, 0, 0, 0,
		byte(OpMonitor), 0, 0, 0, 0,
	})
	f.Add([]byte{
		byte(OpAddOwner), 0, 0, 0, 0,
		byte(OpFailNode), 1, 0, 0, 0,
		byte(OpDuplicateTx), 0, 0, 0, 0,
		byte(OpRecoverNode), 0, 0, 0, 0,
		byte(OpReorderTxs), 0, 0, 0, 0,
		byte(OpReplayRequest), 0, 0, 0, 0,
	})
	// Byzantine repertoire: equivocation to a peer subset, each
	// invalid-block dimension, a partition bracketing sealing, and both
	// hostile pod clients.
	f.Add([]byte{
		byte(OpAddOwner), 0, 0, 0, 0,
		byte(OpEquivocate), 0, 1, 0, 0,
		byte(OpInvalidBlock), 0, 0, 0, 0,
		byte(OpInvalidBlock), 1, 0, 0, 1,
		byte(OpInvalidBlock), 0, 0, 0, 2,
		byte(OpNonceFlood), 0, 0, 0, 3,
		byte(OpTxFlood), 0, 0, 0, 0,
	})
	f.Add([]byte{
		byte(OpAddOwner), 0, 0, 0, 0,
		byte(OpAddConsumer), 0, 0, 0, 0,
		byte(OpPublish), 0, 0, 0, 2,
		byte(OpGrant), 0, 0, 0, 0,
		byte(OpPartition), 0, 0, 0, 0,
		byte(OpSealEmpty), 0, 0, 0, 0,
		byte(OpHeal), 0, 0, 0, 0,
		byte(OpCredentialReplay), 0, 0, 0, 0,
		byte(OpEquivocate), 0, 0, 0, 0,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		plan := DecodePlan(data, 24)
		if len(plan) == 0 {
			t.Skip("no steps")
		}
		res := New(Config{Seed: 1, Validators: 2}).RunPlan(plan)
		if res.Failure != nil && res.Failure.Kind != FailError {
			t.Fatalf("fuzzed plan violated %s %q: %s\ntrace:\n%s",
				res.Failure.Kind, res.Failure.Name, res.Failure.Detail, res.Trace())
		}
	})
}

// encodePlan maps a plan into DecodePlan's byte-per-field encoding for
// corpus seeding; fields wider than a byte are reduced mod 256.
func encodePlan(plan []Step) []byte {
	out := make([]byte, 0, len(plan)*5)
	for _, st := range plan {
		out = append(out, byte(st.Op), byte(st.A), byte(st.B), byte(st.C), byte(st.Arg))
	}
	return out
}
