package scenario

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/distexchange"
	"repro/internal/obs"
	"repro/internal/podmanager"
	"repro/internal/policy"
	"repro/internal/solid"
	"repro/internal/store"
	"repro/internal/tee"
)

// consumerPurpose is the declared purpose of every scenario consumer.
// Generated policies never constrain purposes, so purpose checks stay
// out of the model: the invariant surface under test is retention,
// isolation, immutability, and funds/nonce bookkeeping.
const consumerPurpose = policy.PurposeWebAnalytics

// stepTimeout bounds any single step's wall-clock time; a step that
// exceeds it indicates a deadlock-class bug (e.g. waiting on a dead
// node's ledger), which the engine reports instead of hanging.
const stepTimeout = 30 * time.Second

// copySt models one consumer's TEE-held copy of a resource.
type copySt struct {
	stored      bool // ever stored (live or tombstone)
	live        bool
	retrievedAt time.Time
	hasDeadline bool
	deadline    time.Time
	diedAt      time.Time
	// everLate marks a copy whose deletion instant exceeded some
	// policy-version's deadline — the only holders monitoring may
	// legitimately flag.
	everLate bool
	useCount uint64
}

// resourceSt models one published resource.
type resourceSt struct {
	ownerIdx  int
	path, iri string
	sum       [32]byte
	published bool
	withdrawn bool
	version   uint64
	retention time.Duration
	granted   []int // consumer indices in grant order
	confirmed map[int]bool
	copies    map[int]*copySt
}

func (r *resourceSt) isGranted(consumer int) bool {
	for _, g := range r.granted {
		if g == consumer {
			return true
		}
	}
	return false
}

type ownerSt struct {
	name string
	o    *core.Owner
}

type consumerSt struct {
	name string
	c    *core.Consumer
}

// World is a live deployment plus the model the engine checks it
// against. All execution is single-threaded; background goroutines
// (oracles, timers) are quiesced inside the steps that start them, so a
// run with a fixed plan is deterministic. Custom invariants receive the
// World and inspect live state through Deployment and Now.
type World struct {
	cfg       Config
	d         *core.Deployment
	dataDir   string
	reg       *obs.Registry
	owners    []*ownerSt
	consumers []*consumerSt
	resources []*resourceSt

	// restarted marks validators that have been crash-restarted from
	// disk at least once; the recovery-equivalence invariant holds them
	// to the live cluster's head and state root.
	restarted map[int]bool

	// dupKey is the synthetic sender used by transaction-level faults;
	// dupNonce tracks its committed nonce sequence.
	dupKey   *cryptoutil.KeyPair
	dupNonce uint64

	// partitioned mirrors the active partition's minority membership;
	// healedHeads records every live validator's head at each heal
	// instant, which partition-convergence holds to "still canonical
	// forever" (no committed-block rollback).
	partitioned map[int]bool
	healedHeads []headMark

	// equivAttempts records every injected double-seal; the
	// no-equivocation-accepted invariant re-judges each one after every
	// step. Crash-restarting a target prunes it from the attempt: its
	// in-memory evidence is legitimately gone.
	equivAttempts []*equivAttempt

	// malloryID/malloryKey is the hostile agent driving nonce floods,
	// provisioned lazily on first use.
	malloryID  solid.WebID
	malloryKey *cryptoutil.KeyPair

	// floodKeys is the squad of hostile cheap-tx senders driving
	// OpTxFlood, provisioned lazily; floodEpisodes records each flood's
	// settlement latency for the starvation-freedom invariant.
	floodKeys     []*cryptoutil.KeyPair
	floodEpisodes []floodEpisode
}

// Admission bounds every scenario deployment runs under: tight enough
// that a generated flood overwhelms them in-step, loose enough that
// honest steps (a handful of transactions, sealed per batch) never
// notice.
const (
	floodPoolCap     = 64
	floodSenderQuota = 16
	// floodBlocksBound is K in the starvation-freedom invariant: an
	// adequately-priced settlement submitted during a flood must commit
	// within K sealed blocks.
	floodBlocksBound = 3
)

// floodEpisode records one OpTxFlood: how many sealed blocks the
// adequately-priced probe settlement needed to commit (0 = never, the
// starvation case) and the bound in force at the time.
type floodEpisode struct {
	step   int
	blocks int
	bound  int
}

// headMark pins a (height, hash) observed as some validator's head at a
// heal instant.
type headMark struct {
	height uint64
	hash   cryptoutil.Hash
}

// equivAttempt is the model record of one injected double-seal.
type equivAttempt struct {
	height            uint64
	committed, forged cryptoutil.Hash
	// targets maps validator index -> still expected to hold evidence.
	targets map[int]bool
}

func newWorld(cfg Config) (*World, error) {
	// Every scenario deployment is durable: validators journal blocks to
	// a run-private temp dir, which is what gives the crash-restart fault
	// a store to recover from. SyncNever keeps the disk traffic cheap —
	// in-process crashes lose nothing unflushed, and the torn-tail fault
	// injects the damage a machine crash would cause.
	dataDir, err := os.MkdirTemp("", "scenario-*")
	if err != nil {
		return nil, err
	}
	// Every run carries live instruments: when an invariant fires, the
	// failure report includes a metrics snapshot of the system that
	// produced it. The differential scenario tests pin that metering
	// never perturbs traces, so this costs nothing but the counters.
	reg := obs.NewRegistry()
	d, err := core.NewDeployment(core.Config{
		Validators:      cfg.Validators,
		MonitoringGrace: cfg.MonitorGrace,
		DataDir:         dataDir,
		WALSync:         store.SyncNever,
		ExecWorkers:     cfg.ExecWorkers,
		// Deliberately tight admission bounds so the tx-flood fault can
		// overwhelm them with an in-step burst (the knobs ride the node
		// configs, so a crash-restarted validator reopens with the same
		// bounds).
		MempoolCapacity: floodPoolCap,
		SenderQuota:     floodSenderQuota,
		Obs:             reg,
	})
	if err != nil {
		os.RemoveAll(dataDir)
		return nil, err
	}
	if cfg.DisableEquivocationGuard {
		d.SetEquivocationGuard(false)
	}
	return &World{
		cfg: cfg, d: d, dataDir: dataDir, reg: reg,
		restarted:   make(map[int]bool),
		dupKey:      cryptoutil.MustGenerateKey(),
		partitioned: make(map[int]bool),
	}, nil
}

// metricsDump renders the world's registry as Prometheus exposition
// text — the observability snapshot attached to failing runs.
func (w *World) metricsDump() string {
	var b bytes.Buffer
	if err := w.reg.WritePrometheus(&b); err != nil {
		return "# metrics dump failed: " + err.Error() + "\n"
	}
	return b.String()
}

func (w *World) close() {
	w.d.Close()
	os.RemoveAll(w.dataDir)
}

func (w *World) now() time.Time { return w.d.Clock.Now() }

// Deployment exposes the live deployment for custom invariants.
func (w *World) Deployment() *core.Deployment { return w.d }

// Now returns the current simulated instant.
func (w *World) Now() time.Time { return w.now() }

// Populations reports the current owner/consumer/resource counts, so
// custom invariants can scale their expectations.
func (w *World) Populations() (owners, consumers, resources int) {
	return len(w.owners), len(w.consumers), len(w.resources)
}

// sel resolves a step selector against a population size.
func sel(raw, n int) int {
	if n <= 0 {
		return -1
	}
	return raw % n
}

// publishedResources lists indices of currently listed resources.
func (w *World) publishedResources() []int {
	var out []int
	for i, r := range w.resources {
		if r.published {
			out = append(out, i)
		}
	}
	return out
}

// ownerResources lists indices of resources of one owner matching the
// predicate.
func (w *World) ownerResources(owner int, pred func(*resourceSt) bool) []int {
	var out []int
	for i, r := range w.resources {
		if r.ownerIdx == owner && pred(r) {
			out = append(out, i)
		}
	}
	return out
}

// classify maps an error to a stable outcome label. Labels must never
// embed run-specific data (addresses, ports, nonces): the trace has to
// be byte-identical across two runs of the same seed.
func classify(err error) string {
	if err == nil {
		return "ok"
	}
	var se *solid.StatusError
	if errors.As(err, &se) {
		return fmt.Sprintf("http-%d", se.Code)
	}
	var re *distexchange.RevertError
	if errors.As(err, &re) {
		return "revert"
	}
	switch {
	case errors.Is(err, tee.ErrNoCopy):
		return "no-copy"
	case errors.Is(err, tee.ErrDeleted):
		return "deleted"
	case errors.Is(err, tee.ErrUseDenied):
		return "use-denied"
	case errors.Is(err, tee.ErrUseRevoked):
		return "use-revoked"
	case errors.Is(err, chain.ErrBadNonce):
		return "bad-nonce"
	case errors.Is(err, solid.ErrForbidden):
		return "forbidden"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	}
	return "err"
}

// expectation builds an expectation-class failure.
func expectation(op Op, format string, args ...any) *Failure {
	return &Failure{Kind: FailExpectation, Name: op.String(), Detail: fmt.Sprintf(format, args...)}
}

// resourceData derives the deterministic body of resource #i.
func resourceData(i int) []byte {
	return bytes.Repeat([]byte{byte('a' + i%26)}, 256+(i%7)*64)
}

// apply executes one step against the deployment and advances the
// model. It returns a stable outcome label and, when the system's
// behaviour contradicts the model, an expectation failure.
func (w *World) apply(stepIdx int, st Step) (string, *Failure) {
	ctx, cancel := context.WithTimeout(context.Background(), stepTimeout)
	defer cancel()

	switch st.Op {
	case OpAddOwner:
		if len(w.owners) >= w.cfg.MaxOwners {
			return "skip-cap", nil
		}
		name := fmt.Sprintf("o%d", len(w.owners))
		o, err := w.d.NewOwner(name)
		if err == nil {
			err = o.InitializePod(ctx, nil)
		}
		if err != nil {
			return classify(err), expectation(st.Op, "provisioning owner %s failed: %v", name, err)
		}
		w.owners = append(w.owners, &ownerSt{name: name, o: o})
		return "ok", nil

	case OpAddConsumer:
		if len(w.consumers) >= w.cfg.MaxConsumers {
			return "skip-cap", nil
		}
		name := fmt.Sprintf("c%d", len(w.consumers))
		c, err := w.d.NewConsumer(name, consumerPurpose)
		if err != nil {
			return classify(err), expectation(st.Op, "provisioning consumer %s failed: %v", name, err)
		}
		w.consumers = append(w.consumers, &consumerSt{name: name, c: c})
		return "ok", nil

	case OpPublish:
		oi := sel(st.A, len(w.owners))
		if oi < 0 {
			return "skip-no-owner", nil
		}
		if len(w.resources) >= w.cfg.MaxResources {
			return "skip-cap", nil
		}
		owner := w.owners[oi]
		ri := len(w.resources)
		path := fmt.Sprintf("/data/r%03d.bin", ri)
		data := resourceData(ri)
		retDays := st.Arg % 11 // 0 = unlimited
		if err := owner.o.AddResource(path, "application/octet-stream", data); err != nil {
			return classify(err), expectation(st.Op, "upload %s: %v", path, err)
		}
		pol := owner.o.NewPolicy(path)
		pol.MaxRetention = time.Duration(retDays) * 24 * time.Hour
		iri, err := owner.o.Publish(ctx, path, fmt.Sprintf("scenario resource %d", ri), pol)
		if err != nil {
			return classify(err), expectation(st.Op, "publish %s: %v", path, err)
		}
		w.resources = append(w.resources, &resourceSt{
			ownerIdx:  oi,
			path:      path,
			iri:       iri,
			sum:       sha256.Sum256(data),
			published: true,
			version:   1,
			retention: pol.MaxRetention,
			confirmed: make(map[int]bool),
			copies:    make(map[int]*copySt),
		})
		return fmt.Sprintf("ok ret=%dd", retDays), nil

	case OpGrant:
		pubs := w.publishedResources()
		ri := sel(st.C, len(pubs))
		ci := sel(st.B, len(w.consumers))
		if ri < 0 || ci < 0 {
			return "skip-unresolved", nil
		}
		res := w.resources[pubs[ri]]
		if res.isGranted(ci) {
			return "skip-granted", nil
		}
		owner := w.owners[res.ownerIdx]
		if err := owner.o.Grant(ctx, w.consumers[ci].c, res.path, consumerPurpose); err != nil {
			return classify(err), expectation(st.Op, "grant %s to %s: %v", res.path, w.consumers[ci].name, err)
		}
		res.granted = append(res.granted, ci)
		return "ok", nil

	case OpAccess:
		pubs := w.publishedResources()
		ri := sel(st.C, len(pubs))
		ci := sel(st.B, len(w.consumers))
		if ri < 0 || ci < 0 {
			return "skip-unresolved", nil
		}
		res := w.resources[pubs[ri]]
		consumer := w.consumers[ci]
		if res.confirmed[ci] {
			// The grant model is one retrieval per (resource, device):
			// a second confirmRetrieval reverts by design.
			return "skip-confirmed", nil
		}
		err := consumer.c.Access(ctx, res.iri)
		if !res.isGranted(ci) {
			// Isolation: an ungranted consumer must never obtain the bytes.
			if err == nil {
				return "ok", expectation(st.Op, "ungranted consumer %s read %s", consumer.name, res.iri)
			}
			return "denied-" + classify(err), nil
		}
		if err != nil {
			return classify(err), expectation(st.Op, "granted consumer %s failed to access %s: %v", consumer.name, res.iri, err)
		}
		cp := &copySt{stored: true, live: true, retrievedAt: w.now()}
		if res.retention > 0 {
			cp.hasDeadline = true
			cp.deadline = cp.retrievedAt.Add(res.retention)
		}
		res.copies[ci] = cp
		res.confirmed[ci] = true
		return "ok", nil

	case OpUse:
		ri := sel(st.C, len(w.resources))
		ci := sel(st.B, len(w.consumers))
		if ri < 0 || ci < 0 {
			return "skip-unresolved", nil
		}
		res := w.resources[ri]
		consumer := w.consumers[ci]
		cp := res.copies[ci]
		_, err := consumer.c.Use(res.iri, policy.ActionUse)
		switch {
		case cp == nil || !cp.stored:
			if !errors.Is(err, tee.ErrNoCopy) {
				return classify(err), expectation(st.Op, "use without copy: want no-copy, got %v", err)
			}
			return "no-copy", nil
		case !cp.live:
			if !errors.Is(err, tee.ErrDeleted) {
				return classify(err), expectation(st.Op, "use of deleted copy: want deleted, got %v", err)
			}
			return "deleted", nil
		default:
			if err != nil {
				return classify(err), expectation(st.Op, "use of live copy of %s denied: %v", res.iri, err)
			}
			cp.useCount++
			return "ok", nil
		}

	case OpModifyPolicy:
		oi := sel(st.A, len(w.owners))
		if oi < 0 {
			return "skip-no-owner", nil
		}
		mine := w.ownerResources(oi, func(r *resourceSt) bool { return r.published })
		ri := sel(st.C, len(mine))
		if ri < 0 {
			return "skip-no-resource", nil
		}
		res := w.resources[mine[ri]]
		owner := w.owners[oi]
		newRet := time.Duration(st.Arg%11) * 24 * time.Hour
		pol := owner.o.NewPolicy(res.path)
		pol.Version = res.version + 1
		pol.MaxRetention = newRet
		if err := owner.o.ModifyPolicy(ctx, res.path, pol); err != nil {
			return classify(err), expectation(st.Op, "modify policy of %s: %v", res.path, err)
		}
		res.version++
		res.retention = newRet
		// Push-out propagation: every holder that ever stored a copy
		// (tombstones included) must reach the new version.
		for _, ci := range res.granted {
			cp := res.copies[ci]
			if cp == nil || !cp.stored {
				continue
			}
			if err := w.consumers[ci].c.WaitPolicyVersion(res.iri, res.version, 10*time.Second); err != nil {
				return "timeout", expectation(st.Op, "policy v%d never reached %s: %v", res.version, w.consumers[ci].name, err)
			}
		}
		// Fire any zero-delay deletion timers the update armed, then
		// advance the model to the new deadlines.
		w.d.Clock.Advance(0)
		now := w.now()
		for _, ci := range res.granted {
			cp := res.copies[ci]
			if cp == nil || !cp.stored {
				continue
			}
			if newRet > 0 {
				dl := cp.retrievedAt.Add(newRet)
				if cp.live {
					if !now.Before(dl) {
						cp.live = false
						cp.diedAt = now
						if now.After(dl) {
							cp.everLate = true
						}
					} else {
						cp.hasDeadline = true
						cp.deadline = dl
					}
				} else if cp.diedAt.After(dl) {
					// Retroactively late: the copy outlived the deadline the
					// *current* policy version would have imposed, which is
					// exactly what compliance checking evaluates.
					cp.everLate = true
				}
			} else if cp.live {
				cp.hasDeadline = false
				cp.deadline = time.Time{}
			}
		}
		return fmt.Sprintf("ok v=%d ret=%s", res.version, newRet), nil

	case OpUnpublish:
		oi := sel(st.A, len(w.owners))
		if oi < 0 {
			return "skip-no-owner", nil
		}
		mine := w.ownerResources(oi, func(r *resourceSt) bool { return r.published })
		ri := sel(st.C, len(mine))
		if ri < 0 {
			return "skip-no-resource", nil
		}
		res := w.resources[mine[ri]]
		if err := w.owners[oi].o.Unpublish(ctx, res.path); err != nil {
			return classify(err), expectation(st.Op, "unpublish %s: %v", res.path, err)
		}
		res.published = false
		res.withdrawn = true
		return "ok", nil

	case OpMonitor:
		oi := sel(st.A, len(w.owners))
		if oi < 0 {
			return "skip-no-owner", nil
		}
		mine := w.ownerResources(oi, func(r *resourceSt) bool { return r.published || r.withdrawn })
		ri := sel(st.C, len(mine))
		if ri < 0 {
			return "skip-no-resource", nil
		}
		res := w.resources[mine[ri]]
		targets := 0
		for _, ci := range res.granted {
			if res.confirmed[ci] {
				targets++
			}
		}
		evidence, violations, err := w.owners[oi].o.Monitor(ctx, res.path)
		if err != nil {
			return classify(err), expectation(st.Op, "monitor %s: %v", res.path, err)
		}
		if len(evidence) != targets {
			return "short-evidence", expectation(st.Op, "monitor %s: %d evidence from %d targets", res.path, len(evidence), targets)
		}
		return fmt.Sprintf("ok ev=%d viol=%d", len(evidence), len(violations)), nil

	case OpSettle:
		payouts, err := w.d.Market.Settle(10)
		if err != nil {
			return classify(err), expectation(st.Op, "settle: %v", err)
		}
		return fmt.Sprintf("ok payouts=%d", len(payouts)), nil

	case OpReplayRequest:
		oi := sel(st.A, len(w.owners))
		if oi < 0 {
			return "skip-no-owner", nil
		}
		return w.replayRequest(stepIdx, oi)

	case OpDropRequest:
		oi := sel(st.A, len(w.owners))
		if oi < 0 {
			return "skip-no-owner", nil
		}
		owner := w.owners[oi]
		target := owner.o.URL() + w.readablePath(oi)
		faulty := solid.NewClient(owner.o.WebID, owner.o.Key, w.d.Clock)
		faulty.HTTP = &http.Client{Transport: droppingTransport{}, Timeout: stepTimeout}
		if _, _, err := faulty.Get(target); err == nil {
			return "ok", expectation(st.Op, "injected drop did not surface as an error")
		}
		retry := solid.NewClient(owner.o.WebID, owner.o.Key, w.d.Clock)
		retry.HTTP = &http.Client{Timeout: stepTimeout}
		if _, _, err := retry.Get(target); err != nil {
			return classify(err), expectation(st.Op, "retry after dropped response failed: %v", err)
		}
		return "drop-retried", nil

	case OpDuplicateTx:
		tx, err := w.dupTx("dup")
		if err != nil {
			return "err", expectation(st.Op, "build tx: %v", err)
		}
		before := w.liveHeight()
		if _, err := w.d.SubmitBatch([]*chain.Tx{tx}); err != nil {
			return classify(err), expectation(st.Op, "first submit: %v", err)
		}
		w.dupNonce++
		if _, err := w.d.SubmitBatch([]*chain.Tx{tx}); err != nil {
			return classify(err), expectation(st.Op, "duplicate resubmit not idempotent: %v", err)
		}
		after := w.liveHeight()
		if after != before+1 {
			return "re-executed", expectation(st.Op, "duplicate resubmit changed height %d -> %d (want %d)", before, after, before+1)
		}
		return "dup-idempotent", nil

	case OpReorderTxs:
		txs := make([]*chain.Tx, 3)
		for i := range txs {
			tx, err := w.dupTx(fmt.Sprintf("reorder%d", i))
			if err != nil {
				return "err", expectation(st.Op, "build tx: %v", err)
			}
			w.dupNonce++
			txs[i] = tx
		}
		// Out of order with a valid head: the batch must fail atomically.
		if _, err := w.d.SubmitBatch([]*chain.Tx{txs[0], txs[2], txs[1]}); !errors.Is(err, chain.ErrBadNonce) {
			return classify(err), expectation(st.Op, "reordered batch: want bad-nonce, got %v", err)
		}
		if pending := w.d.Network.PendingTxs(); pending != 0 {
			return "partial-enqueue", expectation(st.Op, "reordered batch left %d txs queued", pending)
		}
		if _, err := w.d.SubmitBatch(txs); err != nil {
			return classify(err), expectation(st.Op, "in-order batch after reorder: %v", err)
		}
		return "reorder-rejected", nil

	case OpFailNode:
		if w.d.Partitioned() {
			// Layering liveness faults over a partition would make the
			// heal's convergence obligation ill-defined; the generator may
			// still draw the combination, so it degrades to a no-op.
			return "skip-partition-active", nil
		}
		var candidates []int
		for i := 1; i < len(w.d.Nodes); i++ {
			if !w.d.ValidatorDown(i) {
				candidates = append(candidates, i)
			}
		}
		ni := sel(st.A, len(candidates))
		if ni < 0 {
			return "skip-no-candidate", nil
		}
		if err := w.d.FailValidator(candidates[ni]); err != nil {
			return "err", expectation(st.Op, "fail validator %d: %v", candidates[ni], err)
		}
		return fmt.Sprintf("failed-%d", candidates[ni]), nil

	case OpRecoverNode:
		if w.d.Partitioned() {
			return "skip-partition-active", nil
		}
		var candidates []int
		for i := 1; i < len(w.d.Nodes); i++ {
			// Crashed validators have no RAM state to recover; they come
			// back only through the crash-restart step's disk path.
			if w.d.ValidatorDown(i) && !w.d.ValidatorCrashed(i) {
				candidates = append(candidates, i)
			}
		}
		ni := sel(st.A, len(candidates))
		if ni < 0 {
			return "skip-no-candidate", nil
		}
		synced, err := w.d.RecoverValidator(candidates[ni])
		if err != nil {
			return "err", expectation(st.Op, "recover validator %d: %v", candidates[ni], err)
		}
		return fmt.Sprintf("recovered-%d synced=%d", candidates[ni], synced), nil

	case OpClockSkip:
		hours := 1 + st.Arg%240
		w.d.Clock.Advance(time.Duration(hours) * time.Hour)
		w.expireCopies()
		return fmt.Sprintf("+%dh", hours), nil

	case OpSealEmpty:
		if _, err := w.d.SealBlock(); err != nil {
			return "err", expectation(st.Op, "seal empty block: %v", err)
		}
		return "ok", nil

	case OpCrashRestart:
		if w.d.Partitioned() {
			return "skip-partition-active", nil
		}
		var candidates []int
		for i := 1; i < len(w.d.Nodes); i++ {
			if !w.d.ValidatorDown(i) {
				candidates = append(candidates, i)
			}
		}
		ni := sel(st.A, len(candidates))
		if ni < 0 {
			return "skip-no-candidate", nil
		}
		// Crashing the last live validator is refused by design; skip
		// rather than trip over the guard.
		live := 0
		for i := range w.d.Nodes {
			if !w.d.ValidatorDown(i) {
				live++
			}
		}
		if live <= 1 {
			return "skip-last-live", nil
		}
		vi := candidates[ni]
		if err := w.d.CrashValidator(vi); err != nil {
			return "err", expectation(st.Op, "crash validator %d: %v", vi, err)
		}
		torn := st.Arg%2 == 1
		if torn {
			// Tear the WAL mid-record: the damage a machine crash leaves.
			// Block records are far larger than the chopped range, so this
			// lands inside the final record.
			if err := w.d.TruncateValidatorWAL(vi, int64(3+st.Arg%24)); err != nil {
				return "err", expectation(st.Op, "tear validator %d wal: %v", vi, err)
			}
		}
		synced, err := w.d.RestartValidatorFromDisk(vi)
		if err != nil {
			return "err", expectation(st.Op, "restart validator %d from disk: %v", vi, err)
		}
		w.restarted[vi] = true
		// The restart wiped the node's in-memory equivocation evidence;
		// stop holding it to attempts it can no longer remember.
		for _, att := range w.equivAttempts {
			delete(att.targets, vi)
		}
		return fmt.Sprintf("restarted-%d torn=%t synced=%d", vi, torn, synced), nil

	case OpEquivocate:
		if w.d.Partitioned() {
			// The forged sibling must contend with every target's current
			// head; minority nodes lag by construction.
			return "skip-partition-active", nil
		}
		live := w.liveValidators()
		if len(live) < 2 {
			return "skip-too-few-live", nil
		}
		// B selects the gossip subset as a bitmask over the live set —
		// "each block to a different peer subset"; an empty draw targets
		// everyone.
		var targets []int
		for k, vi := range live {
			if st.B&(1<<uint(k)) != 0 {
				targets = append(targets, vi)
			}
		}
		if len(targets) == 0 {
			targets = live
		}
		rep, err := w.d.Equivocate(targets)
		if err != nil {
			return "err", expectation(st.Op, "equivocate: %v", err)
		}
		att := &equivAttempt{
			height: rep.Height, committed: rep.Committed, forged: rep.Forged,
			targets: make(map[int]bool, len(targets)),
		}
		for _, t := range targets {
			att.targets[t] = true
		}
		w.equivAttempts = append(w.equivAttempts, att)
		if w.cfg.DisableEquivocationGuard {
			// Sabotaged guard: injection succeeds silently; the
			// no-equivocation-accepted invariant must catch it at check
			// time.
			return fmt.Sprintf("equivocation-injected h=%d targets=%d", rep.Height, len(targets)), nil
		}
		for t, verr := range rep.Rejections {
			if !errors.Is(verr, chain.ErrEquivocation) {
				return "accepted", expectation(st.Op,
					"validator %d verdict on forged sibling at height %d: want equivocation, got %v", t, rep.Height, verr)
			}
		}
		return fmt.Sprintf("equivocation-rejected h=%d targets=%d", rep.Height, len(targets)), nil

	case OpInvalidBlock:
		if w.d.Partitioned() {
			return "skip-partition-active", nil
		}
		live := w.liveValidators()
		if len(live) == 0 {
			return "skip-no-live", nil
		}
		kind := chain.InvalidBlockKind(st.Arg % 3)
		proposer := live[st.A%len(live)]
		before := w.liveHeight()
		verdicts, err := w.d.InjectInvalidBlock(kind, proposer, live)
		if err != nil {
			return "err", expectation(st.Op, "inject %s block: %v", kind, err)
		}
		var want error
		switch kind {
		case chain.InvalidStateRoot:
			want = chain.ErrBadStateRoot
		case chain.InvalidSignature:
			want = chain.ErrBadHeaderSig
		case chain.InvalidGas:
			want = chain.ErrGasTooLarge
		}
		for t, verr := range verdicts {
			if !errors.Is(verr, want) {
				return "accepted", expectation(st.Op,
					"validator %d verdict on %s block: want %v, got %v", t, kind, want, verr)
			}
		}
		if after := w.liveHeight(); after != before {
			return "height-moved", expectation(st.Op,
				"invalid %s block moved the head %d -> %d", kind, before, after)
		}
		return fmt.Sprintf("invalid-%s-rejected", kind), nil

	case OpPartition:
		if w.d.Partitioned() {
			return "skip-partition-active", nil
		}
		n := len(w.d.Nodes)
		if n < 3 {
			return "skip-too-few-validators", nil
		}
		for i := range w.d.Nodes {
			if w.d.ValidatorDown(i) {
				// A split over a down node would conflate two fault kinds;
				// partitions only cut healthy links.
				return "skip-node-down", nil
			}
		}
		// Carve a minority of 1..⌊(n-1)/2⌋ from validators 1..n-1
		// (validator 0 hosts the oracles and rides with the quorum, as do
		// the pod hosts — they all sit behind one HTTP server observing
		// node 0).
		size := 1 + st.Arg%((n-1)/2)
		minority := make([]int, 0, size)
		for k := 0; k < size; k++ {
			minority = append(minority, 1+(st.A+k)%(n-1))
		}
		if err := w.d.PartitionValidators(minority...); err != nil {
			return "err", expectation(st.Op, "partition %v: %v", minority, err)
		}
		for _, vi := range minority {
			w.partitioned[vi] = true
		}
		return fmt.Sprintf("partitioned minority=%d", len(minority)), nil

	case OpHeal:
		if !w.d.Partitioned() {
			return "skip-not-partitioned", nil
		}
		// Pin every live validator's pre-heal head: convergence must only
		// ever extend them, never roll one back.
		for i, n := range w.d.Nodes {
			if n == nil || w.d.ValidatorDown(i) {
				continue
			}
			head := n.Head()
			w.healedHeads = append(w.healedHeads, headMark{height: head.Header.Number, hash: head.Hash()})
		}
		synced, dropped, err := w.d.HealPartition()
		if err != nil {
			return "err", expectation(st.Op, "heal: %v", err)
		}
		w.partitioned = make(map[int]bool)
		return fmt.Sprintf("healed synced=%d dropped=%d", synced, dropped), nil

	case OpCredentialReplay:
		return w.credentialReplay(stepIdx, st)

	case OpNonceFlood:
		return w.nonceFlood(stepIdx, st)

	case OpTxFlood:
		return w.txFlood(stepIdx, st)

	case OpSabotage:
		pubs := w.publishedResources()
		ri := sel(st.C, len(pubs))
		if ri < 0 {
			return "skip-no-resource", nil
		}
		res := w.resources[pubs[ri]]
		owner := w.owners[res.ownerIdx]
		if err := owner.o.Manager.Upload(res.path, "application/octet-stream", []byte("corrupted")); err != nil {
			return "err", expectation(st.Op, "sabotage upload: %v", err)
		}
		return "sabotaged", nil
	}
	return "skip-unknown-op", nil
}

// expireCopies marks model copies whose deadline has passed as deleted
// (the TEE timers fired during the clock advance, exactly at the
// deadline instant).
func (w *World) expireCopies() {
	now := w.now()
	for _, res := range w.resources {
		for _, ci := range res.granted {
			cp := res.copies[ci]
			if cp == nil || !cp.live || !cp.hasDeadline {
				continue
			}
			if !now.Before(cp.deadline) {
				cp.live = false
				cp.diedAt = cp.deadline
			}
		}
	}
}

// readablePath picks a path the owner can deterministically read on its
// own pod: its first resource, else the profile document.
func (w *World) readablePath(ownerIdx int) string {
	for _, r := range w.resources {
		if r.ownerIdx == ownerIdx {
			return r.path
		}
	}
	return "/profile"
}

// replayRequest sends one signed request twice via the hostile-client
// capture helper: the original must succeed, the verbatim replay must be
// rejected (single-use nonce). The explicit nonce keeps the capture
// deterministic for the seed.
func (w *World) replayRequest(stepIdx, ownerIdx int) (string, *Failure) {
	owner := w.owners[ownerIdx]
	target := owner.o.URL() + w.readablePath(ownerIdx)
	cr, err := solid.Capture(owner.o.WebID, owner.o.Key, w.d.Clock, http.MethodGet, target,
		fmt.Sprintf("replay-%d", stepIdx))
	if err != nil {
		return "err", expectation(OpReplayRequest, "capture: %v", err)
	}
	hc := &http.Client{Timeout: stepTimeout}
	first, err := cr.Send(hc)
	if err != nil {
		return "err", expectation(OpReplayRequest, "original request: %v", err)
	}
	if first != http.StatusOK {
		return fmt.Sprintf("http-%d", first), expectation(OpReplayRequest, "original request got HTTP %d", first)
	}
	replayed, err := cr.Send(hc)
	if err != nil {
		return "err", expectation(OpReplayRequest, "replayed request: %v", err)
	}
	if replayed < 400 {
		return fmt.Sprintf("http-%d", replayed), expectation(OpReplayRequest, "verbatim replay accepted with HTTP %d", replayed)
	}
	return "replay-rejected", nil
}

// liveValidators lists indices of validators that are up and hold an
// in-memory node.
func (w *World) liveValidators() []int {
	var out []int
	for i, n := range w.d.Nodes {
		if n != nil && !w.d.ValidatorDown(i) {
			out = append(out, i)
		}
	}
	return out
}

// otherConsumer returns a consumer different from ci (the "thief" in
// stolen-credential scenarios), or nil when the population is too small.
func (w *World) otherConsumer(ci int) *consumerSt {
	for i, c := range w.consumers {
		if i != ci {
			return c
		}
	}
	return nil
}

// otherPublished returns a published resource index different from ri,
// or -1.
func (w *World) otherPublished(ri int) int {
	for i, r := range w.resources {
		if i != ri && r.published {
			return i
		}
	}
	return -1
}

// credentialReplay plays a malicious pod client splicing captured
// credentials three ways: a verbatim replay of a paid, signed request
// (single-use nonce: 401); a stolen market certificate presented by a
// different consumer under its own valid signature (cert is bound to the
// payer's key: 403); and the rightful payer presenting the certificate
// for a different resource (cert is bound to one IRI: 403).
func (w *World) credentialReplay(stepIdx int, st Step) (string, *Failure) {
	op := OpCredentialReplay
	type pair struct{ ri, ci int }
	var pairs []pair
	for ri, r := range w.resources {
		if !r.published {
			continue
		}
		for _, ci := range r.granted {
			pairs = append(pairs, pair{ri, ci})
		}
	}
	pi := sel(st.B, len(pairs))
	if pi < 0 {
		return "skip-no-grant", nil
	}
	res := w.resources[pairs[pi].ri]
	consumer := w.consumers[pairs[pi].ci]
	owner := w.owners[res.ownerIdx]
	target := owner.o.URL() + res.path

	cert, err := w.d.Market.PayFee(string(consumer.c.WebID), res.iri)
	if err != nil {
		return classify(err), expectation(op, "pay fee for %s: %v", res.iri, err)
	}
	attach, err := podmanager.AttachCertificate(cert)
	if err != nil {
		return "err", expectation(op, "encode certificate: %v", err)
	}
	hc := &http.Client{Timeout: stepTimeout}

	cr, err := solid.Capture(consumer.c.WebID, consumer.c.Key, w.d.Clock, http.MethodGet, target,
		fmt.Sprintf("credreplay-%d", stepIdx))
	if err != nil {
		return "err", expectation(op, "capture: %v", err)
	}
	cr.Decorate(attach)
	first, err := cr.Send(hc)
	if err != nil {
		return "err", expectation(op, "original paid request: %v", err)
	}
	if first != http.StatusOK {
		return fmt.Sprintf("http-%d", first), expectation(op, "original paid request got HTTP %d", first)
	}
	if replayed, err := cr.Send(hc); err != nil {
		return "err", expectation(op, "replayed paid request: %v", err)
	} else if replayed != http.StatusUnauthorized {
		return fmt.Sprintf("http-%d", replayed),
			expectation(op, "verbatim paid replay got HTTP %d, want 401", replayed)
	}

	if thief := w.otherConsumer(pairs[pi].ci); thief != nil {
		scr, err := solid.Capture(thief.c.WebID, thief.c.Key, w.d.Clock, http.MethodGet, target,
			fmt.Sprintf("credsteal-%d", stepIdx))
		if err != nil {
			return "err", expectation(op, "capture stolen-cert request: %v", err)
		}
		scr.Decorate(attach)
		status, err := scr.Send(hc)
		if err != nil {
			return "err", expectation(op, "stolen-cert request: %v", err)
		}
		if status != http.StatusForbidden {
			return fmt.Sprintf("http-%d", status),
				expectation(op, "stolen certificate got HTTP %d, want 403", status)
		}
	}

	if cri := w.otherPublished(pairs[pi].ri); cri >= 0 {
		other := w.resources[cri]
		otherTarget := w.owners[other.ownerIdx].o.URL() + other.path
		xcr, err := solid.Capture(consumer.c.WebID, consumer.c.Key, w.d.Clock, http.MethodGet, otherTarget,
			fmt.Sprintf("credcross-%d", stepIdx))
		if err != nil {
			return "err", expectation(op, "capture cross-resource request: %v", err)
		}
		xcr.Decorate(attach)
		status, err := xcr.Send(hc)
		if err != nil {
			return "err", expectation(op, "cross-resource request: %v", err)
		}
		if status != http.StatusForbidden {
			return fmt.Sprintf("http-%d", status),
				expectation(op, "cross-resource certificate got HTTP %d, want 403", status)
		}
	}
	return "cred-replay-rejected", nil
}

// nonceFlood burns a burst of fresh nonces from a hostile agent and
// verifies the replay guard's per-agent isolation: every flood request
// still authenticates (the flooder starves nobody, itself included), an
// honest agent's earlier nonce is still remembered (its replay 401s),
// and a fresh honest request still lands.
func (w *World) nonceFlood(stepIdx int, st Step) (string, *Failure) {
	op := OpNonceFlood
	oi := sel(st.A, len(w.owners))
	if oi < 0 {
		return "skip-no-owner", nil
	}
	if w.malloryKey == nil {
		// Mallory is directory-registered like any agent — the attack is
		// resource exhaustion, not identity forgery.
		w.malloryKey = cryptoutil.MustGenerateKey()
		w.malloryID = solid.WebID("https://mallory.example/profile#me")
		w.d.Directory.Register(w.malloryID, w.malloryKey.PublicBytes())
	}
	owner := w.owners[oi]
	target := owner.o.URL() + w.readablePath(oi)
	hc := &http.Client{Timeout: stepTimeout}

	honest, err := solid.Capture(owner.o.WebID, owner.o.Key, w.d.Clock, http.MethodGet, target,
		fmt.Sprintf("nfhonest-%d", stepIdx))
	if err != nil {
		return "err", expectation(op, "capture honest request: %v", err)
	}
	status, err := honest.Send(hc)
	if err != nil {
		return "err", expectation(op, "honest request: %v", err)
	}
	if status != http.StatusOK {
		return fmt.Sprintf("http-%d", status), expectation(op, "honest request got HTTP %d", status)
	}

	n := 24 + st.Arg%17
	authenticated, err := solid.FloodNonces(hc, w.malloryID, w.malloryKey, w.d.Clock, target, n,
		fmt.Sprintf("nf%d", stepIdx))
	if err != nil {
		return "err", expectation(op, "flood: %v", err)
	}
	if authenticated != n {
		return "starved", expectation(op, "only %d/%d flood requests authenticated", authenticated, n)
	}

	if status, err := honest.Send(hc); err != nil {
		return "err", expectation(op, "honest replay: %v", err)
	} else if status != http.StatusUnauthorized {
		return fmt.Sprintf("http-%d", status),
			expectation(op, "honest nonce forgotten during flood: replay got HTTP %d, want 401", status)
	}
	fresh, err := solid.Capture(owner.o.WebID, owner.o.Key, w.d.Clock, http.MethodGet, target,
		fmt.Sprintf("nffresh-%d", stepIdx))
	if err != nil {
		return "err", expectation(op, "capture fresh honest request: %v", err)
	}
	if status, err := fresh.Send(hc); err != nil {
		return "err", expectation(op, "fresh honest request: %v", err)
	} else if status != http.StatusOK {
		return fmt.Sprintf("http-%d", status),
			expectation(op, "fresh honest request after flood got HTTP %d", status)
	}
	return fmt.Sprintf("nonce-flood-contained n=%d", n), nil
}

// txFlood overwhelms the admission layer: a squad of hostile senders
// sprays cheap (gas price 1) transactions at 10x the pool capacity,
// then an honest settlement at the default gas price is submitted into
// the saturated pool. The pool must stay within its bound — quota and
// price-floor rejections, never unbounded growth — and price-ordered
// selection must commit the settlement within floodBlocksBound sealed
// blocks; each episode is recorded for the starvation-freedom
// invariant to re-judge after every subsequent step.
func (w *World) txFlood(stepIdx int, st Step) (string, *Failure) {
	op := OpTxFlood
	live := w.d.LiveNode()
	if live == nil {
		return "skip-no-live", nil
	}
	const nKeys = 8
	if w.floodKeys == nil {
		// The flooders are ordinary funded identities — the attack is
		// resource exhaustion, not forgery.
		w.floodKeys = make([]*cryptoutil.KeyPair, nKeys)
		for i := range w.floodKeys {
			w.floodKeys[i] = cryptoutil.MustGenerateKey()
		}
	}

	// Spray sender by sender: each key bursts a contiguous nonce run
	// far past its quota, so the run exercises quota rejection, the
	// price floor of a full pool, and the nonce-gap cascade behind a
	// rejected transaction. Rejected nonces are reused next flood — the
	// base always re-derives from the committed ledger.
	total := 10 * floodPoolCap
	perKey := total / nKeys
	var admitted, rejected int
	for k, key := range w.floodKeys {
		base := live.CommittedNonce(key.Address())
		batch := make([]*chain.Tx, 0, perKey)
		for j := range perKey {
			nonce := base + uint64(j)
			args := distexchange.RegisterPodArgs{
				OwnerWebID: fmt.Sprintf("https://flood%d-%d.example/profile#me", k, nonce),
				Location:   fmt.Sprintf("https://flood%d-%d.example/", k, nonce),
			}
			tx, err := chain.NewTxPriced(key, nonce, w.d.DEAddr, "registerPod", args, distexchange.DefaultGasLimit, 1)
			if err != nil {
				return "err", expectation(op, "build flood tx: %v", err)
			}
			batch = append(batch, tx)
		}
		for _, v := range w.d.Network.SubmitEverywhereVerdicts(batch) {
			if v.Admitted() {
				admitted++
			} else {
				rejected++
			}
		}
	}
	if rejected == 0 {
		return "unbounded", expectation(op, "10x-capacity flood fully admitted: admission is unbounded")
	}
	if pending := w.d.Network.PendingTxs(); pending > floodPoolCap {
		return "overflow", expectation(op, "pool holds %d txs after flood, capacity %d", pending, floodPoolCap)
	}

	// The starvation probe: an honest settlement at the default gas
	// price must displace cheap flood traffic and commit promptly.
	probe, err := w.dupTx("floodprobe")
	if err != nil {
		return "err", expectation(op, "build probe tx: %v", err)
	}
	if vs := w.d.Network.SubmitEverywhereVerdicts([]*chain.Tx{probe}); !vs[0].Admitted() {
		return "starved", expectation(op, "adequately-priced settlement rejected mid-flood: %v", vs[0].Err)
	}
	w.dupNonce++
	probeHash := probe.Hash()
	blocks := 0
	for k := 1; k <= floodBlocksBound && blocks == 0; k++ {
		b, err := w.d.SealBlock()
		if err != nil {
			return "err", expectation(op, "seal mid-flood: %v", err)
		}
		for _, tx := range b.Txs {
			if tx.Hash() == probeHash {
				blocks = k
				break
			}
		}
	}
	w.floodEpisodes = append(w.floodEpisodes, floodEpisode{step: stepIdx, blocks: blocks, bound: floodBlocksBound})

	// Drain the admitted cheap backlog so the world settles (a block
	// holds far more than the pool capacity, so a couple of seals do).
	for range 8 {
		if w.d.Network.PendingTxs() == 0 {
			break
		}
		if _, err := w.d.SealBlock(); err != nil {
			return "err", expectation(op, "seal draining flood backlog: %v", err)
		}
	}
	return fmt.Sprintf("tx-flood-contained admitted=%d rejected=%d blocks=%d", admitted, rejected, blocks), nil
}

// dupTx builds the next registerPod transaction of the synthetic fault
// sender.
func (w *World) dupTx(tag string) (*chain.Tx, error) {
	args := distexchange.RegisterPodArgs{
		OwnerWebID: fmt.Sprintf("https://%s-%d.example/profile#me", tag, w.dupNonce),
		Location:   fmt.Sprintf("https://%s-%d.example/", tag, w.dupNonce),
	}
	return chain.NewTx(w.dupKey, w.dupNonce, w.d.DEAddr, "registerPod", args, distexchange.DefaultGasLimit)
}

// quiesceChain waits (wall-clock bounded) for in-flight block broadcasts
// to land on every live node. The pull-in oracle submits evidence from
// its own goroutine, and a round's closure becomes visible on the
// receipt node before the sealing broadcast has applied the block to the
// remaining validators — so a step can return while one validator is a
// block behind for a few microseconds. Invariants must only judge the
// settled state. The spin uses the wall clock and leaves no mark on the
// trace.
func (w *World) quiesceChain() {
	//repolint:ignore determinism wall-clock settle spin; bounds real goroutines and leaves no mark on the trace
	deadline := time.Now().Add(5 * time.Second)
	//repolint:ignore determinism wall-clock settle spin; bounds real goroutines and leaves no mark on the trace
	for !w.chainSettled() && time.Now().Before(deadline) {
		//repolint:ignore determinism wall-clock settle spin; bounds real goroutines and leaves no mark on the trace
		time.Sleep(200 * time.Microsecond)
	}
}

// chainSettled reports whether every live, reachable validator agrees on
// the head and no mempool holds queued transactions. Partitioned
// minority validators are excluded: they lag by design until the heal.
func (w *World) chainSettled() bool {
	var ref cryptoutil.Hash
	first := true
	for i, n := range w.d.Nodes {
		if n == nil || w.d.ValidatorDown(i) || w.d.ValidatorPartitioned(i) {
			continue
		}
		h := n.Head().Hash()
		if first {
			ref, first = h, false
		} else if h != ref {
			return false
		}
	}
	return w.d.Network.PendingTxs() == 0
}

// liveHeight reads the live cluster's chain height.
func (w *World) liveHeight() uint64 {
	if n := w.d.LiveNode(); n != nil {
		return n.Height()
	}
	return 0
}

// droppingTransport performs the request (the server observes it) but
// loses the response — the "response dropped on the wire" fault.
type droppingTransport struct{}

func (droppingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(r)
	if err == nil {
		resp.Body.Close()
	}
	return nil, fmt.Errorf("scenario: injected network drop")
}
