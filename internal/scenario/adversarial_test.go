package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestScenarioAdversarialMinimal is the hand-written regression matrix
// for the adversarial op repertoire: one minimal plan per op, each
// asserting the exact outcome label the system must produce — an
// equivocating proposer is rejected with evidence, each invalid-block
// dimension draws its own distinct rejection, a partition heals into
// convergence, a credential replay dies at the pod door, and a nonce
// flood starves nobody. The committed files under repros/ mirror these
// plans for out-of-process replay.
func TestScenarioAdversarialMinimal(t *testing.T) {
	cases := []struct {
		name       string
		validators int
		plan       []Step
		// outcomes[i] is the required prefix of step i's outcome label.
		outcomes []string
	}{
		{
			name: "equivocation-rejected",
			plan: []Step{{Op: OpEquivocate}}, // B=0: gossip the sibling to every live validator
			outcomes: []string{
				"equivocation-rejected h=1 targets=3",
			},
		},
		{
			name: "equivocation-subset",
			plan: []Step{{Op: OpEquivocate, B: 2}}, // bitmask 010: one peer subset
			outcomes: []string{
				"equivocation-rejected h=1 targets=1",
			},
		},
		{
			name: "invalid-block-each-dimension",
			plan: []Step{
				{Op: OpInvalidBlock, Arg: 0},
				{Op: OpInvalidBlock, Arg: 1},
				{Op: OpInvalidBlock, Arg: 2},
			},
			outcomes: []string{
				"invalid-state-root-rejected",
				"invalid-signature-rejected",
				"invalid-gas-rejected",
			},
		},
		{
			name:       "partition-heal-converges",
			validators: 5,
			plan: []Step{
				{Op: OpPartition, Arg: 1}, // minority of 2 out of 5
				{Op: OpSealEmpty},         // quorum cell seals while split
				{Op: OpSealEmpty},
				{Op: OpHeal},
				{Op: OpSealEmpty}, // whole cluster seals after the heal
			},
			outcomes: []string{
				"partitioned minority=2",
				"ok",
				"ok",
				"healed synced=",
				"ok",
			},
		},
		{
			name: "credential-replay-rejected",
			plan: []Step{
				{Op: OpAddOwner},
				{Op: OpAddConsumer},
				{Op: OpAddConsumer}, // the thief for the stolen-cert leg
				{Op: OpPublish, Arg: 3},
				{Op: OpPublish}, // the other resource for the cross-IRI leg
				{Op: OpGrant},
				{Op: OpCredentialReplay},
			},
			outcomes: []string{
				"ok", "ok", "ok", "ok ret=3d", "ok ret=0d", "ok",
				"cred-replay-rejected",
			},
		},
		{
			name: "nonce-flood-contained",
			plan: []Step{
				{Op: OpAddOwner},
				{Op: OpNonceFlood},
			},
			outcomes: []string{
				"ok",
				"nonce-flood-contained n=24",
			},
		},
		{
			name: "tx-flood-contained",
			plan: []Step{{Op: OpTxFlood}},
			outcomes: []string{
				// 8 senders x 80 cheap txs against a 64-slot pool with a
				// 16-tx sender quota: exactly the capacity is admitted, the
				// rest is shed, and the priced probe commits in one block.
				"tx-flood-contained admitted=64 rejected=576 blocks=1",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := New(Config{Seed: 1, Validators: tc.validators}).RunPlan(tc.plan)
			if res.Failure != nil {
				t.Fatalf("plan failed: %s\ntrace:\n%s", res.Failure, res.Trace())
			}
			if len(res.Results) != len(tc.outcomes) {
				t.Fatalf("got %d step results, want %d:\n%s", len(res.Results), len(tc.outcomes), res.Trace())
			}
			for i, want := range tc.outcomes {
				if got := res.Results[i].Outcome; !strings.HasPrefix(got, want) {
					t.Fatalf("step %d (%s): outcome %q, want prefix %q", i, res.Plan[i].Op, got, want)
				}
			}
		})
	}
}

// TestScenarioAdversarialGenerated: generated plans reach every new
// adversarial op organically within a handful of seeds, and such runs
// hold all thirteen invariants.
func TestScenarioAdversarialGenerated(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 60
	}
	wanted := map[string]bool{
		"equivocation-rejected": false,
		"invalid-":              false,
		"partitioned minority=": false,
		"healed synced=":        false,
		"cred-replay-rejected":  false,
		"nonce-flood-contained": false,
		"tx-flood-contained":    false,
	}
	for seed := int64(1); seed <= 8; seed++ {
		res := New(Config{Seed: seed, Steps: steps}).Run()
		if res.Failure != nil {
			t.Fatalf("seed %d failed: %s\ntrace:\n%s", seed, res.Failure, res.Trace())
		}
		trace := res.Trace()
		done := true
		for marker := range wanted {
			if strings.Contains(trace, marker) {
				wanted[marker] = true
			}
			done = done && wanted[marker]
		}
		if done {
			return
		}
	}
	for marker, hit := range wanted {
		if !hit {
			t.Errorf("no generated plan in 8 seeds produced a %q outcome", marker)
		}
	}
}

// TestScenarioAdversarialThroughput guards the cost of the two
// adversarial invariants: running the full twelve-invariant suite must
// keep the steps/s of a mixed plan within 25% of the ten-invariant
// honest suite (duration at most 4/3 of the honest run). Both suites
// replay the identical plan; best-of-3 absorbs scheduler noise.
func TestScenarioAdversarialThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const seed, steps = 7, 40
	honest := DefaultInvariants()[:10]
	full := DefaultInvariants()

	timeSuite := func(inv []Invariant) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			res := New(Config{Seed: seed, Steps: steps, Invariants: inv}).Run()
			elapsed := time.Since(start)
			if res.Failure != nil {
				t.Fatalf("run with %d invariants failed: %s\ntrace:\n%s", len(inv), res.Failure, res.Trace())
			}
			if elapsed < best {
				best = elapsed
			}
		}
		return best
	}

	honestBest := timeSuite(honest)
	fullBest := timeSuite(full)
	limit := honestBest + honestBest/3
	t.Logf("honest suite: %v, full suite: %v (limit %v)", honestBest, fullBest, limit)
	if fullBest > limit {
		t.Fatalf("adversarial invariants cost too much: full suite %v vs honest %v (steps/s dropped below 75%%)",
			fullBest, honestBest)
	}
}
