package scenario

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/solid"
)

// Invariant is a system-wide predicate over live deployment state plus
// the scenario model. Check returns nil when the invariant holds.
type Invariant struct {
	Name  string
	Check func(w *World) error
}

// DefaultInvariants returns the engine's standard invariant suite.
func DefaultInvariants() []Invariant {
	return []Invariant{
		{"funds-conservation", checkFundsConservation},
		{"nonce-monotonicity", checkNonceMonotonicity},
		{"head-agreement", checkHeadAgreement},
		{"gas-ledger", checkGasLedger},
		{"acl-isolation", checkACLIsolation},
		{"published-immutability", checkPublishedImmutability},
		{"policy-consistency", checkPolicyConsistency},
		{"retention-enforcement", checkRetentionEnforcement},
		{"honest-compliance", checkHonestCompliance},
		{"recovery-equivalence", checkRecoveryEquivalence},
		// The adversarial invariants stay last so DefaultInvariants()[:10]
		// remains the honest-path suite (the adversarial-throughput guard
		// compares against exactly that prefix).
		{"no-equivocation-accepted", checkNoEquivocationAccepted},
		{"partition-convergence", checkPartitionConvergence},
		{"starvation-freedom", checkStarvationFreedom},
	}
}

// checkStarvationFreedom: priced admission never starves honest
// traffic — for every injected transaction flood, the adequately-priced
// settlement probe committed within the episode's sealed-block bound,
// and no live mempool backlog ever exceeds the configured capacity
// (overload is shed at admission, not absorbed as unbounded growth).
func checkStarvationFreedom(w *World) error {
	for _, ep := range w.floodEpisodes {
		if ep.blocks == 0 || ep.blocks > ep.bound {
			return fmt.Errorf("flood at step %d: adequately-priced settlement not committed within %d blocks",
				ep.step, ep.bound)
		}
	}
	if pending := w.d.Network.PendingTxs(); pending > floodPoolCap {
		return fmt.Errorf("mempool backlog %d exceeds configured capacity %d", pending, floodPoolCap)
	}
	return nil
}

// checkNoEquivocationAccepted: no honest node ever commits an
// equivocator's second block — for every injected double-seal, each live
// validator's chain holds the honestly committed block at the contested
// height (never the forged sibling), and every targeted validator
// surfaces matching evidence of the attack. A crash-restarted target is
// excused from the evidence obligation (its RAM is legitimately gone;
// the world prunes it) but never from the chain-content obligation.
func checkNoEquivocationAccepted(w *World) error {
	for ai, att := range w.equivAttempts {
		for i, n := range w.d.Nodes {
			if n == nil || w.d.ValidatorDown(i) {
				continue
			}
			b := n.BlockByNumber(att.height)
			if b == nil {
				continue // lagging behind the contested height (partition minority)
			}
			switch h := b.Hash(); {
			case h == att.forged:
				return fmt.Errorf("attempt %d: validator %d committed the forged block at height %d",
					ai, i, att.height)
			case h != att.committed:
				return fmt.Errorf("attempt %d: validator %d holds unexpected block %s at height %d",
					ai, i, h.Short(), att.height)
			}
		}
		for t := range att.targets {
			n := w.d.Nodes[t]
			if n == nil || w.d.ValidatorDown(t) {
				continue // frozen or gone; re-judged once it is back
			}
			found := false
			for _, ev := range n.EquivocationEvidence() {
				if ev.Height == att.height && ev.OfferedHash == att.forged {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("attempt %d: validator %d holds no evidence for the double-seal at height %d",
					ai, t, att.height)
			}
		}
	}
	return nil
}

// checkPartitionConvergence: partitions never cost committed blocks.
// While split, every isolated validator's chain is a strict prefix of
// the quorum chain (the minority cannot seal, so it can never fork);
// and across every heal, each validator's pre-heal head remains
// canonical forever — convergence only ever extends chains, it never
// rolls one back.
func checkPartitionConvergence(w *World) error {
	ref := w.d.LiveNode()
	if ref == nil {
		return errors.New("no live node")
	}
	for i, n := range w.d.Nodes {
		if n == nil || w.d.ValidatorDown(i) || !w.d.ValidatorPartitioned(i) {
			continue
		}
		head := n.Head()
		qb := ref.BlockByNumber(head.Header.Number)
		if qb == nil || qb.Hash() != head.Hash() {
			return fmt.Errorf("partitioned validator %d head (height %d) is not on the quorum chain",
				i, head.Header.Number)
		}
	}
	for _, mark := range w.healedHeads {
		b := ref.BlockByNumber(mark.height)
		if b == nil {
			return fmt.Errorf("pre-heal head at height %d rolled back (chain now at %d)",
				mark.height, ref.Height())
		}
		if b.Hash() != mark.hash {
			return fmt.Errorf("pre-heal head at height %d replaced: %s != %s",
				mark.height, b.Hash().Short(), mark.hash.Short())
		}
	}
	return nil
}

// checkRecoveryEquivalence: durability is lossless — every live
// validator's in-memory state reproduces the root its own head block
// committed, and every validator that has ever been restarted from disk
// stands at the live cluster's head with an identical state root. A
// recovery that dropped, duplicated, or reordered as much as one state
// delta shows up here as a root mismatch.
//
// Because scenario worlds are always durable, every step drives the
// overlay commit path (copy-on-write execution, off-lock binary WAL
// append, background snapshots), so this invariant doubles as the
// system-wide differential check that the overlay replay and the
// recovered replay agree; chain.TestDifferentialOverlayVsCloneReplay
// pins the same property against the historical Clone() path directly.
func checkRecoveryEquivalence(w *World) error {
	ref := w.d.LiveNode()
	if ref == nil {
		return errors.New("no live node")
	}
	refHead := ref.Head()
	for i, n := range w.d.Nodes {
		if n == nil || w.d.ValidatorDown(i) {
			continue
		}
		head := n.Head()
		if root := n.State().Root(); root != head.Header.StateRoot {
			return fmt.Errorf("validator %d: live state root %s != committed head root %s (height %d)",
				i, root.Short(), head.Header.StateRoot.Short(), head.Header.Number)
		}
	}
	for i := range w.restarted {
		n := w.d.Nodes[i]
		if n == nil || w.d.ValidatorDown(i) || w.d.ValidatorPartitioned(i) {
			continue // re-crashed, re-failed, or cut off since: frozen by design
		}
		if got := n.Head().Hash(); got != refHead.Hash() {
			return fmt.Errorf("restarted validator %d head %s diverges from live head %s",
				i, got.Short(), refHead.Hash().Short())
		}
		if got := n.State().Root(); got != refHead.Header.StateRoot {
			return fmt.Errorf("restarted validator %d state root %s != live root %s",
				i, got.Short(), refHead.Header.StateRoot.Short())
		}
	}
	return nil
}

// checkFundsConservation: the market mints and burns nothing — every fee
// ever paid is either still held as revenue or was credited to an owner.
func checkFundsConservation(w *World) error {
	feesPaid, earned, revenue := w.d.Market.Totals()
	if feesPaid != earned+revenue {
		return fmt.Errorf("fees paid %d != earned %d + revenue %d", feesPaid, earned, revenue)
	}
	return nil
}

// checkNonceMonotonicity: per-sender nonces across the committed chain
// are gapless and strictly increasing from 0, and the node's committed
// nonce bookkeeping matches the ledger. A replayed transaction that
// executed twice shows up as a repeated nonce here.
func checkNonceMonotonicity(w *World) error {
	n := w.d.LiveNode()
	if n == nil {
		return errors.New("no live node")
	}
	next := make(map[cryptoutil.Address]uint64)
	height := n.Height()
	for h := uint64(1); h <= height; h++ {
		b := n.BlockByNumber(h)
		if b == nil {
			return fmt.Errorf("block %d missing below height %d", h, height)
		}
		for _, tx := range b.Txs {
			if tx.Nonce != next[tx.From] {
				return fmt.Errorf("block %d: sender %s nonce %d, want %d",
					h, tx.From.Short(), tx.Nonce, next[tx.From])
			}
			next[tx.From]++
		}
	}
	for addr, want := range next {
		if got := n.CommittedNonce(addr); got != want {
			return fmt.Errorf("sender %s: committed nonce %d, ledger says %d", addr.Short(), got, want)
		}
	}
	return nil
}

// checkHeadAgreement: every live validator agrees on the chain tip.
// Partitioned minority validators are exempt while the split lasts —
// they stall at their pre-split head by design (partition-convergence
// separately holds that stalled head to be a quorum-chain prefix), and
// rejoin this check the moment the partition heals.
func checkHeadAgreement(w *World) error {
	var refIdx = -1
	var ref cryptoutil.Hash
	var refHeight uint64
	for i, n := range w.d.Nodes {
		if w.d.ValidatorDown(i) || w.d.ValidatorPartitioned(i) {
			continue
		}
		head := n.Head()
		if refIdx < 0 {
			refIdx, ref, refHeight = i, head.Hash(), head.Header.Number
			continue
		}
		if head.Hash() != ref || head.Header.Number != refHeight {
			return fmt.Errorf("validator %d head (height %d) disagrees with validator %d (height %d)",
				i, head.Header.Number, refIdx, refHeight)
		}
	}
	return nil
}

// checkGasLedger: each live node's cost ledger equals the gas recorded
// in its committed receipts — gas is accounted exactly once per
// transaction, whether the node sealed, validated, or synced the block.
func checkGasLedger(w *World) error {
	for i, n := range w.d.Nodes {
		if w.d.ValidatorDown(i) {
			continue
		}
		var fromReceipts uint64
		for h := uint64(1); h <= n.Height(); h++ {
			b := n.BlockByNumber(h)
			if b == nil {
				continue
			}
			for _, r := range b.Receipts {
				fromReceipts += r.GasUsed
			}
		}
		if ledger := n.Costs().TotalSpent(); ledger != fromReceipts {
			return fmt.Errorf("validator %d: cost ledger %d != receipts total %d", i, ledger, fromReceipts)
		}
	}
	return nil
}

// checkACLIsolation: a consumer is authorized on a resource iff some
// grant step granted it — never through another consumer's grant, and a
// given grant is never silently revoked by a later one.
func checkACLIsolation(w *World) error {
	for ri, res := range w.resources {
		pod := w.owners[res.ownerIdx].o.Manager.Pod()
		for ci, consumer := range w.consumers {
			err := pod.Authorize(consumer.c.WebID, res.path, solid.ModeRead)
			granted := res.isGranted(ci)
			if granted && err != nil {
				return fmt.Errorf("resource %d: granted consumer %s denied (gen %d): %v",
					ri, consumer.name, pod.ACLGeneration(), err)
			}
			if !granted && err == nil {
				return fmt.Errorf("resource %d: ungranted consumer %s authorized (gen %d)",
					ri, consumer.name, pod.ACLGeneration())
			}
		}
	}
	return nil
}

// checkPublishedImmutability: the bytes a pod serves for an
// ever-published resource are exactly the bytes published.
func checkPublishedImmutability(w *World) error {
	for ri, res := range w.resources {
		owner := w.owners[res.ownerIdx]
		got, err := owner.o.Manager.Pod().Get(owner.o.WebID, res.path)
		if err != nil {
			return fmt.Errorf("resource %d (%s) unreadable: %v", ri, res.path, err)
		}
		if sha256.Sum256(got.Data) != res.sum {
			return fmt.Errorf("resource %d (%s): published bytes changed", ri, res.path)
		}
	}
	return nil
}

// checkPolicyConsistency: the chain's resource record, the pod manager's
// local view, and every TEE-held copy agree on the current policy
// version and withdrawal status.
func checkPolicyConsistency(w *World) error {
	for ri, res := range w.resources {
		owner := w.owners[res.ownerIdx]
		rec, err := owner.o.Manager.DE().GetResource(res.iri)
		if err != nil {
			return fmt.Errorf("resource %d: chain record unreadable: %v", ri, err)
		}
		if rec.Policy.Version != res.version {
			return fmt.Errorf("resource %d: chain policy v%d, model v%d", ri, rec.Policy.Version, res.version)
		}
		if rec.Withdrawn != res.withdrawn {
			return fmt.Errorf("resource %d: chain withdrawn=%v, model %v", ri, rec.Withdrawn, res.withdrawn)
		}
		if res.published {
			local, err := owner.o.Manager.PublishedPolicy(res.path)
			if err != nil {
				return fmt.Errorf("resource %d: pod manager lost the policy: %v", ri, err)
			}
			if local.Version != res.version {
				return fmt.Errorf("resource %d: pod manager policy v%d, chain v%d", ri, local.Version, res.version)
			}
		}
		for _, ci := range res.granted {
			cp := res.copies[ci]
			if cp == nil || !cp.stored {
				continue
			}
			if got := w.consumers[ci].c.App.PolicyVersion(res.iri); got != res.version {
				return fmt.Errorf("resource %d: consumer %s enforces policy v%d, current is v%d",
					ri, w.consumers[ci].name, got, res.version)
			}
		}
	}
	return nil
}

// checkRetentionEnforcement: a TEE holds a live copy exactly when the
// model says the retention deadline still allows it — deletion
// obligations fire across clock skips, and no copy is deleted early.
func checkRetentionEnforcement(w *World) error {
	for ri, res := range w.resources {
		for _, ci := range res.granted {
			cp := res.copies[ci]
			if cp == nil || !cp.stored {
				continue
			}
			holds := w.consumers[ci].c.App.Holds(res.iri)
			if holds != cp.live {
				return fmt.Errorf("resource %d: consumer %s holds=%v, model live=%v (deadline %v, now %v)",
					ri, w.consumers[ci].name, holds, cp.live, cp.deadline, w.now())
			}
		}
	}
	return nil
}

// checkHonestCompliance: monitoring never records a violation against a
// resource whose holders all met their deletion obligations on time.
// (Holders flagged everLate — e.g. a retention window tightened to below
// a copy's age — are legitimately reported and excluded here.)
func checkHonestCompliance(w *World) error {
	for ri, res := range w.resources {
		anyLate := false
		for _, ci := range res.granted {
			if cp := res.copies[ci]; cp != nil && cp.everLate {
				anyLate = true
				break
			}
		}
		if anyLate {
			continue
		}
		owner := w.owners[res.ownerIdx]
		violations, err := owner.o.Manager.DE().GetViolations(res.iri)
		if err != nil {
			return fmt.Errorf("resource %d: violations unreadable: %v", ri, err)
		}
		if len(violations) > 0 {
			return fmt.Errorf("resource %d: %d violations recorded against compliant holders (first: %s)",
				ri, len(violations), violations[0].Kind)
		}
	}
	return nil
}
