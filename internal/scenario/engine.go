package scenario

import (
	"fmt"
	"strings"
	"time"
)

// Failure kinds.
const (
	// FailInvariant: a system-wide invariant predicate returned false.
	FailInvariant = "invariant"
	// FailExpectation: a step's observed outcome contradicted the model
	// (e.g. an ungranted consumer obtained a resource).
	FailExpectation = "expectation"
	// FailError: the engine itself could not run (boot failure).
	FailError = "error"
)

// Failure describes why a run stopped.
type Failure struct {
	// Step is the index (into the executed plan) of the violating step.
	Step int
	// Kind is one of the Fail* constants.
	Kind string
	// Name is the violated invariant's name, or the step op for
	// expectation failures.
	Name string
	// Detail is a human-readable explanation. It may embed run-specific
	// data (addresses, URLs) and is excluded from reproducibility
	// comparisons.
	Detail string
}

func (f *Failure) String() string {
	return fmt.Sprintf("%s %q at step %d: %s", f.Kind, f.Name, f.Step, f.Detail)
}

// sameFailure reports whether two failures are the same violation class
// (shrinking preserves the violation, not its incidental detail).
func sameFailure(a, b *Failure) bool {
	return a != nil && b != nil && a.Kind == b.Kind && a.Name == b.Name
}

// StepResult pairs an executed step with its normalized outcome.
type StepResult struct {
	Step    Step
	Outcome string
}

// RunResult is one engine run: the plan, per-step outcomes up to the
// stopping point, and the failure (nil for a clean run).
type RunResult struct {
	Seed    int64
	Plan    []Step
	Results []StepResult
	Failure *Failure
	// InvariantChecks counts invariant-suite evaluations performed.
	InvariantChecks int
	// ShrinkRuns counts the replays spent shrinking (0 when the run was
	// clean or shrinking was not requested).
	ShrinkRuns int
	// MetricsDump is a Prometheus-exposition snapshot of the failing
	// world's instruments, captured at the failure instant (empty for
	// clean runs and boot errors). Like Failure.Detail it embeds
	// run-specific values — latencies, counts — and is excluded from
	// reproducibility comparisons; WriteRepro persists it as a sibling
	// <name>.metrics.txt artifact.
	MetricsDump string
}

// Trace renders the run as a reproducible text trace: same seed, same
// bytes. Failure detail is appended after the step log and is the only
// part allowed to vary between runs.
func (r *RunResult) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario seed=%d steps=%d\n", r.Seed, len(r.Plan))
	for i, sr := range r.Results {
		fmt.Fprintf(&b, "%4d %s -> %s\n", i, sr.Step, sr.Outcome)
	}
	if r.Failure != nil {
		fmt.Fprintf(&b, "FAIL %s\n", r.Failure)
	} else {
		fmt.Fprintf(&b, "PASS invariant-checks=%d\n", r.InvariantChecks)
	}
	return b.String()
}

// ReproCommand returns the command line that replays this run.
func (r *RunResult) ReproCommand() string {
	return fmt.Sprintf("go test ./internal/scenario/ -run TestScenarioSeedMatrix -scenario.seed %d -scenario.steps %d",
		r.Seed, len(r.Plan))
}

// Config parameterizes an Engine.
type Config struct {
	// Seed drives plan generation and nothing else; equal seeds give
	// bit-for-bit equal traces.
	Seed int64
	// Steps is the plan length (default 40).
	Steps int
	// Validators is the PoA cluster size (default 3; min 2 so node
	// faults have a target while validator 0 hosts the oracles).
	Validators int
	// CheckEvery runs the invariant suite every n steps (default 1:
	// after every step). The suite always runs once more at quiescence.
	CheckEvery int
	// MaxOwners / MaxConsumers / MaxResources bound the populations.
	MaxOwners, MaxConsumers, MaxResources int
	// MonitorGrace bounds how long a monitoring round may take to close.
	MonitorGrace time.Duration
	// Sabotage admits the OpSabotage step into generated plans (test
	// hook: a sabotaging plan must fail published-immutability).
	Sabotage bool
	// MaxShrinkRuns bounds the replays RunShrunk spends minimizing a
	// failing plan (default 120).
	MaxShrinkRuns int
	// ExecWorkers bounds each validator's parallel transaction scheduler
	// (0 = GOMAXPROCS, 1 = the exact serial legacy path). Traces are
	// bit-identical for every setting; the differential scenario tests
	// assert exactly that.
	ExecWorkers int
	// DisableEquivocationGuard boots the deployment with equivocation
	// rejection sabotaged on every validator (test hook: the soak must
	// catch the resulting silent double-seal acceptance through the
	// no-equivocation-accepted invariant, in a shrunk trace).
	DisableEquivocationGuard bool
	// Invariants overrides the invariant suite (default
	// DefaultInvariants).
	Invariants []Invariant
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 40
	}
	if c.Validators < 2 {
		c.Validators = 3
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 1
	}
	if c.MaxOwners <= 0 {
		c.MaxOwners = 6
	}
	if c.MaxConsumers <= 0 {
		c.MaxConsumers = 10
	}
	if c.MaxResources <= 0 {
		c.MaxResources = 16
	}
	if c.MonitorGrace <= 0 {
		c.MonitorGrace = 10 * time.Second
	}
	if c.MaxShrinkRuns <= 0 {
		c.MaxShrinkRuns = 120
	}
	if c.Invariants == nil {
		c.Invariants = DefaultInvariants()
	}
	return c
}

// Engine runs seeded end-to-end scenarios.
type Engine struct {
	cfg Config
}

// New builds an engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Run generates the seed's plan and executes it.
func (e *Engine) Run() *RunResult {
	return e.RunPlan(GeneratePlan(e.cfg.Seed, e.cfg.Steps, e.cfg.Sabotage))
}

// RunPlan executes an explicit plan on a fresh deployment, stopping at
// the first failure. The invariant suite runs every CheckEvery steps and
// once at quiescence.
func (e *Engine) RunPlan(plan []Step) *RunResult {
	res := &RunResult{Seed: e.cfg.Seed, Plan: plan}
	w, err := newWorld(e.cfg)
	if err != nil {
		res.Failure = &Failure{Kind: FailError, Name: "boot", Detail: err.Error()}
		return res
	}
	defer w.close()

	check := func(step int) *Failure {
		w.quiesceChain()
		res.InvariantChecks++
		for _, inv := range e.cfg.Invariants {
			if err := inv.Check(w); err != nil {
				// Attach a cross-layer state snapshot: violation reports
				// should carry the system context they were judged in.
				snap := w.d.TakeSnapshot()
				return &Failure{Step: step, Kind: FailInvariant, Name: inv.Name,
					Detail: fmt.Sprintf("%v [height=%d stateKeys=%d gas=%d pending=%d revenue=%d oracleIn=%d oracleOut=%d]",
						err, snap.Height, snap.StateKeys, snap.TotalGas, snap.PendingTxs,
						snap.MarketRevenue, snap.OracleIn, snap.OracleOut)}
			}
		}
		return nil
	}

	for i, st := range plan {
		outcome, fail := w.apply(i, st)
		res.Results = append(res.Results, StepResult{Step: st, Outcome: outcome})
		if fail != nil {
			fail.Step = i
			res.Failure = fail
			res.MetricsDump = w.metricsDump()
			return res
		}
		// Flush any timers the step armed at an already-passed deadline,
		// then settle the model before checking.
		w.d.Clock.Advance(0)
		w.expireCopies()
		if (i+1)%e.cfg.CheckEvery == 0 {
			if f := check(i); f != nil {
				res.Failure = f
				res.MetricsDump = w.metricsDump()
				return res
			}
		}
	}
	if f := check(len(plan) - 1); f != nil {
		res.Failure = f
		res.MetricsDump = w.metricsDump()
	}
	return res
}

// RunShrunk runs the seed's plan and, on failure, shrinks the failing
// plan to a minimal reproducing trace (ddmin-style chunk removal,
// bounded by MaxShrinkRuns replays). The returned result is the smallest
// failing run found; its ShrinkRuns field records the replay budget
// spent.
func (e *Engine) RunShrunk() *RunResult {
	return e.shrinkResult(e.Run())
}

// shrinkResult minimizes the failing plan of an already-executed run
// (no-op for clean runs and boot errors).
func (e *Engine) shrinkResult(first *RunResult) *RunResult {
	if first.Failure == nil || first.Failure.Kind == FailError {
		return first
	}
	target := first.Failure
	runs := 0

	tryPlan := func(cand []Step) *RunResult {
		runs++
		return e.RunPlan(cand)
	}

	// Everything after the violating step is irrelevant.
	cur := append([]Step(nil), first.Plan[:target.Step+1]...)
	best := tryPlan(cur)
	if !sameFailure(best.Failure, target) {
		// Should not happen for a deterministic violation; report the
		// original run rather than a misleading "shrunk" one.
		first.ShrinkRuns = runs
		return first
	}

	partners := pairPartners(cur)
	for chunk := len(cur) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start+chunk <= len(cur) && runs < e.cfg.MaxShrinkRuns; {
			cand := removeChunk(cur, partners, start, chunk)
			r := tryPlan(cand)
			if sameFailure(r.Failure, target) {
				cur = cand
				partners = pairPartners(cur)
				best = r
				removedAny = true
				// keep start: the next chunk slid into place
			} else {
				start += chunk
			}
		}
		if runs >= e.cfg.MaxShrinkRuns {
			break
		}
		if chunk == 1 && !removedAny {
			break
		}
		if chunk > 1 {
			chunk /= 2
		}
	}
	best.ShrinkRuns = runs
	return best
}

// pairPartners maps each step index to the index of its paired
// counterpart, or -1 when unpaired: an OpHeal closes the nearest open
// OpPartition before it; an OpRecoverNode the nearest open OpFailNode.
// Pairing is at the op level — selectors resolve modulo the live
// population at execution time, so "which validator" is a property of
// the run, not the plan text; what shrinking must preserve is the
// structural balance (no heal without a split, no stranded partition or
// failure whose repair was deleted out from under it).
func pairPartners(plan []Step) []int {
	partners := make([]int, len(plan))
	for i := range partners {
		partners[i] = -1
	}
	var partitions, fails []int
	for i, st := range plan {
		switch st.Op {
		case OpPartition:
			partitions = append(partitions, i)
		case OpHeal:
			if n := len(partitions); n > 0 {
				j := partitions[n-1]
				partitions = partitions[:n-1]
				partners[i], partners[j] = j, i
			}
		case OpFailNode:
			fails = append(fails, i)
		case OpRecoverNode:
			if n := len(fails); n > 0 {
				j := fails[n-1]
				fails = fails[:n-1]
				partners[i], partners[j] = j, i
			}
		}
	}
	return partners
}

// removeChunk builds the shrink candidate that drops plan[start:start+chunk]
// along with the out-of-range pair partner of every dropped step, so
// paired ops leave or stay together and shrunk traces remain well-formed.
func removeChunk(plan []Step, partners []int, start, chunk int) []Step {
	drop := make([]bool, len(plan))
	for i := start; i < start+chunk && i < len(plan); i++ {
		drop[i] = true
		if p := partners[i]; p >= 0 {
			drop[p] = true
		}
	}
	out := make([]Step, 0, len(plan))
	for i, st := range plan {
		if !drop[i] {
			out = append(out, st)
		}
	}
	return out
}
