package scenario

import (
	"flag"
	"fmt"
	"strings"
	"testing"
)

var (
	seedFlag  = flag.Int64("scenario.seed", 1, "seed for TestScenarioSeedMatrix")
	stepsFlag = flag.Int("scenario.steps", 40, "plan length for TestScenarioSeedMatrix")
)

// TestScenarioSeedMatrix is the CI entry point: the workflow runs it
// under -race once per seed in a fixed matrix. Locally it runs the
// default seed; any seed is replayable with
// -scenario.seed N -scenario.steps M.
func TestScenarioSeedMatrix(t *testing.T) {
	// RunShrunk is free on clean runs and reports a minimal trace when a
	// regression trips an invariant in CI.
	res := New(Config{Seed: *seedFlag, Steps: *stepsFlag}).RunShrunk()
	if res.Failure != nil {
		t.Fatalf("scenario failed: %s\nrepro: %s\nshrunk trace (%d replays):\n%s",
			res.Failure, res.ReproCommand(), res.ShrinkRuns, res.Trace())
	}
	if res.InvariantChecks < len(res.Plan) {
		t.Fatalf("only %d invariant checks over %d steps", res.InvariantChecks, len(res.Plan))
	}
}

// TestScenarioTable drives table-driven smoke scenarios across seeds and
// configurations; each case is a full multi-agent workload with faults
// and per-step invariant checking.
func TestScenarioTable(t *testing.T) {
	steps := 30
	if testing.Short() {
		steps = 12
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"baseline", Config{Seed: 2, Steps: steps}},
		{"two-validators", Config{Seed: 5, Steps: steps, Validators: 2}},
		{"sparse-checks", Config{Seed: 9, Steps: steps, CheckEvery: 5}},
		{"dense-population", Config{Seed: 13, Steps: steps, MaxOwners: 2, MaxConsumers: 3, MaxResources: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := New(tc.cfg).Run()
			if res.Failure != nil {
				t.Fatalf("scenario failed: %s\ntrace:\n%s", res.Failure, res.Trace())
			}
		})
	}
}

// TestScenarioSeedSweep runs many seeds with long plans — the widest
// single-process net for cross-layer regressions (it is what catches,
// e.g., a GrantAccess that clobbers earlier consumers' ACL grants).
func TestScenarioSeedSweep(t *testing.T) {
	seeds, steps := int64(12), 120
	if testing.Short() {
		seeds, steps = 4, 40
	}
	for seed := int64(1); seed <= seeds; seed++ {
		res := New(Config{Seed: seed, Steps: steps}).RunShrunk()
		if res.Failure != nil {
			t.Errorf("seed %d failed: %s\nrepro: %s\nshrunk trace:\n%s", seed, res.Failure, res.ReproCommand(), res.Trace())
		}
	}
}

// TestScenarioCrashRestart is the durability acceptance scenario: a
// validator is hard-crashed mid-workload (its in-memory node dropped)
// and restarted from its on-disk store — once cleanly and once with its
// WAL torn mid-record — while the workload keeps flowing. All ten
// invariants (recovery-equivalence included) must hold after every
// step, and the torn-WAL restart must recover to the last complete
// block with the difference re-synced from peers.
func TestScenarioCrashRestart(t *testing.T) {
	plan := []Step{
		{Op: OpAddOwner},
		{Op: OpAddConsumer},
		{Op: OpPublish, Arg: 3},
		{Op: OpGrant},
		{Op: OpAccess},
		{Op: OpCrashRestart, A: 0, Arg: 2}, // clean crash: WAL intact
		{Op: OpPublish, Arg: 0},
		{Op: OpGrant, C: 1},
		{Op: OpAccess, C: 1},
		{Op: OpUse},
		{Op: OpCrashRestart, A: 1, Arg: 7}, // torn crash: WAL cut mid-record
		{Op: OpModifyPolicy, Arg: 5},
		{Op: OpMonitor},
		{Op: OpSettle},
		{Op: OpSealEmpty},
	}
	res := New(Config{Seed: 21, Validators: 3}).RunPlan(plan)
	if res.Failure != nil {
		t.Fatalf("crash-restart scenario failed: %s\ntrace:\n%s", res.Failure, res.Trace())
	}
	trace := res.Trace()
	if !strings.Contains(trace, "restarted-") {
		t.Fatalf("no validator was crash-restarted:\n%s", trace)
	}
	if !strings.Contains(trace, "torn=true") {
		t.Fatalf("the torn-WAL restart did not run:\n%s", trace)
	}
	if !strings.Contains(trace, "torn=false") {
		t.Fatalf("the clean restart did not run:\n%s", trace)
	}
	if res.InvariantChecks < len(plan) {
		t.Fatalf("only %d invariant checks over %d steps", res.InvariantChecks, len(plan))
	}
}

// TestScenarioCrashRestartGenerated: generated plans reach the
// crash-restart fault organically, and such runs hold all invariants.
func TestScenarioCrashRestartGenerated(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 60
	}
	found := false
	for seed := int64(1); seed <= 6 && !found; seed++ {
		res := New(Config{Seed: seed, Steps: steps}).Run()
		if res.Failure != nil {
			t.Fatalf("seed %d failed: %s\ntrace:\n%s", seed, res.Failure, res.Trace())
		}
		found = strings.Contains(res.Trace(), "restarted-")
	}
	if !found {
		t.Fatal("no generated plan reached a crash-restart in 6 seeds")
	}
}

// TestScenarioReproducible proves the acceptance property: a fixed seed
// yields a bit-for-bit identical step trace and invariant results across
// two independent runs (fresh deployments, fresh key material, fresh
// HTTP ports — none of it may leak into the trace).
func TestScenarioReproducible(t *testing.T) {
	cfg := Config{Seed: 11, Steps: 30}
	a := New(cfg).Run()
	b := New(cfg).Run()
	if a.Failure != nil {
		t.Fatalf("run failed: %s\ntrace:\n%s", a.Failure, a.Trace())
	}
	if ta, tb := a.Trace(), b.Trace(); ta != tb {
		t.Fatalf("traces differ across runs of seed %d:\n--- run A ---\n%s\n--- run B ---\n%s", cfg.Seed, ta, tb)
	}
}

// TestScenarioSabotageShrinks proves the engine detects a deliberately
// broken invariant and shrinks the failing plan to a minimal reproducing
// trace of at most 20 steps.
func TestScenarioSabotageShrinks(t *testing.T) {
	eng := New(Config{Seed: 3, Steps: 30, Sabotage: true, MaxShrinkRuns: 80})
	res := eng.RunShrunk()
	if res.Failure == nil {
		t.Fatalf("sabotaged run reported no violation:\n%s", res.Trace())
	}
	if res.Failure.Kind != FailInvariant || res.Failure.Name != "published-immutability" {
		t.Fatalf("want published-immutability invariant failure, got %s", res.Failure)
	}
	if len(res.Plan) > 20 {
		t.Fatalf("shrunk trace has %d steps, want <= 20:\n%s", len(res.Plan), res.Trace())
	}
	t.Logf("shrunk to %d steps in %d replays:\n%s", len(res.Plan), res.ShrinkRuns, res.Trace())
}

// TestScenarioCustomInvariantViolation shows the extension point: a
// user-supplied invariant that cannot hold fails the run with a shrunk
// trace, without any sabotage step.
func TestScenarioCustomInvariantViolation(t *testing.T) {
	broken := append(DefaultInvariants(), Invariant{
		Name: "no-owners-ever",
		Check: func(w *World) error {
			if len(w.owners) > 0 {
				return fmt.Errorf("an owner exists")
			}
			return nil
		},
	})
	eng := New(Config{Seed: 4, Steps: 12, MaxShrinkRuns: 40, Invariants: broken})
	res := eng.RunShrunk()
	if res.Failure == nil || res.Failure.Name != "no-owners-ever" {
		t.Fatalf("want no-owners-ever failure, got %v", res.Failure)
	}
	// Minimal repro is the mandatory first add-owner step alone.
	if len(res.Plan) > 2 {
		t.Fatalf("shrunk trace has %d steps, want <= 2:\n%s", len(res.Plan), res.Trace())
	}
}

// TestGeneratePlanDeterministic pins generator behaviour: equal seeds
// give equal plans, differing seeds differ, and sabotage-enabled plans
// always contain a sabotage step.
func TestGeneratePlanDeterministic(t *testing.T) {
	a := GeneratePlan(42, 60, false)
	b := GeneratePlan(42, 60, false)
	if len(a) != 60 || len(b) != 60 {
		t.Fatalf("want 60 steps, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := GeneratePlan(43, 60, false)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 generated identical plans")
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		plan := GeneratePlan(seed, 10, true)
		found := false
		for _, st := range plan {
			if st.Op == OpSabotage {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %d: sabotage-enabled plan contains no sabotage step", seed)
		}
	}
}

// TestDecodePlanNeverSabotages pins the fuzz decoder's safety property.
func TestDecodePlanNeverSabotages(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	for _, st := range DecodePlan(data, 64) {
		if st.Op == OpSabotage {
			t.Fatal("DecodePlan produced a sabotage step")
		}
		if st.Op >= numOps {
			t.Fatalf("DecodePlan produced out-of-range op %d", st.Op)
		}
	}
	if got := len(DecodePlan(data, 8)); got != 8 {
		t.Fatalf("maxSteps not honoured: got %d", got)
	}
	if got := len(DecodePlan([]byte{1, 2, 3}, 8)); got != 0 {
		t.Fatalf("short input should decode to no steps, got %d", got)
	}
}
