package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var (
	soakFor   = flag.Duration("soak", 0, "wall-clock budget for TestScenarioSoak (0 skips)")
	soakSteps = flag.Int("soak.steps", 60, "plan length per soak run")
	soakSeed  = flag.Int64("soak.seed", 0, "first soak seed (0 derives one from the clock)")
	soakOut   = flag.String("soak.out", "repros", "directory receiving shrunk failure repros")
)

// TestScenarioSoak is the nightly CI entry point: it explores fresh
// seeds for the given wall-clock budget, shrinks any failure to a
// minimal trace, and writes that trace as a committable repro file.
//
//	go test -race -run TestScenarioSoak ./internal/scenario/ -soak 60s
//
// A clean soak proves nothing forever — it spends a budget. A failing
// soak leaves an artifact: the repro file replays the violation without
// the soak, and belongs in repros/ next to the fix.
func TestScenarioSoak(t *testing.T) {
	if *soakFor <= 0 {
		t.Skip("soak disabled; enable with -soak 60s")
	}
	seed := *soakSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	deadline := time.Now().Add(*soakFor)
	runs := 0
	for time.Now().Before(deadline) {
		cfg := Config{Seed: seed, Steps: *soakSteps}
		res := New(cfg).RunShrunk()
		runs++
		if res.Failure != nil {
			path, werr := WriteRepro(*soakOut, fmt.Sprintf("soak-seed%d", seed), cfg, res)
			if werr != nil {
				t.Errorf("writing repro: %v", werr)
			} else {
				t.Errorf("repro written to %s", path)
			}
			t.Fatalf("soak seed %d failed: %s\nshrunk trace (%d replays):\n%s",
				seed, res.Failure, res.ShrinkRuns, res.Trace())
		}
		seed++
	}
	t.Logf("soak: %d seeds clean in %s (last seed %d)", runs, *soakFor, seed-1)
}

// TestScenarioSoakCatchesDisabledGuard is the soak's acceptance test:
// with equivocation rejection sabotaged on every validator, a short
// seed sweep must catch the silent double-seal acceptance through the
// no-equivocation-accepted invariant, shrink it to at most 3 steps, and
// produce a repro file that round-trips and replays to the same
// failure.
func TestScenarioSoakCatchesDisabledGuard(t *testing.T) {
	var caught *RunResult
	var caughtCfg Config
	for seed := int64(1); seed <= 10 && caught == nil; seed++ {
		cfg := Config{Seed: seed, Steps: 60, DisableEquivocationGuard: true}
		res := New(cfg).RunShrunk()
		if res.Failure != nil {
			caught, caughtCfg = res, cfg
		}
	}
	if caught == nil {
		t.Fatal("10 sabotaged seeds ran clean: the soak cannot catch a disabled equivocation guard")
	}
	if caught.Failure.Kind != FailInvariant || caught.Failure.Name != "no-equivocation-accepted" {
		t.Fatalf("want no-equivocation-accepted invariant failure, got %s", caught.Failure)
	}
	if len(caught.Plan) > 3 {
		t.Fatalf("shrunk trace has %d steps, want <= 3:\n%s", len(caught.Plan), caught.Trace())
	}
	t.Logf("caught in %d steps after %d shrink replays:\n%s", len(caught.Plan), caught.ShrinkRuns, caught.Trace())

	// A failing run carries the world's instrument readings.
	if caught.MetricsDump == "" {
		t.Fatal("failing run has no metrics dump")
	}

	// The written repro must decode back and replay to the same violation.
	dir := t.TempDir()
	path, err := WriteRepro(dir, "disabled-guard", caughtCfg, caught)
	if err != nil {
		t.Fatalf("write repro: %v", err)
	}
	// The metrics snapshot lands beside it, as valid exposition text
	// with the chain's instruments present.
	dump, err := os.ReadFile(filepath.Join(dir, "disabled-guard.metrics.txt"))
	if err != nil {
		t.Fatalf("metrics artifact missing: %v", err)
	}
	for _, want := range []string{"chain_blocks_committed_total", "chain_mempool_admitted_total"} {
		if !strings.Contains(string(dump), want) {
			t.Fatalf("metrics artifact missing series %s:\n%s", want, dump)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read repro back: %v", err)
	}
	replay, err := ReplayRepro(data)
	if err != nil {
		t.Fatalf("replay repro: %v", err)
	}
	if !sameFailure(replay.Failure, caught.Failure) {
		t.Fatalf("repro replay diverged: want %s, got %v", caught.Failure, replay.Failure)
	}
}

// TestScenarioRepros replays every committed repro file. Files under
// repros/ are regression plans: each pinned a violation once (or was
// written by hand as the minimal exercise of an adversarial op) and
// must PASS forever after.
func TestScenarioRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("repros", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed repro files under repros/")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ReplayRepro(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if res.Failure != nil {
				t.Fatalf("committed repro regressed: %s\ntrace:\n%s", res.Failure, res.Trace())
			}
		})
	}
}

// TestReproRoundTrip pins the repro codec: encode → decode is lossless
// for the plan and the replay-shaping config facets, and malformed
// inputs are rejected with errors rather than silently skipped.
func TestReproRoundTrip(t *testing.T) {
	cfg := Config{Validators: 5, DisableEquivocationGuard: true}
	res := &RunResult{
		Seed: 42,
		Plan: []Step{
			{Op: OpAddOwner, A: 1, B: 2, C: 3, Arg: 4},
			{Op: OpPartition, Arg: 1},
			{Op: OpEquivocate, B: 5},
			{Op: OpHeal},
		},
		Failure: &Failure{Step: 3, Kind: FailInvariant, Name: "partition-convergence"},
	}
	gotCfg, gotPlan, err := DecodeRepro(EncodeRepro(cfg, res))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotCfg.Validators != 5 || !gotCfg.DisableEquivocationGuard {
		t.Fatalf("config facets lost: %+v", gotCfg)
	}
	if len(gotPlan) != len(res.Plan) {
		t.Fatalf("plan length %d, want %d", len(gotPlan), len(res.Plan))
	}
	for i := range gotPlan {
		if gotPlan[i] != res.Plan[i] {
			t.Fatalf("step %d: got %v, want %v", i, gotPlan[i], res.Plan[i])
		}
	}

	bad := []struct{ name, text string }{
		{"unknown-op", "validators=3\nstep frobnicate 0 0 0 0\n"},
		{"unknown-key", "frobs=3\nstep access 0 0 0 0\n"},
		{"bad-operand", "validators=3\nstep access 0 x 0 0\n"},
		{"short-step", "validators=3\nstep access 0 0\n"},
		{"bad-validators", "validators=one\nstep access 0 0 0 0\n"},
		{"bad-guard", "equivocation-guard=maybe\nstep access 0 0 0 0\n"},
		{"sabotage-excluded", "validators=3\nstep sabotage 0 0 0 0\n"},
		{"empty", "# nothing\n"},
	}
	for _, tc := range bad {
		if _, _, err := DecodeRepro([]byte(tc.text)); err == nil {
			t.Errorf("%s: decode accepted malformed input", tc.name)
		}
	}
}
