// Package obs is the repo's zero-dependency observability layer:
// lock-free counters and gauges, log-bucketed latency histograms with
// p50/p99/p999 quantile extraction, a labeled registry with Prometheus
// text exposition and JSON dumps, a bounded tx-lifecycle span recorder,
// and an HTTP debug mux bundling /metrics, /debug/vars, /debug/traces,
// and net/http/pprof.
//
// # No-op by default
//
// Every instrument is safe to use as a nil pointer: a nil *Counter,
// *Gauge, *Histogram, or *Tracer records nothing and costs a single
// branch. A component therefore holds plain instrument fields and
// records unconditionally; whether anything is measured is decided
// once, at wiring time, by whether a *Registry was supplied. This is
// what keeps recording off the table for determinism arguments — a
// deployment without a registry executes exactly the instructions it
// executed before this package existed, minus a few nil checks.
//
// # Determinism contract
//
// obs is the ONLY non-test package allowed to read the wall clock on
// behalf of replay-path code (internal/lint's determinism analyzer pins
// the replay packages; internal/lint's obs confinement test pins that
// this package would be flagged if it were ever added to them).
// Instrumented packages never call time.Now themselves: they obtain a
// Timer from a histogram (h.Start()/t.Stop()), and the clock read
// happens here — or not at all when the histogram is nil. Recorded
// values flow only into metrics, never into state, hashes, or codec
// output, so traces and blocks stay bit-identical with metrics on.
//
// # Concurrency
//
// Counters, gauges, and histogram buckets are single atomic words;
// recording never takes a lock. Histogram snapshots (quantiles, sums)
// are taken without synchronization against writers and are therefore
// weakly consistent — fine for monitoring, not for accounting. The
// registry locks only on instrument registration and on export, and the
// tracer takes one short mutex per recorded stage.
package obs
