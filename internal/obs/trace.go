package obs

import (
	"sync"
	"time"
)

// Lifecycle stage names recorded by the chain layer (exported here so
// the instrumentation sites and the dashboards agree on spelling).
const (
	StageSubmit     = "submit"      // entered admission (SubmitTx/SubmitBatch)
	StageAdmit      = "admit"       // accepted into the mempool
	StageExec       = "exec"        // executed during sealing/validation
	StageMerge      = "merge"       // optimistic child merged conflict-free
	StageSerialTail = "serial-tail" // re-executed on the serial tail
	StageCommit     = "commit"      // block durably committed
	StageReceipt    = "receipt"     // receipt delivered to a waiter
	StageEvict      = "evict"       // evicted from a full mempool by a better-priced tx
	StageReplace    = "replace"     // superseded by a replace-by-fee bump
)

// Span is one recorded lifecycle stage: its name and the offset from
// the trace's first stage.
type Span struct {
	Stage string        `json:"stage"`
	At    time.Duration `json:"at_ns"`
}

// TxTrace is the recorded lifecycle of one transaction.
type TxTrace struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	Spans []Span    `json:"spans"`
}

// Tracer records transaction lifecycles with bounded memory: at most
// activeCap in-flight traces (admissions beyond that are dropped and
// counted) and a ring buffer of the last ringCap completed traces. A
// nil *Tracer is a no-op; callers on hot paths should skip even the ID
// rendering when the tracer is nil.
type Tracer struct {
	mu        sync.Mutex
	active    map[string]*TxTrace // guarded by mu
	ring      []*TxTrace          // guarded by mu; ring buffer of completed traces
	next      int                 // guarded by mu; next ring slot
	dropped   uint64              // guarded by mu
	activeCap int
}

// defaultActiveFactor bounds in-flight traces at this multiple of the
// completed-ring capacity.
const defaultActiveFactor = 4

// NewTracer builds a tracer keeping the last ringCap completed traces
// (default 256 when ringCap <= 0).
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = 256
	}
	return &Tracer{
		active:    make(map[string]*TxTrace),
		ring:      make([]*TxTrace, ringCap),
		activeCap: ringCap * defaultActiveFactor,
	}
}

// Begin opens a trace for id with the given first stage. Re-beginning
// an open id is a no-op (the first admission wins); beginning past the
// in-flight cap drops the trace and counts it.
func (t *Tracer) Begin(id, stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, open := t.active[id]; open {
		return
	}
	if len(t.active) >= t.activeCap {
		t.dropped++
		return
	}
	t.active[id] = &TxTrace{ID: id, Start: now, Spans: []Span{{Stage: stage}}}
}

// Mark appends a stage to an open trace (no-op for unknown ids, e.g.
// when the Begin was dropped at the cap).
func (t *Tracer) Mark(id, stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.active[id]
	if !ok {
		return
	}
	tr.Spans = append(tr.Spans, Span{Stage: stage, At: now.Sub(tr.Start)})
}

// Finish appends the final stage and moves the trace into the
// completed ring.
func (t *Tracer) Finish(id, stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.active[id]
	if !ok {
		return
	}
	delete(t.active, id)
	tr.Spans = append(tr.Spans, Span{Stage: stage, At: now.Sub(tr.Start)})
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
}

// Recent returns the completed traces, newest first.
func (t *Tracer) Recent() []TxTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TxTrace, 0, len(t.ring))
	for i := range t.ring {
		slot := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if t.ring[slot] == nil {
			break
		}
		tr := t.ring[slot]
		out = append(out, TxTrace{ID: tr.ID, Start: tr.Start, Spans: append([]Span(nil), tr.Spans...)})
	}
	return out
}

// Active reports the number of in-flight traces.
func (t *Tracer) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Dropped reports traces discarded at the in-flight cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
