package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition bytes for a registry
// covering all three instrument kinds, labels, and escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("chain_mempool_admitted_total", "txs admitted to the mempool").Add(7)
	r.Gauge("chain_mempool_depth", "current mempool depth").Set(3)
	h := r.Histogram("chain_seal_duration_ns", "block seal latency")
	h.Observe(5) // exact bucket: every quantile reports 5
	r.Counter("solid_requests_total", "requests by route class", L("route", "resource"), L("method", "GET")).Inc()
	r.Counter("solid_requests_total", "requests by route class", L("route", "resource"), L("method", "PUT")).Add(2)
	r.Gauge("weird", "help with \\ and\nnewline", L("v", "a\"b\\c\nd")).Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP chain_mempool_admitted_total txs admitted to the mempool
# TYPE chain_mempool_admitted_total counter
chain_mempool_admitted_total 7
# HELP chain_mempool_depth current mempool depth
# TYPE chain_mempool_depth gauge
chain_mempool_depth 3
# HELP chain_seal_duration_ns block seal latency
# TYPE chain_seal_duration_ns summary
chain_seal_duration_ns{quantile="0.5"} 5
chain_seal_duration_ns{quantile="0.99"} 5
chain_seal_duration_ns{quantile="0.999"} 5
chain_seal_duration_ns_sum 5
chain_seal_duration_ns_count 1
# HELP solid_requests_total requests by route class
# TYPE solid_requests_total counter
solid_requests_total{route="resource",method="GET"} 1
solid_requests_total{route="resource",method="PUT"} 2
# HELP weird help with \\ and\nnewline
# TYPE weird gauge
weird{v="a\"b\\c\nd"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusStableOrder proves the output is independent of
// registration order.
func TestPrometheusStableOrder(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("zz_total", "").Inc()
	a.Gauge("aa", "").Set(1)
	b.Gauge("aa", "").Set(1)
	b.Counter("zz_total", "").Inc()
	var sa, sb strings.Builder
	if err := a.WritePrometheus(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Fatalf("order-dependent output:\n%s\nvs\n%s", sa.String(), sb.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(4)
	r.Histogram("h_ns", "").Observe(100)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var series []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &series); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, b.String())
	}
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	if series[0]["name"] != "c_total" || series[0]["value"] != float64(4) {
		t.Fatalf("counter series = %v", series[0])
	}
	if series[1]["name"] != "h_ns" || series[1]["count"] != float64(1) {
		t.Fatalf("histogram series = %v", series[1])
	}
}

func TestWriteVarsIsValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Inc()
	var b strings.Builder
	if err := r.WriteVars(&b); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("WriteVars produced invalid JSON: %v\n%s", err, b.String())
	}
	// The expvar package auto-publishes these two in every process.
	if _, ok := obj["memstats"]; !ok {
		t.Fatal("memstats missing from /debug/vars output")
	}
	if _, ok := obj["metrics"]; !ok {
		t.Fatal("metrics key missing from /debug/vars output")
	}
}

// seriesCount counts exposition samples the way the CI smoke test does:
// non-comment, non-blank lines.
func seriesCount(exposition string) int {
	n := 0
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n++
	}
	return n
}

func TestSeriesCountHelper(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "x").Inc()
	r.Histogram("b_ns", "y").Observe(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// 1 counter sample + 3 quantiles + _sum + _count = 6.
	if got := seriesCount(b.String()); got != 6 {
		t.Fatalf("seriesCount = %d, want 6", got)
	}
}
