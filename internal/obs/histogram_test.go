package obs

import (
	"testing"
	"time"
)

func TestBucketGeometry(t *testing.T) {
	// Every value must land in a bucket whose max is >= the value and
	// within the promised 12.5% relative error.
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 4095, 4096, 1 << 20, 1<<30 + 12345, HistogramMax - 1} {
		i := bucketIndex(v)
		maxv := bucketMax(i)
		if maxv < v {
			t.Fatalf("bucketMax(%d)=%d < value %d", i, maxv, v)
		}
		if v >= histSubCount && float64(maxv-v) > float64(v)/float64(histSubCount)+1 {
			t.Fatalf("value %d: bucket max %d exceeds relative error bound", v, maxv)
		}
	}
	// Bucket maxes must be strictly increasing (buckets partition the range).
	prev := bucketMax(0)
	for i := 1; i < histBuckets; i++ {
		m := bucketMax(i)
		if m <= prev {
			t.Fatalf("bucketMax not increasing at %d: %d <= %d", i, m, prev)
		}
		prev = m
	}
	if bucketIndex(HistogramMax) != histBuckets-1 {
		t.Fatal("HistogramMax not in overflow bucket")
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	// Every quantile of a single sample is that sample (up to bucket
	// resolution: 1000 lands in [961, 1023]).
	want := float64(bucketMax(bucketIndex(1000)))
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if h.Count() != 1 || h.Sum() != 1000 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(int64(HistogramMax))     // exactly 2^40: overflow
	h.Observe(int64(HistogramMax * 8)) // way past
	if got := h.Quantile(0.5); got != float64(HistogramMax) {
		t.Fatalf("overflow quantile = %v, want %v", got, float64(HistogramMax))
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10000; v++ {
		h.Observe(v)
	}
	// p50 should be ~5000, within the 12.5% bucket error (erring high).
	p50 := h.Quantile(0.5)
	if p50 < 5000 || p50 > 5000*1.125+1 {
		t.Fatalf("p50 = %v, want within [5000, 5626]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 9900 || p99 > 9900*1.125+1 {
		t.Fatalf("p99 = %v, want within [9900, 11138]", p99)
	}
	if h.Quantile(1) < 10000 {
		t.Fatalf("p100 = %v < max sample", h.Quantile(1))
	}
	// Out-of-range q clamps instead of misbehaving.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
}

func TestObserveNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%d", h.Count(), h.Sum())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("quantile after clamped negative = %v", got)
	}
}

func TestTimerRecords(t *testing.T) {
	var h Histogram
	tm := h.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	if h.Count() != 1 {
		t.Fatalf("timer did not record: count=%d", h.Count())
	}
	if h.Sum() < uint64(time.Millisecond) {
		t.Fatalf("timer recorded %dns, want >= 1ms", h.Sum())
	}
}
