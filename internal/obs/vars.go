package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
)

// varsSeries is one series in the JSON dump.
type varsSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  int64             `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Sum    uint64            `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P99    float64           `json:"p99,omitempty"`
	P999   float64           `json:"p999,omitempty"`
}

// snapshotSeries renders the registry as JSON-friendly series records,
// in the same stable order as the Prometheus exposition.
func (r *Registry) snapshotSeries() []varsSeries {
	if r == nil {
		return nil
	}
	entries := r.sortedEntries()
	out := make([]varsSeries, 0, len(entries))
	for _, e := range entries {
		s := varsSeries{Name: e.name, Kind: e.kind.String()}
		if len(e.labels) > 0 {
			s.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case KindCounter:
			s.Value = int64(e.counter.Value())
		case KindGauge:
			s.Value = e.gauge.Value()
		default:
			s.Count = e.hist.Count()
			s.Sum = e.hist.Sum()
			s.P50 = e.hist.Quantile(0.5)
			s.P99 = e.hist.Quantile(0.99)
			s.P999 = e.hist.Quantile(0.999)
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON renders the registry as a JSON array of series objects
// (counters/gauges carry value; histograms carry count, sum, and
// p50/p99/p999).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshotSeries())
}

// WriteVars renders an expvar-compatible JSON object: every published
// expvar (the package auto-publishes cmdline and memstats) plus a
// "metrics" key holding the registry's series. It reimplements
// expvar.Handler's body so mounting it never calls expvar.Publish —
// publishing is process-global and would collide across servers.
func (r *Registry) WriteVars(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{"); err != nil {
		return err
	}
	first := true
	var loopErr error
	expvar.Do(func(kv expvar.KeyValue) {
		if loopErr != nil {
			return
		}
		if !first {
			if _, err := fmt.Fprintf(w, ","); err != nil {
				loopErr = err
				return
			}
		}
		first = false
		// kv.Value.String() is already JSON per the expvar contract.
		if _, err := fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value); err != nil {
			loopErr = err
		}
	})
	if loopErr != nil {
		return loopErr
	}
	series, err := json.Marshal(r.snapshotSeries())
	if err != nil {
		return err
	}
	if !first {
		if _, err := fmt.Fprintf(w, ","); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n%q: %s", "metrics", series); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\n}\n")
	return err
}
