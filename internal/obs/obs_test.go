package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(42)
	h.Start().Stop()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	var tr *Tracer
	tr.Begin("x", StageSubmit)
	tr.Mark("x", StageExec)
	tr.Finish("x", StageCommit)
	if tr.Recent() != nil || tr.Active() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var r *Registry
	if r.Counter("a", "") != nil || r.Gauge("b", "") != nil || r.Histogram("c", "") != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	if r.Len() != 0 {
		t.Fatal("nil registry has entries")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "requests", L("route", "GET"))
	b := r.Counter("requests_total", "requests", L("route", "GET"))
	if a != b {
		t.Fatal("same series registered twice returned distinct counters")
	}
	c := r.Counter("requests_total", "requests", L("route", "PUT"))
	if a == c {
		t.Fatal("distinct label sets shared a counter")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a series under another kind did not panic")
		}
	}()
	r.Gauge("requests_total", "requests", L("route", "GET"))
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	g := r.Gauge("g", "")
	g.Set(5)
	g.Add(-8)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Value())
	}
}

// TestConcurrentRecording hammers every instrument kind from many
// goroutines; run under -race this is the data-race proof, and the
// final counts prove no increment was lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_ns", "")
	tr := NewTracer(64)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := range workers {
		go func() {
			defer wg.Done()
			for i := range perWorker {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				if i%100 == 0 {
					id := string(rune('a'+w)) + "-" + string(rune('0'+i/100%10))
					tr.Begin(id, StageSubmit)
					tr.Mark(id, StageExec)
					tr.Finish(id, StageCommit)
				}
				// Concurrent readers must see weakly consistent, never
				// torn, snapshots.
				_ = h.Quantile(0.99)
				_ = c.Value()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter lost increments: %d != %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge lost adds: %d != %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram lost observations: %d != %d", got, workers*perWorker)
	}
}

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(2)
	tr.Begin("tx1", StageSubmit)
	tr.Mark("tx1", StageAdmit)
	tr.Finish("tx1", StageCommit)
	tr.Begin("tx2", StageSubmit)
	tr.Finish("tx2", StageCommit)
	tr.Begin("tx3", StageSubmit)
	tr.Finish("tx3", StageCommit)

	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring kept %d traces, want 2", len(recent))
	}
	if recent[0].ID != "tx3" || recent[1].ID != "tx2" {
		t.Fatalf("recent order = %s,%s; want tx3,tx2", recent[0].ID, recent[1].ID)
	}
	if got := recent[1].Spans; len(got) != 2 || got[0].Stage != StageSubmit || got[1].Stage != StageCommit {
		t.Fatalf("tx2 spans = %+v", got)
	}
	if tr.Active() != 0 {
		t.Fatalf("active = %d after all finished", tr.Active())
	}
	// Marks for unknown (never begun / already finished) ids are no-ops.
	tr.Mark("tx1", StageReceipt)
	tr.Finish("ghost", StageCommit)
	if len(tr.Recent()) != 2 {
		t.Fatal("no-op marks changed the ring")
	}
}

func TestTracerInFlightCap(t *testing.T) {
	tr := NewTracer(1) // activeCap = 4
	for i := range 10 {
		tr.Begin(string(rune('a'+i)), StageSubmit)
	}
	if tr.Active() != 4 {
		t.Fatalf("active = %d, want cap 4", tr.Active())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// Re-beginning an open id neither duplicates nor drops.
	tr.Begin("a", StageSubmit)
	if tr.Active() != 4 || tr.Dropped() != 6 {
		t.Fatal("re-Begin of an open id changed accounting")
	}
}
