package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension on a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates instrument types in exports.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered instrument.
type entry struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// key renders the entry's identity (name plus labels in given order).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Registry holds named instruments and renders them for export. A nil
// *Registry hands out nil instruments, which record nothing — the
// default no-op wiring.
type Registry struct {
	mu      sync.Mutex
	entries []*entry          // guarded by mu
	index   map[string]*entry // guarded by mu
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

// register resolves or creates the entry for a series. Registering the
// same (name, labels) twice returns the same instrument; re-registering
// under a different kind panics (it is a programming error, not a
// runtime condition).
func (r *Registry) register(name, help string, kind Kind, labels []Label) *entry {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: series %s registered as %s and %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, help: help, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case KindCounter:
		e.counter = new(Counter)
	case KindGauge:
		e.gauge = new(Gauge)
	case KindHistogram:
		e.hist = new(Histogram)
	}
	r.entries = append(r.entries, e)
	r.index[key] = e
	return e
}

// Counter registers (or resolves) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, labels).counter
}

// Gauge registers (or resolves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, labels).gauge
}

// Histogram registers (or resolves) a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram, labels).hist
}

// Len reports the number of registered series (0 for nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// sortedEntries snapshots the entry list ordered by name then labels,
// the stable order every export format uses.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	out := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey("", out[i].labels) < seriesKey("", out[j].labels)
	})
	return out
}
