package obs

import "testing"

// The no-op vs live benchmarks below are the evidence for the
// "recording costs a handful of ns" contract: the nil-receiver path
// must be a branch and a return, and the live path a few atomic adds.

func BenchmarkCounterNoop(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for b.Loop() {
		c.Inc()
	}
}

func BenchmarkCounterLive(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for b.Loop() {
		c.Inc()
	}
}

func BenchmarkHistogramNoop(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramLive(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTimerNoop(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for b.Loop() {
		h.Start().Stop()
	}
}

func BenchmarkTimerLive(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for b.Loop() {
		h.Start().Stop()
	}
}

func BenchmarkHistogramLiveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			h.Observe(v)
			v++
		}
	})
}
