package obs

import "sync/atomic"

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter is a no-op (see the package docs).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are not representable by design; use a
// Gauge for values that go down).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move in both directions.
// The zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add applies a delta.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
