package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exported quantiles for histogram series (the HDR-style trio the load
// harness and the ablation docs track).
var exportQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4), sorted by name so output is
// stable for golden tests and diffs. Counters and gauges render as one
// sample each; histograms render as summaries: one sample per exported
// quantile plus <name>_sum and <name>_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries := r.sortedEntries()
	var lastFamily string
	for _, e := range entries {
		if e.name != lastFamily {
			lastFamily = e.name
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, escapeHelp(e.help)); err != nil {
					return err
				}
			}
			typ := e.kind.String()
			if e.kind == KindHistogram {
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typ); err != nil {
				return err
			}
		}
		if err := writeSamples(w, e); err != nil {
			return err
		}
	}
	return nil
}

func writeSamples(w io.Writer, e *entry) error {
	switch e.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.name, renderLabels(e.labels), e.counter.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.name, renderLabels(e.labels), e.gauge.Value())
		return err
	default:
		for _, eq := range exportQuantiles {
			labels := append(append([]Label(nil), e.labels...), Label{Key: "quantile", Value: eq.label})
			v := strconv.FormatFloat(e.hist.Quantile(eq.q), 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", e.name, renderLabels(labels), v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", e.name, renderLabels(e.labels), e.hist.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, renderLabels(e.labels), e.hist.Count())
		return err
	}
}

// renderLabels renders {k="v",...} or "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, quote, and newline in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
