package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-bucketed histogram geometry (HdrHistogram-style): values below
// 2^histSubBits are counted exactly; above that, every power-of-two
// octave is split into histSubCount sub-buckets, bounding the relative
// quantile error at 1/histSubCount (12.5%). Values at or above
// 2^histMaxExp — about 18 minutes when recording nanoseconds — land in
// a single overflow bucket.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	histMaxExp   = 40
	// histBuckets: exact small-value buckets plus histSubCount per
	// octave in [histSubBits, histMaxExp), plus the overflow bucket.
	histBuckets = histSubCount*(histMaxExp-histSubBits+1) + 1
	// HistogramMax is the largest trackable value; Quantile reports it
	// for ranks that land in the overflow bucket.
	HistogramMax = uint64(1) << histMaxExp
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	k := bits.Len64(v) - 1 // v ∈ [2^k, 2^(k+1))
	if k >= histMaxExp {
		return histBuckets - 1
	}
	sub := int((v >> uint(k-histSubBits)) & (histSubCount - 1))
	return histSubCount*(k-histSubBits+1) + sub
}

// bucketMax returns the largest value the bucket holds (inclusive).
func bucketMax(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	if i >= histBuckets-1 {
		return HistogramMax
	}
	k := i/histSubCount + histSubBits - 1
	sub := uint64(i % histSubCount)
	return (histSubCount+sub+1)<<uint(k-histSubBits) - 1
}

// Histogram is a fixed-footprint log-bucketed histogram intended for
// latency in nanoseconds (any non-negative int64 works). Recording is
// three uncontended atomic adds; no allocation, no lock. The zero value
// is ready to use; a nil *Histogram is a no-op.
//
// Count, Sum, and the buckets are updated independently, so snapshots
// taken during concurrent recording are weakly consistent (off by the
// in-flight observations) — the right trade for monitoring data.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bucketIndex(uint64(v))].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// values: the upper bound of the bucket holding the rank-⌈q·count⌉
// observation, so the estimate errs high by at most one sub-bucket
// width (12.5% relative). An empty histogram reports 0; ranks in the
// overflow bucket report HistogramMax.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return float64(bucketMax(i))
		}
	}
	// Writers raced the scan (count advanced past the bucket sums):
	// report the largest non-empty bucket seen.
	return float64(HistogramMax)
}

// Timer measures one interval against a histogram. Obtain with
// Histogram.Start; a Timer from a nil histogram never reads the clock.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins timing an interval. On a nil histogram this is free: no
// clock read happens at either end.
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed nanoseconds. Safe on the zero Timer.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(int64(time.Since(t.start)))
}
