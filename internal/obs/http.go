package obs

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/pprof"
)

// DebugMux bundles the runtime-introspection endpoints both binaries
// mount behind their -debug-addr flag:
//
//	GET /metrics       Prometheus text exposition of the registry
//	GET /debug/vars    expvar-style JSON (cmdline, memstats, metrics)
//	GET /debug/traces  recent tx-lifecycle traces, newest first (JSON)
//	    /debug/pprof/  the net/http/pprof suite (profile, heap, trace...)
//
// The pprof handlers are mounted explicitly on this private mux, never
// on http.DefaultServeMux, so the main API server exposes none of
// them. tracer may be nil (the traces endpoint then serves []).
func DebugMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("obs: /metrics write: %v", err)
		}
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteVars(w); err != nil {
			log.Printf("obs: /debug/vars write: %v", err)
		}
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		traces := tracer.Recent()
		if traces == nil {
			traces = []TxTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traces); err != nil {
			log.Printf("obs: /debug/traces write: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
