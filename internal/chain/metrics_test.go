package chain

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// meteredWorkload is a pre-signed transaction schedule, built once so
// differential runs feed both nodes byte-identical transactions
// (signatures are randomized, so re-signing would change tx roots).
type meteredWorkload struct {
	blocks [][]*Tx // 3 blocks of 8 "set" txs
	gaps   []*Tx   // one nonce-gap reject per block
}

func makeMeteredWorkload(t *testing.T, key *cryptoutil.KeyPair) *meteredWorkload {
	t.Helper()
	wl := &meteredWorkload{}
	nonce := uint64(0)
	for block := range 3 {
		var txs []*Tx
		for i := range 8 {
			tx, err := NewTx(key, nonce, testContractAddr(), "set", setArgs{
				Key:   fmt.Sprintf("k%d-%d", block, i),
				Value: "v",
			}, 200_000)
			if err != nil {
				t.Fatal(err)
			}
			nonce++
			txs = append(txs, tx)
		}
		wl.blocks = append(wl.blocks, txs)
		wl.gaps = append(wl.gaps, mustTx(t, key, nonce+7, testContractAddr(), "x", "y"))
	}
	return wl
}

// buildMeteredChain runs the workload — mixed submissions, parallel
// execution, rejections, duplicates, receipt waits — on a node with the
// given metrics handle and returns the node.
func buildMeteredChain(t *testing.T, key *cryptoutil.KeyPair, wl *meteredWorkload, m *Metrics, execWorkers int) *Node {
	t.Helper()
	clk := simclock.NewSim(chainEpoch)
	node, err := NewNode(Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    testExecutor{},
		Clock:       clk,
		GenesisTime: chainEpoch,
		ExecWorkers: execWorkers,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	for block, txs := range wl.blocks {
		hashes, err := node.SubmitBatch(txs)
		if err != nil {
			t.Fatal(err)
		}
		// Duplicate rebroadcast and a nonce-gap rejection.
		if _, err := node.SubmitTx(txs[0]); err == nil {
			t.Fatal("duplicate accepted")
		}
		if _, err := node.SubmitTx(wl.gaps[block]); err == nil {
			t.Fatal("nonce gap accepted")
		}
		// Register a receipt waiter BEFORE sealing so one transaction per
		// block deterministically exercises the commit→receipt delivery
		// (and its trace stage); the private waiters map tells us when the
		// goroutine has registered.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		waitDone := make(chan error, 1)
		go func() {
			_, err := node.WaitForReceipt(ctx, hashes[0])
			waitDone <- err
		}()
		for registered := false; !registered; {
			node.mu.RLock()
			registered = len(node.waiters[hashes[0]]) > 0
			node.mu.RUnlock()
			if !registered {
				time.Sleep(time.Millisecond)
			}
		}
		clk.Advance(time.Second)
		if _, err := node.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := <-waitDone; err != nil {
			t.Fatal(err)
		}
		cancel()
	}
	return node
}

// TestDifferentialMetricsBitIdentity pins the no-observer-effect
// contract: the same workload on a metered node and a bare node must
// produce bit-identical blocks — hashes, receipt roots, state roots.
func TestDifferentialMetricsBitIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			key := cryptoutil.MustGenerateKey()
			wl := makeMeteredWorkload(t, key)
			reg := obs.NewRegistry()
			metered := buildMeteredChain(t, key, wl, NewMetrics(reg), workers)
			bare := buildMeteredChain(t, key, wl, nil, workers)

			if mh, bh := metered.Height(), bare.Height(); mh != bh {
				t.Fatalf("heights differ: metered %d, bare %d", mh, bh)
			}
			// Signatures are randomized ECDSA, so compare everything the
			// protocol commits to: tx roots, receipt roots, state roots,
			// timestamps, and the per-receipt digests.
			for num := uint64(0); num <= bare.Height(); num++ {
				mh, bh := metered.BlockByNumber(num).Header, bare.BlockByNumber(num).Header
				if mh.TxRoot != bh.TxRoot || mh.ReceiptRoot != bh.ReceiptRoot ||
					mh.StateRoot != bh.StateRoot || !mh.Time.Equal(bh.Time) {
					t.Fatalf("block %d diverges with metrics enabled:\nmetered %+v\nbare    %+v", num, mh, bh)
				}
				mr, br := metered.BlockByNumber(num).Receipts, bare.BlockByNumber(num).Receipts
				if len(mr) != len(br) {
					t.Fatalf("block %d receipt counts differ: %d vs %d", num, len(mr), len(br))
				}
				for i := range mr {
					if mr[i].Digest() != br[i].Digest() {
						t.Fatalf("block %d receipt %d differs:\nmetered %+v\nbare    %+v", num, i, mr[i], br[i])
					}
				}
			}
		})
	}
}

// TestChainMetricsRecorded asserts the instrumented hot paths actually
// move their series.
func TestChainMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	key := cryptoutil.MustGenerateKey()
	buildMeteredChain(t, key, makeMeteredWorkload(t, key), m, 4)

	if got := m.Admitted.Value(); got != 24 {
		t.Fatalf("admitted = %d, want 24", got)
	}
	if m.Duplicates.Value() != 3 {
		t.Fatalf("duplicates = %d, want 3", m.Duplicates.Value())
	}
	if m.RejectedNonce.Value() != 3 {
		t.Fatalf("rejected nonce = %d, want 3", m.RejectedNonce.Value())
	}
	if m.BlocksCommitted.Value() != 3 {
		t.Fatalf("blocks committed = %d, want 3", m.BlocksCommitted.Value())
	}
	if m.BlockTxs.Count() != 3 || m.BlockTxs.Sum() != 24 {
		t.Fatalf("block txs count/sum = %d/%d, want 3/24", m.BlockTxs.Count(), m.BlockTxs.Sum())
	}
	if m.SealDuration.Count() != 3 {
		t.Fatalf("seal durations = %d, want 3", m.SealDuration.Count())
	}
	if m.VerifyLatency.Count() == 0 || m.FoldLatency.Count() != 3 || m.ReceiptWait.Count() != 3 {
		t.Fatalf("latency counts: verify=%d fold=%d wait=%d",
			m.VerifyLatency.Count(), m.FoldLatency.Count(), m.ReceiptWait.Count())
	}
	// 8-tx conflict-free blocks through the parallel scheduler.
	if m.ParallelBlocks.Value() != 3 || m.ExecConflicts.Value() != 0 {
		t.Fatalf("parallel=%d conflicts=%d", m.ParallelBlocks.Value(), m.ExecConflicts.Value())
	}
	if m.ExecWorkers.Value() != 4 {
		t.Fatalf("exec workers = %d, want 4", m.ExecWorkers.Value())
	}
	if m.MempoolDepth.Value() != 0 {
		t.Fatalf("mempool depth = %d after drain", m.MempoolDepth.Value())
	}

	// Every trace must have completed (commit or receipt) — nothing
	// leaks in the active map.
	if m.Tracer.Active() != 0 {
		t.Fatalf("%d traces still active", m.Tracer.Active())
	}
	recent := m.Tracer.Recent()
	if len(recent) != 24 {
		t.Fatalf("completed traces = %d, want 24", len(recent))
	}
	stages := func(tr obs.TxTrace) string {
		var s []string
		for _, sp := range tr.Spans {
			s = append(s, sp.Stage)
		}
		return strings.Join(s, ",")
	}
	receiptTraces := 0
	for _, tr := range recent {
		got := stages(tr)
		switch got {
		case "submit,admit,merge,commit":
		case "submit,admit,merge,commit,receipt":
			receiptTraces++
		default:
			t.Fatalf("trace %s has unexpected stages %q", tr.ID, got)
		}
	}
	if receiptTraces != 3 {
		t.Fatalf("traces through the receipt stage = %d, want 3 (one waited tx per block)", receiptTraces)
	}

	// The registry must render all of it as valid exposition text with
	// enough series for the CI smoke gate.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if n := seriesCountForTest(b.String()); n < 25 {
		t.Fatalf("chain registry renders %d series, want >= 25:\n%s", n, b.String())
	}
}

// seriesCountForTest counts exposition samples (non-comment lines).
func seriesCountForTest(exposition string) int {
	n := 0
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n++
	}
	return n
}
