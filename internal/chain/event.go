package chain

import (
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

// Event is a log entry emitted by a contract during transaction execution.
// Events are the on-chain half of the oracle patterns: off-chain oracle
// components subscribe to them to learn about state changes (push-out),
// and the pull-in oracle answers on-chain requests expressed as events.
type Event struct {
	// Contract is the emitting contract's address.
	Contract cryptoutil.Address
	// Topic names the event type (e.g. "PolicyUpdated").
	Topic string
	// Key is an optional secondary filter (e.g. the resource IRI).
	Key string
	// Data is the JSON-encoded payload.
	Data []byte
	// BlockNumber and TxHash locate the event on the ledger.
	BlockNumber uint64
	TxHash      cryptoutil.Hash
	// Index is the position of the event within its block.
	Index int
}

func (e *Event) digestString() string {
	return fmt.Sprintf("%s|%s|%s|%x|%d|%d", e.Contract, e.Topic, e.Key, e.Data, e.BlockNumber, e.Index)
}

// EventFilter selects events. Zero fields match everything.
type EventFilter struct {
	// Contract restricts to one emitting contract.
	Contract cryptoutil.Address
	// Topic restricts to one topic.
	Topic string
	// Key restricts to one key.
	Key string
	// FromBlock restricts to events at or after this block number.
	FromBlock uint64
}

// Matches reports whether the event passes the filter.
func (f EventFilter) Matches(e *Event) bool {
	if !f.Contract.IsZero() && e.Contract != f.Contract {
		return false
	}
	if f.Topic != "" && e.Topic != f.Topic {
		return false
	}
	if f.Key != "" && e.Key != f.Key {
		return false
	}
	if e.BlockNumber < f.FromBlock {
		return false
	}
	return true
}

// Subscription delivers matching events to a channel until cancelled.
type Subscription struct {
	// C receives matching events. It is closed when the subscription is
	// cancelled.
	C      <-chan Event
	cancel func()
}

// Cancel terminates the subscription and closes C. Cancel is idempotent.
func (s *Subscription) Cancel() { s.cancel() }

// eventFeed fans out committed events to subscribers. Delivery is
// best-effort with a per-subscriber buffer: a subscriber that falls behind
// loses events and the drop is counted (observable via Dropped).
type eventFeed struct {
	mu      sync.Mutex
	nextID  int
	subs    map[int]*feedSub
	dropped uint64
}

type feedSub struct {
	filter EventFilter
	ch     chan Event
	closed bool
}

func newEventFeed() *eventFeed {
	return &eventFeed{subs: make(map[int]*feedSub)}
}

// subscribe registers a subscriber with the given buffer capacity.
func (f *eventFeed) subscribe(filter EventFilter, buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	id := f.nextID
	sub := &feedSub{filter: filter, ch: make(chan Event, buffer)}
	f.subs[id] = sub
	var once sync.Once
	return &Subscription{
		C: sub.ch,
		cancel: func() {
			once.Do(func() {
				f.mu.Lock()
				defer f.mu.Unlock()
				if s, ok := f.subs[id]; ok {
					s.closed = true
					close(s.ch)
					delete(f.subs, id)
				}
			})
		},
	}
}

// publish delivers events to every matching subscriber.
func (f *eventFeed) publish(events []Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ev := range events {
		for _, sub := range f.subs {
			if sub.closed || !sub.filter.Matches(&ev) {
				continue
			}
			select {
			case sub.ch <- ev:
			default:
				f.dropped++
			}
		}
	}
}

// Dropped returns the number of events dropped due to slow subscribers.
func (f *eventFeed) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}
