package chain

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// testExecutor is a minimal Executor for chain tests. It supports:
//
//	"set"   {key, value}: writes value under "<contract>/<key>", emits "Set".
//	"incr"  {key}       : read-modify-write counter at "<contract>/<key>"
//	                      (every incr of one key conflicts with the last).
//	"fail"  {}          : reverts with GasTxBase consumed.
//	"burn"  {amount}    : charges amount gas (tests out-of-gas handling).
//	"get"   {key}       : query-only read returning {"value": ...}.
type testExecutor struct{}

type setArgs struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type burnArgs struct {
	Amount uint64 `json:"amount"`
}

func (testExecutor) ExecuteTx(st StateRW, tx *Tx, bctx BlockContext) *Receipt {
	meter := NewGasMeter(tx.GasLimit)
	r := &Receipt{Status: StatusOK}
	charge := func(amount uint64) bool {
		if err := meter.Charge(amount); err != nil {
			r.Status = StatusReverted
			r.Err = err.Error()
			r.GasUsed = meter.Used()
			return false
		}
		return true
	}
	if !charge(GasTxBase + uint64(len(tx.Args))*GasPerArgByte) {
		return r
	}
	switch tx.Method {
	case "set":
		var args setArgs
		if err := json.Unmarshal(tx.Args, &args); err != nil {
			r.Status = StatusReverted
			r.Err = err.Error()
			r.GasUsed = meter.Used()
			return r
		}
		if !charge(GasStorageSet + uint64(len(args.Value))*GasStoragePerByte) {
			return r
		}
		st.Set(tx.Contract.String()+"/"+args.Key, []byte(args.Value))
		r.Events = append(r.Events, Event{
			Contract: tx.Contract, Topic: "Set", Key: args.Key, Data: []byte(args.Value),
		})
	case "incr":
		var args setArgs
		if err := json.Unmarshal(tx.Args, &args); err != nil {
			r.Status = StatusReverted
			r.Err = err.Error()
			r.GasUsed = meter.Used()
			return r
		}
		if !charge(GasStorageSet) {
			return r
		}
		k := tx.Contract.String() + "/" + args.Key
		count := 0
		if v, ok := st.Get(k); ok {
			count, _ = strconv.Atoi(string(v))
		}
		next := []byte(strconv.Itoa(count + 1))
		st.Set(k, next)
		r.Events = append(r.Events, Event{
			Contract: tx.Contract, Topic: "Incr", Key: args.Key, Data: next,
		})
	case "fail":
		r.Status = StatusReverted
		r.Err = "deliberate failure"
	case "burn":
		var args burnArgs
		_ = json.Unmarshal(tx.Args, &args)
		if !charge(args.Amount) {
			return r
		}
	default:
		r.Status = StatusReverted
		r.Err = fmt.Sprintf("unknown method %q", tx.Method)
	}
	r.GasUsed = meter.Used()
	return r
}

func (testExecutor) Query(st StateRW, contract cryptoutil.Address, method string, args []byte, bctx BlockContext) ([]byte, error) {
	if method != "get" {
		return nil, fmt.Errorf("unknown query %q", method)
	}
	var a setArgs
	if err := json.Unmarshal(args, &a); err != nil {
		return nil, err
	}
	v, ok := st.Get(contract.String() + "/" + a.Key)
	if !ok {
		return nil, fmt.Errorf("key %q not found", a.Key)
	}
	return json.Marshal(map[string]string{"value": string(v)})
}

var chainEpoch = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

// newTestNode builds a single-authority node with a simulated clock.
func newTestNode(tb interface{ Fatal(...any) }) (*Node, *cryptoutil.KeyPair, *simclock.Sim) {
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	node, err := NewNode(Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    testExecutor{},
		Clock:       clk,
		GenesisTime: chainEpoch,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return node, key, clk
}

// mustTx builds a signed "set" transaction.
func mustTx(tb interface{ Fatal(...any) }, key *cryptoutil.KeyPair, nonce uint64, contract cryptoutil.Address, k, v string) *Tx {
	tx, err := NewTx(key, nonce, contract, "set", setArgs{Key: k, Value: v}, 200_000)
	if err != nil {
		tb.Fatal(err)
	}
	return tx
}

// mustTxPriced builds a signed "set" transaction with an explicit
// gas-price bid.
func mustTxPriced(tb interface{ Fatal(...any) }, key *cryptoutil.KeyPair, nonce uint64, contract cryptoutil.Address, k, v string, price uint64) *Tx {
	tx, err := NewTxPriced(key, nonce, contract, "set", setArgs{Key: k, Value: v}, 200_000, price)
	if err != nil {
		tb.Fatal(err)
	}
	return tx
}

// newPoolNode builds a single-authority node with explicit mempool
// admission knobs.
func newPoolNode(tb interface{ Fatal(...any) }, capacity, quota, bump int) (*Node, *cryptoutil.KeyPair, *simclock.Sim) {
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	node, err := NewNode(Config{
		Key:                 key,
		Authorities:         []cryptoutil.Address{key.Address()},
		Executor:            testExecutor{},
		Clock:               clk,
		GenesisTime:         chainEpoch,
		MempoolCapacity:     capacity,
		MaxPendingPerSender: quota,
		PriceBumpPercent:    bump,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return node, key, clk
}

// testContractAddr is an arbitrary contract address for tests.
func testContractAddr() cryptoutil.Address {
	var a cryptoutil.Address
	copy(a[:], strings.Repeat("c", cryptoutil.AddressLen))
	return a
}
