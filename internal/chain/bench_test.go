package chain

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/store"
)

// benchLedger builds a committed state with n seeded keys.
func benchLedger(n int) *State {
	st := NewState()
	for i := range n {
		st.Set(fmt.Sprintf("seed/%07d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	st.DiscardJournal()
	return st
}

// benchBlockTxs signs one block's worth of "set" transactions.
func benchBlockTxs(b *testing.B, key *cryptoutil.KeyPair, count int) []*Tx {
	b.Helper()
	txs := make([]*Tx, 0, count)
	for i := range count {
		tx, err := NewTx(key, uint64(i), testContractAddr(), "set",
			setArgs{Key: fmt.Sprintf("k%03d", i), Value: "benchmark-value"}, 200_000)
		if err != nil {
			b.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

// BenchmarkOverlayApplyBlock measures the state-replay half of block
// validation — the part ApplyBlock runs per proposed block — on the
// historical Clone() path versus the copy-on-write overlay, across
// ledger sizes. The acceptance criterion: the clone path grows linearly
// with the ledger while the overlay path stays flat (it only pays for
// the keys the block touches).
func BenchmarkOverlayApplyBlock(b *testing.B) {
	key := cryptoutil.MustGenerateKey()
	txs := benchBlockTxs(b, key, 32)
	ex := testExecutor{}
	bctx := BlockContext{Number: 1, Time: chainEpoch}
	for _, ledger := range []int{1_000, 10_000, 100_000} {
		st := benchLedger(ledger)
		b.Run(fmt.Sprintf("ledger=%d/path=clone", ledger), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				replica := st.Clone()
				_ = replayTxs(ex, replica, txs, bctx)
				_ = replica.TakeDiff()
			}
		})
		b.Run(fmt.Sprintf("ledger=%d/path=overlay", ledger), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				overlay := NewOverlay(st)
				_ = replayTxs(ex, overlay, txs, bctx)
				_ = overlay.TakeDeltas()
			}
		})
	}
}

// BenchmarkCodecEncodeBlock compares encoding a realistic 64-tx block
// record (512-byte payloads) with the binary codec versus the legacy
// JSON marshaller, reporting the encoded size alongside speed. The
// acceptance criterion: binary is measurably faster and smaller.
func BenchmarkCodecEncodeBlock(b *testing.B) {
	block := benchWALBlock(64, 512)
	b.Run("codec=binary", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for b.Loop() {
			buf, err := encodeWALBlock(block)
			if err != nil {
				b.Fatal(err)
			}
			size = len(buf)
		}
		b.ReportMetric(float64(size), "bytes/rec")
	})
	b.Run("codec=json", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for b.Loop() {
			buf, err := json.Marshal(walRecord{Block: block})
			if err != nil {
				b.Fatal(err)
			}
			size = len(buf)
		}
		b.ReportMetric(float64(size), "bytes/rec")
	})
}

// BenchmarkCommitLatency measures reader tail latency (p99 of State.Get)
// while a durable node commits block after block, with snapshots
// disabled versus on an aggressive every-2-blocks cadence. Because
// snapshot serialization happens on a background goroutine fed a
// copy-on-write export, the p99 with snapshots on should sit in the same
// range as with them off — readers are never blocked by snapshotting.
func BenchmarkCommitLatency(b *testing.B) {
	for _, mode := range []struct {
		name      string
		snapEvery int
	}{
		{"snapshots=off", 1 << 30},
		{"snapshots=bg-every-2", 2},
	} {
		b.Run(mode.name, func(b *testing.B) {
			key := cryptoutil.MustGenerateKey()
			clk := simclock.NewSim(chainEpoch)
			n, err := OpenNode(Config{
				Key:              key,
				Authorities:      []cryptoutil.Address{key.Address()},
				Executor:         testExecutor{},
				Clock:            clk,
				GenesisTime:      chainEpoch,
				DataDir:          b.TempDir(),
				SnapshotInterval: mode.snapEvery,
				Persist:          store.Options{Sync: store.SyncNever},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			// Pre-grow the ledger so snapshot serialization has real work.
			seed := make([]Delta, 0, 20_000)
			for i := range 20_000 {
				seed = append(seed, Delta{K: fmt.Sprintf("seed/%05d", i), V: []byte("seed-value")})
			}
			n.State().applyDeltas(seed)

			stop := make(chan struct{})
			latencies := make(chan []time.Duration, 1)
			readKey := testContractAddr().String() + "/k0"
			go func() {
				var lats []time.Duration
				for {
					select {
					case <-stop:
						latencies <- lats
						return
					default:
					}
					t0 := time.Now()
					n.State().Get(readKey)
					lats = append(lats, time.Since(t0))
				}
			}()

			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				tx, err := NewTx(key, uint64(i), testContractAddr(), "set",
					setArgs{Key: fmt.Sprintf("k%d", i%64), Value: "v"}, 200_000)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := n.SubmitTx(tx); err != nil {
					b.Fatal(err)
				}
				clk.Advance(time.Second)
				if _, err := n.Seal(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			lats := <-latencies
			if len(lats) > 0 {
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				p99 := lats[len(lats)*99/100]
				b.ReportMetric(float64(p99.Nanoseconds()), "p99-read-ns")
			}
		})
	}
}

// benchFloodPool builds a mempool filled with senders×perSender
// equally-priced transactions (quota = perSender), returning the pool
// and the signing keys in sender order.
func benchFloodPool(b *testing.B, capacity, senders, perSender int, price uint64) (*mempool, []*cryptoutil.KeyPair) {
	b.Helper()
	mp := newMempool(capacity, perSender, 10)
	keys := make([]*cryptoutil.KeyPair, senders)
	for s := range senders {
		keys[s] = cryptoutil.MustGenerateKey()
		for n := range perSender {
			tx, err := NewTxPriced(keys[s], uint64(n), testContractAddr(), "set",
				setArgs{Key: fmt.Sprintf("s%03d-n%03d", s, n), Value: "v"}, 200_000, price)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mp.Add(tx.Hash(), tx); err != nil {
				b.Fatal(err)
			}
		}
	}
	return mp, keys
}

// BenchmarkFloodIngestion measures the admission machinery's per-verdict
// cost under flood conditions: a plain admit with headroom, the two
// rejection paths a flood rides (price floor and sender quota — both
// must stay cheap, they are the pool's self-defense), and the
// evict-and-admit cycle a priced transaction pays at a full pool. Pools
// are pre-filled outside the timed loop; admit paths restore the pool
// each iteration so every pass measures the same state. Node-level flood
// behavior (signatures, sealing, settlement under sustained overload) is
// covered by the mempool ablation in internal/core and `ucbench -exp
// mempool`.
func BenchmarkFloodIngestion(b *testing.B) {
	const (
		capacity  = 1024
		senders   = 128
		perSender = 8
	)
	b.Run("verdict=admit", func(b *testing.B) {
		mp, _ := benchFloodPool(b, 2*capacity, senders, perSender, DefaultGasPrice)
		key := cryptoutil.MustGenerateKey()
		tx, err := NewTxPriced(key, 0, testContractAddr(), "set",
			setArgs{Key: "probe", Value: "v"}, 200_000, DefaultGasPrice)
		if err != nil {
			b.Fatal(err)
		}
		h := tx.Hash()
		b.ReportAllocs()
		for b.Loop() {
			if _, err := mp.Add(h, tx); err != nil {
				b.Fatal(err)
			}
			mp.Remove(h)
		}
	})
	b.Run("verdict=reject-underpriced", func(b *testing.B) {
		mp, _ := benchFloodPool(b, capacity, senders, perSender, DefaultGasPrice)
		key := cryptoutil.MustGenerateKey()
		flood, err := NewTxPriced(key, 0, testContractAddr(), "set",
			setArgs{Key: "flood", Value: "v"}, 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		h := flood.Hash()
		b.ReportAllocs()
		for b.Loop() {
			if _, err := mp.Add(h, flood); !errors.Is(err, ErrUnderpriced) {
				b.Fatalf("want ErrUnderpriced, got %v", err)
			}
		}
	})
	b.Run("verdict=reject-quota", func(b *testing.B) {
		mp, keys := benchFloodPool(b, capacity, senders, perSender, DefaultGasPrice)
		over, err := NewTxPriced(keys[0], perSender, testContractAddr(), "set",
			setArgs{Key: "over", Value: "v"}, 200_000, DefaultGasPrice)
		if err != nil {
			b.Fatal(err)
		}
		h := over.Hash()
		b.ReportAllocs()
		for b.Loop() {
			if _, err := mp.Add(h, over); !errors.Is(err, ErrQuotaExceeded) {
				b.Fatalf("want ErrQuotaExceeded, got %v", err)
			}
		}
	})
	b.Run("verdict=admit-evict", func(b *testing.B) {
		mp, _ := benchFloodPool(b, capacity, senders, perSender, DefaultGasPrice)
		key := cryptoutil.MustGenerateKey()
		probe, err := NewTxPriced(key, 0, testContractAddr(), "set",
			setArgs{Key: "probe", Value: "v"}, 200_000, 2*DefaultGasPrice)
		if err != nil {
			b.Fatal(err)
		}
		h := probe.Hash()
		b.ReportAllocs()
		for b.Loop() {
			evicted, err := mp.Add(h, probe)
			if err != nil || evicted == nil {
				b.Fatalf("want eviction, got evicted=%v err=%v", evicted, err)
			}
			mp.Remove(h)
			// Re-queue the victim: the pool returns to its exact
			// pre-iteration occupancy (the victim was its sender's tail, so
			// re-adding it is contiguous).
			if _, err := mp.Add(evicted.hash, evicted.tx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// parexecBenchExecutor is the parallel-execution benchmark workload: per
// transaction it burns a deterministic amount of CPU (iterated hashing,
// standing in for real contract logic — codec work, ACL walks, signature
// checks) and then does one read-modify-write of the key named in the
// args. With per-tx unique keys the block is conflict-free; with one
// shared key every transaction conflicts with its predecessor.
type parexecBenchExecutor struct {
	rounds int
}

func (e parexecBenchExecutor) ExecuteTx(st StateRW, tx *Tx, bctx BlockContext) *Receipt {
	var args setArgs
	if err := json.Unmarshal(tx.Args, &args); err != nil {
		return &Receipt{Status: StatusReverted, Err: err.Error()}
	}
	sum := sha256.Sum256(tx.Args)
	for range e.rounds {
		sum = sha256.Sum256(sum[:])
	}
	key := tx.Contract.String() + "/" + args.Key
	prev, _ := st.Get(key)
	st.Set(key, append(prev[:0:0], sum[:8]...))
	return &Receipt{Status: StatusOK, GasUsed: GasTxBase}
}

func (parexecBenchExecutor) Query(StateRW, cryptoutil.Address, string, []byte, BlockContext) ([]byte, error) {
	return nil, fmt.Errorf("no queries")
}

// parexecBenchTxs signs one block of benchmark transactions. hotKey ""
// gives every transaction its own key (conflict-free); non-empty sends
// every transaction to that single key (100% conflicts).
func parexecBenchTxs(b *testing.B, key *cryptoutil.KeyPair, count int, hotKey string) []*Tx {
	b.Helper()
	txs := make([]*Tx, 0, count)
	for i := range count {
		k := hotKey
		if k == "" {
			k = fmt.Sprintf("k%04d", i)
		}
		tx, err := NewTx(key, uint64(i), testContractAddr(), "set",
			setArgs{Key: k, Value: "benchmark-value"}, 200_000)
		if err != nil {
			b.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

// BenchmarkParallelExecution is the parexec ablation: block execution
// latency across worker counts on a conflict-free 1k-tx workload (the
// scheduler's best case — expected near-linear scaling, with ≥ 2× at 4
// workers as the acceptance bar) and on a 100%-conflict workload (the
// worst case — every optimistic result is discarded and the block
// re-executes serially, so the bar is graceful degradation, not speedup).
func BenchmarkParallelExecution(b *testing.B) {
	key := cryptoutil.MustGenerateKey()
	ex := parexecBenchExecutor{rounds: 32}
	bctx := BlockContext{Number: 1, Time: chainEpoch}
	st := benchLedger(10_000)
	for _, wl := range []struct {
		name   string
		hotKey string
	}{
		{"conflicts=0pct", ""},
		{"conflicts=100pct", "hot"},
	} {
		txs := parexecBenchTxs(b, key, 1000, wl.hotKey)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for b.Loop() {
					_, _ = ReplayBlock(ex, st, txs, bctx, workers)
				}
			})
		}
	}
}
