package chain

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cryptoutil"
)

// Tx is a signed state-mutating transaction addressed to a contract.
type Tx struct {
	// Nonce orders transactions per sender and prevents replay.
	Nonce uint64 `json:"nonce"`
	// From is the sender address.
	From cryptoutil.Address `json:"from"`
	// SenderKey is the sender's public key (uncompressed point); the
	// address must be derivable from it.
	SenderKey []byte `json:"senderKey"`
	// Contract is the target contract address.
	Contract cryptoutil.Address `json:"contract"`
	// Method is the contract method to invoke.
	Method string `json:"method"`
	// Args is the JSON-encoded argument object for the method.
	Args []byte `json:"args"`
	// GasLimit caps the gas this transaction may consume.
	GasLimit uint64 `json:"gasLimit"`
	// GasPrice is the price-per-gas bid that orders the transaction in
	// the mempool. It is economic weight only: execution charges gas
	// against GasLimit regardless of price.
	GasPrice uint64 `json:"gasPrice"`
	// Signature is the ASN.1 ECDSA signature over SigningBytes.
	Signature []byte `json:"signature"`
}

// SigningBytes returns the deterministic encoding covered by the
// signature.
func (tx *Tx) SigningBytes() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "tx|%d|%s|%x|%s|%s|%x|%d|%d",
		tx.Nonce, tx.From, tx.SenderKey, tx.Contract, tx.Method, tx.Args, tx.GasLimit, tx.GasPrice)
	return []byte(b.String())
}

// Hash returns the transaction hash (over the signed content plus the
// signature).
func (tx *Tx) Hash() cryptoutil.Hash {
	return cryptoutil.HashOf(tx.SigningBytes(), tx.Signature)
}

// Transaction validation errors.
var (
	ErrBadSignature = errors.New("chain: invalid transaction signature")
	ErrNoMethod     = errors.New("chain: transaction missing method")
	ErrGasLimitZero = errors.New("chain: transaction gas limit is zero")
)

// VerifySignature checks the sender signature and sender-key/address
// consistency.
func (tx *Tx) VerifySignature() error {
	if tx.Method == "" {
		return ErrNoMethod
	}
	if tx.GasLimit == 0 {
		return ErrGasLimitZero
	}
	if err := cryptoutil.VerifyWithAddress(tx.From, tx.SenderKey, tx.SigningBytes(), tx.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	return nil
}

// DefaultGasPrice is the price NewTx stamps on transactions. Honest
// clients that never think about fees bid this; adversarial flood
// traffic typically bids far below it, which is exactly what the priced
// mempool exploits to keep settlements flowing under overload.
const DefaultGasPrice uint64 = 100

// NewTx builds and signs a transaction at DefaultGasPrice.
func NewTx(key *cryptoutil.KeyPair, nonce uint64, contract cryptoutil.Address, method string, args any, gasLimit uint64) (*Tx, error) {
	return NewTxPriced(key, nonce, contract, method, args, gasLimit, DefaultGasPrice)
}

// NewTxPriced builds and signs a transaction with an explicit gas-price
// bid.
func NewTxPriced(key *cryptoutil.KeyPair, nonce uint64, contract cryptoutil.Address, method string, args any, gasLimit, gasPrice uint64) (*Tx, error) {
	encoded, err := json.Marshal(args)
	if err != nil {
		return nil, fmt.Errorf("chain: encode args: %w", err)
	}
	tx := &Tx{
		Nonce:     nonce,
		From:      key.Address(),
		SenderKey: key.PublicBytes(),
		Contract:  contract,
		Method:    method,
		Args:      encoded,
		GasLimit:  gasLimit,
		GasPrice:  gasPrice,
	}
	sig, err := key.Sign(tx.SigningBytes())
	if err != nil {
		return nil, err
	}
	tx.Signature = sig
	return tx, nil
}

// Status of an executed transaction.
type Status int

// Receipt statuses.
const (
	StatusOK Status = iota + 1
	StatusReverted
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusReverted:
		return "reverted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Receipt records the outcome of a transaction execution.
type Receipt struct {
	// TxHash identifies the transaction.
	TxHash cryptoutil.Hash
	// Status is StatusOK or StatusReverted.
	Status Status
	// GasUsed is the gas consumed (charged even on revert).
	GasUsed uint64
	// Err holds the revert reason for StatusReverted.
	Err string
	// Events lists the events emitted (empty on revert).
	Events []Event
	// BlockNumber is the block the transaction landed in.
	BlockNumber uint64
	// Return is the method's return value (JSON), if any.
	Return []byte
}

// Succeeded reports whether the transaction executed without reverting.
func (r *Receipt) Succeeded() bool { return r.Status == StatusOK }

// Digest returns a deterministic encoding of the receipt used in the
// block's receipt root.
func (r *Receipt) Digest() cryptoutil.Hash {
	var b strings.Builder
	fmt.Fprintf(&b, "receipt|%s|%d|%d|%s|%d|%x|", r.TxHash, r.Status, r.GasUsed, r.Err, r.BlockNumber, r.Return)
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "%s;", ev.digestString())
	}
	return cryptoutil.HashOf([]byte(b.String()))
}
