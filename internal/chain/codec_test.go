package chain

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/store"
)

// randomWALBlock builds a fully populated block record with r-driven
// content, exercising every field of the schema including empty and
// binary-heavy values.
func randomWALBlock(r *rand.Rand) *walBlock {
	randHash := func() (h cryptoutil.Hash) {
		r.Read(h[:])
		return
	}
	randAddr := func() (a cryptoutil.Address) {
		r.Read(a[:])
		return
	}
	randBytes := func(n int) []byte {
		b := make([]byte, r.Intn(n+1))
		if len(b) == 0 {
			return nil // matches the decoder's nil-for-empty convention
		}
		r.Read(b)
		return b
	}
	b := &walBlock{Header: Header{
		Number:      r.Uint64(),
		ParentHash:  randHash(),
		Time:        time.Unix(r.Int63n(1<<33), r.Int63n(1e9)).UTC(),
		Proposer:    randAddr(),
		TxRoot:      randHash(),
		ReceiptRoot: randHash(),
		StateRoot:   randHash(),
		Signature:   randBytes(80),
	}}
	for range r.Intn(4) {
		b.Txs = append(b.Txs, &Tx{
			Nonce:     r.Uint64(),
			From:      randAddr(),
			SenderKey: randBytes(65),
			Contract:  randAddr(),
			Method:    "method\x00with bytes",
			Args:      randBytes(200),
			GasLimit:  r.Uint64(),
			Signature: randBytes(72),
		})
	}
	for range len(b.Txs) {
		rec := &Receipt{
			TxHash:      randHash(),
			Status:      Status(1 + r.Intn(2)),
			GasUsed:     r.Uint64(),
			Err:         "",
			BlockNumber: b.Header.Number,
			Return:      randBytes(64),
		}
		if rec.Status == StatusReverted {
			rec.Err = "some revert reason"
		}
		for range r.Intn(3) {
			rec.Events = append(rec.Events, Event{
				Contract:    randAddr(),
				Topic:       "Topic",
				Key:         "key/π",
				Data:        randBytes(128),
				BlockNumber: b.Header.Number,
				TxHash:      rec.TxHash,
				Index:       r.Intn(10),
			})
		}
		b.Receipts = append(b.Receipts, rec)
	}
	for i := range r.Intn(6) {
		d := Delta{K: string(rune('a'+i)) + "/key"}
		if r.Intn(3) == 0 {
			d.Del = true
		} else {
			d.V = randBytes(256)
		}
		b.Diff = append(b.Diff, d)
	}
	return b
}

// TestCodecBlockRecordRoundTrip: binary block records decode back to
// deep-equal structures across randomized content, and the encoding is
// deterministic.
func TestCodecBlockRecordRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := range 50 {
		want := randomWALBlock(r)
		payload, err := encodeWALBlock(want)
		if err != nil {
			t.Fatal(err)
		}
		again, err := encodeWALBlock(want)
		if err != nil || !bytes.Equal(payload, again) {
			t.Fatalf("iteration %d: encoding is not deterministic", i)
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if rec.Block == nil {
			t.Fatalf("iteration %d: decoded as non-block", i)
		}
		requireWALBlockEqual(t, rec.Block, want)
	}
}

// requireWALBlockEqual compares decoded and original block records
// (time fields by instant; everything else deeply).
func requireWALBlockEqual(t *testing.T, got, want *walBlock) {
	t.Helper()
	if !got.Header.Time.Equal(want.Header.Time) {
		t.Fatalf("header time = %v, want %v", got.Header.Time, want.Header.Time)
	}
	gh, wh := got.Header, want.Header
	gh.Time, wh.Time = time.Time{}, time.Time{}
	if !reflect.DeepEqual(gh, wh) {
		t.Fatalf("header = %+v, want %+v", gh, wh)
	}
	if got.Header.Hash() != want.Header.Hash() {
		t.Fatal("header hash changed across the round trip")
	}
	if len(got.Txs) != len(want.Txs) {
		t.Fatalf("%d txs, want %d", len(got.Txs), len(want.Txs))
	}
	for i := range want.Txs {
		if !reflect.DeepEqual(got.Txs[i], want.Txs[i]) {
			t.Fatalf("tx %d = %+v, want %+v", i, got.Txs[i], want.Txs[i])
		}
	}
	if len(got.Receipts) != len(want.Receipts) {
		t.Fatalf("%d receipts, want %d", len(got.Receipts), len(want.Receipts))
	}
	for i := range want.Receipts {
		if got.Receipts[i].Digest() != want.Receipts[i].Digest() {
			t.Fatalf("receipt %d digest differs", i)
		}
	}
	if !reflect.DeepEqual(got.Diff, want.Diff) {
		t.Fatalf("diff = %+v, want %+v", got.Diff, want.Diff)
	}
}

// TestCodecMetaRoundTrip: the chain-identity record survives, zero
// genesis time included.
func TestCodecMetaRoundTrip(t *testing.T) {
	for _, genesis := range []time.Time{chainEpoch, {}} {
		want := &walMeta{
			GenesisTime: genesis,
			Authorities: []cryptoutil.Address{testContractAddr(), {}},
		}
		payload, err := encodeWALMeta(want)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Meta == nil {
			t.Fatal("decoded as non-meta")
		}
		if !rec.Meta.GenesisTime.Equal(want.GenesisTime) {
			t.Fatalf("genesis = %v, want %v", rec.Meta.GenesisTime, want.GenesisTime)
		}
		if !reflect.DeepEqual(rec.Meta.Authorities, want.Authorities) {
			t.Fatalf("authorities = %v", rec.Meta.Authorities)
		}
	}
}

// TestCodecSnapshotRoundTrip: binary snapshots round-trip (empty values
// and binary keys included) and encode deterministically.
func TestCodecSnapshotRoundTrip(t *testing.T) {
	state := map[string][]byte{
		"z/last":        []byte("value"),
		"a/first":       {0, 1, 2, 255},
		"empty":         {},
		"bin\x00ary/k":  []byte("x"),
		"big/" + "kkkk": bytes.Repeat([]byte("p"), 10_000),
	}
	payload := encodeChainSnapshot(99, state)
	if !bytes.Equal(payload, encodeChainSnapshot(99, state)) {
		t.Fatal("snapshot encoding is not deterministic")
	}
	snap, err := decodeChainSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Height != 99 {
		t.Fatalf("height = %d", snap.Height)
	}
	if len(snap.State) != len(state) {
		t.Fatalf("%d keys, want %d", len(snap.State), len(state))
	}
	for k, v := range state {
		if !bytes.Equal(snap.State[k], v) {
			t.Fatalf("key %q = %v, want %v", k, snap.State[k], v)
		}
	}
}

// TestCodecLegacyJSONDecode: JSON-era record payloads (the PR 4 on-disk
// format, produced here with the same json.Marshal the old writer used)
// still decode through the same entry points as binary records.
func TestCodecLegacyJSONDecode(t *testing.T) {
	block := randomWALBlock(rand.New(rand.NewSource(1)))
	legacy, err := json.Marshal(walRecord{Block: block})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodeWALRecord(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Block == nil {
		t.Fatal("legacy block decoded as non-block")
	}
	requireWALBlockEqual(t, rec.Block, block)

	legacyMeta, err := json.Marshal(walRecord{Meta: &walMeta{
		GenesisTime: chainEpoch, Authorities: []cryptoutil.Address{testContractAddr()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err = decodeWALRecord(legacyMeta); err != nil || rec.Meta == nil {
		t.Fatalf("legacy meta: %v", err)
	}

	legacySnap, err := json.Marshal(chainSnapshot{Height: 7, State: map[string][]byte{"k": []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := decodeChainSnapshot(legacySnap)
	if err != nil || snap.Height != 7 || string(snap.State["k"]) != "v" {
		t.Fatalf("legacy snapshot: %+v, %v", snap, err)
	}
}

// TestCodecRejectsGarbage: unknown tags, truncation, and trailing bytes
// are decode errors (the recovery loop treats them as the torn tail).
func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeWALRecord(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := decodeWALRecord([]byte{0x7E, 1, 2}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	if _, err := decodeWALRecord([]byte(`{"neither":true}`)); err == nil {
		t.Fatal("legacy record with neither field accepted")
	}
	good, err := encodeWALBlock(randomWALBlock(rand.New(rand.NewSource(2))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeWALRecord(good[:len(good)-1]); err == nil {
		t.Fatal("truncated block record accepted")
	}
	if _, err := decodeWALRecord(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := decodeChainSnapshot([]byte{tagChainBlock}); err == nil {
		t.Fatal("wrong-tag snapshot accepted")
	}
	// An element count no valid encoding could produce must poison the
	// decode deterministically, not fall through as an empty list.
	hdr, err := appendHeader([]byte{tagChainBlock}, &Header{Time: chainEpoch})
	if err != nil {
		t.Fatal(err)
	}
	overclaim := store.AppendUvarint(hdr, 1<<40) // absurd tx count
	if _, err := decodeWALRecord(overclaim); err == nil {
		t.Fatal("over-claimed tx count accepted")
	}
}

// TestCodecSizeAdvantage: the binary encoding of a block with real
// binary payloads must be smaller than its JSON encoding (which
// base64-inflates every []byte by 4/3) — the size half of the
// acceptance criterion; BenchmarkCodecEncodeBlock measures the speed
// half.
func TestCodecSizeAdvantage(t *testing.T) {
	block := benchWALBlock(64, 512)
	bin, err := encodeWALBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(walRecord{Block: block})
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(js) {
		t.Fatalf("binary %d bytes >= JSON %d bytes", len(bin), len(js))
	}
	t.Logf("block record: binary %d bytes, JSON %d bytes (%.2fx)",
		len(bin), len(js), float64(len(js))/float64(len(bin)))
}

// benchWALBlock builds a uniform block record with txCount transactions
// of valueSize-byte payloads (shared with BenchmarkCodecEncodeBlock).
func benchWALBlock(txCount, valueSize int) *walBlock {
	r := rand.New(rand.NewSource(9))
	payload := make([]byte, valueSize)
	r.Read(payload)
	b := &walBlock{Header: Header{
		Number:    12345,
		Time:      chainEpoch,
		Proposer:  testContractAddr(),
		Signature: bytes.Repeat([]byte("s"), 72),
	}}
	for i := range txCount {
		b.Txs = append(b.Txs, &Tx{
			Nonce:     uint64(i),
			From:      testContractAddr(),
			SenderKey: bytes.Repeat([]byte("k"), 65),
			Contract:  testContractAddr(),
			Method:    "set",
			Args:      payload,
			GasLimit:  200_000,
			Signature: bytes.Repeat([]byte("g"), 71),
		})
		b.Receipts = append(b.Receipts, &Receipt{
			Status: StatusOK, GasUsed: 21_000, BlockNumber: 12345,
		})
		b.Diff = append(b.Diff, Delta{K: string(rune('a'+i%26)) + "/key", V: payload})
	}
	return b
}
