package chain

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

func TestHeaderSigningBytesCoverAllFields(t *testing.T) {
	base := Header{
		Number:      7,
		ParentHash:  cryptoutil.HashOf([]byte("parent")),
		Time:        chainEpoch,
		Proposer:    cryptoutil.MustGenerateKey().Address(),
		TxRoot:      cryptoutil.HashOf([]byte("txs")),
		ReceiptRoot: cryptoutil.HashOf([]byte("receipts")),
		StateRoot:   cryptoutil.HashOf([]byte("state")),
	}
	mutations := []func(*Header){
		func(h *Header) { h.Number++ },
		func(h *Header) { h.ParentHash = cryptoutil.HashOf([]byte("other")) },
		func(h *Header) { h.Time = h.Time.Add(time.Nanosecond) },
		func(h *Header) { h.Proposer = cryptoutil.MustGenerateKey().Address() },
		func(h *Header) { h.TxRoot = cryptoutil.HashOf([]byte("other")) },
		func(h *Header) { h.ReceiptRoot = cryptoutil.HashOf([]byte("other")) },
		func(h *Header) { h.StateRoot = cryptoutil.HashOf([]byte("other")) },
	}
	baseBytes := string(base.SigningBytes())
	for i, mutate := range mutations {
		m := base
		mutate(&m)
		if string(m.SigningBytes()) == baseBytes {
			t.Errorf("mutation %d not covered by SigningBytes", i)
		}
	}
}

func TestBlockHashIncludesSignature(t *testing.T) {
	h := Header{Number: 1, Time: chainEpoch}
	h1 := h
	h1.Signature = []byte{1}
	h2 := h
	h2.Signature = []byte{2}
	if h1.Hash() == h2.Hash() {
		t.Fatal("block hash ignores the signature")
	}
}

func TestBlockGasUsed(t *testing.T) {
	b := &Block{Receipts: []*Receipt{{GasUsed: 10}, {GasUsed: 32}}}
	if b.GasUsed() != 42 {
		t.Fatalf("GasUsed = %d", b.GasUsed())
	}
}

func TestTxSigningBytesCoverAllFields(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	base := &Tx{
		Nonce:     1,
		From:      key.Address(),
		SenderKey: key.PublicBytes(),
		Contract:  testContractAddr(),
		Method:    "set",
		Args:      []byte(`{"k":"v"}`),
		GasLimit:  1000,
	}
	mutations := []func(*Tx){
		func(tx *Tx) { tx.Nonce++ },
		func(tx *Tx) { tx.From = cryptoutil.MustGenerateKey().Address() },
		func(tx *Tx) { tx.SenderKey = []byte{1} },
		func(tx *Tx) { tx.Contract = cryptoutil.Address{9} },
		func(tx *Tx) { tx.Method = "other" },
		func(tx *Tx) { tx.Args = []byte(`{}`) },
		func(tx *Tx) { tx.GasLimit++ },
	}
	baseBytes := string(base.SigningBytes())
	for i, mutate := range mutations {
		m := *base
		mutate(&m)
		if string(m.SigningBytes()) == baseBytes {
			t.Errorf("mutation %d not covered by SigningBytes", i)
		}
	}
}

func TestReceiptDigestCoversEvents(t *testing.T) {
	r1 := &Receipt{TxHash: cryptoutil.HashOf([]byte("tx")), Status: StatusOK, GasUsed: 5}
	r2 := &Receipt{TxHash: cryptoutil.HashOf([]byte("tx")), Status: StatusOK, GasUsed: 5,
		Events: []Event{{Topic: "Set", Key: "k", Data: []byte("v")}}}
	if r1.Digest() == r2.Digest() {
		t.Fatal("receipt digest ignores events")
	}
	r3 := &Receipt{TxHash: r1.TxHash, Status: StatusReverted, GasUsed: 5, Err: "boom"}
	if r1.Digest() == r3.Digest() {
		t.Fatal("receipt digest ignores status/error")
	}
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "ok" || StatusReverted.String() != "reverted" {
		t.Fatal("unexpected status names")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status should render")
	}
}
