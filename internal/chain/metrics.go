package chain

import "repro/internal/obs"

// Metrics bundles the chain layer's instruments. Every field is a
// nil-safe obs instrument, so instrumented code records unconditionally:
// a node built without a registry (the default) carries all-nil
// instruments and every recording call is a branch and a return.
//
// The chain package is replay-deterministic (see internal/lint), so no
// code here may read the wall clock directly; latencies are measured
// with the obs Timer idiom (Histogram.Start / Timer.Stop), which keeps
// every clock read inside internal/obs.
type Metrics struct {
	// Admission (mempool) counters.
	Admitted        *obs.Counter // transactions accepted into the mempool
	Duplicates      *obs.Counter // rebroadcasts of queued transactions
	Stale           *obs.Counter // nonces below the committed sequence
	RejectedNonce   *obs.Counter // nonce gaps
	RejectedGas     *obs.Counter // gas limit above the protocol cap
	QuotaRejected   *obs.Counter // per-sender pending quota exceeded
	RejectedReplace *obs.Counter // replace-by-fee bids below the bump threshold
	Backpressured   *obs.Counter // full-pool rejections (the HTTP 429 cause)
	Evicted         *obs.Counter // cheapest tails evicted by better-priced arrivals
	Replaced        *obs.Counter // queued transactions superseded by fee bumps
	MempoolDepth    *obs.Gauge   // queued transactions after the last admission/drain
	PoolOccupancy   *obs.Gauge   // pool fill fraction, permille of capacity

	// Latency histograms (nanoseconds).
	VerifyLatency *obs.Histogram // signature verification per submit call
	SealDuration  *obs.Histogram // whole seal: drain, execute, sign, commit
	FoldLatency   *obs.Histogram // delta fold into committed state (under mu)
	ReceiptWait   *obs.Histogram // WaitForReceipt blocking time

	// Commit counters.
	BlocksCommitted *obs.Counter
	BlockTxs        *obs.Histogram // transactions per committed block

	// Parallel-execution scheduler stats (see parallel.go).
	ExecWorkers    *obs.Gauge   // workers used by the last parallel block
	ParallelBlocks *obs.Counter // blocks through the optimistic scheduler
	SerialBlocks   *obs.Counter // blocks on the serial path (workers==1 or tiny)
	ExecConflicts  *obs.Counter // blocks whose optimistic run hit a conflict
	SerialTailTxs  *obs.Counter // transactions re-executed on the serial tail

	// Durability.
	SnapshotWrite  *obs.Histogram // background snapshot encode+write
	RecoveryReplay *obs.Histogram // OpenNode WAL replay time

	// Tracer records tx lifecycles (submit → admit → exec → commit →
	// receipt). Unlike the instruments above it is checked for nil at
	// call sites, because rendering a trace ID costs a hash-to-hex
	// conversion the disabled path must not pay.
	Tracer *obs.Tracer
}

// NewMetrics registers the chain series on reg and returns the handle
// the Config carries. A nil reg yields all-nil (no-op) instruments and
// no tracer — the zero-overhead default.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Admitted:        reg.Counter("chain_mempool_admitted_total", "transactions accepted into the mempool"),
		Duplicates:      reg.Counter("chain_mempool_duplicate_total", "rebroadcasts of already-queued transactions"),
		Stale:           reg.Counter("chain_mempool_stale_total", "submissions with nonces below the committed sequence"),
		RejectedNonce:   reg.Counter("chain_mempool_rejected_total", "rejected submissions by cause", obs.L("cause", "nonce")),
		RejectedGas:     reg.Counter("chain_mempool_rejected_total", "rejected submissions by cause", obs.L("cause", "gas")),
		QuotaRejected:   reg.Counter("chain_mempool_rejected_total", "rejected submissions by cause", obs.L("cause", "quota")),
		RejectedReplace: reg.Counter("chain_mempool_rejected_total", "rejected submissions by cause", obs.L("cause", "replace")),
		Backpressured:   reg.Counter("chain_mempool_backpressure_total", "full-pool rejections answered with backpressure"),
		Evicted:         reg.Counter("chain_mempool_evicted_total", "cheapest speculative tails evicted by better-priced arrivals"),
		Replaced:        reg.Counter("chain_mempool_replaced_total", "queued transactions superseded by replace-by-fee bumps"),
		MempoolDepth:    reg.Gauge("chain_mempool_depth", "queued transactions after the last admission or drain"),
		PoolOccupancy:   reg.Gauge("chain_mempool_occupancy_permille", "mempool fill fraction in permille of configured capacity"),

		VerifyLatency: reg.Histogram("chain_verify_latency_ns", "signature verification latency per submit call"),
		SealDuration:  reg.Histogram("chain_seal_duration_ns", "block seal latency: drain, execute, sign, commit"),
		FoldLatency:   reg.Histogram("chain_state_fold_ns", "delta fold into committed state under the ledger lock"),
		ReceiptWait:   reg.Histogram("chain_receipt_wait_ns", "WaitForReceipt blocking time"),

		BlocksCommitted: reg.Counter("chain_blocks_committed_total", "blocks durably committed"),
		BlockTxs:        reg.Histogram("chain_block_txs", "transactions per committed block"),

		ExecWorkers:    reg.Gauge("chain_exec_workers", "workers used by the last parallel block execution"),
		ParallelBlocks: reg.Counter("chain_exec_blocks_total", "blocks executed by path", obs.L("path", "parallel")),
		SerialBlocks:   reg.Counter("chain_exec_blocks_total", "blocks executed by path", obs.L("path", "serial")),
		ExecConflicts:  reg.Counter("chain_exec_conflicts_total", "parallel blocks whose optimistic run hit a conflict"),
		SerialTailTxs:  reg.Counter("chain_exec_serial_tail_txs_total", "transactions re-executed on the serial tail"),

		SnapshotWrite:  reg.Histogram("chain_snapshot_write_ns", "background snapshot encode and write duration"),
		RecoveryReplay: reg.Histogram("chain_recovery_replay_ns", "OpenNode WAL replay and state rebuild time"),
	}
	if reg != nil {
		m.Tracer = obs.NewTracer(256)
	}
	return m
}

// noopMetrics is the shared all-nil handle nodes without a registry use.
var noopMetrics = &Metrics{}

// orNoop normalizes a possibly-nil Config.Metrics so instrumentation
// sites never nil-check the struct itself.
func (m *Metrics) orNoop() *Metrics {
	if m == nil {
		return noopMetrics
	}
	return m
}
