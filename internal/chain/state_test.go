package chain

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cryptoutil"
)

func TestStateGetSetDelete(t *testing.T) {
	st := NewState()
	if _, ok := st.Get("missing"); ok {
		t.Fatal("Get on empty state returned ok")
	}
	st.Set("a", []byte("1"))
	v, ok := st.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("Get = %q, %t", v, ok)
	}
	st.Set("a", []byte("2"))
	v, _ = st.Get("a")
	if string(v) != "2" {
		t.Fatal("overwrite failed")
	}
	st.Delete("a")
	if _, ok := st.Get("a"); ok {
		t.Fatal("Delete failed")
	}
	st.Delete("a") // idempotent
	if st.Len() != 0 {
		t.Fatalf("Len = %d, want 0", st.Len())
	}
}

func TestStateCopiesValues(t *testing.T) {
	st := NewState()
	in := []byte("abc")
	st.Set("k", in)
	in[0] = 'X'
	out, _ := st.Get("k")
	if string(out) != "abc" {
		t.Fatal("Set did not copy the input")
	}
	out[0] = 'Y'
	again, _ := st.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get did not copy the output")
	}
}

func TestStateKeysPrefix(t *testing.T) {
	st := NewState()
	st.Set("pods/alice", []byte("1"))
	st.Set("pods/bob", []byte("2"))
	st.Set("resources/r1", []byte("3"))
	keys := st.Keys("pods/")
	if len(keys) != 2 || keys[0] != "pods/alice" || keys[1] != "pods/bob" {
		t.Fatalf("Keys = %v", keys)
	}
	if len(st.Keys("zzz")) != 0 {
		t.Fatal("prefix miss should return empty")
	}
}

func TestStateRevert(t *testing.T) {
	st := NewState()
	st.Set("a", []byte("1"))
	st.DiscardJournal()

	cp := st.Checkpoint()
	st.Set("a", []byte("2")) // overwrite
	st.Set("b", []byte("3")) // create
	st.Delete("a")           // delete overwritten key
	st.RevertTo(cp)

	v, ok := st.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("a = %q, %t; want original value restored", v, ok)
	}
	if _, ok := st.Get("b"); ok {
		t.Fatal("created key survived revert")
	}
}

func TestStateNestedCheckpoints(t *testing.T) {
	st := NewState()
	st.Set("x", []byte("0"))
	cp1 := st.Checkpoint()
	st.Set("x", []byte("1"))
	cp2 := st.Checkpoint()
	st.Set("x", []byte("2"))
	st.RevertTo(cp2)
	if v, _ := st.Get("x"); string(v) != "1" {
		t.Fatalf("x = %s after inner revert, want 1", v)
	}
	st.RevertTo(cp1)
	if v, _ := st.Get("x"); string(v) != "0" {
		t.Fatalf("x = %s after outer revert, want 0", v)
	}
}

func TestStateRootDeterministicAndSensitive(t *testing.T) {
	a := NewState()
	b := NewState()
	// Insert in different orders.
	a.Set("k1", []byte("v1"))
	a.Set("k2", []byte("v2"))
	b.Set("k2", []byte("v2"))
	b.Set("k1", []byte("v1"))
	if a.Root() != b.Root() {
		t.Fatal("root depends on insertion order")
	}
	b.Set("k3", []byte("v3"))
	if a.Root() == b.Root() {
		t.Fatal("root insensitive to extra key")
	}
	b.Delete("k3")
	if a.Root() != b.Root() {
		t.Fatal("root did not return after delete")
	}
	b.Set("k1", []byte("OTHER"))
	if a.Root() == b.Root() {
		t.Fatal("root insensitive to value change")
	}
}

func TestStateClone(t *testing.T) {
	st := NewState()
	st.Set("k", []byte("v"))
	c := st.Clone()
	if c.Root() != st.Root() {
		t.Fatal("clone root differs")
	}
	c.Set("k", []byte("mutated"))
	if v, _ := st.Get("k"); string(v) != "v" {
		t.Fatal("clone mutation leaked into original")
	}
}

// TestStateRevertProperty: applying any mutation sequence after a
// checkpoint and reverting restores the exact root.
func TestStateRevertProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		st := NewState()
		st.Set("seed", []byte("value"))
		st.DiscardJournal()
		before := st.Root()
		cp := st.Checkpoint()
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%8)
			switch op % 3 {
			case 0:
				st.Set(key, []byte{op, byte(i)})
			case 1:
				st.Set("seed", []byte{op})
			case 2:
				st.Delete(key)
			}
		}
		st.RevertTo(cp)
		return st.Root() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// recomputeRoot derives the multiset commitment from scratch through the
// public API, for cross-checking the incremental root.
func recomputeRoot(st *State) cryptoutil.Hash {
	var root cryptoutil.Hash
	for _, k := range st.Keys("") {
		v, _ := st.Get(k)
		leaf := leafHash(k, v)
		for i := range root {
			root[i] ^= leaf[i]
		}
	}
	return root
}

// TestStateRootIncrementalMatchesRecomputation: after any random sequence
// of sets, deletes, checkpoints and reverts, the O(1) incremental root
// equals the full recomputation.
func TestStateRootIncrementalMatchesRecomputation(t *testing.T) {
	f := func(ops []uint16) bool {
		st := NewState()
		var checkpoints []int
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			switch op % 5 {
			case 0, 1:
				st.Set(key, []byte{byte(op), byte(i)})
			case 2:
				st.Delete(key)
			case 3:
				checkpoints = append(checkpoints, st.Checkpoint())
			case 4:
				if len(checkpoints) > 0 {
					st.RevertTo(checkpoints[len(checkpoints)-1])
					checkpoints = checkpoints[:len(checkpoints)-1]
				}
			}
		}
		return st.Root() == recomputeRoot(st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGasMeter(t *testing.T) {
	m := NewGasMeter(100)
	if err := m.Charge(60); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 60 || m.Remaining() != 40 {
		t.Fatalf("used=%d remaining=%d", m.Used(), m.Remaining())
	}
	if err := m.Charge(41); err == nil {
		t.Fatal("over-limit charge accepted")
	}
	if m.Used() != 100 {
		t.Fatalf("out-of-gas should pin used to limit, got %d", m.Used())
	}
}

func TestGasMeterOverflow(t *testing.T) {
	m := NewGasMeter(^uint64(0))
	if err := m.Charge(^uint64(0) - 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(^uint64(0)); err == nil {
		t.Fatal("overflowing charge accepted")
	}
}

func TestCostLedger(t *testing.T) {
	l := NewCostLedger()
	var a1, a2 [20]byte
	a2[0] = 1
	l.Record(a1, "registerPod", 100)
	l.Record(a1, "registerPod", 200)
	l.Record(a2, "addResource", 50)
	if got := l.SpentBy(a1); got != 300 {
		t.Fatalf("SpentBy = %d, want 300", got)
	}
	if got := l.TotalSpent(); got != 350 {
		t.Fatalf("TotalSpent = %d, want 350", got)
	}
	ops := l.ByOperation()
	if len(ops) != 2 || ops[0].Method != "addResource" || ops[1].AvgGas() != 150 {
		t.Fatalf("ByOperation = %+v", ops)
	}
}

func TestMerkleRoot(t *testing.T) {
	empty := merkleRoot(nil)
	if empty.IsZero() {
		t.Fatal("empty merkle root should be a defined non-zero digest")
	}
	h1 := merkleRoot([]cryptoutil.Hash{hashOfByte(1)})
	h12 := merkleRoot([]cryptoutil.Hash{hashOfByte(1), hashOfByte(2)})
	h21 := merkleRoot([]cryptoutil.Hash{hashOfByte(2), hashOfByte(1)})
	if h1 == h12 || h12 == h21 {
		t.Fatal("merkle root not order/content sensitive")
	}
	// Odd leaf count exercises promotion.
	h123 := merkleRoot([]cryptoutil.Hash{hashOfByte(1), hashOfByte(2), hashOfByte(3)})
	if h123 == h12 {
		t.Fatal("odd-leaf root collides with even-leaf root")
	}
}

func hashOfByte(b byte) cryptoutil.Hash {
	return cryptoutil.HashOf([]byte{b})
}

// TestTakeDiffMoveSemanticsNoAliasing: TakeDiff returns deltas that
// alias the stored (immutable) value slices instead of copying them.
// That is only sound if later mutations REPLACE stored slices rather
// than writing through old ones — this regression test pins exactly
// that: a taken diff must be unaffected by subsequent Set/Delete on the
// same keys, and by mutation of the caller-owned buffer that was Set.
func TestTakeDiffMoveSemanticsNoAliasing(t *testing.T) {
	st := NewState()
	buf := []byte("original")
	st.Set("k", buf)
	st.Set("gone", []byte("doomed"))
	st.Delete("gone")
	diff := st.TakeDiff()
	if len(diff) != 2 {
		t.Fatalf("diff = %+v", diff)
	}

	// Mutating the buffer the caller handed to Set must not reach the
	// diff (Set stored a copy).
	for i := range buf {
		buf[i] = 'X'
	}
	// Overwriting and deleting the key afterwards must not reach the
	// already-taken diff either (stored slices are replaced, never
	// mutated in place).
	st.Set("k", []byte("overwritten"))
	st.Delete("k")
	st.Set("gone", []byte("resurrected"))

	byKey := map[string]Delta{}
	for _, d := range diff {
		byKey[d.K] = d
	}
	if got := byKey["k"]; string(got.V) != "original" || got.Del {
		t.Fatalf("k delta mutated: %+v", got)
	}
	if got := byKey["gone"]; !got.Del {
		t.Fatalf("gone delta mutated: %+v", got)
	}

	// Same property for the overlay's moved deltas.
	ov := NewOverlay(st)
	ovBuf := []byte("layer-value")
	ov.Set("ok", ovBuf)
	deltas := ov.TakeDeltas()
	for i := range ovBuf {
		ovBuf[i] = 'Y'
	}
	if len(deltas) != 1 || string(deltas[0].V) != "layer-value" {
		t.Fatalf("overlay delta mutated: %+v", deltas)
	}
}

// TestDiffIsNonConsumingAndCopies: Diff (unlike TakeDiff) leaves the
// journal intact — the caller can still revert — and returns copies
// that later state mutations cannot reach.
func TestDiffIsNonConsumingAndCopies(t *testing.T) {
	st := NewState()
	st.Set("a", []byte("1"))
	st.DiscardJournal()
	st.Set("a", []byte("2"))
	st.Set("b", []byte("3"))

	diff := st.Diff()
	if len(diff) != 2 {
		t.Fatalf("diff = %+v", diff)
	}
	// Mutating the returned values must not reach the state.
	for i := range diff {
		for j := range diff[i].V {
			diff[i].V[j] = 'X'
		}
	}
	if v, _ := st.Get("a"); string(v) != "2" {
		t.Fatalf("state mutated through Diff copy: %q", v)
	}
	// The journal survived: a revert still works.
	st.RevertTo(0)
	if v, _ := st.Get("a"); string(v) != "1" {
		t.Fatalf("revert after Diff = %q", v)
	}
	if _, ok := st.Get("b"); ok {
		t.Fatal("b survived revert")
	}
}

// TestExportDeepVsShared: Export returns deep copies; ExportShared
// shares the stored slices but still isolates the map itself.
func TestExportDeepVsShared(t *testing.T) {
	st := NewState()
	st.Set("k", []byte("value"))
	st.DiscardJournal()

	deep := st.Export()
	deep["k"][0] = 'X'
	if v, _ := st.Get("k"); string(v) != "value" {
		t.Fatalf("Export aliases storage: %q", v)
	}

	shared := st.ExportShared()
	if string(shared["k"]) != "value" {
		t.Fatalf("shared export = %q", shared["k"])
	}
	// Overwriting the key replaces the stored slice: the shared export
	// keeps observing the old (immutable) value.
	st.Set("k", []byte("fresh"))
	st.DiscardJournal()
	if string(shared["k"]) != "value" {
		t.Fatalf("shared export changed under mutation: %q", shared["k"])
	}
	// And deleting from the export map is invisible to the state.
	delete(shared, "k")
	if _, ok := st.Get("k"); !ok {
		t.Fatal("state lost a key through the shared export map")
	}
}
