package chain

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

func TestNewNodeValidation(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	if _, err := NewNode(Config{Key: key, Executor: testExecutor{}}); !errors.Is(err, ErrNoAuthorities) {
		t.Fatalf("err = %v, want ErrNoAuthorities", err)
	}
	if _, err := NewNode(Config{Authorities: []cryptoutil.Address{key.Address()}, Executor: testExecutor{}}); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := NewNode(Config{Key: key, Authorities: []cryptoutil.Address{key.Address()}}); err == nil {
		t.Fatal("missing executor accepted")
	}
}

func TestGenesisBlock(t *testing.T) {
	node, _, _ := newTestNode(t)
	if node.Height() != 0 {
		t.Fatalf("Height = %d, want 0", node.Height())
	}
	genesis := node.Head()
	if genesis.Header.Number != 0 || len(genesis.Txs) != 0 {
		t.Fatal("malformed genesis block")
	}
	if node.BlockByNumber(0) != genesis {
		t.Fatal("BlockByNumber(0) should return genesis")
	}
	if node.BlockByNumber(99) != nil {
		t.Fatal("BlockByNumber out of range should return nil")
	}
}

func TestSubmitAndSeal(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()

	tx := mustTx(t, key, 0, contract, "greeting", "hello")
	hash, err := node.SubmitTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if node.PendingTxs() != 1 {
		t.Fatalf("PendingTxs = %d, want 1", node.PendingTxs())
	}

	clk.Advance(time.Second)
	block, err := node.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if block.Header.Number != 1 || len(block.Txs) != 1 {
		t.Fatalf("unexpected block: number=%d txs=%d", block.Header.Number, len(block.Txs))
	}
	if node.PendingTxs() != 0 {
		t.Fatal("mempool not drained")
	}

	r := node.Receipt(hash)
	if r == nil || !r.Succeeded() {
		t.Fatalf("receipt = %+v", r)
	}
	if r.GasUsed == 0 {
		t.Fatal("gas not charged")
	}
	if len(r.Events) != 1 || r.Events[0].Topic != "Set" {
		t.Fatalf("events = %+v", r.Events)
	}

	// State visible via query.
	out, err := node.Query(contract, "get", []byte(`{"key":"greeting"}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"value":"hello"}` {
		t.Fatalf("query = %s", out)
	}
}

func TestSubmitTxRejectsBadSignatureAndNonce(t *testing.T) {
	node, key, _ := newTestNode(t)
	contract := testContractAddr()

	tx := mustTx(t, key, 0, contract, "k", "v")
	tx.Args = []byte(`{"key":"tampered"}`)
	if _, err := node.SubmitTx(tx); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered tx: err = %v, want ErrBadSignature", err)
	}

	wrongNonce := mustTx(t, key, 5, contract, "k", "v")
	if _, err := node.SubmitTx(wrongNonce); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("wrong nonce: err = %v, want ErrBadNonce", err)
	}

	unsigned := &Tx{Nonce: 0, From: key.Address(), SenderKey: key.PublicBytes(),
		Contract: contract, Method: "set", Args: []byte(`{}`), GasLimit: 1000}
	if _, err := node.SubmitTx(unsigned); err == nil {
		t.Fatal("unsigned tx accepted")
	}

	zeroGas := &Tx{Nonce: 0, From: key.Address(), SenderKey: key.PublicBytes(),
		Contract: contract, Method: "set", Args: []byte(`{}`)}
	if _, err := node.SubmitTx(zeroGas); !errors.Is(err, ErrGasLimitZero) {
		t.Fatalf("zero gas: err = %v, want ErrGasLimitZero", err)
	}
}

func TestNonceSequenceAcrossMempoolAndBlocks(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()

	if got := node.NonceFor(key.Address()); got != 0 {
		t.Fatalf("NonceFor = %d, want 0", got)
	}
	if _, err := node.SubmitTx(mustTx(t, key, 0, contract, "a", "1")); err != nil {
		t.Fatal(err)
	}
	if got := node.NonceFor(key.Address()); got != 1 {
		t.Fatalf("NonceFor with pending = %d, want 1", got)
	}
	if _, err := node.SubmitTx(mustTx(t, key, 1, contract, "b", "2")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := node.NonceFor(key.Address()); got != 2 {
		t.Fatalf("NonceFor after seal = %d, want 2", got)
	}
	// Replaying nonce 1 must fail.
	if _, err := node.SubmitTx(mustTx(t, key, 1, contract, "c", "3")); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("replay: err = %v, want ErrBadNonce", err)
	}
}

func TestRevertedTxRollsBackState(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()

	ok := mustTx(t, key, 0, contract, "keep", "me")
	fail, err := NewTx(key, 1, contract, "fail", struct{}{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	okAfter := mustTx(t, key, 2, contract, "also", "kept")
	for _, tx := range []*Tx{ok, fail, okAfter} {
		if _, err := node.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	block, err := node.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Receipts) != 3 {
		t.Fatalf("receipts = %d, want 3", len(block.Receipts))
	}
	if block.Receipts[1].Status != StatusReverted {
		t.Fatal("middle tx should have reverted")
	}
	if block.Receipts[1].Err == "" {
		t.Fatal("revert reason missing")
	}
	if len(block.Receipts[1].Events) != 0 {
		t.Fatal("reverted tx must not emit events")
	}
	// Both successful writes persist.
	if _, err := node.Query(contract, "get", []byte(`{"key":"keep"}`)); err != nil {
		t.Fatal("first write lost:", err)
	}
	if _, err := node.Query(contract, "get", []byte(`{"key":"also"}`)); err != nil {
		t.Fatal("post-revert write lost:", err)
	}
}

func TestOutOfGasReverts(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()
	tx, err := NewTx(key, 0, contract, "burn", burnArgs{Amount: 10_000_000}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := node.SubmitTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
	r := node.Receipt(hash)
	if r.Status != StatusReverted {
		t.Fatalf("status = %s, want reverted", r.Status)
	}
	if r.GasUsed != 50_000 {
		t.Fatalf("GasUsed = %d, want full limit on out-of-gas", r.GasUsed)
	}
}

func TestWaitForReceipt(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()
	tx := mustTx(t, key, 0, contract, "k", "v")
	hash, err := node.SubmitTx(tx)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan *Receipt, 1)
	go func() {
		r, err := node.WaitForReceipt(context.Background(), hash)
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()
	// Give the waiter a moment to register, then seal.
	time.Sleep(10 * time.Millisecond)
	clk.Advance(time.Second)
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r == nil || !r.Succeeded() {
			t.Fatalf("receipt = %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitForReceipt never returned")
	}

	// Already-included tx resolves immediately.
	r, err := node.WaitForReceipt(context.Background(), hash)
	if err != nil || r == nil {
		t.Fatalf("immediate WaitForReceipt: %v, %v", r, err)
	}

	// Context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := node.WaitForReceipt(ctx, cryptoutil.HashOf([]byte("absent"))); err == nil {
		t.Fatal("cancelled WaitForReceipt should fail")
	}
}

func TestBlockTimestampsStrictlyIncrease(t *testing.T) {
	node, _, _ := newTestNode(t) // clock never advanced
	for range 3 {
		if _, err := node.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	var prev time.Time
	for i := uint64(0); i <= node.Height(); i++ {
		b := node.BlockByNumber(i)
		if i > 0 && !b.Header.Time.After(prev) {
			t.Fatalf("block %d time %s not after parent %s", i, b.Header.Time, prev)
		}
		prev = b.Header.Time
	}
}

func TestEventSubscription(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()

	sub := node.SubscribeEvents(EventFilter{Topic: "Set"}, 8)
	defer sub.Cancel()

	if _, err := node.SubmitTx(mustTx(t, key, 0, contract, "watched", "x")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}

	select {
	case ev := <-sub.C:
		if ev.Topic != "Set" || ev.Key != "watched" || ev.BlockNumber != 1 {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}

	sub.Cancel()
	sub.Cancel() // idempotent
	if _, open := <-sub.C; open {
		t.Fatal("channel should be closed after Cancel")
	}
}

func TestEventsLedgerScanAndFilter(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()
	for i, k := range []string{"a", "b", "c"} {
		if _, err := node.SubmitTx(mustTx(t, key, uint64(i), contract, k, "v")); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
		if _, err := node.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	all := node.Events(EventFilter{Topic: "Set"})
	if len(all) != 3 {
		t.Fatalf("events = %d, want 3", len(all))
	}
	one := node.Events(EventFilter{Topic: "Set", Key: "b"})
	if len(one) != 1 || one[0].Key != "b" {
		t.Fatalf("filtered events = %+v", one)
	}
	fromBlock := node.Events(EventFilter{FromBlock: 3})
	if len(fromBlock) != 1 {
		t.Fatalf("FromBlock filter returned %d, want 1", len(fromBlock))
	}
	wrongContract := node.Events(EventFilter{Contract: cryptoutil.Address{1}})
	if len(wrongContract) != 0 {
		t.Fatal("contract filter leaked events")
	}
}

func TestCostLedgerRecordsGas(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()
	if _, err := node.SubmitTx(mustTx(t, key, 0, contract, "k", "v")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := node.Seal(); err != nil {
		t.Fatal(err)
	}
	if node.Costs().SpentBy(key.Address()) == 0 {
		t.Fatal("cost ledger empty after successful tx")
	}
	ops := node.Costs().ByOperation()
	if len(ops) != 1 || ops[0].Method != "set" || ops[0].Count != 1 || ops[0].AvgGas() == 0 {
		t.Fatalf("ByOperation = %+v", ops)
	}
}

func TestStartSealingWithSimClock(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()
	node.StartSealing(100 * time.Millisecond)
	defer node.StopSealing()

	if _, err := node.SubmitTx(mustTx(t, key, 0, contract, "k", "v")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if node.Height() < 1 {
		t.Fatalf("Height = %d, want >= 1 after advancing past the interval", node.Height())
	}
	h := node.Height()
	node.StopSealing()
	clk.Advance(time.Second)
	if node.Height() != h {
		t.Fatal("sealing continued after StopSealing")
	}
}

func TestMaxTxsPerBlock(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	node, err := NewNode(Config{
		Key:            key,
		Authorities:    []cryptoutil.Address{key.Address()},
		Executor:       testExecutor{},
		GenesisTime:    chainEpoch,
		MaxTxsPerBlock: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	contract := testContractAddr()
	for i := range 5 {
		if _, err := node.SubmitTx(mustTx(t, key, uint64(i), contract, string(rune('a'+i)), "v")); err != nil {
			t.Fatal(err)
		}
	}
	b1, err := node.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Txs) != 2 {
		t.Fatalf("block 1 txs = %d, want 2", len(b1.Txs))
	}
	if node.PendingTxs() != 3 {
		t.Fatalf("pending = %d, want 3", node.PendingTxs())
	}
}
