package chain

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
)

// Block validation errors.
var (
	ErrBadParent      = errors.New("chain: block parent hash mismatch")
	ErrBadNumber      = errors.New("chain: block number not sequential")
	ErrWrongProposer  = errors.New("chain: block proposer out of turn")
	ErrBadHeaderSig   = errors.New("chain: invalid header signature")
	ErrBadTxInBlock   = errors.New("chain: invalid transaction in block")
	ErrBadTxRoot      = errors.New("chain: tx root mismatch")
	ErrBadReceiptRoot = errors.New("chain: receipt root mismatch")
	ErrBadStateRoot   = errors.New("chain: state root mismatch")
	ErrBadTimestamp   = errors.New("chain: block timestamp not after parent")
)

// ApplyBlock validates a block sealed by another authority and, if valid,
// applies it to this node's ledger and state. Validation re-executes every
// transaction on a copy-on-write overlay of the current state and compares
// the resulting roots, so a proposer cannot smuggle in an incorrect state
// transition — this realizes the paper's claim that "the correctness of
// the executed code is validated by the consensus mechanism of the
// blockchain".
//
// The overlay replaced the historical State.Clone() replica: validation
// now costs O(touched keys) instead of O(ledger) per block, the block is
// executed exactly once (on success the overlay's write set IS the commit
// diff — no second replay against the real state), and the whole phase —
// signature checks, execution, and the WAL append — runs without the
// ledger write lock. Readers are only blocked for the O(touched-keys)
// delta fold of the final commit.
func (n *Node) ApplyBlock(block *Block, proposerKey []byte) error {
	n.sealMu.Lock()
	defer n.sealMu.Unlock()

	n.mu.RLock()
	parent := n.blocks[len(n.blocks)-1]
	n.mu.RUnlock()

	h := block.Header
	if h.Number <= parent.Header.Number {
		// At-or-below-head deliveries split three ways: rebroadcast of a
		// committed block, equivocation by its proposer, or a plain stale
		// block. See handleStaleDelivery.
		return n.handleStaleDelivery(block, proposerKey)
	}
	if h.Number != parent.Header.Number+1 {
		return fmt.Errorf("%w: got %d, want %d", ErrBadNumber, h.Number, parent.Header.Number+1)
	}
	if h.ParentHash != parent.Hash() {
		return ErrBadParent
	}
	if !h.Time.After(parent.Header.Time) {
		return ErrBadTimestamp
	}
	// Clique-style proof of authority: the in-turn authority is preferred
	// by the network layer, but any member of the authority set may seal a
	// block (this is what keeps the chain live when the in-turn proposer
	// is down). Non-authorities are always rejected.
	if !n.isAuthority(h.Proposer) {
		return fmt.Errorf("%w: %s is not an authority", ErrWrongProposer, h.Proposer)
	}
	if err := cryptoutil.VerifyWithAddress(h.Proposer, proposerKey, h.SigningBytes(), h.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeaderSig, err)
	}
	if err := VerifyTxSignatures(block.Txs, n.verifyWorkers); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTxInBlock, err)
	}
	if got := txRoot(block.Txs); got != h.TxRoot {
		return ErrBadTxRoot
	}
	// The per-tx gas cap is enforced here as well as at admission: a
	// byzantine proposer writes over-cap transactions straight into a
	// block, bypassing Submit. Checked separately from VerifyTxSignatures
	// so the rejection carries its own sentinel (ErrBadTxInBlock wraps the
	// cause as text, which would hide errors.Is(ErrGasTooLarge)).
	for _, tx := range block.Txs {
		if tx.GasLimit > MaxTxGasLimit {
			return fmt.Errorf("%w: tx %s declares %d, cap %d",
				ErrGasTooLarge, tx.Hash().Short(), tx.GasLimit, MaxTxGasLimit)
		}
	}

	// Re-execute on an overlay and compare roots before touching real
	// state. sealMu excludes every other state writer for the overlay's
	// lifetime, so only reading the state handle needs the read lock.
	n.mu.RLock()
	st := n.state
	n.mu.RUnlock()
	overlay := NewOverlay(st)
	bctx := BlockContext{Number: h.Number, Time: h.Time}
	receipts := n.executeBlock(overlay, block.Txs, bctx)
	if got := receiptRoot(receipts); got != h.ReceiptRoot {
		return ErrBadReceiptRoot
	}
	if got := overlay.Root(); got != h.StateRoot {
		return ErrBadStateRoot
	}

	// Valid. Settle admission state first (nonces forward, included txs
	// out of the mempool), so submissions racing with the commit observe
	// a consistent nonce sequence.
	n.mpMu.Lock()
	for _, tx := range block.Txs {
		n.nonces[tx.From] = tx.Nonce + 1
		n.mempool.Remove(tx.Hash())
	}
	n.mpMu.Unlock()

	// Commit the validated execution: the overlay's write set is the
	// block diff — no second replay against the real state.
	applied := &Block{Header: h, Txs: block.Txs, Receipts: receipts}
	if err := n.commitBlock(applied, overlay.TakeDeltas()); err != nil {
		return err
	}

	for i, tx := range block.Txs {
		n.costs.Record(tx.From, tx.Method, receipts[i].GasUsed)
	}
	return nil
}

// replayTxs executes one block's transactions against st (a seal-time or
// validation overlay), producing receipts with block-local event
// indexes. It is the single execution path for sealing and validation;
// it never touches the node's cost ledger — callers record gas only
// after the block durably commits.
func replayTxs(ex Executor, st StateRW, txs []*Tx, bctx BlockContext) []*Receipt {
	receipts := make([]*Receipt, 0, len(txs))
	eventIndex := 0
	for _, tx := range txs {
		checkpoint := st.Checkpoint()
		receipt := ex.ExecuteTx(st, tx, bctx)
		if receipt.Status != StatusOK {
			st.RevertTo(checkpoint)
			receipt.Events = nil
		}
		receipt.TxHash = tx.Hash()
		receipt.BlockNumber = bctx.Number
		for i := range receipt.Events {
			receipt.Events[i].BlockNumber = bctx.Number
			receipt.Events[i].TxHash = receipt.TxHash
			receipt.Events[i].Index = eventIndex
			eventIndex++
		}
		receipts = append(receipts, receipt)
	}
	// The overlay's layer (write set) carries the block's net diff;
	// commitBlock folds it into the base state. A validation overlay that
	// fails a root check is thrown away wholesale, journal included.
	return receipts
}

// Network is an in-process cluster of authority nodes. The node whose turn
// it is seals; the network then broadcasts the block to every other node,
// which validates and applies it. This models the paper's availability
// argument: any node can serve reads, and the cluster survives the loss of
// individual nodes.
type Network struct {
	mu            sync.Mutex
	nodes         []*Node
	keys          map[cryptoutil.Address][]byte // authority address -> public key bytes
	down          map[cryptoutil.Address]bool
	verifyWorkers int

	// Partition state. When cells is non-nil the cluster is split: each
	// member belongs to a cell, only the quorum cell (the one holding a
	// strict majority of members) makes progress, and cross-cell traffic
	// is buffered until Heal drops it. A nil cells map means fully
	// connected.
	cells      map[cryptoutil.Address]int
	quorumCell int
	// buffered holds cross-cell deliveries queued while partitioned; Heal
	// discards them (the partition "eventually drops" in-flight traffic)
	// and re-syncs minority nodes from a live peer instead.
	buffered []bufferedDelivery
	// droppedDeliveries counts buffered deliveries discarded by heals, plus
	// deliveries dropped on the floor once the buffer cap was hit.
	droppedDeliveries int
}

// bufferedDelivery is one block broadcast held back by a partition.
type bufferedDelivery struct {
	to          cryptoutil.Address
	block       *Block
	proposerKey []byte
}

// maxBufferedDeliveries caps the cross-cell buffer; a long-lived
// partition eventually drops traffic rather than queueing unboundedly.
const maxBufferedDeliveries = 1024

// Partition errors.
var (
	// ErrPartitioned reports an operation refused because the cluster is
	// currently split.
	ErrPartitioned = errors.New("chain: network is partitioned")
	// ErrNoQuorum reports a requested split in which no cell holds a
	// strict majority of members, so no cell could safely make progress.
	ErrNoQuorum = errors.New("chain: no partition cell holds a quorum")
)

// NewNetwork groups nodes into a cluster. All nodes must share the same
// authority set and genesis. The cluster-level signature verification
// pool inherits the first node's VerifyWorkers setting.
func NewNetwork(nodes ...*Node) (*Network, error) {
	if len(nodes) == 0 {
		return nil, errors.New("chain: empty network")
	}
	keys := make(map[cryptoutil.Address][]byte, len(nodes))
	for _, n := range nodes {
		keys[n.Address()] = n.key.PublicBytes()
	}
	// Copy the membership: the caller may mutate its slice (e.g. dropping
	// a crashed node), and cluster membership changes must go through
	// Replace.
	return &Network{
		nodes:         append([]*Node(nil), nodes...),
		keys:          keys,
		down:          make(map[cryptoutil.Address]bool),
		verifyWorkers: nodes[0].verifyWorkers,
	}, nil
}

// Nodes returns the cluster members.
func (net *Network) Nodes() []*Node {
	net.mu.Lock()
	defer net.mu.Unlock()
	return append([]*Node(nil), net.nodes...)
}

// SetDown marks a node as failed (true) or recovered (false). Failed nodes
// neither seal nor receive broadcasts.
func (net *Network) SetDown(addr cryptoutil.Address, down bool) {
	net.mu.Lock()
	defer net.mu.Unlock()
	net.down[addr] = down
}

// netView is a consistent snapshot of membership, liveness, and
// partition state, taken under the network lock.
type netView struct {
	nodes      []*Node
	down       map[cryptoutil.Address]bool
	cells      map[cryptoutil.Address]int
	quorumCell int
}

// reachable reports whether addr is live and on the quorum side of any
// active partition — i.e. whether the cluster's progress path (sealing,
// submission, reads) may use it.
func (v *netView) reachable(addr cryptoutil.Address) bool {
	if v.down[addr] {
		return false
	}
	if v.cells == nil {
		return true
	}
	return v.cells[addr] == v.quorumCell
}

// liveView snapshots the cluster membership, liveness, and partition
// state under the network lock.
func (net *Network) liveView() *netView {
	net.mu.Lock()
	defer net.mu.Unlock()
	v := &netView{
		nodes:      append([]*Node(nil), net.nodes...),
		down:       make(map[cryptoutil.Address]bool, len(net.down)),
		quorumCell: net.quorumCell,
	}
	for k, d := range net.down {
		v.down[k] = d
	}
	if net.cells != nil {
		v.cells = make(map[cryptoutil.Address]int, len(net.cells))
		for k, c := range net.cells {
			v.cells[k] = c
		}
	}
	return v
}

// Partition splits the cluster into isolated cells. Every current member
// must be assigned a cell, and exactly one cell must hold a strict
// majority of members — that quorum cell keeps sealing while the others
// stall with their traffic buffered (and eventually dropped). Refuses to
// stack partitions: Heal first.
func (net *Network) Partition(cells map[cryptoutil.Address]int) error {
	net.mu.Lock()
	defer net.mu.Unlock()
	if net.cells != nil {
		return ErrPartitioned
	}
	sizes := make(map[int]int)
	for _, n := range net.nodes {
		cell, ok := cells[n.Address()]
		if !ok {
			return fmt.Errorf("chain: partition omits member %s", n.Address().Short())
		}
		sizes[cell]++
	}
	quorum := -1
	for cell, size := range sizes {
		if 2*size > len(net.nodes) {
			quorum = cell
			break
		}
	}
	if quorum == -1 {
		return ErrNoQuorum
	}
	net.cells = make(map[cryptoutil.Address]int, len(net.nodes))
	for _, n := range net.nodes {
		net.cells[n.Address()] = cells[n.Address()]
	}
	net.quorumCell = quorum
	return nil
}

// Heal reconnects a partitioned cluster: the cross-cell delivery buffer
// is dropped (those broadcasts are long gone — minority nodes re-sync
// instead, re-validating every block, so a heal cannot smuggle in
// unvalidated state), and every lagging live node catches up from the
// most advanced live peer. Returns the number of blocks synced across
// all nodes and the number of buffered deliveries dropped.
func (net *Network) Heal() (synced int, dropped int, err error) {
	net.mu.Lock()
	if net.cells == nil {
		net.mu.Unlock()
		return 0, 0, errors.New("chain: network is not partitioned")
	}
	net.cells = nil
	dropped = len(net.buffered)
	net.buffered = nil
	net.droppedDeliveries += dropped
	net.mu.Unlock()

	v := net.liveView()
	var donor *Node
	for _, n := range v.nodes {
		if v.down[n.Address()] {
			continue
		}
		if donor == nil || n.Height() > donor.Height() {
			donor = n
		}
	}
	if donor == nil {
		return 0, dropped, nil // every node down: nothing to converge
	}
	keys := net.AuthorityKeys()
	for _, n := range v.nodes {
		if v.down[n.Address()] || n == donor {
			continue
		}
		applied, serr := n.SyncFrom(donor, keys)
		synced += applied
		if serr != nil {
			return synced, dropped, fmt.Errorf("chain: heal sync of %s: %w", n.Address().Short(), serr)
		}
	}
	return synced, dropped, nil
}

// IsPartitioned reports whether addr is currently cut off from the
// quorum cell (always false when the cluster is whole).
func (net *Network) IsPartitioned(addr cryptoutil.Address) bool {
	net.mu.Lock()
	defer net.mu.Unlock()
	if net.cells == nil {
		return false
	}
	return net.cells[addr] != net.quorumCell
}

// Partitioned reports whether any partition is active.
func (net *Network) Partitioned() bool {
	net.mu.Lock()
	defer net.mu.Unlock()
	return net.cells != nil
}

// DroppedDeliveries reports the cumulative count of cross-cell block
// deliveries dropped by partitions (buffer overflow plus heal-time
// discards).
func (net *Network) DroppedDeliveries() int {
	net.mu.Lock()
	defer net.mu.Unlock()
	return net.droppedDeliveries
}

// bufferDelivery queues a cross-cell broadcast while partitioned,
// dropping it outright once the buffer cap is reached.
func (net *Network) bufferDelivery(to cryptoutil.Address, block *Block, proposerKey []byte) {
	net.mu.Lock()
	defer net.mu.Unlock()
	if net.cells == nil {
		return // healed concurrently: the node will re-sync anyway
	}
	if len(net.buffered) >= maxBufferedDeliveries {
		net.droppedDeliveries++
		return
	}
	net.buffered = append(net.buffered, bufferedDelivery{to: to, block: block, proposerKey: proposerKey})
}

// SealNext asks the in-turn authority to seal the next block and
// broadcasts the result to every live node. If the in-turn authority is
// down, the next live authority in rotation order takes over out of turn
// (clique-style), so the cluster stays live as long as one authority
// remains — the paper's availability property.
func (net *Network) SealNext() (*Block, error) {
	v := net.liveView()

	if len(v.nodes) == 0 {
		return nil, errors.New("chain: empty network")
	}
	// Pick a reachable reference node to read the current height. Under a
	// partition only the quorum cell seals — the minority stalls at its
	// pre-split height, which is what keeps committed blocks rollback-free
	// across heals (the minority chain stays a strict prefix).
	var ref *Node
	for _, n := range v.nodes {
		if v.reachable(n.Address()) {
			ref = n
			break
		}
	}
	if ref == nil {
		return nil, ErrProposerDown
	}
	height := ref.Height() + 1
	inTurn := ref.proposerFor(height)

	byAddr := make(map[cryptoutil.Address]*Node, len(v.nodes))
	order := make([]cryptoutil.Address, 0, len(v.nodes))
	for _, n := range v.nodes {
		byAddr[n.Address()] = n
		order = append(order, n.Address())
	}
	// Rotate the candidate order so the in-turn authority goes first.
	start := 0
	for i, a := range order {
		if a == inTurn {
			start = i
			break
		}
	}

	var block *Block
	var proposerAddr cryptoutil.Address
	for i := range order {
		addr := order[(start+i)%len(order)]
		node := byAddr[addr]
		if !v.reachable(addr) {
			continue
		}
		var err error
		if addr == inTurn {
			block, err = node.Seal()
		} else {
			block, err = node.SealOutOfTurn()
		}
		if err != nil {
			return nil, err
		}
		proposerAddr = addr
		break
	}
	if block == nil {
		return nil, ErrProposerDown
	}

	proposerKey := net.keys[proposerAddr]
	for _, n := range v.nodes {
		addr := n.Address()
		if addr == proposerAddr || v.down[addr] {
			continue
		}
		if !v.reachable(addr) {
			// Live but on the wrong side of the split: the broadcast is
			// buffered (and eventually dropped) instead of delivered.
			net.bufferDelivery(addr, block, proposerKey)
			continue
		}
		if err := n.ApplyBlock(block, proposerKey); err != nil {
			return nil, fmt.Errorf("chain: node %s rejected block %d: %w", addr.Short(), block.Header.Number, err)
		}
	}
	return block, nil
}

// ErrProposerDown reports that no live authority could seal.
var ErrProposerDown = errors.New("chain: no live proposer")

// SyncFrom catches this node up to a peer by fetching and validating the
// peer's blocks above the local height. It returns the number of blocks
// applied. This is how a recovered node rejoins the cluster after
// downtime (the §V-2 availability story).
func (n *Node) SyncFrom(peer *Node, peerKeys map[cryptoutil.Address][]byte) (int, error) {
	applied := 0
	for {
		next := n.Height() + 1
		block := peer.BlockByNumber(next)
		if block == nil {
			return applied, nil
		}
		proposerKey, ok := peerKeys[block.Header.Proposer]
		if !ok {
			return applied, fmt.Errorf("chain: no key for proposer %s at height %d",
				block.Header.Proposer.Short(), next)
		}
		if err := n.ApplyBlock(block, proposerKey); err != nil {
			return applied, fmt.Errorf("chain: sync height %d: %w", next, err)
		}
		applied++
	}
}

// AuthorityKeys returns the network's proposer-address → public-key map,
// as needed by Node.SyncFrom.
func (net *Network) AuthorityKeys() map[cryptoutil.Address][]byte {
	net.mu.Lock()
	defer net.mu.Unlock()
	out := make(map[cryptoutil.Address][]byte, len(net.keys))
	for a, k := range net.keys {
		out[a] = append([]byte(nil), k...)
	}
	return out
}

// Replace swaps a cluster member for a new node with the same authority
// address — the crash-restart path, where a validator's process state is
// lost and a replacement is reopened from its durable store. The
// replacement inherits the member's liveness flag (callers typically
// Recover it next to sync the tail it missed).
func (net *Network) Replace(n *Node) error {
	net.mu.Lock()
	defer net.mu.Unlock()
	for i, old := range net.nodes {
		if old.Address() == n.Address() {
			net.nodes[i] = n
			return nil
		}
	}
	return fmt.Errorf("chain: %s is not a cluster member", n.Address().Short())
}

// Recover marks a node as live again and syncs it from the first live
// peer, returning the number of blocks caught up.
func (net *Network) Recover(addr cryptoutil.Address) (int, error) {
	net.mu.Lock()
	net.down[addr] = false
	var target, donor *Node
	for _, n := range net.nodes {
		a := n.Address()
		if a == addr {
			target = n
			continue
		}
		if net.down[a] || donor != nil {
			continue
		}
		// Under a partition a recovering node can only sync from a peer in
		// its own cell — cross-cell traffic is cut.
		if net.cells != nil && net.cells[a] != net.cells[addr] {
			continue
		}
		donor = n
	}
	net.mu.Unlock()
	if target == nil {
		return 0, fmt.Errorf("chain: %s is not a cluster member", addr.Short())
	}
	if donor == nil {
		return 0, nil // nothing to sync from
	}
	return target.SyncFrom(donor, net.AuthorityKeys())
}

// SubmitEverywhere submits a transaction to every live node's mempool so
// that whichever node seals next includes it. The signature is verified
// once for the whole cluster, not once per node.
func (net *Network) SubmitEverywhere(tx *Tx) (cryptoutil.Hash, error) {
	hashes, err := net.SubmitEverywhereBatch([]*Tx{tx})
	if err != nil {
		return cryptoutil.Hash{}, err
	}
	return hashes[0], nil
}

// SubmitEverywhereBatch verifies a batch of transactions once (with the
// concurrent verification pool, bounded by the cluster's VerifyWorkers)
// and enqueues the batch on every live node under a single mempool lock
// acquisition per node. Transactions a node already holds are skipped,
// so rebroadcasts are idempotent. The returned hashes parallel the
// input.
//
// If a node rejects the batch, the transactions already enqueued on
// earlier nodes are withdrawn again (best effort: anything a concurrent
// seal has already committed stays committed), so a returned error means
// no live mempool still queues the batch.
func (net *Network) SubmitEverywhereBatch(txs []*Tx) ([]cryptoutil.Hash, error) {
	if len(txs) == 0 {
		return nil, nil
	}
	v := net.liveView()
	// The cluster verifies once, so node-level SubmitBatch timers never
	// see this path; record the pool latency on every node's instruments
	// (no-ops everywhere except the metered validator).
	tms := make([]obs.Timer, len(v.nodes))
	for i, n := range v.nodes {
		tms[i] = n.metrics.VerifyLatency.Start()
	}
	err := VerifyTxSignatures(txs, net.verifyWorkers)
	for _, tm := range tms {
		tm.Stop()
	}
	if err != nil {
		return nil, err
	}

	var hashes []cryptoutil.Hash
	var accepted []*Node
	var acceptedAdded [][]cryptoutil.Hash
	for _, n := range v.nodes {
		// Submission rides the quorum side only: a minority node's mempool
		// would hold the tx invisibly until heal, breaking the "no live
		// mempool still queues the batch" error contract.
		if !v.reachable(n.Address()) {
			continue
		}
		h, added, err := n.submitVerifiedBatch(txs)
		if err != nil {
			for i, prev := range accepted {
				prev.removeFromMempool(acceptedAdded[i])
			}
			return nil, err
		}
		if hashes == nil {
			hashes = h
		}
		accepted = append(accepted, n)
		acceptedAdded = append(acceptedAdded, added)
	}
	if len(accepted) == 0 {
		return nil, errors.New("chain: no live node accepted the transaction")
	}
	return hashes, nil
}

// TxVerdict is the per-transaction outcome of a best-effort batch
// submission: the transaction's hash plus the admission error, nil when
// every live node queued it (or already held it).
type TxVerdict struct {
	Hash cryptoutil.Hash
	Err  error
}

// Admitted reports whether the transaction was accepted cluster-wide.
func (v TxVerdict) Admitted() bool { return v.Err == nil }

// SubmitEverywhereVerdicts submits a batch best-effort: signatures are
// verified concurrently once for the cluster, then each transaction is
// enqueued on every live node independently, admitting what fits and
// reporting a per-transaction verdict instead of rejecting the whole
// batch on the first failure. This is the overload-facing ingestion
// path: under backpressure a caller learns exactly which transactions
// were priced out (ErrPoolFull/ErrUnderpriced), quota-bounced
// (ErrQuotaExceeded), or admitted, and can retry selectively.
//
// Transactions sharing a sender must appear in nonce order; a rejected
// transaction makes its same-sender successors fail their nonce check,
// which is the correct cascading verdict. On a cross-node disagreement
// the transaction is withdrawn from the nodes that accepted it (best
// effort, as in SubmitEverywhereBatch).
func (net *Network) SubmitEverywhereVerdicts(txs []*Tx) []TxVerdict {
	out := make([]TxVerdict, len(txs))
	if len(txs) == 0 {
		return out
	}
	v := net.liveView()
	tms := make([]obs.Timer, len(v.nodes))
	for i, n := range v.nodes {
		tms[i] = n.metrics.VerifyLatency.Start()
	}
	verrs := verifyTxVerdicts(txs, net.verifyWorkers)
	for _, tm := range tms {
		tm.Stop()
	}
	for i, tx := range txs {
		out[i].Hash = tx.Hash()
		if verrs[i] != nil {
			out[i].Err = verrs[i]
			continue
		}
		var accepted []*Node
		var submitErr error
		for _, n := range v.nodes {
			if !v.reachable(n.Address()) {
				continue
			}
			if _, err := n.submitVerified(tx); err != nil {
				if errors.Is(err, ErrTxKnown) || errors.Is(err, ErrTxStale) {
					// Idempotent rebroadcast; the node effectively holds it.
					accepted = append(accepted, n)
					continue
				}
				submitErr = err
				break
			}
			accepted = append(accepted, n)
		}
		switch {
		case submitErr != nil:
			for _, n := range accepted {
				n.removeFromMempool([]cryptoutil.Hash{out[i].Hash})
			}
			out[i].Err = submitErr
		case len(accepted) == 0:
			out[i].Err = errors.New("chain: no live node accepted the transaction")
		}
	}
	return out
}

// verifyTxVerdicts checks every signature with the bounded worker pool,
// returning a per-index error slice instead of VerifyTxSignatures'
// first-failure collapse. Each worker writes only its own indexes, so
// the slice needs no synchronization beyond the WaitGroup.
func verifyTxVerdicts(txs []*Tx, workers int) []error {
	errs := make([]error, len(txs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 {
		for i, tx := range txs {
			errs[i] = tx.VerifySignature()
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) {
					return
				}
				errs[i] = txs[i].VerifySignature()
			}
		}()
	}
	wg.Wait()
	return errs
}

// IsDown reports whether the node at addr is currently marked failed.
func (net *Network) IsDown(addr cryptoutil.Address) bool {
	net.mu.Lock()
	defer net.mu.Unlock()
	return net.down[addr]
}

// LiveNode returns the first node not marked down, or nil when every
// node has failed. Clients that need a ledger view (receipt waits,
// queries, nonce reads) must use a live node: a failed node's ledger is
// frozen until it recovers and syncs.
func (net *Network) LiveNode() *Node {
	v := net.liveView()
	for _, n := range v.nodes {
		if v.reachable(n.Address()) {
			return n
		}
	}
	return nil
}

// PendingTxs reports the largest mempool backlog among live nodes — the
// number of consensus-round transactions still to seal cluster-wide.
func (net *Network) PendingTxs() int {
	v := net.liveView()
	maxPending := 0
	for _, n := range v.nodes {
		if !v.reachable(n.Address()) {
			continue
		}
		if p := n.PendingTxs(); p > maxPending {
			maxPending = p
		}
	}
	return maxPending
}
