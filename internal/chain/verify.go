package chain

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// VerifyTxSignatures checks the signature of every transaction using a
// bounded pool of `workers` goroutines. ECDSA verification is the dominant
// CPU cost of block validation (it dwarfs the state replay for typical
// transactions), and every verification is independent, so the pool turns
// block admission from O(n) sequential verifies into O(n/cores).
//
// workers <= 0 selects GOMAXPROCS; workers == 1 degenerates to the
// sequential path (used as the ablation baseline). The returned error is
// deterministic: the failure of the lowest-indexed bad transaction,
// regardless of worker scheduling. Remaining work is abandoned as soon as
// any worker observes a failure.
func VerifyTxSignatures(txs []*Tx, workers int) error {
	if len(txs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers == 1 || len(txs) == 1 {
		for _, tx := range txs {
			if err := tx.VerifySignature(); err != nil {
				return err
			}
		}
		return nil
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) || failed.Load() {
					return
				}
				if err := txs[i].VerifySignature(); err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		// Exceptional path: re-scan sequentially so the reported error is
		// always the lowest-indexed failure, independent of scheduling.
		for _, tx := range txs {
			if err := tx.VerifySignature(); err != nil {
				return err
			}
		}
	}
	return nil
}
