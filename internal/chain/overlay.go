package chain

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/cryptoutil"
)

// StateRW is the mutable state surface transaction execution runs
// against. Both the committed *State and the copy-on-write *Overlay
// satisfy it, so the same executor code path serves direct execution,
// block validation, and benchmark replay without knowing which backing
// it writes to.
type StateRW interface {
	// Get returns the value for key (a copy) and whether it exists.
	Get(key string) ([]byte, bool)
	// Set stores a copy of value under key.
	Set(key string, value []byte)
	// Delete removes key (a no-op when absent).
	Delete(key string)
	// Keys returns the keys with the given prefix, sorted.
	Keys(prefix string) []string
	// Checkpoint marks the journal position for RevertTo.
	Checkpoint() int
	// RevertTo rolls back every mutation made after the checkpoint.
	RevertTo(checkpoint int)
	// Root returns the deterministic state commitment.
	Root() cryptoutil.Hash
}

var (
	_ StateRW = (*State)(nil)
	_ StateRW = (*Overlay)(nil)
)

// stateView is the read surface an Overlay layers over: the committed
// *State for a block overlay, or a parent *Overlay for the per-transaction
// child overlays the parallel scheduler executes against (parallel.go).
// view returns the stored slice WITHOUT copying; the result is immutable
// by the same contract State.view documents.
type stateView interface {
	view(key string) ([]byte, bool)
	Keys(prefix string) []string
	Len() int
	Root() cryptoutil.Hash
}

var (
	_ stateView = (*State)(nil)
	_ stateView = (*Overlay)(nil)
)

// overlayEntry is one key's pending effect in an overlay: a replacement
// value or a deletion marker.
type overlayEntry struct {
	value []byte
	del   bool
}

// overlayJournal records the layer entry a mutation displaced, so
// RevertTo can restore it (and the root) exactly.
type overlayJournal struct {
	key     string
	prior   overlayEntry
	existed bool // the key had a layer entry before the mutation
}

// Overlay is a copy-on-write view over a committed *State: reads fall
// through to the base, writes and deletes land in a small layer map, and
// the XOR state root is maintained incrementally from the base's root.
// Executing a block against an overlay therefore costs O(touched keys)
// regardless of ledger size — this is what replaced the O(ledger)
// State.Clone on the validation path — and on success the layer is
// exactly the block's net diff, so no separate Diff pass is needed.
//
// The base state must not be mutated while the overlay is live (the
// node's sealMu guarantees this: all state writers hold it). Concurrent
// readers of the base are fine — the overlay never writes through.
// An Overlay is safe for concurrent use, mirroring State's contract.
type Overlay struct {
	mu      sync.RWMutex
	base    stateView
	layer   map[string]overlayEntry
	journal []overlayJournal
	root    cryptoutil.Hash

	// Read-set tracking, enabled only on the child overlays the parallel
	// scheduler hands each transaction (newChildOverlay). reads records
	// every key whose value or existence the transaction observed (Get
	// and Delete — a delete's no-op decision is itself a read);
	// prefixReads records every Keys listing. Both feed touched-key
	// conflict detection; block overlays skip the bookkeeping entirely.
	recordReads bool
	reads       map[string]struct{} // guarded by mu
	prefixReads map[string]struct{} // guarded by mu
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base *State) *Overlay {
	return &Overlay{
		base:  base,
		layer: make(map[string]overlayEntry),
		root:  base.Root(),
	}
}

// newChildOverlay returns an empty read-recording overlay layered over a
// parent overlay. The parallel scheduler executes each transaction of a
// block against its own child: reads fall through the (quiescent) parent
// to the committed state, writes land in the child's layer, and the
// recorded read set is what conflict detection intersects with earlier
// transactions' write sets. The parent must not be mutated while children
// execute (the scheduler's phase barrier guarantees this).
func newChildOverlay(parent *Overlay) *Overlay {
	return &Overlay{
		base:        parent,
		layer:       make(map[string]overlayEntry),
		root:        parent.Root(),
		recordReads: true,
		reads:       make(map[string]struct{}),
		prefixReads: make(map[string]struct{}),
	}
}

// view returns the key's value as seen through the overlay without
// copying, satisfying stateView so child overlays can layer over this
// one. The returned slice is immutable (see effectiveLocked).
func (o *Overlay) view(key string) ([]byte, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.effectiveLocked(key)
}

// effectiveLocked returns the key's current value as seen through the
// overlay, without copying. o.mu must be held. The returned slice is
// immutable (both State and the layer store fresh copies and never
// mutate in place), so it is safe to hash or alias.
func (o *Overlay) effectiveLocked(key string) ([]byte, bool) {
	if e, ok := o.layer[key]; ok {
		if e.del {
			return nil, false
		}
		return e.value, true
	}
	return o.base.view(key)
}

// Get returns the value for key and whether it exists. The returned
// slice is a copy. A read-recording child overlay also notes the key in
// its read set (misses included: observing absence is a read too).
func (o *Overlay) Get(key string) ([]byte, bool) {
	if o.recordReads {
		// Recording mutates the read set, so the read path needs the
		// write lock on a child (children are effectively single-owner,
		// so this costs nothing in practice).
		o.mu.Lock()
		defer o.mu.Unlock()
		o.reads[key] = struct{}{}
		return copyValue(o.effectiveLocked(key))
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	return copyValue(o.effectiveLocked(key))
}

// copyValue copies an effectiveLocked result for return to a caller that
// may write through it.
func copyValue(v []byte, ok bool) ([]byte, bool) {
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Set stores a copy of value under key.
func (o *Overlay) Set(key string, value []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	prior, existed := o.layer[key]
	o.journal = append(o.journal, overlayJournal{key: key, prior: prior, existed: existed})
	if cur, ok := o.effectiveLocked(key); ok {
		xorHash(&o.root, leafHash(key, cur))
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	o.layer[key] = overlayEntry{value: cp}
	xorHash(&o.root, leafHash(key, cp))
}

// Delete removes key. Deleting an absent key is a no-op (and is not
// journaled), matching State.Delete. On a read-recording child the key
// joins the read set either way: whether the delete takes effect depends
// on the key's existence, which is an observation of state.
func (o *Overlay) Delete(key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.recordReads {
		o.reads[key] = struct{}{}
	}
	cur, ok := o.effectiveLocked(key)
	if !ok {
		return
	}
	prior, existed := o.layer[key]
	o.journal = append(o.journal, overlayJournal{key: key, prior: prior, existed: existed})
	xorHash(&o.root, leafHash(key, cur))
	o.layer[key] = overlayEntry{del: true}
}

// Keys returns the keys with the given prefix, sorted: the base's keys
// minus overlay deletions, plus overlay additions. A read-recording
// child notes the prefix: a listing observes the existence of every key
// under it, so any earlier write under the prefix is a conflict.
func (o *Overlay) Keys(prefix string) []string {
	if o.recordReads {
		o.mu.Lock()
		o.prefixReads[prefix] = struct{}{}
		o.mu.Unlock()
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.layer))
	for _, k := range o.base.Keys(prefix) {
		if e, ok := o.layer[k]; ok && e.del {
			continue
		}
		out = append(out, k)
	}
	for k, e := range o.layer {
		if e.del || !strings.HasPrefix(k, prefix) {
			continue
		}
		if _, inBase := o.base.view(k); inBase {
			continue // already listed
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Checkpoint marks the current journal position; RevertTo undoes every
// mutation made after it.
func (o *Overlay) Checkpoint() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.journal)
}

// RevertTo rolls the overlay back to a checkpoint previously returned by
// Checkpoint.
func (o *Overlay) RevertTo(checkpoint int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := len(o.journal) - 1; i >= checkpoint; i-- {
		e := o.journal[i]
		if cur, ok := o.effectiveLocked(e.key); ok {
			xorHash(&o.root, leafHash(e.key, cur))
		}
		if e.existed {
			o.layer[e.key] = e.prior
		} else {
			delete(o.layer, e.key)
		}
		if cur, ok := o.effectiveLocked(e.key); ok {
			xorHash(&o.root, leafHash(e.key, cur))
		}
	}
	o.journal = o.journal[:checkpoint]
}

// Root returns the overlay's state commitment: the base root adjusted
// incrementally by every overlay mutation, equal to what the base's root
// becomes once the overlay is folded in.
func (o *Overlay) Root() cryptoutil.Hash {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.root
}

// Len returns the number of keys visible through the overlay.
func (o *Overlay) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := o.base.Len()
	for k, e := range o.layer {
		_, inBase := o.base.view(k)
		switch {
		case e.del && inBase:
			n--
		case !e.del && !inBase:
			n++
		}
	}
	return n
}

// TakeDeltas drains the overlay's write set as the block's net diff, one
// Delta per touched key sorted by key. The delta values are MOVED out of
// the layer, not copied (they are owned by the overlay and immutable),
// so the commit hot path never re-copies block data. The overlay is
// empty afterwards and must not be written again by the caller.
func (o *Overlay) TakeDeltas() []Delta {
	o.mu.Lock()
	defer o.mu.Unlock()
	diff := make([]Delta, 0, len(o.layer))
	for k, e := range o.layer {
		if e.del {
			diff = append(diff, Delta{K: k, Del: true})
		} else {
			diff = append(diff, Delta{K: k, V: e.value})
		}
	}
	sort.Slice(diff, func(i, j int) bool { return diff[i].K < diff[j].K })
	o.layer = make(map[string]overlayEntry)
	o.journal = nil
	return diff
}

// conflictsWith reports whether the child overlay's recorded read set
// (keys plus Keys-listing prefixes) intersects written — the union of
// the write sets of the transactions merged ahead of it. A hit means the
// optimistic execution observed state an earlier transaction changes, so
// its result cannot be trusted and the scheduler re-executes serially.
func (o *Overlay) conflictsWith(written map[string]struct{}) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for k := range o.reads {
		if _, ok := written[k]; ok {
			return true
		}
	}
	for p := range o.prefixReads {
		for k := range written {
			if strings.HasPrefix(k, p) {
				return true
			}
		}
	}
	return false
}

// addWriteKeys folds the overlay's write set (layer keys, deletions
// included) into written, for conflict checks against later transactions.
func (o *Overlay) addWriteKeys(written map[string]struct{}) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for k := range o.layer {
		written[k] = struct{}{}
	}
}

// mergeChild folds a non-conflicting child's layer into this overlay,
// entry for entry — NOT through Set/Delete. The distinction matters for
// bit-identical block diffs: a transaction that creates and then deletes
// a base-absent key leaves a deletion marker in its layer, and the serial
// path's single overlay would carry that marker into TakeDeltas, so the
// merge must preserve it verbatim rather than letting Delete's absent-key
// no-op drop it. Values are moved, not copied (the child is discarded
// afterwards and its slices are immutable). The root is maintained
// incrementally exactly as Set/Delete would.
func (o *Overlay) mergeChild(child *Overlay) {
	child.mu.RLock()
	keys := make([]string, 0, len(child.layer))
	for k := range child.layer {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]overlayEntry, len(keys))
	for i, k := range keys {
		entries[i] = child.layer[k]
	}
	child.mu.RUnlock()

	o.mu.Lock()
	defer o.mu.Unlock()
	for i, k := range keys {
		e := entries[i]
		if cur, ok := o.effectiveLocked(k); ok {
			xorHash(&o.root, leafHash(k, cur))
		}
		if !e.del {
			xorHash(&o.root, leafHash(k, e.value))
		}
		o.layer[k] = e
	}
}
