package chain

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/store"
)

// durableConfig builds a durable single-authority node config rooted at
// dir.
func durableConfig(dir string, key *cryptoutil.KeyPair, clk *simclock.Sim, snapEvery int) Config {
	return Config{
		Key:              key,
		Authorities:      []cryptoutil.Address{key.Address()},
		Executor:         testExecutor{},
		Clock:            clk,
		GenesisTime:      chainEpoch,
		DataDir:          dir,
		SnapshotInterval: snapEvery,
		Persist:          store.Options{Sync: store.SyncNever},
	}
}

// sealSet seals one block containing a single "set" transaction.
func sealSet(t *testing.T, n *Node, key *cryptoutil.KeyPair, clk *simclock.Sim, nonce uint64, k, v string) *Block {
	t.Helper()
	if _, err := n.SubmitTx(mustTx(t, key, nonce, testContractAddr(), k, v)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	block, err := n.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return block
}

// requireEquivalent asserts that a recovered node reproduces a reference
// node's observable chain state: head, state root, full ledger, nonces,
// and the gas cost ledger.
func requireEquivalent(t *testing.T, recovered, ref *Node, senders ...cryptoutil.Address) {
	t.Helper()
	if gh, wh := recovered.Height(), ref.Height(); gh != wh {
		t.Fatalf("height = %d, want %d", gh, wh)
	}
	if gh, wh := recovered.Head().Hash(), ref.Head().Hash(); gh != wh {
		t.Fatalf("head hash = %s, want %s", gh.Short(), wh.Short())
	}
	if gr, wr := recovered.State().Root(), ref.State().Root(); gr != wr {
		t.Fatalf("state root = %s, want %s", gr.Short(), wr.Short())
	}
	for h := uint64(0); h <= ref.Height(); h++ {
		g, w := recovered.BlockByNumber(h), ref.BlockByNumber(h)
		if g == nil {
			t.Fatalf("block %d missing after recovery", h)
		}
		if g.Hash() != w.Hash() {
			t.Fatalf("block %d hash differs", h)
		}
		if len(g.Receipts) != len(w.Receipts) {
			t.Fatalf("block %d has %d receipts, want %d", h, len(g.Receipts), len(w.Receipts))
		}
		for i := range w.Receipts {
			if g.Receipts[i].Digest() != w.Receipts[i].Digest() {
				t.Fatalf("block %d receipt %d differs", h, i)
			}
		}
	}
	for _, s := range senders {
		if gn, wn := recovered.CommittedNonce(s), ref.CommittedNonce(s); gn != wn {
			t.Fatalf("nonce of %s = %d, want %d", s.Short(), gn, wn)
		}
		if gg, wg := recovered.Costs().SpentBy(s), ref.Costs().SpentBy(s); gg != wg {
			t.Fatalf("costs of %s = %d, want %d", s.Short(), gg, wg)
		}
	}
	if gt, wt := recovered.Costs().TotalSpent(), ref.Costs().TotalSpent(); gt != wt {
		t.Fatalf("total gas = %d, want %d", gt, wt)
	}
	if recovered.PendingTxs() != 0 {
		t.Fatal("recovered node has mempool content")
	}
}

// TestOpenNodeBootstrapEmptyDir: the empty-data-dir leg — OpenNode on a
// fresh dir behaves like NewNode, and the dir is immediately reopenable.
func TestOpenNodeBootstrapEmptyDir(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, key, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n.Height() != 0 {
		t.Fatalf("bootstrap height = %d", n.Height())
	}
	sealSet(t, n, key, clk, 0, "a", "1")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := OpenNode(durableConfig(dir, key, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	requireEquivalent(t, n2, n, key.Address())
}

// TestOpenNodeDataDirlessFallback: an empty DataDir is exactly NewNode.
func TestOpenNodeDataDirlessFallback(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	n, err := OpenNode(Config{
		Key:         key,
		Authorities: []cryptoutil.Address{key.Address()},
		Executor:    testExecutor{},
		GenesisTime: chainEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.wal != nil {
		t.Fatal("in-memory node got a WAL")
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryCleanClose: seal a tail of blocks (including a reverted
// transaction), close cleanly, reopen — the matrix's clean-close leg.
func TestRecoveryCleanClose(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, key, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		sealSet(t, n, key, clk, uint64(i), fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	// A reverted transaction must recover too (charged gas, no state).
	failTx, err := NewTx(key, 5, testContractAddr(), "fail", struct{}{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SubmitTx(failTx); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := n.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	n2, err := OpenNode(durableConfig(dir, key, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	requireEquivalent(t, n2, n, key.Address())
	// The recovered node keeps sealing on the same chain.
	sealSet(t, n2, key, clk, 6, "post", "recovery")
	if n2.Height() != 7 {
		t.Fatalf("post-recovery height = %d, want 7", n2.Height())
	}
}

// TestRecoveryCrashAfterSync: the crash-after-fsync leg — Crash abandons
// the WAL without the final flush; nothing acknowledged is lost.
func TestRecoveryCrashAfterSync(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	cfg := durableConfig(dir, key, clk, 0)
	cfg.Persist = store.Options{Sync: store.SyncAlways}
	n, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		sealSet(t, n, key, clk, uint64(i), fmt.Sprintf("k%d", i), "v")
	}
	if err := n.Crash(); err != nil {
		t.Fatal(err)
	}
	n2, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	requireEquivalent(t, n2, n, key.Address())
}

// TestRecoveryTornTail: the torn-tail legs — a WAL truncated inside the
// last record (partial payload, partial length prefix) or with a flipped
// byte (bad CRC) recovers to the last complete block.
func TestRecoveryTornTail(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(t *testing.T, path string)
	}{
		{"partial-payload", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-7); err != nil {
				t.Fatal(err)
			}
		}},
		{"partial-length-prefix", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Rewrite the file as (everything but the last record) plus 3
			// stray header bytes — a crash mid-header.
			offset := 0
			prev := 0
			for offset < len(raw) {
				_, consumed, err := store.DecodeRecord(raw[offset:])
				if err != nil {
					t.Fatal(err)
				}
				prev = offset
				offset += consumed
			}
			if err := os.WriteFile(path, raw[:prev+3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-crc", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-10] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			key := cryptoutil.MustGenerateKey()
			clk := simclock.NewSim(chainEpoch)
			n, err := OpenNode(durableConfig(dir, key, clk, 0))
			if err != nil {
				t.Fatal(err)
			}
			for i := range 4 {
				sealSet(t, n, key, clk, uint64(i), fmt.Sprintf("k%d", i), "v")
			}
			if err := n.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, WALPath(dir))

			n2, err := OpenNode(durableConfig(dir, key, clk, 0))
			if err != nil {
				t.Fatal(err)
			}
			defer n2.Close()
			// The last block is gone; everything before it is intact.
			if n2.Height() != 3 {
				t.Fatalf("recovered height = %d, want 3", n2.Height())
			}
			if n2.Head().Hash() != n.BlockByNumber(3).Hash() {
				t.Fatal("recovered head is not the last complete block")
			}
			if got := n2.State().Root(); got != n.BlockByNumber(3).Header.StateRoot {
				t.Fatalf("recovered root %s, want block 3's %s",
					got.Short(), n.BlockByNumber(3).Header.StateRoot.Short())
			}
			// Nonces rewound with the lost block: the chain accepts the
			// lost transaction again.
			if got := n2.CommittedNonce(key.Address()); got != 3 {
				t.Fatalf("recovered nonce = %d, want 3", got)
			}
			sealSet(t, n2, key, clk, 3, "k3", "again")
			if n2.Height() != 4 {
				t.Fatalf("post-recovery height = %d", n2.Height())
			}
		})
	}
}

// TestRecoverySnapshotPlusTail: the snapshot+tail-replay leg — with a
// snapshot interval of 3 over 8 blocks, recovery must start from the
// newest snapshot (6) and replay only the tail, producing identical
// state. Snapshots must exist and be pruned to the retention bound.
func TestRecoverySnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, key, clk, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range 8 {
		sealSet(t, n, key, clk, uint64(i), fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := store.ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) == 0 || seqs[0] != 6 {
		t.Fatalf("snapshots = %v, want newest 6", seqs)
	}
	if len(seqs) > snapshotsKept {
		t.Fatalf("%d snapshots retained, want <= %d", len(seqs), snapshotsKept)
	}

	n2, err := OpenNode(durableConfig(dir, key, clk, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	requireEquivalent(t, n2, n, key.Address())
}

// TestRecoverySnapshotAheadOfTornWAL: a snapshot taken at the height of
// a block the torn tail destroyed must be bypassed for an older one (or
// a genesis replay) — never trusted above the recovered head.
func TestRecoverySnapshotAheadOfTornWAL(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, key, clk, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		sealSet(t, n, key, clk, uint64(i), fmt.Sprintf("k%d", i), "v")
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the block-4 record: the snapshot at 4 now refers to a height
	// beyond the recoverable head.
	info, err := os.Stat(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(WALPath(dir), info.Size()-5); err != nil {
		t.Fatal(err)
	}
	n2, err := OpenNode(durableConfig(dir, key, clk, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if n2.Height() != 3 {
		t.Fatalf("recovered height = %d, want 3", n2.Height())
	}
	if got := n2.State().Root(); got != n.BlockByNumber(3).Header.StateRoot {
		t.Fatal("state root does not match the last complete block")
	}
}

// TestRecoveryCorruptSnapshotFallsBack: a byte-flipped snapshot is
// skipped and recovery replays the full diff log instead.
func TestRecoveryCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, key, clk, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		sealSet(t, n, key, clk, uint64(i), fmt.Sprintf("k%d", i), "v")
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := store.ListSnapshots(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("snapshots = %v, %v", seqs, err)
	}
	for _, seq := range seqs {
		path := fmt.Sprintf("%s/snap-%016x.snap", dir, seq)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n2, err := OpenNode(durableConfig(dir, key, clk, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	requireEquivalent(t, n2, n, key.Address())
}

// TestOpenNodeRejectsForeignStore: a data dir recorded under a different
// authority set must not open (it would fork history).
func TestOpenNodeRejectsForeignStore(t *testing.T) {
	dir := t.TempDir()
	keyA := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, keyA, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	sealSet(t, n, keyA, clk, 0, "a", "1")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	keyB := cryptoutil.MustGenerateKey()
	if _, err := OpenNode(durableConfig(dir, keyB, clk, 0)); !errors.Is(err, ErrStoreMismatch) {
		t.Fatalf("foreign store opened: %v", err)
	}
}

// TestOpenNodeRestartWithDifferentGenesisTime: the meta record's genesis
// time wins over the config's, so a restart with a "wrong" wall-clock
// genesis still reproduces the logged chain.
func TestOpenNodeRestartWithDifferentGenesisTime(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, key, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	sealSet(t, n, key, clk, 0, "a", "1")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := durableConfig(dir, key, clk, 0)
	cfg.GenesisTime = chainEpoch.Add(42 * time.Hour) // a lying config
	n2, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	requireEquivalent(t, n2, n, key.Address())
}

// TestDurableClusterApplyBlock: a durable validator persists blocks it
// validated (not sealed), and recovers them.
func TestDurableClusterApplyBlock(t *testing.T) {
	dirB := t.TempDir()
	keyA := cryptoutil.MustGenerateKey()
	keyB := cryptoutil.MustGenerateKey()
	auths := []cryptoutil.Address{keyA.Address(), keyB.Address()}
	clk := simclock.NewSim(chainEpoch)
	mk := func(key *cryptoutil.KeyPair, dir string) *Node {
		cfg := Config{
			Key: key, Authorities: auths, Executor: testExecutor{},
			Clock: clk, GenesisTime: chainEpoch,
			DataDir: dir, Persist: store.Options{Sync: store.SyncNever},
		}
		n, err := OpenNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk(keyA, "") // in-memory sealer
	b := mk(keyB, dirB)
	net, err := NewNetwork(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sender := cryptoutil.MustGenerateKey()
	for i := range 3 {
		if _, err := net.SubmitEverywhere(mustTx(t, sender, uint64(i), testContractAddr(), fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
		if _, err := net.SealNext(); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := mk(keyB, dirB)
	defer b2.Close()
	requireEquivalent(t, b2, a, sender.Address())
}

// TestStateTakeDiffAndApplyDiff pins the diff primitives directly:
// set/overwrite/delete fold to a net effect that ApplyDiff reproduces,
// root included.
func TestStateTakeDiffAndApplyDiff(t *testing.T) {
	st := NewState()
	st.Set("keep", []byte("old"))
	st.DiscardJournal()
	rootBefore := st.Root()

	st.Set("keep", []byte("new"))
	st.Set("temp", []byte("x"))
	st.Delete("temp")
	st.Set("fresh", []byte("y"))
	diff := st.TakeDiff()
	if len(diff) != 3 {
		t.Fatalf("diff has %d entries, want 3 (fresh, keep, temp)", len(diff))
	}
	for i := 1; i < len(diff); i++ {
		if diff[i-1].K >= diff[i].K {
			t.Fatalf("diff not sorted: %q >= %q", diff[i-1].K, diff[i].K)
		}
	}

	// Replay the diff on a state holding only the pre-block content.
	replay := NewState()
	replay.Set("keep", []byte("old"))
	replay.DiscardJournal()
	replay.ApplyDiff(diff)
	if replay.Root() != st.Root() {
		t.Fatal("ApplyDiff root diverges from the live state")
	}
	if v, ok := replay.Get("keep"); !ok || string(v) != "new" {
		t.Fatalf("keep = %q, %v", v, ok)
	}
	if _, ok := replay.Get("temp"); ok {
		t.Fatal("temp survived its delete")
	}
	if rootBefore == st.Root() {
		t.Fatal("root did not change across the block")
	}
	// TakeDiff consumed the journal: a fresh TakeDiff is empty.
	if d := st.TakeDiff(); len(d) != 0 {
		t.Fatalf("second TakeDiff returned %d entries", len(d))
	}
}

// TestCommitRollsBackOnWALFailure: when the WAL refuses the block
// record, the commit is aborted AND the executed mutations are reverted
// — the node stays exactly at its previous committed block (memory
// consistent with disk and peers), rather than diverging silently.
func TestCommitRollsBackOnWALFailure(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(dir, key, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	sealSet(t, n, key, clk, 0, "a", "1")
	headBefore := n.Head().Hash()
	rootBefore := n.State().Root()

	// Sabotage the store: close the WAL out from under the node.
	if err := n.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SubmitTx(mustTx(t, key, 1, testContractAddr(), "b", "2")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := n.Seal(); err == nil {
		t.Fatal("seal succeeded with a dead WAL")
	}
	if n.Head().Hash() != headBefore {
		t.Fatal("ledger advanced despite the WAL failure")
	}
	if n.State().Root() != rootBefore {
		t.Fatal("state diverged despite the WAL failure")
	}
	if n.State().Root() != n.Head().Header.StateRoot {
		t.Fatal("live state root no longer matches the committed head root")
	}
}
