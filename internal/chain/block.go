package chain

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cryptoutil"
)

// Header carries the consensus-relevant fields of a block.
type Header struct {
	// Number is the block height; the genesis block is 0.
	Number uint64
	// ParentHash links to the previous block.
	ParentHash cryptoutil.Hash
	// Time is the proposer-declared block timestamp.
	Time time.Time
	// Proposer is the authority that produced the block.
	Proposer cryptoutil.Address
	// TxRoot commits to the block's transactions.
	TxRoot cryptoutil.Hash
	// ReceiptRoot commits to the execution outcomes.
	ReceiptRoot cryptoutil.Hash
	// StateRoot commits to the post-execution state.
	StateRoot cryptoutil.Hash
	// Signature is the proposer's signature over the header content.
	Signature []byte
}

// SigningBytes returns the deterministic encoding covered by the proposer
// signature.
func (h *Header) SigningBytes() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "header|%d|%s|%d|%s|%s|%s|%s",
		h.Number, h.ParentHash, h.Time.UnixNano(), h.Proposer, h.TxRoot, h.ReceiptRoot, h.StateRoot)
	return []byte(b.String())
}

// Hash returns the block hash (header content plus signature).
func (h *Header) Hash() cryptoutil.Hash {
	return cryptoutil.HashOf(h.SigningBytes(), h.Signature)
}

// Block is a header plus its transactions and receipts.
type Block struct {
	Header   Header
	Txs      []*Tx
	Receipts []*Receipt
}

// Hash returns the block hash.
func (b *Block) Hash() cryptoutil.Hash { return b.Header.Hash() }

// GasUsed returns the total gas consumed by the block's transactions.
func (b *Block) GasUsed() uint64 {
	var total uint64
	for _, r := range b.Receipts {
		total += r.GasUsed
	}
	return total
}

// merkleRoot computes a binary Merkle root over the leaves. An empty leaf
// set hashes to the hash of the empty string, and odd levels promote the
// last node unchanged.
func merkleRoot(leaves []cryptoutil.Hash) cryptoutil.Hash {
	if len(leaves) == 0 {
		return cryptoutil.HashOf(nil)
	}
	level := make([]cryptoutil.Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := make([]cryptoutil.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			next = append(next, cryptoutil.HashOf(level[i][:], level[i+1][:]))
		}
		level = next
	}
	return level[0]
}

// txRoot commits to a transaction list.
func txRoot(txs []*Tx) cryptoutil.Hash {
	leaves := make([]cryptoutil.Hash, len(txs))
	for i, tx := range txs {
		leaves[i] = tx.Hash()
	}
	return merkleRoot(leaves)
}

// receiptRoot commits to a receipt list.
func receiptRoot(receipts []*Receipt) cryptoutil.Hash {
	leaves := make([]cryptoutil.Hash, len(receipts))
	for i, r := range receipts {
		leaves[i] = r.Digest()
	}
	return merkleRoot(leaves)
}
