package chain

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
)

// This file is the chain layer's byzantine-fault surface: the rejection
// path for equivocating proposers (with evidence collection), forgery
// helpers that manufacture the adversarial artifacts fault injection
// needs (a validly signed sibling block at an already-committed height;
// blocks invalid in exactly one dimension), and the network-level
// byzantine-delivery hook that injects such a block into a single node's
// validation path as if a malicious peer had gossiped it.

// Byzantine-rejection errors.
var (
	// ErrKnownBlock reports a delivery of a block the node has already
	// committed — a harmless rebroadcast, not an attack. It matches
	// ErrBadNumber under errors.Is (the pre-evidence classification).
	ErrKnownBlock = fmt.Errorf("%w: block already committed", ErrBadNumber)
	// ErrEquivocation reports a validly signed block that conflicts with a
	// committed block at the same height from the same proposer — proof
	// the proposer sealed twice. The receiving node records
	// EquivocationEvidence before returning it.
	ErrEquivocation = errors.New("chain: proposer equivocated")
)

// EquivocationEvidence is a node's record of a detected double-seal: the
// proposer, the height, and the two conflicting block hashes. Both blocks
// carried a valid signature from Proposer (nodes verify before recording,
// so an attacker cannot frame an honest authority), which makes the pair
// self-certifying slashing material.
type EquivocationEvidence struct {
	Height        uint64
	Proposer      cryptoutil.Address
	CommittedHash cryptoutil.Hash
	OfferedHash   cryptoutil.Hash
}

// handleStaleDelivery classifies a delivered block whose height is at or
// below the local head: a byte-identical rebroadcast is ErrKnownBlock; a
// conflicting block validly signed by the proposer already committed at
// that height is an equivocation (evidence is recorded); anything else is
// the ordinary ErrBadNumber. Caller holds sealMu.
func (n *Node) handleStaleDelivery(block *Block, proposerKey []byte) error {
	h := block.Header
	committed := n.BlockByNumber(h.Number)
	if committed == nil {
		return fmt.Errorf("%w: got %d, want %d", ErrBadNumber, h.Number, n.Height()+1)
	}
	if committed.Hash() == block.Hash() {
		return fmt.Errorf("%w: height %d", ErrKnownBlock, h.Number)
	}
	if committed.Header.Proposer != h.Proposer || !n.isAuthority(h.Proposer) {
		return fmt.Errorf("%w: got %d, want %d", ErrBadNumber, h.Number, n.Height()+1)
	}
	// Same height, same proposer, different content. Verify the signature
	// BEFORE recording evidence: a forged signature must not let an
	// attacker frame an honest authority as an equivocator.
	if err := cryptoutil.VerifyWithAddress(h.Proposer, proposerKey, h.SigningBytes(), h.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeaderSig, err)
	}
	if n.equivGuardOff.Load() {
		// Test hook (SetEquivocationGuard(false)): swallow the conflicting
		// block without evidence or error. The scenario engine's
		// no-equivocation-accepted invariant exists to catch exactly this.
		return nil
	}
	n.recordEquivocation(EquivocationEvidence{
		Height:        h.Number,
		Proposer:      h.Proposer,
		CommittedHash: committed.Hash(),
		OfferedHash:   block.Hash(),
	})
	return fmt.Errorf("%w: %s sealed two blocks at height %d", ErrEquivocation, h.Proposer.Short(), h.Number)
}

// recordEquivocation appends evidence, deduplicating rebroadcasts of the
// same conflicting block.
func (n *Node) recordEquivocation(ev EquivocationEvidence) {
	n.evMu.Lock()
	defer n.evMu.Unlock()
	for _, have := range n.evidence {
		if have.Height == ev.Height && have.OfferedHash == ev.OfferedHash {
			return
		}
	}
	n.evidence = append(n.evidence, ev)
}

// EquivocationEvidence returns the double-seal evidence this node has
// collected (in detection order). Evidence lives in memory only: a
// crash-restarted node starts with none, except for equivocal records
// recovery itself found in its WAL.
func (n *Node) EquivocationEvidence() []EquivocationEvidence {
	n.evMu.Lock()
	defer n.evMu.Unlock()
	return append([]EquivocationEvidence(nil), n.evidence...)
}

// SetEquivocationGuard enables (default) or disables the equivocation
// rejection path. Disabling is strictly a fault-injection hook: the node
// then silently ignores conflicting same-height blocks instead of
// rejecting them with evidence, which the scenario engine's soak must
// detect as an invariant violation.
func (n *Node) SetEquivocationGuard(enabled bool) {
	n.equivGuardOff.Store(!enabled)
}

// ForgeEquivocalSibling builds a second, distinct block at base's height,
// validly signed by the same proposer: the timestamp is nudged forward
// one nanosecond and the header re-signed, so every consensus field but
// the time (and therefore the hash) matches. key must be the proposer's
// key — this helper plays the compromised authority, it cannot forge
// signatures it does not hold.
func ForgeEquivocalSibling(base *Block, key *cryptoutil.KeyPair) (*Block, error) {
	if base.Header.Number == 0 {
		return nil, errors.New("chain: cannot equivocate at genesis")
	}
	if key.Address() != base.Header.Proposer {
		return nil, fmt.Errorf("chain: key %s is not base proposer %s",
			key.Address().Short(), base.Header.Proposer.Short())
	}
	h := base.Header
	h.Time = h.Time.Add(time.Nanosecond)
	sig, err := key.Sign(h.SigningBytes())
	if err != nil {
		return nil, err
	}
	h.Signature = sig
	return &Block{Header: h, Txs: base.Txs, Receipts: base.Receipts}, nil
}

// InvalidBlockKind selects the single dimension in which ForgeInvalidBlock
// corrupts an otherwise valid block.
type InvalidBlockKind int

const (
	// InvalidStateRoot commits to a state root execution cannot produce.
	InvalidStateRoot InvalidBlockKind = iota
	// InvalidSignature carries a corrupted proposer signature.
	InvalidSignature
	// InvalidGas includes a (properly signed) transaction whose gas limit
	// exceeds MaxTxGasLimit.
	InvalidGas
)

func (k InvalidBlockKind) String() string {
	switch k {
	case InvalidStateRoot:
		return "state-root"
	case InvalidSignature:
		return "signature"
	case InvalidGas:
		return "gas"
	}
	return fmt.Sprintf("invalid-kind(%d)", int(k))
}

// ForgeInvalidBlock builds a block extending target's head that is
// invalid in exactly the requested dimension and valid in every other,
// signed by key (which must be an authority so rejection isolates the
// corrupted dimension rather than tripping the membership check).
// Delivering it to an honest node must fail with the kind's distinct
// error: ErrBadStateRoot, ErrBadHeaderSig, or ErrGasTooLarge.
func ForgeInvalidBlock(target *Node, key *cryptoutil.KeyPair, kind InvalidBlockKind) (*Block, error) {
	if !target.isAuthority(key.Address()) {
		return nil, fmt.Errorf("chain: %s is not an authority", key.Address().Short())
	}
	parent := target.Head()
	var txs []*Tx
	if kind == InvalidGas {
		// A validly signed transaction from a throwaway sender, over the
		// per-transaction gas cap. Admission would refuse it; a byzantine
		// proposer writes it straight into a block.
		tx, err := NewTx(cryptoutil.MustGenerateKey(), 0, cryptoutil.Address{}, "overgas",
			nil, MaxTxGasLimit+1)
		if err != nil {
			return nil, err
		}
		txs = []*Tx{tx}
	}
	h := Header{
		Number:      parent.Header.Number + 1,
		ParentHash:  parent.Hash(),
		Time:        parent.Header.Time.Add(time.Nanosecond),
		Proposer:    key.Address(),
		TxRoot:      txRoot(txs),
		ReceiptRoot: receiptRoot(nil),
		// An empty block leaves the state untouched, so the parent's root
		// is the correct commitment (the over-gas block is rejected before
		// execution and the roots never compared).
		StateRoot: parent.Header.StateRoot,
	}
	if kind == InvalidStateRoot {
		h.StateRoot[0] ^= 0xff
	}
	sig, err := key.Sign(h.SigningBytes())
	if err != nil {
		return nil, err
	}
	h.Signature = sig
	if kind == InvalidSignature {
		h.Signature = append([]byte(nil), sig...)
		h.Signature[0] ^= 0xff
	}
	return &Block{Header: h, Txs: txs}, nil
}

// DeliverTo injects a block into one member's validation path exactly as
// a gossip delivery would — regardless of liveness or partition state.
// This is the byzantine-delivery hook: fault injection uses it to model a
// malicious peer feeding a node a block the honest broadcast path would
// never send. The target's ApplyBlock verdict is returned verbatim.
func (net *Network) DeliverTo(addr cryptoutil.Address, block *Block, proposerKey []byte) error {
	net.mu.Lock()
	var target *Node
	for _, n := range net.nodes {
		if n.Address() == addr {
			target = n
			break
		}
	}
	net.mu.Unlock()
	if target == nil {
		return fmt.Errorf("chain: %s is not a cluster member", addr.Short())
	}
	return target.ApplyBlock(block, proposerKey)
}
