package chain

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cryptoutil"
	"repro/internal/store"
)

// Binary codec for the chain's durable records (WAL entries and state
// snapshots). The format is a tagged, length-prefixed encoding built on
// the store package's primitives: varint integers, raw byte strings (no
// base64 inflation), and fixed-width hashes/addresses with no per-field
// framing. Encoding is deterministic (snapshot keys are sorted; all
// other fields have a fixed order), so identical logical records always
// produce identical bytes.
//
// Record payloads written before this codec existed are JSON documents;
// they always start with '{', which is never a binary tag, so decoders
// route through store.IsLegacyJSON and JSON-era data dirs keep
// recovering. New records are always written in the binary format —
// a log may therefore hold a JSON prefix and a binary tail.
const (
	// tagChainMeta opens a chain-identity (meta) WAL record.
	tagChainMeta byte = 0x01
	// tagChainBlock opens a committed-block WAL record.
	tagChainBlock byte = 0x02
	// tagChainSnapshot opens a state snapshot payload.
	tagChainSnapshot byte = 0x03
)

// encodeWALMeta encodes the chain-identity record.
func encodeWALMeta(m *walMeta) ([]byte, error) {
	dst := []byte{tagChainMeta}
	dst, err := store.AppendTime(dst, m.GenesisTime)
	if err != nil {
		return nil, err
	}
	dst = store.AppendUvarint(dst, uint64(len(m.Authorities)))
	for _, a := range m.Authorities {
		dst = append(dst, a[:]...)
	}
	return dst, nil
}

// encodeWALBlock encodes a committed block plus its net state diff.
func encodeWALBlock(b *walBlock) ([]byte, error) {
	dst := make([]byte, 0, blockRecordSizeHint(b))
	dst = append(dst, tagChainBlock)
	dst, err := appendHeader(dst, &b.Header)
	if err != nil {
		return nil, err
	}
	dst = store.AppendUvarint(dst, uint64(len(b.Txs)))
	for _, tx := range b.Txs {
		dst = appendTx(dst, tx)
	}
	dst = store.AppendUvarint(dst, uint64(len(b.Receipts)))
	for _, r := range b.Receipts {
		dst = appendReceipt(dst, r)
	}
	dst = store.AppendUvarint(dst, uint64(len(b.Diff)))
	for i := range b.Diff {
		dst = appendDelta(dst, &b.Diff[i])
	}
	return dst, nil
}

// blockRecordSizeHint estimates the encoded size so the hot commit path
// allocates the record buffer once.
func blockRecordSizeHint(b *walBlock) int {
	n := 256
	for _, tx := range b.Txs {
		n += 128 + len(tx.SenderKey) + len(tx.Method) + len(tx.Args) + len(tx.Signature)
	}
	for _, r := range b.Receipts {
		n += 96 + len(r.Err) + len(r.Return)
		for i := range r.Events {
			ev := &r.Events[i]
			n += 80 + len(ev.Topic) + len(ev.Key) + len(ev.Data)
		}
	}
	for i := range b.Diff {
		n += 16 + len(b.Diff[i].K) + len(b.Diff[i].V)
	}
	return n
}

// decodeWALRecord decodes a WAL record payload in either format: tagged
// binary, or the legacy JSON envelope ('{' first byte).
func decodeWALRecord(payload []byte) (*walRecord, error) {
	if store.IsLegacyJSON(payload) {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("chain: legacy record: %w", err)
		}
		if rec.Meta == nil && rec.Block == nil {
			return nil, fmt.Errorf("chain: legacy record is neither meta nor block")
		}
		return &rec, nil
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("chain: empty record")
	}
	d := store.NewDec(payload[1:])
	switch payload[0] {
	case tagChainMeta:
		m := &walMeta{GenesisTime: d.Time()}
		count := d.Count("authorities", uint64(len(payload)/cryptoutil.AddressLen)+1)
		for range count {
			var a cryptoutil.Address
			d.Raw(a[:])
			m.Authorities = append(m.Authorities, a)
		}
		if err := d.Finish(); err != nil {
			return nil, err
		}
		return &walRecord{Meta: m}, nil
	case tagChainBlock:
		b := &walBlock{}
		decodeHeader(d, &b.Header)
		b.Txs = decodeTxs(d, len(payload))
		b.Receipts = decodeReceipts(d, len(payload))
		b.Diff = decodeDeltas(d, len(payload))
		if err := d.Finish(); err != nil {
			return nil, err
		}
		return &walRecord{Block: b}, nil
	default:
		return nil, fmt.Errorf("chain: unknown record tag 0x%02x", payload[0])
	}
}

// encodeChainSnapshot encodes a state snapshot deterministically (keys
// sorted by Delta order of the export map).
func encodeChainSnapshot(height uint64, state map[string][]byte) []byte {
	size := 16
	keys := make([]string, 0, len(state))
	for k, v := range state {
		keys = append(keys, k)
		size += 16 + len(k) + len(v)
	}
	sort.Strings(keys)
	dst := make([]byte, 0, size)
	dst = append(dst, tagChainSnapshot)
	dst = store.AppendUvarint(dst, height)
	dst = store.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = store.AppendString(dst, k)
		dst = store.AppendBytes(dst, state[k])
	}
	return dst
}

// decodeChainSnapshot decodes a snapshot payload in either format.
func decodeChainSnapshot(payload []byte) (*chainSnapshot, error) {
	if store.IsLegacyJSON(payload) {
		var snap chainSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("chain: legacy snapshot: %w", err)
		}
		if snap.State == nil {
			snap.State = map[string][]byte{}
		}
		return &snap, nil
	}
	if len(payload) == 0 || payload[0] != tagChainSnapshot {
		return nil, fmt.Errorf("chain: not a snapshot payload")
	}
	d := store.NewDec(payload[1:])
	snap := &chainSnapshot{Height: d.Uvarint()}
	count := d.Count("snapshot keys", uint64(len(payload)))
	snap.State = make(map[string][]byte, min(count, store.DecodeCapHint))
	for range count {
		k := d.String()
		snap.State[k] = d.Bytes()
		if d.Err() != nil {
			break
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return snap, nil
}

func appendHeader(dst []byte, h *Header) ([]byte, error) {
	dst = store.AppendUvarint(dst, h.Number)
	dst = append(dst, h.ParentHash[:]...)
	dst, err := store.AppendTime(dst, h.Time)
	if err != nil {
		return nil, err
	}
	dst = append(dst, h.Proposer[:]...)
	dst = append(dst, h.TxRoot[:]...)
	dst = append(dst, h.ReceiptRoot[:]...)
	dst = append(dst, h.StateRoot[:]...)
	dst = store.AppendBytes(dst, h.Signature)
	return dst, nil
}

func decodeHeader(d *store.Dec, h *Header) {
	h.Number = d.Uvarint()
	d.Raw(h.ParentHash[:])
	h.Time = d.Time()
	d.Raw(h.Proposer[:])
	d.Raw(h.TxRoot[:])
	d.Raw(h.ReceiptRoot[:])
	d.Raw(h.StateRoot[:])
	h.Signature = d.Bytes()
}

func appendTx(dst []byte, tx *Tx) []byte {
	dst = store.AppendUvarint(dst, tx.Nonce)
	dst = append(dst, tx.From[:]...)
	dst = store.AppendBytes(dst, tx.SenderKey)
	dst = append(dst, tx.Contract[:]...)
	dst = store.AppendString(dst, tx.Method)
	dst = store.AppendBytes(dst, tx.Args)
	dst = store.AppendUvarint(dst, tx.GasLimit)
	dst = store.AppendUvarint(dst, tx.GasPrice)
	dst = store.AppendBytes(dst, tx.Signature)
	return dst
}

func decodeTxs(d *store.Dec, bound int) []*Tx {
	count := d.Count("txs", uint64(bound))
	if d.Err() != nil || count == 0 {
		return nil
	}
	txs := make([]*Tx, 0, min(count, store.DecodeCapHint))
	for range count {
		tx := &Tx{Nonce: d.Uvarint()}
		d.Raw(tx.From[:])
		tx.SenderKey = d.Bytes()
		d.Raw(tx.Contract[:])
		tx.Method = d.String()
		tx.Args = d.Bytes()
		tx.GasLimit = d.Uvarint()
		tx.GasPrice = d.Uvarint()
		tx.Signature = d.Bytes()
		if d.Err() != nil {
			return nil
		}
		txs = append(txs, tx)
	}
	return txs
}

func appendReceipt(dst []byte, r *Receipt) []byte {
	dst = append(dst, r.TxHash[:]...)
	dst = store.AppendUvarint(dst, uint64(r.Status))
	dst = store.AppendUvarint(dst, r.GasUsed)
	dst = store.AppendString(dst, r.Err)
	dst = store.AppendUvarint(dst, r.BlockNumber)
	dst = store.AppendBytes(dst, r.Return)
	dst = store.AppendUvarint(dst, uint64(len(r.Events)))
	for i := range r.Events {
		dst = appendEvent(dst, &r.Events[i])
	}
	return dst
}

func decodeReceipts(d *store.Dec, bound int) []*Receipt {
	count := d.Count("receipts", uint64(bound))
	if d.Err() != nil || count == 0 {
		return nil
	}
	receipts := make([]*Receipt, 0, min(count, store.DecodeCapHint))
	for range count {
		r := &Receipt{}
		d.Raw(r.TxHash[:])
		r.Status = Status(d.Uvarint())
		r.GasUsed = d.Uvarint()
		r.Err = d.String()
		r.BlockNumber = d.Uvarint()
		r.Return = d.Bytes()
		evCount := d.Count("events", uint64(bound))
		if d.Err() != nil {
			return nil
		}
		for range evCount {
			ev := decodeEvent(d)
			if d.Err() != nil {
				return nil
			}
			r.Events = append(r.Events, ev)
		}
		receipts = append(receipts, r)
	}
	return receipts
}

func appendEvent(dst []byte, ev *Event) []byte {
	dst = append(dst, ev.Contract[:]...)
	dst = store.AppendString(dst, ev.Topic)
	dst = store.AppendString(dst, ev.Key)
	dst = store.AppendBytes(dst, ev.Data)
	dst = store.AppendUvarint(dst, ev.BlockNumber)
	dst = append(dst, ev.TxHash[:]...)
	dst = store.AppendUvarint(dst, uint64(ev.Index))
	return dst
}

func decodeEvent(d *store.Dec) Event {
	var ev Event
	d.Raw(ev.Contract[:])
	ev.Topic = d.String()
	ev.Key = d.String()
	ev.Data = d.Bytes()
	ev.BlockNumber = d.Uvarint()
	d.Raw(ev.TxHash[:])
	ev.Index = int(d.Uvarint())
	return ev
}

func appendDelta(dst []byte, del *Delta) []byte {
	dst = store.AppendString(dst, del.K)
	dst = store.AppendBool(dst, del.Del)
	if !del.Del {
		dst = store.AppendBytes(dst, del.V)
	}
	return dst
}

func decodeDeltas(d *store.Dec, bound int) []Delta {
	count := d.Count("deltas", uint64(bound))
	if d.Err() != nil || count == 0 {
		return nil
	}
	diff := make([]Delta, 0, min(count, store.DecodeCapHint))
	for range count {
		del := Delta{K: d.String(), Del: d.Bool()}
		if !del.Del {
			del.V = d.Bytes()
		}
		if d.Err() != nil {
			return nil
		}
		diff = append(diff, del)
	}
	return diff
}
