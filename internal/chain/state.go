package chain

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/cryptoutil"
)

// State is the journaled key-value store that contracts execute against.
//
// Keys are namespaced strings (by convention "<contract-addr>/<bucket>/<key>").
// A journal records every mutation so that the effects of a reverted
// transaction can be rolled back without copying the whole store. State is
// safe for concurrent readers; writers are serialized by the node's block
// production, but the internal lock keeps direct use safe too.
type State struct {
	mu      sync.RWMutex
	data    map[string][]byte // guarded by mu
	journal []journalEntry    // guarded by mu
	// root is the incrementally maintained state commitment: the XOR of
	// H(key, value) over all entries (a multiset hash). Because map keys
	// are unique, every leaf appears at most once, so any single
	// insertion, deletion or value change flips the root. XOR updates
	// make Root O(1) instead of O(n·log n) per block, which keeps block
	// sealing linear as the ledger grows; the trade-off (weaker
	// collision resistance than a Merkle trie against adversarially
	// crafted key/value sets) is acceptable for this simulator and is
	// called out in DESIGN.md. Guarded by mu.
	root cryptoutil.Hash
}

// leafHash commits to one key/value pair.
func leafHash(key string, value []byte) cryptoutil.Hash {
	return cryptoutil.HashOf([]byte(key), value)
}

// xorHash folds h into root in place.
func xorHash(root *cryptoutil.Hash, h cryptoutil.Hash) {
	for i := range root {
		root[i] ^= h[i]
	}
}

type journalEntry struct {
	key     string
	prior   []byte
	existed bool
}

// NewState returns an empty state.
func NewState() *State {
	return &State{data: make(map[string][]byte)}
}

// Get returns the value for key and whether it exists. The returned slice
// is a copy.
func (s *State) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// view returns the stored slice for key WITHOUT copying. Stored value
// slices are immutable — every write path installs a fresh slice and
// nothing mutates one in place — so the result is safe to read or hash
// indefinitely, but callers must never write through it. The overlay and
// the commit fold use it to keep the hot path allocation-free.
func (s *State) view(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Set stores a copy of value under key.
func (s *State) Set(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prior, existed := s.data[key]
	s.journal = append(s.journal, journalEntry{key: key, prior: prior, existed: existed})
	if existed {
		xorHash(&s.root, leafHash(key, prior))
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.data[key] = cp
	xorHash(&s.root, leafHash(key, cp))
}

// Delete removes key.
func (s *State) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prior, existed := s.data[key]
	if !existed {
		return
	}
	s.journal = append(s.journal, journalEntry{key: key, prior: prior, existed: true})
	xorHash(&s.root, leafHash(key, prior))
	delete(s.data, key)
}

// Keys returns the keys with the given prefix, sorted.
func (s *State) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored keys.
func (s *State) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Checkpoint marks the current journal position; RevertTo undoes every
// mutation made after it.
func (s *State) Checkpoint() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.journal)
}

// RevertTo rolls the state back to a checkpoint previously returned by
// Checkpoint.
func (s *State) RevertTo(checkpoint int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.journal) - 1; i >= checkpoint; i-- {
		e := s.journal[i]
		if cur, ok := s.data[e.key]; ok {
			xorHash(&s.root, leafHash(e.key, cur))
		}
		if e.existed {
			s.data[e.key] = e.prior
			xorHash(&s.root, leafHash(e.key, e.prior))
		} else {
			delete(s.data, e.key)
		}
	}
	s.journal = s.journal[:checkpoint]
}

// DiscardJournal forgets rollback information (called after a block
// commits; mutations become permanent).
func (s *State) DiscardJournal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = s.journal[:0]
}

// Delta is one key's net change across a block, as recorded in the
// durable block log: the value the key holds after the block (or a
// deletion marker). Deltas are what crash recovery applies instead of
// re-executing transactions.
type Delta struct {
	// K is the state key.
	K string `json:"k"`
	// V is the post-block value (ignored when Del is set).
	V []byte `json:"v,omitempty"`
	// Del marks the key as deleted by the block.
	Del bool `json:"del,omitempty"`
}

// Diff returns the net effect of every mutation journaled since the
// last commit — one Delta per touched key, sorted by key for a
// deterministic encoding. The journal is left in place, so the caller
// can still RevertTo if persisting the diff fails. Values are copied;
// the commit hot path uses TakeDiff's move semantics instead.
func (s *State) Diff() []Delta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diffLocked(true)
}

// diffLocked builds the journal's net diff. With copyValues false the
// deltas alias the stored slices — safe to retain because stored values
// are immutable (every write installs a fresh slice), but only TakeDiff,
// which simultaneously retires the journal, may use it.
func (s *State) diffLocked(copyValues bool) []Delta {
	touched := make(map[string]struct{}, len(s.journal))
	for _, e := range s.journal {
		touched[e.key] = struct{}{}
	}
	diff := make([]Delta, 0, len(touched))
	for k := range touched {
		if v, ok := s.data[k]; ok {
			if copyValues {
				cp := make([]byte, len(v))
				copy(cp, v)
				v = cp
			}
			diff = append(diff, Delta{K: k, V: v})
		} else {
			diff = append(diff, Delta{K: k, Del: true})
		}
	}
	sort.Slice(diff, func(i, j int) bool { return diff[i].K < diff[j].K })
	return diff
}

// TakeDiff is Diff followed by DiscardJournal: the mutations become
// permanent and their net effect is returned for persistence. Because
// the journal is retired in the same critical section, the returned
// deltas safely alias the stored (immutable) value slices instead of
// copying every touched value — the move-semantics path used on the
// commit hot path. Later writes to the same keys replace the stored
// slices rather than mutating them, so the returned diff stays stable.
func (s *State) TakeDiff() []Delta {
	s.mu.Lock()
	defer s.mu.Unlock()
	diff := s.diffLocked(false)
	s.journal = s.journal[:0]
	return diff
}

// ApplyDiff applies a block's recorded deltas (recovery replay). The
// root is maintained incrementally by Set/Delete; the journal entries the
// application creates are discarded, mirroring a committed block.
func (s *State) ApplyDiff(diff []Delta) {
	for _, d := range diff {
		if d.Del {
			s.Delete(d.K)
		} else {
			s.Set(d.K, d.V)
		}
	}
	s.DiscardJournal()
}

// Export returns a deep copy of the full key-value content, as persisted
// in state snapshots.
func (s *State) Export() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// ExportShared returns the full key-value content in a fresh map that
// SHARES the stored value slices instead of copying them — a
// copy-on-write export costing O(keys) map work and zero byte copying.
// It is safe because stored values are immutable: every subsequent Set
// installs a fresh slice, leaving the shared ones untouched. The
// background snapshot writer serializes from such an export so commits
// never pay for, and readers never wait on, snapshot serialization.
func (s *State) ExportShared() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// applyDeltas folds a committed block's net diff into the state: no
// journaling (the block is final) and no value copying (the deltas'
// values are moved in — callers hand over ownership, e.g. an overlay's
// drained layer or freshly decoded WAL records). The root is maintained
// incrementally, so folding costs O(touched keys).
func (s *State) applyDeltas(deltas []Delta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range deltas {
		prior, existed := s.data[d.K]
		if d.Del {
			if !existed {
				continue
			}
			xorHash(&s.root, leafHash(d.K, prior))
			delete(s.data, d.K)
			continue
		}
		if existed {
			xorHash(&s.root, leafHash(d.K, prior))
		}
		s.data[d.K] = d.V
		xorHash(&s.root, leafHash(d.K, d.V))
	}
}

// Root returns the deterministic state commitment (see the root field for
// the construction). It is O(1): the commitment is maintained
// incrementally by every mutation.
func (s *State) Root() cryptoutil.Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root
}

// Clone returns a deep copy of the state with an empty journal. Clones are
// how validator nodes re-execute proposed blocks without disturbing their
// committed state.
func (s *State) Clone() *State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewState()
	for k, v := range s.data {
		cp := make([]byte, len(v))
		copy(cp, v)
		c.data[k] = cp
	}
	c.root = s.root
	return c
}
