package chain

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// referenceState builds a committed state with n keys under two
// prefixes.
func referenceState(n int) *State {
	st := NewState()
	for i := range n {
		st.Set(fmt.Sprintf("a/%04d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	st.Set("b/only", []byte("base"))
	st.DiscardJournal()
	return st
}

// TestOverlayReadThrough: an empty overlay is indistinguishable from its
// base — values, key listings, length, and root.
func TestOverlayReadThrough(t *testing.T) {
	st := referenceState(8)
	ov := NewOverlay(st)
	if got, ok := ov.Get("a/0003"); !ok || string(got) != "v3" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := ov.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	if got, want := ov.Keys("a/"), st.Keys("a/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if ov.Root() != st.Root() {
		t.Fatal("fresh overlay root differs from base")
	}
	if ov.Len() != st.Len() {
		t.Fatalf("Len = %d, want %d", ov.Len(), st.Len())
	}
}

// TestOverlayWritesShadowBase: writes and deletes are visible through
// the overlay and invisible on the base; Keys merges correctly.
func TestOverlayWritesShadowBase(t *testing.T) {
	st := referenceState(4)
	baseRoot := st.Root()
	ov := NewOverlay(st)

	ov.Set("a/0001", []byte("patched"))
	ov.Set("a/new", []byte("added"))
	ov.Delete("a/0002")
	ov.Delete("nonexistent") // no-op

	if got, _ := ov.Get("a/0001"); string(got) != "patched" {
		t.Fatalf("overlay read = %q", got)
	}
	if got, _ := st.Get("a/0001"); string(got) != "v1" {
		t.Fatalf("base mutated: %q", got)
	}
	if _, ok := ov.Get("a/0002"); ok {
		t.Fatal("deleted key visible through overlay")
	}
	if _, ok := st.Get("a/0002"); !ok {
		t.Fatal("delete leaked to base")
	}
	want := []string{"a/0000", "a/0001", "a/0003", "a/new"}
	if got := ov.Keys("a/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if st.Root() != baseRoot {
		t.Fatal("base root changed")
	}
	if ov.Len() != st.Len() { // +1 added, -1 deleted
		t.Fatalf("Len = %d, want %d", ov.Len(), st.Len())
	}
}

// TestOverlayGetReturnsCopy: mutating a Get result must not corrupt the
// overlay (or the base).
func TestOverlayGetReturnsCopy(t *testing.T) {
	st := referenceState(1)
	ov := NewOverlay(st)
	ov.Set("k", []byte("layer"))
	for _, key := range []string{"k", "a/0000"} {
		v, _ := ov.Get(key)
		for i := range v {
			v[i] = 'X'
		}
		if again, _ := ov.Get(key); bytes.Contains(again, []byte("X")) {
			t.Fatalf("Get(%q) aliases internal storage", key)
		}
	}
}

// TestOverlayRootMatchesFoldedState: for a random mutation sequence, the
// overlay's incrementally maintained root equals the root of a state
// that applied the same mutations directly, and folding the drained
// deltas into the base reproduces it exactly.
func TestOverlayRootMatchesFoldedState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := referenceState(32)
	mirror := st.Clone()
	ov := NewOverlay(st)
	for i := range 500 {
		key := fmt.Sprintf("a/%04d", rng.Intn(40)) // hits existing and fresh keys
		if rng.Intn(4) == 0 {
			ov.Delete(key)
			mirror.Delete(key)
		} else {
			val := []byte(fmt.Sprintf("r%d", i))
			ov.Set(key, val)
			mirror.Set(key, val)
		}
		if ov.Root() != mirror.Root() {
			t.Fatalf("root diverged after %d mutations", i+1)
		}
	}
	deltas := ov.TakeDeltas()
	for i := 1; i < len(deltas); i++ {
		if deltas[i-1].K >= deltas[i].K {
			t.Fatalf("deltas not sorted: %q >= %q", deltas[i-1].K, deltas[i].K)
		}
	}
	st.applyDeltas(deltas)
	if st.Root() != mirror.Root() {
		t.Fatal("folding deltas into the base diverged from direct application")
	}
	if st.Len() != mirror.Len() {
		t.Fatalf("folded Len = %d, mirror %d", st.Len(), mirror.Len())
	}
}

// TestOverlayCheckpointRevert: RevertTo undoes layer entries and root
// exactly, across set-new, overwrite-layer, overwrite-base, and delete.
func TestOverlayCheckpointRevert(t *testing.T) {
	st := referenceState(4)
	ov := NewOverlay(st)
	ov.Set("a/0000", []byte("block-tx1"))
	rootAfterTx1 := ov.Root()

	cp := ov.Checkpoint()
	ov.Set("a/0000", []byte("tx2-overwrites-layer"))
	ov.Set("a/0001", []byte("tx2-overwrites-base"))
	ov.Set("fresh", []byte("tx2-new"))
	ov.Delete("a/0003")
	ov.RevertTo(cp)

	if ov.Root() != rootAfterTx1 {
		t.Fatal("root not restored")
	}
	if got, _ := ov.Get("a/0000"); string(got) != "block-tx1" {
		t.Fatalf("layer value = %q", got)
	}
	if got, _ := ov.Get("a/0001"); string(got) != "v1" {
		t.Fatalf("base value = %q", got)
	}
	if _, ok := ov.Get("fresh"); ok {
		t.Fatal("reverted key still present")
	}
	if _, ok := ov.Get("a/0003"); !ok {
		t.Fatal("reverted delete still effective")
	}
	// Only the pre-checkpoint write survives into the deltas.
	deltas := ov.TakeDeltas()
	if len(deltas) != 1 || deltas[0].K != "a/0000" || string(deltas[0].V) != "block-tx1" {
		t.Fatalf("deltas = %+v", deltas)
	}
}

// TestOverlayDeleteOfFreshKey: a key created and deleted inside the
// overlay yields a deletion delta that is a no-op on fold (matching the
// journal-based Diff semantics the WAL format already records).
func TestOverlayDeleteOfFreshKey(t *testing.T) {
	st := referenceState(1)
	ov := NewOverlay(st)
	ov.Set("temp", []byte("x"))
	ov.Delete("temp")
	if ov.Root() != st.Root() {
		t.Fatal("net no-op changed the root")
	}
	deltas := ov.TakeDeltas()
	if len(deltas) != 1 || !deltas[0].Del || deltas[0].K != "temp" {
		t.Fatalf("deltas = %+v", deltas)
	}
	before := st.Root()
	st.applyDeltas(deltas)
	if st.Root() != before {
		t.Fatal("no-op delete delta changed the base root")
	}
}

// TestOverlayRevertCheckpointUnderConcurrentReaders: a writer cycling
// Checkpoint / Set / Delete / RevertTo must never expose readers (Get,
// Keys, Root, Len) to a torn view — the -race proof that the journal
// rollback path and the read paths share the overlay lock correctly.
func TestOverlayRevertCheckpointUnderConcurrentReaders(t *testing.T) {
	st := referenceState(16)
	ov := NewOverlay(st)
	baseRoot := st.Root()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (i + r) % 4 {
				case 0:
					if v, ok := ov.Get(fmt.Sprintf("a/%04d", i%16)); ok && len(v) == 0 {
						t.Error("read a present key with empty value")
						return
					}
				case 1:
					_ = ov.Keys("a/")
				case 2:
					_ = ov.Root()
				case 3:
					_ = ov.Len()
				}
			}
		}()
	}

	for i := range 500 {
		cp := ov.Checkpoint()
		ov.Set(fmt.Sprintf("a/%04d", i%16), []byte(fmt.Sprintf("w%d", i)))
		ov.Set(fmt.Sprintf("new/%d", i%8), []byte("x"))
		ov.Delete(fmt.Sprintf("a/%04d", (i+1)%16))
		if i%2 == 0 {
			ov.RevertTo(cp)
		}
	}
	ov.RevertTo(0)
	close(stop)
	wg.Wait()

	// Fully reverted: the overlay must be transparent again.
	if ov.Root() != baseRoot {
		t.Fatalf("root after RevertTo(0) = %s, want base %s", ov.Root().Short(), baseRoot.Short())
	}
	if deltas := ov.TakeDeltas(); len(deltas) != 0 {
		t.Fatalf("reverted overlay drained %d deltas, want 0", len(deltas))
	}
}

// TestTakeDeltasOnRevertedEmptyOverlay: RevertTo(0) must leave nothing
// for TakeDeltas to drain — no phantom deltas, an unchanged root, and a
// still-usable overlay afterwards.
func TestTakeDeltasOnRevertedEmptyOverlay(t *testing.T) {
	st := referenceState(4)
	ov := NewOverlay(st)
	cpEmpty := ov.Checkpoint()
	if cpEmpty != 0 {
		t.Fatalf("fresh overlay checkpoint = %d, want 0", cpEmpty)
	}
	ov.Set("a/0001", []byte("changed"))
	ov.Delete("a/0002")
	ov.Set("fresh", []byte("new"))
	ov.RevertTo(0)

	if got := ov.TakeDeltas(); len(got) != 0 {
		t.Fatalf("TakeDeltas after full revert = %+v, want empty", got)
	}
	if ov.Root() != st.Root() {
		t.Fatal("root diverged from base after revert+drain")
	}
	// The drained overlay is reusable: new writes produce exactly their
	// own deltas.
	ov.Set("later", []byte("y"))
	deltas := ov.TakeDeltas()
	if len(deltas) != 1 || deltas[0].K != "later" || string(deltas[0].V) != "y" {
		t.Fatalf("post-revert write drained %+v", deltas)
	}
}
