package chain

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

// Gas schedule. The constants mirror the structure (not the magnitudes) of
// Ethereum's: a base cost per transaction, per-byte costs for calldata,
// storage writes priced far above reads, and event emission priced per
// byte. The affordability experiment (E9) reports costs in these units.
const (
	// GasTxBase is charged for any transaction.
	GasTxBase uint64 = 21_000
	// GasPerArgByte is charged per byte of calldata.
	GasPerArgByte uint64 = 16
	// GasStorageSet is charged per storage write plus per byte written.
	GasStorageSet     uint64 = 5_000
	GasStoragePerByte uint64 = 20
	// GasStorageGet is charged per storage read.
	GasStorageGet uint64 = 200
	// GasStorageDelete is charged per storage delete.
	GasStorageDelete uint64 = 1_000
	// GasEventBase is charged per emitted event plus per payload byte.
	GasEventBase    uint64 = 375
	GasEventPerByte uint64 = 8
)

// MaxTxGasLimit caps a single transaction's declared gas limit. Without
// it a byzantine proposer could stuff a block with transactions whose
// limits dwarf the block gas budget, forcing every validator to meter
// arbitrarily expensive replays. Admission (Node.Submit) and block
// validation (ApplyBlock) both enforce the cap, so an over-gas
// transaction is rejected whether it arrives by gossip or inside a
// sealed block.
const MaxTxGasLimit uint64 = 8_000_000

// ErrOutOfGas reverts a transaction whose gas limit is exhausted.
var ErrOutOfGas = errors.New("chain: out of gas")

// ErrGasTooLarge rejects a transaction whose declared gas limit exceeds
// MaxTxGasLimit.
var ErrGasTooLarge = errors.New("chain: tx gas limit above cap")

// GasMeter tracks gas consumption against a limit.
type GasMeter struct {
	limit uint64
	used  uint64
}

// NewGasMeter returns a meter with the given limit.
func NewGasMeter(limit uint64) *GasMeter {
	return &GasMeter{limit: limit}
}

// Charge consumes amount gas, returning ErrOutOfGas if the limit would be
// exceeded (the meter is then pinned at the limit: all gas is consumed).
func (m *GasMeter) Charge(amount uint64) error {
	if m.used+amount > m.limit || m.used+amount < m.used {
		m.used = m.limit
		return fmt.Errorf("%w: limit %d", ErrOutOfGas, m.limit)
	}
	m.used += amount
	return nil
}

// Used returns the gas consumed so far.
func (m *GasMeter) Used() uint64 { return m.used }

// Remaining returns the gas left before the limit.
func (m *GasMeter) Remaining() uint64 { return m.limit - m.used }

// CostLedger accumulates per-address gas expenditure across the chain's
// lifetime. It backs the affordability analysis: "resorting to a public
// blockchain, users ... would make a payment to interact with the
// blockchain metadata through transactions" (Section V-4).
type CostLedger struct {
	mu    sync.Mutex
	spent map[cryptoutil.Address]uint64
	byOp  map[string]opStats
}

type opStats struct {
	Count    uint64
	TotalGas uint64
}

// OpCost reports aggregate gas statistics for one contract method.
type OpCost struct {
	Method   string
	Count    uint64
	TotalGas uint64
}

// AvgGas returns the mean gas per invocation.
func (o OpCost) AvgGas() uint64 {
	if o.Count == 0 {
		return 0
	}
	return o.TotalGas / o.Count
}

// NewCostLedger returns an empty ledger.
func NewCostLedger() *CostLedger {
	return &CostLedger{
		spent: make(map[cryptoutil.Address]uint64),
		byOp:  make(map[string]opStats),
	}
}

// Record notes that addr spent gas on method.
func (l *CostLedger) Record(addr cryptoutil.Address, method string, gas uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spent[addr] += gas
	s := l.byOp[method]
	s.Count++
	s.TotalGas += gas
	l.byOp[method] = s
}

// SpentBy returns the total gas spent by addr.
func (l *CostLedger) SpentBy(addr cryptoutil.Address) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spent[addr]
}

// TotalSpent returns the gas spent across all addresses.
func (l *CostLedger) TotalSpent() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total uint64
	for _, v := range l.spent {
		total += v
	}
	return total
}

// ByOperation returns per-method aggregate costs, sorted by method name.
func (l *CostLedger) ByOperation() []OpCost {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]OpCost, 0, len(l.byOp))
	for m, s := range l.byOp {
		out = append(out, OpCost{Method: m, Count: s.Count, TotalGas: s.TotalGas})
	}
	sortOpCosts(out)
	return out
}

func sortOpCosts(ops []OpCost) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].Method < ops[j-1].Method; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}
