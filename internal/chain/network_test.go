package chain

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// newTestCluster builds n authority nodes sharing one authority set and
// simulated clock.
func newTestCluster(t *testing.T, n int) ([]*Node, *Network, []*cryptoutil.KeyPair, *simclock.Sim) {
	t.Helper()
	clk := simclock.NewSim(chainEpoch)
	keys := make([]*cryptoutil.KeyPair, n)
	auths := make([]cryptoutil.Address, n)
	for i := range n {
		keys[i] = cryptoutil.MustGenerateKey()
		auths[i] = keys[i].Address()
	}
	nodes := make([]*Node, n)
	for i := range n {
		node, err := NewNode(Config{
			Key:         keys[i],
			Authorities: auths,
			Executor:    testExecutor{},
			Clock:       clk,
			GenesisTime: chainEpoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	net, err := NewNetwork(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, keys, clk
}

func TestNetworkConsensusReplication(t *testing.T) {
	nodes, net, _, clk := newTestCluster(t, 3)
	sender := cryptoutil.MustGenerateKey()
	contract := testContractAddr()

	tx := mustTx(t, sender, 0, contract, "k", "replicated")
	if _, err := net.SubmitEverywhere(tx); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	block, err := net.SealNext()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 1 {
		t.Fatalf("block txs = %d, want 1", len(block.Txs))
	}
	// Every node converges to the same head and state root.
	for i, n := range nodes {
		if n.Height() != 1 {
			t.Fatalf("node %d height = %d, want 1", i, n.Height())
		}
		if n.Head().Hash() != block.Hash() {
			t.Fatalf("node %d head diverged", i)
		}
		out, err := n.Query(contract, "get", []byte(`{"key":"k"}`))
		if err != nil || string(out) != `{"value":"replicated"}` {
			t.Fatalf("node %d query = %s, %v", i, out, err)
		}
		if n.PendingTxs() != 0 {
			t.Fatalf("node %d mempool not drained", i)
		}
	}
}

func TestNetworkRoundRobinProposers(t *testing.T) {
	nodes, net, _, clk := newTestCluster(t, 3)
	seen := map[cryptoutil.Address]int{}
	for range 6 {
		clk.Advance(time.Second)
		block, err := net.SealNext()
		if err != nil {
			t.Fatal(err)
		}
		seen[block.Header.Proposer]++
	}
	if len(seen) != 3 {
		t.Fatalf("proposers = %v, want all 3 authorities", seen)
	}
	for addr, count := range seen {
		if count != 2 {
			t.Fatalf("proposer %s sealed %d blocks, want 2", addr.Short(), count)
		}
	}
	_ = nodes
}

func TestNetworkRejectsTamperedBlock(t *testing.T) {
	nodes, _, keys, clk := newTestCluster(t, 2)
	sender := cryptoutil.MustGenerateKey()
	contract := testContractAddr()

	tx := mustTx(t, sender, 0, contract, "k", "original")
	if _, err := nodes[0].SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	block, err := nodes[0].SealOutOfTurn()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("tampered state root", func(t *testing.T) {
		bad := *block
		bad.Header.StateRoot = cryptoutil.HashOf([]byte("forged"))
		// Re-sign so only the state transition is wrong.
		sig, err := keys[0].Sign(bad.Header.SigningBytes())
		if err != nil {
			t.Fatal(err)
		}
		bad.Header.Signature = sig
		err = nodes[1].ApplyBlock(&bad, keys[0].PublicBytes())
		if !errors.Is(err, ErrBadStateRoot) {
			t.Fatalf("err = %v, want ErrBadStateRoot", err)
		}
	})

	t.Run("forged signature", func(t *testing.T) {
		mallory := cryptoutil.MustGenerateKey()
		bad := *block
		sig, err := mallory.Sign(bad.Header.SigningBytes())
		if err != nil {
			t.Fatal(err)
		}
		bad.Header.Signature = sig
		err = nodes[1].ApplyBlock(&bad, mallory.PublicBytes())
		// Mallory is not the scheduled proposer even with a "valid" sig of
		// her own key, and her key does not match the claimed proposer.
		if err == nil {
			t.Fatal("forged block accepted")
		}
	})

	t.Run("tampered tx args", func(t *testing.T) {
		badTx := *tx
		badTx.Args = []byte(`{"key":"k","value":"evil"}`)
		bad := &Block{Header: block.Header, Txs: []*Tx{&badTx}, Receipts: block.Receipts}
		err := nodes[1].ApplyBlock(bad, keys[0].PublicBytes())
		if !errors.Is(err, ErrBadTxInBlock) && !errors.Is(err, ErrBadTxRoot) {
			t.Fatalf("err = %v, want tx validation failure", err)
		}
	})

	t.Run("valid block applies", func(t *testing.T) {
		if err := nodes[1].ApplyBlock(block, keys[0].PublicBytes()); err != nil {
			t.Fatal(err)
		}
		if nodes[1].Height() != 1 {
			t.Fatal("valid block did not apply")
		}
	})

	t.Run("replayed block rejected", func(t *testing.T) {
		if err := nodes[1].ApplyBlock(block, keys[0].PublicBytes()); !errors.Is(err, ErrBadNumber) {
			t.Fatalf("err = %v, want ErrBadNumber", err)
		}
	})
}

func TestNetworkWrongParentRejected(t *testing.T) {
	nodes, _, keys, clk := newTestCluster(t, 2)
	clk.Advance(time.Second)
	// Seal two blocks on node 0 without telling node 1 about the first.
	b1, err := nodes[0].SealOutOfTurn()
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	// Height 2 belongs to authority 1 in a 2-node round robin, so reuse
	// node 0's b1 to craft a block with a bad parent instead: apply b1 to
	// node 1 after mutating its parent hash.
	bad := *b1
	bad.Header.ParentHash = cryptoutil.HashOf([]byte("wrong"))
	sig, err := keys[0].Sign(bad.Header.SigningBytes())
	if err != nil {
		t.Fatal(err)
	}
	bad.Header.Signature = sig
	if err := nodes[1].ApplyBlock(&bad, keys[0].PublicBytes()); !errors.Is(err, ErrBadParent) {
		t.Fatalf("err = %v, want ErrBadParent", err)
	}
}

func TestNetworkAvailabilityUnderNodeFailure(t *testing.T) {
	nodes, net, _, clk := newTestCluster(t, 3)
	sender := cryptoutil.MustGenerateKey()
	contract := testContractAddr()

	// Take node 1 down. When its turn comes, the next live authority
	// seals out of turn (clique-style), so the cluster never stalls and
	// node 1's ledger freezes.
	downAddr := nodes[1].Address()
	net.SetDown(downAddr, true)

	tx := mustTx(t, sender, 0, contract, "k", "v")
	if _, err := net.SubmitEverywhere(tx); err != nil {
		t.Fatal(err)
	}

	for range 6 {
		clk.Advance(time.Second)
		if _, err := net.SealNext(); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 2} {
		if nodes[i].Height() != 6 {
			t.Fatalf("live node %d height = %d, want 6", i, nodes[i].Height())
		}
	}
	if nodes[1].Height() != 0 {
		t.Fatal("down node should not advance")
	}
	// Live nodes replicated the tx and serve reads — availability holds.
	for _, i := range []int{0, 2} {
		out, err := nodes[i].Query(contract, "get", []byte(`{"key":"k"}`))
		if err != nil || string(out) != `{"value":"v"}` {
			t.Fatalf("node %d query = %s, %v", i, out, err)
		}
	}
}

func TestNetworkRecoverySync(t *testing.T) {
	nodes, net, _, clk := newTestCluster(t, 3)
	sender := cryptoutil.MustGenerateKey()
	contract := testContractAddr()

	// Node 2 goes down; the cluster makes progress without it.
	net.SetDown(nodes[2].Address(), true)
	for i := range 5 {
		tx := mustTx(t, sender, uint64(i), contract, string(rune('a'+i)), "v")
		if _, err := net.SubmitEverywhere(tx); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
		if _, err := net.SealNext(); err != nil {
			t.Fatal(err)
		}
	}
	if nodes[2].Height() != 0 {
		t.Fatal("down node advanced")
	}

	// Recovery: node 2 rejoins and catches up block by block, fully
	// validating each one.
	applied, err := net.Recover(nodes[2].Address())
	if err != nil {
		t.Fatal(err)
	}
	if applied != 5 {
		t.Fatalf("applied = %d, want 5", applied)
	}
	if nodes[2].Height() != nodes[0].Height() {
		t.Fatalf("heights diverge: %d vs %d", nodes[2].Height(), nodes[0].Height())
	}
	if nodes[2].Head().Hash() != nodes[0].Head().Hash() {
		t.Fatal("head hash diverges after sync")
	}
	// The recovered node serves correct reads.
	out, err := nodes[2].Query(contract, "get", []byte(`{"key":"e"}`))
	if err != nil || string(out) != `{"value":"v"}` {
		t.Fatalf("recovered node query = %s, %v", out, err)
	}
	// And participates in consensus again.
	clk.Advance(time.Second)
	if _, err := net.SealNext(); err != nil {
		t.Fatal(err)
	}
	if nodes[2].Height() != nodes[0].Height() {
		t.Fatal("recovered node missed the next block")
	}
}

func TestSyncFromRejectsUnknownProposer(t *testing.T) {
	nodes, _, keys, clk := newTestCluster(t, 2)
	clk.Advance(time.Second)
	if _, err := nodes[0].SealOutOfTurn(); err != nil {
		t.Fatal(err)
	}
	// Empty key map: sync must fail cleanly without applying anything.
	if _, err := nodes[1].SyncFrom(nodes[0], map[cryptoutil.Address][]byte{}); err == nil {
		t.Fatal("sync without proposer keys succeeded")
	}
	if nodes[1].Height() != 0 {
		t.Fatal("partial sync applied a block without key verification")
	}
	// With the key it succeeds.
	applied, err := nodes[1].SyncFrom(nodes[0], map[cryptoutil.Address][]byte{
		nodes[0].Address(): keys[0].PublicBytes(),
	})
	if err != nil || applied != 1 {
		t.Fatalf("sync = %d, %v", applied, err)
	}
}

func TestNewNetworkEmpty(t *testing.T) {
	if _, err := NewNetwork(); err == nil {
		t.Fatal("empty network accepted")
	}
}
