package chain

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/store"
)

// walFileName is the block log's filename inside a node's data dir.
const walFileName = "wal.log"

// defaultSnapshotInterval is the block cadence of durable state
// snapshots when Config.SnapshotInterval is zero.
const defaultSnapshotInterval = 32

// snapshotsKept bounds the snapshot files retained per node; older ones
// are pruned after each write (recovery only ever needs one intact
// snapshot, and keeping a couple of spares survives a corrupt newest).
const snapshotsKept = 3

// WALPath returns the write-ahead log path inside a node data dir (fault
// injection and tooling truncate or inspect it).
func WALPath(dataDir string) string { return filepath.Join(dataDir, walFileName) }

// Persistent-store errors.
var (
	// ErrStoreMismatch reports a data dir whose recorded identity (authority
	// set) contradicts the opening Config — opening it would fork history.
	ErrStoreMismatch = errors.New("chain: store does not match node config")
	// ErrStoreCorrupt reports a store whose intact records contradict each
	// other (e.g. a replayed diff that does not reproduce the committed
	// state root) — damage that torn-tail truncation cannot explain away.
	ErrStoreCorrupt = errors.New("chain: store corrupt")
)

// walRecord is the decoded form of one WAL record: exactly one of the
// fields is set. The first record of a log is always the meta record.
// On disk, records are written in the tagged binary format of codec.go;
// the JSON struct tags remain because PR 4-era logs stored records as
// JSON documents and the legacy decode path still reads them.
type walRecord struct {
	Meta  *walMeta  `json:"meta,omitempty"`
	Block *walBlock `json:"block,omitempty"`
}

// walMeta pins the chain identity the log belongs to. GenesisTime is
// authoritative on reopen (the caller's Config value is ignored), so a
// process restarted with a wall-clock genesis still reproduces the
// original genesis block.
type walMeta struct {
	GenesisTime time.Time            `json:"genesisTime"`
	Authorities []cryptoutil.Address `json:"authorities"`
}

// walBlock is a sealed block plus the net state diff its execution
// produced. Recovery applies the diff instead of re-executing
// transactions, so it needs no executor determinism and is O(mutations).
type walBlock struct {
	Header   Header     `json:"header"`
	Txs      []*Tx      `json:"txs"`
	Receipts []*Receipt `json:"receipts"`
	Diff     []Delta    `json:"diff"`
}

// chainSnapshot is the durable state snapshot payload: the full
// key-value content as of Height. Blocks at or below Height replay
// ledger-only on recovery; blocks above it replay their diffs.
type chainSnapshot struct {
	Height uint64            `json:"height"`
	State  map[string][]byte `json:"state"`
}

// OpenNode opens (or bootstraps) a durable node from cfg.DataDir: it
// loads the newest usable state snapshot, replays the write-ahead log's
// block tail (truncating any torn tail back to the last complete
// record), rebuilds nonces and the cost ledger from the recovered
// blocks, and attaches the log so subsequent commits are durable. The
// mempool starts empty — unsealed submissions do not survive a restart.
//
// With an empty DataDir, OpenNode is exactly NewNode (the in-memory
// behaviour every existing caller keeps).
func OpenNode(cfg Config) (*Node, error) {
	if cfg.DataDir == "" {
		return NewNode(cfg)
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("chain: create data dir: %w", err)
	}
	wal, records, err := store.OpenWAL(WALPath(cfg.DataDir), cfg.Persist)
	if err != nil {
		return nil, err
	}
	tm := cfg.Metrics.orNoop().RecoveryReplay.Start()
	n, err := recoverNode(cfg, wal, records)
	tm.Stop()
	if err != nil {
		return nil, errors.Join(err, wal.Close())
	}
	return n, nil
}

// attachStore arms the node's durable-commit path and starts the
// background snapshot writer.
func (n *Node) attachStore(cfg Config, wal *store.WAL) {
	n.wal = wal
	n.dataDir = cfg.DataDir
	n.snapEvery = cfg.SnapshotInterval
	if n.snapEvery <= 0 {
		n.snapEvery = defaultSnapshotInterval
	}
	n.snap = startSnapshotWriter(cfg.DataDir, n.metrics)
}

// recoverNode rebuilds a node from a decoded log.
func recoverNode(cfg Config, wal *store.WAL, records []store.Record) (*Node, error) {
	if len(records) == 0 {
		// Empty data dir (or a log torn back to nothing): bootstrap fresh
		// and stamp the chain identity as record 0.
		n, err := NewNode(cfg)
		if err != nil {
			return nil, err
		}
		buf, err := encodeWALMeta(&walMeta{
			GenesisTime: cfg.GenesisTime,
			Authorities: cfg.Authorities,
		})
		if err != nil {
			return nil, err
		}
		if err := wal.Append(buf); err != nil {
			return nil, err
		}
		n.attachStore(cfg, wal)
		return n, nil
	}

	metaRec, err := decodeWALRecord(records[0].Payload)
	if err != nil || metaRec.Meta == nil {
		return nil, fmt.Errorf("%w: first record is not a meta record", ErrStoreCorrupt)
	}
	meta := metaRec.Meta
	if len(meta.Authorities) != len(cfg.Authorities) {
		return nil, fmt.Errorf("%w: store has %d authorities, config %d",
			ErrStoreMismatch, len(meta.Authorities), len(cfg.Authorities))
	}
	for i, a := range meta.Authorities {
		if a != cfg.Authorities[i] {
			return nil, fmt.Errorf("%w: authority %d is %s on disk, %s in config",
				ErrStoreMismatch, i, a.Short(), cfg.Authorities[i].Short())
		}
	}
	// The stored genesis time is authoritative: it reproduces the genesis
	// block the logged chain descends from.
	cfg.GenesisTime = meta.GenesisTime
	n, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}

	// Decode the block tail, validating linkage as we go. A record that
	// decodes but does not extend the chain marks damage the CRC cannot
	// see (e.g. an interleaved foreign write); everything from it on is
	// truncated away, exactly like a torn tail.
	blocks := make([]*Block, 0, len(records)-1)
	diffs := make([][]Delta, 0, len(records)-1)
	prev := n.blocks[0]
	lastGoodEnd := records[0].End
	for _, rec := range records[1:] {
		wr, err := decodeWALRecord(rec.Payload)
		if err != nil || wr.Block == nil {
			break
		}
		b := &Block{Header: wr.Block.Header, Txs: wr.Block.Txs, Receipts: wr.Block.Receipts}
		if b.Header.Number != prev.Header.Number+1 || b.Header.ParentHash != prev.Hash() {
			// Before discarding the tail, check whether this record is a
			// second block at an already-recovered height from the same
			// proposer — a double-seal that made it into the log. Recovery
			// surfaces it as evidence so an equivocation is not silently
			// laundered through a crash-restart cycle.
			if ev, ok := equivocalRecord(blocks, b); ok {
				n.recordEquivocation(ev)
			}
			break
		}
		blocks = append(blocks, b)
		diffs = append(diffs, wr.Block.Diff)
		prev = b
		lastGoodEnd = rec.End
	}
	if lastGoodEnd < wal.Size() {
		if err := wal.TruncateTo(lastGoodEnd); err != nil {
			return nil, err
		}
	}

	st, err := rebuildState(cfg.DataDir, blocks, diffs)
	if err != nil {
		return nil, err
	}

	// Rebuild admission and accounting views from the recovered ledger:
	// committed nonces and the gas cost ledger are pure functions of the
	// blocks, so they need no dedicated records.
	for _, b := range blocks {
		for i, tx := range b.Txs {
			n.nonces[tx.From] = tx.Nonce + 1
			n.costs.Record(tx.From, tx.Method, b.Receipts[i].GasUsed)
		}
		// The hash → receipt index is likewise a pure function of the
		// blocks; rebuilding it here keeps Receipt/WaitForReceipt O(1)
		// across a restart.
		for _, r := range b.Receipts {
			n.receipts[r.TxHash] = r
		}
	}
	n.blocks = append(n.blocks, blocks...)
	n.state = st
	n.attachStore(cfg, wal)
	return n, nil
}

// equivocalRecord classifies a WAL record that failed linkage during
// recovery: it is equivocation evidence when it holds a block at an
// already-recovered height, from that height's committed proposer, with a
// different hash. The record's signature was verified before it was ever
// appended (the WAL only logs committed blocks), so no re-verification is
// needed — the log is this node's own trust domain.
func equivocalRecord(recovered []*Block, b *Block) (EquivocationEvidence, bool) {
	num := b.Header.Number
	if num == 0 || num > uint64(len(recovered)) {
		return EquivocationEvidence{}, false
	}
	committed := recovered[num-1] // recovered[0] is height 1
	if committed.Header.Proposer != b.Header.Proposer || committed.Hash() == b.Hash() {
		return EquivocationEvidence{}, false
	}
	return EquivocationEvidence{
		Height:        num,
		Proposer:      b.Header.Proposer,
		CommittedHash: committed.Hash(),
		OfferedHash:   b.Hash(),
	}, true
}

// rebuildState reconstitutes the post-head state: it prefers the newest
// usable snapshot at or below the recovered head and applies only the
// diffs past it, falling back to a full from-genesis diff replay when no
// snapshot qualifies or the snapshot contradicts the committed roots.
// Every applied block's resulting root is checked against its header, so
// a recovery that completes is bit-for-bit the state the chain committed.
func rebuildState(dataDir string, blocks []*Block, diffs [][]Delta) (*State, error) {
	var headHeight uint64
	if len(blocks) > 0 {
		headHeight = blocks[len(blocks)-1].Header.Number
	}
	if seq, payload, ok := store.LatestSnapshot(dataDir, headHeight); ok {
		if st, err := stateFromSnapshot(seq, payload, blocks, diffs); err == nil {
			return st, nil
		}
		// Snapshot unusable (corrupt content or root mismatch): recovery
		// falls back to the full replay below — snapshots are strictly an
		// optimization.
	}
	st := NewState()
	if err := applyDiffsFrom(st, blocks, diffs, 0); err != nil {
		return nil, err
	}
	return st, nil
}

// stateFromSnapshot builds state from a snapshot payload and the diff
// tail above it.
func stateFromSnapshot(seq uint64, payload []byte, blocks []*Block, diffs [][]Delta) (*State, error) {
	snap, err := decodeChainSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot %d: %v", ErrStoreCorrupt, seq, err)
	}
	if snap.Height != seq {
		return nil, fmt.Errorf("%w: snapshot file %d claims height %d", ErrStoreCorrupt, seq, snap.Height)
	}
	st := NewState()
	for k, v := range snap.State {
		st.Set(k, v)
	}
	st.DiscardJournal()
	// The snapshot must reproduce the root committed at its height.
	if snap.Height > 0 {
		idx := int(snap.Height) - 1
		if idx >= len(blocks) {
			return nil, fmt.Errorf("%w: snapshot %d above recovered head", ErrStoreCorrupt, seq)
		}
		if got := st.Root(); got != blocks[idx].Header.StateRoot {
			return nil, fmt.Errorf("%w: snapshot %d root mismatch", ErrStoreCorrupt, seq)
		}
	}
	if err := applyDiffsFrom(st, blocks, diffs, snap.Height); err != nil {
		return nil, err
	}
	return st, nil
}

// applyDiffsFrom replays the recorded diffs of every block above height
// from, checking each block's committed state root.
func applyDiffsFrom(st *State, blocks []*Block, diffs [][]Delta, from uint64) error {
	for i, b := range blocks {
		if b.Header.Number <= from {
			continue
		}
		st.ApplyDiff(diffs[i])
		if got := st.Root(); got != b.Header.StateRoot {
			return fmt.Errorf("%w: replaying block %d produced root %s, header commits %s",
				ErrStoreCorrupt, b.Header.Number, got.Short(), b.Header.StateRoot.Short())
		}
	}
	return nil
}

// snapshotJob is one queued snapshot: a height and a copy-on-write
// state export (shared immutable value slices) taken at commit point.
type snapshotJob struct {
	height uint64
	state  map[string][]byte
}

// snapshotWriter serializes and writes chain state snapshots on a
// dedicated goroutine, so commits (and therefore readers) never wait on
// snapshot encoding or disk I/O. Handover never blocks the committer:
// at most one job is pending, and a newer snapshot replaces a pending
// older one (newest wins — recovery only ever wants the latest).
// Snapshots the writer never got to are simply absent, which recovery
// treats as a longer diff tail; they are strictly an optimization.
type snapshotWriter struct {
	dataDir string
	m       *Metrics // never nil
	mu      sync.Mutex
	pending *snapshotJob  // guarded by mu
	closed  bool          // guarded by mu
	kick    chan struct{} // capacity 1: "pending changed" signal
	done    chan struct{}
}

func startSnapshotWriter(dataDir string, m *Metrics) *snapshotWriter {
	w := &snapshotWriter{
		dataDir: dataDir,
		m:       m.orNoop(),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go w.run()
	return w
}

func (w *snapshotWriter) run() {
	defer close(w.done)
	for {
		w.mu.Lock()
		job := w.pending
		w.pending = nil
		closed := w.closed
		w.mu.Unlock()
		if job != nil {
			w.write(job)
			continue // a newer job may have arrived during the write
		}
		if closed {
			return
		}
		<-w.kick
	}
}

func (w *snapshotWriter) write(job *snapshotJob) {
	tm := w.m.SnapshotWrite.Start()
	defer tm.Stop()
	payload := encodeChainSnapshot(job.height, job.state)
	if err := store.WriteSnapshot(w.dataDir, job.height, payload); err != nil {
		// A failed snapshot must not surface as a commit failure: the
		// block is already durable in the WAL, and recovery without
		// this snapshot merely replays a longer diff tail.
		log.Printf("chain: snapshot at height %d skipped: %v", job.height, err)
		return
	}
	if _, err := store.PruneSnapshots(w.dataDir, snapshotsKept); err != nil {
		log.Printf("chain: prune snapshots: %v", err)
	}
}

// enqueue hands a snapshot job to the writer without ever blocking the
// committing goroutine. A job the writer has not yet started is
// replaced (the newer snapshot subsumes it).
func (w *snapshotWriter) enqueue(height uint64, state map[string][]byte) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.pending = &snapshotJob{height: height, state: state}
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// stop writes any still-pending job and waits for the writer to exit.
// Idempotent.
func (w *snapshotWriter) stop() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done
}

// Close stops sealing, drains the snapshot writer, and flushes and
// closes the durable store (no-op for in-memory nodes). The
// clean-shutdown path for durable nodes.
func (n *Node) Close() error {
	n.StopSealing()
	if n.snap != nil {
		n.snap.stop()
	}
	if n.wal != nil {
		return n.wal.Close()
	}
	return nil
}

// Crash stops sealing and abandons the durable store WITHOUT the final
// flush, modelling a process crash for fault injection. Pair with
// OpenNode to exercise crash-restart recovery. The snapshot writer is
// still stopped (and any queued job written) so test runs stay
// deterministic; atomic temp-and-rename writes mean a real crash can
// only ever lose a whole snapshot, which recovery treats as absent.
func (n *Node) Crash() error {
	n.StopSealing()
	if n.snap != nil {
		n.snap.stop()
	}
	if n.wal != nil {
		return n.wal.Abandon()
	}
	return nil
}
