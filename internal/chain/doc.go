// Package chain implements the blockchain substrate of the usage-control
// architecture: ECDSA-signed transactions, a hash-indexed mempool,
// proof-of-authority block production, a journaled key-value state with
// deterministic state roots, receipts, topic-filterable event logs with
// subscriptions, and a gas schedule used by the affordability
// experiments.
//
// The package replaces the public blockchain the paper assumes. It keeps
// the same interface contract — submit a signed transaction, have it
// validated and ordered into a block by consensus among authorities,
// observe its receipt and emitted events — without requiring a live
// network. Contract execution is delegated to an Executor (implemented by
// package contract), mirroring how an EVM is a pluggable component of a
// node.
//
// # Concurrency contract
//
// A Node is safe for concurrent use. Internally it holds three locks with
// a fixed acquisition order (sealMu → mpMu → mu):
//
//   - sealMu serializes block production and application (Seal,
//     SealOutOfTurn, ApplyBlock, SyncFrom). At most one block is built or
//     validated at a time; chain state only ever advances under sealMu.
//   - mpMu guards transaction admission: the hash-indexed mempool and the
//     per-sender nonce table. Submissions (SubmitTx, SubmitBatch) contend
//     only on this lock, so they are admitted concurrently with block
//     execution rather than serializing behind it.
//   - mu (an RWMutex) guards the ledger: the block list, the state
//     handle, and receipt waiters. Read paths — Height, Head,
//     BlockByNumber, Query, Events, Receipt — take only the read lock and
//     therefore run in parallel with each other and with everything
//     except the brief commit section of sealing/application.
//
// Block execution itself never runs under mu: both sealing and
// validation execute against a copy-on-write Overlay of the committed
// state (O(touched keys), not O(ledger)), encode and append the WAL
// record off-lock, and take the write lock only to fold the overlay's
// delta set into the state and append the block. Receipt waiters are
// woken through capacity-1 buffered channels, so a slow WaitForReceipt
// consumer cannot stall a commit. State snapshots are serialized and
// written by a background goroutine fed a copy-on-write export, never
// under any node lock.
//
// What the locks do NOT guarantee: a Query observes the live state store
// (State is internally synchronized, so reads are memory-safe), which
// means a query racing a commit may see a partially applied block's
// writes. Callers needing block-atomic reads should key off
// WaitForReceipt or event subscriptions. State and CostLedger carry their
// own synchronization and may be read without node locks.
//
// Signature verification — the dominant CPU cost of admission and
// validation — never runs under any node lock. Batch paths (SubmitBatch,
// Network.SubmitEverywhereBatch, ApplyBlock) verify concurrently via a
// bounded worker pool (VerifyTxSignatures); Config.VerifyWorkers bounds
// the pool, with 1 forcing the sequential ablation baseline.
//
// # Durability
//
// A node opened with OpenNode and a Config.DataDir is durable: every
// committed block — sealed, validated, or synced — is appended to a
// CRC-checked write-ahead log (header + transactions + receipts + the
// block's net state diff, in the deterministic length-prefixed binary
// format of codec.go; JSON-era logs still decode) before the in-memory
// ledger advances, and a full state snapshot is written every
// Config.SnapshotInterval blocks.
// Reopening the same directory reconstructs the node: the newest usable
// snapshot bounds replay, the diff tail is applied with every block's
// state root checked against its header, and nonces plus the gas cost
// ledger are rebuilt from the recovered blocks. Torn log tails (a crash
// mid-append) are truncated back to the last complete record; corrupt
// snapshots fall back to a full diff replay. The mempool is not
// persisted. Close flushes and releases the store; Crash abandons it
// without the final flush (fault injection). The fsync policy
// (Config.Persist) decides what a machine crash may lose — an
// in-process crash loses nothing, as appends are unbuffered.
package chain
