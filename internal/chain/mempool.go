package chain

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/cryptoutil"
)

// Admission errors for the priced, bounded mempool. ErrUnderpriced wraps
// ErrPoolFull so HTTP frontends can map both to 429 backpressure with a
// single errors.Is check; ErrReplaceUnderpriced is a client error (the
// bid was syntactically fine but below the bump threshold), not
// backpressure.
var (
	ErrPoolFull           = errors.New("chain: mempool full")
	ErrUnderpriced        = fmt.Errorf("%w: gas price below eviction floor", ErrPoolFull)
	ErrQuotaExceeded      = errors.New("chain: sender pending quota exceeded")
	ErrReplaceUnderpriced = errors.New("chain: replacement gas price below bump threshold")
)

// poolTx pairs a queued transaction with its hash so ordering
// comparisons and index maintenance never recompute digests.
type poolTx struct {
	tx   *Tx
	hash cryptoutil.Hash
}

// senderQueue holds one sender's pending transactions in contiguous
// ascending nonce order: txs[0] is the next nonce the chain will accept
// from this sender, txs[len-1] is the speculative tail. Contiguity is an
// invariant — admission only appends the next nonce, replacement swaps
// in place, and removal either pops the head (commit path) or truncates
// a suffix (rollback path) — so selection never has to reason about
// gaps.
type senderQueue struct {
	addr cryptoutil.Address
	txs  []*poolTx
	// evictIdx is this queue's position in the mempool's tail heap,
	// maintained by tailHeap.Swap so heap.Fix/heap.Remove can target the
	// queue directly.
	evictIdx int
}

func (sq *senderQueue) tail() *poolTx { return sq.txs[len(sq.txs)-1] }

// tailHeap is a min-heap of sender queues keyed by their cheapest
// evictable transaction — the speculative tail. Evicting tails (never
// heads or mid-queue entries) preserves per-sender nonce contiguity.
// Ties break on tail hash so the heap order is a strict total order and
// the eviction victim is deterministic across replicas.
//
// The heap's backing slice doubles as the pool's map-free enumeration of
// senders: block selection iterates it instead of ranging over the
// senders map, which keeps the replay-deterministic packages free of map
// iteration order (see internal/lint's determinism analyzer).
type tailHeap []*senderQueue

func (h tailHeap) Len() int { return len(h) }

func (h tailHeap) Less(i, j int) bool {
	ti, tj := h[i].tail(), h[j].tail()
	if ti.tx.GasPrice != tj.tx.GasPrice {
		return ti.tx.GasPrice < tj.tx.GasPrice
	}
	return bytes.Compare(ti.hash[:], tj.hash[:]) < 0
}

func (h tailHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].evictIdx = i
	h[j].evictIdx = j
}

func (h *tailHeap) Push(x any) {
	sq := x.(*senderQueue)
	sq.evictIdx = len(*h)
	*h = append(*h, sq)
}

func (h *tailHeap) Pop() any {
	old := *h
	n := len(old)
	sq := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return sq
}

// headCand is a block-selection candidate: the executable head of one
// sender's queue, advanced in place as the sender's transactions are
// picked.
type headCand struct {
	sq  *senderQueue
	idx int
}

// headHeap is a transient max-heap over sender heads keyed (gas price
// descending, hash ascending). The comparator is a strict total order,
// so the pop sequence — and therefore block transaction order — is
// deterministic regardless of the order candidates were pushed. That
// keeps the parallel-execution differential suites bit-identical: every
// replica seals the same transactions in the same order.
type headHeap []headCand

func (h headHeap) Len() int { return len(h) }

func (h headHeap) Less(i, j int) bool {
	ti, tj := h[i].sq.txs[h[i].idx], h[j].sq.txs[h[j].idx]
	if ti.tx.GasPrice != tj.tx.GasPrice {
		return ti.tx.GasPrice > tj.tx.GasPrice
	}
	return bytes.Compare(ti.hash[:], tj.hash[:]) < 0
}

func (h headHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *headHeap) Push(x any)   { *h = append(*h, x.(headCand)) }
func (h *headHeap) Pop() any     { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// mempool is a priced, bounded, hash-indexed transaction pool. Block
// selection is highest-gas-price-first (per-sender nonce order
// preserved, hash tie-break); admission enforces a per-sender pending
// quota and a pool-wide capacity, evicting the cheapest speculative tail
// when a better-priced transaction arrives at a full pool; replacement
// (same sender and nonce) requires a configurable percentage price bump.
//
// mempool is not internally synchronized; the owning Node guards it with
// its mempool mutex.
type mempool struct {
	capacity int // pool-wide transaction bound (>=1)
	quota    int // max pending transactions per sender (>=1)
	bumpPct  int // replace-by-fee minimum price bump, percent

	byHash  map[cryptoutil.Hash]*Tx
	senders map[cryptoutil.Address]*senderQueue
	tails   tailHeap
	size    int
}

func newMempool(capacity, quota, bumpPct int) *mempool {
	return &mempool{
		capacity: capacity,
		quota:    quota,
		bumpPct:  bumpPct,
		byHash:   make(map[cryptoutil.Hash]*Tx),
		senders:  make(map[cryptoutil.Address]*senderQueue),
	}
}

// Len returns the number of queued transactions.
func (mp *mempool) Len() int { return mp.size }

// Capacity returns the configured pool bound.
func (mp *mempool) Capacity() int { return mp.capacity }

// Contains reports whether a transaction with the given hash is queued.
func (mp *mempool) Contains(h cryptoutil.Hash) bool {
	_, ok := mp.byHash[h]
	return ok
}

// PendingFrom returns how many queued transactions the sender has.
func (mp *mempool) PendingFrom(addr cryptoutil.Address) uint64 {
	sq := mp.senders[addr]
	if sq == nil {
		return 0
	}
	return uint64(len(sq.txs))
}

// Add appends tx (which must carry the sender's next uncommitted nonce —
// the caller checks ordering) after enforcing the sender quota and the
// pool capacity. At a full pool the incoming transaction must strictly
// price-beat the cheapest speculative tail, which is evicted to make
// room and returned so the caller can count it; an eviction that would
// gap the incoming sender's own queue is refused instead.
func (mp *mempool) Add(h cryptoutil.Hash, tx *Tx) (evicted *poolTx, err error) {
	sq := mp.senders[tx.From]
	if sq != nil && len(sq.txs) >= mp.quota {
		return nil, fmt.Errorf("%w: %s has %d pending (quota %d)", ErrQuotaExceeded, tx.From, len(sq.txs), mp.quota)
	}
	if mp.size >= mp.capacity {
		if len(mp.tails) == 0 {
			return nil, ErrPoolFull
		}
		victim := mp.tails[0]
		if victim.addr == tx.From {
			// Evicting our own tail to append right after it would
			// recreate the same occupancy with a gap risk; the sender is
			// simply out of room.
			return nil, ErrUnderpriced
		}
		vTail := victim.tail()
		if tx.GasPrice <= vTail.tx.GasPrice {
			return nil, ErrUnderpriced
		}
		mp.dropTail(victim)
		evicted = vTail
	}
	p := &poolTx{tx: tx, hash: h}
	if sq == nil {
		sq = &senderQueue{addr: tx.From, txs: []*poolTx{p}}
		mp.senders[tx.From] = sq
		heap.Push(&mp.tails, sq)
	} else {
		sq.txs = append(sq.txs, p)
		heap.Fix(&mp.tails, sq.evictIdx)
	}
	mp.byHash[h] = tx
	mp.size++
	return evicted, nil
}

// Replace swaps the queued transaction at tx's (sender, nonce) slot for
// tx, requiring the new gas price to exceed the old by at least the
// configured bump percentage (and strictly, even at bump 0). The
// replaced transaction is returned. Pending counts are unchanged: the
// slot is reused, not re-queued.
func (mp *mempool) Replace(h cryptoutil.Hash, tx *Tx) (*poolTx, error) {
	sq := mp.senders[tx.From]
	if sq == nil || len(sq.txs) == 0 {
		return nil, fmt.Errorf("chain: no queued transaction to replace at nonce %d", tx.Nonce)
	}
	base := sq.txs[0].tx.Nonce
	if tx.Nonce < base || tx.Nonce >= base+uint64(len(sq.txs)) {
		return nil, fmt.Errorf("chain: no queued transaction to replace at nonce %d", tx.Nonce)
	}
	idx := int(tx.Nonce - base)
	old := sq.txs[idx]
	need := bumpThreshold(old.tx.GasPrice, mp.bumpPct)
	if tx.GasPrice <= old.tx.GasPrice || tx.GasPrice < need {
		return nil, fmt.Errorf("%w: have %d, old %d, need >= %d", ErrReplaceUnderpriced, tx.GasPrice, old.tx.GasPrice, need)
	}
	sq.txs[idx] = &poolTx{tx: tx, hash: h}
	delete(mp.byHash, old.hash)
	mp.byHash[h] = tx
	if idx == len(sq.txs)-1 {
		heap.Fix(&mp.tails, sq.evictIdx)
	}
	return old, nil
}

// bumpThreshold computes old*(100+bumpPct)/100, saturating at MaxUint64
// so absurd prices cannot overflow their way past the bump requirement.
func bumpThreshold(old uint64, bumpPct int) uint64 {
	mult := uint64(100 + bumpPct)
	if old > math.MaxUint64/mult {
		return math.MaxUint64
	}
	return old * mult / 100
}

// Remove deletes the transaction with the given hash, reporting whether
// it was present. Removing a queue head (the commit path: nonces were
// just advanced past it) pops only the head; removing a later entry (the
// rollback path: a just-appended run is being withdrawn) truncates that
// entry and everything after it, so per-sender contiguity survives and
// subsequent removals of the same run are no-ops.
func (mp *mempool) Remove(h cryptoutil.Hash) bool {
	tx, ok := mp.byHash[h]
	if !ok {
		return false
	}
	sq := mp.senders[tx.From]
	idx := int(tx.Nonce - sq.txs[0].tx.Nonce)
	if idx == 0 {
		mp.popHead(sq)
		return true
	}
	for _, p := range sq.txs[idx:] {
		delete(mp.byHash, p.hash)
		mp.size--
	}
	sq.txs = sq.txs[:idx]
	heap.Fix(&mp.tails, sq.evictIdx)
	return true
}

// popHead removes the head of sq, unindexing it and dropping the queue
// entirely when it empties.
func (mp *mempool) popHead(sq *senderQueue) {
	head := sq.txs[0]
	delete(mp.byHash, head.hash)
	sq.txs = sq.txs[1:]
	mp.size--
	if len(sq.txs) == 0 {
		heap.Remove(&mp.tails, sq.evictIdx)
		delete(mp.senders, sq.addr)
	}
	// A multi-entry queue's tail is unchanged by a head pop, so the tail
	// heap needs no fix.
}

// dropTail evicts the speculative tail of sq (capacity pressure).
func (mp *mempool) dropTail(sq *senderQueue) {
	t := sq.tail()
	delete(mp.byHash, t.hash)
	sq.txs = sq.txs[:len(sq.txs)-1]
	mp.size--
	if len(sq.txs) == 0 {
		heap.Remove(&mp.tails, sq.evictIdx)
		delete(mp.senders, sq.addr)
	} else {
		heap.Fix(&mp.tails, sq.evictIdx)
	}
}

// Take dequeues up to max transactions for a block: highest gas price
// first, ties broken by ascending hash, per-sender nonce order always
// preserved (a sender's second transaction is only eligible once its
// first was picked). committed maps senders to their next expected
// nonce; queued transactions below it (committed by a block that carried
// a replacement, so hash-removal missed them) are swept here.
//
// Selection iterates the tail heap's backing slice and drains a strict
// total-order candidate heap, so the result is deterministic and
// map-iteration-free.
func (mp *mempool) Take(max int, committed map[cryptoutil.Address]uint64) []*Tx {
	if mp.size == 0 || max <= 0 {
		return nil
	}

	// Sweep stale heads first. Iterate a snapshot of the queue set:
	// emptied queues are removed from the tail heap as we go.
	queues := make([]*senderQueue, len(mp.tails))
	copy(queues, mp.tails)
	for _, sq := range queues {
		for len(sq.txs) > 0 && sq.txs[0].tx.Nonce < committed[sq.addr] {
			mp.popHead(sq)
		}
	}

	// Seed one candidate per sender whose head is executable now.
	cands := make(headHeap, 0, len(mp.tails))
	for _, sq := range mp.tails {
		if sq.txs[0].tx.Nonce == committed[sq.addr] {
			cands = append(cands, headCand{sq: sq, idx: 0})
		}
	}
	heap.Init(&cands)

	out := make([]*Tx, 0, min(max, mp.size))
	taken := make(map[*senderQueue]int, len(cands))
	for len(out) < max && cands.Len() > 0 {
		c := cands[0]
		out = append(out, c.sq.txs[c.idx].tx)
		taken[c.sq]++
		if c.idx+1 < len(c.sq.txs) {
			cands[0].idx++
			heap.Fix(&cands, 0)
		} else {
			heap.Pop(&cands)
		}
	}

	// Detach the selected prefixes. Iterate the snapshot rather than the
	// taken map: queue set order is heap-internal but the removals below
	// are per-queue and order-independent.
	for _, sq := range queues {
		n := taken[sq]
		for range n {
			mp.popHead(sq)
		}
	}
	return out
}
