package chain

import (
	"container/list"

	"repro/internal/cryptoutil"
)

// mempool is a hash-indexed FIFO transaction pool. Insertion order is
// preserved (blocks take transactions in arrival order), while the hash
// index makes duplicate detection and removal O(1) instead of the linear
// scans a plain slice requires — the scans dominated block application on
// validators once mempools grew past a few hundred transactions.
//
// A per-sender pending count is maintained alongside, so nonce admission
// (NonceFor, SubmitTx) no longer walks the whole pool per submission.
//
// mempool is not internally synchronized; the owning Node guards it with
// its mempool mutex.
type mempool struct {
	order   *list.List // of *Tx, FIFO
	byHash  map[cryptoutil.Hash]*list.Element
	pending map[cryptoutil.Address]uint64 // queued tx count per sender
}

func newMempool() *mempool {
	return &mempool{
		order:   list.New(),
		byHash:  make(map[cryptoutil.Hash]*list.Element),
		pending: make(map[cryptoutil.Address]uint64),
	}
}

// Len returns the number of queued transactions.
func (mp *mempool) Len() int { return mp.order.Len() }

// Contains reports whether a transaction with the given hash is queued.
func (mp *mempool) Contains(h cryptoutil.Hash) bool {
	_, ok := mp.byHash[h]
	return ok
}

// PendingFrom returns how many queued transactions the sender has.
func (mp *mempool) PendingFrom(addr cryptoutil.Address) uint64 {
	return mp.pending[addr]
}

// Add enqueues tx under the given hash. It reports false (and leaves the
// pool untouched) when the hash is already present.
func (mp *mempool) Add(h cryptoutil.Hash, tx *Tx) bool {
	if _, ok := mp.byHash[h]; ok {
		return false
	}
	mp.byHash[h] = mp.order.PushBack(tx)
	mp.pending[tx.From]++
	return true
}

// Remove deletes the transaction with the given hash, reporting whether it
// was present.
func (mp *mempool) Remove(h cryptoutil.Hash) bool {
	el, ok := mp.byHash[h]
	if !ok {
		return false
	}
	tx := el.Value.(*Tx)
	mp.order.Remove(el)
	delete(mp.byHash, h)
	if mp.pending[tx.From] <= 1 {
		delete(mp.pending, tx.From)
	} else {
		mp.pending[tx.From]--
	}
	return true
}

// Take dequeues up to max transactions in FIFO order.
func (mp *mempool) Take(max int) []*Tx {
	n := mp.order.Len()
	if n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]*Tx, 0, n)
	for range n {
		el := mp.order.Front()
		tx := el.Value.(*Tx)
		out = append(out, tx)
		mp.order.Remove(el)
		delete(mp.byHash, tx.Hash())
		if mp.pending[tx.From] <= 1 {
			delete(mp.pending, tx.From)
		} else {
			mp.pending[tx.From]--
		}
	}
	return out
}
