package chain

import (
	"errors"
	"testing"

	"repro/internal/cryptoutil"
)

// splitCells builds a cell assignment putting the listed node indices in
// cell 1 and everyone else in cell 0.
func splitCells(nodes []*Node, minority ...int) map[cryptoutil.Address]int {
	isMinority := make(map[int]bool, len(minority))
	for _, i := range minority {
		isMinority[i] = true
	}
	cells := make(map[cryptoutil.Address]int, len(nodes))
	for i, n := range nodes {
		if isMinority[i] {
			cells[n.Address()] = 1
		} else {
			cells[n.Address()] = 0
		}
	}
	return cells
}

// TestPartitionQuorumSealsMinorityStalls: under a split only the quorum
// cell makes progress; the minority stalls at its pre-split height with
// its chain a strict prefix, and cross-cell broadcasts are buffered
// (counted as dropped at heal).
func TestPartitionQuorumSealsMinorityStalls(t *testing.T) {
	nodes, net, _, clk := newTestCluster(t, 5)
	sealEmpty(t, net, clk)
	preSplit := nodes[0].Height()

	if err := net.Partition(splitCells(nodes, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if !net.Partitioned() {
		t.Fatal("Partitioned() = false after a split")
	}
	for i, n := range nodes {
		want := i >= 3
		if got := net.IsPartitioned(n.Address()); got != want {
			t.Fatalf("IsPartitioned(node %d) = %t, want %t", i, got, want)
		}
	}

	const rounds = 3
	for range rounds {
		sealEmpty(t, net, clk)
	}
	for i, n := range nodes[:3] {
		if n.Height() != preSplit+rounds {
			t.Fatalf("quorum node %d at height %d, want %d", i, n.Height(), preSplit+rounds)
		}
	}
	for i, n := range nodes[3:] {
		if n.Height() != preSplit {
			t.Fatalf("minority node %d at height %d, want pre-split %d", 3+i, n.Height(), preSplit)
		}
		// The minority chain must be a strict prefix of the quorum chain.
		for h := uint64(0); h <= n.Height(); h++ {
			if n.BlockByNumber(h).Hash() != nodes[0].BlockByNumber(h).Hash() {
				t.Fatalf("minority node %d diverged at height %d", 3+i, h)
			}
		}
	}

	synced, dropped, err := net.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * rounds; dropped != want {
		t.Fatalf("heal dropped %d buffered deliveries, want %d", dropped, want)
	}
	if want := 2 * rounds; synced != want {
		t.Fatalf("heal synced %d blocks, want %d", synced, want)
	}
	if net.Partitioned() {
		t.Fatal("still partitioned after heal")
	}
	head := nodes[0].Head().Hash()
	for i, n := range nodes {
		if n.Head().Hash() != head {
			t.Fatalf("node %d head differs after heal", i)
		}
	}
	if net.DroppedDeliveries() != dropped {
		t.Fatalf("DroppedDeliveries() = %d, want %d", net.DroppedDeliveries(), dropped)
	}

	// The healed cluster seals as a whole again.
	sealEmpty(t, net, clk)
	for i, n := range nodes {
		if n.Height() != preSplit+rounds+1 {
			t.Fatalf("node %d at height %d after post-heal seal", i, n.Height())
		}
	}
}

// TestPartitionRefusals pins the split's preconditions: every member
// assigned, exactly one strict-majority cell, no stacked partitions,
// and Heal only on a split cluster.
func TestPartitionRefusals(t *testing.T) {
	nodes, net, _, _ := newTestCluster(t, 4)

	if err := net.Partition(splitCells(nodes, 1, 2)); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("2/2 split = %v, want ErrNoQuorum", err)
	}

	omitted := splitCells(nodes, 3)
	delete(omitted, nodes[0].Address())
	if err := net.Partition(omitted); err == nil {
		t.Fatal("partition omitting a member was accepted")
	}

	if _, _, err := net.Heal(); err == nil {
		t.Fatal("healed a whole cluster")
	}

	if err := net.Partition(splitCells(nodes, 3)); err != nil {
		t.Fatal(err)
	}
	if err := net.Partition(splitCells(nodes, 1)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("stacked partition = %v, want ErrPartitioned", err)
	}
	if _, _, err := net.Heal(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionSubmissionRidesQuorum: transactions submitted during a
// split land only in quorum mempools (a minority mempool would hold the
// tx invisibly until heal), and reads via LiveNode stay on the quorum
// side.
func TestPartitionSubmissionRidesQuorum(t *testing.T) {
	nodes, net, keys, clk := newTestCluster(t, 3)
	if err := net.Partition(splitCells(nodes, 2)); err != nil {
		t.Fatal(err)
	}
	if ln := net.LiveNode(); ln == nil || net.IsPartitioned(ln.Address()) {
		t.Fatal("LiveNode returned a minority node under a split")
	}
	sender := keys[0]
	if _, err := net.SubmitEverywhere(mustTx(t, sender, 0, testContractAddr(), "k", "v")); err != nil {
		t.Fatal(err)
	}
	if p := nodes[2].PendingTxs(); p != 0 {
		t.Fatalf("minority mempool holds %d txs", p)
	}
	if p := nodes[0].PendingTxs(); p != 1 {
		t.Fatalf("quorum mempool holds %d txs, want 1", p)
	}
	sealEmpty(t, net, clk)
	if _, _, err := net.Heal(); err != nil {
		t.Fatal(err)
	}
	if h := nodes[2].Height(); h != nodes[0].Height() {
		t.Fatalf("minority at height %d after heal, quorum at %d", h, nodes[0].Height())
	}
}

// TestPartitionBufferCap: a long-lived partition eventually drops
// cross-cell traffic on the floor instead of queueing unboundedly, and
// the heal still converges the minority via re-sync.
func TestPartitionBufferCap(t *testing.T) {
	if testing.Short() {
		t.Skip("seals past the delivery buffer cap")
	}
	nodes, net, _, clk := newTestCluster(t, 3)
	if err := net.Partition(splitCells(nodes, 2)); err != nil {
		t.Fatal(err)
	}
	// One buffered delivery per seal (a single minority node): exceed the
	// cap by a handful.
	rounds := maxBufferedDeliveries + 5
	for range rounds {
		sealEmpty(t, net, clk)
	}
	if got := net.DroppedDeliveries(); got != 5 {
		t.Fatalf("pre-heal floor drops = %d, want 5", got)
	}
	synced, dropped, err := net.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != maxBufferedDeliveries {
		t.Fatalf("heal dropped %d, want the full buffer %d", dropped, maxBufferedDeliveries)
	}
	if synced != rounds {
		t.Fatalf("heal synced %d blocks, want %d", synced, rounds)
	}
	if got, want := net.DroppedDeliveries(), rounds; got != want {
		t.Fatalf("total dropped = %d, want %d", got, want)
	}
	if nodes[2].Head().Hash() != nodes[0].Head().Hash() {
		t.Fatal("minority did not converge after a capped buffer heal")
	}
}
