package chain

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// BlockContext exposes block-level environment data to contract execution.
type BlockContext struct {
	// Number is the block height being executed.
	Number uint64
	// Time is the block timestamp. Contracts must use it (never the wall
	// clock) so that every node executes deterministically.
	Time time.Time
}

// Executor runs transactions against state. It is implemented by the
// contract runtime (package contract); the indirection keeps the chain
// package free of contract semantics, as an EVM is pluggable in a real
// node.
type Executor interface {
	// ExecuteTx runs a state-mutating transaction and returns its receipt.
	// On a revert, the executor must leave the state untouched (the node
	// additionally guards with a checkpoint).
	ExecuteTx(st *State, tx *Tx, bctx BlockContext) *Receipt
	// Query runs a read-only method with no transaction and no gas
	// accounting. It must not mutate state.
	Query(st *State, contract cryptoutil.Address, method string, args []byte, bctx BlockContext) ([]byte, error)
}

// Config configures a Node.
type Config struct {
	// Key is this node's authority key.
	Key *cryptoutil.KeyPair
	// Authorities is the proof-of-authority proposer set, in rotation
	// order. It must contain the node's own address for the node to
	// propose blocks.
	Authorities []cryptoutil.Address
	// Executor executes transactions.
	Executor Executor
	// Clock supplies block timestamps; defaults to the real clock.
	Clock simclock.Clock
	// GenesisTime is the timestamp of block 0.
	GenesisTime time.Time
	// MaxTxsPerBlock caps block size; defaults to 1024.
	MaxTxsPerBlock int
}

// Node is a proof-of-authority blockchain node: it holds the ledger and
// state, accepts transactions into a mempool, seals blocks when it is its
// turn, validates and applies blocks sealed by other authorities, and
// serves read-only queries and event subscriptions.
type Node struct {
	key         *cryptoutil.KeyPair
	authorities []cryptoutil.Address
	executor    Executor
	clock       simclock.Clock
	maxTxs      int

	mu      sync.RWMutex
	state   *State
	blocks  []*Block
	mempool []*Tx
	nonces  map[cryptoutil.Address]uint64
	waiters map[cryptoutil.Hash][]chan *Receipt

	feed  *eventFeed
	costs *CostLedger

	sealMu      sync.Mutex
	stopSealing func()
}

// Node construction and submission errors.
var (
	ErrNoAuthorities = errors.New("chain: empty authority set")
	ErrBadNonce      = errors.New("chain: bad nonce")
	ErrNotOurTurn    = errors.New("chain: not this node's turn to propose")
)

// NewNode creates a node with a genesis block.
func NewNode(cfg Config) (*Node, error) {
	if len(cfg.Authorities) == 0 {
		return nil, ErrNoAuthorities
	}
	if cfg.Key == nil {
		return nil, errors.New("chain: missing node key")
	}
	if cfg.Executor == nil {
		return nil, errors.New("chain: missing executor")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = simclock.Real{}
	}
	maxTxs := cfg.MaxTxsPerBlock
	if maxTxs <= 0 {
		maxTxs = 1024
	}
	n := &Node{
		key:         cfg.Key,
		authorities: append([]cryptoutil.Address(nil), cfg.Authorities...),
		executor:    cfg.Executor,
		clock:       clk,
		maxTxs:      maxTxs,
		state:       NewState(),
		nonces:      make(map[cryptoutil.Address]uint64),
		waiters:     make(map[cryptoutil.Hash][]chan *Receipt),
		feed:        newEventFeed(),
		costs:       NewCostLedger(),
	}
	genesis := &Block{Header: Header{
		Number:      0,
		Time:        cfg.GenesisTime,
		TxRoot:      txRoot(nil),
		ReceiptRoot: receiptRoot(nil),
		StateRoot:   n.state.Root(),
	}}
	n.blocks = []*Block{genesis}
	return n, nil
}

// Address returns the node's authority address.
func (n *Node) Address() cryptoutil.Address { return n.key.Address() }

// Height returns the latest block number.
func (n *Node) Height() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[len(n.blocks)-1].Header.Number
}

// Head returns the latest block.
func (n *Node) Head() *Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[len(n.blocks)-1]
}

// BlockByNumber returns a block by height, or nil if out of range.
func (n *Node) BlockByNumber(num uint64) *Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if num >= uint64(len(n.blocks)) {
		return nil
	}
	return n.blocks[num]
}

// NonceFor returns the next nonce for an address (committed plus pending).
func (n *Node) NonceFor(addr cryptoutil.Address) uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	nonce := n.nonces[addr]
	for _, tx := range n.mempool {
		if tx.From == addr {
			nonce++
		}
	}
	return nonce
}

// SubmitTx verifies and enqueues a transaction, returning its hash.
func (n *Node) SubmitTx(tx *Tx) (cryptoutil.Hash, error) {
	if err := tx.VerifySignature(); err != nil {
		return cryptoutil.Hash{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	expected := n.nonces[tx.From]
	for _, pending := range n.mempool {
		if pending.From == tx.From {
			expected++
		}
	}
	if tx.Nonce != expected {
		return cryptoutil.Hash{}, fmt.Errorf("%w: got %d, want %d", ErrBadNonce, tx.Nonce, expected)
	}
	n.mempool = append(n.mempool, tx)
	return tx.Hash(), nil
}

// PendingTxs returns the number of mempool transactions.
func (n *Node) PendingTxs() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.mempool)
}

// proposerFor returns the authority whose turn it is at the given height.
func (n *Node) proposerFor(number uint64) cryptoutil.Address {
	return n.authorities[number%uint64(len(n.authorities))]
}

// isAuthority reports whether addr belongs to the authority set.
func (n *Node) isAuthority(addr cryptoutil.Address) bool {
	for _, a := range n.authorities {
		if a == addr {
			return true
		}
	}
	return false
}

// Seal produces, signs, and applies the next block from the mempool. It
// returns the sealed block (possibly empty of transactions). It fails with
// ErrNotOurTurn when another authority should propose at this height; use
// SealOutOfTurn to take over for a failed in-turn authority (clique-style,
// where any authority may propose but the in-turn one is preferred).
func (n *Node) Seal() (*Block, error) { return n.seal(false) }

// SealOutOfTurn seals even when another authority is scheduled. The block
// remains valid for the cluster because validation requires only set
// membership (see ApplyBlock).
func (n *Node) SealOutOfTurn() (*Block, error) { return n.seal(true) }

func (n *Node) seal(force bool) (*Block, error) {
	n.sealMu.Lock()
	defer n.sealMu.Unlock()

	n.mu.Lock()
	parent := n.blocks[len(n.blocks)-1]
	number := parent.Header.Number + 1
	if !force && n.proposerFor(number) != n.key.Address() {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: height %d belongs to %s", ErrNotOurTurn, number, n.proposerFor(number))
	}
	take := len(n.mempool)
	if take > n.maxTxs {
		take = n.maxTxs
	}
	txs := n.mempool[:take]
	n.mempool = append([]*Tx(nil), n.mempool[take:]...)

	bctx := BlockContext{Number: number, Time: n.clock.Now()}
	if !bctx.Time.After(parent.Header.Time) {
		// Guarantee strictly monotone block timestamps even under a
		// stalled simulated clock.
		bctx.Time = parent.Header.Time.Add(time.Nanosecond)
	}

	receipts := n.executeAll(txs, bctx)
	header := Header{
		Number:      number,
		ParentHash:  parent.Hash(),
		Time:        bctx.Time,
		Proposer:    n.key.Address(),
		TxRoot:      txRoot(txs),
		ReceiptRoot: receiptRoot(receipts),
		StateRoot:   n.state.Root(),
	}
	sig, err := n.key.Sign(header.SigningBytes())
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	header.Signature = sig
	block := &Block{Header: header, Txs: txs, Receipts: receipts}
	n.commitLocked(block)
	n.mu.Unlock()
	return block, nil
}

// executeAll runs txs against the node state, producing receipts; it must
// be called with n.mu held.
func (n *Node) executeAll(txs []*Tx, bctx BlockContext) []*Receipt {
	receipts := make([]*Receipt, 0, len(txs))
	eventIndex := 0
	for _, tx := range txs {
		checkpoint := n.state.Checkpoint()
		receipt := n.executor.ExecuteTx(n.state, tx, bctx)
		if receipt.Status != StatusOK {
			n.state.RevertTo(checkpoint)
			receipt.Events = nil
		}
		receipt.TxHash = tx.Hash()
		receipt.BlockNumber = bctx.Number
		for i := range receipt.Events {
			receipt.Events[i].BlockNumber = bctx.Number
			receipt.Events[i].TxHash = receipt.TxHash
			receipt.Events[i].Index = eventIndex
			eventIndex++
		}
		n.nonces[tx.From] = tx.Nonce + 1
		n.costs.Record(tx.From, tx.Method, receipt.GasUsed)
		receipts = append(receipts, receipt)
	}
	return receipts
}

// commitLocked appends a fully formed block, publishes its events, and
// wakes receipt waiters. n.mu must be held.
func (n *Node) commitLocked(block *Block) {
	n.blocks = append(n.blocks, block)
	n.state.DiscardJournal()
	var events []Event
	for _, r := range block.Receipts {
		events = append(events, r.Events...)
		if chans, ok := n.waiters[r.TxHash]; ok {
			for _, ch := range chans {
				ch <- r
				close(ch)
			}
			delete(n.waiters, r.TxHash)
		}
	}
	if len(events) > 0 {
		n.feed.publish(events)
	}
}

// WaitForReceipt blocks until the transaction is included in a block or
// the context is done. If the receipt is already available it returns
// immediately.
func (n *Node) WaitForReceipt(ctx context.Context, txHash cryptoutil.Hash) (*Receipt, error) {
	n.mu.Lock()
	if r := n.findReceiptLocked(txHash); r != nil {
		n.mu.Unlock()
		return r, nil
	}
	ch := make(chan *Receipt, 1)
	n.waiters[txHash] = append(n.waiters[txHash], ch)
	n.mu.Unlock()

	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Receipt returns the receipt for a transaction if it has been included.
func (n *Node) Receipt(txHash cryptoutil.Hash) *Receipt {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.findReceiptLocked(txHash)
}

func (n *Node) findReceiptLocked(txHash cryptoutil.Hash) *Receipt {
	for i := len(n.blocks) - 1; i >= 0; i-- {
		for _, r := range n.blocks[i].Receipts {
			if r.TxHash == txHash {
				return r
			}
		}
	}
	return nil
}

// Query serves a read-only contract call against the current state. This
// is the on-chain half of the pull-out oracle pattern.
func (n *Node) Query(contract cryptoutil.Address, method string, args []byte) ([]byte, error) {
	n.mu.RLock()
	head := n.blocks[len(n.blocks)-1]
	bctx := BlockContext{Number: head.Header.Number, Time: head.Header.Time}
	st := n.state
	n.mu.RUnlock()
	return n.executor.Query(st, contract, method, args, bctx)
}

// SubscribeEvents returns a subscription delivering committed events that
// match the filter.
func (n *Node) SubscribeEvents(filter EventFilter, buffer int) *Subscription {
	return n.feed.subscribe(filter, buffer)
}

// EventsDropped reports events lost to slow subscribers.
func (n *Node) EventsDropped() uint64 { return n.feed.Dropped() }

// Events returns committed events matching the filter, scanning the
// ledger. It serves pull-in oracle reads and test assertions.
func (n *Node) Events(filter EventFilter) []Event {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []Event
	for _, b := range n.blocks {
		for _, r := range b.Receipts {
			for _, ev := range r.Events {
				if filter.Matches(&ev) {
					out = append(out, ev)
				}
			}
		}
	}
	return out
}

// Costs returns the node's gas cost ledger.
func (n *Node) Costs() *CostLedger { return n.costs }

// State returns the node's state store. Contracts deployed on the
// executor share it; external callers must treat it as read-only.
func (n *Node) State() *State {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.state
}

// StartSealing begins background block production at the given interval.
// Calling it twice stops the previous loop. Stop with StopSealing.
func (n *Node) StartSealing(interval time.Duration) {
	n.StopSealing()
	var cancelled bool
	var mu sync.Mutex
	var schedule func()
	var cancelTimer func()
	schedule = func() {
		cancelTimer = n.clock.AfterFunc(interval, func() {
			mu.Lock()
			if cancelled {
				mu.Unlock()
				return
			}
			mu.Unlock()
			// Ignore ErrNotOurTurn: another authority proposes.
			_, _ = n.Seal()
			mu.Lock()
			if !cancelled {
				schedule()
			}
			mu.Unlock()
		})
	}
	mu.Lock()
	schedule()
	mu.Unlock()
	n.sealMu.Lock()
	n.stopSealing = func() {
		mu.Lock()
		cancelled = true
		stop := cancelTimer
		mu.Unlock()
		if stop != nil {
			stop()
		}
	}
	n.sealMu.Unlock()
}

// StopSealing halts background block production.
func (n *Node) StopSealing() {
	n.sealMu.Lock()
	stop := n.stopSealing
	n.stopSealing = nil
	n.sealMu.Unlock()
	if stop != nil {
		stop()
	}
}
