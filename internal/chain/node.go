package chain

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/store"
)

// BlockContext exposes block-level environment data to contract execution.
type BlockContext struct {
	// Number is the block height being executed.
	Number uint64
	// Time is the block timestamp. Contracts must use it (never the wall
	// clock) so that every node executes deterministically.
	Time time.Time
}

// Executor runs transactions against state. It is implemented by the
// contract runtime (package contract); the indirection keeps the chain
// package free of contract semantics, as an EVM is pluggable in a real
// node. Execution receives the StateRW interface rather than a concrete
// *State: block production and validation run against a copy-on-write
// *Overlay of the committed state, while queries read the committed
// *State directly — the executor cannot tell the difference.
type Executor interface {
	// ExecuteTx runs a state-mutating transaction and returns its receipt.
	// On a revert, the executor must leave the state untouched (the node
	// additionally guards with a checkpoint).
	ExecuteTx(st StateRW, tx *Tx, bctx BlockContext) *Receipt
	// Query runs a read-only method with no transaction and no gas
	// accounting. It must not mutate state.
	Query(st StateRW, contract cryptoutil.Address, method string, args []byte, bctx BlockContext) ([]byte, error)
}

// Config configures a Node.
type Config struct {
	// Key is this node's authority key.
	Key *cryptoutil.KeyPair
	// Authorities is the proof-of-authority proposer set, in rotation
	// order. It must contain the node's own address for the node to
	// propose blocks.
	Authorities []cryptoutil.Address
	// Executor executes transactions.
	Executor Executor
	// Clock supplies block timestamps; defaults to the real clock.
	Clock simclock.Clock
	// GenesisTime is the timestamp of block 0.
	GenesisTime time.Time
	// MaxTxsPerBlock caps block size; defaults to 1024.
	MaxTxsPerBlock int
	// MempoolCapacity bounds the transaction pool; defaults to 8192. At
	// capacity, admission evicts the cheapest speculative tail when the
	// incoming transaction strictly price-beats it, and rejects with
	// ErrPoolFull/ErrUnderpriced (HTTP 429 backpressure) otherwise.
	MempoolCapacity int
	// MaxPendingPerSender caps one sender's queued transactions; defaults
	// to 1024. Beyond it, admission rejects with ErrQuotaExceeded.
	MaxPendingPerSender int
	// PriceBumpPercent is the minimum gas-price increase (percent) a
	// replace-by-fee submission must bid over the queued transaction it
	// replaces; defaults to 10. A strict increase is required even at 0.
	PriceBumpPercent int
	// VerifyWorkers bounds the signature-verification worker pool used by
	// batch submission and block validation. 0 (the default) uses
	// GOMAXPROCS; 1 forces sequential verification (the ablation
	// baseline).
	VerifyWorkers int
	// ExecWorkers bounds the parallel transaction scheduler used by block
	// sealing and validation (see parallel.go). 0 (the default) uses
	// GOMAXPROCS; 1 forces the exact legacy serial execution path. Every
	// worker count produces bit-identical blocks — this only trades
	// latency for cores.
	ExecWorkers int
	// DataDir, when non-empty, makes the node durable: sealed and applied
	// blocks are appended to a write-ahead log under this directory and
	// state snapshots bound recovery replay. Empty keeps the node fully
	// in-memory (the historical behaviour). Only OpenNode honours it;
	// NewNode always builds an in-memory node.
	DataDir string
	// SnapshotInterval is the block cadence of durable state snapshots
	// (default 32). Ignored without DataDir.
	SnapshotInterval int
	// Persist configures the write-ahead log (fsync policy). Ignored
	// without DataDir.
	Persist store.Options
	// Metrics receives the node's observability instruments (see
	// metrics.go). nil (the default) records nothing — every recording
	// site degenerates to a nil-receiver branch.
	Metrics *Metrics
}

// Node is a proof-of-authority blockchain node: it holds the ledger and
// state, accepts transactions into a mempool, seals blocks when it is its
// turn, validates and applies blocks sealed by other authorities, and
// serves read-only queries and event subscriptions.
//
// Locking discipline (see the package documentation for the full
// contract): mu guards the ledger (blocks, state handle, receipt
// waiters); mpMu guards transaction admission (mempool, nonces); sealMu
// serializes block production and application. Lock order is always
// sealMu → mpMu → mu, and no lock is held while calling out to the
// Executor's Query path.
type Node struct {
	key           *cryptoutil.KeyPair
	authorities   []cryptoutil.Address
	executor      Executor
	clock         simclock.Clock
	maxTxs        int
	verifyWorkers int
	execWorkers   int

	mu       sync.RWMutex
	state    *State                              // guarded by mu
	blocks   []*Block                            // guarded by mu
	waiters  map[cryptoutil.Hash][]chan *Receipt // guarded by mu
	receipts map[cryptoutil.Hash]*Receipt        // guarded by mu; hash → receipt index over blocks

	mpMu    sync.Mutex
	mempool *mempool                      // guarded by mpMu
	nonces  map[cryptoutil.Address]uint64 // guarded by mpMu

	feed  *eventFeed
	costs *CostLedger

	// metrics is never nil (normalized from Config.Metrics); its
	// instruments are nil-safe no-ops when no registry was supplied.
	metrics *Metrics

	// wal is the durable block log (nil for in-memory nodes). It is
	// written by commitBlock OUTSIDE mu (sealMu already serializes
	// commits, so records stay in block order); dataDir/snapEvery drive
	// the snapshot cadence and snap is the background snapshot writer.
	wal       *store.WAL
	dataDir   string
	snapEvery int
	snap      *snapshotWriter

	sealMu      sync.Mutex
	stopSealing func() // guarded by sealMu

	// Byzantine-fault bookkeeping (see byzantine.go): evMu guards the
	// collected double-seal evidence; equivGuardOff disables the
	// equivocation rejection path (fault-injection hook only).
	evMu          sync.Mutex
	evidence      []EquivocationEvidence // guarded by evMu
	equivGuardOff atomic.Bool
}

// Node construction and submission errors.
var (
	ErrNoAuthorities = errors.New("chain: empty authority set")
	ErrBadNonce      = errors.New("chain: bad nonce")
	ErrNotOurTurn    = errors.New("chain: not this node's turn to propose")
	ErrTxKnown       = errors.New("chain: transaction already in mempool")
	// ErrTxStale reports a nonce below the sender's committed nonce: the
	// transaction was already included (a rebroadcast) or is a replay
	// attempt. It matches ErrBadNonce under errors.Is.
	ErrTxStale = fmt.Errorf("%w: nonce already committed", ErrBadNonce)
)

// NewNode creates a node with a genesis block.
func NewNode(cfg Config) (*Node, error) {
	if len(cfg.Authorities) == 0 {
		return nil, ErrNoAuthorities
	}
	if cfg.Key == nil {
		return nil, errors.New("chain: missing node key")
	}
	if cfg.Executor == nil {
		return nil, errors.New("chain: missing executor")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = simclock.Real{}
	}
	maxTxs := cfg.MaxTxsPerBlock
	if maxTxs <= 0 {
		maxTxs = 1024
	}
	poolCap := cfg.MempoolCapacity
	if poolCap <= 0 {
		poolCap = 8192
	}
	quota := cfg.MaxPendingPerSender
	if quota <= 0 {
		quota = 1024
	}
	bump := cfg.PriceBumpPercent
	if bump <= 0 {
		bump = 10
	}
	n := &Node{
		key:           cfg.Key,
		authorities:   append([]cryptoutil.Address(nil), cfg.Authorities...),
		executor:      cfg.Executor,
		clock:         clk,
		maxTxs:        maxTxs,
		verifyWorkers: cfg.VerifyWorkers,
		execWorkers:   cfg.ExecWorkers,
		state:         NewState(),
		mempool:       newMempool(poolCap, quota, bump),
		nonces:        make(map[cryptoutil.Address]uint64),
		waiters:       make(map[cryptoutil.Hash][]chan *Receipt),
		receipts:      make(map[cryptoutil.Hash]*Receipt),
		feed:          newEventFeed(),
		costs:         NewCostLedger(),
		metrics:       cfg.Metrics.orNoop(),
	}
	genesis := &Block{Header: Header{
		Number:      0,
		Time:        cfg.GenesisTime,
		TxRoot:      txRoot(nil),
		ReceiptRoot: receiptRoot(nil),
		StateRoot:   n.state.Root(),
	}}
	n.blocks = []*Block{genesis}
	return n, nil
}

// Address returns the node's authority address.
func (n *Node) Address() cryptoutil.Address { return n.key.Address() }

// Height returns the latest block number.
func (n *Node) Height() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[len(n.blocks)-1].Header.Number
}

// Head returns the latest block.
func (n *Node) Head() *Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[len(n.blocks)-1]
}

// BlockByNumber returns a block by height, or nil if out of range.
func (n *Node) BlockByNumber(num uint64) *Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if num >= uint64(len(n.blocks)) {
		return nil
	}
	return n.blocks[num]
}

// NonceFor returns the next nonce for an address (committed plus pending).
func (n *Node) NonceFor(addr cryptoutil.Address) uint64 {
	n.mpMu.Lock()
	defer n.mpMu.Unlock()
	return n.nonces[addr] + n.mempool.PendingFrom(addr)
}

// CommittedNonce returns the next expected nonce considering only
// committed transactions (no mempool pending). Invariant checkers compare
// it against the per-sender sequence reconstructed from the ledger.
func (n *Node) CommittedNonce(addr cryptoutil.Address) uint64 {
	n.mpMu.Lock()
	defer n.mpMu.Unlock()
	return n.nonces[addr]
}

// SubmitTx verifies and enqueues a transaction, returning its hash.
// Resubmitting a transaction already queued returns its hash alongside
// ErrTxKnown.
func (n *Node) SubmitTx(tx *Tx) (cryptoutil.Hash, error) {
	tm := n.metrics.VerifyLatency.Start()
	err := tx.VerifySignature()
	tm.Stop()
	if err != nil {
		return cryptoutil.Hash{}, err
	}
	n.mpMu.Lock()
	defer n.mpMu.Unlock()
	return n.enqueueLocked(tx)
}

// SubmitBatch verifies the transactions concurrently (bounded by the
// node's VerifyWorkers) and enqueues them as one unit under a single
// mempool lock acquisition. The batch is atomic: on a nonce failure
// nothing is enqueued. Transactions already queued are skipped (their
// hashes are still returned), so rebroadcasts are idempotent.
//
// Within the batch, transactions from the same sender must appear in
// nonce order, exactly as if submitted back-to-back via SubmitTx.
func (n *Node) SubmitBatch(txs []*Tx) ([]cryptoutil.Hash, error) {
	tm := n.metrics.VerifyLatency.Start()
	err := VerifyTxSignatures(txs, n.verifyWorkers)
	tm.Stop()
	if err != nil {
		return nil, err
	}
	hashes, _, err := n.submitVerifiedBatch(txs)
	return hashes, err
}

// submitVerifiedBatch enqueues transactions whose signatures have already
// been checked (the network layer verifies once for the whole cluster).
// It returns the hash of every transaction in the batch plus the subset
// actually added here (excluding known/stale skips), which the network
// layer uses to withdraw the batch from peers on a cross-node failure.
func (n *Node) submitVerifiedBatch(txs []*Tx) (hashes, added []cryptoutil.Hash, err error) {
	n.mpMu.Lock()
	defer n.mpMu.Unlock()
	hashes = make([]cryptoutil.Hash, 0, len(txs))
	added = make([]cryptoutil.Hash, 0, len(txs))
	for _, tx := range txs {
		h, err := n.enqueueLocked(tx)
		if errors.Is(err, ErrTxKnown) || errors.Is(err, ErrTxStale) {
			// Idempotent rebroadcast: the transaction is already queued
			// here, or another node sealed it before this enqueue landed.
			hashes = append(hashes, h)
			continue
		}
		if err != nil {
			for _, a := range added {
				n.mempool.Remove(a)
			}
			return nil, nil, err
		}
		hashes = append(hashes, h)
		added = append(added, h)
	}
	return hashes, added, nil
}

// submitVerified enqueues one transaction whose signature has already
// been checked (the network layer's per-verdict path verifies once for
// the whole cluster).
func (n *Node) submitVerified(tx *Tx) (cryptoutil.Hash, error) {
	n.mpMu.Lock()
	defer n.mpMu.Unlock()
	return n.enqueueLocked(tx)
}

// removeFromMempool withdraws queued transactions by hash (missing
// hashes are ignored). The network layer uses it to undo a batch enqueue
// when a peer rejects the same batch.
func (n *Node) removeFromMempool(hashes []cryptoutil.Hash) {
	n.mpMu.Lock()
	defer n.mpMu.Unlock()
	for _, h := range hashes {
		n.mempool.Remove(h)
	}
}

// enqueueLocked admits one signature-checked transaction; mpMu must be
// held. The nonce must either continue the sender's committed+pending
// sequence (append) or land on an already-queued slot with a sufficient
// price bump (replace-by-fee). Appends are subject to the sender quota
// and the pool capacity; at a full pool the transaction must price-beat
// the cheapest speculative tail, which is evicted.
func (n *Node) enqueueLocked(tx *Tx) (cryptoutil.Hash, error) {
	m := n.metrics
	h := tx.Hash()
	if n.mempool.Contains(h) {
		m.Duplicates.Inc()
		return h, ErrTxKnown
	}
	committed := n.nonces[tx.From]
	if tx.Nonce < committed {
		m.Stale.Inc()
		return h, fmt.Errorf("%w: got %d, committed %d", ErrTxStale, tx.Nonce, committed)
	}
	if tx.GasLimit > MaxTxGasLimit {
		m.RejectedGas.Inc()
		return cryptoutil.Hash{}, fmt.Errorf("%w: declares %d, cap %d",
			ErrGasTooLarge, tx.GasLimit, MaxTxGasLimit)
	}
	expected := committed + n.mempool.PendingFrom(tx.From)
	if tx.Nonce < expected {
		// The slot is queued: this is a replace-by-fee attempt.
		old, err := n.mempool.Replace(h, tx)
		if err != nil {
			m.RejectedReplace.Inc()
			return cryptoutil.Hash{}, err
		}
		m.Replaced.Inc()
		if tr := m.Tracer; tr != nil {
			tr.Finish(old.hash.String(), obs.StageReplace)
			id := h.String()
			tr.Begin(id, obs.StageSubmit)
			tr.Mark(id, obs.StageAdmit)
		}
		return h, nil
	}
	if tx.Nonce > expected {
		m.RejectedNonce.Inc()
		return cryptoutil.Hash{}, fmt.Errorf("%w: got %d, want %d", ErrBadNonce, tx.Nonce, expected)
	}
	evicted, err := n.mempool.Add(h, tx)
	if err != nil {
		switch {
		case errors.Is(err, ErrQuotaExceeded):
			m.QuotaRejected.Inc()
		case errors.Is(err, ErrPoolFull):
			m.Backpressured.Inc()
		}
		return cryptoutil.Hash{}, err
	}
	if evicted != nil {
		m.Evicted.Inc()
		if tr := m.Tracer; tr != nil {
			tr.Finish(evicted.hash.String(), obs.StageEvict)
		}
	}
	m.Admitted.Inc()
	n.noteOccupancyLocked()
	if tr := m.Tracer; tr != nil {
		id := h.String()
		tr.Begin(id, obs.StageSubmit)
		tr.Mark(id, obs.StageAdmit)
	}
	return h, nil
}

// noteOccupancyLocked refreshes the mempool depth and occupancy gauges;
// mpMu must be held.
func (n *Node) noteOccupancyLocked() {
	n.metrics.MempoolDepth.Set(int64(n.mempool.Len()))
	n.metrics.PoolOccupancy.Set(int64(n.mempool.Len()) * 1000 / int64(n.mempool.Capacity()))
}

// PendingTxs returns the number of mempool transactions.
func (n *Node) PendingTxs() int {
	n.mpMu.Lock()
	defer n.mpMu.Unlock()
	return n.mempool.Len()
}

// proposerFor returns the authority whose turn it is at the given height.
func (n *Node) proposerFor(number uint64) cryptoutil.Address {
	return n.authorities[number%uint64(len(n.authorities))]
}

// isAuthority reports whether addr belongs to the authority set.
func (n *Node) isAuthority(addr cryptoutil.Address) bool {
	for _, a := range n.authorities {
		if a == addr {
			return true
		}
	}
	return false
}

// Seal produces, signs, and applies the next block from the mempool. It
// returns the sealed block (possibly empty of transactions). It fails with
// ErrNotOurTurn when another authority should propose at this height; use
// SealOutOfTurn to take over for a failed in-turn authority (clique-style,
// where any authority may propose but the in-turn one is preferred).
func (n *Node) Seal() (*Block, error) { return n.seal(false) }

// SealOutOfTurn seals even when another authority is scheduled. The block
// remains valid for the cluster because validation requires only set
// membership (see ApplyBlock).
func (n *Node) SealOutOfTurn() (*Block, error) { return n.seal(true) }

func (n *Node) seal(force bool) (*Block, error) {
	n.sealMu.Lock()
	defer n.sealMu.Unlock()

	n.mu.RLock()
	parent := n.blocks[len(n.blocks)-1]
	n.mu.RUnlock()
	number := parent.Header.Number + 1
	if !force && n.proposerFor(number) != n.key.Address() {
		return nil, fmt.Errorf("%w: height %d belongs to %s", ErrNotOurTurn, number, n.proposerFor(number))
	}
	sealTm := n.metrics.SealDuration.Start()
	defer sealTm.Stop()

	// Drain the mempool and advance nonces in the same critical section,
	// so a submission racing with sealing always sees a consistent
	// committed+pending nonce sequence. Execution then proceeds without
	// blocking admission of the next block's transactions.
	n.mpMu.Lock()
	txs := n.mempool.Take(n.maxTxs, n.nonces)
	for _, tx := range txs {
		n.nonces[tx.From] = tx.Nonce + 1
	}
	n.noteOccupancyLocked()
	n.mpMu.Unlock()

	bctx := BlockContext{Number: number, Time: n.clock.Now()}
	if !bctx.Time.After(parent.Header.Time) {
		// Guarantee strictly monotone block timestamps even under a
		// stalled simulated clock.
		bctx.Time = parent.Header.Time.Add(time.Nanosecond)
	}

	// Execute against a copy-on-write overlay of the committed state:
	// no node lock is held while contracts run, so readers are never
	// blocked by execution, and the overlay's drained write set is the
	// block's net diff with no separate Diff pass. sealMu excludes every
	// other state writer for the overlay's whole lifetime.
	n.mu.RLock()
	st := n.state
	n.mu.RUnlock()
	overlay := NewOverlay(st)
	receipts := n.executeBlock(overlay, txs, bctx)
	header := Header{
		Number:      number,
		ParentHash:  parent.Hash(),
		Time:        bctx.Time,
		Proposer:    n.key.Address(),
		TxRoot:      txRoot(txs),
		ReceiptRoot: receiptRoot(receipts),
		StateRoot:   overlay.Root(),
	}
	sig, err := n.key.Sign(header.SigningBytes())
	if err != nil {
		return nil, err
	}
	header.Signature = sig
	block := &Block{Header: header, Txs: txs, Receipts: receipts}
	if err := n.commitBlock(block, overlay.TakeDeltas()); err != nil {
		return nil, err
	}
	// Costs are recorded only after the block durably committed, so a
	// WAL failure never leaves the gas ledger charged for a dropped
	// block (ApplyBlock does the same).
	for i, tx := range txs {
		n.costs.Record(tx.From, tx.Method, receipts[i].GasUsed)
	}
	return block, nil
}

// executeBlock runs one block's transactions against a fresh overlay,
// with the parallel scheduler when ExecWorkers allows it and the exact
// legacy serial path when ExecWorkers is 1 (or the block is too small to
// be worth splitting). Both sealing and validation funnel through here,
// so proposers and validators always agree on the execution semantics —
// which are identical anyway (see parallel.go's determinism argument).
func (n *Node) executeBlock(overlay *Overlay, txs []*Tx, bctx BlockContext) []*Receipt {
	if n.execWorkers == 1 {
		n.metrics.SerialBlocks.Inc()
		return replayTxs(n.executor, overlay, txs, bctx)
	}
	return replayTxsParallelObs(n.executor, overlay, txs, bctx, n.execWorkers, n.metrics)
}

// commitBlock persists and applies a fully formed block whose execution
// effects are captured in deltas (an overlay's drained write set). The
// caller must hold sealMu (and no other node lock).
//
// Persistence happens first and entirely OUTSIDE mu: the record is
// encoded and appended to the WAL while readers continue against the
// previous committed state. A WAL failure aborts the commit with memory
// untouched — the deltas are simply dropped — so the PR 4 invariant
// (memory never ahead of disk-acknowledged state) holds with no rollback
// path at all. Only the O(touched-keys) delta fold, the ledger append,
// and waiter wakeups run under the write lock; snapshot serialization is
// handed to a background writer via a copy-on-write export.
func (n *Node) commitBlock(block *Block, deltas []Delta) error {
	if n.wal != nil {
		payload, err := encodeWALBlock(&walBlock{
			Header:   block.Header,
			Txs:      block.Txs,
			Receipts: block.Receipts,
			Diff:     deltas,
		})
		if err != nil {
			return fmt.Errorf("chain: encode block %d: %w", block.Header.Number, err)
		}
		if err := n.wal.Append(payload); err != nil {
			return fmt.Errorf("chain: persist block %d: %w", block.Header.Number, err)
		}
	}
	var events []Event
	var snapState map[string][]byte
	tr := n.metrics.Tracer
	n.mu.Lock()
	foldTm := n.metrics.FoldLatency.Start()
	n.state.applyDeltas(deltas)
	foldTm.Stop()
	n.blocks = append(n.blocks, block)
	for _, r := range block.Receipts {
		n.receipts[r.TxHash] = r
		events = append(events, r.Events...)
		if chans, ok := n.waiters[r.TxHash]; ok {
			for _, ch := range chans {
				// Waiter channels are buffered (capacity 1) at
				// registration, so this send cannot block the commit; the
				// non-blocking form guards the invariant even against a
				// misregistered channel. A slow WaitForReceipt consumer
				// therefore never stalls sealing.
				select {
				case ch <- r:
				default:
				}
				close(ch)
			}
			delete(n.waiters, r.TxHash)
			if tr != nil {
				id := r.TxHash.String()
				tr.Mark(id, obs.StageCommit)
				tr.Finish(id, obs.StageReceipt)
			}
		} else if tr != nil {
			tr.Finish(r.TxHash.String(), obs.StageCommit)
		}
	}
	if n.snap != nil && n.snapEvery > 0 && block.Header.Number%uint64(n.snapEvery) == 0 {
		// O(keys) map copy sharing the immutable value slices; the
		// background writer serializes it without holding any node lock.
		snapState = n.state.ExportShared()
	}
	n.mu.Unlock()
	if len(events) > 0 {
		// Published outside mu; sealMu keeps cross-block event order.
		n.feed.publish(events)
	}
	if snapState != nil {
		n.snap.enqueue(block.Header.Number, snapState)
	}
	n.metrics.BlocksCommitted.Inc()
	n.metrics.BlockTxs.Observe(int64(len(block.Txs)))
	return nil
}

// WaitForReceipt blocks until the transaction is included in a block or
// the context is done. If the receipt is already available it returns
// immediately.
func (n *Node) WaitForReceipt(ctx context.Context, txHash cryptoutil.Hash) (*Receipt, error) {
	tm := n.metrics.ReceiptWait.Start()
	defer tm.Stop()
	n.mu.Lock()
	if r := n.findReceiptLocked(txHash); r != nil {
		n.mu.Unlock()
		return r, nil
	}
	// Capacity 1 is load-bearing: commitBlock delivers without blocking,
	// so a waiter that is slow to read (or has already given up via ctx)
	// can never stall a commit.
	ch := make(chan *Receipt, 1)
	n.waiters[txHash] = append(n.waiters[txHash], ch)
	n.mu.Unlock()

	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		// Deregister so abandoned waits don't grow the waiters map for
		// transactions that never commit. A commit may have raced the
		// cancellation and already delivered into the buffered channel —
		// prefer the receipt in that case.
		n.mu.Lock()
		chans := n.waiters[txHash]
		for i, c := range chans {
			if c == ch {
				n.waiters[txHash] = append(chans[:i:i], chans[i+1:]...)
				break
			}
		}
		if len(n.waiters[txHash]) == 0 {
			delete(n.waiters, txHash)
		}
		n.mu.Unlock()
		select {
		case r, ok := <-ch:
			if ok && r != nil {
				return r, nil
			}
		default:
		}
		return nil, ctx.Err()
	}
}

// Receipt returns the receipt for a transaction if it has been included.
func (n *Node) Receipt(txHash cryptoutil.Hash) *Receipt {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.findReceiptLocked(txHash)
}

// findReceiptLocked resolves a transaction's receipt through the
// hash → receipt index (maintained by commitBlock, rebuilt on recovery),
// replacing the historical O(blocks × receipts) ledger scan that made
// every Receipt/WaitForReceipt call linear in chain length.
func (n *Node) findReceiptLocked(txHash cryptoutil.Hash) *Receipt {
	return n.receipts[txHash]
}

// Query serves a read-only contract call against the current state. This
// is the on-chain half of the pull-out oracle pattern. No node lock is
// held while the executor runs (State is internally synchronized), so
// queries never serialize behind sealing.
func (n *Node) Query(contract cryptoutil.Address, method string, args []byte) ([]byte, error) {
	n.mu.RLock()
	head := n.blocks[len(n.blocks)-1]
	bctx := BlockContext{Number: head.Header.Number, Time: head.Header.Time}
	st := n.state
	n.mu.RUnlock()
	return n.executor.Query(st, contract, method, args, bctx)
}

// SubscribeEvents returns a subscription delivering committed events that
// match the filter.
func (n *Node) SubscribeEvents(filter EventFilter, buffer int) *Subscription {
	return n.feed.subscribe(filter, buffer)
}

// EventsDropped reports events lost to slow subscribers.
func (n *Node) EventsDropped() uint64 { return n.feed.Dropped() }

// Events returns committed events matching the filter, scanning the
// ledger. It serves pull-in oracle reads and test assertions.
func (n *Node) Events(filter EventFilter) []Event {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []Event
	for _, b := range n.blocks {
		for _, r := range b.Receipts {
			for _, ev := range r.Events {
				if filter.Matches(&ev) {
					out = append(out, ev)
				}
			}
		}
	}
	return out
}

// Costs returns the node's gas cost ledger.
func (n *Node) Costs() *CostLedger { return n.costs }

// State returns the node's state store. Contracts deployed on the
// executor share it; external callers must treat it as read-only.
func (n *Node) State() *State {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.state
}

// StartSealing begins background block production at the given interval.
// Calling it twice stops the previous loop. Stop with StopSealing.
func (n *Node) StartSealing(interval time.Duration) {
	n.StopSealing()
	var cancelled bool
	var mu sync.Mutex
	var schedule func()
	var cancelTimer func()
	schedule = func() {
		cancelTimer = n.clock.AfterFunc(interval, func() {
			mu.Lock()
			if cancelled {
				mu.Unlock()
				return
			}
			mu.Unlock()
			// Ignore ErrNotOurTurn: another authority proposes.
			_, _ = n.Seal()
			mu.Lock()
			if !cancelled {
				schedule()
			}
			mu.Unlock()
		})
	}
	mu.Lock()
	schedule()
	mu.Unlock()
	n.sealMu.Lock()
	n.stopSealing = func() {
		mu.Lock()
		cancelled = true
		stop := cancelTimer
		mu.Unlock()
		if stop != nil {
			stop()
		}
	}
	n.sealMu.Unlock()
}

// StopSealing halts background block production.
func (n *Node) StopSealing() {
	n.sealMu.Lock()
	stop := n.stopSealing
	n.stopSealing = nil
	n.sealMu.Unlock()
	if stop != nil {
		stop()
	}
}
