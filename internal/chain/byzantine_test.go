package chain

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/store"
)

// keyFor resolves the keypair of a block's proposer within a test
// cluster.
func keyFor(t *testing.T, keys []*cryptoutil.KeyPair, proposer cryptoutil.Address) *cryptoutil.KeyPair {
	t.Helper()
	for _, k := range keys {
		if k.Address() == proposer {
			return k
		}
	}
	t.Fatalf("no key for proposer %s", proposer.Short())
	return nil
}

// sealEmpty advances the clock and seals one empty block cluster-wide.
func sealEmpty(t *testing.T, net *Network, clk *simclock.Sim) *Block {
	t.Helper()
	clk.Advance(time.Second)
	block, err := net.SealNext()
	if err != nil {
		t.Fatal(err)
	}
	return block
}

// TestEquivocationEntryPoints drives the double-seal rejection at every
// path a forged sibling block can reach a node: the gossip-delivery
// hook, a direct ApplyBlock call, and WAL-recovery replay of a log that
// contains the sibling. Each entry point must reject (or, for recovery,
// truncate) AND record the same self-certifying evidence.
func TestEquivocationEntryPoints(t *testing.T) {
	forgeOnCluster := func(t *testing.T) ([]*Node, *Network, []*cryptoutil.KeyPair, *Block, *Block, *cryptoutil.KeyPair) {
		nodes, net, keys, clk := newTestCluster(t, 3)
		sealEmpty(t, net, clk) // height 1: genesis must not be the contested height
		committed := sealEmpty(t, net, clk)
		proposerKey := keyFor(t, keys, committed.Header.Proposer)
		forged, err := ForgeEquivocalSibling(committed, proposerKey)
		if err != nil {
			t.Fatal(err)
		}
		if forged.Hash() == committed.Hash() {
			t.Fatal("forged sibling hashes identically to the committed block")
		}
		return nodes, net, keys, committed, forged, proposerKey
	}

	requireEvidence := func(t *testing.T, n *Node, committed, forged *Block) {
		t.Helper()
		evs := n.EquivocationEvidence()
		if len(evs) != 1 {
			t.Fatalf("node holds %d evidence records, want 1", len(evs))
		}
		ev := evs[0]
		if ev.Height != committed.Header.Number || ev.Proposer != committed.Header.Proposer ||
			ev.CommittedHash != committed.Hash() || ev.OfferedHash != forged.Hash() {
			t.Fatalf("evidence %+v does not match the double-seal", ev)
		}
	}

	t.Run("gossip-delivery", func(t *testing.T) {
		nodes, net, _, committed, forged, proposerKey := forgeOnCluster(t)
		for _, n := range nodes {
			err := net.DeliverTo(n.Address(), forged, proposerKey.PublicBytes())
			if !errors.Is(err, ErrEquivocation) {
				t.Fatalf("node %s verdict = %v, want ErrEquivocation", n.Address().Short(), err)
			}
			requireEvidence(t, n, committed, forged)
		}
	})

	t.Run("direct-apply", func(t *testing.T) {
		nodes, _, _, committed, forged, proposerKey := forgeOnCluster(t)
		n := nodes[1]
		if err := n.ApplyBlock(forged, proposerKey.PublicBytes()); !errors.Is(err, ErrEquivocation) {
			t.Fatalf("ApplyBlock = %v, want ErrEquivocation", err)
		}
		// A rebroadcast of the same sibling is rejected again but the
		// evidence is not duplicated.
		if err := n.ApplyBlock(forged, proposerKey.PublicBytes()); !errors.Is(err, ErrEquivocation) {
			t.Fatalf("second ApplyBlock = %v, want ErrEquivocation", err)
		}
		requireEvidence(t, n, committed, forged)
	})

	t.Run("wal-recovery-replay", func(t *testing.T) {
		dir := t.TempDir()
		key := cryptoutil.MustGenerateKey()
		clk := simclock.NewSim(chainEpoch)
		n, err := OpenNode(durableConfig(dir, key, clk, 0))
		if err != nil {
			t.Fatal(err)
		}
		sealSet(t, n, key, clk, 0, "a", "1")
		committed := sealSet(t, n, key, clk, 1, "b", "2")
		forged, err := ForgeEquivocalSibling(committed, key)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
		// Append the sibling to the log as if a compromised process had
		// journalled its own double-seal before dying.
		wal, _, err := store.OpenWAL(WALPath(dir), store.Options{Sync: store.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		buf, err := encodeWALBlock(&walBlock{Header: forged.Header, Txs: forged.Txs, Receipts: forged.Receipts})
		if err != nil {
			t.Fatal(err)
		}
		if err := wal.Append(buf); err != nil {
			t.Fatal(err)
		}
		if err := wal.Close(); err != nil {
			t.Fatal(err)
		}

		n2, err := OpenNode(durableConfig(dir, key, clk, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer n2.Close()
		if n2.Height() != committed.Header.Number {
			t.Fatalf("recovered height %d, want %d (sibling must not extend the chain)", n2.Height(), committed.Header.Number)
		}
		if n2.Head().Hash() != committed.Hash() {
			t.Fatal("recovery replaced the committed head with the forged sibling")
		}
		requireEvidence(t, n2, committed, forged)
	})

	t.Run("rebroadcast-is-not-equivocation", func(t *testing.T) {
		nodes, net, _, committed, _, proposerKey := forgeOnCluster(t)
		err := net.DeliverTo(nodes[1].Address(), committed, proposerKey.PublicBytes())
		if !errors.Is(err, ErrKnownBlock) || !errors.Is(err, ErrBadNumber) {
			t.Fatalf("rebroadcast verdict = %v, want ErrKnownBlock (matching ErrBadNumber)", err)
		}
		if len(nodes[1].EquivocationEvidence()) != 0 {
			t.Fatal("a harmless rebroadcast produced equivocation evidence")
		}
	})

	t.Run("forged-signature-cannot-frame", func(t *testing.T) {
		nodes, _, _, _, forged, proposerKey := forgeOnCluster(t)
		framed := *forged
		framed.Header.Signature = append([]byte(nil), forged.Header.Signature...)
		framed.Header.Signature[0] ^= 0xff
		if err := nodes[1].ApplyBlock(&framed, proposerKey.PublicBytes()); !errors.Is(err, ErrBadHeaderSig) {
			t.Fatalf("framed delivery = %v, want ErrBadHeaderSig", err)
		}
		if len(nodes[1].EquivocationEvidence()) != 0 {
			t.Fatal("an invalid signature produced equivocation evidence (framing attack)")
		}
	})

	t.Run("guard-off-swallows-silently", func(t *testing.T) {
		nodes, _, _, _, forged, proposerKey := forgeOnCluster(t)
		n := nodes[1]
		n.SetEquivocationGuard(false)
		if err := n.ApplyBlock(forged, proposerKey.PublicBytes()); err != nil {
			t.Fatalf("guard-off delivery = %v, want silent nil", err)
		}
		if len(n.EquivocationEvidence()) != 0 {
			t.Fatal("guard-off delivery recorded evidence")
		}
		n.SetEquivocationGuard(true)
		if err := n.ApplyBlock(forged, proposerKey.PublicBytes()); !errors.Is(err, ErrEquivocation) {
			t.Fatalf("re-enabled guard verdict = %v, want ErrEquivocation", err)
		}
	})
}

// TestForgeEquivocalSiblingRefusals pins the forgery helper's own
// guards: it cannot equivocate at genesis and cannot sign for a key it
// does not hold.
func TestForgeEquivocalSiblingRefusals(t *testing.T) {
	nodes, net, keys, clk := newTestCluster(t, 2)
	if _, err := ForgeEquivocalSibling(nodes[0].Head(), keys[0]); err == nil {
		t.Fatal("forged a sibling of genesis")
	}
	block := sealEmpty(t, net, clk)
	wrong := keys[0]
	if wrong.Address() == block.Header.Proposer {
		wrong = keys[1]
	}
	if _, err := ForgeEquivocalSibling(block, wrong); err == nil {
		t.Fatal("forged a sibling with a non-proposer key")
	}
}

// TestInvalidBlockKinds is the table over the invalid-block dimensions:
// each forged block must be rejected by every validator with the
// dimension's distinct sentinel, and the head must not move.
func TestInvalidBlockKinds(t *testing.T) {
	cases := []struct {
		kind InvalidBlockKind
		want error
	}{
		{InvalidStateRoot, ErrBadStateRoot},
		{InvalidSignature, ErrBadHeaderSig},
		{InvalidGas, ErrGasTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			nodes, net, keys, clk := newTestCluster(t, 3)
			sealEmpty(t, net, clk)
			before := nodes[0].Height()
			forged, err := ForgeInvalidBlock(nodes[0], keys[1], tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range nodes {
				if err := net.DeliverTo(n.Address(), forged, keys[1].PublicBytes()); !errors.Is(err, tc.want) {
					t.Fatalf("node %s verdict = %v, want %v", n.Address().Short(), err, tc.want)
				}
				if n.Height() != before {
					t.Fatalf("node %s head moved to %d on an invalid %s block", n.Address().Short(), n.Height(), tc.kind)
				}
			}
		})
	}
}

// TestForgeInvalidBlockNeedsAuthority: the forgery helper refuses a
// non-authority key, so a rejected delivery always isolates the
// corrupted dimension rather than the membership check.
func TestForgeInvalidBlockNeedsAuthority(t *testing.T) {
	nodes, _, _, _ := newTestCluster(t, 2)
	if _, err := ForgeInvalidBlock(nodes[0], cryptoutil.MustGenerateKey(), InvalidStateRoot); err == nil {
		t.Fatal("forged a block with a non-authority key")
	}
}

// TestGasCapAdmission: the per-tx gas cap is enforced at the mempool
// door with its own sentinel, and at-cap transactions still pass.
func TestGasCapAdmission(t *testing.T) {
	n, _, _ := newTestNode(t)
	key := cryptoutil.MustGenerateKey()
	over, err := NewTx(key, 0, testContractAddr(), "set", setArgs{Key: "k", Value: "v"}, MaxTxGasLimit+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SubmitTx(over); !errors.Is(err, ErrGasTooLarge) {
		t.Fatalf("over-cap submit = %v, want ErrGasTooLarge", err)
	}
	if n.PendingTxs() != 0 {
		t.Fatal("over-cap tx entered the mempool")
	}
	at, err := NewTx(key, 0, testContractAddr(), "set", setArgs{Key: "k", Value: "v"}, MaxTxGasLimit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SubmitTx(at); err != nil {
		t.Fatalf("at-cap submit = %v, want accepted", err)
	}
}

// TestDeliverToUnknownMember: the byzantine hook refuses addresses
// outside the cluster.
func TestDeliverToUnknownMember(t *testing.T) {
	_, net, keys, clk := newTestCluster(t, 2)
	block := sealEmpty(t, net, clk)
	stranger := cryptoutil.MustGenerateKey().Address()
	if err := net.DeliverTo(stranger, block, keys[0].PublicBytes()); err == nil {
		t.Fatal("delivered to a non-member address")
	}
}
