package chain

import (
	"fmt"
	"testing"

	"repro/internal/cryptoutil"
)

// mkSignedTxs builds n valid transactions from one sender.
func mkSignedTxs(t *testing.T, n int) []*Tx {
	t.Helper()
	key := cryptoutil.MustGenerateKey()
	to := testContractAddr()
	txs := make([]*Tx, n)
	for i := range n {
		tx, err := NewTx(key, uint64(i), to, "method", map[string]int{"i": i}, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
	}
	return txs
}

// corruptSig returns a copy of the tx with a mutated signature.
func corruptSig(tx *Tx, mutate func(sig []byte) []byte) *Tx {
	bad := *tx
	bad.Signature = mutate(append([]byte(nil), tx.Signature...))
	return &bad
}

// TestVerifyTxSignaturesMalformed exercises the verifier's error paths —
// bit-flipped, truncated, and absent signatures at varying batch
// positions — across the sequential path, the bounded pool, and a pool
// wider than the batch. The reported error must always be the bad
// transaction's own failure (lowest-indexed), never a scheduling
// artifact.
func TestVerifyTxSignaturesMalformed(t *testing.T) {
	base := mkSignedTxs(t, 12)
	flip := func(sig []byte) []byte { sig[len(sig)/2] ^= 0xff; return sig }
	trunc := func(sig []byte) []byte { return sig[:4] }
	drop := func([]byte) []byte { return nil }

	withBad := func(i int, mutate func([]byte) []byte) []*Tx {
		out := append([]*Tx(nil), base...)
		out[i] = corruptSig(base[i], mutate)
		return out
	}

	cases := []struct {
		name string
		txs  []*Tx
		bad  int // index whose error must be reported; -1 = all valid
	}{
		{"all-valid", base, -1},
		{"empty", nil, -1},
		{"single-valid", base[:1], -1},
		{"single-flipped", withBad(0, flip)[:1], 0},
		{"first-flipped", withBad(0, flip), 0},
		{"middle-truncated", withBad(6, trunc), 6},
		{"last-unsigned", withBad(11, drop), 11},
	}

	for _, tc := range cases {
		for _, workers := range []int{0, 1, 2, 16} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				err := VerifyTxSignatures(tc.txs, workers)
				if tc.bad < 0 {
					if err != nil {
						t.Fatalf("valid batch rejected: %v", err)
					}
					return
				}
				if err == nil {
					t.Fatal("malformed signature accepted")
				}
				want := tc.txs[tc.bad].VerifySignature()
				if want == nil {
					t.Fatal("test bug: expected-bad tx verifies")
				}
				if err.Error() != want.Error() {
					t.Fatalf("reported %q, want the lowest-indexed failure %q", err, want)
				}
			})
		}
	}
}

// TestSubmitRejectsCorruptSignatureBytes covers the admission paths with
// byte-level signature corruption (as opposed to tampered payloads): a
// node must refuse via both SubmitTx and SubmitBatch and queue nothing.
func TestSubmitRejectsCorruptSignatureBytes(t *testing.T) {
	node, _, _ := newTestNode(t)
	txs := mkSignedTxs(t, 2)
	bad := corruptSig(txs[0], func(sig []byte) []byte { sig[3] ^= 0xff; return sig })

	if _, err := node.SubmitTx(bad); err == nil {
		t.Fatal("SubmitTx accepted a corrupt signature")
	}
	if _, err := node.SubmitBatch([]*Tx{txs[1], bad}); err == nil {
		t.Fatal("SubmitBatch accepted a corrupt signature")
	}
	if got := node.PendingTxs(); got != 0 {
		t.Fatalf("rejected submissions left %d txs queued", got)
	}
}
