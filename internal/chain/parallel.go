package chain

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Parallel intra-block execution (Block-STM-style optimistic concurrency
// control, scaled to this node's single-block scope).
//
// Sealing and validation both execute a block's transactions against a
// copy-on-write overlay of the committed state. The serial path
// (replayTxs) runs them one at a time; on every validator, so single-core
// execution caps the whole cluster's commit throughput. The parallel
// scheduler instead:
//
//  1. executes every transaction optimistically against its own child
//     overlay of the (quiescent) block overlay, recording the keys it
//     read (including misses and Keys-listing prefixes) and wrote;
//  2. walks the transactions in block order, merging each child whose
//     read set is disjoint from the write sets merged ahead of it —
//     such a transaction observed exactly the state the serial path
//     would have shown it, so its receipt and write set are already
//     correct;
//  3. on the first conflict, abandons the remaining children and
//     re-executes that transaction and everything after it serially
//     against the block overlay (which now holds exactly the effects of
//     the merged prefix), which is the serial path by construction.
//
// The schedule is deterministic: the children's read/write sets depend
// only on the base state and the transactions (phase 1 is
// order-independent), so the first-conflict index — and therefore every
// receipt, the event order, the state root, and the block diff — is
// identical for every worker count, including 1. The differential tests
// in parallel_test.go pin this against the serial path.

// minParallelTxs is the block size below which the scheduler falls back
// to the serial path: per-child overlay setup and merge bookkeeping cost
// more than they save on tiny blocks.
const minParallelTxs = 4

// execWorkerCount resolves a Config.ExecWorkers value: <= 0 selects
// GOMAXPROCS, anything else is taken as given.
func execWorkerCount(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// replayTxsParallel executes one block's transactions against parent
// with up to workers goroutines, producing exactly the receipts, final
// overlay layer, and root that replayTxs would. workers <= 0 selects
// GOMAXPROCS; workers == 1 (and small blocks) degenerate to the serial
// path. The parent overlay must be quiescent (sealMu excludes all other
// state writers, exactly as on the serial path).
func replayTxsParallel(ex Executor, parent *Overlay, txs []*Tx, bctx BlockContext, workers int) []*Receipt {
	return replayTxsParallelObs(ex, parent, txs, bctx, workers, noopMetrics)
}

// replayTxsParallelObs is replayTxsParallel with scheduler stats
// recorded into m (never nil): workers used, blocks by path, conflict
// count, and serial-tail length. Metrics are observers only — they
// never influence the schedule, so instrumented and bare runs produce
// bit-identical blocks.
func replayTxsParallelObs(ex Executor, parent *Overlay, txs []*Tx, bctx BlockContext, workers int, m *Metrics) []*Receipt {
	workers = execWorkerCount(workers)
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 || len(txs) < minParallelTxs {
		m.SerialBlocks.Inc()
		return replayTxs(ex, parent, txs, bctx)
	}
	m.ParallelBlocks.Inc()
	m.ExecWorkers.Set(int64(workers))

	// Phase 1: optimistic execution, every transaction against its own
	// read-recording child overlay. Workers pull indexes from an atomic
	// counter; results land in per-index slots, so scheduling order
	// never influences the outcome.
	children := make([]*Overlay, len(txs))
	receipts := make([]*Receipt, len(txs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) {
					return
				}
				child := newChildOverlay(parent)
				r := ex.ExecuteTx(child, txs[i], bctx)
				if r.Status != StatusOK {
					// Mirror the serial path: a reverted transaction
					// leaves no state effects and no events. The read
					// set survives the revert — the decision to revert
					// was itself based on those reads.
					child.RevertTo(0)
					r.Events = nil
				}
				children[i], receipts[i] = child, r
			}
		}()
	}
	wg.Wait()

	// Phase 2: merge in transaction order. written accumulates the keys
	// the merged prefix wrote; the first transaction whose reads touch
	// it ends the optimistic run.
	conflictAt := len(txs)
	written := make(map[string]struct{})
	for i, child := range children {
		if child.conflictsWith(written) {
			conflictAt = i
			break
		}
		parent.mergeChild(child)
		child.addWriteKeys(written)
		children[i] = nil // drop the child's maps eagerly
	}

	if conflictAt < len(txs) {
		m.ExecConflicts.Inc()
		m.SerialTailTxs.Add(uint64(len(txs) - conflictAt))
	}
	if tr := m.Tracer; tr != nil {
		for i, tx := range txs {
			if i < conflictAt {
				tr.Mark(tx.Hash().String(), obs.StageMerge)
			} else {
				tr.Mark(tx.Hash().String(), obs.StageSerialTail)
			}
		}
	}

	// Phase 3: the conflicting tail re-executes serially against the
	// block overlay, which holds exactly the serial path's state after
	// the merged prefix.
	for i := conflictAt; i < len(txs); i++ {
		checkpoint := parent.Checkpoint()
		r := ex.ExecuteTx(parent, txs[i], bctx)
		if r.Status != StatusOK {
			parent.RevertTo(checkpoint)
			r.Events = nil
		}
		receipts[i] = r
	}

	// Receipt bookkeeping, identical to replayTxs: block-local event
	// indexes run across the whole block in transaction order.
	eventIndex := 0
	for i, r := range receipts {
		r.TxHash = txs[i].Hash()
		r.BlockNumber = bctx.Number
		for j := range r.Events {
			r.Events[j].BlockNumber = bctx.Number
			r.Events[j].TxHash = r.TxHash
			r.Events[j].Index = eventIndex
			eventIndex++
		}
	}
	return receipts
}

// ReplayBlock executes a block's transactions against a fresh overlay of
// st with the given worker count and returns the receipts plus the net
// block diff — the block-execution core as a single call, exported for
// benchmarks and the ucbench parexec ablation. workers == 1 is the exact
// serial path; <= 0 selects GOMAXPROCS.
func ReplayBlock(ex Executor, st *State, txs []*Tx, bctx BlockContext, workers int) ([]*Receipt, []Delta) {
	overlay := NewOverlay(st)
	var receipts []*Receipt
	if workers == 1 {
		receipts = replayTxs(ex, overlay, txs, bctx)
	} else {
		receipts = replayTxsParallel(ex, overlay, txs, bctx, workers)
	}
	return receipts, overlay.TakeDeltas()
}
