package chain

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// parallelWorkerCounts are the scheduler widths the differential tests
// sweep; each must be bit-identical to the serial path.
var parallelWorkerCounts = []int{2, 4, 8}

// randomParallelBlockTxs builds one large block mixing conflict-free
// writes, read-modify-write collisions on a small shared key space,
// reverts, and gas burns — big enough to clear minParallelTxs and
// adversarial enough to exercise every scheduler phase.
func randomParallelBlockTxs(t testing.TB, rng *rand.Rand, keys []*cryptoutil.KeyPair, nonces []uint64) []*Tx {
	t.Helper()
	var txs []*Tx
	for i := range 32 + rng.Intn(32) {
		s := rng.Intn(len(keys))
		var tx *Tx
		var err error
		switch rng.Intn(10) {
		case 0:
			tx, err = NewTx(keys[s], nonces[s], testContractAddr(), "fail", struct{}{}, 100_000)
		case 1:
			tx, err = NewTx(keys[s], nonces[s], testContractAddr(), "burn", burnArgs{Amount: uint64(rng.Intn(50_000))}, 100_000)
		case 2, 3, 4:
			// Shared counters: read-modify-write over 4 keys, so conflicts
			// are common but not total.
			tx, err = NewTx(keys[s], nonces[s], testContractAddr(), "incr", setArgs{
				Key: fmt.Sprintf("ctr%d", rng.Intn(4)),
			}, 200_000)
		default:
			tx, err = NewTx(keys[s], nonces[s], testContractAddr(), "set", setArgs{
				Key:   fmt.Sprintf("k%03d", rng.Intn(64)),
				Value: fmt.Sprintf("v%d-%d", i, rng.Int63()),
			}, 200_000)
		}
		if err != nil {
			t.Fatal(err)
		}
		nonces[s]++
		txs = append(txs, tx)
	}
	return txs
}

// requireSameExecution compares a parallel replay against the serial
// reference: receipts (digests cover status, gas, error, and the full
// ordered event list), state roots, and the drained block diffs must be
// bit-identical. It returns the serial diff so callers can advance the
// canonical state.
func requireSameExecution(t *testing.T, label string, serial, par []*Receipt, serialOv, parOv *Overlay) []Delta {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("%s: receipt counts differ: serial %d, parallel %d", label, len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Digest() != par[i].Digest() {
			t.Fatalf("%s: receipt %d differs:\nserial   %+v\nparallel %+v", label, i, serial[i], par[i])
		}
	}
	if sr, pr := serialOv.Root(), parOv.Root(); sr != pr {
		t.Fatalf("%s: serial root %s != parallel root %s", label, sr.Short(), pr.Short())
	}
	sd, pd := serialOv.TakeDeltas(), parOv.TakeDeltas()
	if len(sd) != len(pd) {
		t.Fatalf("%s: serial diff has %d entries, parallel %d:\n%+v\n%+v", label, len(sd), len(pd), sd, pd)
	}
	for i := range sd {
		if sd[i].K != pd[i].K || sd[i].Del != pd[i].Del || string(sd[i].V) != string(pd[i].V) {
			t.Fatalf("%s: diff entry %d differs: %+v vs %+v", label, i, sd[i], pd[i])
		}
	}
	return sd
}

// TestDifferentialParallelVsSerialRandom: across 5 seeds and every
// worker count, the parallel scheduler must produce bit-identical
// receipts, event order, state roots, and block diffs to the serial
// path on random mixed workloads, block after block as state evolves.
func TestDifferentialParallelVsSerialRandom(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, workers := range parallelWorkerCounts {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				keys := []*cryptoutil.KeyPair{
					cryptoutil.MustGenerateKey(), cryptoutil.MustGenerateKey(), cryptoutil.MustGenerateKey(),
				}
				nonces := make([]uint64, len(keys))
				ex := testExecutor{}
				st := NewState()
				for block := range 20 {
					txs := randomParallelBlockTxs(t, rng, keys, nonces)
					bctx := BlockContext{Number: uint64(block + 1), Time: chainEpoch.Add(time.Duration(block) * time.Second)}

					serialOv := NewOverlay(st)
					serial := replayTxs(ex, serialOv, txs, bctx)
					parOv := NewOverlay(st)
					par := replayTxsParallel(ex, parOv, txs, bctx, workers)

					deltas := requireSameExecution(t, fmt.Sprintf("block %d", block), serial, par, serialOv, parOv)
					st.applyDeltas(deltas)
				}
			})
		}
	}
}

// TestDifferentialParallelAllConflicts: every transaction increments the
// same counter, so every optimistic result after the first is wrong and
// the scheduler must fall back to (deterministic) serial re-execution of
// nearly the whole block — and still match the serial path exactly,
// ending at the true count.
func TestDifferentialParallelAllConflicts(t *testing.T) {
	const txCount = 64
	key := cryptoutil.MustGenerateKey()
	ex := testExecutor{}
	for _, workers := range parallelWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			txs := make([]*Tx, txCount)
			for i := range txs {
				tx, err := NewTx(key, uint64(i), testContractAddr(), "incr", setArgs{Key: "hot"}, 200_000)
				if err != nil {
					t.Fatal(err)
				}
				txs[i] = tx
			}
			st := NewState()
			bctx := BlockContext{Number: 1, Time: chainEpoch}

			serialOv := NewOverlay(st)
			serial := replayTxs(ex, serialOv, txs, bctx)
			parOv := NewOverlay(st)
			par := replayTxsParallel(ex, parOv, txs, bctx, workers)
			requireSameExecution(t, "hot-counter block", serial, par, serialOv, parOv)

			// The last receipt's event carries the final count: proof no
			// increment was lost to a stale optimistic result.
			ev := par[txCount-1].Events
			if len(ev) != 1 || string(ev[0].Data) != strconv.Itoa(txCount) {
				t.Fatalf("final counter event = %+v, want %d", ev, txCount)
			}
		})
	}
}

// rwExecutor exercises the conflict-detection corners the standard test
// executor cannot reach: deletions (whose no-op decision is a read) and
// prefix listings (whose result set any overlapping write invalidates).
//
//	"put"   {key, value}: blind write.
//	"del"   {key}       : delete; writes "deleted:<yes|no>" event.
//	"count" {key}       : lists Keys("<contract>/item/") and stores the
//	                      count under the given key.
type rwExecutor struct{}

func (rwExecutor) ExecuteTx(st StateRW, tx *Tx, bctx BlockContext) *Receipt {
	var args setArgs
	if err := json.Unmarshal(tx.Args, &args); err != nil {
		return &Receipt{Status: StatusReverted, Err: err.Error()}
	}
	r := &Receipt{Status: StatusOK, GasUsed: GasTxBase}
	prefix := tx.Contract.String() + "/item/"
	switch tx.Method {
	case "put":
		st.Set(prefix+args.Key, []byte(args.Value))
	case "del":
		k := prefix + args.Key
		_, existed := st.Get(k)
		st.Delete(k)
		verdict := "no"
		if existed {
			verdict = "yes"
		}
		r.Events = append(r.Events, Event{Contract: tx.Contract, Topic: "Del", Key: args.Key, Data: []byte("deleted:" + verdict)})
	case "count":
		n := len(st.Keys(prefix))
		st.Set(tx.Contract.String()+"/"+args.Key, []byte(strconv.Itoa(n)))
		r.Events = append(r.Events, Event{Contract: tx.Contract, Topic: "Count", Key: args.Key, Data: []byte(strconv.Itoa(n))})
	default:
		return &Receipt{Status: StatusReverted, Err: "unknown method"}
	}
	return r
}

func (rwExecutor) Query(StateRW, cryptoutil.Address, string, []byte, BlockContext) ([]byte, error) {
	return nil, fmt.Errorf("no queries")
}

// TestDifferentialParallelDeleteAndPrefixConflicts: crafted blocks where
// correctness hinges on delete-read and prefix-read conflicts being
// detected — a put followed by a del of the same key, a put followed by
// a count over its prefix, and a set-then-delete of a base-absent key
// whose net diff must still carry the deletion marker.
func TestDifferentialParallelDeleteAndPrefixConflicts(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	ex := rwExecutor{}
	mk := func(nonce uint64, method, k, v string) *Tx {
		tx, err := NewTx(key, nonce, testContractAddr(), method, setArgs{Key: k, Value: v}, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}

	st := NewState()
	st.Set(testContractAddr().String()+"/item/seeded", []byte("x"))
	st.DiscardJournal()

	// Block 1: the del of "a" must observe put("a") before it (conflict via
	// delete-read); the count must observe every put/del before it
	// (conflict via prefix-read); "ghost" is created then deleted, so the
	// block diff must carry its deletion marker even though the base never
	// held it.
	txs := []*Tx{
		mk(0, "put", "a", "1"),
		mk(1, "del", "a", ""),
		mk(2, "put", "b", "2"),
		mk(3, "count", "n1", ""),
		mk(4, "put", "ghost", "tmp"),
		mk(5, "del", "ghost", ""),
		mk(6, "del", "missing", ""),
		mk(7, "count", "n2", ""),
	}
	for _, workers := range parallelWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			bctx := BlockContext{Number: 1, Time: chainEpoch}
			serialOv := NewOverlay(st)
			serial := replayTxs(ex, serialOv, txs, bctx)
			parOv := NewOverlay(st)
			par := replayTxsParallel(ex, parOv, txs, bctx, workers)
			requireSameExecution(t, "delete/prefix block", serial, par, serialOv, parOv)

			// Spot-check semantics, not just equality: the del of "a" saw the
			// earlier put, the first count saw {seeded, b}, the second count
			// saw the same after ghost came and went.
			if got := string(par[1].Events[0].Data); got != "deleted:yes" {
				t.Fatalf("del(a) observed %q, want deleted:yes", got)
			}
			if got := string(par[3].Events[0].Data); got != "2" {
				t.Fatalf("count n1 = %s, want 2 (seeded+b)", got)
			}
			if got := string(par[7].Events[0].Data); got != "2" {
				t.Fatalf("count n2 = %s, want 2", got)
			}
		})
	}
}

// TestDifferentialParallelCluster: a two-authority cluster sealing with
// the parallel scheduler must produce exactly the chain a serial cluster
// produces from the same transactions — and every ApplyBlock validation
// (itself running the parallel scheduler) must accept the roots. This is
// the node-level wiring proof for seal + ApplyBlock.
func TestDifferentialParallelCluster(t *testing.T) {
	keyA, keyB := cryptoutil.MustGenerateKey(), cryptoutil.MustGenerateKey()
	auths := []cryptoutil.Address{keyA.Address(), keyB.Address()}

	buildNet := func(execWorkers int) (*Network, *simclock.Sim) {
		clk := simclock.NewSim(chainEpoch)
		var nodes []*Node
		for _, k := range []*cryptoutil.KeyPair{keyA, keyB} {
			n, err := NewNode(Config{
				Key: k, Authorities: auths, Executor: testExecutor{},
				Clock: clk, GenesisTime: chainEpoch, ExecWorkers: execWorkers,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, n)
		}
		net, err := NewNetwork(nodes...)
		if err != nil {
			t.Fatal(err)
		}
		return net, clk
	}
	serialNet, serialClk := buildNet(1)
	parNet, parClk := buildNet(4)

	rng := rand.New(rand.NewSource(42))
	senders := []*cryptoutil.KeyPair{keyA, keyB, cryptoutil.MustGenerateKey()}
	nonces := make([]uint64, len(senders))
	for range 8 {
		txs := randomParallelBlockTxs(t, rng, senders, nonces)
		for _, net := range []*Network{serialNet, parNet} {
			if _, err := net.SubmitEverywhereBatch(txs); err != nil {
				t.Fatal(err)
			}
		}
		serialClk.Advance(time.Second)
		parClk.Advance(time.Second)
		if _, err := serialNet.SealNext(); err != nil {
			t.Fatal(err)
		}
		if _, err := parNet.SealNext(); err != nil {
			t.Fatal(err)
		}
	}
	// Compare the chains' execution content, not their hashes: ECDSA
	// signing is randomized, so two independently-sealed-but-identical
	// chains never share signature bytes (and ParentHash covers the
	// parent's signature, so linkage hashes diverge transitively).
	// Everything execution determines — tx root, receipt root, state
	// root, timestamp, proposer, and every receipt — must be identical
	// block for block.
	sNode, pNode := serialNet.Nodes()[0], parNet.Nodes()[0]
	if sNode.Height() != pNode.Height() {
		t.Fatalf("heights differ: serial %d, parallel %d", sNode.Height(), pNode.Height())
	}
	for num := uint64(1); num <= sNode.Height(); num++ {
		sb, pb := sNode.BlockByNumber(num), pNode.BlockByNumber(num)
		if sb.Header.TxRoot != pb.Header.TxRoot ||
			sb.Header.ReceiptRoot != pb.Header.ReceiptRoot ||
			sb.Header.StateRoot != pb.Header.StateRoot ||
			!sb.Header.Time.Equal(pb.Header.Time) ||
			sb.Header.Proposer != pb.Header.Proposer {
			t.Fatalf("block %d differs:\nserial   %+v\nparallel %+v", num, sb.Header, pb.Header)
		}
		for i := range sb.Receipts {
			if sb.Receipts[i].Digest() != pb.Receipts[i].Digest() {
				t.Fatalf("block %d receipt %d differs", num, i)
			}
		}
	}
	if sNode.State().Root() != pNode.State().Root() {
		t.Fatal("final state roots differ")
	}
	// Within the parallel cluster, the validator tracked the proposer.
	if a, b := parNet.Nodes()[0].Head().Hash(), parNet.Nodes()[1].Head().Hash(); a != b {
		t.Fatalf("parallel cluster diverged: %s vs %s", a.Short(), b.Short())
	}
}

// TestCancelledReceiptWaitsDoNotLeak: the regression test for the
// waiter-map leak — after N waits abandoned via context cancellation for
// a transaction that never commits, the waiters map must be empty again.
func TestCancelledReceiptWaitsDoNotLeak(t *testing.T) {
	n, key, _ := newTestNode(t)
	never := mustTx(t, key, 99, testContractAddr(), "never", "sealed") // nonce 99: never committed

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for range 128 {
		if _, err := n.WaitForReceipt(ctx, never.Hash()); err == nil {
			t.Fatal("cancelled wait returned a receipt")
		}
	}
	n.mu.Lock()
	leaked := len(n.waiters)
	n.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("waiters map holds %d entries after cancelled waits, want 0", leaked)
	}

	// A commit racing the cancellation must still surface the receipt to
	// the cancelled waiter if it was delivered before deregistration —
	// and either way, live waiters keep working.
	tx := mustTx(t, key, 0, testContractAddr(), "a", "1")
	if _, err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := n.WaitForReceipt(context.Background(), tx.Hash())
		if err != nil || r == nil {
			t.Errorf("live wait: r=%v err=%v", r, err)
		}
	}()
	if _, err := n.Seal(); err != nil {
		t.Fatal(err)
	}
	<-done
	n.mu.Lock()
	leaked = len(n.waiters)
	n.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("waiters map holds %d entries after delivery, want 0", leaked)
	}
}

// TestReceiptIndexRebuiltOnRecovery: the hash → receipt index is pure
// bookkeeping over the blocks, and recovery must rebuild it identically —
// every committed transaction resolves to the same receipt through the
// reopened node, and the index holds exactly the committed receipt set.
func TestReceiptIndexRebuiltOnRecovery(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	cfg := durableConfig(dir, key, clk, 3)
	n, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []cryptoutil.Hash
	for i := range 9 {
		tx := mustTx(t, key, uint64(i), testContractAddr(), fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		if _, err := n.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, tx.Hash())
		clk.Advance(time.Second)
		if _, err := n.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Crash(); err != nil {
		t.Fatal(err)
	}
	n2, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	for _, h := range hashes {
		before, after := n.Receipt(h), n2.Receipt(h)
		if before == nil || after == nil {
			t.Fatalf("receipt %s: before=%v after=%v", h.Short(), before, after)
		}
		if before.Digest() != after.Digest() {
			t.Fatalf("receipt %s differs across recovery", h.Short())
		}
	}
	n2.mu.RLock()
	indexed := len(n2.receipts)
	n2.mu.RUnlock()
	if indexed != len(hashes) {
		t.Fatalf("recovered index holds %d receipts, want %d", indexed, len(hashes))
	}
}
