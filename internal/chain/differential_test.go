package chain

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/store"
)

// mustMarshalJSON marshals v with the legacy envelopes' JSON tags.
func mustMarshalJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// randomBlockTxs builds one block's worth of random transactions from a
// set of senders: mostly "set" (random key/value over a bounded key
// space, so overwrites and fresh keys both occur), with occasional
// reverts ("fail") and gas burns sprinkled in.
func randomBlockTxs(t testing.TB, rng *rand.Rand, keys []*cryptoutil.KeyPair, nonces []uint64) []*Tx {
	t.Helper()
	var txs []*Tx
	for i := range 1 + rng.Intn(8) {
		s := rng.Intn(len(keys))
		var tx *Tx
		var err error
		switch rng.Intn(10) {
		case 0:
			tx, err = NewTx(keys[s], nonces[s], testContractAddr(), "fail", struct{}{}, 100_000)
		case 1:
			tx, err = NewTx(keys[s], nonces[s], testContractAddr(), "burn", burnArgs{Amount: uint64(rng.Intn(50_000))}, 100_000)
		default:
			tx, err = NewTx(keys[s], nonces[s], testContractAddr(), "set", setArgs{
				Key:   fmt.Sprintf("k%03d", rng.Intn(64)),
				Value: fmt.Sprintf("v%d-%d", i, rng.Int63()),
			}, 200_000)
		}
		if err != nil {
			t.Fatal(err)
		}
		nonces[s]++
		txs = append(txs, tx)
	}
	return txs
}

// TestDifferentialOverlayVsCloneReplay: the new overlay replay must be
// observationally identical to the historical Clone()-based replay on
// random workloads — same receipts, same state roots, same net diffs —
// block after block as the ledger grows.
func TestDifferentialOverlayVsCloneReplay(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			keys := []*cryptoutil.KeyPair{
				cryptoutil.MustGenerateKey(), cryptoutil.MustGenerateKey(), cryptoutil.MustGenerateKey(),
			}
			nonces := make([]uint64, len(keys))
			ex := testExecutor{}
			st := NewState() // canonical committed state, advanced via overlay deltas
			for block := range 40 {
				txs := randomBlockTxs(t, rng, keys, nonces)
				bctx := BlockContext{Number: uint64(block + 1), Time: chainEpoch.Add(time.Duration(block) * time.Second)}

				// New path: copy-on-write overlay.
				overlay := NewOverlay(st)
				ovReceipts := replayTxs(ex, overlay, txs, bctx)
				ovRoot := overlay.Root()

				// Old path: deep clone, direct execution, journal diff.
				clone := st.Clone()
				clReceipts := replayTxs(ex, clone, txs, bctx)
				clDiff := clone.TakeDiff()

				if len(ovReceipts) != len(clReceipts) {
					t.Fatalf("block %d: receipt counts differ", block)
				}
				for i := range clReceipts {
					if ovReceipts[i].Digest() != clReceipts[i].Digest() {
						t.Fatalf("block %d: receipt %d differs:\noverlay %+v\nclone   %+v",
							block, i, ovReceipts[i], clReceipts[i])
					}
				}
				if ovRoot != clone.Root() {
					t.Fatalf("block %d: overlay root %s != clone root %s", block, ovRoot.Short(), clone.Root().Short())
				}

				deltas := overlay.TakeDeltas()
				if len(deltas) != len(clDiff) {
					t.Fatalf("block %d: overlay diff has %d entries, clone diff %d:\n%+v\n%+v",
						block, len(deltas), len(clDiff), deltas, clDiff)
				}
				for i := range clDiff {
					if deltas[i].K != clDiff[i].K || deltas[i].Del != clDiff[i].Del ||
						string(deltas[i].V) != string(clDiff[i].V) {
						t.Fatalf("block %d: diff entry %d differs: %+v vs %+v", block, i, deltas[i], clDiff[i])
					}
				}

				// Advance the canonical state the way commitBlock does and
				// check it against both replays.
				st.applyDeltas(deltas)
				if st.Root() != ovRoot {
					t.Fatalf("block %d: folded root diverged", block)
				}
			}
		})
	}
}

// TestDifferentialCrashRestartEquivalence: the same random workloads,
// driven through a durable node (overlay commits, binary WAL, background
// snapshots), must recover bit-for-bit after a crash — the
// recovery-equivalence property the scenario engine checks system-wide,
// pinned here at the chain layer.
func TestDifferentialCrashRestartEquivalence(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(seed))
			key := cryptoutil.MustGenerateKey()
			clk := simclock.NewSim(chainEpoch)
			cfg := durableConfig(dir, key, clk, 4) // snapshot interval 4: exercise snapshot+tail
			n, err := OpenNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			senders := []*cryptoutil.KeyPair{key, cryptoutil.MustGenerateKey()}
			nonces := make([]uint64, len(senders))
			for range 12 {
				for _, tx := range randomBlockTxs(t, rng, senders, nonces) {
					if _, err := n.SubmitTx(tx); err != nil {
						t.Fatal(err)
					}
				}
				clk.Advance(time.Second)
				if _, err := n.Seal(); err != nil {
					t.Fatal(err)
				}
			}
			if err := n.Crash(); err != nil {
				t.Fatal(err)
			}
			n2, err := OpenNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer n2.Close()
			requireEquivalent(t, n2, n, key.Address(), senders[1].Address())
			// The recovered state must also satisfy the live-root half of
			// the scenario engine's recovery-equivalence invariant.
			if n2.State().Root() != n2.Head().Header.StateRoot {
				t.Fatal("recovered live root != committed head root")
			}
		})
	}
}

// TestConcurrentReadersDuringCommit hammers the read API (state gets,
// queries, head/receipt scans, key listings) from many goroutines while
// blocks commit with snapshots enabled — the -race proof that off-lock
// persistence and the COW snapshot export introduce no data races and
// that readers are never starved by a commit.
func TestConcurrentReadersDuringCommit(t *testing.T) {
	dir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	cfg := durableConfig(dir, key, clk, 2) // snapshot every 2 blocks: constant export traffic
	n, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (i + r) % 4 {
				case 0:
					n.State().Get(fmt.Sprintf("%s/k%d", testContractAddr(), i%32))
				case 1:
					if _, err := n.Query(testContractAddr(), "get", []byte(`{"key":"k0"}`)); err != nil && n.Height() > 0 {
						// k0 is written by block 1; after that the query must succeed.
						select {
						case <-stop:
							return
						default:
							t.Errorf("query failed at height %d: %v", n.Height(), err)
							return
						}
					}
				case 2:
					_ = n.Head()
					_ = n.State().Keys(testContractAddr().String() + "/")
				case 3:
					_ = n.State().Root()
				}
			}
		}()
	}

	for i := range 24 {
		tx := mustTx(t, key, uint64(i), testContractAddr(), fmt.Sprintf("k%d", i%32), fmt.Sprintf("v%d", i))
		if _, err := n.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
		if _, err := n.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if n.Height() != 24 {
		t.Fatalf("height = %d", n.Height())
	}
}

// TestSlowReceiptWaiterCannotStallSealing: waiters that registered a
// receipt channel but will never read it (context already given up)
// must not block the commit — the capacity-1 buffered channel plus the
// non-blocking send guarantee sealing completes regardless of consumer
// behaviour.
func TestSlowReceiptWaiterCannotStallSealing(t *testing.T) {
	n, key, clk := newTestNode(t)
	tx := mustTx(t, key, 0, testContractAddr(), "a", "1")
	if _, err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}

	// Register many waiters whose consumers have already abandoned the
	// wait: their channels stay parked in n.waiters unread.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for range 64 {
		if _, err := n.WaitForReceipt(cancelled, tx.Hash()); err == nil {
			t.Fatal("cancelled wait returned a receipt")
		}
	}
	// And one healthy waiter that reads only AFTER sealing finished.
	got := make(chan *Receipt, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		r, err := n.WaitForReceipt(context.Background(), tx.Hash())
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		got <- r
	}()
	<-ready

	clk.Advance(time.Second)
	sealed := make(chan error, 1)
	go func() {
		_, err := n.Seal()
		sealed <- err
	}()
	select {
	case err := <-sealed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sealing stalled behind unread receipt waiters")
	}
	select {
	case r := <-got:
		if r == nil || r.TxHash != tx.Hash() {
			t.Fatalf("receipt = %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("healthy waiter never woke")
	}
	if n.PendingTxs() != 0 {
		t.Fatal("mempool not drained")
	}
}

// TestLegacyJSONStoreRecovers: a data dir written entirely in the PR 4
// JSON record format (reproduced here by transcoding a binary-era log
// record by record with the original json.Marshal envelope, snapshot
// included) must recover identically, keep sealing — appending binary
// records to the JSON-prefix log — and survive a further reopen of the
// resulting mixed-format store.
func TestLegacyJSONStoreRecovers(t *testing.T) {
	// 1. Produce a reference chain with the current (binary) format.
	binDir := t.TempDir()
	key := cryptoutil.MustGenerateKey()
	clk := simclock.NewSim(chainEpoch)
	n, err := OpenNode(durableConfig(binDir, key, clk, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range 7 {
		sealSet(t, n, key, clk, uint64(i), fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Transcode the store to the legacy JSON formats.
	legacyDir := t.TempDir()
	transcodeStoreToJSON(t, binDir, legacyDir)

	// 3. The JSON-era dir must recover to the same chain.
	n2, err := OpenNode(durableConfig(legacyDir, key, clk, 3))
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, n2, n, key.Address())

	// 4. New commits append binary records after the JSON prefix.
	sealSet(t, n2, key, clk, 7, "post", "legacy")
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
	n3, err := OpenNode(durableConfig(legacyDir, key, clk, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	requireEquivalent(t, n3, n2, key.Address())
	if n3.Height() != 8 {
		t.Fatalf("mixed-format height = %d, want 8", n3.Height())
	}
}

// transcodeStoreToJSON rewrites a chain data dir's WAL and newest
// snapshot from the binary format into the PR 4 JSON format, using the
// same envelopes (walRecord / chainSnapshot with their original JSON
// tags) the old writer marshalled.
func transcodeStoreToJSON(t *testing.T, srcDir, dstDir string) {
	t.Helper()
	wal, records, err := store.OpenWAL(WALPath(srcDir), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	out, _, err := store.OpenWAL(WALPath(dstDir), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		decoded, err := decodeWALRecord(rec.Payload)
		if err != nil {
			t.Fatal(err)
		}
		legacy := mustMarshalJSON(t, decoded)
		if err := out.Append(legacy); err != nil {
			t.Fatal(err)
		}
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	if seq, payload, ok := store.LatestSnapshot(srcDir, ^uint64(0)); ok {
		snap, err := decodeChainSnapshot(payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.WriteSnapshot(dstDir, seq, mustMarshalJSON(t, snap)); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Fatal("no snapshot to transcode (want snapshot+tail coverage)")
	}
}
