package chain

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// TestConcurrentBatchSubmitWhileSealing hammers a 3-authority cluster
// with batch submissions from many senders while consensus rounds run
// concurrently and readers poll every query surface. Run under -race it
// exercises the mpMu/mu lock split: admission, sealing, validation, and
// reads all overlap. Afterwards every submitted transaction must be
// committed exactly once and all nodes must agree on the chain.
func TestConcurrentBatchSubmitWhileSealing(t *testing.T) {
	nodes, net, _, clk := newTestCluster(t, 3)
	contract := testContractAddr()

	const senders = 8
	const batchesPerSender = 6
	const batchSize = 5
	const totalTxs = senders * batchesPerSender * batchSize

	var sealWG, readWG sync.WaitGroup
	stopSeal := make(chan struct{})
	stopRead := make(chan struct{})

	// Consensus pump: seal whenever transactions are pending.
	sealWG.Add(1)
	go func() {
		defer sealWG.Done()
		for {
			select {
			case <-stopSeal:
				return
			default:
			}
			if nodes[0].PendingTxs() == 0 {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			clk.Advance(time.Millisecond)
			if _, err := net.SealNext(); err != nil {
				t.Errorf("SealNext: %v", err)
				return
			}
		}
	}()

	// Readers: every read path must stay consistent while blocks commit.
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			for _, n := range nodes {
				_ = n.Height()
				_ = n.Head()
				_ = n.PendingTxs()
				_ = n.Events(EventFilter{Topic: "Set"})
				// The key may not be committed yet; the point is that the
				// read path runs in parallel with everything else.
				_, _ = n.Query(contract, "get", []byte(`{"key":"k0"}`))
			}
		}
	}()

	// Senders: each goroutine owns one key and submits its batches in
	// nonce order through the network broadcast path.
	hashes := make([][]cryptoutil.Hash, senders)
	var submitWG sync.WaitGroup
	for s := range senders {
		submitWG.Add(1)
		go func() {
			defer submitWG.Done()
			key := cryptoutil.MustGenerateKey()
			nonce := uint64(0)
			for b := range batchesPerSender {
				batch := make([]*Tx, batchSize)
				for i := range batch {
					batch[i] = mustTx(t, key, nonce, contract, "k0", "v")
					nonce++
				}
				hs, err := net.SubmitEverywhereBatch(batch)
				if err != nil {
					t.Errorf("sender %d batch %d: %v", s, b, err)
					return
				}
				hashes[s] = append(hashes[s], hs...)
			}
		}()
	}
	submitWG.Wait()
	close(stopSeal)
	sealWG.Wait()
	close(stopRead)
	readWG.Wait()

	// Drain whatever is still pending.
	for nodes[0].PendingTxs() > 0 {
		clk.Advance(time.Millisecond)
		if _, err := net.SealNext(); err != nil {
			t.Fatal(err)
		}
	}

	// Every transaction committed exactly once, on every node.
	for _, n := range nodes {
		if n.PendingTxs() != 0 {
			t.Fatalf("node %s still has %d pending txs", n.Address().Short(), n.PendingTxs())
		}
		committed := 0
		seen := make(map[cryptoutil.Hash]bool)
		for num := uint64(1); num <= n.Height(); num++ {
			for _, tx := range n.BlockByNumber(num).Txs {
				h := tx.Hash()
				if seen[h] {
					t.Fatalf("tx %s committed twice on node %s", h, n.Address().Short())
				}
				seen[h] = true
				committed++
			}
		}
		if committed != totalTxs {
			t.Fatalf("node %s committed %d txs, want %d", n.Address().Short(), committed, totalTxs)
		}
		for s := range senders {
			for _, h := range hashes[s] {
				if !seen[h] {
					t.Fatalf("tx %s from sender %d missing on node %s", h, s, n.Address().Short())
				}
			}
		}
	}

	// All nodes converged on the same head.
	head := nodes[0].Head().Hash()
	for _, n := range nodes[1:] {
		if n.Head().Hash() != head {
			t.Fatalf("node %s diverged: head %s vs %s", n.Address().Short(), n.Head().Hash(), head)
		}
	}
}

// TestConcurrentSubmitTxSingleNode races many per-sender SubmitTx streams
// against a node sealing continuously, checking the split between the
// admission lock and the ledger lock on a single node.
func TestConcurrentSubmitTxSingleNode(t *testing.T) {
	node, _, clk := newTestNode(t)
	contract := testContractAddr()

	const senders = 6
	const txsPerSender = 40

	stop := make(chan struct{})
	var sealWG sync.WaitGroup
	sealWG.Add(1)
	go func() {
		defer sealWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if node.PendingTxs() == 0 {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			clk.Advance(time.Millisecond)
			if _, err := node.Seal(); err != nil {
				t.Errorf("Seal: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for s := range senders {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := cryptoutil.MustGenerateKey()
			for i := range txsPerSender {
				if _, err := node.SubmitTx(mustTx(t, key, uint64(i), contract, "k", "v")); err != nil {
					t.Errorf("sender %d tx %d: %v", s, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	sealWG.Wait()

	for node.PendingTxs() > 0 {
		clk.Advance(time.Millisecond)
		if _, err := node.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	committed := 0
	for num := uint64(1); num <= node.Height(); num++ {
		committed += len(node.BlockByNumber(num).Txs)
	}
	if committed != senders*txsPerSender {
		t.Fatalf("committed %d txs, want %d", committed, senders*txsPerSender)
	}
}
