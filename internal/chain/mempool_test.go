package chain

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

func TestMempoolIndexedOperations(t *testing.T) {
	mp := newMempool()
	key := cryptoutil.MustGenerateKey()
	contract := testContractAddr()

	txs := make([]*Tx, 5)
	for i := range txs {
		txs[i] = mustTx(t, key, uint64(i), contract, "k", "v")
		if !mp.Add(txs[i].Hash(), txs[i]) {
			t.Fatalf("Add(%d) reported duplicate", i)
		}
	}
	if mp.Len() != 5 {
		t.Fatalf("Len = %d, want 5", mp.Len())
	}
	if mp.PendingFrom(key.Address()) != 5 {
		t.Fatalf("PendingFrom = %d, want 5", mp.PendingFrom(key.Address()))
	}
	if mp.Add(txs[2].Hash(), txs[2]) {
		t.Fatal("duplicate Add accepted")
	}
	if !mp.Contains(txs[2].Hash()) {
		t.Fatal("Contains missed a queued tx")
	}

	// Remove from the middle; FIFO order of the rest must survive.
	if !mp.Remove(txs[2].Hash()) {
		t.Fatal("Remove missed a queued tx")
	}
	if mp.Remove(txs[2].Hash()) {
		t.Fatal("second Remove reported present")
	}
	if mp.PendingFrom(key.Address()) != 4 {
		t.Fatalf("PendingFrom after remove = %d, want 4", mp.PendingFrom(key.Address()))
	}
	got := mp.Take(10)
	want := []uint64{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Take returned %d txs, want %d", len(got), len(want))
	}
	for i, tx := range got {
		if tx.Nonce != want[i] {
			t.Fatalf("Take[%d].Nonce = %d, want %d (FIFO order broken)", i, tx.Nonce, want[i])
		}
	}
	if mp.Len() != 0 || mp.PendingFrom(key.Address()) != 0 {
		t.Fatalf("pool not empty after Take: len=%d pending=%d", mp.Len(), mp.PendingFrom(key.Address()))
	}
}

func TestMempoolTakeRespectsLimit(t *testing.T) {
	mp := newMempool()
	key := cryptoutil.MustGenerateKey()
	contract := testContractAddr()
	for i := range 8 {
		tx := mustTx(t, key, uint64(i), contract, "k", "v")
		mp.Add(tx.Hash(), tx)
	}
	first := mp.Take(3)
	if len(first) != 3 || first[0].Nonce != 0 || first[2].Nonce != 2 {
		t.Fatalf("Take(3) = %d txs starting at nonce %d", len(first), first[0].Nonce)
	}
	if mp.Len() != 5 {
		t.Fatalf("Len after partial Take = %d, want 5", mp.Len())
	}
}

// TestSubmitBatchDedup is the regression test for mempool dedup under
// batch submission: resubmitting queued transactions (alone or mixed into
// a larger batch) must not create duplicates, and the duplicate's hash is
// still reported.
func TestSubmitBatchDedup(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()

	batch := make([]*Tx, 4)
	for i := range batch {
		batch[i] = mustTx(t, key, uint64(i), contract, "k", "v")
	}
	hashes, err := node.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 4 {
		t.Fatalf("SubmitBatch returned %d hashes, want 4", len(hashes))
	}
	if node.PendingTxs() != 4 {
		t.Fatalf("PendingTxs = %d, want 4", node.PendingTxs())
	}

	// Resubmit the same batch plus one genuinely new transaction.
	extended := append(append([]*Tx(nil), batch...), mustTx(t, key, 4, contract, "k", "v"))
	hashes, err = node.SubmitBatch(extended)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 5 {
		t.Fatalf("resubmit returned %d hashes, want 5", len(hashes))
	}
	if node.PendingTxs() != 5 {
		t.Fatalf("PendingTxs after resubmit = %d, want 5 (dedup broken)", node.PendingTxs())
	}

	// Single-tx resubmission reports ErrTxKnown with the hash.
	h, err := node.SubmitTx(batch[0])
	if !errors.Is(err, ErrTxKnown) {
		t.Fatalf("duplicate SubmitTx err = %v, want ErrTxKnown", err)
	}
	if h != batch[0].Hash() {
		t.Fatal("duplicate SubmitTx did not return the queued hash")
	}

	// The sealed block must contain each transaction exactly once.
	clk.Advance(time.Second)
	block, err := node.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 5 {
		t.Fatalf("sealed %d txs, want 5", len(block.Txs))
	}
	seen := make(map[string]bool)
	for _, tx := range block.Txs {
		h := tx.Hash().String()
		if seen[h] {
			t.Fatalf("tx %s sealed twice", h)
		}
		seen[h] = true
	}
}

// TestSubmitBatchAtomicOnBadNonce verifies that a batch with a nonce gap
// is rejected without enqueuing any part of it.
func TestSubmitBatchAtomicOnBadNonce(t *testing.T) {
	node, key, _ := newTestNode(t)
	contract := testContractAddr()

	batch := []*Tx{
		mustTx(t, key, 0, contract, "a", "1"),
		mustTx(t, key, 3, contract, "b", "2"), // gap: want 1
	}
	if _, err := node.SubmitBatch(batch); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("err = %v, want ErrBadNonce", err)
	}
	if node.PendingTxs() != 0 {
		t.Fatalf("PendingTxs = %d, want 0 (batch must be atomic)", node.PendingTxs())
	}
}

// TestSubmitBatchRejectsBadSignature verifies the concurrent verification
// pool surfaces a deterministic signature failure for the whole batch.
func TestSubmitBatchRejectsBadSignature(t *testing.T) {
	node, key, _ := newTestNode(t)
	contract := testContractAddr()

	batch := make([]*Tx, 16)
	for i := range batch {
		batch[i] = mustTx(t, key, uint64(i), contract, "k", "v")
	}
	batch[11].Args = []byte(`{"key":"tampered"}`)
	if _, err := node.SubmitBatch(batch); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
	if node.PendingTxs() != 0 {
		t.Fatalf("PendingTxs = %d, want 0", node.PendingTxs())
	}
}

// TestVerifyTxSignaturesDeterministicError checks that the parallel
// verifier reports the lowest-indexed failure regardless of scheduling.
func TestVerifyTxSignaturesDeterministicError(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	contract := testContractAddr()
	txs := make([]*Tx, 64)
	for i := range txs {
		txs[i] = mustTx(t, key, uint64(i), contract, "k", "v")
	}
	txs[5].GasLimit = 0 // fails with ErrGasLimitZero
	txs[40].Method = "" // fails with ErrNoMethod
	for range 8 {
		if err := VerifyTxSignatures(txs, 0); !errors.Is(err, ErrGasLimitZero) {
			t.Fatalf("err = %v, want the lowest-indexed failure (ErrGasLimitZero)", err)
		}
	}
	if err := VerifyTxSignatures(txs, 1); !errors.Is(err, ErrGasLimitZero) {
		t.Fatalf("sequential err = %v, want ErrGasLimitZero", err)
	}
}
