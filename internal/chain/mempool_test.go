package chain

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// testPool builds a bare mempool with roomy defaults for direct
// structure tests.
func testPool() *mempool { return newMempool(64, 32, 10) }

func TestMempoolIndexedOperations(t *testing.T) {
	mp := testPool()
	key := cryptoutil.MustGenerateKey()
	contract := testContractAddr()

	txs := make([]*Tx, 5)
	for i := range txs {
		txs[i] = mustTx(t, key, uint64(i), contract, "k", "v")
		if _, err := mp.Add(txs[i].Hash(), txs[i]); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if mp.Len() != 5 {
		t.Fatalf("Len = %d, want 5", mp.Len())
	}
	if mp.PendingFrom(key.Address()) != 5 {
		t.Fatalf("PendingFrom = %d, want 5", mp.PendingFrom(key.Address()))
	}
	if !mp.Contains(txs[2].Hash()) {
		t.Fatal("Contains missed a queued tx")
	}

	// Removing a mid-queue entry truncates it and its successors (the
	// rollback path withdraws contiguous just-appended runs), so the
	// sender's nonce sequence never gaps.
	if !mp.Remove(txs[2].Hash()) {
		t.Fatal("Remove missed a queued tx")
	}
	if mp.Remove(txs[2].Hash()) {
		t.Fatal("second Remove reported present")
	}
	if mp.Contains(txs[3].Hash()) || mp.Contains(txs[4].Hash()) {
		t.Fatal("suffix removal left successors indexed")
	}
	if mp.PendingFrom(key.Address()) != 2 {
		t.Fatalf("PendingFrom after remove = %d, want 2", mp.PendingFrom(key.Address()))
	}
	got := mp.Take(10, nil)
	want := []uint64{0, 1}
	if len(got) != len(want) {
		t.Fatalf("Take returned %d txs, want %d", len(got), len(want))
	}
	for i, tx := range got {
		if tx.Nonce != want[i] {
			t.Fatalf("Take[%d].Nonce = %d, want %d (nonce order broken)", i, tx.Nonce, want[i])
		}
	}
	if mp.Len() != 0 || mp.PendingFrom(key.Address()) != 0 {
		t.Fatalf("pool not empty after Take: len=%d pending=%d", mp.Len(), mp.PendingFrom(key.Address()))
	}
}

func TestMempoolTakeRespectsLimit(t *testing.T) {
	mp := testPool()
	key := cryptoutil.MustGenerateKey()
	contract := testContractAddr()
	for i := range 8 {
		tx := mustTx(t, key, uint64(i), contract, "k", "v")
		if _, err := mp.Add(tx.Hash(), tx); err != nil {
			t.Fatal(err)
		}
	}
	first := mp.Take(3, nil)
	if len(first) != 3 || first[0].Nonce != 0 || first[2].Nonce != 2 {
		t.Fatalf("Take(3) = %d txs starting at nonce %d", len(first), first[0].Nonce)
	}
	if mp.Len() != 5 {
		t.Fatalf("Len after partial Take = %d, want 5", mp.Len())
	}
}

// TestMempoolPriceOrderedTake verifies highest-price-first selection
// with per-sender nonce order preserved: a sender's cheap follow-up
// rides behind its expensive head, never before it.
func TestMempoolPriceOrderedTake(t *testing.T) {
	mp := testPool()
	contract := testContractAddr()
	rich := cryptoutil.MustGenerateKey()
	poor := cryptoutil.MustGenerateKey()

	// rich bids 500 then 5; poor bids 100, 100.
	seq := []*Tx{
		mustTxPriced(t, rich, 0, contract, "a", "1", 500),
		mustTxPriced(t, rich, 1, contract, "b", "2", 5),
		mustTxPriced(t, poor, 0, contract, "c", "3", 100),
		mustTxPriced(t, poor, 1, contract, "d", "4", 100),
	}
	for _, tx := range seq {
		if _, err := mp.Add(tx.Hash(), tx); err != nil {
			t.Fatal(err)
		}
	}
	got := mp.Take(10, nil)
	if len(got) != 4 {
		t.Fatalf("Take returned %d txs, want 4", len(got))
	}
	if got[0].GasPrice != 500 {
		t.Fatalf("first selected price = %d, want 500", got[0].GasPrice)
	}
	// poor's pair outbids rich's nonce-1 follow-up.
	if got[1].GasPrice != 100 || got[2].GasPrice != 100 {
		t.Fatalf("mid selection prices = %d,%d, want 100,100", got[1].GasPrice, got[2].GasPrice)
	}
	if got[3].GasPrice != 5 {
		t.Fatalf("last selected price = %d, want 5", got[3].GasPrice)
	}
	// Per-sender nonce monotonicity.
	last := map[cryptoutil.Address]uint64{}
	for _, tx := range got {
		if prev, ok := last[tx.From]; ok && tx.Nonce != prev+1 {
			t.Fatalf("sender %s nonce order broken: %d after %d", tx.From, tx.Nonce, prev)
		}
		last[tx.From] = tx.Nonce
	}
}

// TestMempoolTakeDeterministicAcrossInsertionOrders pins the strict
// total order of selection: the same transaction set taken from pools
// filled in different interleavings yields the identical sequence, which
// is what keeps every replica sealing bit-identical blocks.
func TestMempoolTakeDeterministicAcrossInsertionOrders(t *testing.T) {
	contract := testContractAddr()
	keys := make([]*cryptoutil.KeyPair, 6)
	for i := range keys {
		keys[i] = cryptoutil.MustGenerateKey()
	}
	var txs []*Tx
	for i, key := range keys {
		for n := range 3 {
			// Deliberate price collisions across senders exercise the
			// hash tie-break.
			txs = append(txs, mustTxPriced(t, key, uint64(n), contract, "k", "v", uint64(10*(i%3))+1))
		}
	}

	fill := func(order []int) []*Tx {
		mp := testPool()
		for _, idx := range order {
			if _, err := mp.Add(txs[idx].Hash(), txs[idx]); err != nil {
				t.Fatal(err)
			}
		}
		return mp.Take(len(txs), nil)
	}

	// Order A: sender-major. Order B: nonce-major (round-robin).
	var a, b []int
	for i := range keys {
		for n := range 3 {
			a = append(a, i*3+n)
		}
	}
	for n := range 3 {
		for i := range keys {
			b = append(b, i*3+n)
		}
	}
	ta, tb := fill(a), fill(b)
	if len(ta) != len(txs) || len(tb) != len(txs) {
		t.Fatalf("full Take returned %d/%d txs, want %d", len(ta), len(tb), len(txs))
	}
	for i := range ta {
		if ta[i].Hash() != tb[i].Hash() {
			t.Fatalf("selection diverged at %d: %s vs %s", i, ta[i].Hash(), tb[i].Hash())
		}
	}
}

// TestMempoolEvictionUnwindsIndexes is the regression test for the
// eviction bookkeeping: evicting a tail must decrement the victim's
// pending count and drop its hash index entry, and the victim must be
// readmittable afterwards.
func TestMempoolEvictionUnwindsIndexes(t *testing.T) {
	mp := newMempool(4, 4, 10)
	contract := testContractAddr()
	cheap := cryptoutil.MustGenerateKey()
	rich := cryptoutil.MustGenerateKey()

	cheapTxs := make([]*Tx, 4)
	for i := range cheapTxs {
		cheapTxs[i] = mustTxPriced(t, cheap, uint64(i), contract, "k", "v", 10)
		if _, err := mp.Add(cheapTxs[i].Hash(), cheapTxs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// A pricier arrival at a full pool evicts cheap's tail (nonce 3).
	bid := mustTxPriced(t, rich, 0, contract, "r", "1", 200)
	evicted, err := mp.Add(bid.Hash(), bid)
	if err != nil {
		t.Fatalf("price-beating Add: %v", err)
	}
	if evicted == nil || evicted.tx.Nonce != 3 || evicted.tx.From != cheap.Address() {
		t.Fatalf("evicted = %+v, want cheap's nonce-3 tail", evicted)
	}
	if mp.Len() != 4 {
		t.Fatalf("Len after eviction = %d, want 4 (bounded)", mp.Len())
	}
	if mp.PendingFrom(cheap.Address()) != 3 {
		t.Fatalf("PendingFrom(cheap) = %d, want 3", mp.PendingFrom(cheap.Address()))
	}
	if mp.Contains(cheapTxs[3].Hash()) {
		t.Fatal("evicted tx still hash-indexed")
	}

	// Drain one slot and readmit the evicted transaction: its nonce is
	// cheap's expected tail again, so admission must accept it cleanly.
	if got := mp.Take(1, nil); len(got) != 1 || got[0].Hash() != bid.Hash() {
		t.Fatalf("Take(1) = %v, want rich's bid first", got)
	}
	if _, err := mp.Add(cheapTxs[3].Hash(), cheapTxs[3]); err != nil {
		t.Fatalf("readmission after eviction: %v", err)
	}
	if mp.PendingFrom(cheap.Address()) != 4 {
		t.Fatalf("PendingFrom after readmission = %d, want 4", mp.PendingFrom(cheap.Address()))
	}
	if !mp.Contains(cheapTxs[3].Hash()) {
		t.Fatal("readmitted tx not hash-indexed")
	}
}

// TestMempoolFullRejectsUnderpriced verifies the backpressure contract
// at a full pool: bids at or below the cheapest tail are refused with
// ErrUnderpriced (an ErrPoolFull), and a sender cannot evict its own
// tail to make room for itself.
func TestMempoolFullRejectsUnderpriced(t *testing.T) {
	mp := newMempool(3, 8, 10)
	contract := testContractAddr()
	a := cryptoutil.MustGenerateKey()
	b := cryptoutil.MustGenerateKey()

	for i := range 3 {
		tx := mustTxPriced(t, a, uint64(i), contract, "k", "v", 50)
		if _, err := mp.Add(tx.Hash(), tx); err != nil {
			t.Fatal(err)
		}
	}
	equal := mustTxPriced(t, b, 0, contract, "x", "1", 50)
	if _, err := mp.Add(equal.Hash(), equal); !errors.Is(err, ErrUnderpriced) || !errors.Is(err, ErrPoolFull) {
		t.Fatalf("equal-price add err = %v, want ErrUnderpriced (ErrPoolFull)", err)
	}
	if mp.Contains(equal.Hash()) || mp.Len() != 3 {
		t.Fatal("rejected tx leaked into the pool")
	}
	// Own-tail eviction refused even at a higher price: it would gap a's
	// queue.
	own := mustTxPriced(t, a, 3, contract, "y", "2", 500)
	if _, err := mp.Add(own.Hash(), own); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("own-tail eviction err = %v, want ErrPoolFull", err)
	}
	if mp.PendingFrom(a.Address()) != 3 {
		t.Fatalf("PendingFrom(a) = %d, want 3", mp.PendingFrom(a.Address()))
	}
}

// TestSubmitBatchDedup is the regression test for mempool dedup under
// batch submission: resubmitting queued transactions (alone or mixed into
// a larger batch) must not create duplicates, and the duplicate's hash is
// still reported.
func TestSubmitBatchDedup(t *testing.T) {
	node, key, clk := newTestNode(t)
	contract := testContractAddr()

	batch := make([]*Tx, 4)
	for i := range batch {
		batch[i] = mustTx(t, key, uint64(i), contract, "k", "v")
	}
	hashes, err := node.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 4 {
		t.Fatalf("SubmitBatch returned %d hashes, want 4", len(hashes))
	}
	if node.PendingTxs() != 4 {
		t.Fatalf("PendingTxs = %d, want 4", node.PendingTxs())
	}

	// Resubmit the same batch plus one genuinely new transaction.
	extended := append(append([]*Tx(nil), batch...), mustTx(t, key, 4, contract, "k", "v"))
	hashes, err = node.SubmitBatch(extended)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 5 {
		t.Fatalf("resubmit returned %d hashes, want 5", len(hashes))
	}
	if node.PendingTxs() != 5 {
		t.Fatalf("PendingTxs after resubmit = %d, want 5 (dedup broken)", node.PendingTxs())
	}

	// Single-tx resubmission reports ErrTxKnown with the hash.
	h, err := node.SubmitTx(batch[0])
	if !errors.Is(err, ErrTxKnown) {
		t.Fatalf("duplicate SubmitTx err = %v, want ErrTxKnown", err)
	}
	if h != batch[0].Hash() {
		t.Fatal("duplicate SubmitTx did not return the queued hash")
	}

	// The sealed block must contain each transaction exactly once.
	clk.Advance(time.Second)
	block, err := node.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 5 {
		t.Fatalf("sealed %d txs, want 5", len(block.Txs))
	}
	seen := make(map[string]bool)
	for _, tx := range block.Txs {
		h := tx.Hash().String()
		if seen[h] {
			t.Fatalf("tx %s sealed twice", h)
		}
		seen[h] = true
	}
}

// TestSubmitBatchAtomicOnBadNonce verifies that a batch with a nonce gap
// is rejected without enqueuing any part of it.
func TestSubmitBatchAtomicOnBadNonce(t *testing.T) {
	node, key, _ := newTestNode(t)
	contract := testContractAddr()

	batch := []*Tx{
		mustTx(t, key, 0, contract, "a", "1"),
		mustTx(t, key, 3, contract, "b", "2"), // gap: want 1
	}
	if _, err := node.SubmitBatch(batch); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("err = %v, want ErrBadNonce", err)
	}
	if node.PendingTxs() != 0 {
		t.Fatalf("PendingTxs = %d, want 0 (batch must be atomic)", node.PendingTxs())
	}
}

// TestSubmitBatchRejectsBadSignature verifies the concurrent verification
// pool surfaces a deterministic signature failure for the whole batch.
func TestSubmitBatchRejectsBadSignature(t *testing.T) {
	node, key, _ := newTestNode(t)
	contract := testContractAddr()

	batch := make([]*Tx, 16)
	for i := range batch {
		batch[i] = mustTx(t, key, uint64(i), contract, "k", "v")
	}
	batch[11].Args = []byte(`{"key":"tampered"}`)
	if _, err := node.SubmitBatch(batch); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
	if node.PendingTxs() != 0 {
		t.Fatalf("PendingTxs = %d, want 0", node.PendingTxs())
	}
}

// TestVerifyTxSignaturesDeterministicError checks that the parallel
// verifier reports the lowest-indexed failure regardless of scheduling.
func TestVerifyTxSignaturesDeterministicError(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	contract := testContractAddr()
	txs := make([]*Tx, 64)
	for i := range txs {
		txs[i] = mustTx(t, key, uint64(i), contract, "k", "v")
	}
	txs[5].GasLimit = 0 // fails with ErrGasLimitZero
	txs[40].Method = "" // fails with ErrNoMethod
	for range 8 {
		if err := VerifyTxSignatures(txs, 0); !errors.Is(err, ErrGasLimitZero) {
			t.Fatalf("err = %v, want the lowest-indexed failure (ErrGasLimitZero)", err)
		}
	}
	if err := VerifyTxSignatures(txs, 1); !errors.Is(err, ErrGasLimitZero) {
		t.Fatalf("sequential err = %v, want ErrGasLimitZero", err)
	}
}

// TestReplaceByFee covers the replacement happy path through the node:
// a ≥bump% pricier same-nonce resubmission supersedes the queued
// transaction without changing the pending count, and the sealed block
// carries the replacement only.
func TestReplaceByFee(t *testing.T) {
	node, key, clk := newPoolNode(t, 16, 8, 10)
	contract := testContractAddr()

	orig := mustTxPriced(t, key, 0, contract, "k", "old", 100)
	if _, err := node.SubmitTx(orig); err != nil {
		t.Fatal(err)
	}
	bump := mustTxPriced(t, key, 0, contract, "k", "new", 110) // exactly +10%
	if _, err := node.SubmitTx(bump); err != nil {
		t.Fatalf("replacement at the bump threshold: %v", err)
	}
	if node.PendingTxs() != 1 {
		t.Fatalf("PendingTxs after replace = %d, want 1", node.PendingTxs())
	}
	node.mpMu.Lock()
	hasOld, hasNew := node.mempool.Contains(orig.Hash()), node.mempool.Contains(bump.Hash())
	node.mpMu.Unlock()
	if hasOld || !hasNew {
		t.Fatalf("pool after replace: old=%v new=%v, want false/true", hasOld, hasNew)
	}

	clk.Advance(time.Second)
	block, err := node.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 1 || block.Txs[0].Hash() != bump.Hash() {
		t.Fatal("sealed block does not carry the replacement exclusively")
	}
	if r := node.Receipt(bump.Hash()); r == nil || !r.Succeeded() {
		t.Fatal("replacement receipt missing or reverted")
	}
}

// TestReplaceByFeeEdges pins the replacement policy edges: an equal
// price and a below-threshold bump are both refused (pool unchanged),
// and a same-nonce transaction from a different sender is not a
// replacement at all — both queue independently.
func TestReplaceByFeeEdges(t *testing.T) {
	node, key, _ := newPoolNode(t, 16, 8, 10)
	contract := testContractAddr()

	orig := mustTxPriced(t, key, 0, contract, "k", "old", 100)
	if _, err := node.SubmitTx(orig); err != nil {
		t.Fatal(err)
	}
	equal := mustTxPriced(t, key, 0, contract, "k", "eq", 100)
	if _, err := node.SubmitTx(equal); !errors.Is(err, ErrReplaceUnderpriced) {
		t.Fatalf("equal-price replace err = %v, want ErrReplaceUnderpriced", err)
	}
	low := mustTxPriced(t, key, 0, contract, "k", "low", 109) // below +10%
	if _, err := node.SubmitTx(low); !errors.Is(err, ErrReplaceUnderpriced) {
		t.Fatalf("below-bump replace err = %v, want ErrReplaceUnderpriced", err)
	}
	node.mpMu.Lock()
	hasOrig := node.mempool.Contains(orig.Hash())
	node.mpMu.Unlock()
	if !hasOrig || node.PendingTxs() != 1 {
		t.Fatal("failed replacements disturbed the queued original")
	}

	// Same nonce, different sender: two independent queues.
	other := cryptoutil.MustGenerateKey()
	cross := mustTxPriced(t, other, 0, contract, "x", "1", 1)
	if _, err := node.SubmitTx(cross); err != nil {
		t.Fatalf("cross-sender same-nonce submit: %v", err)
	}
	if node.PendingTxs() != 2 {
		t.Fatalf("PendingTxs = %d, want 2 (cross-sender tx must not replace)", node.PendingTxs())
	}
}

// TestSenderQuota verifies per-sender pending quotas at the node
// surface: the quota-th+1 transaction is refused with ErrQuotaExceeded
// while other senders keep submitting.
func TestSenderQuota(t *testing.T) {
	node, key, _ := newPoolNode(t, 64, 4, 10)
	contract := testContractAddr()

	for i := range 4 {
		if _, err := node.SubmitTx(mustTx(t, key, uint64(i), contract, "k", "v")); err != nil {
			t.Fatal(err)
		}
	}
	over := mustTx(t, key, 4, contract, "k", "v")
	if _, err := node.SubmitTx(over); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota err = %v, want ErrQuotaExceeded", err)
	}
	other := cryptoutil.MustGenerateKey()
	if _, err := node.SubmitTx(mustTx(t, other, 0, contract, "x", "1")); err != nil {
		t.Fatalf("other sender blocked by someone else's quota: %v", err)
	}
}

// TestConcurrentSubmitBatchQuota hammers one node with concurrent
// batches from many senders against a small pool and quota, then checks
// the admission bounds and index consistency survived (run with -race).
func TestConcurrentSubmitBatchQuota(t *testing.T) {
	const (
		capacity = 32
		quota    = 4
		senders  = 8
		perTx    = 8 // submitted per sender, twice the quota
	)
	node, _, clk := newPoolNode(t, capacity, quota, 10)
	contract := testContractAddr()

	keys := make([]*cryptoutil.KeyPair, senders)
	batches := make([][]*Tx, senders)
	for i := range keys {
		keys[i] = cryptoutil.MustGenerateKey()
		for n := range perTx {
			batches[i] = append(batches[i], mustTxPriced(t, keys[i], uint64(n), contract, "k", "v", uint64(1+i)))
		}
	}

	var wg sync.WaitGroup
	for i := range senders {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-tx submission: quota rejections must not disturb the
			// transactions admitted before the quota hit.
			for _, tx := range batches[i] {
				if _, err := node.SubmitTx(tx); err != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()

	if got := node.PendingTxs(); got > capacity {
		t.Fatalf("PendingTxs = %d, exceeds capacity %d", got, capacity)
	}
	node.mpMu.Lock()
	for i, key := range keys {
		if p := node.mempool.PendingFrom(key.Address()); p > quota {
			node.mpMu.Unlock()
			t.Fatalf("sender %d pending = %d, exceeds quota %d", i, p, quota)
		}
	}
	node.mpMu.Unlock()

	// The pool must drain cleanly: every admitted tx seals exactly once.
	total := 0
	for range 4 {
		clk.Advance(time.Second)
		block, err := node.Seal()
		if err != nil {
			t.Fatal(err)
		}
		total += len(block.Txs)
		if node.PendingTxs() == 0 {
			break
		}
	}
	if node.PendingTxs() != 0 {
		t.Fatalf("pool did not drain: %d left", node.PendingTxs())
	}
	if total == 0 {
		t.Fatal("nothing sealed despite concurrent submissions")
	}
}
