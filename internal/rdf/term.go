// Package rdf provides a minimal RDF data model: IRIs, literals, blank
// nodes, triples, an indexed in-memory graph with pattern matching, and a
// Turtle-subset parser and serializer.
//
// The package implements exactly the subset of RDF/Turtle that the Solid
// substrate needs: Web Access Control (WAC) documents, WebID profile
// snippets, and usage-policy documents are all expressed as small Turtle
// graphs. It is not a general-purpose RDF toolkit.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the dynamic type of a Term.
type TermKind int

// Term kinds. They start at one so the zero value is invalid and cannot be
// mistaken for an IRI.
const (
	KindIRI TermKind = iota + 1
	KindLiteral
	KindBlank
)

// String returns a short human-readable kind name.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	default:
		return fmt.Sprintf("termkind(%d)", int(k))
	}
}

// Term is an RDF term: an IRI, a literal, or a blank node.
//
// Terms are immutable value types. Two terms are equal (in the == sense)
// exactly when they denote the same RDF term, so Term values can be used as
// map keys.
type Term struct {
	kind TermKind
	// value holds the IRI string, the literal lexical form, or the blank
	// node label depending on kind.
	value string
	// datatype is the datatype IRI for literals ("" means xsd:string when
	// lang is empty).
	datatype string
	// lang is the language tag for language-tagged literals.
	lang string
}

// Common XSD datatype IRIs used by typed literals.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDDuration = "http://www.w3.org/2001/XMLSchema#duration"
)

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{kind: KindIRI, value: iri} }

// Blank returns a blank-node term with the given label (without the "_:"
// prefix).
func Blank(label string) Term { return Term{kind: KindBlank, value: label} }

// Literal returns a plain string literal.
func Literal(lexical string) Term {
	return Term{kind: KindLiteral, value: lexical}
}

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lexical, datatype string) Term {
	return Term{kind: KindLiteral, value: lexical, datatype: datatype}
}

// LangLiteral returns a language-tagged string literal.
func LangLiteral(lexical, lang string) Term {
	return Term{kind: KindLiteral, value: lexical, lang: lang}
}

// Integer returns an xsd:integer literal.
func Integer(v int64) Term {
	return TypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// Boolean returns an xsd:boolean literal.
func Boolean(v bool) Term {
	return TypedLiteral(strconv.FormatBool(v), XSDBoolean)
}

// Kind reports the kind of the term. The zero Term reports 0, which is not
// a valid kind.
func (t Term) Kind() TermKind { return t.kind }

// IsZero reports whether t is the zero Term (no kind).
func (t Term) IsZero() bool { return t.kind == 0 }

// Value returns the IRI string, literal lexical form, or blank label.
func (t Term) Value() string { return t.value }

// Datatype returns the literal datatype IRI. For plain literals it returns
// XSDString; for non-literals it returns "".
func (t Term) Datatype() string {
	if t.kind != KindLiteral {
		return ""
	}
	if t.datatype == "" && t.lang == "" {
		return XSDString
	}
	return t.datatype
}

// Lang returns the language tag, or "" if none.
func (t Term) Lang() string { return t.lang }

// Int parses the literal lexical form as an int64.
func (t Term) Int() (int64, error) {
	if t.kind != KindLiteral {
		return 0, fmt.Errorf("rdf: term %s is not a literal", t)
	}
	return strconv.ParseInt(t.value, 10, 64)
}

// Bool parses the literal lexical form as a boolean.
func (t Term) Bool() (bool, error) {
	if t.kind != KindLiteral {
		return false, fmt.Errorf("rdf: term %s is not a literal", t)
	}
	return strconv.ParseBool(t.value)
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.kind {
	case KindIRI:
		return "<" + t.value + ">"
	case KindBlank:
		return "_:" + t.value
	case KindLiteral:
		quoted := quoteLiteral(t.value)
		switch {
		case t.lang != "":
			return quoted + "@" + t.lang
		case t.datatype != "" && t.datatype != XSDString:
			return quoted + "^^<" + t.datatype + ">"
		default:
			return quoted
		}
	default:
		return "?"
	}
}

func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples-like syntax.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// T is a convenience constructor for a Triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Well-known vocabulary IRIs used across the Solid substrate.
const (
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

	// Web Access Control vocabulary.
	ACLAuthorization = "http://www.w3.org/ns/auth/acl#Authorization"
	ACLAgent         = "http://www.w3.org/ns/auth/acl#agent"
	ACLAgentClass    = "http://www.w3.org/ns/auth/acl#agentClass"
	ACLAccessTo      = "http://www.w3.org/ns/auth/acl#accessTo"
	ACLDefault       = "http://www.w3.org/ns/auth/acl#default"
	ACLMode          = "http://www.w3.org/ns/auth/acl#mode"
	ACLRead          = "http://www.w3.org/ns/auth/acl#Read"
	ACLWrite         = "http://www.w3.org/ns/auth/acl#Write"
	ACLAppend        = "http://www.w3.org/ns/auth/acl#Append"
	ACLControl       = "http://www.w3.org/ns/auth/acl#Control"

	// FOAF agent classes.
	FOAFAgent = "http://xmlns.com/foaf/0.1/Agent"

	// Solid/LDP vocabulary subset.
	LDPContainer = "http://www.w3.org/ns/ldp#Container"
	LDPResource  = "http://www.w3.org/ns/ldp#Resource"
	LDPContains  = "http://www.w3.org/ns/ldp#contains"
)
