package rdf

import (
	"sort"
	"strings"
	"sync"
)

// Graph is an in-memory RDF graph with subject/predicate/object indexes.
//
// A Graph is safe for concurrent use. The zero value is not usable; create
// graphs with NewGraph.
type Graph struct {
	mu sync.RWMutex
	// spo is the canonical store: subject -> predicate -> object set.
	spo map[Term]map[Term]map[Term]struct{}
	// pos and osp are secondary indexes used by Match.
	pos map[Term]map[Term]map[Term]struct{}
	osp map[Term]map[Term]map[Term]struct{}
	n   int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(map[Term]map[Term]map[Term]struct{}),
		pos: make(map[Term]map[Term]map[Term]struct{}),
		osp: make(map[Term]map[Term]map[Term]struct{}),
	}
}

func addIndex(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m1, ok := idx[a]
	if !ok {
		m1 = make(map[Term]map[Term]struct{})
		idx[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = make(map[Term]struct{})
		m1[b] = m2
	}
	if _, exists := m2[c]; exists {
		return false
	}
	m2[c] = struct{}{}
	return true
}

func removeIndex(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m1, ok := idx[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok {
		return false
	}
	if _, exists := m2[c]; !exists {
		return false
	}
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b)
	}
	if len(m1) == 0 {
		delete(idx, a)
	}
	return true
}

// Add inserts a triple. It reports whether the triple was not already
// present.
func (g *Graph) Add(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !addIndex(g.spo, t.S, t.P, t.O) {
		return false
	}
	addIndex(g.pos, t.P, t.O, t.S)
	addIndex(g.osp, t.O, t.S, t.P)
	g.n++
	return true
}

// AddAll inserts all triples and returns the number newly added.
func (g *Graph) AddAll(ts ...Triple) int {
	added := 0
	for _, t := range ts {
		if g.Add(t) {
			added++
		}
	}
	return added
}

// Remove deletes a triple. It reports whether the triple was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !removeIndex(g.spo, t.S, t.P, t.O) {
		return false
	}
	removeIndex(g.pos, t.P, t.O, t.S)
	removeIndex(g.osp, t.O, t.S, t.P)
	g.n--
	return true
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Has reports whether the graph contains the exact triple.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m1, ok := g.spo[t.S]
	if !ok {
		return false
	}
	m2, ok := m1[t.P]
	if !ok {
		return false
	}
	_, ok = m2[t.O]
	return ok
}

// Match returns all triples matching the pattern. A zero Term in any
// position is a wildcard. The result is a fresh slice in deterministic
// (sorted) order.
func (g *Graph) Match(s, p, o Term) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()

	var out []Triple
	switch {
	case !s.IsZero():
		for pp, objs := range g.spo[s] {
			if !p.IsZero() && pp != p {
				continue
			}
			for oo := range objs {
				if !o.IsZero() && oo != o {
					continue
				}
				out = append(out, Triple{S: s, P: pp, O: oo})
			}
		}
	case !p.IsZero():
		for oo, subs := range g.pos[p] {
			if !o.IsZero() && oo != o {
				continue
			}
			for ss := range subs {
				out = append(out, Triple{S: ss, P: p, O: oo})
			}
		}
	case !o.IsZero():
		for ss, preds := range g.osp[o] {
			for pp := range preds {
				out = append(out, Triple{S: ss, P: pp, O: o})
			}
		}
	default:
		for ss, m1 := range g.spo {
			for pp, objs := range m1 {
				for obj := range objs {
					out = append(out, Triple{S: ss, P: pp, O: obj})
				}
			}
		}
	}
	sortTriples(out)
	return out
}

// Subjects returns the distinct subjects of triples matching (*, p, o),
// sorted. Zero terms are wildcards.
func (g *Graph) Subjects(p, o Term) []Term {
	seen := make(map[Term]struct{})
	for _, t := range g.Match(Term{}, p, o) {
		seen[t.S] = struct{}{}
	}
	return sortedTerms(seen)
}

// Objects returns the distinct objects of triples matching (s, p, *),
// sorted. Zero terms are wildcards.
func (g *Graph) Objects(s, p Term) []Term {
	seen := make(map[Term]struct{})
	for _, t := range g.Match(s, p, Term{}) {
		seen[t.O] = struct{}{}
	}
	return sortedTerms(seen)
}

// FirstObject returns the first object of (s, p, *) in sorted order, or the
// zero Term if none exists.
func (g *Graph) FirstObject(s, p Term) Term {
	objs := g.Objects(s, p)
	if len(objs) == 0 {
		return Term{}
	}
	return objs[0]
}

// Triples returns every triple in deterministic order.
func (g *Graph) Triples() []Triple { return g.Match(Term{}, Term{}, Term{}) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	clone := NewGraph()
	for _, t := range g.Triples() {
		clone.Add(t)
	}
	return clone
}

// Merge adds every triple of other into g and returns the number added.
func (g *Graph) Merge(other *Graph) int {
	return g.AddAll(other.Triples()...)
}

// Equal reports whether both graphs contain exactly the same triples.
// Blank-node isomorphism is not considered: blank labels must match, which
// is sufficient for this package's round-trip guarantees because the parser
// preserves labels.
func (g *Graph) Equal(other *Graph) bool {
	a, b := g.Triples(), other.Triples()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func termSortKey(t Term) string {
	return strings.Join([]string{t.kind.String(), t.value, t.datatype, t.lang}, "\x00")
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if k1, k2 := termSortKey(a.S), termSortKey(b.S); k1 != k2 {
			return k1 < k2
		}
		if k1, k2 := termSortKey(a.P), termSortKey(b.P); k1 != k2 {
			return k1 < k2
		}
		return termSortKey(a.O) < termSortKey(b.O)
	})
}

func sortedTerms(set map[Term]struct{}) []Term {
	out := make([]Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return termSortKey(out[i]) < termSortKey(out[j])
	})
	return out
}
