package rdf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTurtleBasic(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix acl: <http://www.w3.org/ns/auth/acl#> .

ex:auth1 a acl:Authorization ;
    acl:agent <https://alice.example/profile#me> ;
    acl:accessTo ex:resource1 ;
    acl:mode acl:Read, acl:Write .
`
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5; triples: %v", g.Len(), g.Triples())
	}
	auth := IRI("http://example.org/auth1")
	if !g.Has(T(auth, IRI(RDFType), IRI(ACLAuthorization))) {
		t.Error("missing rdf:type triple from 'a' keyword")
	}
	if !g.Has(T(auth, IRI(ACLMode), IRI(ACLRead))) || !g.Has(T(auth, IRI(ACLMode), IRI(ACLWrite))) {
		t.Error("missing mode triples from object list")
	}
}

func TestParseTurtleLiterals(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:r ex:title "A \"quoted\" title\n" ;
    ex:count 42 ;
    ex:rating 4.5 ;
    ex:active true ;
    ex:label "ciao"@it ;
    ex:created "2023-10-09T00:00:00Z"^^xsd:dateTime .
`
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	r := IRI("http://example.org/r")
	tests := []struct {
		pred string
		want Term
	}{
		{"title", Literal("A \"quoted\" title\n")},
		{"count", TypedLiteral("42", XSDInteger)},
		{"rating", TypedLiteral("4.5", XSDDecimal)},
		{"active", TypedLiteral("true", XSDBoolean)},
		{"label", LangLiteral("ciao", "it")},
		{"created", TypedLiteral("2023-10-09T00:00:00Z", XSDDateTime)},
	}
	for _, tt := range tests {
		t.Run(tt.pred, func(t *testing.T) {
			got := g.FirstObject(r, IRI("http://example.org/"+tt.pred))
			if got != tt.want {
				t.Errorf("object = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestParseTurtleBlankNodes(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
_:b1 ex:p ex:o .
ex:s ex:q _:b1 .
`
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if !g.Has(T(Blank("b1"), IRI("http://example.org/p"), IRI("http://example.org/o"))) {
		t.Error("blank subject triple missing")
	}
	if !g.Has(T(IRI("http://example.org/s"), IRI("http://example.org/q"), Blank("b1"))) {
		t.Error("blank object triple missing")
	}
}

func TestParseTurtleComments(t *testing.T) {
	doc := `
# leading comment
@prefix ex: <http://example.org/> . # trailing comment
ex:s ex:p ex:o . # done
`
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseTurtleSPARQLPrefix(t *testing.T) {
	doc := `
PREFIX ex: <http://example.org/>
ex:s ex:p ex:o .
`
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseTurtleErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"undefined prefix", `ex:s ex:p ex:o .`},
		{"unterminated iri", `<http://e/s <http://e/p> <http://e/o> .`},
		{"unterminated literal", "@prefix ex: <http://e/> .\nex:s ex:p \"abc ."},
		{"literal subject", "@prefix ex: <http://e/> .\n\"lit\" ex:p ex:o ."},
		{"literal predicate", "@prefix ex: <http://e/> .\nex:s \"lit\" ex:o ."},
		{"missing dot", "@prefix ex: <http://e/> .\nex:s ex:p ex:o"},
		{"bad escape", `@prefix ex: <http://e/> .` + "\n" + `ex:s ex:p "a\qb" .`},
		{"prefix missing dot", `@prefix ex: <http://e/>`},
		{"blank missing colon", "@prefix ex: <http://e/> .\n_x ex:p ex:o ."},
		{"newline in literal", "@prefix ex: <http://e/> .\nex:s ex:p \"a\nb\" ."},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseTurtle(tt.doc); err == nil {
				t.Errorf("ParseTurtle(%q) succeeded, want error", tt.doc)
			}
		})
	}
}

func TestSerializeTurtleRoundTrip(t *testing.T) {
	g := NewGraph()
	ex := "http://example.org/"
	g.AddAll(
		T(IRI(ex+"auth"), IRI(RDFType), IRI(ACLAuthorization)),
		T(IRI(ex+"auth"), IRI(ACLAgent), IRI("https://alice.example/profile#me")),
		T(IRI(ex+"auth"), IRI(ACLMode), IRI(ACLRead)),
		T(IRI(ex+"auth"), IRI(ACLMode), IRI(ACLWrite)),
		T(IRI(ex+"r"), IRI(ex+"count"), Integer(7)),
		T(IRI(ex+"r"), IRI(ex+"label"), LangLiteral("x", "en")),
		T(Blank("b0"), IRI(ex+"p"), Literal("plain \"text\"")),
	)
	out := SerializeTurtle(g, map[string]string{
		"ex":  ex,
		"acl": "http://www.w3.org/ns/auth/acl#",
	})
	back, err := ParseTurtle(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip mismatch.\noriginal: %v\nreparsed: %v\nserialized:\n%s",
			g.Triples(), back.Triples(), out)
	}
	if !strings.Contains(out, "a acl:Authorization") {
		t.Errorf("expected 'a' shorthand and prefixed name in output:\n%s", out)
	}
}

func TestSerializeTurtleDeterminism(t *testing.T) {
	g := NewGraph()
	for i := range 20 {
		g.Add(tr(fmt.Sprintf("s%d", i), fmt.Sprintf("p%d", i%3), fmt.Sprintf("o%d", i%5)))
	}
	prefixes := map[string]string{"e": "http://e/"}
	first := SerializeTurtle(g, prefixes)
	for range 5 {
		if again := SerializeTurtle(g, prefixes); again != first {
			t.Fatal("serialization is not deterministic")
		}
	}
}

// randomGraph builds a pseudo-random graph from a seed, using only
// serializable terms.
func randomGraph(seed int64, size int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	ex := "http://example.org/"
	for range size {
		s := IRI(fmt.Sprintf("%ss%d", ex, rng.Intn(8)))
		if rng.Intn(4) == 0 {
			s = Blank(fmt.Sprintf("b%d", rng.Intn(4)))
		}
		p := IRI(fmt.Sprintf("%sp%d", ex, rng.Intn(5)))
		var o Term
		switch rng.Intn(5) {
		case 0:
			o = IRI(fmt.Sprintf("%so%d", ex, rng.Intn(8)))
		case 1:
			o = Literal(randomText(rng))
		case 2:
			o = Integer(int64(rng.Intn(1000) - 500))
		case 3:
			o = LangLiteral(randomText(rng), "en")
		default:
			o = Blank(fmt.Sprintf("b%d", rng.Intn(4)))
		}
		g.Add(T(s, p, o))
	}
	return g
}

func randomText(rng *rand.Rand) string {
	alphabet := `abc XYZ"\	'` + "\n"
	n := rng.Intn(12)
	var b strings.Builder
	for range n {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// TestTurtleRoundTripProperty: serialize(parse(serialize(g))) == serialize(g)
// for arbitrary graphs built from serializable terms.
func TestTurtleRoundTripProperty(t *testing.T) {
	prefixes := map[string]string{"ex": "http://example.org/"}
	f := func(seed int64, n uint8) bool {
		g := randomGraph(seed, int(n%40)+1)
		out := SerializeTurtle(g, prefixes)
		back, err := ParseTurtle(out)
		if err != nil {
			t.Logf("parse error: %v\ndoc:\n%s", err, out)
			return false
		}
		if !g.Equal(back) {
			t.Logf("mismatch for seed %d\ndoc:\n%s", seed, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTurtleTrailingSemicolon(t *testing.T) {
	doc := "@prefix ex: <http://e/> .\nex:s ex:p ex:o ; .\n"
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseTurtleNegativeNumbers(t *testing.T) {
	doc := "@prefix ex: <http://e/> .\nex:s ex:p -17 ; ex:q 3.25 .\n"
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if got := g.FirstObject(IRI("http://e/s"), IRI("http://e/p")); got != TypedLiteral("-17", XSDInteger) {
		t.Errorf("negative integer parsed as %v", got)
	}
	if got := g.FirstObject(IRI("http://e/s"), IRI("http://e/q")); got != TypedLiteral("3.25", XSDDecimal) {
		t.Errorf("decimal parsed as %v", got)
	}
}
