package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return T(IRI("http://e/"+s), IRI("http://e/"+p), IRI("http://e/"+o))
}

func TestGraphAddRemove(t *testing.T) {
	g := NewGraph()
	if g.Len() != 0 {
		t.Fatalf("new graph Len = %d, want 0", g.Len())
	}
	if !g.Add(tr("s", "p", "o")) {
		t.Error("first Add should report true")
	}
	if g.Add(tr("s", "p", "o")) {
		t.Error("duplicate Add should report false")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Has(tr("s", "p", "o")) {
		t.Error("Has should find the triple")
	}
	if g.Has(tr("s", "p", "other")) {
		t.Error("Has should not find an absent triple")
	}
	if !g.Remove(tr("s", "p", "o")) {
		t.Error("Remove of present triple should report true")
	}
	if g.Remove(tr("s", "p", "o")) {
		t.Error("Remove of absent triple should report false")
	}
	if g.Len() != 0 {
		t.Fatalf("Len after removal = %d, want 0", g.Len())
	}
}

func TestGraphMatchWildcards(t *testing.T) {
	g := NewGraph()
	g.AddAll(
		tr("alice", "knows", "bob"),
		tr("alice", "knows", "carol"),
		tr("alice", "name", "a"),
		tr("bob", "knows", "carol"),
	)

	tests := []struct {
		name    string
		s, p, o Term
		want    int
	}{
		{"all", Term{}, Term{}, Term{}, 4},
		{"by subject", IRI("http://e/alice"), Term{}, Term{}, 3},
		{"by subject+pred", IRI("http://e/alice"), IRI("http://e/knows"), Term{}, 2},
		{"by pred", Term{}, IRI("http://e/knows"), Term{}, 3},
		{"by object", Term{}, Term{}, IRI("http://e/carol"), 2},
		{"by pred+object", Term{}, IRI("http://e/knows"), IRI("http://e/carol"), 2},
		{"exact", IRI("http://e/bob"), IRI("http://e/knows"), IRI("http://e/carol"), 1},
		{"no match", IRI("http://e/zed"), Term{}, Term{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := g.Match(tt.s, tt.p, tt.o)
			if len(got) != tt.want {
				t.Errorf("Match returned %d triples, want %d: %v", len(got), tt.want, got)
			}
		})
	}
}

func TestGraphMatchDeterministicOrder(t *testing.T) {
	g := NewGraph()
	for i := 9; i >= 0; i-- {
		g.Add(tr(fmt.Sprintf("s%d", i), "p", "o"))
	}
	first := g.Triples()
	for range 10 {
		again := g.Triples()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("non-deterministic order at %d: %v vs %v", i, first[i], again[i])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if termSortKey(first[i-1].S) > termSortKey(first[i].S) {
			t.Fatalf("triples not sorted: %v before %v", first[i-1], first[i])
		}
	}
}

func TestGraphSubjectsObjects(t *testing.T) {
	g := NewGraph()
	g.AddAll(
		tr("alice", "knows", "bob"),
		tr("carol", "knows", "bob"),
		tr("alice", "knows", "dave"),
	)
	subs := g.Subjects(IRI("http://e/knows"), IRI("http://e/bob"))
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v, want 2 entries", subs)
	}
	objs := g.Objects(IRI("http://e/alice"), IRI("http://e/knows"))
	if len(objs) != 2 {
		t.Fatalf("Objects = %v, want 2 entries", objs)
	}
	first := g.FirstObject(IRI("http://e/alice"), IRI("http://e/knows"))
	if first.IsZero() {
		t.Fatal("FirstObject should find an object")
	}
	if got := g.FirstObject(IRI("http://e/zed"), IRI("http://e/knows")); !got.IsZero() {
		t.Fatalf("FirstObject on absent subject = %v, want zero", got)
	}
}

func TestGraphCloneAndEqual(t *testing.T) {
	g := NewGraph()
	g.AddAll(tr("s1", "p", "o"), tr("s2", "p", "o"))
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Add(tr("s3", "p", "o"))
	if g.Equal(c) {
		t.Fatal("graphs with different sizes should not be equal")
	}
	if g.Len() != 2 {
		t.Fatal("mutating clone must not affect original")
	}
	d := NewGraph()
	d.AddAll(tr("s1", "p", "o"), tr("s2", "p", "x"))
	if g.Equal(d) {
		t.Fatal("graphs with same size but different triples should not be equal")
	}
}

func TestGraphMerge(t *testing.T) {
	a := NewGraph()
	a.AddAll(tr("s1", "p", "o"))
	b := NewGraph()
	b.AddAll(tr("s1", "p", "o"), tr("s2", "p", "o"))
	if added := a.Merge(b); added != 1 {
		t.Fatalf("Merge added %d, want 1", added)
	}
	if a.Len() != 2 {
		t.Fatalf("after merge Len = %d, want 2", a.Len())
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 100 {
				g.Add(tr(fmt.Sprintf("s%d-%d", w, i), "p", "o"))
				g.Match(Term{}, IRI("http://e/p"), Term{})
				g.Len()
			}
		}()
	}
	wg.Wait()
	if g.Len() != 800 {
		t.Fatalf("Len = %d, want 800", g.Len())
	}
}

// TestGraphAddRemoveProperty checks that adding then removing a random set
// of triples always returns the graph to its prior state.
func TestGraphAddRemoveProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		base := []Triple{tr("a", "p", "b"), tr("b", "p", "c")}
		g.AddAll(base...)

		var added []Triple
		for range int(n%32) + 1 {
			trp := tr(
				fmt.Sprintf("s%d", rng.Intn(10)),
				fmt.Sprintf("p%d", rng.Intn(3)),
				fmt.Sprintf("o%d", rng.Intn(10)),
			)
			if g.Add(trp) {
				added = append(added, trp)
			}
		}
		for _, trp := range added {
			if !g.Remove(trp) {
				return false
			}
		}
		want := NewGraph()
		want.AddAll(base...)
		return g.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
