package rdf

import (
	"testing"
)

func TestTermConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name     string
		term     Term
		kind     TermKind
		value    string
		datatype string
		lang     string
	}{
		{"iri", IRI("http://example.org/x"), KindIRI, "http://example.org/x", "", ""},
		{"blank", Blank("b1"), KindBlank, "b1", "", ""},
		{"plain literal", Literal("hello"), KindLiteral, "hello", XSDString, ""},
		{"typed literal", TypedLiteral("5", XSDInteger), KindLiteral, "5", XSDInteger, ""},
		{"lang literal", LangLiteral("ciao", "it"), KindLiteral, "ciao", "", "it"},
		{"integer", Integer(-42), KindLiteral, "-42", XSDInteger, ""},
		{"boolean", Boolean(true), KindLiteral, "true", XSDBoolean, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.term.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.term.Value(); got != tt.value {
				t.Errorf("Value() = %q, want %q", got, tt.value)
			}
			if tt.kind == KindLiteral && tt.lang == "" {
				if got := tt.term.Datatype(); got != tt.datatype {
					t.Errorf("Datatype() = %q, want %q", got, tt.datatype)
				}
			}
			if got := tt.term.Lang(); got != tt.lang {
				t.Errorf("Lang() = %q, want %q", got, tt.lang)
			}
		})
	}
}

func TestTermZero(t *testing.T) {
	var zero Term
	if !zero.IsZero() {
		t.Error("zero Term should report IsZero")
	}
	if IRI("x").IsZero() {
		t.Error("IRI should not report IsZero")
	}
	if zero.Datatype() != "" {
		t.Errorf("zero Datatype() = %q, want empty", zero.Datatype())
	}
}

func TestTermEqualityAsMapKey(t *testing.T) {
	m := map[Term]int{}
	m[IRI("http://a")] = 1
	m[IRI("http://a")] = 2
	m[Literal("http://a")] = 3
	m[TypedLiteral("1", XSDInteger)] = 4
	m[Literal("1")] = 5
	if len(m) != 4 {
		t.Fatalf("expected 4 distinct keys, got %d: %v", len(m), m)
	}
	if m[IRI("http://a")] != 2 {
		t.Error("IRI key should have been overwritten")
	}
}

func TestTermIntBool(t *testing.T) {
	if v, err := Integer(7).Int(); err != nil || v != 7 {
		t.Errorf("Int() = %d, %v; want 7, nil", v, err)
	}
	if _, err := IRI("x").Int(); err == nil {
		t.Error("Int() on IRI should error")
	}
	if v, err := Boolean(true).Bool(); err != nil || !v {
		t.Errorf("Bool() = %t, %v; want true, nil", v, err)
	}
	if _, err := Blank("b").Bool(); err == nil {
		t.Error("Bool() on blank should error")
	}
	if _, err := Literal("xyz").Int(); err == nil {
		t.Error("Int() on non-numeric literal should error")
	}
}

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{IRI("http://e/x"), "<http://e/x>"},
		{Blank("b9"), "_:b9"},
		{Literal("hi"), `"hi"`},
		{Literal("say \"hi\"\n"), `"say \"hi\"\n"`},
		{LangLiteral("hi", "en"), `"hi"@en`},
		{TypedLiteral("3", XSDInteger), `"3"^^<` + XSDInteger + `>`},
		{TypedLiteral("s", XSDString), `"s"`},
	}
	for _, tt := range tests {
		if got := tt.term.String(); got != tt.want {
			t.Errorf("String() = %s, want %s", got, tt.want)
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := T(IRI("http://s"), IRI("http://p"), Literal("o"))
	want := `<http://s> <http://p> "o" .`
	if got := tr.String(); got != want {
		t.Errorf("Triple.String() = %s, want %s", got, want)
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "iri" || KindLiteral.String() != "literal" || KindBlank.String() != "blank" {
		t.Error("unexpected kind names")
	}
	if TermKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
