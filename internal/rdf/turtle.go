package rdf

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// ParseTurtle parses a Turtle-subset document into a graph.
//
// Supported syntax:
//
//   - @prefix and PREFIX directives
//   - prefixed names (ex:thing), full IRIs (<http://...>), blank nodes
//     (_:label), the "a" keyword for rdf:type
//   - plain, language-tagged ("x"@en) and typed ("1"^^xsd:integer) string
//     literals with the usual escapes, plus bare integers and booleans
//   - object lists (comma), predicate-object lists (semicolon)
//   - line comments (#)
//
// Unsupported Turtle features (collections, anonymous blank-node property
// lists, multiline strings) produce an error.
func ParseTurtle(input string) (*Graph, error) {
	p := &turtleParser{
		input:    input,
		prefixes: map[string]string{},
		graph:    NewGraph(),
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.graph, nil
}

type turtleParser struct {
	input    string
	pos      int
	line     int
	prefixes map[string]string
	graph    *Graph
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) run() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if p.hasPrefixDirective() {
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseStatement(); err != nil {
			return err
		}
	}
}

func (p *turtleParser) eof() bool { return p.pos >= len(p.input) }

func (p *turtleParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.input[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for !p.eof() && p.input[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) hasPrefixDirective() bool {
	rest := p.input[p.pos:]
	return strings.HasPrefix(rest, "@prefix") ||
		strings.HasPrefix(rest, "PREFIX") || strings.HasPrefix(rest, "prefix")
}

func (p *turtleParser) parsePrefix() error {
	atForm := p.peek() == '@'
	if atForm {
		p.pos += len("@prefix")
	} else {
		p.pos += len("PREFIX")
	}
	p.skipWS()
	// Read "name:".
	start := p.pos
	for !p.eof() && p.input[p.pos] != ':' {
		p.pos++
	}
	if p.eof() {
		return p.errf("prefix directive missing ':'")
	}
	name := strings.TrimSpace(p.input[start:p.pos])
	p.pos++ // consume ':'
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	p.skipWS()
	if atForm {
		if p.peek() != '.' {
			return p.errf("@prefix directive must end with '.'")
		}
		p.pos++
	} else if p.peek() == '.' {
		// SPARQL-style PREFIX has no dot, but tolerate one.
		p.pos++
	}
	return nil
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if p.peek() != '<' {
		return "", p.errf("expected '<' to open IRI, found %q", string(p.peek()))
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.input[p.pos] != '>' {
		if p.input[p.pos] == '\n' {
			return "", p.errf("newline inside IRI")
		}
		p.pos++
	}
	if p.eof() {
		return "", p.errf("unterminated IRI")
	}
	iri := p.input[start:p.pos]
	p.pos++
	return iri, nil
}

func (p *turtleParser) parseStatement() error {
	subject, err := p.parseTerm(false)
	if err != nil {
		return err
	}
	if subject.Kind() == KindLiteral {
		return p.errf("literal %s cannot be a subject", subject)
	}
	for {
		p.skipWS()
		predicate, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			object, err := p.parseTerm(true)
			if err != nil {
				return err
			}
			p.graph.Add(Triple{S: subject, P: predicate, O: object})
			p.skipWS()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		switch p.peek() {
		case ';':
			p.pos++
			p.skipWS()
			// A trailing ';' before '.' is legal Turtle.
			if p.peek() == '.' {
				p.pos++
				return nil
			}
			continue
		case '.':
			p.pos++
			return nil
		default:
			return p.errf("expected ';' or '.' after object, found %q", string(p.peek()))
		}
	}
}

func (p *turtleParser) parsePredicate() (Term, error) {
	// The "a" keyword abbreviates rdf:type.
	if p.peek() == 'a' {
		next := p.pos + 1
		if next >= len(p.input) || isTermBoundary(p.input[next]) {
			p.pos++
			return IRI(RDFType), nil
		}
	}
	t, err := p.parseTerm(false)
	if err != nil {
		return Term{}, err
	}
	if t.Kind() != KindIRI {
		return Term{}, p.errf("predicate must be an IRI, found %s", t)
	}
	return t, nil
}

func isTermBoundary(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '<' || c == '"' || c == '_'
}

// parseTerm parses an IRI, prefixed name, blank node or (when allowLiteral)
// a literal.
func (p *turtleParser) parseTerm(allowLiteral bool) (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.errf("unexpected end of input")
	}
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return IRI(iri), nil
	case c == '_':
		if p.pos+1 >= len(p.input) || p.input[p.pos+1] != ':' {
			return Term{}, p.errf("expected ':' after '_' in blank node")
		}
		p.pos += 2
		label := p.readName()
		if label == "" {
			return Term{}, p.errf("empty blank node label")
		}
		return Blank(label), nil
	case c == '"':
		if !allowLiteral {
			return Term{}, p.errf("literal not allowed here")
		}
		return p.parseLiteral()
	case (c >= '0' && c <= '9') || c == '-' || c == '+':
		if !allowLiteral {
			return Term{}, p.errf("numeric literal not allowed here")
		}
		start := p.pos
		p.pos++
		isDecimal := false
		for !p.eof() {
			d := p.input[p.pos]
			if d >= '0' && d <= '9' {
				p.pos++
				continue
			}
			if d == '.' && p.pos+1 < len(p.input) && p.input[p.pos+1] >= '0' && p.input[p.pos+1] <= '9' {
				isDecimal = true
				p.pos++
				continue
			}
			break
		}
		lex := p.input[start:p.pos]
		if isDecimal {
			return TypedLiteral(lex, XSDDecimal), nil
		}
		return TypedLiteral(lex, XSDInteger), nil
	default:
		// Prefixed name or boolean keyword.
		name := p.readName()
		if name == "" {
			return Term{}, p.errf("unexpected character %q", string(c))
		}
		if name == "true" || name == "false" {
			if !allowLiteral {
				return Term{}, p.errf("boolean literal not allowed here")
			}
			return TypedLiteral(name, XSDBoolean), nil
		}
		if p.peek() != ':' {
			return Term{}, p.errf("expected ':' in prefixed name after %q", name)
		}
		p.pos++
		local := p.readName()
		base, ok := p.prefixes[name]
		if !ok {
			return Term{}, p.errf("undefined prefix %q", name)
		}
		return IRI(base + local), nil
	}
}

func (p *turtleParser) readName() string {
	start := p.pos
	for !p.eof() {
		r := rune(p.input[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_' || r == '.' {
			// A '.' only belongs to the name if followed by a name char;
			// otherwise it terminates the statement.
			if r == '.' {
				if p.pos+1 >= len(p.input) {
					break
				}
				nxt := rune(p.input[p.pos+1])
				if !unicode.IsLetter(nxt) && !unicode.IsDigit(nxt) && nxt != '_' && nxt != '-' {
					break
				}
			}
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos]
}

func (p *turtleParser) parseLiteral() (Term, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated string literal")
		}
		c := p.input[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\n' {
			return Term{}, p.errf("newline in string literal")
		}
		if c == '\\' {
			p.pos++
			if p.eof() {
				return Term{}, p.errf("unterminated escape")
			}
			switch esc := p.input[p.pos]; esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, p.errf("unsupported escape \\%s", string(esc))
			}
			p.pos++
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lexical := b.String()
	// Language tag or datatype suffix.
	switch {
	case p.peek() == '@':
		p.pos++
		lang := p.readName()
		if lang == "" {
			return Term{}, p.errf("empty language tag")
		}
		return LangLiteral(lexical, lang), nil
	case strings.HasPrefix(p.input[p.pos:], "^^"):
		p.pos += 2
		dt, err := p.parseTerm(false)
		if err != nil {
			return Term{}, err
		}
		if dt.Kind() != KindIRI {
			return Term{}, p.errf("datatype must be an IRI")
		}
		return TypedLiteral(lexical, dt.Value()), nil
	default:
		return Literal(lexical), nil
	}
}

// SerializeTurtle renders the graph as Turtle, grouping triples by subject
// and predicate, using the supplied prefix map (name -> IRI base). Output
// is deterministic.
func SerializeTurtle(g *Graph, prefixes map[string]string) string {
	var b strings.Builder

	names := make([]string, 0, len(prefixes))
	for name := range prefixes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", name, prefixes[name])
	}
	if len(names) > 0 {
		b.WriteByte('\n')
	}

	shorten := func(t Term) string {
		if t.Kind() == KindIRI {
			if t.Value() == RDFType {
				return "a"
			}
			best := ""
			bestName := ""
			for _, name := range names {
				base := prefixes[name]
				if strings.HasPrefix(t.Value(), base) && len(base) > len(best) {
					local := t.Value()[len(base):]
					if isSafeLocal(local) {
						best = base
						bestName = name
					}
				}
			}
			if best != "" {
				return bestName + ":" + t.Value()[len(best):]
			}
		}
		return t.String()
	}

	triples := g.Triples()
	// Group by subject, then predicate, preserving the sorted order that
	// Triples already provides.
	for i := 0; i < len(triples); {
		s := triples[i].S
		fmt.Fprintf(&b, "%s", shorten(s))
		first := true
		for i < len(triples) && triples[i].S == s {
			pTerm := triples[i].P
			if first {
				fmt.Fprintf(&b, " %s ", shorten(pTerm))
				first = false
			} else {
				fmt.Fprintf(&b, " ;\n    %s ", shorten(pTerm))
			}
			firstObj := true
			for i < len(triples) && triples[i].S == s && triples[i].P == pTerm {
				if !firstObj {
					b.WriteString(", ")
				}
				b.WriteString(shorten(triples[i].O))
				firstObj = false
				i++
			}
		}
		b.WriteString(" .\n")
	}
	return b.String()
}

// isSafeLocal reports whether a local name can be emitted as a prefixed
// name without escaping.
func isSafeLocal(local string) bool {
	if local == "" {
		return true
	}
	for _, r := range local {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' && r != '_' {
			return false
		}
	}
	return true
}
