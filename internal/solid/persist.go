package solid

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/store"
)

// podLogName is the per-pod operation log filename.
const podLogName = "oplog.wal"

// defaultPodSnapshotEvery is the op cadence of pod snapshots when
// PodStoreOptions.SnapshotEvery is zero.
const defaultPodSnapshotEvery = 256

// podSnapshotsKept bounds retained pod snapshot files.
const podSnapshotsKept = 3

// PodStoreOptions configures a durable pod.
type PodStoreOptions struct {
	// WAL is the operation log's fsync policy.
	WAL store.Options
	// SnapshotEvery is the op cadence of full-content snapshots that
	// bound replay (default 256).
	SnapshotEvery int
}

// podOp is one logged mutation effect. Replay applies effects directly —
// authorization already happened when the op was logged — so a restored
// pod reproduces the exact resource bytes, ETags, ACL documents, ACL
// generation, and POST-minting sequence of the pod that wrote the log.
type podOp struct {
	// Kind is "put" (create/replace, covering Append's net effect too),
	// "del", or "acl".
	Kind string `json:"kind"`
	// Path is the affected resource (or ACL target) path.
	Path string `json:"path"`
	// ContentType/Data/Modified describe the stored resource for "put".
	ContentType string    `json:"contentType,omitempty"`
	Data        []byte    `json:"data,omitempty"`
	Modified    time.Time `json:"modified,omitzero"`
	// ACL is the installed document for "acl".
	ACL *ACL `json:"acl,omitempty"`
	// PostSeq is the pod's POST-minting counter after the op, so replay
	// never re-mints a server-assigned child name.
	PostSeq uint64 `json:"postSeq,omitempty"`
}

// podSnapshot is a full pod dump bounding op replay.
type podSnapshot struct {
	Ops       uint64          `json:"ops"` // op count the snapshot covers
	PostSeq   uint64          `json:"postSeq"`
	ACLGen    uint64          `json:"aclGen"`
	Resources []*Resource     `json:"resources"`
	ACLs      map[string]*ACL `json:"acls"`
}

// podStore is a pod's attached durability state. Its fields are guarded
// by the pod's write lock (every logged mutation holds p.mu).
//
// The op log is deliberately never compacted: snapshots bound how much
// of it recovery must APPLY, but the full history stays on disk so that
// a corrupt snapshot can always fall back to a complete replay —
// snapshots remain strictly an optimization. Compacting the covered
// prefix would trade that property for bounded storage; if a
// deployment ever needs it, the rotation must keep at least one
// verified snapshot per truncated prefix.
type podStore struct {
	wal   *store.WAL
	dir   string
	every int
	ops   uint64 // total ops in the log (replayed + appended)
}

// OpenPod opens (or bootstraps) a durable pod rooted at dir: it loads
// the newest usable snapshot, replays the op-log tail past it
// (truncating any torn tail back to the last complete record), and
// attaches the log so subsequent mutations are durable. A pod restored
// this way serves byte-identical resources with identical ETags and the
// same ACL generation the original pod last reported.
func OpenPod(owner WebID, baseURL, dir string, opts PodStoreOptions) (*Pod, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("solid: create pod dir: %w", err)
	}
	wal, records, err := store.OpenWAL(filepath.Join(dir, podLogName), opts.WAL)
	if err != nil {
		return nil, err
	}
	p := NewPod(owner, baseURL)
	// The pod is not yet published, so no other goroutine can race the
	// replay — but holding mu anyway costs nothing (one uncontended
	// acquisition per open) and keeps the lock discipline uniform for
	// every path that touches guarded fields.
	p.mu.Lock()
	defer p.mu.Unlock()

	start := uint64(0)
	if seq, payload, ok := store.LatestSnapshot(dir, uint64(len(records))); ok {
		if snap, err := decodePodSnapshot(payload); err == nil && snap.Ops == seq {
			for _, r := range snap.Resources {
				p.resources[r.Path] = r
			}
			for path, acl := range snap.ACLs {
				p.acls[path] = acl
			}
			p.postSeq = snap.PostSeq
			p.aclGen.Store(snap.ACLGen)
			start = seq
		}
		// An undecodable snapshot is skipped: the log tail below carries
		// every op, so full replay recovers the same content.
	}
	lastGoodEnd := int64(0)
	if start > 0 {
		lastGoodEnd = records[start-1].End
	}
	applied := uint64(0)
	for _, rec := range records[start:] {
		op, err := decodePodOp(rec.Payload)
		if err != nil {
			// A record that passes the CRC but not the schema is damage
			// the frame cannot see; treat it as the torn tail.
			break
		}
		p.applyOpLocked(op)
		applied++
		lastGoodEnd = rec.End
	}
	if lastGoodEnd < wal.Size() {
		if err := wal.TruncateTo(lastGoodEnd); err != nil {
			return nil, errors.Join(err, wal.Close())
		}
	}
	every := opts.SnapshotEvery
	if every <= 0 {
		every = defaultPodSnapshotEvery
	}
	// ops counts the records actually in the log (snapshot base + the
	// replayed tail) — the op log is the source of truth, not the ACL
	// generation, even though the two agree on every successful path.
	p.persist = &podStore{wal: wal, dir: dir, every: every, ops: start + applied}
	return p, nil
}

// applyOpLocked replays one logged effect (open-time only, no logging;
// callers hold p.mu). Each op bumps the ACL generation exactly once,
// mirroring the original mutation.
func (p *Pod) applyOpLocked(op podOp) {
	switch op.Kind {
	case "put":
		p.resources[op.Path] = &Resource{
			Path:        op.Path,
			ContentType: op.ContentType,
			Data:        op.Data,
			Modified:    op.Modified,
			ETag:        ETagFor(op.Data),
		}
	case "del":
		delete(p.resources, op.Path)
	case "acl":
		if op.ACL != nil {
			p.acls[op.Path] = op.ACL
		}
	}
	if op.PostSeq > p.postSeq {
		p.postSeq = op.PostSeq
	}
	p.invalidateAuthCache()
}

// logOpLocked journals one mutation effect. Callers hold p.mu for
// writing and call it BEFORE applying the mutation to memory; a nil
// persist makes it a no-op (the in-memory pod). A logging failure is
// returned to the mutating caller, which must then leave the pod
// untouched — a durable pod never acknowledges (or serves) a write its
// journal does not hold.
func (p *Pod) logOpLocked(op podOp) error {
	if p.persist == nil {
		return nil
	}
	op.PostSeq = p.postSeq
	buf, err := encodePodOp(&op)
	if err != nil {
		return fmt.Errorf("solid: encode pod op: %w", err)
	}
	if err := p.persist.wal.Append(buf); err != nil {
		return fmt.Errorf("solid: persist pod op: %w", err)
	}
	p.persist.ops++
	return nil
}

// maybeSnapshotLocked snapshots on the op cadence. Callers hold p.mu
// for writing and call it AFTER applying the mutation, so the snapshot
// includes the op it is stamped with. A failed snapshot never fails the
// (already journaled and applied) mutation: recovery just replays a
// longer tail.
func (p *Pod) maybeSnapshotLocked() {
	if p.persist == nil || p.persist.every <= 0 || p.persist.ops%uint64(p.persist.every) != 0 {
		return
	}
	if err := p.writeSnapshotLocked(); err != nil {
		log.Printf("solid: pod snapshot at op %d skipped: %v", p.persist.ops, err)
	}
}

// writeSnapshotLocked dumps the pod under its current op count. Callers
// hold p.mu for writing.
func (p *Pod) writeSnapshotLocked() error {
	snap := podSnapshot{
		Ops:     p.persist.ops,
		PostSeq: p.postSeq,
		ACLGen:  p.aclGen.Load(),
		ACLs:    make(map[string]*ACL, len(p.acls)),
	}
	snap.Resources = make([]*Resource, 0, len(p.resources))
	for _, r := range p.resources {
		cp := *r
		cp.Data = append([]byte(nil), r.Data...)
		snap.Resources = append(snap.Resources, &cp)
	}
	for path, acl := range p.acls {
		snap.ACLs[path] = acl
	}
	buf, err := encodePodSnapshot(&snap)
	if err != nil {
		return fmt.Errorf("solid: encode pod snapshot: %w", err)
	}
	if err := store.WriteSnapshot(p.persist.dir, snap.Ops, buf); err != nil {
		return fmt.Errorf("solid: write pod snapshot: %w", err)
	}
	if _, err := store.PruneSnapshots(p.persist.dir, podSnapshotsKept); err != nil {
		return fmt.Errorf("solid: prune pod snapshots: %w", err)
	}
	return nil
}

// CloseStore flushes and closes the pod's durable store (no-op for
// in-memory pods).
func (p *Pod) CloseStore() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.persist == nil {
		return nil
	}
	return p.persist.wal.Close()
}

// Persistent reports whether the pod journals mutations to disk.
func (p *Pod) Persistent() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.persist != nil
}
