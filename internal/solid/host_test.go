package solid

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// hostEnv is a running multi-pod host with registered agents.
type hostEnv struct {
	host *Host
	srv  *httptest.Server
	dir  *MapDirectory
	clk  *simclock.Sim
}

func newHostEnv(t *testing.T) *hostEnv {
	t.Helper()
	clk := simclock.NewSim(podEpoch)
	dir := NewMapDirectory()
	host := NewHost(dir, clk)
	srv := httptest.NewServer(host)
	t.Cleanup(srv.Close)
	return &hostEnv{host: host, srv: srv, dir: dir, clk: clk}
}

// addOwner provisions a pod plus an authenticated client for its owner.
func (e *hostEnv) addOwner(t *testing.T, name string) (*Pod, *Client, WebID) {
	t.Helper()
	key := cryptoutil.MustGenerateKey()
	owner := WebID("https://" + name + ".example/profile#me")
	e.dir.Register(owner, key.PublicBytes())
	pod, err := e.host.CreatePod(name, owner, e.srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pod, NewClient(owner, key, e.clk), owner
}

func TestHostServesManyPodsWithIsolation(t *testing.T) {
	e := newHostEnv(t)
	const pods = 120
	clients := make([]*Client, pods)
	for i := range pods {
		name := fmt.Sprintf("owner%03d", i)
		_, c, _ := e.addOwner(t, name)
		clients[i] = c
		url := fmt.Sprintf("%s/pods/%s/data/r.txt", e.srv.URL, name)
		if err := c.Put(url, "text/plain", []byte(name)); err != nil {
			t.Fatalf("put into pod %s: %v", name, err)
		}
	}
	if got := e.host.Len(); got != pods {
		t.Fatalf("host.Len() = %d, want %d", got, pods)
	}
	// Every owner reads their own bytes back through the shared handler.
	for i := range pods {
		name := fmt.Sprintf("owner%03d", i)
		url := fmt.Sprintf("%s/pods/%s/data/r.txt", e.srv.URL, name)
		data, _, err := clients[i].Get(url)
		if err != nil || string(data) != name {
			t.Fatalf("pod %s read back %q, %v", name, data, err)
		}
	}
	// Per-pod isolation: owner000 is authorized on pod owner000 but must
	// be denied on pod owner001 (and vice versa).
	cross := fmt.Sprintf("%s/pods/owner001/data/r.txt", e.srv.URL)
	_, _, err := clients[0].Get(cross)
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusForbidden {
		t.Fatalf("cross-pod read should be 403, got %v", err)
	}
	if err := clients[0].Put(cross, "text/plain", []byte("own3d")); err == nil {
		t.Fatal("cross-pod write succeeded")
	}
}

func TestHostGrantOnOnePodDoesNotLeak(t *testing.T) {
	e := newHostEnv(t)
	podA, _, ownerA := e.addOwner(t, "alice")
	podB, _, ownerB := e.addOwner(t, "bob")

	guestKey := cryptoutil.MustGenerateKey()
	guest := WebID("https://guest.example/profile#me")
	e.dir.Register(guest, guestKey.PublicBytes())
	guestClient := NewClient(guest, guestKey, e.clk)

	for _, p := range []struct {
		pod   *Pod
		owner WebID
	}{{podA, ownerA}, {podB, ownerB}} {
		if err := p.pod.Put(p.owner, "/shared.txt", "text/plain", []byte("s"), podEpoch); err != nil {
			t.Fatal(err)
		}
	}
	acl := NewACL(ownerA, "/shared.txt")
	acl.Grant("guest", []WebID{guest}, "/shared.txt", false, ModeRead)
	if err := podA.SetACL(ownerA, "/shared.txt", acl); err != nil {
		t.Fatal(err)
	}

	if _, _, err := guestClient.Get(e.srv.URL + "/pods/alice/shared.txt"); err != nil {
		t.Fatalf("granted read on pod A: %v", err)
	}
	_, _, err := guestClient.Get(e.srv.URL + "/pods/bob/shared.txt")
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusForbidden {
		t.Fatalf("grant leaked to pod B: %v", err)
	}
}

func TestHostSignatureBindsPodPrefix(t *testing.T) {
	e := newHostEnv(t)
	podA, clientA, ownerA := e.addOwner(t, "alice")
	podB, _, ownerB := e.addOwner(t, "bob")
	// Both pods hold a world-readable-looking resource at the same
	// pod-relative path, but only signed requests reach them.
	if err := podA.Put(ownerA, "/r.txt", "text/plain", []byte("a"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if err := podB.Put(ownerB, "/r.txt", "text/plain", []byte("b"), podEpoch); err != nil {
		t.Fatal(err)
	}
	// Capture a valid request for pod A and replay its credentials
	// against pod B: the signature covers /pods/alice/r.txt, so pod B
	// must reject it even before authorization.
	reqA, err := clientA.newRequest(http.MethodGet, e.srv.URL+"/pods/alice/r.txt", nil)
	if err != nil {
		t.Fatal(err)
	}
	reqB, err := http.NewRequest(http.MethodGet, e.srv.URL+"/pods/bob/r.txt", nil)
	if err != nil {
		t.Fatal(err)
	}
	reqB.Header = reqA.Header.Clone()
	resp, err := http.DefaultClient.Do(reqB)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("cross-pod credential replay status = %d, want 401", resp.StatusCode)
	}
}

func TestHostUnknownPodAndBadNames(t *testing.T) {
	e := newHostEnv(t)
	e.addOwner(t, "alice")
	for _, path := range []string{"/pods/ghost/r.txt", "/nopods/alice/r.txt", "/"} {
		resp, err := http.Get(e.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	if _, err := e.host.CreatePod("alice", "https://x/profile#me", e.srv.URL, nil); !errors.Is(err, ErrPodExists) {
		t.Fatalf("duplicate mount: %v", err)
	}
	for _, bad := range []string{"", "a/b", "a b", strings.Repeat("x", 200)} {
		if err := e.host.Mount(bad, nil, http.NotFoundHandler()); !errors.Is(err, ErrBadPodName) {
			t.Fatalf("Mount(%q) = %v, want ErrBadPodName", bad, err)
		}
	}
}

func TestHostLookupAndRemove(t *testing.T) {
	e := newHostEnv(t)
	pod, client, _ := e.addOwner(t, "alice")
	got, ok := e.host.Lookup("alice")
	if !ok || got != pod {
		t.Fatal("Lookup lost the mounted pod")
	}
	if len(e.host.Names()) != 1 || e.host.Names()[0] != "alice" {
		t.Fatalf("Names = %v", e.host.Names())
	}
	if !e.host.Remove("alice") {
		t.Fatal("Remove reported not-mounted")
	}
	if e.host.Remove("alice") {
		t.Fatal("second Remove reported mounted")
	}
	if _, _, err := client.Get(e.srv.URL + "/pods/alice/anything"); err == nil {
		t.Fatal("request to removed pod succeeded")
	}
}

func TestHostConcurrentTraffic(t *testing.T) {
	e := newHostEnv(t)
	const pods = 16
	clients := make([]*Client, pods)
	for i := range pods {
		name := fmt.Sprintf("p%02d", i)
		_, c, _ := e.addOwner(t, name)
		clients[i] = c
		if err := c.Put(fmt.Sprintf("%s/pods/%s/r.txt", e.srv.URL, name), "text/plain", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, pods*8)
	for i := range pods {
		for range 8 {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				url := fmt.Sprintf("%s/pods/p%02d/r.txt", e.srv.URL, i)
				if _, _, err := clients[i].Get(url); err != nil {
					errs <- err
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
