package solid

import (
	"errors"
	"strings"
	"testing"
	"time"
)

var podEpoch = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

func newTestPod() *Pod {
	return NewPod(aliceID, "https://alice.pod")
}

func TestPodOwnerCRUD(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/web/browsing.csv", "text/csv", []byte("a,b"), podEpoch); err != nil {
		t.Fatal(err)
	}
	res, err := pod.Get(aliceID, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Data) != "a,b" || res.ContentType != "text/csv" {
		t.Fatalf("resource = %+v", res)
	}
	if err := pod.Delete(aliceID, "/web/browsing.csv"); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(aliceID, "/web/browsing.csv"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if err := pod.Delete(aliceID, "/web/browsing.csv"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestPodStrangerDenied(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/secret.txt", "text/plain", []byte("s"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(bobID, "/secret.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("stranger read: %v", err)
	}
	if err := pod.Put(bobID, "/attack.txt", "text/plain", []byte("x"), podEpoch); !errors.Is(err, ErrForbidden) {
		t.Fatalf("stranger write: %v", err)
	}
	if _, err := pod.Get("", "/secret.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("anonymous read: %v", err)
	}
}

func TestPodGrantThroughACL(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/data/r.csv", "text/csv", []byte("1"), podEpoch); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(aliceID, "/data/r.csv")
	acl.Grant("bob", []WebID{bobID}, "/data/r.csv", false, ModeRead)
	if err := pod.SetACL(aliceID, "/data/r.csv", acl); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(bobID, "/data/r.csv"); err != nil {
		t.Fatalf("granted read: %v", err)
	}
	if err := pod.Put(bobID, "/data/r.csv", "text/csv", []byte("2"), podEpoch); !errors.Is(err, ErrForbidden) {
		t.Fatalf("bob write should be denied: %v", err)
	}
	if _, err := pod.Get(eveID, "/data/r.csv"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("eve read: %v", err)
	}
}

func TestPodACLInheritance(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/pub/a/b.txt", "text/plain", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	container := NewACL(aliceID, "/pub/")
	container.GrantPublic("world", "/pub/", true, ModeRead)
	if err := pod.SetACL(aliceID, "/pub/", container); err != nil {
		t.Fatal(err)
	}
	// Inherited through two levels.
	if _, err := pod.Get(bobID, "/pub/a/b.txt"); err != nil {
		t.Fatalf("inherited public read: %v", err)
	}
	// A resource-level ACL overrides the inherited one entirely.
	own := NewACL(aliceID, "/pub/a/b.txt")
	if err := pod.SetACL(aliceID, "/pub/a/b.txt", own); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(bobID, "/pub/a/b.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("resource ACL should override inherited grant: %v", err)
	}
}

func TestPodSetACLRequiresControl(t *testing.T) {
	pod := newTestPod()
	open := NewACL(aliceID, "/")
	open.Grant("bob-rw", []WebID{bobID}, "/doc.txt", false, ModeRead, ModeWrite)
	if err := pod.SetACL(aliceID, "/doc.txt", open); err != nil {
		t.Fatal(err)
	}
	// Bob has Read+Write but not Control: he cannot replace the ACL.
	hijack := NewACL(bobID, "/doc.txt")
	if err := pod.SetACL(bobID, "/doc.txt", hijack); !errors.Is(err, ErrForbidden) {
		t.Fatalf("ACL hijack: %v", err)
	}
	if _, err := pod.GetACL(bobID, "/doc.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("GetACL without control: %v", err)
	}
	if _, err := pod.GetACL(aliceID, "/doc.txt"); err != nil {
		t.Fatalf("owner GetACL: %v", err)
	}
	if _, err := pod.GetACL(aliceID, "/nowhere.txt"); !errors.Is(err, ErrNoACL) {
		t.Fatalf("missing ACL: %v", err)
	}
}

func TestPodList(t *testing.T) {
	pod := newTestPod()
	files := []string{"/a.txt", "/dir/b.txt", "/dir/c.txt", "/dir/sub/d.txt"}
	for _, f := range files {
		if err := pod.Put(aliceID, f, "text/plain", []byte("x"), podEpoch); err != nil {
			t.Fatal(err)
		}
	}
	root, err := pod.List(aliceID, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 2 || root[0] != "/a.txt" || root[1] != "/dir/" {
		t.Fatalf("root listing = %v", root)
	}
	dir, err := pod.List(aliceID, "/dir/")
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 3 {
		t.Fatalf("dir listing = %v", dir)
	}
	if _, err := pod.List(bobID, "/dir/"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("stranger listing: %v", err)
	}
}

func TestPodContainerListingTurtle(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/dir/x.txt", "text/plain", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	doc, err := pod.ContainerListing(aliceID, "/dir/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "ldp:contains") || !strings.Contains(doc, "x.txt") {
		t.Fatalf("listing:\n%s", doc)
	}
}

func TestPodPathValidation(t *testing.T) {
	pod := newTestPod()
	bad := []string{"", "relative.txt", "/../escape", "/a/../../etc"}
	for _, p := range bad {
		if err := pod.Put(aliceID, p, "text/plain", []byte("x"), podEpoch); !errors.Is(err, ErrBadPath) {
			t.Errorf("Put(%q) = %v, want ErrBadPath", p, err)
		}
	}
	// Path cleaning: "/a//b.txt" normalizes to "/a/b.txt".
	if err := pod.Put(aliceID, "/a//b.txt", "text/plain", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(aliceID, "/a/b.txt"); err != nil {
		t.Fatalf("normalized path not found: %v", err)
	}
}

func TestPodGetCopiesData(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/r", "text/plain", []byte("abc"), podEpoch); err != nil {
		t.Fatal(err)
	}
	res, err := pod.Get(aliceID, "/r")
	if err != nil {
		t.Fatal(err)
	}
	res.Data[0] = 'X'
	again, _ := pod.Get(aliceID, "/r")
	if string(again.Data) != "abc" {
		t.Fatal("Get returned a shared slice")
	}
}

func TestPodStats(t *testing.T) {
	pod := newTestPod()
	_ = pod.Put(aliceID, "/a", "t", []byte("12345"), podEpoch)
	_ = pod.Put(aliceID, "/b", "t", []byte("123"), podEpoch)
	n, bytes := pod.Stats()
	if n != 2 || bytes != 8 {
		t.Fatalf("Stats = (%d, %d), want (2, 8)", n, bytes)
	}
}

func TestAncestorsOf(t *testing.T) {
	got := ancestorsOf("/a/b/c.txt")
	want := []string{"/a/b/", "/a/", "/"}
	if len(got) != len(want) {
		t.Fatalf("ancestors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ancestors = %v, want %v", got, want)
		}
	}
	if got := ancestorsOf("/top.txt"); len(got) != 1 || got[0] != "/" {
		t.Fatalf("ancestors of top-level = %v", got)
	}
}

// --- ACL decision cache ---

// TestAuthCacheHitAndInvalidation: decisions are served from the cache
// and every mutation invalidates it immediately.
func TestAuthCacheHitAndInvalidation(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/data/r.csv", "text/csv", []byte("1"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if err := pod.Authorize(bobID, "/data/r.csv", ModeRead); !errors.Is(err, ErrForbidden) {
		t.Fatalf("pre-grant: %v", err)
	}
	// Grant via SetACL: the cached denial must not survive.
	acl := NewACL(aliceID, "/data/r.csv")
	acl.Grant("bob", []WebID{bobID}, "/data/r.csv", false, ModeRead)
	if err := pod.SetACL(aliceID, "/data/r.csv", acl); err != nil {
		t.Fatal(err)
	}
	if err := pod.Authorize(bobID, "/data/r.csv", ModeRead); err != nil {
		t.Fatalf("post-grant (stale cached denial?): %v", err)
	}
	// Revoke: the cached allow must not survive either.
	if err := pod.SetACL(aliceID, "/data/r.csv", NewACL(aliceID, "/data/r.csv")); err != nil {
		t.Fatal(err)
	}
	if err := pod.Authorize(bobID, "/data/r.csv", ModeRead); !errors.Is(err, ErrForbidden) {
		t.Fatalf("post-revoke (stale cached allow?): %v", err)
	}
}

// TestAuthCacheDisabled: decisions stay correct with the cache off.
func TestAuthCacheDisabled(t *testing.T) {
	pod := newTestPod()
	pod.SetAuthCacheEnabled(false)
	if err := pod.Put(aliceID, "/r", "t", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	for range 3 {
		if err := pod.Authorize(bobID, "/r", ModeRead); !errors.Is(err, ErrForbidden) {
			t.Fatalf("uncached denial: %v", err)
		}
	}
	pod.SetAuthCacheEnabled(true)
	if err := pod.Authorize(bobID, "/r", ModeRead); !errors.Is(err, ErrForbidden) {
		t.Fatalf("re-enabled: %v", err)
	}
}

// TestAuthCacheConcurrentMutation races Authorize against SetACL under
// -race, and checks the final state is the uncached truth.
func TestAuthCacheConcurrentMutation(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/a/b/c.txt", "t", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	grant := NewACL(aliceID, "/a/")
	grant.Grant("bob", []WebID{bobID}, "/a/", true, ModeRead)
	deny := NewACL(aliceID, "/a/")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range 200 {
			acl := grant
			if i%2 == 1 {
				acl = deny
			}
			if err := pod.SetACL(aliceID, "/a/", acl); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for range 200 {
		// Outcome depends on interleaving; it only must not race or panic.
		_ = pod.Authorize(bobID, "/a/b/c.txt", ModeRead)
	}
	<-done

	// Settled state: the last SetACL installed the deny document.
	if err := pod.Authorize(bobID, "/a/b/c.txt", ModeRead); !errors.Is(err, ErrForbidden) {
		t.Fatalf("settled decision: %v", err)
	}
}

// TestPodAppend covers the Append primitive directly.
func TestPodAppend(t *testing.T) {
	pod := newTestPod()
	p, created, err := pod.Append(aliceID, "/log.txt", "text/plain", []byte("a"), podEpoch)
	if err != nil || !created || p != "/log.txt" {
		t.Fatalf("create-by-append: %q %t %v", p, created, err)
	}
	p, created, err = pod.Append(aliceID, "/log.txt", "", []byte("b"), podEpoch)
	if err != nil || created || p != "/log.txt" {
		t.Fatalf("append: %q %t %v", p, created, err)
	}
	res, err := pod.Get(aliceID, "/log.txt")
	if err != nil || string(res.Data) != "ab" || res.ContentType != "text/plain" {
		t.Fatalf("after append: %+v, %v", res, err)
	}

	// Container POSTs mint distinct children.
	p1, _, err := pod.Append(aliceID, "/inbox/", "text/plain", []byte("1"), podEpoch)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := pod.Append(aliceID, "/inbox/", "text/plain", []byte("2"), podEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 || !strings.HasPrefix(p1, "/inbox/") {
		t.Fatalf("minted paths %q, %q", p1, p2)
	}
	// Append-only agents cannot Write.
	if _, _, err := pod.Append(bobID, "/inbox/", "t", []byte("x"), podEpoch); !errors.Is(err, ErrForbidden) {
		t.Fatalf("stranger append: %v", err)
	}
}

// TestPodETagTracksContent: the stored validator changes with the body.
func TestPodETagTracksContent(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/r", "t", []byte("v1"), podEpoch); err != nil {
		t.Fatal(err)
	}
	r1, _ := pod.Get(aliceID, "/r")
	if err := pod.Put(aliceID, "/r", "t", []byte("v2"), podEpoch); err != nil {
		t.Fatal(err)
	}
	r2, _ := pod.Get(aliceID, "/r")
	if r1.ETag == "" || r1.ETag == r2.ETag {
		t.Fatalf("etags %q, %q", r1.ETag, r2.ETag)
	}
	if r1.ETag != ETagFor([]byte("v1")) {
		t.Fatalf("etag mismatch: %q", r1.ETag)
	}
}
