package solid

import (
	"errors"
	"strings"
	"testing"
	"time"
)

var podEpoch = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

func newTestPod() *Pod {
	return NewPod(aliceID, "https://alice.pod")
}

func TestPodOwnerCRUD(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/web/browsing.csv", "text/csv", []byte("a,b"), podEpoch); err != nil {
		t.Fatal(err)
	}
	res, err := pod.Get(aliceID, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Data) != "a,b" || res.ContentType != "text/csv" {
		t.Fatalf("resource = %+v", res)
	}
	if err := pod.Delete(aliceID, "/web/browsing.csv"); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(aliceID, "/web/browsing.csv"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if err := pod.Delete(aliceID, "/web/browsing.csv"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestPodStrangerDenied(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/secret.txt", "text/plain", []byte("s"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(bobID, "/secret.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("stranger read: %v", err)
	}
	if err := pod.Put(bobID, "/attack.txt", "text/plain", []byte("x"), podEpoch); !errors.Is(err, ErrForbidden) {
		t.Fatalf("stranger write: %v", err)
	}
	if _, err := pod.Get("", "/secret.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("anonymous read: %v", err)
	}
}

func TestPodGrantThroughACL(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/data/r.csv", "text/csv", []byte("1"), podEpoch); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(aliceID, "/data/r.csv")
	acl.Grant("bob", []WebID{bobID}, "/data/r.csv", false, ModeRead)
	if err := pod.SetACL(aliceID, "/data/r.csv", acl); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(bobID, "/data/r.csv"); err != nil {
		t.Fatalf("granted read: %v", err)
	}
	if err := pod.Put(bobID, "/data/r.csv", "text/csv", []byte("2"), podEpoch); !errors.Is(err, ErrForbidden) {
		t.Fatalf("bob write should be denied: %v", err)
	}
	if _, err := pod.Get(eveID, "/data/r.csv"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("eve read: %v", err)
	}
}

func TestPodACLInheritance(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/pub/a/b.txt", "text/plain", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	container := NewACL(aliceID, "/pub/")
	container.GrantPublic("world", "/pub/", true, ModeRead)
	if err := pod.SetACL(aliceID, "/pub/", container); err != nil {
		t.Fatal(err)
	}
	// Inherited through two levels.
	if _, err := pod.Get(bobID, "/pub/a/b.txt"); err != nil {
		t.Fatalf("inherited public read: %v", err)
	}
	// A resource-level ACL overrides the inherited one entirely.
	own := NewACL(aliceID, "/pub/a/b.txt")
	if err := pod.SetACL(aliceID, "/pub/a/b.txt", own); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(bobID, "/pub/a/b.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("resource ACL should override inherited grant: %v", err)
	}
}

func TestPodSetACLRequiresControl(t *testing.T) {
	pod := newTestPod()
	open := NewACL(aliceID, "/")
	open.Grant("bob-rw", []WebID{bobID}, "/doc.txt", false, ModeRead, ModeWrite)
	if err := pod.SetACL(aliceID, "/doc.txt", open); err != nil {
		t.Fatal(err)
	}
	// Bob has Read+Write but not Control: he cannot replace the ACL.
	hijack := NewACL(bobID, "/doc.txt")
	if err := pod.SetACL(bobID, "/doc.txt", hijack); !errors.Is(err, ErrForbidden) {
		t.Fatalf("ACL hijack: %v", err)
	}
	if _, err := pod.GetACL(bobID, "/doc.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("GetACL without control: %v", err)
	}
	if _, err := pod.GetACL(aliceID, "/doc.txt"); err != nil {
		t.Fatalf("owner GetACL: %v", err)
	}
	if _, err := pod.GetACL(aliceID, "/nowhere.txt"); !errors.Is(err, ErrNoACL) {
		t.Fatalf("missing ACL: %v", err)
	}
}

func TestPodList(t *testing.T) {
	pod := newTestPod()
	files := []string{"/a.txt", "/dir/b.txt", "/dir/c.txt", "/dir/sub/d.txt"}
	for _, f := range files {
		if err := pod.Put(aliceID, f, "text/plain", []byte("x"), podEpoch); err != nil {
			t.Fatal(err)
		}
	}
	root, err := pod.List(aliceID, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 2 || root[0] != "/a.txt" || root[1] != "/dir/" {
		t.Fatalf("root listing = %v", root)
	}
	dir, err := pod.List(aliceID, "/dir/")
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 3 {
		t.Fatalf("dir listing = %v", dir)
	}
	if _, err := pod.List(bobID, "/dir/"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("stranger listing: %v", err)
	}
}

func TestPodContainerListingTurtle(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/dir/x.txt", "text/plain", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	doc, err := pod.ContainerListing(aliceID, "/dir/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "ldp:contains") || !strings.Contains(doc, "x.txt") {
		t.Fatalf("listing:\n%s", doc)
	}
}

func TestPodPathValidation(t *testing.T) {
	pod := newTestPod()
	bad := []string{"", "relative.txt", "/../escape", "/a/../../etc"}
	for _, p := range bad {
		if err := pod.Put(aliceID, p, "text/plain", []byte("x"), podEpoch); !errors.Is(err, ErrBadPath) {
			t.Errorf("Put(%q) = %v, want ErrBadPath", p, err)
		}
	}
	// Path cleaning: "/a//b.txt" normalizes to "/a/b.txt".
	if err := pod.Put(aliceID, "/a//b.txt", "text/plain", []byte("x"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(aliceID, "/a/b.txt"); err != nil {
		t.Fatalf("normalized path not found: %v", err)
	}
}

func TestPodGetCopiesData(t *testing.T) {
	pod := newTestPod()
	if err := pod.Put(aliceID, "/r", "text/plain", []byte("abc"), podEpoch); err != nil {
		t.Fatal(err)
	}
	res, err := pod.Get(aliceID, "/r")
	if err != nil {
		t.Fatal(err)
	}
	res.Data[0] = 'X'
	again, _ := pod.Get(aliceID, "/r")
	if string(again.Data) != "abc" {
		t.Fatal("Get returned a shared slice")
	}
}

func TestPodStats(t *testing.T) {
	pod := newTestPod()
	_ = pod.Put(aliceID, "/a", "t", []byte("12345"), podEpoch)
	_ = pod.Put(aliceID, "/b", "t", []byte("123"), podEpoch)
	n, bytes := pod.Stats()
	if n != 2 || bytes != 8 {
		t.Fatalf("Stats = (%d, %d), want (2, 8)", n, bytes)
	}
}

func TestAncestorsOf(t *testing.T) {
	got := ancestorsOf("/a/b/c.txt")
	want := []string{"/a/b/", "/a/", "/"}
	if len(got) != len(want) {
		t.Fatalf("ancestors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ancestors = %v, want %v", got, want)
		}
	}
	if got := ancestorsOf("/top.txt"); len(got) != 1 || got[0] != "/" {
		t.Fatalf("ancestors of top-level = %v", got)
	}
}
