package solid

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/rdf"
	"repro/internal/simclock"
)

func TestProfileRoundTrip(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	doc := ProfileTurtle(aliceID, key.PublicBytes())
	g, err := rdf.ParseTurtle(doc)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, doc)
	}
	got, err := KeyFromProfile(g, aliceID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(key.PublicBytes()) {
		t.Fatal("key lost in profile round trip")
	}
	if _, err := KeyFromProfile(g, bobID); err == nil {
		t.Fatal("profile leaked a key for another agent")
	}
	if !strings.Contains(doc, "foaf:Person") {
		t.Fatalf("profile doc:\n%s", doc)
	}
}

// TestWebDirectoryDereferencesProfile hosts a WebID profile in a pod and
// authenticates the agent against a second pod purely via HTTP
// dereferencing — no out-of-band key registration.
func TestWebDirectoryDereferencesProfile(t *testing.T) {
	clk := simclock.NewSim(podEpoch)

	// Bob hosts his profile on his own pod, publicly readable.
	bobKey := cryptoutil.MustGenerateKey()
	var bobWebID WebID
	bobPodDir := NewMapDirectory()
	var bobPod *Pod
	bobSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		NewServer(bobPod, bobPodDir, clk, nil).ServeHTTP(w, r)
	}))
	defer bobSrv.Close()
	bobWebID = WebID(bobSrv.URL + "/profile#me")
	bobPod = NewPod(bobWebID, bobSrv.URL)
	if err := bobPod.Put(bobWebID, "/profile", "text/turtle",
		[]byte(ProfileTurtle(bobWebID, bobKey.PublicBytes())), podEpoch); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(bobWebID, "/profile")
	acl.GrantPublic("public-profile", "/profile", false, ModeRead)
	if err := bobPod.SetACL(bobWebID, "/profile", acl); err != nil {
		t.Fatal(err)
	}

	// Alice's pod authenticates agents by dereferencing their WebIDs.
	webDir := NewWebDirectory(nil)
	alicePod := NewPod(aliceID, "https://alice.pod")
	if err := alicePod.Put(aliceID, "/shared.txt", "text/plain", []byte("hi bob"), podEpoch); err != nil {
		t.Fatal(err)
	}
	shareACL := NewACL(aliceID, "/shared.txt")
	shareACL.Grant("bob", []WebID{bobWebID}, "/shared.txt", false, ModeRead)
	if err := alicePod.SetACL(aliceID, "/shared.txt", shareACL); err != nil {
		t.Fatal(err)
	}
	aliceSrv := httptest.NewServer(NewServer(alicePod, webDir, clk, nil))
	defer aliceSrv.Close()

	// Bob authenticates to Alice's pod with his key; the server fetches
	// his profile from his pod to verify it.
	bob := NewClient(bobWebID, bobKey, clk)
	data, _, err := bob.Get(aliceSrv.URL + "/shared.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hi bob" {
		t.Fatalf("data = %q", data)
	}

	// An impostor claiming Bob's WebID with a different key fails.
	eve := NewClient(bobWebID, cryptoutil.MustGenerateKey(), clk)
	if _, _, err := eve.Get(aliceSrv.URL + "/shared.txt"); err == nil {
		t.Fatal("impostor authenticated via web directory")
	}
}

func TestWebDirectoryCachesAndInvalidates(t *testing.T) {
	key := cryptoutil.MustGenerateKey()
	var hits atomic.Int32
	var webID WebID
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte(ProfileTurtle(webID, key.PublicBytes())))
	}))
	defer srv.Close()
	webID = WebID(srv.URL + "/profile#me")

	dir := NewWebDirectory(nil)
	if _, ok := dir.KeyFor(webID); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := dir.KeyFor(webID); !ok {
		t.Fatal("second lookup failed")
	}
	if hits.Load() != 1 {
		t.Fatalf("profile fetched %d times, want 1 (cache miss only)", hits.Load())
	}
	dir.Invalidate(webID)
	if _, ok := dir.KeyFor(webID); !ok {
		t.Fatal("post-invalidation lookup failed")
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
}

func TestWebDirectoryFailureModes(t *testing.T) {
	dir := NewWebDirectory(nil)

	t.Run("unreachable host", func(t *testing.T) {
		if _, ok := dir.KeyFor("http://127.0.0.1:1/profile#me"); ok {
			t.Fatal("unreachable profile resolved")
		}
	})
	t.Run("non-200", func(t *testing.T) {
		srv := httptest.NewServer(http.NotFoundHandler())
		defer srv.Close()
		if _, ok := dir.KeyFor(WebID(srv.URL + "/profile#me")); ok {
			t.Fatal("404 profile resolved")
		}
	})
	t.Run("non-turtle body", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("<html>not turtle</html>"))
		}))
		defer srv.Close()
		if _, ok := dir.KeyFor(WebID(srv.URL + "/profile#me")); ok {
			t.Fatal("HTML profile resolved")
		}
	})
	t.Run("profile without key", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n<#me> a foaf:Person .\n"))
		}))
		defer srv.Close()
		if _, ok := dir.KeyFor(WebID(srv.URL + "/profile#me")); ok {
			t.Fatal("keyless profile resolved")
		}
	})
}
