package solid

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sendTruncated writes a request whose Content-Length promises more
// bytes than are sent, then half-closes the connection so the server
// observes an unexpected EOF mid-body. Returns the response status.
func sendTruncated(t *testing.T, serverURL, method, path string) int {
	t.Helper()
	addr := strings.TrimPrefix(serverURL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	fmt.Fprintf(conn, "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Type: text/plain\r\nContent-Length: 1000\r\n\r\n", method, path, addr)
	fmt.Fprint(conn, "only ten b") // 10 of the promised 1000 bytes
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("read response to truncated %s: %v", method, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServerTruncatedBody: a body cut short of its declared
// Content-Length must be refused as a client error — never stored
// partially, never treated as a complete resource.
func TestServerTruncatedBody(t *testing.T) {
	owner := WebID("https://owner.example/profile#me")
	pod := NewPod(owner, "https://owner.pod")
	// Open the door as far as WAC allows so the failure is attributable
	// to the truncated body, not authorization.
	acl := NewACL(owner, "/")
	acl.GrantPublic("world", "/", true, ModeRead, ModeWrite, ModeAppend)
	if err := pod.SetACL(owner, "/", acl); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(pod, NewMapDirectory(), nil, nil))
	defer srv.Close()

	for _, method := range []string{http.MethodPut, http.MethodPost} {
		if got := sendTruncated(t, srv.URL, method, "/inbox/doc.txt"); got != http.StatusBadRequest {
			t.Errorf("truncated %s = %d, want 400", method, got)
		}
	}
	// Nothing may have been stored from the partial upload.
	if _, err := pod.Get(owner, "/inbox/doc.txt"); err == nil {
		t.Fatal("truncated upload left a stored resource behind")
	}
	if count, _ := pod.Stats(); count != 0 {
		t.Fatalf("truncated uploads left %d resources", count)
	}
}
