package solid

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/store"
)

// Binary codec for the pod durability records (op log entries and pod
// snapshots), built on the store package's primitives: varint lengths
// and raw resource bytes (the JSON era base64-inflated every resource
// body by 4/3). ACL documents are small structured values with no bulk
// payload, so they are embedded as length-prefixed JSON blobs — the
// hot bytes (resource data) stay raw.
//
// Legacy JSON records always start with '{' (never a binary tag), so
// decoders route through store.IsLegacyJSON and PR 4-era pod dirs keep
// recovering; a log may hold a JSON prefix and a binary tail.
const (
	// tagPodOp opens a pod op-log record.
	tagPodOp byte = 0x11
	// tagPodSnapshot opens a pod snapshot payload.
	tagPodSnapshot byte = 0x12
)

// podOp.Kind values and their wire encoding.
const (
	podOpPut = "put"
	podOpDel = "del"
	podOpACL = "acl"
)

func podOpKindByte(kind string) (byte, error) {
	switch kind {
	case podOpPut:
		return 1, nil
	case podOpDel:
		return 2, nil
	case podOpACL:
		return 3, nil
	}
	return 0, fmt.Errorf("solid: unknown pod op kind %q", kind)
}

func podOpKindString(b byte) (string, error) {
	switch b {
	case 1:
		return podOpPut, nil
	case 2:
		return podOpDel, nil
	case 3:
		return podOpACL, nil
	}
	return "", fmt.Errorf("solid: unknown pod op kind byte 0x%02x", b)
}

// encodePodOp encodes one logged mutation effect.
func encodePodOp(op *podOp) ([]byte, error) {
	kind, err := podOpKindByte(op.Kind)
	if err != nil {
		return nil, err
	}
	dst := make([]byte, 0, 64+len(op.Path)+len(op.ContentType)+len(op.Data))
	dst = append(dst, tagPodOp, kind)
	dst = store.AppendString(dst, op.Path)
	dst = store.AppendString(dst, op.ContentType)
	dst = store.AppendBytes(dst, op.Data)
	dst, err = store.AppendTime(dst, op.Modified)
	if err != nil {
		return nil, err
	}
	dst = store.AppendUvarint(dst, op.PostSeq)
	return appendACLBlob(dst, op.ACL)
}

// decodePodOp decodes an op-log payload in either format.
func decodePodOp(payload []byte) (podOp, error) {
	var op podOp
	if store.IsLegacyJSON(payload) {
		if err := json.Unmarshal(payload, &op); err != nil {
			return op, fmt.Errorf("solid: legacy pod op: %w", err)
		}
		if _, err := podOpKindByte(op.Kind); err != nil {
			return op, err
		}
		return op, nil
	}
	if len(payload) < 2 || payload[0] != tagPodOp {
		return op, fmt.Errorf("solid: not a pod op record")
	}
	kind, err := podOpKindString(payload[1])
	if err != nil {
		return op, err
	}
	op.Kind = kind
	d := store.NewDec(payload[2:])
	op.Path = d.String()
	op.ContentType = d.String()
	op.Data = d.Bytes()
	op.Modified = d.Time()
	op.PostSeq = d.Uvarint()
	op.ACL, err = decodeACLBlob(d)
	if err != nil {
		return op, err
	}
	if err := d.Finish(); err != nil {
		return op, err
	}
	return op, nil
}

// encodePodSnapshot encodes a full pod dump deterministically
// (resources and ACLs sorted by path).
func encodePodSnapshot(snap *podSnapshot) ([]byte, error) {
	size := 64
	for _, r := range snap.Resources {
		size += 64 + len(r.Path) + len(r.ContentType) + len(r.Data)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, tagPodSnapshot)
	dst = store.AppendUvarint(dst, snap.Ops)
	dst = store.AppendUvarint(dst, snap.PostSeq)
	dst = store.AppendUvarint(dst, snap.ACLGen)

	resources := append([]*Resource(nil), snap.Resources...)
	sort.Slice(resources, func(i, j int) bool { return resources[i].Path < resources[j].Path })
	dst = store.AppendUvarint(dst, uint64(len(resources)))
	var err error
	for _, r := range resources {
		dst = store.AppendString(dst, r.Path)
		dst = store.AppendString(dst, r.ContentType)
		dst = store.AppendBytes(dst, r.Data)
		if dst, err = store.AppendTime(dst, r.Modified); err != nil {
			return nil, err
		}
	}

	paths := make([]string, 0, len(snap.ACLs))
	for path := range snap.ACLs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	dst = store.AppendUvarint(dst, uint64(len(paths)))
	for _, path := range paths {
		dst = store.AppendString(dst, path)
		if dst, err = appendACLBlob(dst, snap.ACLs[path]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// decodePodSnapshot decodes a snapshot payload in either format.
// Resource ETags are not stored: they are recomputed from the data
// bytes, exactly as the pod does on every write.
func decodePodSnapshot(payload []byte) (*podSnapshot, error) {
	if store.IsLegacyJSON(payload) {
		var snap podSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("solid: legacy pod snapshot: %w", err)
		}
		return &snap, nil
	}
	if len(payload) == 0 || payload[0] != tagPodSnapshot {
		return nil, fmt.Errorf("solid: not a pod snapshot payload")
	}
	d := store.NewDec(payload[1:])
	snap := &podSnapshot{
		Ops:     d.Uvarint(),
		PostSeq: d.Uvarint(),
		ACLGen:  d.Uvarint(),
	}
	resCount := d.Count("resources", uint64(len(payload)))
	for range resCount {
		r := &Resource{
			Path:        d.String(),
			ContentType: d.String(),
			Data:        d.Bytes(),
			Modified:    d.Time(),
		}
		if d.Err() != nil {
			break
		}
		r.ETag = ETagFor(r.Data)
		snap.Resources = append(snap.Resources, r)
	}
	aclCount := d.Count("ACLs", uint64(len(payload)))
	snap.ACLs = make(map[string]*ACL, min(aclCount, store.DecodeCapHint))
	for range aclCount {
		path := d.String()
		acl, err := decodeACLBlob(d)
		if err != nil {
			return nil, err
		}
		if d.Err() != nil {
			break
		}
		snap.ACLs[path] = acl
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return snap, nil
}

// appendACLBlob embeds an ACL document as a length-prefixed JSON blob
// (empty blob = no ACL).
func appendACLBlob(dst []byte, acl *ACL) ([]byte, error) {
	if acl == nil {
		return store.AppendBytes(dst, nil), nil
	}
	blob, err := json.Marshal(acl)
	if err != nil {
		return nil, fmt.Errorf("solid: encode ACL: %w", err)
	}
	return store.AppendBytes(dst, blob), nil
}

// decodeACLBlob reads an ACL embedded by appendACLBlob.
func decodeACLBlob(d *store.Dec) (*ACL, error) {
	blob := d.Bytes()
	if len(blob) == 0 {
		return nil, nil
	}
	acl := &ACL{}
	if err := json.Unmarshal(blob, acl); err != nil {
		return nil, fmt.Errorf("solid: decode ACL: %w", err)
	}
	return acl, nil
}
