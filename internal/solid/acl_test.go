package solid

import (
	"strings"
	"testing"
)

const (
	aliceID = WebID("https://alice.pod/profile#me")
	bobID   = WebID("https://bob.pod/profile#me")
	eveID   = WebID("https://eve.pod/profile#me")
	podBase = "https://alice.pod"
)

func TestNewACLOwnerControl(t *testing.T) {
	acl := NewACL(aliceID, "/")
	for _, mode := range []AccessMode{ModeRead, ModeWrite, ModeControl} {
		if !acl.Allows(aliceID, "/", mode, false) {
			t.Errorf("owner lacks %s on /", mode)
		}
		if !acl.Allows(aliceID, "/deep/child.txt", mode, true) {
			t.Errorf("owner lacks inherited %s", mode)
		}
	}
	if acl.Allows(bobID, "/", ModeRead, false) {
		t.Error("stranger allowed by owner ACL")
	}
}

func TestACLGrantSpecificAgent(t *testing.T) {
	acl := NewACL(aliceID, "/data/r.csv")
	acl.Grant("bob-read", []WebID{bobID}, "/data/r.csv", false, ModeRead)

	if !acl.Allows(bobID, "/data/r.csv", ModeRead, false) {
		t.Error("granted agent denied")
	}
	if acl.Allows(bobID, "/data/r.csv", ModeWrite, false) {
		t.Error("agent got an ungranted mode")
	}
	if acl.Allows(bobID, "/data/other.csv", ModeRead, false) {
		t.Error("grant leaked to another resource")
	}
	if acl.Allows(eveID, "/data/r.csv", ModeRead, false) {
		t.Error("ungranted agent allowed")
	}
	// Non-default grants do not apply when inherited.
	if acl.Allows(bobID, "/data/r.csv/sub", ModeRead, true) {
		t.Error("non-default authorization applied as inherited")
	}
}

func TestACLPublicGrant(t *testing.T) {
	acl := NewACL(aliceID, "/pub/")
	acl.GrantPublic("world", "/pub/", true, ModeRead)

	if !acl.Allows(bobID, "/pub/x", ModeRead, true) {
		t.Error("public inherited read denied")
	}
	if !acl.Allows(eveID, "/pub/", ModeRead, false) {
		t.Error("public direct read denied")
	}
	if acl.Allows(bobID, "/pub/x", ModeWrite, true) {
		t.Error("public write allowed but never granted")
	}
	// Anonymous agents (empty WebID) get public access too... but only via
	// Public, never via agent lists.
	if !acl.Allows("", "/pub/x", ModeRead, true) {
		t.Error("anonymous denied on public resource")
	}
}

func TestACLAnonymousNeverMatchesAgentList(t *testing.T) {
	acl := &ACL{Authorizations: []Authorization{{
		ID: "weird", Agents: []WebID{""}, AccessTo: "/r", Modes: []AccessMode{ModeRead},
	}}}
	if acl.Allows("", "/r", ModeRead, false) {
		t.Error("empty WebID matched an agent list entry")
	}
}

func TestACLTurtleRoundTrip(t *testing.T) {
	acl := NewACL(aliceID, "/")
	acl.Grant("bob-read", []WebID{bobID}, "/web/browsing.csv", false, ModeRead, ModeAppend)
	acl.GrantPublic("world", "/pub/", true, ModeRead)

	doc := acl.EncodeTurtle(podBase)
	back, err := DecodeACLTurtle(doc, podBase)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, doc)
	}
	if len(back.Authorizations) != 3 {
		t.Fatalf("authorizations = %d, want 3\n%s", len(back.Authorizations), doc)
	}
	// Decisions survive the round trip.
	cases := []struct {
		agent     WebID
		path      string
		mode      AccessMode
		inherited bool
		want      bool
	}{
		{aliceID, "/", ModeControl, false, true},
		{bobID, "/web/browsing.csv", ModeRead, false, true},
		{bobID, "/web/browsing.csv", ModeAppend, false, true},
		{bobID, "/web/browsing.csv", ModeWrite, false, false},
		{eveID, "/pub/anything", ModeRead, true, true},
		{eveID, "/web/browsing.csv", ModeRead, false, false},
	}
	for _, c := range cases {
		if got := back.Allows(c.agent, c.path, c.mode, c.inherited); got != c.want {
			t.Errorf("Allows(%s, %s, %s, %t) = %t, want %t",
				c.agent, c.path, c.mode, c.inherited, got, c.want)
		}
	}
	if !strings.Contains(doc, "acl:Authorization") {
		t.Errorf("doc lacks prefixed vocabulary:\n%s", doc)
	}
}

func TestDecodeACLTurtleErrors(t *testing.T) {
	if _, err := DecodeACLTurtle("not turtle [", podBase); err == nil {
		t.Fatal("garbage accepted")
	}
	// Authorization without accessTo.
	doc := `
@prefix acl: <http://www.w3.org/ns/auth/acl#> .
<https://pod.local/acl#x> a acl:Authorization ; acl:mode acl:Read .
`
	if _, err := DecodeACLTurtle(doc, podBase); err == nil {
		t.Fatal("authorization without accessTo accepted")
	}
	// Unknown mode.
	doc2 := `
@prefix acl: <http://www.w3.org/ns/auth/acl#> .
<https://pod.local/acl#x> a acl:Authorization ;
  acl:accessTo <https://alice.pod/r> ; acl:mode acl:Fly .
`
	if _, err := DecodeACLTurtle(doc2, podBase); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
