package solid

import (
	"errors"
	"strings"
	"testing"
)

const (
	aliceID = WebID("https://alice.pod/profile#me")
	bobID   = WebID("https://bob.pod/profile#me")
	eveID   = WebID("https://eve.pod/profile#me")
	podBase = "https://alice.pod"
)

func TestNewACLOwnerControl(t *testing.T) {
	acl := NewACL(aliceID, "/")
	for _, mode := range []AccessMode{ModeRead, ModeWrite, ModeControl} {
		if !acl.Allows(aliceID, "/", mode, false) {
			t.Errorf("owner lacks %s on /", mode)
		}
		if !acl.Allows(aliceID, "/deep/child.txt", mode, true) {
			t.Errorf("owner lacks inherited %s", mode)
		}
	}
	if acl.Allows(bobID, "/", ModeRead, false) {
		t.Error("stranger allowed by owner ACL")
	}
}

func TestACLGrantSpecificAgent(t *testing.T) {
	acl := NewACL(aliceID, "/data/r.csv")
	acl.Grant("bob-read", []WebID{bobID}, "/data/r.csv", false, ModeRead)

	if !acl.Allows(bobID, "/data/r.csv", ModeRead, false) {
		t.Error("granted agent denied")
	}
	if acl.Allows(bobID, "/data/r.csv", ModeWrite, false) {
		t.Error("agent got an ungranted mode")
	}
	if acl.Allows(bobID, "/data/other.csv", ModeRead, false) {
		t.Error("grant leaked to another resource")
	}
	if acl.Allows(eveID, "/data/r.csv", ModeRead, false) {
		t.Error("ungranted agent allowed")
	}
	// Non-default grants do not apply when inherited.
	if acl.Allows(bobID, "/data/r.csv/sub", ModeRead, true) {
		t.Error("non-default authorization applied as inherited")
	}
}

func TestACLPublicGrant(t *testing.T) {
	acl := NewACL(aliceID, "/pub/")
	acl.GrantPublic("world", "/pub/", true, ModeRead)

	if !acl.Allows(bobID, "/pub/x", ModeRead, true) {
		t.Error("public inherited read denied")
	}
	if !acl.Allows(eveID, "/pub/", ModeRead, false) {
		t.Error("public direct read denied")
	}
	if acl.Allows(bobID, "/pub/x", ModeWrite, true) {
		t.Error("public write allowed but never granted")
	}
	// Anonymous agents (empty WebID) get public access too... but only via
	// Public, never via agent lists.
	if !acl.Allows("", "/pub/x", ModeRead, true) {
		t.Error("anonymous denied on public resource")
	}
}

func TestACLAnonymousNeverMatchesAgentList(t *testing.T) {
	acl := &ACL{Authorizations: []Authorization{{
		ID: "weird", Agents: []WebID{""}, AccessTo: "/r", Modes: []AccessMode{ModeRead},
	}}}
	if acl.Allows("", "/r", ModeRead, false) {
		t.Error("empty WebID matched an agent list entry")
	}
}

func TestACLTurtleRoundTrip(t *testing.T) {
	acl := NewACL(aliceID, "/")
	acl.Grant("bob-read", []WebID{bobID}, "/web/browsing.csv", false, ModeRead, ModeAppend)
	acl.GrantPublic("world", "/pub/", true, ModeRead)

	doc := acl.EncodeTurtle(podBase)
	back, err := DecodeACLTurtle(doc, podBase)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, doc)
	}
	if len(back.Authorizations) != 3 {
		t.Fatalf("authorizations = %d, want 3\n%s", len(back.Authorizations), doc)
	}
	// Decisions survive the round trip.
	cases := []struct {
		agent     WebID
		path      string
		mode      AccessMode
		inherited bool
		want      bool
	}{
		{aliceID, "/", ModeControl, false, true},
		{bobID, "/web/browsing.csv", ModeRead, false, true},
		{bobID, "/web/browsing.csv", ModeAppend, false, true},
		{bobID, "/web/browsing.csv", ModeWrite, false, false},
		{eveID, "/pub/anything", ModeRead, true, true},
		{eveID, "/web/browsing.csv", ModeRead, false, false},
	}
	for _, c := range cases {
		if got := back.Allows(c.agent, c.path, c.mode, c.inherited); got != c.want {
			t.Errorf("Allows(%s, %s, %s, %t) = %t, want %t",
				c.agent, c.path, c.mode, c.inherited, got, c.want)
		}
	}
	if !strings.Contains(doc, "acl:Authorization") {
		t.Errorf("doc lacks prefixed vocabulary:\n%s", doc)
	}
}

func TestDecodeACLTurtleErrors(t *testing.T) {
	if _, err := DecodeACLTurtle("not turtle [", podBase); err == nil {
		t.Fatal("garbage accepted")
	}
	// Authorization without accessTo.
	doc := `
@prefix acl: <http://www.w3.org/ns/auth/acl#> .
<https://pod.local/acl#x> a acl:Authorization ; acl:mode acl:Read .
`
	if _, err := DecodeACLTurtle(doc, podBase); err == nil {
		t.Fatal("authorization without accessTo accepted")
	}
	// Unknown mode.
	doc2 := `
@prefix acl: <http://www.w3.org/ns/auth/acl#> .
<https://pod.local/acl#x> a acl:Authorization ;
  acl:accessTo <https://alice.pod/r> ; acl:mode acl:Fly .
`
	if _, err := DecodeACLTurtle(doc2, podBase); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestACLDefaultScopedToTarget pins the WAC inheritance fix: an
// acl:default authorization grants only on resources contained in its
// stated target, not on every descendant of wherever the document was
// found.
func TestACLDefaultScopedToTarget(t *testing.T) {
	acl := NewACL(aliceID, "/")
	// A default grant whose target is /b/: it must not reach /a/x even
	// when the document is consulted for /a/x via the ancestor walk.
	acl.Grant("bob-b", []WebID{bobID}, "/b/", true, ModeRead)

	if !acl.Allows(bobID, "/b/x", ModeRead, true) {
		t.Error("default grant denied inside its own target")
	}
	if !acl.Allows(bobID, "/b/deep/nested.txt", ModeRead, true) {
		t.Error("default grant denied on deep descendant of its target")
	}
	if acl.Allows(bobID, "/a/x", ModeRead, true) {
		t.Error("default grant on /b/ leaked to /a/x")
	}
	if acl.Allows(bobID, "/bx", ModeRead, true) {
		t.Error("default grant on /b/ leaked to sibling /bx (prefix confusion)")
	}
}

// TestACLDefaultScopedToTargetThroughPod exercises the same fix end to
// end through Pod.Authorize.
func TestACLDefaultScopedToTargetThroughPod(t *testing.T) {
	pod := NewPod(aliceID, "https://alice.pod")
	root := NewACL(aliceID, "/")
	root.Grant("bob-b", []WebID{bobID}, "/b/", true, ModeRead)
	if err := pod.SetACL(aliceID, "/", root); err != nil {
		t.Fatal(err)
	}
	if err := pod.Put(aliceID, "/a/secret.txt", "text/plain", []byte("s"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if err := pod.Put(aliceID, "/b/open.txt", "text/plain", []byte("o"), podEpoch); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Get(bobID, "/b/open.txt"); err != nil {
		t.Fatalf("read inside default target: %v", err)
	}
	if _, err := pod.Get(bobID, "/a/secret.txt"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("default grant on /b/ must not open /a/: %v", err)
	}
}

// TestACLWriteImpliesAppend pins the mode subsumption added with POST
// support.
func TestACLWriteImpliesAppend(t *testing.T) {
	acl := NewACL(aliceID, "/r")
	acl.Grant("bob-write", []WebID{bobID}, "/r", false, ModeWrite)
	acl.Grant("eve-append", []WebID{eveID}, "/r", false, ModeAppend)

	if !acl.Allows(bobID, "/r", ModeAppend, false) {
		t.Error("Write grant does not satisfy Append")
	}
	if acl.Allows(eveID, "/r", ModeWrite, false) {
		t.Error("Append grant satisfied Write")
	}
}

// TestACLFromGraphRejectsForeignBase pins the parsing fix: an accessTo
// IRI outside the pod base used to be stored verbatim as a "path".
func TestACLFromGraphRejectsForeignBase(t *testing.T) {
	doc := `
@prefix acl: <http://www.w3.org/ns/auth/acl#> .
<https://pod.local/acl#x> a acl:Authorization ;
  acl:accessTo <https://other.pod/r> ; acl:mode acl:Read .
`
	if _, err := DecodeACLTurtle(doc, podBase); err == nil {
		t.Fatal("foreign accessTo IRI accepted")
	}
	// The pod base itself (no path) is also not a resource path.
	doc2 := `
@prefix acl: <http://www.w3.org/ns/auth/acl#> .
<https://pod.local/acl#x> a acl:Authorization ;
  acl:accessTo <https://alice.pod> ; acl:mode acl:Read .
`
	if _, err := DecodeACLTurtle(doc2, podBase); err == nil {
		t.Fatal("pathless accessTo IRI accepted")
	}
}
