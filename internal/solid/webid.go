package solid

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/rdf"
)

// WebID profile documents. In Solid, an agent's identity is a
// dereferenceable IRI: fetching it yields an RDF document describing the
// agent, including its public key material. ProfileGraph builds such a
// document; WebDirectory is an AgentDirectory that authenticates agents
// by dereferencing their WebIDs over HTTP — the production counterpart of
// the in-memory MapDirectory.

// Security vocabulary subset for key publication.
const (
	secPublicKeyHex = "https://w3id.org/security#publicKeyHex"
	foafPersonIRI   = "http://xmlns.com/foaf/0.1/Person"
)

// ProfileGraph renders a minimal WebID profile: the agent is a
// foaf:Person carrying its ECDSA public key as a hex literal.
func ProfileGraph(webID WebID, publicKey []byte) *rdf.Graph {
	g := rdf.NewGraph()
	me := rdf.IRI(string(webID))
	g.Add(rdf.T(me, rdf.IRI(rdf.RDFType), rdf.IRI(foafPersonIRI)))
	g.Add(rdf.T(me, rdf.IRI(secPublicKeyHex), rdf.Literal(hex.EncodeToString(publicKey))))
	return g
}

// ProfileTurtle renders the profile as a Turtle document.
func ProfileTurtle(webID WebID, publicKey []byte) string {
	return rdf.SerializeTurtle(ProfileGraph(webID, publicKey), map[string]string{
		"foaf": "http://xmlns.com/foaf/0.1/",
		"sec":  "https://w3id.org/security#",
	})
}

// ErrNoProfileKey reports a profile without usable key material.
var ErrNoProfileKey = errors.New("solid: profile lacks a public key")

// KeyFromProfile extracts the agent's public key from a profile graph.
func KeyFromProfile(g *rdf.Graph, webID WebID) ([]byte, error) {
	obj := g.FirstObject(rdf.IRI(string(webID)), rdf.IRI(secPublicKeyHex))
	if obj.IsZero() {
		return nil, fmt.Errorf("%w: %s", ErrNoProfileKey, webID)
	}
	key, err := hex.DecodeString(obj.Value())
	if err != nil {
		return nil, fmt.Errorf("solid: profile key of %s: %w", webID, err)
	}
	return key, nil
}

// WebDirectory resolves agent keys by dereferencing WebID profile
// documents over HTTP, caching successful lookups. It implements
// AgentDirectory for servers whose counterparties host real profiles.
type WebDirectory struct {
	// HTTP is the client used for dereferencing (http.DefaultClient if
	// nil).
	HTTP *http.Client

	mu    sync.Mutex
	cache map[WebID][]byte
}

var _ AgentDirectory = (*WebDirectory)(nil)

// NewWebDirectory returns an empty dereferencing directory.
func NewWebDirectory(client *http.Client) *WebDirectory {
	return &WebDirectory{HTTP: client, cache: make(map[WebID][]byte)}
}

// KeyFor implements AgentDirectory: it fetches the WebID document (the
// IRI without its fragment), parses it as Turtle, and extracts the
// agent's published key. Failures report the agent as unknown.
func (d *WebDirectory) KeyFor(agent WebID) ([]byte, bool) {
	d.mu.Lock()
	if k, ok := d.cache[agent]; ok {
		d.mu.Unlock()
		return k, true
	}
	d.mu.Unlock()

	docURL := string(agent)
	if i := strings.IndexByte(docURL, '#'); i >= 0 {
		docURL = docURL[:i]
	}
	client := d.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(docURL)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, false
	}
	g, err := rdf.ParseTurtle(string(body))
	if err != nil {
		return nil, false
	}
	key, err := KeyFromProfile(g, agent)
	if err != nil {
		return nil, false
	}
	d.mu.Lock()
	d.cache[agent] = key
	d.mu.Unlock()
	return key, true
}

// Invalidate drops a cached key (e.g. after rotation).
func (d *WebDirectory) Invalidate(agent WebID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.cache, agent)
}
