package solid

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// WebID identifies an agent (e.g. "https://alice.pod/profile#me").
type WebID string

// AccessMode is a WAC access mode.
type AccessMode string

// The four WAC modes.
const (
	ModeRead    AccessMode = "Read"
	ModeWrite   AccessMode = "Write"
	ModeAppend  AccessMode = "Append"
	ModeControl AccessMode = "Control"
)

// modeIRI maps a mode to its vocabulary IRI.
func modeIRI(m AccessMode) rdf.Term {
	return rdf.IRI("http://www.w3.org/ns/auth/acl#" + string(m))
}

// Authorization is one WAC authorization: a set of agents (or the public)
// granted modes on a resource, optionally inherited by contained
// resources via default.
type Authorization struct {
	// ID names the authorization node within its document (fragment).
	ID string
	// Agents are the WebIDs granted access.
	Agents []WebID
	// Public grants access to every agent (acl:agentClass foaf:Agent).
	Public bool
	// AccessTo is the resource path the authorization applies to.
	AccessTo string
	// Default marks the authorization as inherited by resources contained
	// in AccessTo (which must be a container).
	Default bool
	// Modes are the granted access modes.
	Modes []AccessMode
}

// ACL is a parsed access control document.
type ACL struct {
	// Authorizations lists the document's authorization nodes.
	Authorizations []Authorization
}

// NewACL builds an ACL granting the owner full control of resourcePath.
// Additional authorizations can be appended.
func NewACL(owner WebID, resourcePath string) *ACL {
	return &ACL{Authorizations: []Authorization{{
		ID:       "owner",
		Agents:   []WebID{owner},
		AccessTo: resourcePath,
		Default:  true,
		Modes:    []AccessMode{ModeRead, ModeWrite, ModeControl},
	}}}
}

// Grant appends an authorization for the given agents.
func (a *ACL) Grant(id string, agents []WebID, resourcePath string, asDefault bool, modes ...AccessMode) {
	a.Authorizations = append(a.Authorizations, Authorization{
		ID:       id,
		Agents:   agents,
		AccessTo: resourcePath,
		Default:  asDefault,
		Modes:    modes,
	})
}

// GrantPublic appends a public authorization.
func (a *ACL) GrantPublic(id, resourcePath string, asDefault bool, modes ...AccessMode) {
	a.Authorizations = append(a.Authorizations, Authorization{
		ID:       id,
		Public:   true,
		AccessTo: resourcePath,
		Default:  asDefault,
		Modes:    modes,
	})
}

// Allows reports whether the ACL grants the agent the mode on the resource
// path. When inherited is true, only acl:default authorizations count (the
// document was found on an ancestor container), and only for resources
// contained in the authorization's stated target: an acl:default grant on
// /a/ never reaches /b/x just because the document was found along /b/x's
// ancestor walk. Granting Write implies Append (WAC mode subsumption).
func (a *ACL) Allows(agent WebID, path string, mode AccessMode, inherited bool) bool {
	for _, auth := range a.Authorizations {
		if inherited {
			if !auth.Default || !containsPath(auth.AccessTo, path) {
				continue
			}
		} else if auth.AccessTo != path {
			continue
		}
		if !auth.Public && !containsAgent(auth.Agents, agent) {
			continue
		}
		for _, m := range auth.Modes {
			if modeSatisfies(m, mode) {
				return true
			}
		}
	}
	return false
}

// modeSatisfies reports whether a granted mode covers the requested one:
// exact match, or Write covering Append.
func modeSatisfies(granted, want AccessMode) bool {
	return granted == want || (granted == ModeWrite && want == ModeAppend)
}

// containsPath reports whether p is the container itself or contained in
// it (at any depth).
func containsPath(container, p string) bool {
	if container == "/" {
		return true
	}
	if p == container {
		return true
	}
	return strings.HasPrefix(p, strings.TrimSuffix(container, "/")+"/")
}

func containsAgent(agents []WebID, agent WebID) bool {
	if agent == "" {
		return false
	}
	for _, a := range agents {
		if a == agent {
			return true
		}
	}
	return false
}

// aclBase is the base IRI for authorization fragments in serialized docs.
const aclBase = "https://pod.local/acl#"

// ToGraph renders the ACL as a WAC RDF graph.
func (a *ACL) ToGraph(podBase string) *rdf.Graph {
	g := rdf.NewGraph()
	for _, auth := range a.Authorizations {
		node := rdf.IRI(aclBase + auth.ID)
		g.Add(rdf.T(node, rdf.IRI(rdf.RDFType), rdf.IRI(rdf.ACLAuthorization)))
		for _, agent := range auth.Agents {
			g.Add(rdf.T(node, rdf.IRI(rdf.ACLAgent), rdf.IRI(string(agent))))
		}
		if auth.Public {
			g.Add(rdf.T(node, rdf.IRI(rdf.ACLAgentClass), rdf.IRI(rdf.FOAFAgent)))
		}
		g.Add(rdf.T(node, rdf.IRI(rdf.ACLAccessTo), rdf.IRI(podBase+auth.AccessTo)))
		if auth.Default {
			g.Add(rdf.T(node, rdf.IRI(rdf.ACLDefault), rdf.IRI(podBase+auth.AccessTo)))
		}
		for _, m := range auth.Modes {
			g.Add(rdf.T(node, rdf.IRI(rdf.ACLMode), modeIRI(m)))
		}
	}
	return g
}

// ACLFromGraph parses a WAC graph back into an ACL. podBase is stripped
// from accessTo IRIs to recover pod-relative paths.
func ACLFromGraph(g *rdf.Graph, podBase string) (*ACL, error) {
	acl := &ACL{}
	subjects := g.Subjects(rdf.IRI(rdf.RDFType), rdf.IRI(rdf.ACLAuthorization))
	for _, node := range subjects {
		auth := Authorization{ID: fragmentOf(node.Value())}
		for _, o := range g.Objects(node, rdf.IRI(rdf.ACLAgent)) {
			auth.Agents = append(auth.Agents, WebID(o.Value()))
		}
		for _, o := range g.Objects(node, rdf.IRI(rdf.ACLAgentClass)) {
			if o.Value() == rdf.FOAFAgent {
				auth.Public = true
			}
		}
		accessTo := g.FirstObject(node, rdf.IRI(rdf.ACLAccessTo))
		if accessTo.IsZero() {
			return nil, fmt.Errorf("solid: authorization %s lacks acl:accessTo", node)
		}
		rel, ok := strings.CutPrefix(accessTo.Value(), podBase)
		if !ok || !strings.HasPrefix(rel, "/") {
			return nil, fmt.Errorf("solid: authorization %s: accessTo %s outside pod base %s",
				node, accessTo.Value(), podBase)
		}
		auth.AccessTo = rel
		if !g.FirstObject(node, rdf.IRI(rdf.ACLDefault)).IsZero() {
			auth.Default = true
		}
		for _, o := range g.Objects(node, rdf.IRI(rdf.ACLMode)) {
			mode := AccessMode(fragmentOf(o.Value()))
			switch mode {
			case ModeRead, ModeWrite, ModeAppend, ModeControl:
				auth.Modes = append(auth.Modes, mode)
			default:
				return nil, fmt.Errorf("solid: unknown access mode %s", o)
			}
		}
		sortModes(auth.Modes)
		acl.Authorizations = append(acl.Authorizations, auth)
	}
	return acl, nil
}

func fragmentOf(iri string) string {
	if i := strings.LastIndexByte(iri, '#'); i >= 0 {
		return iri[i+1:]
	}
	return iri
}

func sortModes(modes []AccessMode) {
	sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
}

// EncodeTurtle renders the ACL as a Turtle document.
func (a *ACL) EncodeTurtle(podBase string) string {
	return rdf.SerializeTurtle(a.ToGraph(podBase), map[string]string{
		"acl":  "http://www.w3.org/ns/auth/acl#",
		"foaf": "http://xmlns.com/foaf/0.1/",
	})
}

// DecodeACLTurtle parses a Turtle WAC document.
func DecodeACLTurtle(doc, podBase string) (*ACL, error) {
	g, err := rdf.ParseTurtle(doc)
	if err != nil {
		return nil, err
	}
	return ACLFromGraph(g, podBase)
}
