package solid

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// testEnv wires a pod server with Alice (owner) and Bob (consumer) agents.
type testEnv struct {
	srv      *httptest.Server
	pod      *Pod
	clk      *simclock.Sim
	alice    *Client
	bob      *Client
	bobKey   *cryptoutil.KeyPair
	aliceKey *cryptoutil.KeyPair
	dir      *MapDirectory
}

func newTestEnv(t *testing.T, hook AccessHook) *testEnv {
	t.Helper()
	clk := simclock.NewSim(podEpoch)
	pod := NewPod(aliceID, "https://alice.pod")
	dir := NewMapDirectory()
	aliceKey := cryptoutil.MustGenerateKey()
	bobKey := cryptoutil.MustGenerateKey()
	dir.Register(aliceID, aliceKey.PublicBytes())
	dir.Register(bobID, bobKey.PublicBytes())

	server := NewServer(pod, dir, clk, hook)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	alice := NewClient(aliceID, aliceKey, clk)
	bob := NewClient(bobID, bobKey, clk)
	return &testEnv{
		srv: srv, pod: pod, clk: clk,
		alice: alice, bob: bob,
		aliceKey: aliceKey, bobKey: bobKey, dir: dir,
	}
}

func (e *testEnv) url(p string) string { return e.srv.URL + p }

func TestServerOwnerPutGetDelete(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/web/browsing.csv"), "text/csv", []byte("a,b,c")); err != nil {
		t.Fatal(err)
	}
	data, ct, err := e.alice.Get(e.url("/web/browsing.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b,c" || ct != "text/csv" {
		t.Fatalf("got %q (%s)", data, ct)
	}
	if err := e.alice.Delete(e.url("/web/browsing.csv")); err != nil {
		t.Fatal(err)
	}
	_, _, err = e.alice.Get(e.url("/web/browsing.csv"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusNotFound {
		t.Fatalf("after delete: %v", err)
	}
}

func TestServerAuthorizationEnforced(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/secret.txt"), "text/plain", []byte("s")); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.bob.Get(e.url("/secret.txt"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusForbidden {
		t.Fatalf("bob read secret: %v", err)
	}

	// Grant Bob read via ACL, then he can fetch it.
	acl := NewACL(aliceID, "/secret.txt")
	acl.Grant("bob", []WebID{bobID}, "/secret.txt", false, ModeRead)
	if err := e.pod.SetACL(aliceID, "/secret.txt", acl); err != nil {
		t.Fatal(err)
	}
	data, _, err := e.bob.Get(e.url("/secret.txt"))
	if err != nil || string(data) != "s" {
		t.Fatalf("bob after grant: %q, %v", data, err)
	}
}

func TestServerAnonymousAccess(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/pub/data.txt"), "text/plain", []byte("open")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(aliceID, "/pub/")
	acl.GrantPublic("world", "/pub/", true, ModeRead)
	if err := e.pod.SetACL(aliceID, "/pub/", acl); err != nil {
		t.Fatal(err)
	}
	anon := &Client{Clock: e.clk}
	data, _, err := anon.Get(e.url("/pub/data.txt"))
	if err != nil || string(data) != "open" {
		t.Fatalf("anonymous public read: %q, %v", data, err)
	}
	if _, _, err := anon.Get(e.url("/else.txt")); err == nil {
		t.Fatal("anonymous read outside public area succeeded")
	}
}

func TestServerRejectsBadAuthentication(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}

	get := func(mutate func(*http.Request)) int {
		req, err := e.alice.newRequest(http.MethodGet, e.url("/r.txt"), nil)
		if err != nil {
			t.Fatal(err)
		}
		mutate(req)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	tests := []struct {
		name   string
		mutate func(*http.Request)
	}{
		{"tampered signature", func(r *http.Request) { r.Header.Set(HeaderSignature, "AAAA") }},
		{"missing key", func(r *http.Request) { r.Header.Del(HeaderAgentKey) }},
		{"missing date", func(r *http.Request) { r.Header.Del(HeaderDate) }},
		{"unknown agent", func(r *http.Request) { r.Header.Set(HeaderAgent, string(eveID)) }},
		{"garbage key", func(r *http.Request) { r.Header.Set(HeaderAgentKey, "zz") }},
		{"stale date", func(r *http.Request) {
			old := podEpoch.Add(-time.Hour).Format(time.RFC3339Nano)
			r.Header.Set(HeaderDate, old)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if code := get(tt.mutate); code != http.StatusUnauthorized {
				t.Fatalf("status = %d, want 401", code)
			}
		})
	}
}

func TestServerImpersonationFails(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/secret.txt"), "text/plain", []byte("s")); err != nil {
		t.Fatal(err)
	}
	// Eve signs with her own key but claims to be Alice.
	eveKey := cryptoutil.MustGenerateKey()
	eve := NewClient(aliceID, eveKey, e.clk)
	_, _, err := eve.Get(e.url("/secret.txt"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusUnauthorized {
		t.Fatalf("impersonation: %v", err)
	}
}

func TestServerReplayedSignatureForOtherPathFails(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/a.txt"), "text/plain", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := e.alice.Put(e.url("/b.txt"), "text/plain", []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Capture a valid signed request for /a.txt, replay its signature on
	// /b.txt: path is part of the signed string, so it must fail.
	reqA, err := e.bob.newRequest(http.MethodGet, e.url("/a.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	reqB, err := http.NewRequest(http.MethodGet, e.url("/b.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	reqB.Header = reqA.Header.Clone()
	resp, err := http.DefaultClient.Do(reqB)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("replayed signature status = %d, want 401", resp.StatusCode)
	}
}

func TestServerContainerListing(t *testing.T) {
	e := newTestEnv(t, nil)
	for _, p := range []string{"/dir/a.txt", "/dir/b.txt"} {
		if err := e.alice.Put(e.url(p), "text/plain", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	doc, ct, err := e.alice.Get(e.url("/dir/"))
	if err != nil {
		t.Fatal(err)
	}
	if ct != "text/turtle" {
		t.Fatalf("content type = %s", ct)
	}
	if !strings.Contains(string(doc), "a.txt") || !strings.Contains(string(doc), "ldp:contains") {
		t.Fatalf("listing:\n%s", doc)
	}
}

func TestServerAccessHook(t *testing.T) {
	denied := errors.New("certificate required")
	hook := func(r *http.Request, agent WebID, path string, mode AccessMode) error {
		if agent == bobID && r.Header.Get("X-Market-Certificate") == "" {
			return denied
		}
		return nil
	}
	e := newTestEnv(t, hook)
	if err := e.alice.Put(e.url("/market/data.csv"), "text/csv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(aliceID, "/market/data.csv")
	acl.Grant("bob", []WebID{bobID}, "/market/data.csv", false, ModeRead)
	if err := e.pod.SetACL(aliceID, "/market/data.csv", acl); err != nil {
		t.Fatal(err)
	}

	// Without the certificate header: hook denies.
	_, _, err := e.bob.Get(e.url("/market/data.csv"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusForbidden {
		t.Fatalf("hookless access: %v", err)
	}

	// With the header: allowed.
	e.bob.Decorate = func(r *http.Request) { r.Header.Set("X-Market-Certificate", "cert") }
	if _, _, err := e.bob.Get(e.url("/market/data.csv")); err != nil {
		t.Fatalf("decorated access: %v", err)
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	e := newTestEnv(t, nil)
	req, err := http.NewRequest(http.MethodPatch, e.url("/x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestServerHead(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	req, err := e.alice.newRequest(http.MethodHead, e.url("/r.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.ContentLength > 0 {
		body := make([]byte, 10)
		n, _ := resp.Body.Read(body)
		if n > 0 {
			t.Fatal("HEAD returned a body")
		}
	}
}
