package solid

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// testEnv wires a pod server with Alice (owner) and Bob (consumer) agents.
type testEnv struct {
	srv      *httptest.Server
	pod      *Pod
	clk      *simclock.Sim
	alice    *Client
	bob      *Client
	bobKey   *cryptoutil.KeyPair
	aliceKey *cryptoutil.KeyPair
	dir      *MapDirectory
}

func newTestEnv(t *testing.T, hook AccessHook) *testEnv {
	t.Helper()
	clk := simclock.NewSim(podEpoch)
	pod := NewPod(aliceID, "https://alice.pod")
	dir := NewMapDirectory()
	aliceKey := cryptoutil.MustGenerateKey()
	bobKey := cryptoutil.MustGenerateKey()
	dir.Register(aliceID, aliceKey.PublicBytes())
	dir.Register(bobID, bobKey.PublicBytes())

	server := NewServer(pod, dir, clk, hook)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	alice := NewClient(aliceID, aliceKey, clk)
	bob := NewClient(bobID, bobKey, clk)
	return &testEnv{
		srv: srv, pod: pod, clk: clk,
		alice: alice, bob: bob,
		aliceKey: aliceKey, bobKey: bobKey, dir: dir,
	}
}

func (e *testEnv) url(p string) string { return e.srv.URL + p }

func TestServerOwnerPutGetDelete(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/web/browsing.csv"), "text/csv", []byte("a,b,c")); err != nil {
		t.Fatal(err)
	}
	data, ct, err := e.alice.Get(e.url("/web/browsing.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b,c" || ct != "text/csv" {
		t.Fatalf("got %q (%s)", data, ct)
	}
	if err := e.alice.Delete(e.url("/web/browsing.csv")); err != nil {
		t.Fatal(err)
	}
	_, _, err = e.alice.Get(e.url("/web/browsing.csv"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusNotFound {
		t.Fatalf("after delete: %v", err)
	}
}

func TestServerAuthorizationEnforced(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/secret.txt"), "text/plain", []byte("s")); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.bob.Get(e.url("/secret.txt"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusForbidden {
		t.Fatalf("bob read secret: %v", err)
	}

	// Grant Bob read via ACL, then he can fetch it.
	acl := NewACL(aliceID, "/secret.txt")
	acl.Grant("bob", []WebID{bobID}, "/secret.txt", false, ModeRead)
	if err := e.pod.SetACL(aliceID, "/secret.txt", acl); err != nil {
		t.Fatal(err)
	}
	data, _, err := e.bob.Get(e.url("/secret.txt"))
	if err != nil || string(data) != "s" {
		t.Fatalf("bob after grant: %q, %v", data, err)
	}
}

func TestServerAnonymousAccess(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/pub/data.txt"), "text/plain", []byte("open")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(aliceID, "/pub/")
	acl.GrantPublic("world", "/pub/", true, ModeRead)
	if err := e.pod.SetACL(aliceID, "/pub/", acl); err != nil {
		t.Fatal(err)
	}
	anon := &Client{Clock: e.clk}
	data, _, err := anon.Get(e.url("/pub/data.txt"))
	if err != nil || string(data) != "open" {
		t.Fatalf("anonymous public read: %q, %v", data, err)
	}
	if _, _, err := anon.Get(e.url("/else.txt")); err == nil {
		t.Fatal("anonymous read outside public area succeeded")
	}
}

func TestServerRejectsBadAuthentication(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}

	get := func(mutate func(*http.Request)) int {
		req, err := e.alice.newRequest(http.MethodGet, e.url("/r.txt"), nil)
		if err != nil {
			t.Fatal(err)
		}
		mutate(req)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	tests := []struct {
		name   string
		mutate func(*http.Request)
	}{
		{"tampered signature", func(r *http.Request) { r.Header.Set(HeaderSignature, "AAAA") }},
		{"missing key", func(r *http.Request) { r.Header.Del(HeaderAgentKey) }},
		{"missing date", func(r *http.Request) { r.Header.Del(HeaderDate) }},
		{"unknown agent", func(r *http.Request) { r.Header.Set(HeaderAgent, string(eveID)) }},
		{"garbage key", func(r *http.Request) { r.Header.Set(HeaderAgentKey, "zz") }},
		{"stale date", func(r *http.Request) {
			old := podEpoch.Add(-time.Hour).Format(time.RFC3339Nano)
			r.Header.Set(HeaderDate, old)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if code := get(tt.mutate); code != http.StatusUnauthorized {
				t.Fatalf("status = %d, want 401", code)
			}
		})
	}
}

func TestServerImpersonationFails(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/secret.txt"), "text/plain", []byte("s")); err != nil {
		t.Fatal(err)
	}
	// Eve signs with her own key but claims to be Alice.
	eveKey := cryptoutil.MustGenerateKey()
	eve := NewClient(aliceID, eveKey, e.clk)
	_, _, err := eve.Get(e.url("/secret.txt"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusUnauthorized {
		t.Fatalf("impersonation: %v", err)
	}
}

func TestServerReplayedSignatureForOtherPathFails(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/a.txt"), "text/plain", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := e.alice.Put(e.url("/b.txt"), "text/plain", []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Capture a valid signed request for /a.txt, replay its signature on
	// /b.txt: path is part of the signed string, so it must fail.
	reqA, err := e.bob.newRequest(http.MethodGet, e.url("/a.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	reqB, err := http.NewRequest(http.MethodGet, e.url("/b.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	reqB.Header = reqA.Header.Clone()
	resp, err := http.DefaultClient.Do(reqB)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("replayed signature status = %d, want 401", resp.StatusCode)
	}
}

func TestServerContainerListing(t *testing.T) {
	e := newTestEnv(t, nil)
	for _, p := range []string{"/dir/a.txt", "/dir/b.txt"} {
		if err := e.alice.Put(e.url(p), "text/plain", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	doc, ct, err := e.alice.Get(e.url("/dir/"))
	if err != nil {
		t.Fatal(err)
	}
	if ct != "text/turtle" {
		t.Fatalf("content type = %s", ct)
	}
	if !strings.Contains(string(doc), "a.txt") || !strings.Contains(string(doc), "ldp:contains") {
		t.Fatalf("listing:\n%s", doc)
	}
}

func TestServerAccessHook(t *testing.T) {
	denied := errors.New("certificate required")
	hook := func(r *http.Request, agent WebID, path string, mode AccessMode) error {
		if agent == bobID && r.Header.Get("X-Market-Certificate") == "" {
			return denied
		}
		return nil
	}
	e := newTestEnv(t, hook)
	if err := e.alice.Put(e.url("/market/data.csv"), "text/csv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(aliceID, "/market/data.csv")
	acl.Grant("bob", []WebID{bobID}, "/market/data.csv", false, ModeRead)
	if err := e.pod.SetACL(aliceID, "/market/data.csv", acl); err != nil {
		t.Fatal(err)
	}

	// Without the certificate header: hook denies.
	_, _, err := e.bob.Get(e.url("/market/data.csv"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusForbidden {
		t.Fatalf("hookless access: %v", err)
	}

	// With the header: allowed.
	e.bob.Decorate = func(r *http.Request) { r.Header.Set("X-Market-Certificate", "cert") }
	if _, _, err := e.bob.Get(e.url("/market/data.csv")); err != nil {
		t.Fatalf("decorated access: %v", err)
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	e := newTestEnv(t, nil)
	req, err := http.NewRequest(http.MethodPatch, e.url("/x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestServerHead(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	req, err := e.alice.newRequest(http.MethodHead, e.url("/r.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.ContentLength > 0 {
		body := make([]byte, 10)
		n, _ := resp.Body.Read(body)
		if n > 0 {
			t.Fatal("HEAD returned a body")
		}
	}
}

// --- regression tests for the protocol fixes ---

// TestServerPostAppends pins the POST fix: POST used to authorize as
// Write, fire the access hook, then 405 out of the dispatch switch.
func TestServerPostAppends(t *testing.T) {
	hookCalls := 0
	var hookMode AccessMode
	hook := func(r *http.Request, agent WebID, path string, mode AccessMode) error {
		hookCalls++
		hookMode = mode
		return nil
	}
	e := newTestEnv(t, hook)
	if err := e.alice.Put(e.url("/log.txt"), "text/plain", []byte("a")); err != nil {
		t.Fatal(err)
	}
	hookCalls = 0

	// POST to an existing resource appends to it.
	loc, err := e.alice.Post(e.url("/log.txt"), "text/plain", []byte("b"))
	if err != nil {
		t.Fatalf("POST after authorization must not 405: %v", err)
	}
	if loc != "" {
		t.Fatalf("append to resource returned Location %q", loc)
	}
	if hookCalls != 1 || hookMode != ModeAppend {
		t.Fatalf("hook saw %d calls, mode %s; want 1 call with Append", hookCalls, hookMode)
	}
	data, _, err := e.alice.Get(e.url("/log.txt"))
	if err != nil || string(data) != "ab" {
		t.Fatalf("after append: %q, %v", data, err)
	}

	// POST to a container mints a contained resource and returns it.
	loc, err = e.alice.Post(e.url("/inbox/"), "text/plain", []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(loc, "https://alice.pod/inbox/") {
		t.Fatalf("Location = %q", loc)
	}
}

// TestServerPostNeedsOnlyAppend pins the mode mapping: an agent granted
// Append (but not Write) can POST, and Write implies Append.
func TestServerPostNeedsOnlyAppend(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/inbox/seed.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(aliceID, "/inbox/")
	acl.Grant("bob-append", []WebID{bobID}, "/inbox/", true, ModeAppend)
	if err := e.pod.SetACL(aliceID, "/inbox/", acl); err != nil {
		t.Fatal(err)
	}
	if _, err := e.bob.Post(e.url("/inbox/"), "text/plain", []byte("drop")); err != nil {
		t.Fatalf("append-only agent POST: %v", err)
	}
	// Append does not grant Write: bob cannot PUT or DELETE.
	if err := e.bob.Put(e.url("/inbox/seed.txt"), "text/plain", []byte("y")); err == nil {
		t.Fatal("append-only agent overwrote a resource")
	}
	if err := e.bob.Delete(e.url("/inbox/seed.txt")); err == nil {
		t.Fatal("append-only agent deleted a resource")
	}
}

// TestServerHeadContainerNoBody pins the HEAD fix: the container branch
// used to write the full Turtle listing even for HEAD.
func TestServerHeadContainerNoBody(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/dir/a.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}
	req, err := e.alice.newRequest(http.MethodHead, e.url("/dir/"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := make([]byte, 64)
	if n, _ := resp.Body.Read(buf); n > 0 {
		t.Fatalf("HEAD on container returned a body: %q", buf[:n])
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("HEAD on container lacks ETag")
	}
}

// TestServerReplayRejected pins the replay fix: an identical captured
// request must not validate twice even though its timestamp is still
// within the clock-skew window.
func TestServerReplayRejected(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}
	req, err := e.alice.newRequest(http.MethodGet, e.url("/r.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	first, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("original request status = %d", first.StatusCode)
	}
	// Replay byte-for-byte, well inside the ±5 min skew window.
	replayReq, err := http.NewRequest(http.MethodGet, e.url("/r.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayReq.Header = req.Header.Clone()
	replay, err := http.DefaultClient.Do(replayReq)
	if err != nil {
		t.Fatal(err)
	}
	replay.Body.Close()
	if replay.StatusCode != http.StatusUnauthorized {
		t.Fatalf("replayed request status = %d, want 401", replay.StatusCode)
	}
}

// TestServerMissingNonceRejected: authenticated requests must carry the
// single-use nonce.
func TestServerMissingNonceRejected(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}
	req, err := e.alice.newRequest(http.MethodGet, e.url("/r.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Del(HeaderNonce)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("nonce-less request status = %d, want 401", resp.StatusCode)
	}
}

// TestServerConditionalGet covers ETag/If-None-Match and
// If-Modified-Since revalidation.
func TestServerConditionalGet(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fetch := func(mutate func(*http.Request)) *http.Response {
		t.Helper()
		req, err := e.alice.newRequest(http.MethodGet, e.url("/r.txt"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(req)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	plain := fetch(nil)
	etag := plain.Header.Get("ETag")
	if plain.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("status=%d etag=%q", plain.StatusCode, etag)
	}

	cond := fetch(func(r *http.Request) { r.Header.Set("If-None-Match", etag) })
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match status = %d, want 304", cond.StatusCode)
	}
	buf := make([]byte, 8)
	if n, _ := cond.Body.Read(buf); n > 0 {
		t.Fatal("304 carried a body")
	}

	ims := fetch(func(r *http.Request) {
		r.Header.Set("If-Modified-Since", e.clk.Now().UTC().Format(http.TimeFormat))
	})
	if ims.StatusCode != http.StatusNotModified {
		t.Fatalf("If-Modified-Since status = %d, want 304", ims.StatusCode)
	}

	// Changing the resource changes the validator: the old ETag re-fetches.
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	after := fetch(func(r *http.Request) { r.Header.Set("If-None-Match", etag) })
	if after.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match status = %d, want 200", after.StatusCode)
	}
	if after.Header.Get("ETag") == etag {
		t.Fatal("ETag unchanged after overwrite")
	}
}

// TestServerPutStatusCreatedVsOverwrite pins the 201-vs-200 fix.
func TestServerPutStatusCreatedVsOverwrite(t *testing.T) {
	e := newTestEnv(t, nil)
	put := func() int {
		t.Helper()
		req, err := e.alice.newRequest(http.MethodPut, e.url("/r.txt"), []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(); code != http.StatusCreated {
		t.Fatalf("first PUT = %d, want 201", code)
	}
	if code := put(); code != http.StatusOK {
		t.Fatalf("overwrite PUT = %d, want 200", code)
	}
}

// TestServerBodyTooLarge pins the 413 fix: oversized bodies used to be
// silently truncated at 64 MiB by io.LimitReader.
func TestServerBodyTooLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates >64 MiB")
	}
	e := newTestEnv(t, nil)
	big := make([]byte, MaxBodyBytes+1)
	req, err := e.alice.newRequest(http.MethodPut, e.url("/big.bin"), big)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT = %d, want 413", resp.StatusCode)
	}
	// Nothing was stored.
	if _, _, err := e.alice.Get(e.url("/big.bin")); err == nil {
		t.Fatal("truncated resource was stored")
	}
}

// TestClientCachingRevalidates: a caching client re-fetches via
// If-None-Match and serves 304 answers from its local copy.
func TestClientCachingRevalidates(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/csv", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	statuses := []int{}
	e.alice.HTTP = &http.Client{Transport: statusRecorder{record: func(code int) {
		mu.Lock()
		statuses = append(statuses, code)
		mu.Unlock()
	}}}
	e.alice.EnableCaching()

	for range 3 {
		data, ct, err := e.alice.Get(e.url("/r.txt"))
		if err != nil || string(data) != "v1" || ct != "text/csv" {
			t.Fatalf("cached get: %q (%s), %v", data, ct, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{http.StatusOK, http.StatusNotModified, http.StatusNotModified}
	if len(statuses) != len(want) {
		t.Fatalf("statuses = %v", statuses)
	}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("statuses = %v, want %v", statuses, want)
		}
	}
}

// statusRecorder observes response status codes on the client side.
type statusRecorder struct{ record func(int) }

func (s statusRecorder) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(r)
	if resp != nil {
		s.record(resp.StatusCode)
	}
	return resp, err
}

// TestReplayGuardPerAgentQuota pins the guard's capacity semantics: an
// agent flooding past its quota evicts only its own nonces — another
// agent's replay protection is untouched, and nobody gets locked out.
func TestReplayGuardPerAgentQuota(t *testing.T) {
	g := newReplayGuard()
	now := podEpoch
	if err := g.check(bobID, "victim-nonce", now, now); err != nil {
		t.Fatal(err)
	}
	// Eve floods far past the per-agent cap; every request is accepted
	// (no fail-closed lockout) and only her own entries are evicted.
	for i := range 3 * maxNoncesPerAgent {
		if err := g.check(eveID, fmt.Sprintf("n%d", i), now, now); err != nil {
			t.Fatalf("flood request %d refused: %v", i, err)
		}
	}
	// Bob's nonce is still remembered: the captured request stays dead.
	if err := g.check(bobID, "victim-nonce", now, now); err == nil {
		t.Fatal("flood evicted another agent's nonce; replay accepted")
	}
	// Eve's own early nonce was evicted by her own flood (self-harm only).
	if err := g.check(eveID, "n0", now, now); err != nil {
		t.Fatalf("eve's evicted nonce should re-check clean: %v", err)
	}
	// Aged-out entries prune: after the skew window the nonce may recur
	// (its replay would fail the staleness check anyway).
	later := now.Add(MaxClockSkew + time.Minute)
	if err := g.check(bobID, "victim-nonce", later, later); err != nil {
		t.Fatalf("aged-out nonce refused: %v", err)
	}
}
