package solid

import (
	"errors"
	"net/http"
	"testing"

	"repro/internal/cryptoutil"
)

func TestClientRequiresKeyForNamedAgent(t *testing.T) {
	c := &Client{Agent: aliceID} // no key
	if _, _, err := c.Get("http://127.0.0.1:1/x"); err == nil {
		t.Fatal("keyless named agent should fail before dialing")
	}
}

func TestClientStatusError(t *testing.T) {
	e := newTestEnv(t, nil)
	_, _, err := e.alice.Get(e.url("/missing.txt"))
	var status *StatusError
	if !errors.As(err, &status) {
		t.Fatalf("err = %v", err)
	}
	if status.Code != http.StatusNotFound {
		t.Fatalf("code = %d", status.Code)
	}
	if status.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestClientBadURL(t *testing.T) {
	e := newTestEnv(t, nil)
	if _, _, err := e.alice.Get("http://\x00invalid"); err == nil {
		t.Fatal("invalid URL accepted")
	}
	_ = e
}

func TestClientPutContentTypePreserved(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/typed.json"), "application/json", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	_, ct, err := e.alice.Get(e.url("/typed.json"))
	if err != nil || ct != "application/json" {
		t.Fatalf("content type = %q, %v", ct, err)
	}
}

func TestClientDefaultContentType(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/raw.bin"), "", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_, ct, err := e.alice.Get(e.url("/raw.bin"))
	if err != nil || ct != "application/octet-stream" {
		t.Fatalf("content type = %q, %v", ct, err)
	}
}

func TestMapDirectory(t *testing.T) {
	dir := NewMapDirectory()
	if _, ok := dir.KeyFor(aliceID); ok {
		t.Fatal("empty directory resolved an agent")
	}
	key := cryptoutil.MustGenerateKey()
	dir.Register(aliceID, key.PublicBytes())
	got, ok := dir.KeyFor(aliceID)
	if !ok || string(got) != string(key.PublicBytes()) {
		t.Fatal("registration lost")
	}
	// Re-registration replaces (key rotation).
	key2 := cryptoutil.MustGenerateKey()
	dir.Register(aliceID, key2.PublicBytes())
	got, _ = dir.KeyFor(aliceID)
	if string(got) != string(key2.PublicBytes()) {
		t.Fatal("rotation failed")
	}
}

func TestClientDeleteStatusOnForbidden(t *testing.T) {
	e := newTestEnv(t, nil)
	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}
	err := e.bob.Delete(e.url("/r.txt"))
	var status *StatusError
	if !errors.As(err, &status) || status.Code != http.StatusForbidden {
		t.Fatalf("stranger delete: %v", err)
	}
}
