package solid

import (
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// This file holds hostile-client helpers for adversarial testing: they
// let a test play an attacker who has captured a legitimately signed
// request off the wire (replaying it verbatim, or re-aiming it at a
// different resource) or who burns nonces in bulk trying to starve other
// agents' replay protection. They live in the package proper — not a
// _test file — so the scenario engine can drive them, but they hold no
// server-side power: everything here works purely through the public
// HTTP surface with materials a network eavesdropper would have.

// CapturedRequest is a fully signed request frozen at capture time: the
// headers (signature, date, nonce) are replayed verbatim on every Send,
// exactly as a wire eavesdropper would resend them. The server's replay
// guard must accept the first delivery and 401 every subsequent one.
type CapturedRequest struct {
	// Method and URL are the captured request line.
	Method string
	URL    string
	header http.Header
}

// Capture signs a request as agent and freezes it without sending. An
// explicit nonce keeps captures deterministic for seeded scenarios; an
// empty nonce mints a random one.
func Capture(agent WebID, key *cryptoutil.KeyPair, clock simclock.Clock, method, resourceURL, nonce string) (*CapturedRequest, error) {
	if nonce == "" {
		var err error
		if nonce, err = newNonce(); err != nil {
			return nil, err
		}
	}
	u, err := url.Parse(resourceURL)
	if err != nil {
		return nil, err
	}
	now := simclock.Clock(simclock.Real{})
	if clock != nil {
		now = clock
	}
	date := now.Now().UTC().Format(time.RFC3339Nano)
	sig, err := key.Sign(signingString(method, u.Path, date, nonce))
	if err != nil {
		return nil, err
	}
	h := make(http.Header)
	h.Set(HeaderAgent, string(agent))
	h.Set(HeaderAgentKey, hex.EncodeToString(key.PublicBytes()))
	h.Set(HeaderDate, date)
	h.Set(HeaderNonce, nonce)
	h.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	return &CapturedRequest{Method: method, URL: resourceURL, header: h}, nil
}

// Decorate adds a header to the frozen request (e.g. a stolen market
// certificate), mimicking an attacker splicing captured credentials
// together. The auth signature is NOT recomputed — that is the point.
func (cr *CapturedRequest) Decorate(fn func(*http.Request)) *CapturedRequest {
	req := &http.Request{Header: cr.header}
	fn(req)
	return cr
}

// Send replays the frozen request verbatim and returns the status code.
func (cr *CapturedRequest) Send(hc *http.Client) (int, error) {
	return cr.SendTo(hc, cr.URL)
}

// SendTo replays the frozen headers against a different URL — the
// cross-resource splice attack (a signature over one path presented for
// another). The server must refuse: the path is part of the signed
// string.
func (cr *CapturedRequest) SendTo(hc *http.Client, targetURL string) (int, error) {
	req, err := http.NewRequest(cr.Method, targetURL, nil)
	if err != nil {
		return 0, err
	}
	req.Header = cr.header.Clone()
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// FloodNonces fires n freshly signed requests from agent at resourceURL,
// nonces "prefix-0" … "prefix-n-1", and returns how many authenticated
// (any status but 401). Per-agent nonce eviction means the flood may
// only ever weaken the flooding agent's own replay protection: every
// request here must authenticate, and other agents' captured nonces must
// still be remembered afterwards.
func FloodNonces(hc *http.Client, agent WebID, key *cryptoutil.KeyPair, clock simclock.Clock, resourceURL string, n int, prefix string) (authenticated int, err error) {
	for i := 0; i < n; i++ {
		cr, err := Capture(agent, key, clock, http.MethodGet, resourceURL, fmt.Sprintf("%s-%d", prefix, i))
		if err != nil {
			return authenticated, err
		}
		status, err := cr.Send(hc)
		if err != nil {
			return authenticated, err
		}
		if status != http.StatusUnauthorized {
			authenticated++
		}
	}
	return authenticated, nil
}
