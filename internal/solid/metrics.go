package solid

import (
	"strings"

	"repro/internal/obs"
)

// Metrics bundles the Solid layer's instruments. All fields are
// nil-safe obs instruments, so a host without a registry (the default)
// records nothing. Wire with Host.SetMetrics before mounting pods.
type Metrics struct {
	// Request latency per route class and method mode, recorded by the
	// Host front handler around the whole pod dispatch.
	ContainerRead  *obs.Histogram
	ContainerWrite *obs.Histogram
	ResourceRead   *obs.Histogram
	ResourceWrite  *obs.Histogram
	UnroutedReqs   *obs.Counter // requests outside /pods/ or to unknown pods

	// Authentication and authorization.
	AuthCacheHits   *obs.Counter // ACL decisions served from the generation-stamped cache
	AuthCacheMisses *obs.Counter // full ancestor-walk evaluations
	NonceReplays    *obs.Counter // verified requests rejected for a reused nonce
	AuthFailures    *obs.Counter // authentication failures of any other kind
}

// NewMetrics registers the solid series on reg. A nil reg yields
// all-nil (no-op) instruments.
func NewMetrics(reg *obs.Registry) *Metrics {
	h := func(class, mode string) *obs.Histogram {
		return reg.Histogram("solid_request_latency_ns", "pod request latency by route class and mode",
			obs.L("class", class), obs.L("mode", mode))
	}
	return &Metrics{
		ContainerRead:  h("container", "read"),
		ContainerWrite: h("container", "write"),
		ResourceRead:   h("resource", "read"),
		ResourceWrite:  h("resource", "write"),
		UnroutedReqs:   reg.Counter("solid_unrouted_requests_total", "requests outside /pods/ or to unmounted pods"),

		AuthCacheHits:   reg.Counter("solid_auth_cache_total", "ACL decision cache outcomes", obs.L("outcome", "hit")),
		AuthCacheMisses: reg.Counter("solid_auth_cache_total", "ACL decision cache outcomes", obs.L("outcome", "miss")),
		NonceReplays:    reg.Counter("solid_nonce_replays_total", "verified requests rejected for a reused nonce"),
		AuthFailures:    reg.Counter("solid_auth_failures_total", "authentication failures other than nonce replays"),
	}
}

// noopMetrics is the shared all-nil handle unmetered hosts use.
var noopMetrics = &Metrics{}

// orNoop normalizes a possibly-nil *Metrics.
func (m *Metrics) orNoop() *Metrics {
	if m == nil {
		return noopMetrics
	}
	return m
}

// requestLatency selects the histogram for one request: containers are
// trailing-slash paths, reads are GET/HEAD, everything else (PUT, POST,
// DELETE, and unknown methods) counts as a write.
func (m *Metrics) requestLatency(podPath, method string) *obs.Histogram {
	read := method == "GET" || method == "HEAD"
	if strings.HasSuffix(podPath, "/") {
		if read {
			return m.ContainerRead
		}
		return m.ContainerWrite
	}
	if read {
		return m.ResourceRead
	}
	return m.ResourceWrite
}
