package solid

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/store"
)

var persistEpoch = time.Date(2023, 10, 9, 0, 0, 0, 0, time.UTC)

const (
	persistOwner  = WebID("https://alice.example/profile#me")
	persistReader = WebID("https://reader.example/profile#me")
)

// restartPod closes a durable pod and reopens it from the same dir.
func restartPod(t *testing.T, p *Pod, dir string, opts PodStoreOptions) *Pod {
	t.Helper()
	if err := p.CloseStore(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPod(p.Owner(), p.BaseURL(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p2.CloseStore() })
	return p2
}

// requireSamePod asserts the restarted pod serves identical content:
// resource bytes, ETags, modification times, ACL generation, and the
// reader's authorization outcomes.
func requireSamePod(t *testing.T, restored, original *Pod, paths ...string) {
	t.Helper()
	if g, w := restored.ACLGeneration(), original.ACLGeneration(); g != w {
		t.Fatalf("ACL generation = %d, want %d", g, w)
	}
	for _, path := range paths {
		want, wantErr := original.Get(original.Owner(), path)
		got, gotErr := restored.Get(restored.Owner(), path)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: err %v vs %v", path, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("%s: bytes differ after restart", path)
		}
		if got.ETag != want.ETag {
			t.Fatalf("%s: ETag %s != %s", path, got.ETag, want.ETag)
		}
		if !got.Modified.Equal(want.Modified) {
			t.Fatalf("%s: Modified %v != %v", path, got.Modified, want.Modified)
		}
		if got.ContentType != want.ContentType {
			t.Fatalf("%s: content type %q != %q", path, got.ContentType, want.ContentType)
		}
		wantAuth := original.Authorize(persistReader, path, ModeRead)
		gotAuth := restored.Authorize(persistReader, path, ModeRead)
		if (wantAuth == nil) != (gotAuth == nil) {
			t.Fatalf("%s: reader auth %v vs %v", path, gotAuth, wantAuth)
		}
	}
	wc, wb := original.Stats()
	gc, gb := restored.Stats()
	if wc != gc || wb != gb {
		t.Fatalf("stats (%d,%d) != (%d,%d)", gc, gb, wc, wb)
	}
}

// TestPodRestartRoundTrip: puts, appends, an ACL grant, and a delete all
// survive a restart with identical ETags and ACL generation.
func TestPodRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewSim(persistEpoch)
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}}
	p, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	put := func(path, body string) {
		t.Helper()
		clk.Advance(time.Second)
		if err := p.Put(persistOwner, path, "text/plain", []byte(body), clk.Now()); err != nil {
			t.Fatal(err)
		}
	}
	put("/notes/a.txt", "alpha")
	put("/notes/b.txt", "beta")
	put("/notes/a.txt", "alpha v2") // overwrite
	if _, _, err := p.Append(persistOwner, "/notes/a.txt", "", []byte(" + more"), clk.Now()); err != nil {
		t.Fatal(err)
	}
	acl := NewACL(persistOwner, "/notes/")
	acl.Grant("reader", []WebID{persistReader}, "/notes/", true, ModeRead)
	if err := p.SetACL(persistOwner, "/notes/", acl); err != nil {
		t.Fatal(err)
	}
	put("/tmp/doomed.txt", "gone soon")
	if err := p.Delete(persistOwner, "/tmp/doomed.txt"); err != nil {
		t.Fatal(err)
	}

	p2 := restartPod(t, p, dir, opts)
	requireSamePod(t, p2, p, "/notes/a.txt", "/notes/b.txt", "/tmp/doomed.txt")
	if err := p2.Authorize(persistReader, "/notes/a.txt", ModeRead); err != nil {
		t.Fatalf("granted reader denied after restart: %v", err)
	}
	if err := p2.Authorize(persistReader, "/notes/a.txt", ModeWrite); err == nil {
		t.Fatal("reader gained write access across restart")
	}
	// The restored pod keeps journaling: mutate, restart again, verify.
	put2 := func(pd *Pod, path, body string) {
		t.Helper()
		clk.Advance(time.Second)
		if err := pd.Put(persistOwner, path, "text/plain", []byte(body), clk.Now()); err != nil {
			t.Fatal(err)
		}
	}
	put2(p2, "/notes/c.txt", "gamma")
	p3 := restartPod(t, p2, dir, opts)
	requireSamePod(t, p3, p2, "/notes/a.txt", "/notes/b.txt", "/notes/c.txt")
}

// TestPodRestartPostMinting: server-assigned POST child names never
// collide across a restart (the postSeq counter is restored).
func TestPodRestartPostMinting(t *testing.T) {
	dir := t.TempDir()
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}}
	p, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := p.Append(persistOwner, "/inbox/", "text/plain", []byte("one"), persistEpoch)
	if err != nil {
		t.Fatal(err)
	}
	p2 := restartPod(t, p, dir, opts)
	second, _, err := p2.Append(persistOwner, "/inbox/", "text/plain", []byte("two"), persistEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatalf("restart re-minted %s", first)
	}
	if got, err := p2.Get(persistOwner, first); err != nil || string(got.Data) != "one" {
		t.Fatalf("first minted child lost: %q, %v", got, err)
	}
}

// TestPodRestartWithSnapshots: a tight snapshot cadence produces
// snapshot files, prunes them, and restores identically from
// snapshot+tail.
func TestPodRestartWithSnapshots(t *testing.T) {
	dir := t.TempDir()
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}, SnapshotEvery: 3}
	p, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := range 11 {
		path := filepath.Join("/data", string(rune('a'+i))+".txt")
		paths = append(paths, path)
		if err := p.Put(persistOwner, path, "text/plain", []byte{byte(i)}, persistEpoch); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := store.ListSnapshots(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no pod snapshots written: %v, %v", seqs, err)
	}
	if seqs[0] != 9 {
		t.Fatalf("newest snapshot at op %d, want 9", seqs[0])
	}
	if len(seqs) > podSnapshotsKept {
		t.Fatalf("%d snapshots kept, want <= %d", len(seqs), podSnapshotsKept)
	}
	p2 := restartPod(t, p, dir, opts)
	requireSamePod(t, p2, p, paths...)
}

// TestPodRestartTornOpLog: a torn tail in the pod op log recovers to the
// last complete op.
func TestPodRestartTornOpLog(t *testing.T) {
	dir := t.TempDir()
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}}
	p, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put(persistOwner, "/a.txt", "text/plain", []byte("kept"), persistEpoch); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(persistOwner, "/b.txt", "text/plain", []byte("torn away"), persistEpoch); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStore(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, podLogName)
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseStore()
	if _, err := p2.Get(persistOwner, "/a.txt"); err != nil {
		t.Fatalf("intact op lost: %v", err)
	}
	if _, err := p2.Get(persistOwner, "/b.txt"); err == nil {
		t.Fatal("torn op resurrected")
	}
	if got := p2.ACLGeneration(); got != 1 {
		t.Fatalf("ACL generation = %d, want 1 (one surviving op)", got)
	}
}

// TestHostPersistenceRestart: a persistent multi-pod host restarted over
// the same data dir serves identical content through HTTP-visible state
// (ETag and ACL generation), without re-seeding.
func TestHostPersistenceRestart(t *testing.T) {
	dataDir := t.TempDir()
	clk := simclock.NewSim(persistEpoch)
	dir := NewMapDirectory()
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}}

	boot := func() (*Host, *httptest.Server) {
		h := NewHost(dir, clk)
		h.EnablePersistence(dataDir, opts)
		return h, httptest.NewServer(h)
	}
	host, srv := boot()
	pod, err := host.CreatePod("alice", persistOwner, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pod.Persistent() {
		t.Fatal("host pod not persistent")
	}
	if err := pod.Put(persistOwner, "/pub/hello.txt", "text/plain", []byte("hello"), clk.Now()); err != nil {
		t.Fatal(err)
	}
	res, err := pod.Get(persistOwner, "/pub/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	wantETag, wantGen := res.ETag, pod.ACLGeneration()
	srv.Close()
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}

	host2, srv2 := boot()
	defer srv2.Close()
	defer host2.Close()
	pod2, err := host2.CreatePod("alice", persistOwner, srv2.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pod2.Get(persistOwner, "/pub/hello.txt")
	if err != nil {
		t.Fatalf("restored pod lost its resource: %v", err)
	}
	if res2.ETag != wantETag {
		t.Fatalf("ETag %s != %s after host restart", res2.ETag, wantETag)
	}
	if pod2.ACLGeneration() != wantGen {
		t.Fatalf("ACL generation %d != %d after host restart", pod2.ACLGeneration(), wantGen)
	}
}

// TestPodCorruptSnapshotFallsBack: a byte-flipped pod snapshot is
// ignored in favour of a full op-log replay.
func TestPodCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}, SnapshotEvery: 2}
	p, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		if err := p.Put(persistOwner, "/f.txt", "text/plain", []byte{byte(i)}, persistEpoch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.CloseStore(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := store.ListSnapshots(dir)
	for _, seq := range seqs {
		path := filepath.Join(dir, "snap-"+"0000000000000000"[:16-len(hex16(seq))]+hex16(seq)+".snap")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p2, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseStore()
	requireSamePod(t, p2, p, "/f.txt")
}

// hex16 renders seq in lowercase hex without leading zeros (test helper
// for snapshot filenames).
func hex16(seq uint64) string {
	const digits = "0123456789abcdef"
	if seq == 0 {
		return "0"
	}
	var buf []byte
	for seq > 0 {
		buf = append([]byte{digits[seq%16]}, buf...)
		seq /= 16
	}
	return string(buf)
}

// TestPodMutationInvisibleOnLogFailure: a durable pod whose op log
// refuses an append reports the error AND leaves the pod untouched —
// the failed write is never served, and the ACL generation does not
// advance past what the log holds.
func TestPodMutationInvisibleOnLogFailure(t *testing.T) {
	dir := t.TempDir()
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}}
	p, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put(persistOwner, "/ok.txt", "text/plain", []byte("logged"), persistEpoch); err != nil {
		t.Fatal(err)
	}
	genBefore := p.ACLGeneration()

	// Sabotage the store: close the log out from under the pod.
	if err := p.persist.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(persistOwner, "/lost.txt", "text/plain", []byte("x"), persistEpoch); err == nil {
		t.Fatal("Put succeeded with a dead op log")
	}
	if _, err := p.Get(persistOwner, "/lost.txt"); err == nil {
		t.Fatal("unjournaled write is being served")
	}
	if err := p.Delete(persistOwner, "/ok.txt"); err == nil {
		t.Fatal("Delete succeeded with a dead op log")
	}
	if _, err := p.Get(persistOwner, "/ok.txt"); err != nil {
		t.Fatalf("journaled resource vanished after a failed delete: %v", err)
	}
	if acl := NewACL(persistOwner, "/"); p.SetACL(persistOwner, "/", acl) == nil {
		t.Fatal("SetACL succeeded with a dead op log")
	}
	if _, _, err := p.Append(persistOwner, "/inbox/", "text/plain", []byte("x"), persistEpoch); err == nil {
		t.Fatal("container POST succeeded with a dead op log")
	}
	if got := p.ACLGeneration(); got != genBefore {
		t.Fatalf("ACL generation advanced to %d despite log failures (was %d)", got, genBefore)
	}

	// A reopened pod matches exactly what the log holds.
	p2, err := OpenPod(persistOwner, "https://alice.pod", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseStore()
	if _, err := p2.Get(persistOwner, "/ok.txt"); err != nil {
		t.Fatalf("journaled resource lost: %v", err)
	}
	if p2.ACLGeneration() != genBefore {
		t.Fatalf("restored generation %d != %d", p2.ACLGeneration(), genBefore)
	}
}

// TestPodOpCodecRoundTrip: binary pod op and snapshot records decode
// back to equivalent structures, and the legacy JSON forms (what PR 4
// wrote with json.Marshal) decode through the same entry points.
func TestPodOpCodecRoundTrip(t *testing.T) {
	acl := NewACL(persistOwner, "/notes/")
	acl.Grant("reader", []WebID{persistReader}, "/notes/", true, ModeRead)
	ops := []podOp{
		{Kind: "put", Path: "/a.bin", ContentType: "application/octet-stream",
			Data: []byte{0, 1, 2, 0xfe, 0xff}, Modified: persistEpoch, PostSeq: 3},
		{Kind: "del", Path: "/a.bin", PostSeq: 4},
		{Kind: "acl", Path: "/notes/", ACL: acl, PostSeq: 4},
	}
	for i, want := range ops {
		payload, err := encodePodOp(&want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodePodOp(payload)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		requireSamePodOp(t, got, want)

		legacy, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err = decodePodOp(legacy)
		if err != nil {
			t.Fatalf("op %d legacy: %v", i, err)
		}
		requireSamePodOp(t, got, want)
	}
	if _, err := encodePodOp(&podOp{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind encoded")
	}
	if _, err := decodePodOp([]byte{tagPodOp, 99}); err == nil {
		t.Fatal("unknown kind byte decoded")
	}

	snap := &podSnapshot{
		Ops: 9, PostSeq: 2, ACLGen: 7,
		Resources: []*Resource{
			{Path: "/z.bin", ContentType: "application/octet-stream",
				Data: bytes.Repeat([]byte{0xAB}, 1000), Modified: persistEpoch, ETag: ETagFor(bytes.Repeat([]byte{0xAB}, 1000))},
			{Path: "/a.txt", ContentType: "text/plain", Data: []byte("hi"),
				Modified: persistEpoch.Add(time.Hour), ETag: ETagFor([]byte("hi"))},
		},
		ACLs: map[string]*ACL{"/notes/": acl},
	}
	payload, err := encodePodSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := encodePodSnapshot(snap); !bytes.Equal(payload, again) {
		t.Fatal("pod snapshot encoding is not deterministic")
	}
	got, err := decodePodSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ops != 9 || got.PostSeq != 2 || got.ACLGen != 7 {
		t.Fatalf("snapshot counters = %+v", got)
	}
	if len(got.Resources) != 2 || len(got.ACLs) != 1 {
		t.Fatalf("snapshot shape = %+v", got)
	}
	for _, want := range snap.Resources {
		var found *Resource
		for _, r := range got.Resources {
			if r.Path == want.Path {
				found = r
			}
		}
		if found == nil || !bytes.Equal(found.Data, want.Data) || found.ETag != want.ETag ||
			found.ContentType != want.ContentType || !found.Modified.Equal(want.Modified) {
			t.Fatalf("resource %s = %+v, want %+v", want.Path, found, want)
		}
	}
	legacySnap, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, err = decodePodSnapshot(legacySnap); err != nil || got.Ops != 9 {
		t.Fatalf("legacy snapshot: %+v, %v", got, err)
	}
}

func requireSamePodOp(t *testing.T, got, want podOp) {
	t.Helper()
	if got.Kind != want.Kind || got.Path != want.Path || got.ContentType != want.ContentType ||
		!bytes.Equal(got.Data, want.Data) || !got.Modified.Equal(want.Modified) || got.PostSeq != want.PostSeq {
		t.Fatalf("op = %+v, want %+v", got, want)
	}
	if (got.ACL == nil) != (want.ACL == nil) {
		t.Fatalf("op ACL presence differs: %+v vs %+v", got.ACL, want.ACL)
	}
	if got.ACL != nil && !reflect.DeepEqual(got.ACL, want.ACL) {
		t.Fatalf("op ACL = %+v, want %+v", got.ACL, want.ACL)
	}
}

// TestPodLegacyJSONStoreRecovers: a pod dir written entirely in the
// PR 4 JSON op-log format (reproduced by transcoding a binary-era log)
// restores identical content, keeps journaling in the binary format,
// and the resulting mixed-format log survives another restart.
func TestPodLegacyJSONStoreRecovers(t *testing.T) {
	binDir := t.TempDir()
	clk := simclock.NewSim(persistEpoch)
	opts := PodStoreOptions{WAL: store.Options{Sync: store.SyncNever}}
	p, err := OpenPod(persistOwner, "https://alice.pod", binDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	put := func(pd *Pod, path, body string) {
		t.Helper()
		clk.Advance(time.Second)
		if err := pd.Put(persistOwner, path, "text/plain", []byte(body), clk.Now()); err != nil {
			t.Fatal(err)
		}
	}
	put(p, "/notes/a.txt", "alpha")
	put(p, "/notes/b.txt", "beta")
	acl := NewACL(persistOwner, "/notes/")
	acl.Grant("reader", []WebID{persistReader}, "/notes/", true, ModeRead)
	if err := p.SetACL(persistOwner, "/notes/", acl); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(persistOwner, "/notes/b.txt"); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Transcode the op log into the legacy JSON format.
	legacyDir := t.TempDir()
	wal, records, err := store.OpenWAL(filepath.Join(binDir, podLogName), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	out, _, err := store.OpenWAL(filepath.Join(legacyDir, podLogName), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		op, err := decodePodOp(rec.Payload)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Append(legacy); err != nil {
			t.Fatal(err)
		}
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPod(persistOwner, "https://alice.pod", legacyDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePod(t, p2, p, "/notes/a.txt", "/notes/b.txt")
	if err := p2.Authorize(persistReader, "/notes/a.txt", ModeRead); err != nil {
		t.Fatalf("granted reader denied after legacy recovery: %v", err)
	}

	// New mutations append binary records after the JSON prefix; the
	// mixed-format log must restore once more.
	put(p2, "/notes/c.txt", "gamma")
	p3 := restartPod(t, p2, legacyDir, opts)
	requireSamePod(t, p3, p2, "/notes/a.txt", "/notes/c.txt")
}
