package solid

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// Client performs authenticated Solid requests on behalf of an agent.
type Client struct {
	// HTTP is the underlying HTTP client (http.DefaultClient if nil).
	HTTP *http.Client
	// Agent is the client's WebID; empty means anonymous.
	Agent WebID
	// Key signs requests for non-anonymous agents.
	Key *cryptoutil.KeyPair
	// Clock supplies request timestamps (real clock if nil).
	Clock simclock.Clock
	// Decorate, when non-nil, can add headers to every request (used to
	// attach market payment certificates).
	Decorate func(*http.Request)
}

// NewClient builds an authenticated client.
func NewClient(agent WebID, key *cryptoutil.KeyPair, clock simclock.Clock) *Client {
	return &Client{Agent: agent, Key: key, Clock: clock}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return simclock.Real{}.Now()
}

// newRequest builds a signed request for the resource URL.
func (c *Client) newRequest(method, resourceURL string, body []byte) (*http.Request, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, resourceURL, reader)
	if err != nil {
		return nil, err
	}
	if c.Agent != "" {
		if c.Key == nil {
			return nil, fmt.Errorf("solid: agent %s has no signing key", c.Agent)
		}
		u, err := url.Parse(resourceURL)
		if err != nil {
			return nil, err
		}
		date := c.now().UTC().Format(time.RFC3339Nano)
		sig, err := c.Key.Sign(signingString(method, u.Path, date))
		if err != nil {
			return nil, err
		}
		req.Header.Set(HeaderAgent, string(c.Agent))
		req.Header.Set(HeaderAgentKey, hex.EncodeToString(c.Key.PublicBytes()))
		req.Header.Set(HeaderDate, date)
		req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	}
	if c.Decorate != nil {
		c.Decorate(req)
	}
	return req, nil
}

// StatusError reports a non-2xx response.
type StatusError struct {
	Code int
	Body string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("solid: HTTP %d: %s", e.Code, e.Body)
}

func (c *Client) do(req *http.Request) ([]byte, string, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, "", &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	}
	return body, resp.Header.Get("Content-Type"), nil
}

// Get retrieves a resource.
func (c *Client) Get(resourceURL string) (data []byte, contentType string, err error) {
	req, err := c.newRequest(http.MethodGet, resourceURL, nil)
	if err != nil {
		return nil, "", err
	}
	return c.do(req)
}

// Put stores a resource.
func (c *Client) Put(resourceURL, contentType string, data []byte) error {
	req, err := c.newRequest(http.MethodPut, resourceURL, data)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	_, _, err = c.do(req)
	return err
}

// Delete removes a resource.
func (c *Client) Delete(resourceURL string) error {
	req, err := c.newRequest(http.MethodDelete, resourceURL, nil)
	if err != nil {
		return err
	}
	_, _, err = c.do(req)
	return err
}
