package solid

import (
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// Client performs authenticated Solid requests on behalf of an agent.
type Client struct {
	// HTTP is the underlying HTTP client (http.DefaultClient if nil).
	HTTP *http.Client
	// Agent is the client's WebID; empty means anonymous.
	Agent WebID
	// Key signs requests for non-anonymous agents.
	Key *cryptoutil.KeyPair
	// Clock supplies request timestamps (real clock if nil).
	Clock simclock.Clock
	// Decorate, when non-nil, can add headers to every request (used to
	// attach market payment certificates).
	Decorate func(*http.Request)

	// cacheMu guards cache; entries revalidate via If-None-Match so
	// unchanged resources are not re-transferred.
	cacheMu sync.Mutex
	cache   map[string]*cachedResource
}

// cachedResource is a validated copy kept for conditional revalidation.
type cachedResource struct {
	etag        string
	contentType string
	data        []byte
}

// maxClientCacheEntries bounds the conditional-GET cache; when full, the
// cache is reset (revalidation rebuilds it on demand).
const maxClientCacheEntries = 256

// NewClient builds an authenticated client.
func NewClient(agent WebID, key *cryptoutil.KeyPair, clock simclock.Clock) *Client {
	return &Client{Agent: agent, Key: key, Clock: clock}
}

// EnableCaching turns on conditional-GET caching: Get remembers each
// resource's ETag and body, revalidates with If-None-Match, and serves
// the cached copy on 304 Not Modified. Call before sharing the client
// across goroutines.
func (c *Client) EnableCaching() {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if c.cache == nil {
		c.cache = make(map[string]*cachedResource)
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return simclock.Real{}.Now()
}

// newNonce mints a single-use request nonce.
func newNonce() (string, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(buf[:]), nil
}

// newRequest builds a signed request for the resource URL.
func (c *Client) newRequest(method, resourceURL string, body []byte) (*http.Request, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, resourceURL, reader)
	if err != nil {
		return nil, err
	}
	if c.Agent != "" {
		if c.Key == nil {
			return nil, fmt.Errorf("solid: agent %s has no signing key", c.Agent)
		}
		u, err := url.Parse(resourceURL)
		if err != nil {
			return nil, err
		}
		date := c.now().UTC().Format(time.RFC3339Nano)
		nonce, err := newNonce()
		if err != nil {
			return nil, err
		}
		sig, err := c.Key.Sign(signingString(method, u.Path, date, nonce))
		if err != nil {
			return nil, err
		}
		req.Header.Set(HeaderAgent, string(c.Agent))
		req.Header.Set(HeaderAgentKey, hex.EncodeToString(c.Key.PublicBytes()))
		req.Header.Set(HeaderDate, date)
		req.Header.Set(HeaderNonce, nonce)
		req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	}
	if c.Decorate != nil {
		c.Decorate(req)
	}
	return req, nil
}

// StatusError reports a non-2xx response.
type StatusError struct {
	Code int
	Body string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("solid: HTTP %d: %s", e.Code, e.Body)
}

// doRaw executes the request and returns the body, headers and status.
func (c *Client) doRaw(req *http.Request) ([]byte, http.Header, int, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return nil, nil, 0, err
	}
	return body, resp.Header, resp.StatusCode, nil
}

func (c *Client) do(req *http.Request) ([]byte, string, error) {
	body, header, status, err := c.doRaw(req)
	if err != nil {
		return nil, "", err
	}
	if status < 200 || status > 299 {
		return nil, "", &StatusError{Code: status, Body: string(bytes.TrimSpace(body))}
	}
	return body, header.Get("Content-Type"), nil
}

// Get retrieves a resource. With caching enabled, a revalidated 304
// answer is served from the local copy without re-transferring the body.
func (c *Client) Get(resourceURL string) (data []byte, contentType string, err error) {
	req, err := c.newRequest(http.MethodGet, resourceURL, nil)
	if err != nil {
		return nil, "", err
	}
	var cached *cachedResource
	if c.cache != nil {
		c.cacheMu.Lock()
		cached = c.cache[resourceURL]
		c.cacheMu.Unlock()
		if cached != nil {
			req.Header.Set("If-None-Match", cached.etag)
		}
	}
	body, header, status, err := c.doRaw(req)
	if err != nil {
		return nil, "", err
	}
	if status == http.StatusNotModified && cached != nil {
		return append([]byte(nil), cached.data...), cached.contentType, nil
	}
	if status < 200 || status > 299 {
		return nil, "", &StatusError{Code: status, Body: string(bytes.TrimSpace(body))}
	}
	ct := header.Get("Content-Type")
	if c.cache != nil {
		if etag := header.Get("ETag"); etag != "" {
			c.cacheMu.Lock()
			if len(c.cache) >= maxClientCacheEntries {
				c.cache = make(map[string]*cachedResource)
			}
			c.cache[resourceURL] = &cachedResource{
				etag: etag, contentType: ct, data: append([]byte(nil), body...),
			}
			c.cacheMu.Unlock()
		}
	}
	return body, ct, nil
}

// invalidateCached drops the cached copy of a resource the client just
// mutated, so a later Get revalidates against the server's new state.
func (c *Client) invalidateCached(resourceURL string) {
	if c.cache == nil {
		return
	}
	c.cacheMu.Lock()
	delete(c.cache, resourceURL)
	c.cacheMu.Unlock()
}

// Put stores a resource.
func (c *Client) Put(resourceURL, contentType string, data []byte) error {
	req, err := c.newRequest(http.MethodPut, resourceURL, data)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if _, _, err = c.do(req); err != nil {
		return err
	}
	c.invalidateCached(resourceURL)
	return nil
}

// Post appends data: to a container URL it creates a contained resource
// and returns its Location; to a resource URL it appends to the body and
// returns the empty string.
func (c *Client) Post(resourceURL, contentType string, data []byte) (location string, err error) {
	req, err := c.newRequest(http.MethodPost, resourceURL, data)
	if err != nil {
		return "", err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	body, header, status, err := c.doRaw(req)
	if err != nil {
		return "", err
	}
	if status < 200 || status > 299 {
		return "", &StatusError{Code: status, Body: string(bytes.TrimSpace(body))}
	}
	c.invalidateCached(resourceURL)
	return header.Get("Location"), nil
}

// Delete removes a resource.
func (c *Client) Delete(resourceURL string) error {
	req, err := c.newRequest(http.MethodDelete, resourceURL, nil)
	if err != nil {
		return err
	}
	if _, _, err = c.do(req); err != nil {
		return err
	}
	c.invalidateCached(resourceURL)
	return nil
}
