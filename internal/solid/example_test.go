package solid_test

import (
	"fmt"

	"repro/internal/solid"
)

// ExampleACL shows a WAC document granting one agent read access and
// checking decisions.
func ExampleACL() {
	owner := solid.WebID("https://alice.pod/profile#me")
	bob := solid.WebID("https://bob.example/profile#me")

	acl := solid.NewACL(owner, "/web/browsing.csv")
	acl.Grant("bob-read", []solid.WebID{bob}, "/web/browsing.csv", false, solid.ModeRead)

	fmt.Println(acl.Allows(bob, "/web/browsing.csv", solid.ModeRead, false))
	fmt.Println(acl.Allows(bob, "/web/browsing.csv", solid.ModeWrite, false))
	fmt.Println(acl.Allows("https://eve.example/profile#me", "/web/browsing.csv", solid.ModeRead, false))
	// Output:
	// true
	// false
	// false
}
