package solid

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/simclock"
)

// PodRoutePrefix is where a Host mounts its pods: /pods/{owner}/<path>.
const PodRoutePrefix = "/pods/"

// hostShardCount spreads the pod registry over independent locks so
// lookups under heavy multi-tenant traffic do not serialize.
const hostShardCount = 32

// Host errors.
var (
	ErrPodExists  = errors.New("solid: pod already mounted")
	ErrBadPodName = errors.New("solid: invalid pod name")
)

// Host serves many pods behind a single http.Handler — the paper's
// deployment shape, where one provider hosts the pods of millions of
// users. Requests to /pods/{owner}/<path> are routed to the owner's pod
// server with <path> as the pod-relative resource path; the original
// request path stays the signature target, so credentials for one pod
// never validate on another. The registry is sharded: concurrent
// requests to different pods contend only within their shard.
type Host struct {
	dir    AgentDirectory
	clock  simclock.Clock
	shards [hostShardCount]hostShard

	// dataDir, when set via EnablePersistence, makes CreatePod build
	// durable pods under dataDir/<name>/ so a restarted host serves the
	// exact content — ETags and ACL generations included — of its
	// predecessor.
	dataDir     string
	persistOpts PodStoreOptions

	// metrics is never nil (defaults to the no-op handle); set it with
	// SetMetrics before mounting pods.
	metrics *Metrics
}

type hostShard struct {
	mu   sync.RWMutex
	pods map[string]*mountedPod // guarded by mu
}

type mountedPod struct {
	pod     *Pod
	handler http.Handler
}

// NewHost builds an empty multi-pod host. The directory authenticates
// agents for pods created through CreatePod; clock defaults to the real
// clock.
func NewHost(dir AgentDirectory, clock simclock.Clock) *Host {
	if clock == nil {
		clock = simclock.Real{}
	}
	h := &Host{dir: dir, clock: clock, metrics: noopMetrics}
	for i := range h.shards {
		h.shards[i].pods = make(map[string]*mountedPod)
	}
	return h
}

// SetMetrics wires the host's observability instruments. Call before
// mounting pods (pods and servers created by CreatePod capture the
// handle at creation); a nil m restores the no-op default.
func (h *Host) SetMetrics(m *Metrics) { h.metrics = m.orNoop() }

func (h *Host) shardFor(name string) *hostShard {
	f := fnv.New32a()
	_, _ = f.Write([]byte(name))
	return &h.shards[f.Sum32()%hostShardCount]
}

// validPodName accepts URL-safe single-segment names.
func validPodName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// EnablePersistence makes every subsequent CreatePod durable: pod
// content is journaled under dataDir/<name>/ and restored when a new
// host re-creates the pod over the same directory. Call before mounting
// pods.
func (h *Host) EnablePersistence(dataDir string, opts PodStoreOptions) {
	h.dataDir = dataDir
	h.persistOpts = opts
}

// CreatePod provisions a pod for the owner under /pods/{name}/ and mounts
// a server for it. hostBaseURL is the host's public base URL (no trailing
// slash); the pod's base URL becomes hostBaseURL + "/pods/" + name. On a
// persistent host (EnablePersistence) the pod is opened from its durable
// store, restoring any previous content.
func (h *Host) CreatePod(name string, owner WebID, hostBaseURL string, hook AccessHook) (*Pod, error) {
	if !validPodName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadPodName, name)
	}
	baseURL := strings.TrimSuffix(hostBaseURL, "/") + PodRoutePrefix + name
	var pod *Pod
	if h.dataDir != "" {
		var err error
		pod, err = OpenPod(owner, baseURL, filepath.Join(h.dataDir, name), h.persistOpts)
		if err != nil {
			return nil, err
		}
	} else {
		pod = NewPod(owner, baseURL)
	}
	pod.setMetrics(h.metrics)
	srv := NewServer(pod, h.dir, h.clock, hook)
	srv.SetMetrics(h.metrics)
	if err := h.Mount(name, pod, srv); err != nil {
		return nil, errors.Join(err, pod.CloseStore())
	}
	return pod, nil
}

// Close flushes and closes every mounted pod's durable store (no-op for
// in-memory pods), returning the first error encountered.
func (h *Host) Close() error {
	var first error
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		for _, m := range s.pods {
			if m.pod == nil {
				continue
			}
			if err := m.pod.CloseStore(); err != nil && first == nil {
				first = err
			}
		}
		s.mu.RUnlock()
	}
	return first
}

// Mount routes /pods/{name}/ to an externally built handler (typically a
// *Server wrapped by a pod manager). pod may be nil when the handler does
// not expose one.
func (h *Host) Mount(name string, pod *Pod, handler http.Handler) error {
	if !validPodName(name) {
		return fmt.Errorf("%w: %q", ErrBadPodName, name)
	}
	s := h.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.pods[name]; taken {
		return fmt.Errorf("%w: %s", ErrPodExists, name)
	}
	s.pods[name] = &mountedPod{pod: pod, handler: handler}
	return nil
}

// Lookup returns the mounted pod for a name (nil for handler-only mounts).
func (h *Host) Lookup(name string) (*Pod, bool) {
	s := h.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.pods[name]
	if !ok {
		return nil, false
	}
	return m.pod, true
}

// Remove unmounts a pod. It reports whether the pod was mounted.
func (h *Host) Remove(name string) bool {
	s := h.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pods[name]
	delete(s.pods, name)
	return ok
}

// Len counts mounted pods.
func (h *Host) Len() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.RLock()
		n += len(h.shards[i].pods)
		h.shards[i].mu.RUnlock()
	}
	return n
}

// Names lists the mounted pod names (unordered).
func (h *Host) Names() []string {
	var out []string
	for i := range h.shards {
		h.shards[i].mu.RLock()
		for name := range h.shards[i].pods {
			out = append(out, name)
		}
		h.shards[i].mu.RUnlock()
	}
	return out
}

// ServeHTTP implements http.Handler: it resolves the pod segment, rewrites
// the URL to the pod-relative path, records the original path as the
// signature target, and delegates to the pod's handler.
func (h *Host) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rest, ok := strings.CutPrefix(r.URL.Path, PodRoutePrefix)
	if !ok {
		h.metrics.UnroutedReqs.Inc()
		http.Error(w, "not found (pods live under "+PodRoutePrefix+")", http.StatusNotFound)
		return
	}
	name, podPath, found := strings.Cut(rest, "/")
	if !found {
		podPath = ""
	}
	podPath = "/" + podPath

	s := h.shardFor(name)
	s.mu.RLock()
	m, mounted := s.pods[name]
	s.mu.RUnlock()
	if !mounted {
		h.metrics.UnroutedReqs.Inc()
		http.Error(w, "unknown pod "+name, http.StatusNotFound)
		return
	}

	tm := h.metrics.requestLatency(podPath, r.Method).Start()
	defer tm.Stop()
	r2 := r.Clone(context.WithValue(r.Context(), signingPathKey{}, signingPath(r)))
	r2.URL.Path = podPath
	m.handler.ServeHTTP(w, r2)
}
