package solid

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
)

// Resource is one document stored in a pod.
type Resource struct {
	// Path is the pod-relative path ("/web/browsing.csv").
	Path string
	// ContentType is the MIME type.
	ContentType string
	// Data is the resource body.
	Data []byte
	// Modified is the last modification time.
	Modified time.Time
	// ETag is a strong validator over the body, set by the pod on every
	// write (quoted, ready for the HTTP ETag header).
	ETag string
}

// ETagFor computes the strong entity tag the pod assigns to a body.
func ETagFor(data []byte) string {
	sum := sha256.Sum256(data)
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// maxAuthCacheEntries bounds the decision cache; past it the cache is
// reset wholesale (correctness comes from the generation stamp, the bound
// only caps memory).
const maxAuthCacheEntries = 1 << 14

// authCacheKey identifies one access-control decision.
type authCacheKey struct {
	agent WebID
	path  string
	mode  AccessMode
}

// authDecision is a memoized Authorize outcome, valid only while the
// pod's ACL generation still equals gen.
type authDecision struct {
	gen uint64
	err error // nil = allowed; otherwise the stable ErrForbidden-wrapped denial
}

// Pod is a personal online datastore: a hierarchical resource tree with
// per-resource and inherited (acl:default) access control documents.
// A Pod is safe for concurrent use.
//
// Authorize decisions are memoized in a generation-stamped cache keyed by
// (agent, path, mode): every mutation (SetACL, Put, Delete, Append) bumps
// the generation, invalidating all cached decisions at once, so the hot
// read path costs one map lookup instead of an ancestor walk plus a
// linear authorization scan.
type Pod struct {
	owner   WebID
	baseURL string

	mu        sync.RWMutex
	resources map[string]*Resource // guarded by mu
	acls      map[string]*ACL      // keyed by the path the ACL document governs; guarded by mu
	postSeq   uint64               // server-assigned POST child names; guarded by mu

	aclGen       atomic.Uint64 // bumped on every mutation
	authMu       sync.RWMutex
	authCache    map[authCacheKey]authDecision // guarded by authMu
	authCacheOff atomic.Bool                   // benchmarks compare cached vs uncached

	// persist journals mutation effects to a per-pod op log (nil for
	// in-memory pods); see OpenPod. Guarded by mu.
	persist *podStore

	// metrics is never nil (defaults to the no-op handle); set via
	// setMetrics before the pod serves requests.
	metrics *Metrics
}

// Pod errors.
var (
	ErrNotFound  = errors.New("solid: resource not found")
	ErrForbidden = errors.New("solid: access denied")
	ErrBadPath   = errors.New("solid: invalid resource path")
	ErrNoACL     = errors.New("solid: no ACL document")
)

// NewPod creates a pod whose root ACL grants the owner full control.
func NewPod(owner WebID, baseURL string) *Pod {
	p := &Pod{
		owner:     owner,
		baseURL:   strings.TrimSuffix(baseURL, "/"),
		resources: make(map[string]*Resource),
		acls:      make(map[string]*ACL),
		authCache: make(map[authCacheKey]authDecision),
		metrics:   noopMetrics,
	}
	p.acls["/"] = NewACL(owner, "/")
	return p
}

// setMetrics wires the pod's observability instruments (hosts call it
// from CreatePod, before the pod serves). A nil m restores the no-op
// default.
func (p *Pod) setMetrics(m *Metrics) { p.metrics = m.orNoop() }

// SetAuthCacheEnabled toggles the ACL decision cache (on by default).
// Disabling exists for benchmarking the uncached path; correctness does
// not depend on the cache either way.
func (p *Pod) SetAuthCacheEnabled(enabled bool) {
	p.authCacheOff.Store(!enabled)
	if !enabled {
		p.authMu.Lock()
		p.authCache = make(map[authCacheKey]authDecision)
		p.authMu.Unlock()
	}
}

// invalidateAuthCache advances the ACL generation, orphaning every cached
// decision. Callers hold p.mu for writing.
func (p *Pod) invalidateAuthCache() {
	p.aclGen.Add(1)
}

// Owner returns the pod owner's WebID.
func (p *Pod) Owner() WebID { return p.owner }

// ACLGeneration returns the pod's current ACL generation. The counter
// advances on every mutation (SetACL, Put, Delete, Append), so two equal
// readings bracket a window in which every authorization decision was
// made against the same ACL state — invariant checkers use it to stamp
// "as of generation g, agent x was (not) granted" facts.
func (p *Pod) ACLGeneration() uint64 { return p.aclGen.Load() }

// BaseURL returns the pod's base URL (no trailing slash).
func (p *Pod) BaseURL() string { return p.baseURL }

// normalizePath validates and canonicalizes a pod-relative path.
func normalizePath(raw string) (string, error) {
	if raw == "" || raw[0] != '/' {
		return "", fmt.Errorf("%w: %q must start with '/'", ErrBadPath, raw)
	}
	// Reject traversal attempts outright rather than silently resolving
	// them; a client that sends ".." is either buggy or probing.
	if strings.Contains(raw, "..") {
		return "", fmt.Errorf("%w: %q contains '..'", ErrBadPath, raw)
	}
	clean := path.Clean(raw)
	// path.Clean strips trailing slashes; keep container paths marked.
	if raw != "/" && strings.HasSuffix(raw, "/") && clean != "/" {
		clean += "/"
	}
	return clean, nil
}

// Put stores (creates or replaces) a resource, subject to the agent
// holding Write access.
func (p *Pod) Put(agent WebID, resPath, contentType string, data []byte, now time.Time) error {
	_, _, err := p.PutResource(agent, resPath, contentType, data, now)
	return err
}

// PutResource is Put reporting whether the resource was created (true) or
// an existing one overwritten (false) and the stored entity tag, so HTTP
// handlers can answer 201 vs 200 with the validator without re-hashing
// the body.
func (p *Pod) PutResource(agent WebID, resPath, contentType string, data []byte, now time.Time) (created bool, etag string, err error) {
	clean, err := normalizePath(resPath)
	if err != nil {
		return false, "", err
	}
	if err := p.Authorize(agent, clean, ModeWrite); err != nil {
		return false, "", err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	_, existed := p.resources[clean]
	body := make([]byte, len(data))
	copy(body, data)
	etag = ETagFor(body)
	res := &Resource{
		Path:        clean,
		ContentType: contentType,
		Data:        body,
		Modified:    now,
		ETag:        etag,
	}
	// Journal before apply: a write the op log refuses is never visible.
	if err := p.logOpLocked(putOp(res)); err != nil {
		return false, "", err
	}
	p.resources[clean] = res
	p.invalidateAuthCache()
	p.maybeSnapshotLocked()
	return !existed, etag, nil
}

// putOp builds the logged effect of storing res.
func putOp(res *Resource) podOp {
	return podOp{
		Kind:        "put",
		Path:        res.Path,
		ContentType: res.ContentType,
		Data:        res.Data,
		Modified:    res.Modified,
	}
}

// Append adds data to a resource, subject to the agent holding Append
// access (which Write implies). Appending to a container path creates a
// fresh contained resource with a server-assigned name (LDP POST
// semantics); appending to a missing resource creates it. It returns the
// path of the affected resource and whether it was created.
func (p *Pod) Append(agent WebID, resPath, contentType string, data []byte, now time.Time) (storedPath string, created bool, err error) {
	clean, err := normalizePath(resPath)
	if err != nil {
		return "", false, err
	}
	if err := p.Authorize(agent, clean, ModeAppend); err != nil {
		return "", false, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if strings.HasSuffix(clean, "/") {
		// POST to a container: mint a child that does not collide.
		prevSeq := p.postSeq
		for {
			p.postSeq++
			storedPath = fmt.Sprintf("%sres-%06d", clean, p.postSeq)
			if _, taken := p.resources[storedPath]; !taken {
				break
			}
		}
		body := append([]byte(nil), data...)
		minted := &Resource{
			Path: storedPath, ContentType: contentType,
			Data: body, Modified: now, ETag: ETagFor(body),
		}
		if err := p.logOpLocked(putOp(minted)); err != nil {
			p.postSeq = prevSeq
			return "", false, err
		}
		p.resources[storedPath] = minted
		p.invalidateAuthCache()
		p.maybeSnapshotLocked()
		return storedPath, true, nil
	}
	res, ok := p.resources[clean]
	if !ok {
		body := append([]byte(nil), data...)
		created := &Resource{
			Path: clean, ContentType: contentType,
			Data: body, Modified: now, ETag: ETagFor(body),
		}
		if err := p.logOpLocked(putOp(created)); err != nil {
			return "", false, err
		}
		p.resources[clean] = created
		p.invalidateAuthCache()
		p.maybeSnapshotLocked()
		return clean, true, nil
	}
	body := make([]byte, 0, len(res.Data)+len(data))
	body = append(append(body, res.Data...), data...)
	ct := res.ContentType
	if ct == "" {
		ct = contentType
	}
	extended := &Resource{
		Path: clean, ContentType: ct,
		Data: body, Modified: now, ETag: ETagFor(body),
	}
	if err := p.logOpLocked(putOp(extended)); err != nil {
		return "", false, err
	}
	p.resources[clean] = extended
	p.invalidateAuthCache()
	p.maybeSnapshotLocked()
	return clean, false, nil
}

// Get retrieves a resource, subject to Read access.
func (p *Pod) Get(agent WebID, resPath string) (*Resource, error) {
	clean, err := normalizePath(resPath)
	if err != nil {
		return nil, err
	}
	if err := p.Authorize(agent, clean, ModeRead); err != nil {
		return nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	res, ok := p.resources[clean]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, clean)
	}
	cp := *res
	cp.Data = append([]byte(nil), res.Data...)
	return &cp, nil
}

// Delete removes a resource, subject to Write access.
func (p *Pod) Delete(agent WebID, resPath string) error {
	clean, err := normalizePath(resPath)
	if err != nil {
		return err
	}
	if err := p.Authorize(agent, clean, ModeWrite); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.resources[clean]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, clean)
	}
	if err := p.logOpLocked(podOp{Kind: "del", Path: clean}); err != nil {
		return err
	}
	delete(p.resources, clean)
	p.invalidateAuthCache()
	p.maybeSnapshotLocked()
	return nil
}

// List returns the paths directly contained in a container path, subject
// to Read access on the container.
func (p *Pod) List(agent WebID, containerPath string) ([]string, error) {
	clean, err := normalizePath(containerPath)
	if err != nil {
		return nil, err
	}
	if clean != "/" && !strings.HasSuffix(clean, "/") {
		clean += "/"
	}
	if err := p.Authorize(agent, clean, ModeRead); err != nil {
		return nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	seen := map[string]struct{}{}
	for rp := range p.resources {
		if !strings.HasPrefix(rp, clean) || rp == clean {
			continue
		}
		rest := rp[len(clean):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seen[clean+rest[:i+1]] = struct{}{} // sub-container
		} else {
			seen[rp] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// SetACL installs an ACL document governing the given path, subject to the
// agent holding Control access on that path.
func (p *Pod) SetACL(agent WebID, resPath string, acl *ACL) error {
	clean, err := normalizePath(resPath)
	if err != nil {
		return err
	}
	if err := p.Authorize(agent, clean, ModeControl); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.logOpLocked(podOp{Kind: "acl", Path: clean, ACL: acl}); err != nil {
		return err
	}
	p.acls[clean] = acl
	p.invalidateAuthCache()
	p.maybeSnapshotLocked()
	return nil
}

// GetACL returns the ACL document stored exactly at the given path,
// subject to Control access.
func (p *Pod) GetACL(agent WebID, resPath string) (*ACL, error) {
	clean, err := normalizePath(resPath)
	if err != nil {
		return nil, err
	}
	if err := p.Authorize(agent, clean, ModeControl); err != nil {
		return nil, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	acl, ok := p.acls[clean]
	if !ok {
		return nil, fmt.Errorf("%w at %s", ErrNoACL, clean)
	}
	return acl, nil
}

// Authorize checks whether the agent holds the mode on the path, walking
// up the container hierarchy to the nearest ACL document (WAC inheritance:
// the resource's own ACL wins; otherwise the closest ancestor's
// acl:default authorizations apply). Decisions are served from the
// generation-stamped cache when the ACL set has not changed since they
// were computed.
func (p *Pod) Authorize(agent WebID, resPath string, mode AccessMode) error {
	clean, err := normalizePath(resPath)
	if err != nil {
		return err
	}

	// The pod owner always holds full access to their own pod.
	if agent == p.owner {
		return nil
	}

	useCache := !p.authCacheOff.Load()
	key := authCacheKey{agent: agent, path: clean, mode: mode}
	// Snapshot the generation before evaluating: a decision computed
	// against newer state stored under an older stamp is merely ignored,
	// never trusted.
	gen := p.aclGen.Load()
	if useCache {
		p.authMu.RLock()
		dec, ok := p.authCache[key]
		p.authMu.RUnlock()
		if ok && dec.gen == gen {
			p.metrics.AuthCacheHits.Inc()
			return dec.err
		}
	}

	p.metrics.AuthCacheMisses.Inc()
	decision := p.authorizeUncached(agent, clean, mode)
	if useCache {
		p.authMu.Lock()
		if len(p.authCache) >= maxAuthCacheEntries {
			p.authCache = make(map[authCacheKey]authDecision)
		}
		p.authCache[key] = authDecision{gen: gen, err: decision}
		p.authMu.Unlock()
	}
	return decision
}

// authorizeUncached is the full decision procedure: ancestor walk plus
// linear Allows scan.
func (p *Pod) authorizeUncached(agent WebID, clean string, mode AccessMode) error {
	p.mu.RLock()
	defer p.mu.RUnlock()

	if acl, ok := p.acls[clean]; ok {
		if acl.Allows(agent, clean, mode, false) {
			return nil
		}
		// An ACL document exactly on the resource is authoritative: no
		// fallback to ancestors.
		return fmt.Errorf("%w: %s needs %s on %s", ErrForbidden, agent, mode, clean)
	}
	for _, ancestor := range ancestorsOf(clean) {
		if acl, ok := p.acls[ancestor]; ok {
			if acl.Allows(agent, clean, mode, true) {
				return nil
			}
			return fmt.Errorf("%w: %s needs %s on %s (inherited from %s)",
				ErrForbidden, agent, mode, clean, ancestor)
		}
	}
	return fmt.Errorf("%w: %s needs %s on %s (no applicable ACL)", ErrForbidden, agent, mode, clean)
}

// ancestorsOf lists the container paths from the immediate parent to the
// root, e.g. "/a/b/c.txt" -> ["/a/b/", "/a/", "/"].
func ancestorsOf(p string) []string {
	var out []string
	trimmed := strings.TrimSuffix(p, "/")
	for {
		i := strings.LastIndexByte(trimmed, '/')
		if i < 0 {
			break
		}
		if i == 0 {
			out = append(out, "/")
			break
		}
		out = append(out, trimmed[:i+1])
		trimmed = trimmed[:i]
	}
	return out
}

// ContainerListing renders a container listing as an LDP Turtle document.
func (p *Pod) ContainerListing(agent WebID, containerPath string) (string, error) {
	entries, err := p.List(agent, containerPath)
	if err != nil {
		return "", err
	}
	g := rdf.NewGraph()
	container := rdf.IRI(p.baseURL + containerPath)
	g.Add(rdf.T(container, rdf.IRI(rdf.RDFType), rdf.IRI(rdf.LDPContainer)))
	for _, e := range entries {
		g.Add(rdf.T(container, rdf.IRI(rdf.LDPContains), rdf.IRI(p.baseURL+e)))
	}
	return rdf.SerializeTurtle(g, map[string]string{
		"ldp": "http://www.w3.org/ns/ldp#",
	}), nil
}

// Stats reports resource count and total bytes, for experiments.
func (p *Pod) Stats() (count int, bytes int) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, r := range p.resources {
		count++
		bytes += len(r.Data)
	}
	return count, bytes
}
