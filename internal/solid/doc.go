// Package solid implements the Solid substrate: personal online datastores
// (pods) holding a hierarchical resource tree, Web Access Control (WAC)
// authorization documents expressed in Turtle, and an LDP-style HTTP
// server and client for the Solid communication rules the paper's
// architecture builds on.
//
// The package reproduces exactly the subset of the Solid protocol the
// architecture needs: agents identified by WebIDs perform HTTP CRUD on pod
// resources, and the pod decides access by evaluating ACL documents with
// acl:accessTo / acl:default inheritance, acl:agent / acl:agentClass
// subjects, and the Read/Write/Append/Control modes (Write implies
// Append). GET answers carry ETag and Last-Modified validators and honour
// If-None-Match / If-Modified-Since, so clients (see Client.EnableCaching)
// revalidate instead of re-transferring unchanged resources; POST appends
// (to a resource) or mints a contained resource (on a container, LDP
// style).
//
// # Multi-pod hosting
//
// Host serves any number of pods behind one http.Handler — the paper's
// deployment shape, where a single provider hosts the pods of many users.
// Pods mount at /pods/{owner}/; the Host rewrites the URL to the
// pod-relative path before delegating to the pod's Server, while the
// original request path remains the signature target, so a credential
// captured for one pod can never validate on another. The registry is
// sharded across independent locks: concurrent requests only contend
// within the shard of the pod they address.
//
// # Authorization cache
//
// Pod.Authorize memoizes decisions in a generation-stamped cache keyed by
// (agent, path, mode). The invalidation contract: every mutation of pod
// state — SetACL, Put, Delete, Append — bumps the pod's ACL generation,
// which orphans all cached decisions at once; a cached entry is only
// served while its stamp equals the current generation, and entries are
// stamped with the generation observed *before* evaluation, so a decision
// computed against newer state under an older stamp is ignored, never
// trusted. The hot read path therefore costs one map lookup instead of an
// ancestor walk plus a linear authorization scan; benchmarks live in the
// repository root (BenchmarkSolidAuthorizeCache) and the harness
// (Harness.AblationAuthCache).
//
// # Authentication and replay protection
//
// Requests are signed over "method|path|date|nonce". The server rejects
// timestamps outside MaxClockSkew and remembers each agent's verified
// nonces within the window, so a captured request cannot be replayed
// verbatim; only successfully verified requests consume their nonce.
// Guard memory is bounded per agent, and capacity eviction is strictly
// per agent: flooding can only ever weaken the flooding agent's own
// replay protection, never another agent's.
//
// # Concurrency contract
//
// Pod, Server and Host are safe for concurrent use: each guards its
// state with RWMutexes (the Host shards its registry), so reads run in
// parallel and HTTP handlers may be served from any number of
// goroutines. Individual operations are atomic — a Get observes either
// all or none of a concurrent Put — but the package offers no
// multi-resource transactions: a reader walking a container while a
// writer updates two resources may observe the intermediate state.
// Client is a thin wrapper over http.Client plus a signing key; it is
// safe for concurrent use as long as Decorate is not reassigned
// mid-flight and EnableCaching, if used, is called before sharing.
//
// # Durability
//
// A pod opened with OpenPod (or created on a Host after
// EnablePersistence) journals every mutation's effect — the stored
// bytes, the deleted path, the installed ACL — to a per-pod op log,
// with full-content snapshots bounding replay. A restarted pod serves
// byte-identical resources with identical ETags, reports the same ACL
// generation, and never re-mints a POST-assigned child name. Mutations
// on a durable pod fail if their journal append fails; replay applies
// effects directly and re-checks nothing (authorization happened when
// the op was logged).
package solid
