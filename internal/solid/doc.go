// Package solid implements the Solid substrate: personal online datastores
// (pods) holding a hierarchical resource tree, Web Access Control (WAC)
// authorization documents expressed in Turtle, and an LDP-style HTTP
// server and client for the Solid communication rules the paper's
// architecture builds on.
//
// The package reproduces exactly the subset of the Solid protocol the
// architecture needs: agents identified by WebIDs perform HTTP CRUD on pod
// resources, and the pod decides access by evaluating ACL documents with
// acl:accessTo / acl:default inheritance, acl:agent / acl:agentClass
// subjects, and the Read/Write/Append/Control modes.
//
// # Concurrency contract
//
// Pod and Server are safe for concurrent use: each guards its resource
// tree (and, for Server, its agent directory) with an RWMutex, so reads
// run in parallel and HTTP handlers may be served from any number of
// goroutines. Individual operations are atomic — a Get observes either
// all or none of a concurrent Put — but the package offers no
// multi-resource transactions: a reader walking a container while a
// writer updates two resources may observe the intermediate state.
// Client is a thin stateless wrapper over http.Client plus a signing
// key; it is safe for concurrent use as long as Decorate is not
// reassigned mid-flight.
package solid
