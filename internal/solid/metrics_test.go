package solid

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/simclock"
)

func TestHostMetricsRecorded(t *testing.T) {
	clk := simclock.NewSim(podEpoch)
	dir := NewMapDirectory()
	host := NewHost(dir, clk)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	host.SetMetrics(m)

	key := cryptoutil.MustGenerateKey()
	owner := WebID("https://alice.example/profile#me")
	dir.Register(owner, key.PublicBytes())

	srv := httptest.NewServer(host)
	t.Cleanup(srv.Close)
	if _, err := host.CreatePod("alice", owner, srv.URL, nil); err != nil {
		t.Fatal(err)
	}
	client := NewClient(owner, key, clk)

	// Resource write + read, container read.
	url := srv.URL + "/pods/alice/data/r.txt"
	if err := client.Put(url, "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Get(url); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Get(srv.URL + "/pods/alice/data/"); err != nil {
		t.Fatal(err)
	}
	// Unknown pod: counted, not timed.
	resp, err := http.Get(srv.URL + "/pods/nosuch/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if m.ResourceWrite.Count() != 1 || m.ResourceRead.Count() != 1 || m.ContainerRead.Count() != 1 {
		t.Fatalf("request latency counts: write=%d read=%d container=%d",
			m.ResourceWrite.Count(), m.ResourceRead.Count(), m.ContainerRead.Count())
	}
	if m.UnroutedReqs.Value() != 1 {
		t.Fatalf("unrouted = %d, want 1", m.UnroutedReqs.Value())
	}
	// The owner short-circuits Authorize before the cache, so no cache
	// traffic yet; a non-owner agent drives hit/miss.
	bobKey := cryptoutil.MustGenerateKey()
	bob := WebID("https://bob.example/profile#me")
	dir.Register(bob, bobKey.PublicBytes())
	bobClient := NewClient(bob, bobKey, clk)
	for range 3 {
		// Forbidden, but each decision exercises the ACL cache.
		_, _, _ = bobClient.Get(url)
	}
	if m.AuthCacheMisses.Value() != 1 || m.AuthCacheHits.Value() != 2 {
		t.Fatalf("auth cache hit/miss = %d/%d, want 2/1",
			m.AuthCacheHits.Value(), m.AuthCacheMisses.Value())
	}
}

func TestServerReplayMetric(t *testing.T) {
	e := newTestEnv(t, nil)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	// testEnv builds the server directly; re-wire its instruments.
	e.srv.Config.Handler.(*Server).SetMetrics(m)
	e.pod.setMetrics(m)

	if err := e.alice.Put(e.url("/r.txt"), "text/plain", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Capture a signed request and replay it verbatim.
	req, err := e.alice.newRequest(http.MethodGet, e.url("/r.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantStatus := range []int{http.StatusOK, http.StatusUnauthorized} {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("attempt %d: status %d, want %d", i, resp.StatusCode, wantStatus)
		}
	}
	if m.NonceReplays.Value() != 1 {
		t.Fatalf("nonce replays = %d, want 1", m.NonceReplays.Value())
	}
	if m.AuthFailures.Value() != 0 {
		t.Fatalf("auth failures = %d, want 0 (replay is not a generic failure)", m.AuthFailures.Value())
	}

	// A garbage signature is a generic auth failure, not a replay.
	bad, err := e.alice.newRequest(http.MethodGet, e.url("/r.txt"), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad.Header.Set(HeaderSignature, "bm90LWEtc2lnbmF0dXJl")
	resp, err := http.DefaultClient.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad signature: status %d", resp.StatusCode)
	}
	if m.AuthFailures.Value() != 1 {
		t.Fatalf("auth failures = %d, want 1", m.AuthFailures.Value())
	}
}

func TestSolidMetricsSeries(t *testing.T) {
	reg := obs.NewRegistry()
	NewMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`solid_request_latency_ns{class="resource",mode="read",quantile="0.99"}`,
		`solid_auth_cache_total{outcome="hit"}`,
		"solid_nonce_replays_total",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
	if reg.Len() == 0 {
		t.Fatal("no series registered")
	}
}
