package solid

import (
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// Authentication headers of the simulated Solid-OIDC scheme: the agent
// presents its WebID, its public key, a timestamp, and an ECDSA signature
// over "method|path|date". The server verifies the signature and checks
// the key against the agent directory (the stand-in for dereferencing the
// WebID profile document).
const (
	HeaderAgent     = "X-Agent"
	HeaderAgentKey  = "X-Agent-Key"
	HeaderDate      = "X-Date"
	HeaderSignature = "X-Signature"
)

// MaxClockSkew bounds how stale a signed request may be, limiting replay.
const MaxClockSkew = 5 * time.Minute

// AgentDirectory resolves a WebID to its registered public key
// (uncompressed point). It simulates fetching the key from the agent's
// WebID profile document.
type AgentDirectory interface {
	// KeyFor returns the public key bytes for the WebID, or false if the
	// agent is unknown.
	KeyFor(agent WebID) ([]byte, bool)
}

// MapDirectory is an in-memory AgentDirectory.
type MapDirectory struct {
	mu   sync.RWMutex
	keys map[WebID][]byte
}

var _ AgentDirectory = (*MapDirectory)(nil)

// NewMapDirectory returns an empty directory.
func NewMapDirectory() *MapDirectory {
	return &MapDirectory{keys: make(map[WebID][]byte)}
}

// Register associates an agent with its public key.
func (d *MapDirectory) Register(agent WebID, key []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[agent] = append([]byte(nil), key...)
}

// KeyFor implements AgentDirectory.
func (d *MapDirectory) KeyFor(agent WebID) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[agent]
	return k, ok
}

// AccessHook lets embedders add checks beyond WAC (the pod manager uses it
// to demand a market payment certificate on data-market resources). It
// runs after authentication and before the ACL check.
type AccessHook func(r *http.Request, agent WebID, path string, mode AccessMode) error

// Server serves a pod over the Solid communication rules.
type Server struct {
	pod   *Pod
	dir   AgentDirectory
	clock simclock.Clock
	hook  AccessHook
}

// NewServer builds a pod server. clock defaults to the real clock; hook
// may be nil.
func NewServer(pod *Pod, dir AgentDirectory, clock simclock.Clock, hook AccessHook) *Server {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Server{pod: pod, dir: dir, clock: clock, hook: hook}
}

// Pod returns the served pod.
func (s *Server) Pod() *Pod { return s.pod }

// signingString is the byte string covered by the request signature.
func signingString(method, path, date string) []byte {
	return []byte(method + "|" + path + "|" + date)
}

// authenticate identifies the requesting agent. Requests without an
// X-Agent header are anonymous (WebID ""). Bad credentials are an error.
func (s *Server) authenticate(r *http.Request) (WebID, error) {
	agent := WebID(r.Header.Get(HeaderAgent))
	if agent == "" {
		return "", nil
	}
	keyHex := r.Header.Get(HeaderAgentKey)
	sigB64 := r.Header.Get(HeaderSignature)
	date := r.Header.Get(HeaderDate)
	if keyHex == "" || sigB64 == "" || date == "" {
		return "", errors.New("solid: incomplete authentication headers")
	}
	ts, err := time.Parse(time.RFC3339Nano, date)
	if err != nil {
		return "", fmt.Errorf("solid: bad %s: %w", HeaderDate, err)
	}
	now := s.clock.Now()
	if ts.Before(now.Add(-MaxClockSkew)) || ts.After(now.Add(MaxClockSkew)) {
		return "", fmt.Errorf("solid: request timestamp %s outside allowed skew", date)
	}
	keyBytes, err := hex.DecodeString(keyHex)
	if err != nil {
		return "", fmt.Errorf("solid: bad %s: %w", HeaderAgentKey, err)
	}
	registered, ok := s.dir.KeyFor(agent)
	if !ok {
		return "", fmt.Errorf("solid: unknown agent %s", agent)
	}
	if string(registered) != string(keyBytes) {
		return "", fmt.Errorf("solid: presented key does not match the profile of %s", agent)
	}
	pub, err := cryptoutil.ParsePublicKey(keyBytes)
	if err != nil {
		return "", fmt.Errorf("solid: bad agent key: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("solid: bad %s: %w", HeaderSignature, err)
	}
	if !cryptoutil.Verify(pub, signingString(r.Method, r.URL.Path, date), sig) {
		return "", errors.New("solid: request signature invalid")
	}
	return agent, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	agent, err := s.authenticate(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	path := r.URL.Path

	var mode AccessMode
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		mode = ModeRead
	case http.MethodPut, http.MethodDelete, http.MethodPost:
		mode = ModeWrite
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	if s.hook != nil {
		if err := s.hook(r, agent, path, mode); err != nil {
			status := http.StatusForbidden
			if errors.Is(err, ErrNotFound) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
	}

	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.handleGet(w, r, agent, path)
	case http.MethodPut:
		s.handlePut(w, r, agent, path)
	case http.MethodDelete:
		s.handleDelete(w, r, agent, path)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoACL):
		return http.StatusNotFound
	case errors.Is(err, ErrBadPath):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, agent WebID, path string) {
	if strings.HasSuffix(path, "/") {
		doc, err := s.pod.ContainerListing(agent, path)
		if err != nil {
			http.Error(w, err.Error(), httpStatusFor(err))
			return
		}
		w.Header().Set("Content-Type", "text/turtle")
		_, _ = io.WriteString(w, doc)
		return
	}
	res, err := s.pod.Get(agent, path)
	if err != nil {
		http.Error(w, err.Error(), httpStatusFor(err))
		return
	}
	ct := res.ContentType
	if ct == "" {
		ct = "application/octet-stream"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Last-Modified", res.Modified.UTC().Format(http.TimeFormat))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(res.Data)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, agent WebID, path string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ct := r.Header.Get("Content-Type")
	if err := s.pod.Put(agent, path, ct, body, s.clock.Now()); err != nil {
		http.Error(w, err.Error(), httpStatusFor(err))
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, agent WebID, path string) {
	if err := s.pod.Delete(agent, path); err != nil {
		http.Error(w, err.Error(), httpStatusFor(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
