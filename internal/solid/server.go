package solid

import (
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
)

// Authentication headers of the simulated Solid-OIDC scheme: the agent
// presents its WebID, its public key, a timestamp, a single-use nonce,
// and an ECDSA signature over "method|path|date|nonce". The server
// verifies the signature, checks the key against the agent directory (the
// stand-in for dereferencing the WebID profile document), and rejects any
// (agent, nonce) pair it has already seen within the skew window — so a
// captured request cannot be replayed verbatim.
const (
	HeaderAgent     = "X-Agent"
	HeaderAgentKey  = "X-Agent-Key"
	HeaderDate      = "X-Date"
	HeaderNonce     = "X-Nonce"
	HeaderSignature = "X-Signature"
)

// MaxClockSkew bounds how stale a signed request may be. Within the
// window, the per-agent seen-nonce check blocks replays.
const MaxClockSkew = 5 * time.Minute

// MaxBodyBytes caps accepted request bodies; larger uploads are refused
// with 413 rather than silently truncated.
const MaxBodyBytes = 64 << 20

// ErrNonceReplayed reports a verified request whose (agent, nonce) pair
// was already consumed within the skew window — a verbatim replay.
var ErrNonceReplayed = errors.New("solid: nonce already used")

// maxNoncesPerAgent bounds replay-guard memory per agent. Capacity
// eviction is strictly per agent — an agent past its quota loses its own
// oldest nonce — so a flood of signed requests can only ever weaken the
// flooding agent's replay protection, never another agent's, and a pod
// under heavy legitimate traffic never locks its agents out.
const maxNoncesPerAgent = 1 << 10

// replayGuard remembers each agent's used nonces until their request
// timestamps age out of the skew window (a replay of an aged-out request
// already fails the staleness check on its own).
type replayGuard struct {
	mu     sync.Mutex
	agents map[WebID]*agentNonces
}

type agentNonces struct {
	seen  map[string]time.Time // nonce -> signed request timestamp
	order []nonceEntry         // insertion order, for pruning/eviction
}

type nonceEntry struct {
	nonce string
	ts    time.Time
}

func newReplayGuard() *replayGuard {
	return &replayGuard{agents: make(map[WebID]*agentNonces)}
}

// check records the nonce, failing if the agent already used it. ts is
// the signed request timestamp; now prunes entries that have aged out of
// the skew window.
func (g *replayGuard) check(agent WebID, nonce string, ts, now time.Time) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.agents[agent]
	if a == nil {
		a = &agentNonces{seen: make(map[string]time.Time)}
		g.agents[agent] = a
	}
	// Prune this agent's aged-out entries. The queue is insertion-ordered
	// while timestamps are client-chosen within the skew window, so a
	// future-stamped entry can delay pruning behind it — but only for the
	// agent that sent it, and capacity eviction below still bounds memory.
	horizon := now.Add(-MaxClockSkew)
	i := 0
	for ; i < len(a.order); i++ {
		if !a.order[i].ts.Before(horizon) {
			break
		}
		delete(a.seen, a.order[i].nonce)
	}
	if i > 0 {
		a.order = append(a.order[:0], a.order[i:]...)
	}
	if _, dup := a.seen[nonce]; dup {
		return fmt.Errorf("%w: nonce %s by %s", ErrNonceReplayed, nonce, agent)
	}
	if len(a.order) >= maxNoncesPerAgent {
		oldest := a.order[0]
		a.order = a.order[1:]
		delete(a.seen, oldest.nonce)
	}
	a.seen[nonce] = ts
	a.order = append(a.order, nonceEntry{nonce: nonce, ts: ts})
	return nil
}

// AgentDirectory resolves a WebID to its registered public key
// (uncompressed point). It simulates fetching the key from the agent's
// WebID profile document.
type AgentDirectory interface {
	// KeyFor returns the public key bytes for the WebID, or false if the
	// agent is unknown.
	KeyFor(agent WebID) ([]byte, bool)
}

// MapDirectory is an in-memory AgentDirectory.
type MapDirectory struct {
	mu   sync.RWMutex
	keys map[WebID][]byte
}

var _ AgentDirectory = (*MapDirectory)(nil)

// NewMapDirectory returns an empty directory.
func NewMapDirectory() *MapDirectory {
	return &MapDirectory{keys: make(map[WebID][]byte)}
}

// Register associates an agent with its public key.
func (d *MapDirectory) Register(agent WebID, key []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[agent] = append([]byte(nil), key...)
}

// KeyFor implements AgentDirectory.
func (d *MapDirectory) KeyFor(agent WebID) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[agent]
	return k, ok
}

// AccessHook lets embedders add checks beyond WAC (the pod manager uses it
// to demand a market payment certificate on data-market resources). It
// runs after authentication and before the ACL check.
type AccessHook func(r *http.Request, agent WebID, path string, mode AccessMode) error

// Server serves a pod over the Solid communication rules.
type Server struct {
	pod     *Pod
	dir     AgentDirectory
	clock   simclock.Clock
	hook    AccessHook
	replay  *replayGuard
	metrics *Metrics // never nil; see SetMetrics
}

// NewServer builds a pod server. clock defaults to the real clock; hook
// may be nil.
func NewServer(pod *Pod, dir AgentDirectory, clock simclock.Clock, hook AccessHook) *Server {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Server{pod: pod, dir: dir, clock: clock, hook: hook, replay: newReplayGuard(), metrics: noopMetrics}
}

// SetMetrics wires the server's observability instruments. Call before
// serving; a nil m restores the no-op default.
func (s *Server) SetMetrics(m *Metrics) { s.metrics = m.orNoop() }

// Pod returns the served pod.
func (s *Server) Pod() *Pod { return s.pod }

// signingString is the byte string covered by the request signature.
func signingString(method, path, date, nonce string) []byte {
	return []byte(method + "|" + path + "|" + date + "|" + nonce)
}

// signingPathKey marks the request-path the client signed when a Host has
// rewritten URL.Path to the pod-relative form.
type signingPathKey struct{}

// signingPath returns the path covered by the request signature: the
// original request path as received by the front handler.
func signingPath(r *http.Request) string {
	if p, ok := r.Context().Value(signingPathKey{}).(string); ok {
		return p
	}
	return r.URL.Path
}

// authenticate identifies the requesting agent. Requests without an
// X-Agent header are anonymous (WebID ""). Bad credentials are an error.
func (s *Server) authenticate(r *http.Request) (WebID, error) {
	agent := WebID(r.Header.Get(HeaderAgent))
	if agent == "" {
		return "", nil
	}
	keyHex := r.Header.Get(HeaderAgentKey)
	sigB64 := r.Header.Get(HeaderSignature)
	date := r.Header.Get(HeaderDate)
	nonce := r.Header.Get(HeaderNonce)
	if keyHex == "" || sigB64 == "" || date == "" || nonce == "" {
		return "", errors.New("solid: incomplete authentication headers")
	}
	ts, err := time.Parse(time.RFC3339Nano, date)
	if err != nil {
		return "", fmt.Errorf("solid: bad %s: %w", HeaderDate, err)
	}
	now := s.clock.Now()
	if ts.Before(now.Add(-MaxClockSkew)) || ts.After(now.Add(MaxClockSkew)) {
		return "", fmt.Errorf("solid: request timestamp %s outside allowed skew", date)
	}
	keyBytes, err := hex.DecodeString(keyHex)
	if err != nil {
		return "", fmt.Errorf("solid: bad %s: %w", HeaderAgentKey, err)
	}
	registered, ok := s.dir.KeyFor(agent)
	if !ok {
		return "", fmt.Errorf("solid: unknown agent %s", agent)
	}
	if string(registered) != string(keyBytes) {
		return "", fmt.Errorf("solid: presented key does not match the profile of %s", agent)
	}
	pub, err := cryptoutil.ParsePublicKey(keyBytes)
	if err != nil {
		return "", fmt.Errorf("solid: bad agent key: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("solid: bad %s: %w", HeaderSignature, err)
	}
	if !cryptoutil.Verify(pub, signingString(r.Method, signingPath(r), date, nonce), sig) {
		return "", errors.New("solid: request signature invalid")
	}
	// Replay check last: only successfully verified requests consume their
	// nonce, so an attacker cannot burn a victim's nonce with a bad
	// signature.
	if err := s.replay.check(agent, nonce, ts, now); err != nil {
		s.metrics.NonceReplays.Inc()
		return "", err
	}
	return agent, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	agent, err := s.authenticate(r)
	if err != nil {
		if !errors.Is(err, ErrNonceReplayed) {
			// Replays are counted at the guard; everything else here.
			s.metrics.AuthFailures.Inc()
		}
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	path := r.URL.Path

	var mode AccessMode
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		mode = ModeRead
	case http.MethodPut, http.MethodDelete:
		mode = ModeWrite
	case http.MethodPost:
		// POST is an append: it adds to a container (or resource) without
		// replacing anything, so it needs Append, not Write.
		mode = ModeAppend
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT, POST, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	if s.hook != nil {
		if err := s.hook(r, agent, path, mode); err != nil {
			status := http.StatusForbidden
			if errors.Is(err, ErrNotFound) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
	}

	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.handleGet(w, r, agent, path)
	case http.MethodPut:
		s.handlePut(w, r, agent, path)
	case http.MethodPost:
		s.handlePost(w, r, agent, path)
	case http.MethodDelete:
		s.handleDelete(w, r, agent, path)
	}
}

func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoACL):
		return http.StatusNotFound
	case errors.Is(err, ErrBadPath):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// etagMatches reports whether an If-None-Match header value matches the
// entity tag (either exactly, unquoted, or the wildcard).
func etagMatches(headerValue, etag string) bool {
	if headerValue == "" {
		return false
	}
	for _, candidate := range strings.Split(headerValue, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" || candidate == etag || `"`+candidate+`"` == etag {
			return true
		}
	}
	return false
}

// notModified evaluates the request's conditional headers against the
// resource validators. If-None-Match wins over If-Modified-Since when
// both are present (RFC 9110 §13.1.3).
func notModified(r *http.Request, etag string, modified time.Time) bool {
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		return etagMatches(inm, etag)
	}
	if ims := r.Header.Get("If-Modified-Since"); ims != "" && !modified.IsZero() {
		since, err := http.ParseTime(ims)
		if err == nil && !modified.Truncate(time.Second).After(since) {
			return true
		}
	}
	return false
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, agent WebID, path string) {
	if strings.HasSuffix(path, "/") {
		doc, err := s.pod.ContainerListing(agent, path)
		if err != nil {
			http.Error(w, err.Error(), httpStatusFor(err))
			return
		}
		etag := ETagFor([]byte(doc))
		w.Header().Set("ETag", etag)
		if notModified(r, etag, time.Time{}) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "text/turtle")
		if r.Method == http.MethodHead {
			return
		}
		_, _ = io.WriteString(w, doc)
		return
	}
	res, err := s.pod.Get(agent, path)
	if err != nil {
		http.Error(w, err.Error(), httpStatusFor(err))
		return
	}
	w.Header().Set("ETag", res.ETag)
	w.Header().Set("Last-Modified", res.Modified.UTC().Format(http.TimeFormat))
	if notModified(r, res.ETag, res.Modified) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	ct := res.ContentType
	if ct == "" {
		ct = "application/octet-stream"
	}
	w.Header().Set("Content-Type", ct)
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(res.Data)
}

// readBody drains the request body, refusing (rather than truncating)
// payloads over MaxBodyBytes.
func readBody(r *http.Request) ([]byte, bool, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes+1))
	if err != nil {
		return nil, false, err
	}
	if len(body) > MaxBodyBytes {
		return nil, true, fmt.Errorf("solid: body exceeds %d bytes", MaxBodyBytes)
	}
	return body, false, nil
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, agent WebID, path string) {
	body, tooLarge, err := readBody(r)
	if err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	ct := r.Header.Get("Content-Type")
	created, etag, err := s.pod.PutResource(agent, path, ct, body, s.clock.Now())
	if err != nil {
		http.Error(w, err.Error(), httpStatusFor(err))
		return
	}
	w.Header().Set("ETag", etag)
	if created {
		w.WriteHeader(http.StatusCreated)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handlePost(w http.ResponseWriter, r *http.Request, agent WebID, path string) {
	body, tooLarge, err := readBody(r)
	if err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	ct := r.Header.Get("Content-Type")
	storedPath, created, err := s.pod.Append(agent, path, ct, body, s.clock.Now())
	if err != nil {
		http.Error(w, err.Error(), httpStatusFor(err))
		return
	}
	if created {
		w.Header().Set("Location", s.pod.BaseURL()+storedPath)
		w.WriteHeader(http.StatusCreated)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, agent WebID, path string) {
	if err := s.pod.Delete(agent, path); err != nil {
		http.Error(w, err.Error(), httpStatusFor(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
