package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestHTTPIndirectSwap: the indirect handler must serve whatever handler
// is currently installed, including the swap from a placeholder to the
// real handler after the listener is already accepting requests.
func TestHTTPIndirectSwap(t *testing.T) {
	var mu sync.RWMutex
	var handler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(httpIndirect(&mu, &handler))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("placeholder handler: got %d, want 503", resp.StatusCode)
	}

	mu.Lock()
	handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	mu.Unlock()

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("swapped handler: got %d, want 418", resp.StatusCode)
	}
}

// TestHTTPIndirectConcurrentSwap hammers the indirection with parallel
// requests while the handler is swapped repeatedly; run under -race this
// pins the locking contract (the CI race job exercises it).
func TestHTTPIndirectConcurrentSwap(t *testing.T) {
	var mu sync.RWMutex
	mk := func(code int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(code)
		})
	}
	var handler = mk(http.StatusOK)
	srv := httptest.NewServer(httpIndirect(&mu, &handler))
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			handler = mk(http.StatusOK + i%2) // 200 / 201
			mu.Unlock()
		}
	}()

	var reqWG sync.WaitGroup
	errs := make(chan error, 64)
	for range 8 {
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			for range 25 {
				resp, err := http.Get(srv.URL)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	reqWG.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
