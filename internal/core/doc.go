// Package core assembles the complete usage-control architecture of the
// paper (Fig. 1): a proof-of-authority blockchain cluster running the
// DistExchange application, Solid pods fronted by Pod Managers over HTTP,
// consumer devices with TEE-enforced trusted applications, the data
// market, and the four oracle patterns wiring the on-chain and off-chain
// worlds together.
//
// Deployment is the façade; Owner and Consumer expose the six Fig. 2
// processes as typed Go methods. Baseline provides the plain-Solid
// (access-control-only) comparator used by the overhead experiments.
// Harness drives the E1–E12 experiment suite plus the ablations
// (block interval, oracle fan-out, batch submission, parallel
// verification); each experiment boots a fresh Deployment and returns a
// printable Table.
//
// # Concurrency contract
//
// A Deployment is safe for concurrent use by many owners and consumers:
// its own mutex only guards the owner/consumer registries, while all
// chain-state synchronization is delegated to the chain layer (see
// package chain's concurrency contract). Transaction ingestion has two
// paths with different throughput characteristics: the per-transaction
// backend used by distexchange clients (one broadcast + one consensus
// round per call in SealOnSubmit mode) and Deployment.SubmitBatch, which
// verifies a whole batch concurrently, enqueues it on every validator
// under one mempool lock acquisition each, and seals the batch in as few
// blocks as MaxTxsPerBlock allows. Oracles (pull-in, push-out) run their
// own goroutines observing node 0; their delivery is asynchronous, which
// is why tests wait on WaitPolicyVersion / WaitForRoundClosure rather
// than assuming synchronous propagation.
package core
