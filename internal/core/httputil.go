package core

import (
	"net/http"
	"sync"
)

// httpIndirect wraps a swappable handler so a server can start before its
// final handler exists (the pod base URL is only known once the listener
// is up).
func httpIndirect(mu *sync.RWMutex, handler *http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.RLock()
		h := *handler
		mu.RUnlock()
		h.ServeHTTP(w, r)
	})
}
