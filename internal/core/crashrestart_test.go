package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/store"
)

// durableDeployment boots a 3-validator deployment persisting under a
// test temp dir.
func durableDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{
		Validators: 3,
		DataDir:    t.TempDir(),
		WALSync:    store.SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// workload drives a small end-to-end workload (owner, consumer, publish,
// grant, access) so crash-restart has real cross-layer state to lose.
func workload(t *testing.T, d *Deployment, name string) {
	t.Helper()
	ctx := context.Background()
	o, err := d.NewOwner(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.InitializePod(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := o.AddResource("/data/r.bin", "application/octet-stream", []byte("crash me")); err != nil {
		t.Fatal(err)
	}
	iri, err := o.Publish(ctx, "/data/r.bin", "crash test", nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.NewConsumer(name+"-reader", policy.PurposeAny)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Grant(ctx, c, "/data/r.bin", policy.PurposeAny); err != nil {
		t.Fatal(err)
	}
	if err := c.Access(ctx, iri); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRestartValidator: a crashed validator restarts from its
// durable store and converges with the live cluster — head, state root,
// and gas ledger all agree.
func TestCrashRestartValidator(t *testing.T) {
	d := durableDeployment(t)
	workload(t, d, "w1")

	preCrashHeight := d.Nodes[1].Height()
	if err := d.CrashValidator(1); err != nil {
		t.Fatal(err)
	}
	if d.Nodes[1] != nil {
		t.Fatal("crashed validator's in-memory node survived")
	}
	if !d.ValidatorCrashed(1) || !d.ValidatorDown(1) {
		t.Fatal("crashed validator not reported crashed+down")
	}

	// The cluster keeps working while 1 is gone.
	workload2 := func() {
		ctx := context.Background()
		o, err := d.NewOwner("owner2")
		if err != nil {
			t.Fatal(err)
		}
		if err := o.InitializePod(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}
	workload2()

	synced, err := d.RestartValidatorFromDisk(1)
	if err != nil {
		t.Fatal(err)
	}
	if synced == 0 {
		t.Fatal("restart synced no blocks despite downtime traffic")
	}
	if d.Nodes[1].Height() < preCrashHeight {
		t.Fatalf("restarted height %d below pre-crash %d", d.Nodes[1].Height(), preCrashHeight)
	}
	live := d.LiveNode()
	if d.Nodes[1].Head().Hash() != live.Head().Hash() {
		t.Fatal("restarted validator head disagrees with the live cluster")
	}
	if d.Nodes[1].State().Root() != live.State().Root() {
		t.Fatal("restarted validator state root diverges")
	}
	if d.Nodes[1].Costs().TotalSpent() != live.Costs().TotalSpent() {
		t.Fatal("restarted validator gas ledger diverges")
	}
	// And it participates in consensus again.
	workload(t, d, "w3")
	if d.Nodes[1].Head().Hash() != d.LiveNode().Head().Hash() {
		t.Fatal("restarted validator fell behind post-restart traffic")
	}
}

// TestCrashRestartTornWAL: a WAL truncated mid-record while the
// validator is down recovers to the last complete block and the peer
// sync covers the difference.
func TestCrashRestartTornWAL(t *testing.T) {
	d := durableDeployment(t)
	workload(t, d, "w1")
	height := d.Nodes[2].Height()
	if err := d.CrashValidator(2); err != nil {
		t.Fatal(err)
	}
	// Chop into the last record: the final block is torn away.
	if err := d.TruncateValidatorWAL(2, 9); err != nil {
		t.Fatal(err)
	}
	synced, err := d.RestartValidatorFromDisk(2)
	if err != nil {
		t.Fatal(err)
	}
	if synced < 1 {
		t.Fatalf("synced %d blocks, want >= 1 (the torn-away tail)", synced)
	}
	if got := d.Nodes[2].Height(); got != height {
		t.Fatalf("restarted height = %d, want %d", got, height)
	}
	if d.Nodes[2].Head().Hash() != d.LiveNode().Head().Hash() {
		t.Fatal("restarted validator head disagrees after torn-WAL recovery")
	}
	if d.Nodes[2].State().Root() != d.LiveNode().State().Root() {
		t.Fatal("restarted validator state diverges after torn-WAL recovery")
	}
}

// TestCrashValidatorGuards pins the hook's refusal matrix.
func TestCrashValidatorGuards(t *testing.T) {
	d := durableDeployment(t)

	if err := d.CrashValidator(0); err == nil || !strings.Contains(err.Error(), "validator 0") {
		t.Fatalf("crashing the oracle host: %v", err)
	}
	if err := d.CrashValidator(99); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
	if _, err := d.RestartValidatorFromDisk(1); err == nil {
		t.Fatal("restarting an uncrashed validator accepted")
	}
	if err := d.TruncateValidatorWAL(1, 4); err == nil {
		t.Fatal("damaging a live validator's WAL accepted")
	}

	if err := d.CrashValidator(1); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashValidator(1); err == nil {
		t.Fatal("double crash accepted")
	}
	// RAM-recovery of a crashed validator must be refused: its memory is
	// gone by construction.
	if _, err := d.RecoverValidator(1); err == nil {
		t.Fatal("RecoverValidator resurrected a crashed validator")
	}
	// Crashing every remaining non-oracle validator is refused once only
	// the oracle host would remain... validator 2 may still crash (node 0
	// stays live), so the guard triggers at the final one only if node 0
	// is down. Fail node 0 first to pin the last-live refusal.
	if err := d.FailValidator(0); err != nil {
		t.Fatal(err)
	}
	if err := d.CrashValidator(2); err == nil {
		t.Fatal("crashing the last live validator accepted")
	}
	if _, err := d.RecoverValidator(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RestartValidatorFromDisk(1); err != nil {
		t.Fatalf("restart after guards: %v", err)
	}
}

// TestCrashRequiresDurableDeployment: without a DataDir the crash hooks
// refuse to run.
func TestCrashRequiresDurableDeployment(t *testing.T) {
	d, err := NewDeployment(Config{Validators: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.CrashValidator(1); err == nil {
		t.Fatal("crash accepted on an in-memory deployment")
	}
}

// TestDurableDeploymentSnapshotUnaffected: TakeSnapshot tolerates a
// crashed (nil) node slot.
func TestDurableDeploymentSnapshotUnaffected(t *testing.T) {
	d := durableDeployment(t)
	workload(t, d, "w1")
	if err := d.CrashValidator(1); err != nil {
		t.Fatal(err)
	}
	snap := d.TakeSnapshot()
	if _, ok := snap.LiveHeads[1]; ok {
		t.Fatal("crashed validator reported a live head")
	}
	if snap.Height == 0 {
		t.Fatal("snapshot lost the live chain height")
	}
}
