package core

import (
	"strconv"
	"strings"
	"testing"
)

// The harness tests run every experiment in quick mode and assert the
// qualitative shape EXPERIMENTS.md records, not absolute numbers.

func quickHarness() *Harness { return &Harness{Quick: true} }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestHarnessE1(t *testing.T) {
	tbl := quickHarness().E1PodInitiation()
	if len(tbl.Rows) < 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if parseF(t, row[1]) <= 0 {
			t.Fatalf("non-positive latency: %v", row)
		}
		if row[2] == "0" {
			t.Fatalf("zero gas: %v", row)
		}
	}
}

func TestHarnessE2AndE3(t *testing.T) {
	e2 := quickHarness().E2ResourceInitiation()
	for _, row := range e2.Rows {
		if row[0] != row[3] {
			t.Fatalf("index size %s != published %s", row[3], row[0])
		}
	}
	e3 := quickHarness().E3ResourceIndexing()
	if len(e3.Rows) < 2 {
		t.Fatal("missing rows")
	}
	// Full listing should cost more than a point lookup at equal index
	// size (shape check).
	for _, row := range e3.Rows {
		if parseF(t, row[2]) < parseF(t, row[1]) {
			t.Logf("warning: listing faster than point lookup: %v", row)
		}
	}
}

func TestHarnessE4(t *testing.T) {
	tbl := quickHarness().E4ResourceAccess()
	for _, row := range tbl.Rows {
		access, fetch := parseF(t, row[1]), parseF(t, row[2])
		// The end-to-end process includes the fetch plus consensus and TEE
		// work; allow 2x timing jitter on these single-shot wall-clock
		// measurements before declaring the shape wrong.
		if access*2 < fetch {
			t.Fatalf("end-to-end access implausibly faster than its fetch component: %v", row)
		}
	}
}

func TestHarnessE5(t *testing.T) {
	tbl := quickHarness().E5PolicyModification()
	for _, row := range tbl.Rows {
		n := row[0]
		if row[2] != n+"/"+n {
			t.Fatalf("not all copies deleted after expiry: %v", row)
		}
	}
}

func TestHarnessE6(t *testing.T) {
	tbl := quickHarness().E6PolicyMonitoring()
	for _, row := range tbl.Rows {
		if row[0] != row[2] {
			t.Fatalf("evidence count %s != devices %s", row[2], row[0])
		}
		if row[3] != "0" {
			t.Fatalf("compliant run produced violations: %v", row)
		}
	}
}

func TestHarnessE7(t *testing.T) {
	tbl := quickHarness().E7LocalVsRemote()
	for _, row := range tbl.Rows {
		if speedup := parseF(t, row[3]); speedup <= 1 {
			t.Fatalf("local TEE use not faster than remote fetch (the §V-1 claim): %v", row)
		}
	}
}

func TestHarnessE8(t *testing.T) {
	tbl := quickHarness().E8Security()
	if len(tbl.Rows) < 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != "true" {
			t.Fatalf("attack not rejected: %v", row)
		}
	}
}

func TestHarnessE9(t *testing.T) {
	tbl := quickHarness().E9Gas()
	ops := map[string]bool{}
	for _, row := range tbl.Rows {
		ops[row[0]] = true
	}
	for _, want := range []string{
		"registerPod", "registerResource", "registerDevice", "recordGrant",
		"confirmRetrieval", "updatePolicy", "requestMonitoring", "submitEvidence", "TOTAL",
	} {
		if !ops[want] {
			t.Fatalf("missing operation %q in gas table:\n%s", want, tbl)
		}
	}
}

func TestHarnessE10(t *testing.T) {
	tbl := quickHarness().E10Overhead()
	for _, row := range tbl.Rows {
		if overhead := parseF(t, row[3]); overhead < 0.2 {
			t.Fatalf("implausible overhead ratio: %v", row)
		}
	}
}

func TestHarnessE11(t *testing.T) {
	tbl := quickHarness().E11Remuneration()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Payouts must be ordered by access share: 6 > 3 > 1 implies
	// monotone amounts once rows are matched by access count.
	amounts := map[string]float64{}
	for _, row := range tbl.Rows {
		amounts[row[1]] = parseF(t, row[2])
	}
	if !(amounts["6"] > amounts["3"] && amounts["3"] > amounts["1"]) {
		t.Fatalf("payouts not proportional: %v", amounts)
	}
}

func TestHarnessE12(t *testing.T) {
	tbl := quickHarness().E12Robustness()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Fatalf("live nodes diverged with %s validators down: %v", row[0], row)
		}
		if parseF(t, row[3]) <= 0 {
			t.Fatalf("no throughput with %s validators down", row[0])
		}
	}
}

func TestHarnessAblationFanout(t *testing.T) {
	tbl := quickHarness().AblationOracleFanout()
	if len(tbl.Rows) < 2 {
		t.Fatal("missing rows")
	}
}

func TestHarnessAblationBlockInterval(t *testing.T) {
	tbl := quickHarness().AblationBlockInterval()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Simulated propagation latency must grow with the block interval.
	first := parseF(t, tbl.Rows[0][1])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][1])
	if last <= first {
		t.Fatalf("propagation did not grow with block interval:\n%s", tbl)
	}
}

func TestChainStatsTable(t *testing.T) {
	d := newDeployment(t, Config{})
	owner, err := d.NewOwner("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.InitializePod(t.Context(), nil); err != nil {
		t.Fatal(err)
	}
	tbl := ChainStats(d)
	if !strings.Contains(tbl.String(), "height") {
		t.Fatalf("stats table:\n%s", tbl)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "metric_with_long_name"}}
	tbl.Add(1, 2.5)
	tbl.Add("xyz", "v")
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "2.500") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}
