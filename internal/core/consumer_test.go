package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/distexchange"
	"repro/internal/policy"
)

// TestGrantRejectedForDisallowedPurpose: the DE App refuses to record a
// grant whose declared purpose the policy forbids, so the owner finds out
// at grant time, not at monitoring time.
func TestGrantRejectedForDisallowedPurpose(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()
	// Bob's medical policy allows only medical-research; granting the web
	// analyst (web-analytics purpose) must fail on-chain.
	err := s.bob.Grant(ctx, s.bobAsCon, "/medical/ds1.ttl", policy.PurposeWebAnalytics)
	if err == nil {
		t.Fatal("grant with disallowed purpose accepted")
	}
	var revert *distexchange.RevertError
	if !errors.As(err, &revert) || !strings.Contains(revert.Reason, "not permitted") {
		t.Fatalf("err = %v", err)
	}
}

// TestConsumerCatalogAndIndexErrors covers the read-side error paths of
// resource indexing.
func TestConsumerCatalogAndIndexErrors(t *testing.T) {
	s := newScenario(t, Config{})
	if _, err := s.aliceAsCon.Index("https://nonexistent/resource"); err == nil {
		t.Fatal("index of unknown resource succeeded")
	}
	catalog, err := s.aliceAsCon.ListCatalog()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, rec := range catalog {
		found[rec.ResourceIRI] = true
	}
	if !found[s.browsingIRI] || !found[s.medicalIRI] {
		t.Fatalf("catalog missing scenario resources: %v", found)
	}
}

// TestAccessIdempotenceRejected: a second Access for the same (consumer,
// resource) fails because the TEE already holds a live copy.
func TestAccessIdempotenceRejected(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()
	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err == nil {
		t.Fatal("double access accepted")
	}
}

// TestMarketSettlementThroughDeployment verifies the core wiring of
// resource attribution: accesses through Consumer.Access accrue to the
// publishing owner.
func TestMarketSettlementThroughDeployment(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()
	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	if got := s.d.Market.AccessesFor(string(s.alice.WebID)); got != 1 {
		t.Fatalf("alice accesses = %d, want 1", got)
	}
	payouts, err := s.d.Market.Settle(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 1 || payouts[0].OwnerWebID != string(s.alice.WebID) {
		t.Fatalf("payouts = %+v", payouts)
	}
	acct, err := s.d.Market.Account(string(s.alice.WebID))
	if err != nil {
		t.Fatal(err)
	}
	if acct.Earned == 0 {
		t.Fatal("owner earned nothing")
	}
}

// TestUnpublishLifecycle: withdrawing a resource removes it from the
// catalog and blocks new consumers, while an existing holder keeps its
// copy and remains monitorable.
func TestUnpublishLifecycle(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()

	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	if err := s.alice.Unpublish(ctx, "/web/browsing.csv"); err != nil {
		t.Fatal(err)
	}
	// Catalog shrinks to Bob's resource only.
	catalog, err := s.aliceAsCon.ListCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != 1 || catalog[0].ResourceIRI != s.medicalIRI {
		t.Fatalf("catalog = %+v", catalog)
	}
	// New grants refused.
	late, err := s.d.NewConsumer("latecomer", policy.PurposeWebAnalytics)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.alice.Grant(ctx, late, "/web/browsing.csv", policy.PurposeWebAnalytics); err == nil {
		t.Fatal("grant on withdrawn resource accepted")
	}
	// Existing holder still monitored.
	evidence, violations, err := s.alice.Monitor(ctx, "/web/browsing.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 1 || len(violations) != 0 {
		t.Fatalf("monitor after unpublish: evidence=%d violations=%d", len(evidence), len(violations))
	}
	// Unpublishing twice fails (no longer published).
	if err := s.alice.Unpublish(ctx, "/web/browsing.csv"); err == nil {
		t.Fatal("double unpublish accepted")
	}
}

// TestRetrievalConfirmationTimestamp: the on-chain RetrievedAt is the
// block time of the confirmation, which anchors retention deadlines.
func TestRetrievalConfirmationTimestamp(t *testing.T) {
	s := newScenario(t, Config{})
	ctx := context.Background()
	if err := s.alice.Grant(ctx, s.bobAsCon, "/web/browsing.csv", policy.PurposeWebAnalytics); err != nil {
		t.Fatal(err)
	}
	s.d.Clock.Advance(3 * time.Hour)
	before := s.d.Clock.Now()
	if err := s.bobAsCon.Access(ctx, s.browsingIRI); err != nil {
		t.Fatal(err)
	}
	grants, err := s.alice.Manager.DE().GetGrants(s.browsingIRI)
	if err != nil {
		t.Fatal(err)
	}
	if grants[0].RetrievedAt.Before(before) {
		t.Fatalf("RetrievedAt = %s, want >= %s", grants[0].RetrievedAt, before)
	}
}
