package core

import (
	"strings"
	"testing"
)

// TestAblationDurability smoke-runs the durability ablation in quick
// mode: four modes, ingestion numbers present, and the durable modes
// reopen at the ingested height.
func TestAblationDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("durability ablation sweeps disk-backed nodes")
	}
	h := &Harness{Quick: true}
	table := h.AblationDurability()
	out := table.String()
	for _, mode := range []string{"memory", "wal-never", "wal-interval", "wal-always"} {
		if !strings.Contains(out, mode) {
			t.Fatalf("mode %s missing from table:\n%s", mode, out)
		}
	}
	if len(table.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d:\n%s", len(table.Rows), out)
	}
}
