package core

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simclock"
	"repro/internal/solid"
)

// Baseline is the comparator for the integrateability/overhead experiment
// (E10): plain Solid with Web Access Control only — exactly what the paper
// says exists today ("Solid currently only supports basic access control")
// — with no blockchain, no TEE, no market, and no usage control. Once a
// consumer retrieves data from a Baseline pod, the owner has no further
// control, which is the gap the architecture closes.
type Baseline struct {
	Clock     *simclock.Sim
	Directory *solid.MapDirectory

	mu     sync.Mutex
	owners map[solid.WebID]*BaselineOwner
}

// BaselineOwner is a pod + server without usage control.
type BaselineOwner struct {
	WebID solid.WebID
	Key   *cryptoutil.KeyPair
	Pod   *solid.Pod

	server *httptest.Server
}

// NewBaseline boots a plain-Solid environment.
func NewBaseline(genesis time.Time) *Baseline {
	if genesis.IsZero() {
		genesis = defaultGenesis
	}
	return &Baseline{
		Clock:     simclock.NewSim(genesis),
		Directory: solid.NewMapDirectory(),
		owners:    make(map[solid.WebID]*BaselineOwner),
	}
}

// Close shuts down all pod servers.
func (b *Baseline) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, o := range b.owners {
		o.server.Close()
	}
}

// NewOwner provisions a plain pod with an HTTP server.
func (b *Baseline) NewOwner(name string) *BaselineOwner {
	key := cryptoutil.MustGenerateKey()

	var mu sync.RWMutex
	var handler http.Handler = http.NotFoundHandler()
	server := httptest.NewServer(httpIndirect(&mu, &handler))

	webID := solid.WebID(server.URL + "/profile#" + name)
	b.Directory.Register(webID, key.PublicBytes())
	pod := solid.NewPod(webID, server.URL)
	mu.Lock()
	handler = solid.NewServer(pod, b.Directory, b.Clock, nil)
	mu.Unlock()

	o := &BaselineOwner{WebID: webID, Key: key, Pod: pod, server: server}
	b.mu.Lock()
	b.owners[webID] = o
	b.mu.Unlock()
	return o
}

// URL returns the pod base URL.
func (o *BaselineOwner) URL() string { return o.server.URL }

// Add uploads a resource as the owner.
func (o *BaselineOwner) Add(path, contentType string, data []byte, now time.Time) error {
	return o.Pod.Put(o.WebID, path, contentType, data, now)
}

// GrantRead grants a consumer WAC read access to a resource.
func (o *BaselineOwner) GrantRead(consumer solid.WebID, path string) error {
	acl := solid.NewACL(o.WebID, path)
	acl.Grant("consumer", []solid.WebID{consumer}, path, false, solid.ModeRead)
	return o.Pod.SetACL(o.WebID, path, acl)
}

// NewClient builds an authenticated client for a registered agent.
func (b *Baseline) NewClient(name string) (*solid.Client, solid.WebID) {
	key := cryptoutil.MustGenerateKey()
	webID := solid.WebID("https://" + name + ".example/profile#me")
	b.Directory.Register(webID, key.PublicBytes())
	return solid.NewClient(webID, key, b.Clock), webID
}
